file(REMOVE_RECURSE
  "CMakeFiles/spectral_stats.dir/src/stats/histogram.cc.o"
  "CMakeFiles/spectral_stats.dir/src/stats/histogram.cc.o.d"
  "CMakeFiles/spectral_stats.dir/src/stats/rank_correlation.cc.o"
  "CMakeFiles/spectral_stats.dir/src/stats/rank_correlation.cc.o.d"
  "CMakeFiles/spectral_stats.dir/src/stats/running_stats.cc.o"
  "CMakeFiles/spectral_stats.dir/src/stats/running_stats.cc.o.d"
  "libspectral_stats.a"
  "libspectral_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
