file(REMOVE_RECURSE
  "libspectral_stats.a"
)
