# Empty dependencies file for spectral_stats.
# This may be replaced when dependencies are built.
