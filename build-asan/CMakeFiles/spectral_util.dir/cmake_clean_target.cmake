file(REMOVE_RECURSE
  "libspectral_util.a"
)
