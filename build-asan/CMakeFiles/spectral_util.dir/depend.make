# Empty dependencies file for spectral_util.
# This may be replaced when dependencies are built.
