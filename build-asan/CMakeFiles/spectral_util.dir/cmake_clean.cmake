file(REMOVE_RECURSE
  "CMakeFiles/spectral_util.dir/src/util/bit_ops.cc.o"
  "CMakeFiles/spectral_util.dir/src/util/bit_ops.cc.o.d"
  "CMakeFiles/spectral_util.dir/src/util/check.cc.o"
  "CMakeFiles/spectral_util.dir/src/util/check.cc.o.d"
  "CMakeFiles/spectral_util.dir/src/util/csv_writer.cc.o"
  "CMakeFiles/spectral_util.dir/src/util/csv_writer.cc.o.d"
  "CMakeFiles/spectral_util.dir/src/util/hash.cc.o"
  "CMakeFiles/spectral_util.dir/src/util/hash.cc.o.d"
  "CMakeFiles/spectral_util.dir/src/util/random.cc.o"
  "CMakeFiles/spectral_util.dir/src/util/random.cc.o.d"
  "CMakeFiles/spectral_util.dir/src/util/string_util.cc.o"
  "CMakeFiles/spectral_util.dir/src/util/string_util.cc.o.d"
  "CMakeFiles/spectral_util.dir/src/util/table_printer.cc.o"
  "CMakeFiles/spectral_util.dir/src/util/table_printer.cc.o.d"
  "CMakeFiles/spectral_util.dir/src/util/thread_pool.cc.o"
  "CMakeFiles/spectral_util.dir/src/util/thread_pool.cc.o.d"
  "libspectral_util.a"
  "libspectral_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
