
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bit_ops.cc" "CMakeFiles/spectral_util.dir/src/util/bit_ops.cc.o" "gcc" "CMakeFiles/spectral_util.dir/src/util/bit_ops.cc.o.d"
  "/root/repo/src/util/check.cc" "CMakeFiles/spectral_util.dir/src/util/check.cc.o" "gcc" "CMakeFiles/spectral_util.dir/src/util/check.cc.o.d"
  "/root/repo/src/util/csv_writer.cc" "CMakeFiles/spectral_util.dir/src/util/csv_writer.cc.o" "gcc" "CMakeFiles/spectral_util.dir/src/util/csv_writer.cc.o.d"
  "/root/repo/src/util/hash.cc" "CMakeFiles/spectral_util.dir/src/util/hash.cc.o" "gcc" "CMakeFiles/spectral_util.dir/src/util/hash.cc.o.d"
  "/root/repo/src/util/random.cc" "CMakeFiles/spectral_util.dir/src/util/random.cc.o" "gcc" "CMakeFiles/spectral_util.dir/src/util/random.cc.o.d"
  "/root/repo/src/util/string_util.cc" "CMakeFiles/spectral_util.dir/src/util/string_util.cc.o" "gcc" "CMakeFiles/spectral_util.dir/src/util/string_util.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "CMakeFiles/spectral_util.dir/src/util/table_printer.cc.o" "gcc" "CMakeFiles/spectral_util.dir/src/util/table_printer.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/spectral_util.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/spectral_util.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
