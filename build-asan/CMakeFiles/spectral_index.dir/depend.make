# Empty dependencies file for spectral_index.
# This may be replaced when dependencies are built.
