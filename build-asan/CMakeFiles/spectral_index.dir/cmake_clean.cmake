file(REMOVE_RECURSE
  "CMakeFiles/spectral_index.dir/src/index/bplus_tree.cc.o"
  "CMakeFiles/spectral_index.dir/src/index/bplus_tree.cc.o.d"
  "CMakeFiles/spectral_index.dir/src/index/declustering.cc.o"
  "CMakeFiles/spectral_index.dir/src/index/declustering.cc.o.d"
  "CMakeFiles/spectral_index.dir/src/index/packed_rtree.cc.o"
  "CMakeFiles/spectral_index.dir/src/index/packed_rtree.cc.o.d"
  "libspectral_index.a"
  "libspectral_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
