file(REMOVE_RECURSE
  "libspectral_index.a"
)
