file(REMOVE_RECURSE
  "CMakeFiles/linear_order_test.dir/tests/linear_order_test.cc.o"
  "CMakeFiles/linear_order_test.dir/tests/linear_order_test.cc.o.d"
  "linear_order_test"
  "linear_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
