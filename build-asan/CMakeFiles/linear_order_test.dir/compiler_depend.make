# Empty compiler generated dependencies file for linear_order_test.
# This may be replaced when dependencies are built.
