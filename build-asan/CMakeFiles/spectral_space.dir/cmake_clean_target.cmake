file(REMOVE_RECURSE
  "libspectral_space.a"
)
