file(REMOVE_RECURSE
  "CMakeFiles/spectral_space.dir/src/space/grid.cc.o"
  "CMakeFiles/spectral_space.dir/src/space/grid.cc.o.d"
  "CMakeFiles/spectral_space.dir/src/space/point_set.cc.o"
  "CMakeFiles/spectral_space.dir/src/space/point_set.cc.o.d"
  "libspectral_space.a"
  "libspectral_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
