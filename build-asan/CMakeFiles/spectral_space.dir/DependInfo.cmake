
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/space/grid.cc" "CMakeFiles/spectral_space.dir/src/space/grid.cc.o" "gcc" "CMakeFiles/spectral_space.dir/src/space/grid.cc.o.d"
  "/root/repo/src/space/point_set.cc" "CMakeFiles/spectral_space.dir/src/space/point_set.cc.o" "gcc" "CMakeFiles/spectral_space.dir/src/space/point_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/spectral_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
