# Empty dependencies file for spectral_space.
# This may be replaced when dependencies are built.
