# Empty dependencies file for ordering_request_test.
# This may be replaced when dependencies are built.
