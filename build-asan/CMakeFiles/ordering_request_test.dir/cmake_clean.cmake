file(REMOVE_RECURSE
  "CMakeFiles/ordering_request_test.dir/tests/ordering_request_test.cc.o"
  "CMakeFiles/ordering_request_test.dir/tests/ordering_request_test.cc.o.d"
  "ordering_request_test"
  "ordering_request_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_request_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
