file(REMOVE_RECURSE
  "libspectral_eigen.a"
)
