file(REMOVE_RECURSE
  "CMakeFiles/spectral_eigen.dir/src/eigen/block_lanczos.cc.o"
  "CMakeFiles/spectral_eigen.dir/src/eigen/block_lanczos.cc.o.d"
  "CMakeFiles/spectral_eigen.dir/src/eigen/fiedler.cc.o"
  "CMakeFiles/spectral_eigen.dir/src/eigen/fiedler.cc.o.d"
  "CMakeFiles/spectral_eigen.dir/src/eigen/jacobi.cc.o"
  "CMakeFiles/spectral_eigen.dir/src/eigen/jacobi.cc.o.d"
  "CMakeFiles/spectral_eigen.dir/src/eigen/lanczos.cc.o"
  "CMakeFiles/spectral_eigen.dir/src/eigen/lanczos.cc.o.d"
  "CMakeFiles/spectral_eigen.dir/src/eigen/operator.cc.o"
  "CMakeFiles/spectral_eigen.dir/src/eigen/operator.cc.o.d"
  "CMakeFiles/spectral_eigen.dir/src/eigen/tridiagonal.cc.o"
  "CMakeFiles/spectral_eigen.dir/src/eigen/tridiagonal.cc.o.d"
  "CMakeFiles/spectral_eigen.dir/src/eigen/warm_start.cc.o"
  "CMakeFiles/spectral_eigen.dir/src/eigen/warm_start.cc.o.d"
  "libspectral_eigen.a"
  "libspectral_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
