# Empty dependencies file for spectral_eigen.
# This may be replaced when dependencies are built.
