
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eigen/block_lanczos.cc" "CMakeFiles/spectral_eigen.dir/src/eigen/block_lanczos.cc.o" "gcc" "CMakeFiles/spectral_eigen.dir/src/eigen/block_lanczos.cc.o.d"
  "/root/repo/src/eigen/fiedler.cc" "CMakeFiles/spectral_eigen.dir/src/eigen/fiedler.cc.o" "gcc" "CMakeFiles/spectral_eigen.dir/src/eigen/fiedler.cc.o.d"
  "/root/repo/src/eigen/jacobi.cc" "CMakeFiles/spectral_eigen.dir/src/eigen/jacobi.cc.o" "gcc" "CMakeFiles/spectral_eigen.dir/src/eigen/jacobi.cc.o.d"
  "/root/repo/src/eigen/lanczos.cc" "CMakeFiles/spectral_eigen.dir/src/eigen/lanczos.cc.o" "gcc" "CMakeFiles/spectral_eigen.dir/src/eigen/lanczos.cc.o.d"
  "/root/repo/src/eigen/operator.cc" "CMakeFiles/spectral_eigen.dir/src/eigen/operator.cc.o" "gcc" "CMakeFiles/spectral_eigen.dir/src/eigen/operator.cc.o.d"
  "/root/repo/src/eigen/tridiagonal.cc" "CMakeFiles/spectral_eigen.dir/src/eigen/tridiagonal.cc.o" "gcc" "CMakeFiles/spectral_eigen.dir/src/eigen/tridiagonal.cc.o.d"
  "/root/repo/src/eigen/warm_start.cc" "CMakeFiles/spectral_eigen.dir/src/eigen/warm_start.cc.o" "gcc" "CMakeFiles/spectral_eigen.dir/src/eigen/warm_start.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/spectral_linalg.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
