# Empty compiler generated dependencies file for spectral_map_cli.
# This may be replaced when dependencies are built.
