file(REMOVE_RECURSE
  "CMakeFiles/spectral_map_cli.dir/tools/spectral_map_cli.cc.o"
  "CMakeFiles/spectral_map_cli.dir/tools/spectral_map_cli.cc.o.d"
  "spectral_map_cli"
  "spectral_map_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_map_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
