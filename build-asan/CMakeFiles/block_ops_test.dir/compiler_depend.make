# Empty compiler generated dependencies file for block_ops_test.
# This may be replaced when dependencies are built.
