file(REMOVE_RECURSE
  "CMakeFiles/block_ops_test.dir/tests/block_ops_test.cc.o"
  "CMakeFiles/block_ops_test.dir/tests/block_ops_test.cc.o.d"
  "block_ops_test"
  "block_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
