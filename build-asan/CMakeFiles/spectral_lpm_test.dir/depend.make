# Empty dependencies file for spectral_lpm_test.
# This may be replaced when dependencies are built.
