file(REMOVE_RECURSE
  "CMakeFiles/spectral_lpm_test.dir/tests/spectral_lpm_test.cc.o"
  "CMakeFiles/spectral_lpm_test.dir/tests/spectral_lpm_test.cc.o.d"
  "spectral_lpm_test"
  "spectral_lpm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_lpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
