# Empty dependencies file for spectral_linalg.
# This may be replaced when dependencies are built.
