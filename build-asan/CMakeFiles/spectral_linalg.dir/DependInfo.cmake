
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/block_ops.cc" "CMakeFiles/spectral_linalg.dir/src/linalg/block_ops.cc.o" "gcc" "CMakeFiles/spectral_linalg.dir/src/linalg/block_ops.cc.o.d"
  "/root/repo/src/linalg/dense_matrix.cc" "CMakeFiles/spectral_linalg.dir/src/linalg/dense_matrix.cc.o" "gcc" "CMakeFiles/spectral_linalg.dir/src/linalg/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/sparse_matrix.cc" "CMakeFiles/spectral_linalg.dir/src/linalg/sparse_matrix.cc.o" "gcc" "CMakeFiles/spectral_linalg.dir/src/linalg/sparse_matrix.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "CMakeFiles/spectral_linalg.dir/src/linalg/vector_ops.cc.o" "gcc" "CMakeFiles/spectral_linalg.dir/src/linalg/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/spectral_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
