file(REMOVE_RECURSE
  "libspectral_linalg.a"
)
