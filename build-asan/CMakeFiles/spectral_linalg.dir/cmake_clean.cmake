file(REMOVE_RECURSE
  "CMakeFiles/spectral_linalg.dir/src/linalg/block_ops.cc.o"
  "CMakeFiles/spectral_linalg.dir/src/linalg/block_ops.cc.o.d"
  "CMakeFiles/spectral_linalg.dir/src/linalg/dense_matrix.cc.o"
  "CMakeFiles/spectral_linalg.dir/src/linalg/dense_matrix.cc.o.d"
  "CMakeFiles/spectral_linalg.dir/src/linalg/sparse_matrix.cc.o"
  "CMakeFiles/spectral_linalg.dir/src/linalg/sparse_matrix.cc.o.d"
  "CMakeFiles/spectral_linalg.dir/src/linalg/vector_ops.cc.o"
  "CMakeFiles/spectral_linalg.dir/src/linalg/vector_ops.cc.o.d"
  "libspectral_linalg.a"
  "libspectral_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
