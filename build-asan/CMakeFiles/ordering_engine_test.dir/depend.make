# Empty dependencies file for ordering_engine_test.
# This may be replaced when dependencies are built.
