file(REMOVE_RECURSE
  "CMakeFiles/ordering_engine_test.dir/tests/ordering_engine_test.cc.o"
  "CMakeFiles/ordering_engine_test.dir/tests/ordering_engine_test.cc.o.d"
  "ordering_engine_test"
  "ordering_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
