file(REMOVE_RECURSE
  "libspectral_sfc.a"
)
