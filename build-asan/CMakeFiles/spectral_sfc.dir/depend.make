# Empty dependencies file for spectral_sfc.
# This may be replaced when dependencies are built.
