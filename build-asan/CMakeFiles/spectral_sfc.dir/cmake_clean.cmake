file(REMOVE_RECURSE
  "CMakeFiles/spectral_sfc.dir/src/sfc/curve.cc.o"
  "CMakeFiles/spectral_sfc.dir/src/sfc/curve.cc.o.d"
  "CMakeFiles/spectral_sfc.dir/src/sfc/curve_registry.cc.o"
  "CMakeFiles/spectral_sfc.dir/src/sfc/curve_registry.cc.o.d"
  "CMakeFiles/spectral_sfc.dir/src/sfc/gray.cc.o"
  "CMakeFiles/spectral_sfc.dir/src/sfc/gray.cc.o.d"
  "CMakeFiles/spectral_sfc.dir/src/sfc/hilbert.cc.o"
  "CMakeFiles/spectral_sfc.dir/src/sfc/hilbert.cc.o.d"
  "CMakeFiles/spectral_sfc.dir/src/sfc/morton.cc.o"
  "CMakeFiles/spectral_sfc.dir/src/sfc/morton.cc.o.d"
  "CMakeFiles/spectral_sfc.dir/src/sfc/peano.cc.o"
  "CMakeFiles/spectral_sfc.dir/src/sfc/peano.cc.o.d"
  "CMakeFiles/spectral_sfc.dir/src/sfc/snake.cc.o"
  "CMakeFiles/spectral_sfc.dir/src/sfc/snake.cc.o.d"
  "CMakeFiles/spectral_sfc.dir/src/sfc/spiral.cc.o"
  "CMakeFiles/spectral_sfc.dir/src/sfc/spiral.cc.o.d"
  "CMakeFiles/spectral_sfc.dir/src/sfc/sweep.cc.o"
  "CMakeFiles/spectral_sfc.dir/src/sfc/sweep.cc.o.d"
  "libspectral_sfc.a"
  "libspectral_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
