
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfc/curve.cc" "CMakeFiles/spectral_sfc.dir/src/sfc/curve.cc.o" "gcc" "CMakeFiles/spectral_sfc.dir/src/sfc/curve.cc.o.d"
  "/root/repo/src/sfc/curve_registry.cc" "CMakeFiles/spectral_sfc.dir/src/sfc/curve_registry.cc.o" "gcc" "CMakeFiles/spectral_sfc.dir/src/sfc/curve_registry.cc.o.d"
  "/root/repo/src/sfc/gray.cc" "CMakeFiles/spectral_sfc.dir/src/sfc/gray.cc.o" "gcc" "CMakeFiles/spectral_sfc.dir/src/sfc/gray.cc.o.d"
  "/root/repo/src/sfc/hilbert.cc" "CMakeFiles/spectral_sfc.dir/src/sfc/hilbert.cc.o" "gcc" "CMakeFiles/spectral_sfc.dir/src/sfc/hilbert.cc.o.d"
  "/root/repo/src/sfc/morton.cc" "CMakeFiles/spectral_sfc.dir/src/sfc/morton.cc.o" "gcc" "CMakeFiles/spectral_sfc.dir/src/sfc/morton.cc.o.d"
  "/root/repo/src/sfc/peano.cc" "CMakeFiles/spectral_sfc.dir/src/sfc/peano.cc.o" "gcc" "CMakeFiles/spectral_sfc.dir/src/sfc/peano.cc.o.d"
  "/root/repo/src/sfc/snake.cc" "CMakeFiles/spectral_sfc.dir/src/sfc/snake.cc.o" "gcc" "CMakeFiles/spectral_sfc.dir/src/sfc/snake.cc.o.d"
  "/root/repo/src/sfc/spiral.cc" "CMakeFiles/spectral_sfc.dir/src/sfc/spiral.cc.o" "gcc" "CMakeFiles/spectral_sfc.dir/src/sfc/spiral.cc.o.d"
  "/root/repo/src/sfc/sweep.cc" "CMakeFiles/spectral_sfc.dir/src/sfc/sweep.cc.o" "gcc" "CMakeFiles/spectral_sfc.dir/src/sfc/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/spectral_space.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
