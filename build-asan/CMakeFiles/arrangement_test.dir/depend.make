# Empty dependencies file for arrangement_test.
# This may be replaced when dependencies are built.
