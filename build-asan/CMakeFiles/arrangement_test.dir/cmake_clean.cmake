file(REMOVE_RECURSE
  "CMakeFiles/arrangement_test.dir/tests/arrangement_test.cc.o"
  "CMakeFiles/arrangement_test.dir/tests/arrangement_test.cc.o.d"
  "arrangement_test"
  "arrangement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrangement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
