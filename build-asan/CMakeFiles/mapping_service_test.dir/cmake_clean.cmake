file(REMOVE_RECURSE
  "CMakeFiles/mapping_service_test.dir/tests/mapping_service_test.cc.o"
  "CMakeFiles/mapping_service_test.dir/tests/mapping_service_test.cc.o.d"
  "mapping_service_test"
  "mapping_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
