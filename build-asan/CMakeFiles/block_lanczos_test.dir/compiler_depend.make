# Empty compiler generated dependencies file for block_lanczos_test.
# This may be replaced when dependencies are built.
