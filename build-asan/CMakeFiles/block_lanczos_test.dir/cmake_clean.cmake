file(REMOVE_RECURSE
  "CMakeFiles/block_lanczos_test.dir/tests/block_lanczos_test.cc.o"
  "CMakeFiles/block_lanczos_test.dir/tests/block_lanczos_test.cc.o.d"
  "block_lanczos_test"
  "block_lanczos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_lanczos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
