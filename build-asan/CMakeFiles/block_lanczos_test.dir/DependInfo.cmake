
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/block_lanczos_test.cc" "CMakeFiles/block_lanczos_test.dir/tests/block_lanczos_test.cc.o" "gcc" "CMakeFiles/block_lanczos_test.dir/tests/block_lanczos_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/spectral_query.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_index.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_workload.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_stats.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_sfc.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_eigen.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_linalg.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_space.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
