
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/curve_order.cc" "CMakeFiles/spectral_core.dir/src/core/curve_order.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/curve_order.cc.o.d"
  "/root/repo/src/core/linear_order.cc" "CMakeFiles/spectral_core.dir/src/core/linear_order.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/linear_order.cc.o.d"
  "/root/repo/src/core/mapping_service.cc" "CMakeFiles/spectral_core.dir/src/core/mapping_service.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/mapping_service.cc.o.d"
  "/root/repo/src/core/multilevel.cc" "CMakeFiles/spectral_core.dir/src/core/multilevel.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/multilevel.cc.o.d"
  "/root/repo/src/core/ordering_engine.cc" "CMakeFiles/spectral_core.dir/src/core/ordering_engine.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/ordering_engine.cc.o.d"
  "/root/repo/src/core/ordering_request.cc" "CMakeFiles/spectral_core.dir/src/core/ordering_request.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/ordering_request.cc.o.d"
  "/root/repo/src/core/recursive_bisection.cc" "CMakeFiles/spectral_core.dir/src/core/recursive_bisection.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/recursive_bisection.cc.o.d"
  "/root/repo/src/core/serialization.cc" "CMakeFiles/spectral_core.dir/src/core/serialization.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/serialization.cc.o.d"
  "/root/repo/src/core/sharded_engine.cc" "CMakeFiles/spectral_core.dir/src/core/sharded_engine.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/sharded_engine.cc.o.d"
  "/root/repo/src/core/spectral_lpm.cc" "CMakeFiles/spectral_core.dir/src/core/spectral_lpm.cc.o" "gcc" "CMakeFiles/spectral_core.dir/src/core/spectral_lpm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/spectral_eigen.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_sfc.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_space.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_linalg.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
