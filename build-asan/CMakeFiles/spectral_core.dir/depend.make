# Empty dependencies file for spectral_core.
# This may be replaced when dependencies are built.
