file(REMOVE_RECURSE
  "libspectral_core.a"
)
