file(REMOVE_RECURSE
  "CMakeFiles/spectral_core.dir/src/core/curve_order.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/curve_order.cc.o.d"
  "CMakeFiles/spectral_core.dir/src/core/linear_order.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/linear_order.cc.o.d"
  "CMakeFiles/spectral_core.dir/src/core/mapping_service.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/mapping_service.cc.o.d"
  "CMakeFiles/spectral_core.dir/src/core/multilevel.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/multilevel.cc.o.d"
  "CMakeFiles/spectral_core.dir/src/core/ordering_engine.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/ordering_engine.cc.o.d"
  "CMakeFiles/spectral_core.dir/src/core/ordering_request.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/ordering_request.cc.o.d"
  "CMakeFiles/spectral_core.dir/src/core/recursive_bisection.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/recursive_bisection.cc.o.d"
  "CMakeFiles/spectral_core.dir/src/core/serialization.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/serialization.cc.o.d"
  "CMakeFiles/spectral_core.dir/src/core/sharded_engine.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/sharded_engine.cc.o.d"
  "CMakeFiles/spectral_core.dir/src/core/spectral_lpm.cc.o"
  "CMakeFiles/spectral_core.dir/src/core/spectral_lpm.cc.o.d"
  "libspectral_core.a"
  "libspectral_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
