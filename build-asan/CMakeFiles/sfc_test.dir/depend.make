# Empty dependencies file for sfc_test.
# This may be replaced when dependencies are built.
