file(REMOVE_RECURSE
  "CMakeFiles/sfc_test.dir/tests/sfc_test.cc.o"
  "CMakeFiles/sfc_test.dir/tests/sfc_test.cc.o.d"
  "sfc_test"
  "sfc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
