# Empty dependencies file for spectral_query.
# This may be replaced when dependencies are built.
