file(REMOVE_RECURSE
  "CMakeFiles/spectral_query.dir/src/query/arrangement.cc.o"
  "CMakeFiles/spectral_query.dir/src/query/arrangement.cc.o.d"
  "CMakeFiles/spectral_query.dir/src/query/executor.cc.o"
  "CMakeFiles/spectral_query.dir/src/query/executor.cc.o.d"
  "CMakeFiles/spectral_query.dir/src/query/knn.cc.o"
  "CMakeFiles/spectral_query.dir/src/query/knn.cc.o.d"
  "CMakeFiles/spectral_query.dir/src/query/pair_metrics.cc.o"
  "CMakeFiles/spectral_query.dir/src/query/pair_metrics.cc.o.d"
  "CMakeFiles/spectral_query.dir/src/query/range_query.cc.o"
  "CMakeFiles/spectral_query.dir/src/query/range_query.cc.o.d"
  "libspectral_query.a"
  "libspectral_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
