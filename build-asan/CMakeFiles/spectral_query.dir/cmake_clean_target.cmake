file(REMOVE_RECURSE
  "libspectral_query.a"
)
