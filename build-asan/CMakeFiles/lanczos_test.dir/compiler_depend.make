# Empty compiler generated dependencies file for lanczos_test.
# This may be replaced when dependencies are built.
