file(REMOVE_RECURSE
  "CMakeFiles/lanczos_test.dir/tests/lanczos_test.cc.o"
  "CMakeFiles/lanczos_test.dir/tests/lanczos_test.cc.o.d"
  "lanczos_test"
  "lanczos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lanczos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
