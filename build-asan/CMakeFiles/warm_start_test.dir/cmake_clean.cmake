file(REMOVE_RECURSE
  "CMakeFiles/warm_start_test.dir/tests/warm_start_test.cc.o"
  "CMakeFiles/warm_start_test.dir/tests/warm_start_test.cc.o.d"
  "warm_start_test"
  "warm_start_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warm_start_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
