# Empty dependencies file for warm_start_test.
# This may be replaced when dependencies are built.
