# Empty dependencies file for spectral_workload.
# This may be replaced when dependencies are built.
