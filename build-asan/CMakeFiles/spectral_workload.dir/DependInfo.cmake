
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cc" "CMakeFiles/spectral_workload.dir/src/workload/generators.cc.o" "gcc" "CMakeFiles/spectral_workload.dir/src/workload/generators.cc.o.d"
  "/root/repo/src/workload/trace.cc" "CMakeFiles/spectral_workload.dir/src/workload/trace.cc.o" "gcc" "CMakeFiles/spectral_workload.dir/src/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/spectral_space.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
