file(REMOVE_RECURSE
  "libspectral_workload.a"
)
