file(REMOVE_RECURSE
  "CMakeFiles/spectral_workload.dir/src/workload/generators.cc.o"
  "CMakeFiles/spectral_workload.dir/src/workload/generators.cc.o.d"
  "CMakeFiles/spectral_workload.dir/src/workload/trace.cc.o"
  "CMakeFiles/spectral_workload.dir/src/workload/trace.cc.o.d"
  "libspectral_workload.a"
  "libspectral_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
