# Empty dependencies file for spectral_graph.
# This may be replaced when dependencies are built.
