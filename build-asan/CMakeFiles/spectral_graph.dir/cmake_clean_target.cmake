file(REMOVE_RECURSE
  "libspectral_graph.a"
)
