file(REMOVE_RECURSE
  "CMakeFiles/spectral_graph.dir/src/graph/coarsening.cc.o"
  "CMakeFiles/spectral_graph.dir/src/graph/coarsening.cc.o.d"
  "CMakeFiles/spectral_graph.dir/src/graph/graph.cc.o"
  "CMakeFiles/spectral_graph.dir/src/graph/graph.cc.o.d"
  "CMakeFiles/spectral_graph.dir/src/graph/grid_graph.cc.o"
  "CMakeFiles/spectral_graph.dir/src/graph/grid_graph.cc.o.d"
  "CMakeFiles/spectral_graph.dir/src/graph/laplacian.cc.o"
  "CMakeFiles/spectral_graph.dir/src/graph/laplacian.cc.o.d"
  "CMakeFiles/spectral_graph.dir/src/graph/partition.cc.o"
  "CMakeFiles/spectral_graph.dir/src/graph/partition.cc.o.d"
  "CMakeFiles/spectral_graph.dir/src/graph/point_graph.cc.o"
  "CMakeFiles/spectral_graph.dir/src/graph/point_graph.cc.o.d"
  "CMakeFiles/spectral_graph.dir/src/graph/subgraph.cc.o"
  "CMakeFiles/spectral_graph.dir/src/graph/subgraph.cc.o.d"
  "CMakeFiles/spectral_graph.dir/src/graph/traversal.cc.o"
  "CMakeFiles/spectral_graph.dir/src/graph/traversal.cc.o.d"
  "libspectral_graph.a"
  "libspectral_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
