
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/coarsening.cc" "CMakeFiles/spectral_graph.dir/src/graph/coarsening.cc.o" "gcc" "CMakeFiles/spectral_graph.dir/src/graph/coarsening.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/spectral_graph.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/spectral_graph.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/grid_graph.cc" "CMakeFiles/spectral_graph.dir/src/graph/grid_graph.cc.o" "gcc" "CMakeFiles/spectral_graph.dir/src/graph/grid_graph.cc.o.d"
  "/root/repo/src/graph/laplacian.cc" "CMakeFiles/spectral_graph.dir/src/graph/laplacian.cc.o" "gcc" "CMakeFiles/spectral_graph.dir/src/graph/laplacian.cc.o.d"
  "/root/repo/src/graph/partition.cc" "CMakeFiles/spectral_graph.dir/src/graph/partition.cc.o" "gcc" "CMakeFiles/spectral_graph.dir/src/graph/partition.cc.o.d"
  "/root/repo/src/graph/point_graph.cc" "CMakeFiles/spectral_graph.dir/src/graph/point_graph.cc.o" "gcc" "CMakeFiles/spectral_graph.dir/src/graph/point_graph.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "CMakeFiles/spectral_graph.dir/src/graph/subgraph.cc.o" "gcc" "CMakeFiles/spectral_graph.dir/src/graph/subgraph.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "CMakeFiles/spectral_graph.dir/src/graph/traversal.cc.o" "gcc" "CMakeFiles/spectral_graph.dir/src/graph/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/spectral_linalg.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_space.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
