file(REMOVE_RECURSE
  "CMakeFiles/curve_order_test.dir/tests/curve_order_test.cc.o"
  "CMakeFiles/curve_order_test.dir/tests/curve_order_test.cc.o.d"
  "curve_order_test"
  "curve_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
