# Empty compiler generated dependencies file for curve_order_test.
# This may be replaced when dependencies are built.
