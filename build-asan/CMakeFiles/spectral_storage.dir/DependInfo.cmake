
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "CMakeFiles/spectral_storage.dir/src/storage/buffer_pool.cc.o" "gcc" "CMakeFiles/spectral_storage.dir/src/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/io_model.cc" "CMakeFiles/spectral_storage.dir/src/storage/io_model.cc.o" "gcc" "CMakeFiles/spectral_storage.dir/src/storage/io_model.cc.o.d"
  "/root/repo/src/storage/layout.cc" "CMakeFiles/spectral_storage.dir/src/storage/layout.cc.o" "gcc" "CMakeFiles/spectral_storage.dir/src/storage/layout.cc.o.d"
  "/root/repo/src/storage/page_map.cc" "CMakeFiles/spectral_storage.dir/src/storage/page_map.cc.o" "gcc" "CMakeFiles/spectral_storage.dir/src/storage/page_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/spectral_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_eigen.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_sfc.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_space.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/spectral_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
