# Empty dependencies file for spectral_storage.
# This may be replaced when dependencies are built.
