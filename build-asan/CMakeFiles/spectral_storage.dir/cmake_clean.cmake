file(REMOVE_RECURSE
  "CMakeFiles/spectral_storage.dir/src/storage/buffer_pool.cc.o"
  "CMakeFiles/spectral_storage.dir/src/storage/buffer_pool.cc.o.d"
  "CMakeFiles/spectral_storage.dir/src/storage/io_model.cc.o"
  "CMakeFiles/spectral_storage.dir/src/storage/io_model.cc.o.d"
  "CMakeFiles/spectral_storage.dir/src/storage/layout.cc.o"
  "CMakeFiles/spectral_storage.dir/src/storage/layout.cc.o.d"
  "CMakeFiles/spectral_storage.dir/src/storage/page_map.cc.o"
  "CMakeFiles/spectral_storage.dir/src/storage/page_map.cc.o.d"
  "libspectral_storage.a"
  "libspectral_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
