file(REMOVE_RECURSE
  "libspectral_storage.a"
)
