# Empty compiler generated dependencies file for recursive_bisection_test.
# This may be replaced when dependencies are built.
