file(REMOVE_RECURSE
  "CMakeFiles/recursive_bisection_test.dir/tests/recursive_bisection_test.cc.o"
  "CMakeFiles/recursive_bisection_test.dir/tests/recursive_bisection_test.cc.o.d"
  "recursive_bisection_test"
  "recursive_bisection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_bisection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
