# Empty dependencies file for fiedler_test.
# This may be replaced when dependencies are built.
