file(REMOVE_RECURSE
  "CMakeFiles/fiedler_test.dir/tests/fiedler_test.cc.o"
  "CMakeFiles/fiedler_test.dir/tests/fiedler_test.cc.o.d"
  "fiedler_test"
  "fiedler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiedler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
