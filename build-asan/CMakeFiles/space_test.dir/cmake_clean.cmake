file(REMOVE_RECURSE
  "CMakeFiles/space_test.dir/tests/space_test.cc.o"
  "CMakeFiles/space_test.dir/tests/space_test.cc.o.d"
  "space_test"
  "space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
