# Empty dependencies file for space_test.
# This may be replaced when dependencies are built.
