file(REMOVE_RECURSE
  "CMakeFiles/sharded_engine_test.dir/tests/sharded_engine_test.cc.o"
  "CMakeFiles/sharded_engine_test.dir/tests/sharded_engine_test.cc.o.d"
  "sharded_engine_test"
  "sharded_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
