// Declustering: stripe a mapped grid over M disks round-robin and measure
// how evenly range-query work spreads — another application from the
// paper's conclusion.
//
//   $ ./example_declustering_demo

#include <cstdlib>
#include <iostream>

#include "core/mapping_service.h"
#include "core/ordering_request.h"
#include "index/declustering.h"
#include "query/range_query.h"
#include "space/point_set.h"

int main() {
  using namespace spectral;

  const GridSpec grid({16, 16});
  const PointSet points = PointSet::FullGrid(grid);

  // One batch, three engines: the service fans the solves out and would
  // serve any repeat from its order cache.
  MappingService service;
  auto results = service.OrderBatch(std::vector<OrderingRequest>{
      OrderingRequest::ForPoints(points, "sweep"),
      OrderingRequest::ForPoints(points, "hilbert"),
      OrderingRequest::ForPoints(points, "spectral")});
  auto& sweep = results[0];
  auto& hilbert = results[1];
  auto& spectral_result = results[2];
  if (!sweep.ok() || !hilbert.ok() || !spectral_result.ok()) {
    std::cerr << "order construction failed\n";
    return EXIT_FAILURE;
  }

  RangeQueryShape shape;
  shape.extents = {4, 4};

  std::cout << "Round-robin declustering over 4 disks, all 4x4 queries on a "
               "16x16 grid\n";
  std::cout << "(mean of max-disk-load / optimal-load; 1.0 = perfect "
               "parallel I/O)\n\n";
  auto report = [&](const char* name, const LinearOrder& order) {
    const auto stats = EvaluateDeclustering(grid, order, shape, 4);
    std::cout << name << ": mean balance " << stats.mean_balance_ratio
              << ", worst " << stats.max_balance_ratio << "\n";
  };
  report("sweep   ", sweep->order);
  report("hilbert ", hilbert->order);
  report("spectral", spectral_result->order);
  return EXIT_SUCCESS;
}
