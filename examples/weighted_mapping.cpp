// Weighted graphs (paper section 4, footnote 1): edge weights encode the
// priority of placing two points close in the 1-d order. Here we map a
// user-supplied graph directly — a "two rooms connected by a corridor"
// layout — and watch the order keep each room contiguous.
//
//   $ ./example_weighted_mapping

#include <cstdlib>
#include <iostream>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "graph/graph.h"

int main() {
  using namespace spectral;

  // Vertices 0..3: room A (clique, strong weights). Vertices 4..7: room B.
  // Vertex 8: the corridor, weakly connected to both rooms.
  std::vector<GraphEdge> edges;
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = i + 1; j < 4; ++j) edges.push_back({i, j, 4.0});
  }
  for (int64_t i = 4; i < 8; ++i) {
    for (int64_t j = i + 1; j < 8; ++j) edges.push_back({i, j, 4.0});
  }
  edges.push_back({3, 8, 0.5});
  edges.push_back({8, 4, 0.5});
  const Graph graph = Graph::FromEdges(9, edges);

  // The kGraph input kind: spectral-family engines accept a caller-built
  // graph directly (curve engines report Unimplemented).
  auto engine = MakeOrderingEngine("spectral");
  if (!engine.ok() || !(*engine)->supports_graph_input()) {
    std::cerr << "spectral engine unavailable\n";
    return EXIT_FAILURE;
  }
  auto result = (*engine)->Order(OrderingRequest::ForGraph(graph));
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "Weighted spectral mapping of two 4-cliques joined by a weak "
               "corridor vertex\n";
  std::cout << "lambda2 = " << result->lambda2 << "\n\n";
  std::cout << "vertex -> rank:\n";
  for (int64_t v = 0; v < 9; ++v) {
    const char* role = v < 4 ? "room A  " : (v < 8 ? "room B  " : "corridor");
    std::cout << "  v" << v << " (" << role << ") -> "
              << result->order.RankOf(v) << "\n";
  }
  std::cout << "\nEach room occupies a contiguous rank block and the "
               "corridor sits between them.\n";
  return EXIT_SUCCESS;
}
