// Quickstart: map an 8x8 grid with Spectral LPM, compare it with the
// Hilbert curve, and batch repeated traffic through the MappingService
// cache.
//
//   $ ./example_quickstart

#include <cstdlib>
#include <iostream>

#include "core/mapping_service.h"
#include "core/ordering_request.h"
#include "space/point_set.h"

int main() {
  using namespace spectral;

  // 1. The input: a set of multi-dimensional points. Here, a full 8x8 grid;
  //    any set of integer points works (sparse, skewed, any dimension).
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);

  // 2. Every ask is an OrderingRequest: an engine name from the registry
  //    ("spectral" runs the paper's pipeline: graph build -> Laplacian ->
  //    Fiedler vector -> sort), a tagged input, and per-request options
  //    (connectivity, weights, affinity edges, solver parallelism).
  auto engine = MakeOrderingEngine("spectral");
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return EXIT_FAILURE;
  }
  auto result = (*engine)->Order(OrderingRequest::ForPoints(points));
  if (!result.ok()) {
    std::cerr << "mapping failed: " << result.status() << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "Spectral LPM on an 8x8 grid\n";
  std::cout << "lambda2 (algebraic connectivity) = " << result->lambda2
            << ", solver: " << result->method << "\n\n";
  std::cout << "spectral order (rank of each cell):\n"
            << result->order.ToGridString(points) << "\n";

  // 3. Compare with a fractal baseline — same request shape, different
  //    engine name.
  auto hilbert_engine = MakeOrderingEngine("hilbert");
  if (!hilbert_engine.ok()) {
    std::cerr << hilbert_engine.status() << "\n";
    return EXIT_FAILURE;
  }
  auto hilbert =
      (*hilbert_engine)->Order(OrderingRequest::ForPoints(points, "hilbert"));
  if (!hilbert.ok()) {
    std::cerr << "hilbert failed: " << hilbert.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "hilbert order for comparison:\n"
            << hilbert->order.ToGridString(points) << "\n";

  // 4. Serving traffic: MappingService batches heterogeneous requests
  //    across a shared worker pool and caches orders by request
  //    fingerprint, so repeated asks cost zero additional eigensolves.
  MappingService service;
  const std::vector<OrderingRequest> batch = {
      OrderingRequest::ForPoints(points, "spectral"),
      OrderingRequest::ForPoints(points, "hilbert"),
      OrderingRequest::ForPoints(points, "spectral"),  // served from cache
  };
  auto batched = service.OrderBatch(batch);
  for (size_t i = 0; i < batched.size(); ++i) {
    if (!batched[i].ok()) {
      std::cerr << batched[i].status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "batch[" << i << "] " << batch[i].engine << ": "
              << batched[i]->detail << "\n";
  }
  const MappingServiceStats stats = service.stats();
  std::cout << "service stats: requests=" << stats.requests
            << " solves=" << stats.solves << " hits=" << stats.cache_hits
            << " misses=" << stats.cache_misses << "\n\n";

  // 5. Use the order: rank lookups are O(1) in both directions.
  const std::vector<Coord> center = {4, 4};
  const int64_t point_index = grid.Flatten(center);
  std::cout << "cell (4,4) -> rank " << result->order.RankOf(point_index)
            << "; rank 0 -> point index " << result->order.PointAtRank(0)
            << "\n";
  return EXIT_SUCCESS;
}
