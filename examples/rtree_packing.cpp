// R-tree packing: bulk-load a packed R-tree from different linear orders
// over a clustered dataset and compare query I/O — one of the applications
// the paper's conclusion proposes for Spectral LPM.
//
//   $ ./example_rtree_packing

#include <cstdlib>
#include <iostream>

#include "core/curve_order.h"
#include "core/spectral_lpm.h"
#include "index/packed_rtree.h"
#include "util/random.h"
#include "workload/generators.h"

int main() {
  using namespace spectral;

  // A skewed dataset: 600 points in 4 Gaussian clusters on a 48x48 grid.
  Rng rng(2024);
  const PointSet points =
      SampleGaussianClusters(GridSpec({48, 48}), 4, 600, 0.07, rng);

  struct Candidate {
    const char* name;
    LinearOrder order;
  };
  std::vector<Candidate> candidates;

  auto hilbert = OrderByCurve(points, CurveKind::kHilbert);
  auto sweep = OrderByCurve(points, CurveKind::kSweep);
  auto spectral_result = SpectralMapper().Map(points);
  if (!hilbert.ok() || !sweep.ok() || !spectral_result.ok()) {
    std::cerr << "order construction failed\n";
    return EXIT_FAILURE;
  }
  candidates.push_back({"sweep", std::move(*sweep)});
  candidates.push_back({"hilbert", std::move(*hilbert)});
  candidates.push_back({"spectral", std::move(spectral_result->order)});

  std::cout << "Packed R-tree from each order (leaf=16, fanout=8), 600 "
               "clustered points\n\n";
  std::cout << "order      leaves  leaf_volume  overlap  nodes/query\n";
  for (const auto& candidate : candidates) {
    const PackedRTree tree =
        PackedRTree::Build(points, candidate.order, 16, 8);
    const auto stats = tree.ComputeStats();

    // 200 random 8x8 queries.
    Rng qrng(7);
    double nodes = 0.0;
    for (int q = 0; q < 200; ++q) {
      const Coord x = static_cast<Coord>(qrng.UniformInt(0, 40));
      const Coord y = static_cast<Coord>(qrng.UniformInt(0, 40));
      const std::vector<Coord> lo = {x, y};
      const std::vector<Coord> hi = {static_cast<Coord>(x + 7),
                                     static_cast<Coord>(y + 7)};
      nodes += static_cast<double>(tree.RangeQuery(lo, hi).nodes_visited);
    }
    std::printf("%-9s  %6lld  %11.0f  %7.0f  %11.2f\n", candidate.name,
                static_cast<long long>(stats.num_leaves),
                stats.total_leaf_volume, stats.leaf_overlap_volume,
                nodes / 200.0);
  }
  return EXIT_SUCCESS;
}
