// R-tree packing: bulk-load a packed R-tree from different linear orders
// over a clustered dataset and compare query I/O — one of the applications
// the paper's conclusion proposes for Spectral LPM.
//
//   $ ./example_rtree_packing

#include <cstdlib>
#include <iostream>

#include "core/mapping_service.h"
#include "core/ordering_request.h"
#include "index/packed_rtree.h"
#include "util/random.h"
#include "workload/generators.h"

int main() {
  using namespace spectral;

  // A skewed dataset: 600 points in 4 Gaussian clusters on a 48x48 grid.
  Rng rng(2024);
  const PointSet points =
      SampleGaussianClusters(GridSpec({48, 48}), 4, 600, 0.07, rng);

  struct Candidate {
    const char* name;
    LinearOrder order;
  };
  std::vector<Candidate> candidates;

  const std::vector<const char*> engine_names = {"sweep", "hilbert",
                                                 "spectral"};
  std::vector<OrderingRequest> requests;
  for (const char* engine_name : engine_names) {
    requests.push_back(OrderingRequest::ForPoints(points, engine_name));
  }
  MappingService service;
  auto results = service.OrderBatch(requests);
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::cerr << engine_names[i] << ": " << results[i].status() << "\n";
      return EXIT_FAILURE;
    }
    candidates.push_back({engine_names[i], std::move(results[i]->order)});
  }

  std::cout << "Packed R-tree from each order (leaf=16, fanout=8), 600 "
               "clustered points\n\n";
  std::cout << "order      leaves  leaf_volume  overlap  nodes/query\n";
  for (const auto& candidate : candidates) {
    const PackedRTree tree =
        PackedRTree::Build(points, candidate.order,
                           {.leaf_capacity = 16, .fanout = 8});
    const auto stats = tree.ComputeStats();

    // 200 random 8x8 queries.
    Rng qrng(7);
    double nodes = 0.0;
    for (int q = 0; q < 200; ++q) {
      const Coord x = static_cast<Coord>(qrng.UniformInt(0, 40));
      const Coord y = static_cast<Coord>(qrng.UniformInt(0, 40));
      const std::vector<Coord> lo = {x, y};
      const std::vector<Coord> hi = {static_cast<Coord>(x + 7),
                                     static_cast<Coord>(y + 7)};
      nodes += static_cast<double>(tree.RangeQuery(lo, hi).nodes_visited);
    }
    std::printf("%-9s  %6lld  %11.0f  %7.0f  %11.2f\n", candidate.name,
                static_cast<long long>(stats.num_leaves),
                stats.total_leaf_volume, stats.leaf_overlap_volume,
                nodes / 200.0);
  }
  return EXIT_SUCCESS;
}
