// Offline pipeline: generate a dataset, persist it, map it (the step you
// would run on a beefy machine or via tools/spectral_map_cli), load the
// order back, build the physical design (layout + rank B+-tree + packed
// R-tree), and execute range queries against it — the full life cycle of a
// locality-preserving mapping.
//
//   $ ./example_offline_pipeline

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "core/serialization.h"
#include "query/executor.h"
#include "space/point_set.h"

int main() {
  using namespace spectral;

  const GridSpec grid({16, 16});
  const auto points = std::make_shared<PointSet>(PointSet::FullGrid(grid));

  // 1. Persist the dataset (any process could have produced this file).
  const auto dir = std::filesystem::temp_directory_path();
  const std::string points_path = (dir / "pipeline_points.txt").string();
  const std::string order_path = (dir / "pipeline_order.txt").string();
  if (!SavePointSetToFile(*points, points_path).ok()) {
    std::cerr << "could not write " << points_path << "\n";
    return EXIT_FAILURE;
  }

  // 2. Offline mapping step: load, map (any registry engine works; the CLI
  //    exposes the same names), persist the order.
  {
    auto loaded = LoadPointSetFromFile(points_path);
    if (!loaded.ok()) {
      std::cerr << loaded.status() << "\n";
      return EXIT_FAILURE;
    }
    auto engine = MakeOrderingEngine("spectral");
    if (!engine.ok()) {
      std::cerr << engine.status() << "\n";
      return EXIT_FAILURE;
    }
    auto mapped = (*engine)->Order(OrderingRequest::ForPoints(*loaded));
    if (!mapped.ok()) {
      std::cerr << mapped.status() << "\n";
      return EXIT_FAILURE;
    }
    if (!SaveLinearOrderToFile(mapped->order, order_path).ok()) {
      std::cerr << "could not write " << order_path << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "offline step: mapped " << loaded->size()
              << " points, lambda2 = " << mapped->lambda2 << "\n";
  }

  // 3. Serving step: load the order back and hand-assemble the physical
  //    design from it (exactly the pieces BuildQueryPath bundles when the
  //    order is computed in-process).
  auto order = LoadLinearOrderFromFile(order_path);
  if (!order.ok()) {
    std::cerr << order.status() << "\n";
    return EXIT_FAILURE;
  }
  const int64_t page_size = 16;
  const StorageLayout layout(*order, page_size);
  const StaticBPlusTree rank_index = StaticBPlusTree::BuildRankIndex(*order);
  const PackedRTree rtree = PackedRTree::Build(*points, *order);
  const QueryExecutor executor(*points, layout, rank_index, rtree,
                               /*pool=*/nullptr);

  // A competing design from the same request pipeline, one call.
  QueryPathOptions options;
  options.page_size = page_size;
  auto hilbert = BuildQueryPath(OrderingRequest::ForPoints(points, "hilbert"),
                                /*service=*/nullptr, options);
  if (!hilbert.ok()) {
    std::cerr << hilbert.status() << "\n";
    return EXIT_FAILURE;
  }
  const QueryExecutor hilbert_executor = hilbert->MakeExecutor(nullptr);

  std::cout << "\nquery              spectral(scan/pages)  hilbert(scan/pages)\n";
  const std::vector<std::pair<std::vector<Coord>, std::vector<Coord>>> boxes =
      {{{0, 0}, {3, 3}}, {{6, 6}, {9, 9}}, {{4, 0}, {5, 15}},
       {{0, 4}, {15, 5}}};
  for (const auto& [lo, hi] : boxes) {
    const auto a = executor.RangeViaBTree(lo, hi);
    const auto b = hilbert_executor.RangeViaBTree(lo, hi);
    std::printf("[%2d,%2d]x[%2d,%2d]     %4lld / %-3lld            %4lld / %-3lld\n",
                lo[0], hi[0], lo[1], hi[1],
                static_cast<long long>(a.records_scanned),
                static_cast<long long>(a.pages_touched),
                static_cast<long long>(b.records_scanned),
                static_cast<long long>(b.pages_touched));
  }

  std::filesystem::remove(points_path);
  std::filesystem::remove(order_path);
  return EXIT_SUCCESS;
}
