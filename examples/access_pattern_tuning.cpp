// Access-pattern tuning (paper section 4): if point q is usually accessed
// right after point p, add an affinity edge (p, q) so Spectral LPM places
// them on nearby disk positions — something no space-filling curve can do.
//
//   $ ./example_access_pattern_tuning

#include <cstdlib>
#include <iostream>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "space/point_set.h"

int main() {
  using namespace spectral;

  const GridSpec grid({10, 10});
  const PointSet points = PointSet::FullGrid(grid);

  // Two hot pairs living in opposite corners of the space.
  const int64_t a1 = grid.Flatten(std::vector<Coord>{0, 0});
  const int64_t a2 = grid.Flatten(std::vector<Coord>{9, 9});
  const int64_t b1 = grid.Flatten(std::vector<Coord>{0, 9});
  const int64_t b2 = grid.Flatten(std::vector<Coord>{9, 0});

  auto report = [&](const char* label, const LinearOrder& order) {
    std::cout << label << ": |rank(a1)-rank(a2)| = "
              << std::abs(order.RankOf(a1) - order.RankOf(a2))
              << ", |rank(b1)-rank(b2)| = "
              << std::abs(order.RankOf(b1) - order.RankOf(b2)) << "\n";
  };

  auto engine = MakeOrderingEngine("spectral");
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return EXIT_FAILURE;
  }
  auto plain = (*engine)->Order(OrderingRequest::ForPoints(points));
  if (!plain.ok()) {
    std::cerr << plain.status() << "\n";
    return EXIT_FAILURE;
  }
  report("plain spectral    ", plain->order);

  // Affinity edges tell the mapper these pairs behave as if adjacent —
  // the kPointsWithAffinity input kind.
  auto tuned = (*engine)->Order(OrderingRequest::ForPointsWithAffinity(
      points, {{a1, a2, 3.0}, {b1, b2, 3.0}}));
  if (!tuned.ok()) {
    std::cerr << tuned.status() << "\n";
    return EXIT_FAILURE;
  }
  report("with affinity edges", tuned->order);

  std::cout << "\ntuned order (note the corners drawn toward each other):\n"
            << tuned->order.ToGridString(points);
  return EXIT_SUCCESS;
}
