// Experiment E1 — paper Figure 1 (the boundary effect of fractals).
//
// Fractal curves optimize locally per quadrant: two points that are grid
// neighbors but straddle a quadrant boundary can land very far apart in the
// 1-d order. We quantify the effect exactly: over all Manhattan-distance-1
// pairs, the worst and mean 1-d gap, plus the gap of the paper's motivating
// pair (the two cells around the vertical center line, middle row).

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "query/pair_metrics.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void RunForSide(Coord side, TablePrinter& table) {
  const GridSpec grid = GridSpec::Uniform(2, side);
  const PointSet points = PointSet::FullGrid(grid);

  BuildOrdersOptions build;
  build.include_extras = true;
  build.spectral = DefaultSpectralOptions(2);
  const auto orders = BuildOrders(points, build);

  // The paper's P1/P2: the pair straddling the center vertical boundary in
  // the middle row (Figure 1 draws them adjacent across the quadrants).
  const Coord mid = static_cast<Coord>(side / 2);
  const std::vector<Coord> p1 = {mid, static_cast<Coord>(mid - 1)};
  const std::vector<Coord> p2 = {mid, mid};
  const int64_t i1 = grid.Flatten(p1);
  const int64_t i2 = grid.Flatten(p2);

  const std::vector<int64_t> distances = {1};
  for (const auto& named : orders) {
    const auto series =
        ComputePairDistanceSeries(points, named.order, distances);
    const int64_t center_gap =
        std::llabs(named.order.RankOf(i1) - named.order.RankOf(i2));
    table.AddRow({FormatInt(side), named.name,
                  FormatInt(center_gap),
                  FormatInt(series.max_rank_distance[0]),
                  FormatDouble(series.mean_rank_distance[0], 2)});
  }
}

void Run() {
  std::cout << "Figure 1: boundary effect - 1-d gap of spatially adjacent "
               "pairs (center pair, worst pair, mean over all neighbor "
               "pairs)\n\n";
  TablePrinter table;
  table.SetHeader({"side", "mapping", "center_pair_gap", "max_neighbor_gap",
                   "mean_neighbor_gap"});
  RunForSide(4, table);
  RunForSide(8, table);
  RunForSide(16, table);
  EmitTable("fig1_boundary", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
