// Registry smoke bench: every OrderingEngine on one 64x64 grid through the
// MappingService facade — cold wall time, warm (cached) wall time, Spearman
// rank correlation against the spectral order, and the per-engine cache hit
// rate — plus a multi-component parallel-solve scaling section. Each run
// emits the human table, a CSV mirror, and a machine-readable
// bench_results/BENCH_ordering_engines.json (one object per engine) so
// successive runs are diffable — the perf-tracking trajectory.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "stats/rank_correlation.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace spectral {
namespace bench {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

// Four far-apart 24x24 islands: a disconnected input whose components the
// spectral solver can process concurrently.
PointSet MultiComponentPoints() {
  PointSet points(2);
  const Coord kSide = 24;
  const Coord kGap = 1000;
  for (Coord island = 0; island < 4; ++island) {
    const Coord x0 = island * kGap;
    for (Coord x = 0; x < kSide; ++x) {
      for (Coord y = 0; y < kSide; ++y) {
        points.Add(std::vector<Coord>{static_cast<Coord>(x0 + x), y});
      }
    }
  }
  return points;
}

struct EngineSample {
  std::string engine;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double spearman = 0.0;
  double cache_hit_rate = 0.0;
  std::string detail;
};

void EmitJson(const std::vector<EngineSample>& samples) {
  const std::string path = "bench_results/BENCH_ordering_engines.json";
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "(could not write " << path << ")\n";
    return;
  }
  out << "[\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const EngineSample& s = samples[i];
    out << "  {\"engine\": \"" << s.engine << "\", \"cold_ms\": "
        << FormatDouble(s.cold_ms, 3) << ", \"warm_ms\": "
        << FormatDouble(s.warm_ms, 3) << ", \"spearman_vs_spectral\": "
        << FormatDouble(s.spearman, 6) << ", \"cache_hit_rate\": "
        << FormatDouble(s.cache_hit_rate, 3) << "}"
        << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "[json: " << path << "]\n";
}

void RunRegistry() {
  const GridSpec grid = GridSpec::Uniform(2, 64);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "OrderingEngine registry on a 64x64 grid via MappingService: "
               "cold/warm wall time, Spearman rho vs the spectral order, and "
               "cache hit rate\n\n";

  MappingService service;  // default parallelism + LRU capacity

  auto request_for = [&](const std::string& name) {
    OrderingRequest request = OrderingRequest::ForPoints(points, name);
    request.options.spectral = DefaultSpectralOptions(2);
    return request;
  };

  // First pass: cold + warm timings per engine ("spectral" first in the
  // registry, so its order doubles as the correlation reference without
  // pre-warming any cache).
  std::vector<EngineSample> samples;
  std::vector<std::vector<int64_t>> engine_ranks;
  for (const std::string& name : AllOrderingEngineNames()) {
    const OrderingRequest request = request_for(name);
    const MappingServiceStats before = service.stats();

    WallTimer cold_timer;
    auto result = service.Order(request);
    const double cold_ms = cold_timer.ElapsedSeconds() * 1e3;
    SPECTRAL_CHECK(result.ok()) << name << ": " << result.status();
    WallTimer warm_timer;
    auto warm = service.Order(request);
    const double warm_ms = warm_timer.ElapsedSeconds() * 1e3;
    SPECTRAL_CHECK(warm.ok()) << name << ": " << warm.status();

    const MappingServiceStats after = service.stats();
    const double served =
        static_cast<double>(after.requests - before.requests);
    EngineSample sample;
    sample.engine = name;
    sample.cold_ms = cold_ms;
    sample.warm_ms = warm_ms;
    sample.cache_hit_rate =
        static_cast<double>(after.cache_hits - before.cache_hits) / served;
    sample.detail = result->detail;
    samples.push_back(sample);
    engine_ranks.push_back(Ranks(result->order));
  }

  const std::vector<int64_t>& spectral_ranks = engine_ranks.front();
  TablePrinter table;
  table.SetHeader({"engine", "cold_ms", "warm_ms", "spearman_vs_spectral",
                   "hit_rate", "detail"});
  for (size_t i = 0; i < samples.size(); ++i) {
    EngineSample& sample = samples[i];
    sample.spearman = SpearmanRho(spectral_ranks, engine_ranks[i]);
    table.AddRow({sample.engine, FormatDouble(sample.cold_ms, 2),
                  FormatDouble(sample.warm_ms, 2),
                  FormatDouble(sample.spearman, 4),
                  FormatDouble(sample.cache_hit_rate, 2), sample.detail});
  }
  EmitTable("ordering_engines", table);
  EmitJson(samples);
}

void RunParallelScaling() {
  const PointSet points = MultiComponentPoints();
  std::cout << "\nParallel spectral solve, 4 disconnected 24x24 components ("
            << points.size() << " points): wall time by service thread "
               "count (cache off so every run solves)\n\n";

  TablePrinter table;
  table.SetHeader({"parallelism", "ms", "speedup_vs_serial", "identical"});
  double serial_ms = 0.0;
  std::vector<int64_t> serial_ranks;
  for (int parallelism : {1, 2, 4}) {
    MappingServiceOptions service_options;
    service_options.parallelism = parallelism;
    service_options.cache_capacity = 0;
    MappingService service(service_options);

    OrderingRequest request = OrderingRequest::ForPoints(points, "spectral");
    request.options.spectral = DefaultSpectralOptions(2);
    request.options.spectral.parallelism = parallelism;

    WallTimer timer;
    auto result = service.Order(request);
    const double ms = timer.ElapsedSeconds() * 1e3;
    SPECTRAL_CHECK(result.ok()) << result.status();
    SPECTRAL_CHECK_EQ(result->num_components, 4);

    const std::vector<int64_t> ranks = Ranks(result->order);
    if (parallelism == 1) {
      serial_ms = ms;
      serial_ranks = ranks;
    }
    table.AddRow({FormatInt(parallelism), FormatDouble(ms, 2),
                  FormatDouble(serial_ms / ms, 2),
                  ranks == serial_ranks ? "yes" : "NO"});
  }
  EmitTable("ordering_engines_parallel", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::RunRegistry();
  spectral::bench::RunParallelScaling();
  return 0;
}
