// Registry smoke bench: every OrderingEngine on one 64x64 grid through the
// MappingService facade — cold wall time, warm (cached) wall time, Spearman
// rank correlation against the spectral order, and the per-engine cache hit
// rate — plus a multi-component parallel-solve scaling section and a
// sharded-engine section (grid + Gaussian-kernel blob workloads, K in
// {1, 2, 4, 8}, quality and wall-clock vs. the monolithic solve at equal
// parallelism). Each run emits the human tables, CSV mirrors, and a
// machine-readable bench_results/BENCH_ordering_engines.json (one object
// per engine/workload/shard-count row) that
// tools/check_bench_regression.py diffs against the committed baseline —
// the CI perf gate.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "stats/rank_correlation.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/generators.h"

namespace spectral {
namespace bench {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

// Four far-apart 24x24 islands: a disconnected input whose components the
// spectral solver can process concurrently.
PointSet MultiComponentPoints() {
  PointSet points(2);
  const Coord kSide = 24;
  const Coord kGap = 1000;
  for (Coord island = 0; island < 4; ++island) {
    const Coord x0 = island * kGap;
    for (Coord x = 0; x < kSide; ++x) {
      for (Coord y = 0; y < kSide; ++y) {
        points.Add(std::vector<Coord>{static_cast<Coord>(x0 + x), y});
      }
    }
  }
  return points;
}

// Canonical input order: lexicographically sorted points. Vertex ids are
// arbitrary, but the spectral sign convention anchors at the lowest id —
// sorting puts an extreme point first, which keeps the orientation of both
// the monolithic and the sharded order robust (run-to-run comparable).
PointSet LexSorted(const PointSet& in) {
  std::vector<std::vector<Coord>> rows;
  rows.reserve(static_cast<size_t>(in.size()));
  for (int64_t i = 0; i < in.size(); ++i) {
    rows.emplace_back(in[i].begin(), in[i].end());
  }
  std::sort(rows.begin(), rows.end());
  PointSet out(in.dims());
  for (const auto& row : rows) out.Add(row);
  return out;
}

struct EngineSample {
  std::string engine;
  std::string workload;
  int shards = 0;  // 0 = not a sharded row
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double spearman = 0.0;
  double cache_hit_rate = 0.0;
  std::string detail;
};

std::vector<EngineSample>& AllSamples() {
  static std::vector<EngineSample> samples;
  return samples;
}

void EmitJson() {
  std::vector<std::string> rows;
  for (const EngineSample& s : AllSamples()) {
    rows.push_back("{\"engine\": \"" + s.engine + "\", \"workload\": \"" +
                   s.workload + "\", \"shards\": " + FormatInt(s.shards) +
                   ", \"cold_ms\": " + FormatDouble(s.cold_ms, 3) +
                   ", \"warm_ms\": " + FormatDouble(s.warm_ms, 3) +
                   ", \"spearman_vs_spectral\": " +
                   FormatDouble(s.spearman, 6) + ", \"cache_hit_rate\": " +
                   FormatDouble(s.cache_hit_rate, 3) + "}");
  }
  EmitJsonRows("BENCH_ordering_engines.json", rows);
}

struct TimedRun {
  EngineSample sample;
  std::vector<int64_t> ranks;
};

// Cold + warm timings for `request` on a fresh service (cold cache), plus
// the cache hit rate over the two calls and the computed ranks. The caller
// fills in `sample.spearman` and records the row via AllSamples().
TimedRun TimeRequest(const OrderingRequest& request,
                     const std::string& workload, int shards) {
  MappingService service;  // default parallelism + LRU capacity
  WallTimer cold_timer;
  auto result = service.Order(request);
  const double cold_ms = cold_timer.ElapsedSeconds() * 1e3;
  SPECTRAL_CHECK(result.ok()) << request.engine << ": " << result.status();
  WallTimer warm_timer;
  auto warm = service.Order(request);
  const double warm_ms = warm_timer.ElapsedSeconds() * 1e3;
  SPECTRAL_CHECK(warm.ok()) << request.engine << ": " << warm.status();

  const MappingServiceStats stats = service.stats();
  TimedRun run;
  run.sample.engine = request.engine;
  run.sample.workload = workload;
  run.sample.shards = shards;
  run.sample.cold_ms = cold_ms;
  run.sample.warm_ms = warm_ms;
  run.sample.cache_hit_rate = static_cast<double>(stats.cache_hits) /
                              static_cast<double>(stats.requests);
  run.sample.detail = result->detail;
  run.sample.spearman = 1.0;
  run.ranks = Ranks(result->order);
  return run;
}

void RunRegistry() {
  const GridSpec grid = GridSpec::Uniform(2, 64);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "OrderingEngine registry on a 64x64 grid via MappingService: "
               "cold/warm wall time, Spearman rho vs the spectral order, and "
               "cache hit rate\n\n";

  MappingService service;  // default parallelism + LRU capacity

  auto request_for = [&](const std::string& name) {
    OrderingRequest request = OrderingRequest::ForPoints(points, name);
    request.options.spectral = DefaultSpectralOptions(2);
    return request;
  };

  // First pass: cold + warm timings per engine ("spectral" first in the
  // registry, so its order doubles as the correlation reference without
  // pre-warming any cache).
  std::vector<EngineSample> samples;
  std::vector<std::vector<int64_t>> engine_ranks;
  for (const std::string& name : AllOrderingEngineNames()) {
    const OrderingRequest request = request_for(name);
    const MappingServiceStats before = service.stats();

    WallTimer cold_timer;
    auto result = service.Order(request);
    const double cold_ms = cold_timer.ElapsedSeconds() * 1e3;
    SPECTRAL_CHECK(result.ok()) << name << ": " << result.status();
    WallTimer warm_timer;
    auto warm = service.Order(request);
    const double warm_ms = warm_timer.ElapsedSeconds() * 1e3;
    SPECTRAL_CHECK(warm.ok()) << name << ": " << warm.status();

    const MappingServiceStats after = service.stats();
    const double served =
        static_cast<double>(after.requests - before.requests);
    EngineSample sample;
    sample.engine = name;
    sample.workload = "grid64x64";
    // Sharded rows key by their real shard count everywhere (the
    // regression gate keys rows by (engine, workload, shards), and 0
    // would alias this row with the monolithic ones).
    if (name == "sharded-spectral") {
      sample.shards = request.options.sharded.num_shards;
    }
    sample.cold_ms = cold_ms;
    sample.warm_ms = warm_ms;
    sample.cache_hit_rate =
        static_cast<double>(after.cache_hits - before.cache_hits) / served;
    sample.detail = result->detail;
    samples.push_back(sample);
    engine_ranks.push_back(Ranks(result->order));
  }

  const std::vector<int64_t>& spectral_ranks = engine_ranks.front();
  TablePrinter table;
  table.SetHeader({"engine", "cold_ms", "warm_ms", "spearman_vs_spectral",
                   "hit_rate", "detail"});
  for (size_t i = 0; i < samples.size(); ++i) {
    EngineSample& sample = samples[i];
    sample.spearman = SpearmanRho(spectral_ranks, engine_ranks[i]);
    table.AddRow({sample.engine, FormatDouble(sample.cold_ms, 2),
                  FormatDouble(sample.warm_ms, 2),
                  FormatDouble(sample.spearman, 4),
                  FormatDouble(sample.cache_hit_rate, 2), sample.detail});
    AllSamples().push_back(sample);
  }
  EmitTable("ordering_engines", table);
}

// Sharded engine vs. the monolithic solve, at equal parallelism (both run
// through a default MappingService, so component solves / matvecs /
// shard fan-out all draw from the same worker count). Workloads: a
// rectangular full grid and a Gaussian-kernel connected blob — data with a
// dominant direction, the regime a sharded order is designed for (see
// core/sharded_engine.h for the degenerate-direction caveat; a square
// grid's direction is a canonicalization convention, so its Spearman vs.
// the monolithic convention is structurally lower and is not gated).
void RunSharded(const std::string& workload, const PointSet& points,
                const SpectralLpmOptions& spectral, TablePrinter& table) {
  OrderingRequest mono = OrderingRequest::ForPoints(points, "spectral");
  mono.options.spectral = spectral;
  const TimedRun mono_run = TimeRequest(mono, workload, /*shards=*/0);
  AllSamples().push_back(mono_run.sample);
  table.AddRow({workload, "spectral", "-",
                FormatDouble(mono_run.sample.cold_ms, 1),
                FormatDouble(mono_run.sample.warm_ms, 2), "1.00", "1.000000",
                mono_run.sample.detail});

  for (const int shards : {1, 2, 4, 8}) {
    OrderingRequest request =
        OrderingRequest::ForPoints(points, "sharded-spectral");
    request.options.spectral = spectral;
    request.options.sharded.num_shards = shards;
    TimedRun run = TimeRequest(request, workload, shards);
    run.sample.spearman = SpearmanRho(mono_run.ranks, run.ranks);
    AllSamples().push_back(run.sample);
    table.AddRow({workload, "sharded-spectral", FormatInt(shards),
                  FormatDouble(run.sample.cold_ms, 1),
                  FormatDouble(run.sample.warm_ms, 2),
                  FormatDouble(mono_run.sample.cold_ms / run.sample.cold_ms,
                               2),
                  FormatDouble(run.sample.spearman, 6), run.sample.detail});
  }
}

void RunShardedSection() {
  std::cout << "\nSharded engine: partition + concurrent shard solves + "
               "stitch, vs the monolithic spectral solve at equal "
               "parallelism (cold = fresh cache; K=1 delegates and must "
               "match spectral exactly)\n\n";
  TablePrinter table;
  table.SetHeader({"workload", "engine", "shards", "cold_ms", "warm_ms",
                   "speedup_vs_mono", "spearman_vs_spectral", "detail"});

  // Rectangular grid: 128x32, the paper's full-grid input stretched to a
  // dominant direction.
  const PointSet grid_points = PointSet::FullGrid(GridSpec({128, 32}));
  RunSharded("grid128x32", grid_points, DefaultSpectralOptions(2), table);

  // Gaussian-kernel blob: an elongated connected point cloud with
  // Gaussian-weighted radius-2 edges (non-grid metric data).
  Rng rng(12345);
  const PointSet blob_points =
      LexSorted(SampleConnectedBlob(GridSpec({300, 30}), 5000, rng));
  SpectralLpmOptions kernel = DefaultSpectralOptions(2);
  kernel.graph.radius = 2;
  kernel.graph.kernel = WeightKernel::kGaussian;
  kernel.graph.gaussian_sigma = 1.5;
  RunSharded("kernelblob300x30", blob_points, kernel, table);

  EmitTable("sharding_engines", table);
}

void RunParallelScaling() {
  const PointSet points = MultiComponentPoints();
  std::cout << "\nParallel spectral solve, 4 disconnected 24x24 components ("
            << points.size() << " points): wall time by service thread "
               "count (cache off so every run solves)\n\n";

  TablePrinter table;
  table.SetHeader({"parallelism", "ms", "speedup_vs_serial", "identical"});
  double serial_ms = 0.0;
  std::vector<int64_t> serial_ranks;
  for (int parallelism : {1, 2, 4}) {
    MappingServiceOptions service_options;
    service_options.parallelism = parallelism;
    service_options.cache_capacity = 0;
    MappingService service(service_options);

    OrderingRequest request = OrderingRequest::ForPoints(points, "spectral");
    request.options.spectral = DefaultSpectralOptions(2);
    request.options.spectral.parallelism = parallelism;

    WallTimer timer;
    auto result = service.Order(request);
    const double ms = timer.ElapsedSeconds() * 1e3;
    SPECTRAL_CHECK(result.ok()) << result.status();
    SPECTRAL_CHECK_EQ(result->num_components, 4);

    const std::vector<int64_t> ranks = Ranks(result->order);
    if (parallelism == 1) {
      serial_ms = ms;
      serial_ranks = ranks;
    }
    table.AddRow({FormatInt(parallelism), FormatDouble(ms, 2),
                  FormatDouble(serial_ms / ms, 2),
                  ranks == serial_ranks ? "yes" : "NO"});
  }
  EmitTable("ordering_engines_parallel", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::RunRegistry();
  spectral::bench::RunShardedSection();
  spectral::bench::RunParallelScaling();
  spectral::bench::EmitJson();
  return 0;
}
