// Registry smoke bench: every OrderingEngine on one 64x64 grid — wall
// time plus Spearman rank correlation against the spectral order — and a
// multi-component parallel-solve scaling section. One CSV row per engine
// seeds the perf trajectory for future tracking.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "stats/rank_correlation.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace spectral {
namespace bench {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

// Four far-apart 24x24 islands: a disconnected input whose components the
// spectral solver can process concurrently.
PointSet MultiComponentPoints() {
  PointSet points(2);
  const Coord kSide = 24;
  const Coord kGap = 1000;
  for (Coord island = 0; island < 4; ++island) {
    const Coord x0 = island * kGap;
    for (Coord x = 0; x < kSide; ++x) {
      for (Coord y = 0; y < kSide; ++y) {
        points.Add(std::vector<Coord>{static_cast<Coord>(x0 + x), y});
      }
    }
  }
  return points;
}

void RunRegistry() {
  const GridSpec grid = GridSpec::Uniform(2, 64);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "OrderingEngine registry on a 64x64 grid: wall time and "
               "Spearman rho vs the spectral order\n\n";

  OrderingEngineOptions options;
  options.spectral = DefaultSpectralOptions(2);

  // Reference order for the correlation column.
  auto spectral_engine = MakeOrderingEngine("spectral", options);
  SPECTRAL_CHECK(spectral_engine.ok());
  auto spectral_result = (*spectral_engine)->Order(points);
  SPECTRAL_CHECK(spectral_result.ok());
  const std::vector<int64_t> spectral_ranks = Ranks(spectral_result->order);

  TablePrinter table;
  table.SetHeader({"engine", "ms", "spearman_vs_spectral", "detail"});
  for (const std::string& name : AllOrderingEngineNames()) {
    auto engine = MakeOrderingEngine(name, options);
    SPECTRAL_CHECK(engine.ok()) << name;
    WallTimer timer;
    auto result = (*engine)->Order(points);
    const double ms = timer.ElapsedSeconds() * 1e3;
    SPECTRAL_CHECK(result.ok()) << name << ": " << result.status();
    const double rho = SpearmanRho(spectral_ranks, Ranks(result->order));
    table.AddRow({name, FormatDouble(ms, 2), FormatDouble(rho, 4),
                  result->detail});
  }
  EmitTable("ordering_engines", table);
}

void RunParallelScaling() {
  const PointSet points = MultiComponentPoints();
  std::cout << "\nParallel spectral solve, 4 disconnected 24x24 components ("
            << points.size() << " points): wall time by thread count\n\n";

  TablePrinter table;
  table.SetHeader({"parallelism", "ms", "speedup_vs_serial", "identical"});
  double serial_ms = 0.0;
  std::vector<int64_t> serial_ranks;
  for (int parallelism : {1, 2, 4}) {
    OrderingEngineOptions options;
    options.spectral = DefaultSpectralOptions(2);
    options.spectral.parallelism = parallelism;
    auto engine = MakeOrderingEngine("spectral", options);
    SPECTRAL_CHECK(engine.ok());
    WallTimer timer;
    auto result = (*engine)->Order(points);
    const double ms = timer.ElapsedSeconds() * 1e3;
    SPECTRAL_CHECK(result.ok()) << result.status();
    SPECTRAL_CHECK_EQ(result->num_components, 4);

    const std::vector<int64_t> ranks = Ranks(result->order);
    if (parallelism == 1) {
      serial_ms = ms;
      serial_ranks = ranks;
    }
    table.AddRow({FormatInt(parallelism), FormatDouble(ms, 2),
                  FormatDouble(serial_ms / ms, 2),
                  ranks == serial_ranks ? "yes" : "NO"});
  }
  EmitTable("ordering_engines_parallel", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::RunRegistry();
  spectral::bench::RunParallelScaling();
  return 0;
}
