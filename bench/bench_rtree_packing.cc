// Experiment X2 — R-tree packing quality by ordering (an application the
// paper's conclusion names). Leaves pack consecutive runs of each order;
// tighter, less overlapping leaf MBRs mean fewer node accesses per query.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "index/packed_rtree.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/generators.h"

namespace spectral {
namespace bench {
namespace {

void RunWorkload(const std::string& workload_name, const PointSet& points,
                 TablePrinter& table) {
  BuildOrdersOptions build;
  build.include_extras = true;
  build.spectral = DefaultSpectralOptions(points.dims());
  const auto orders = BuildOrders(points, build);

  // Random square queries covering ~2% of the bounding box each.
  std::vector<Coord> lo, hi;
  points.Bounds(&lo, &hi);
  Rng rng(0xbeefcafe);
  const int kQueries = 400;
  std::vector<std::pair<std::vector<Coord>, std::vector<Coord>>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<Coord> qlo(2), qhi(2);
    for (int a = 0; a < 2; ++a) {
      const Coord extent = std::max<Coord>(
          1, static_cast<Coord>((hi[static_cast<size_t>(a)] -
                                 lo[static_cast<size_t>(a)] + 1) /
                                7));
      const Coord start = static_cast<Coord>(rng.UniformInt(
          lo[static_cast<size_t>(a)],
          std::max<int64_t>(lo[static_cast<size_t>(a)],
                            hi[static_cast<size_t>(a)] - extent)));
      qlo[static_cast<size_t>(a)] = start;
      qhi[static_cast<size_t>(a)] = static_cast<Coord>(start + extent - 1);
    }
    queries.emplace_back(std::move(qlo), std::move(qhi));
  }

  for (const auto& named : orders) {
    const PackedRTree tree = PackedRTree::Build(points, named.order,
                           {.leaf_capacity = 16, .fanout = 8});
    const auto stats = tree.ComputeStats();
    double nodes = 0.0;
    for (const auto& [qlo, qhi] : queries) {
      nodes += static_cast<double>(tree.RangeQuery(qlo, qhi).nodes_visited);
    }
    table.AddRow({workload_name, named.name,
                  FormatInt(stats.num_leaves),
                  FormatDouble(stats.total_leaf_volume, 0),
                  FormatDouble(stats.leaf_overlap_volume, 0),
                  FormatDouble(nodes / kQueries, 2)});
  }
}

void Run() {
  std::cout << "R-tree packing by ordering: leaf volume / pairwise overlap "
               "volume / mean node accesses per 2% range query (leaf "
               "capacity 16, fanout 8)\n\n";
  TablePrinter table;
  table.SetHeader({"workload", "mapping", "leaves", "leaf_volume",
                   "leaf_overlap", "nodes_per_query"});

  RunWorkload("grid32", PointSet::FullGrid(GridSpec({32, 32})), table);

  Rng rng(42);
  RunWorkload("clusters",
              SampleGaussianClusters(GridSpec({64, 64}), 5, 1024, 0.08, rng),
              table);
  EmitTable("rtree_packing", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
