// Experiment E5 — paper Figure 5b (nearest-neighbor queries, fairness).
//
// Question: measure the max 1-d distance for point pairs separated along a
// *single* dimension only. Sweep is wildly anisotropic (Sweep-X vs Sweep-Y
// differ by the grid side); Spectral treats both dimensions alike. Axis
// labels follow the paper: X is the axis sweep scans contiguously (our
// fastest axis, axis 1), Y the other.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "query/pair_metrics.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const Coord kSide = 16;  // N = 256
  const GridSpec grid = GridSpec::Uniform(2, kSide);
  PointSet points = PointSet::FullGrid(grid);
  points.BuildIndex();

  std::cout << "Figure 5b: NN fairness - max 1-d distance for pairs "
               "separated along one axis only, 2-d grid "
            << kSide << "x" << kSide << "\n\n";

  BuildOrdersOptions build;
  build.spectral = DefaultSpectralOptions(2);
  const auto orders = BuildOrders(points, build);
  const NamedOrder* sweep = nullptr;
  const NamedOrder* spectral_order = nullptr;
  const NamedOrder* hilbert = nullptr;
  for (const auto& named : orders) {
    if (named.name == "Sweep") sweep = &named;
    if (named.name == "Spectral") spectral_order = &named;
    if (named.name == "Hilbert") hilbert = &named;
  }

  const int64_t axis_max = kSide - 1;
  const std::vector<int> percents = {10, 20, 30, 40, 50};
  std::vector<int64_t> distances;
  for (int p : percents) {
    distances.push_back(std::max<int64_t>(
        1, std::llround(p / 100.0 * static_cast<double>(axis_max))));
  }

  // Axis 1 is scanned contiguously by sweep => the paper's "X".
  const int kAxisX = 1;
  const int kAxisY = 0;
  const auto sweep_x =
      ComputeAxisPairSeries(points, sweep->order, kAxisX, distances);
  const auto sweep_y =
      ComputeAxisPairSeries(points, sweep->order, kAxisY, distances);
  const auto spec_x =
      ComputeAxisPairSeries(points, spectral_order->order, kAxisX, distances);
  const auto spec_y =
      ComputeAxisPairSeries(points, spectral_order->order, kAxisY, distances);
  const auto hil_x =
      ComputeAxisPairSeries(points, hilbert->order, kAxisX, distances);
  const auto hil_y =
      ComputeAxisPairSeries(points, hilbert->order, kAxisY, distances);

  TablePrinter table;
  table.SetHeader({"manhattan_pct", "d", "Sweep-X", "Sweep-Y", "Spectral-X",
                   "Spectral-Y", "Hilbert-X", "Hilbert-Y"});
  for (size_t row = 0; row < percents.size(); ++row) {
    table.AddRow({FormatInt(percents[row]), FormatInt(distances[row]),
                  FormatInt(sweep_x.max_rank_distance[row]),
                  FormatInt(sweep_y.max_rank_distance[row]),
                  FormatInt(spec_x.max_rank_distance[row]),
                  FormatInt(spec_y.max_rank_distance[row]),
                  FormatInt(hil_x.max_rank_distance[row]),
                  FormatInt(hil_y.max_rank_distance[row])});
  }
  EmitTable("fig5b_nn_fairness", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
