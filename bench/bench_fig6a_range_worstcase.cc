// Experiment E6 — paper Figure 6a (range queries, worst case).
//
// Question: over all partial range queries of a given size (percent of the
// space) in a 4-dimensional grid, what is the worst difference between the
// maximum and minimum 1-d value of the points inside a query? Smaller means
// a range query can be answered by one short sequential scan.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "query/range_query.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const int kDims = 4;
  const Coord kSide = 6;  // N = 1296, matching the paper's axis scale
  const GridSpec grid = GridSpec::Uniform(kDims, kSide);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "Figure 6a: range queries, worst case - max (max-min) of 1-d "
               "values over all partial range queries, "
            << kDims << "-d grid, side " << kSide
            << ", N = " << grid.NumCells() << "\n\n";

  BuildOrdersOptions build;
  build.spectral = DefaultSpectralOptions(kDims);
  const auto orders = BuildOrders(points, build);

  const std::vector<int> percents = {2, 4, 8, 16, 32, 64};

  TablePrinter table;
  std::vector<std::string> header = {"size_pct", "num_shapes", "num_queries"};
  for (const auto& named : orders) header.push_back(named.name);
  table.SetHeader(header);

  for (int pct : percents) {
    const auto shapes = ShapesForVolume(grid, pct / 100.0);
    std::vector<std::string> cells = {FormatInt(pct),
                                      FormatInt(static_cast<int64_t>(shapes.size()))};
    bool first = true;
    for (const auto& named : orders) {
      const auto stats = EvaluateRangeQueryShapes(grid, named.order, shapes);
      if (first) {
        cells.insert(cells.begin() + 2, FormatInt(stats.num_queries));
        first = false;
      }
      cells.push_back(FormatInt(stats.max_spread));
    }
    table.AddRow(cells);
  }
  EmitTable("fig6a_range_worstcase", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
