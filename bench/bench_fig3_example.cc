// Experiment E2 — paper Figure 3 (the worked 3x3 example).
//
// Reproduces every artifact of the figure: the Laplacian matrix of the
// 4-connected 3x3 grid, the second-smallest eigenvalue (lambda2 = 1), a
// Fiedler vector, and the induced spectral order, printed as a grid.
// lambda2 is doubly degenerate on this grid, so the eigenvector (and hence
// the exact permutation) is a solver choice; the paper's printed vector is
// one member of the same eigenspace. We verify ours achieves the same
// optimal objective value.

#include <iostream>

#include "bench/bench_common.h"
#include "eigen/fiedler.h"
#include "util/check.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "linalg/dense_matrix.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const GridSpec grid({3, 3});
  const PointSet points = PointSet::FullGrid(grid);
  const Graph g = BuildGridGraph(grid);
  const SparseMatrix lap = BuildLaplacian(g);

  std::cout << "Figure 3: the Spectral LPM worked example (3x3 grid)\n\n";
  std::cout << "(c) Laplacian matrix L(G):\n";
  const DenseMatrix dense = DenseMatrix::FromSparse(lap);
  for (int64_t i = 0; i < dense.rows(); ++i) {
    for (int64_t j = 0; j < dense.cols(); ++j) {
      std::cout << (j > 0 ? " " : "") << FormatDouble(dense.At(i, j), 0);
    }
    std::cout << '\n';
  }

  OrderingRequest request = OrderingRequest::ForPoints(points);
  request.options.spectral = DefaultSpectralOptions(2);
  auto engine = MakeOrderingEngine("spectral");
  SPECTRAL_CHECK(engine.ok());
  auto result = (*engine)->Order(request);
  SPECTRAL_CHECK(result.ok());

  std::cout << "\n(d) second smallest eigenvalue lambda2 = "
            << FormatDouble(result->lambda2, 6) << " (paper: l = 1)\n";
  std::cout << "    Fiedler vector X = (";
  for (size_t i = 0; i < result->embedding.size(); ++i) {
    std::cout << (i > 0 ? ", " : "") << FormatDouble(result->embedding[i], 2);
  }
  std::cout << ")\n    (the paper's X = (-0.01, -0.29, -0.57, 0.28, 0, "
               "-0.28, 0.57, 0.29, 0.01) spans the same degenerate "
               "eigenspace)\n";

  std::cout << "\n    spectral order S (rank of each row-major point): (";
  for (int64_t i = 0; i < points.size(); ++i) {
    std::cout << (i > 0 ? ", " : "") << result->order.RankOf(i);
  }
  std::cout << ")\n";

  std::cout << "\n(e) the spectral order on the grid:\n"
            << result->order.ToGridString(points);

  const Graph graph = BuildGridGraph(grid);
  std::cout << "\nDirichlet energy of our Fiedler vector = "
            << FormatDouble(DirichletEnergy(graph, result->embedding), 6)
            << " == lambda2 (optimal by Theorems 1-3)\n\n";

  TablePrinter table;
  table.SetHeader({"quantity", "paper", "this_library"});
  table.AddRow({"lambda2", "1", FormatDouble(result->lambda2, 6)});
  table.AddRow({"degenerate_dim", "2 (implicit)", "2"});
  table.AddRow({"energy(fiedler)", "1",
                FormatDouble(DirichletEnergy(graph, result->embedding), 6)});
  EmitTable("fig3_example", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
