// Experiment X3 — declustering across M disks (an application the paper's
// conclusion names). Records striped round-robin by rank; a query's cost is
// the max per-disk load, ideal = ceil(result / M).

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "index/declustering.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const Coord kSide = 16;
  const GridSpec grid = GridSpec::Uniform(2, kSide);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "Declustering: mean (max per-disk load) / (optimal load) over "
               "all 4x4 range queries, "
            << kSide << "x" << kSide << " grid, round-robin striping\n\n";

  BuildOrdersOptions build;
  build.include_extras = true;
  build.spectral = DefaultSpectralOptions(2);
  const auto orders = BuildOrders(points, build);

  const std::vector<int> disk_counts = {2, 4, 8};

  TablePrinter table;
  std::vector<std::string> header = {"disks"};
  for (const auto& named : orders) header.push_back(named.name);
  table.SetHeader(header);

  RangeQueryShape shape;
  shape.extents = {4, 4};
  for (int disks : disk_counts) {
    std::vector<std::string> cells = {FormatInt(disks)};
    for (const auto& named : orders) {
      const auto stats = EvaluateDeclustering(grid, named.order, shape, disks);
      cells.push_back(FormatDouble(stats.mean_balance_ratio, 3));
    }
    table.AddRow(cells);
  }
  EmitTable("declustering", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
