// Shared helpers for the reproduction benches: build the paper's five
// mappings (Sweep, Peano=Z-order, Gray, Hilbert, Spectral) plus this
// library's extras over a point set — all through the OrderingEngine
// registry — and mirror printed tables into CSV files under
// ./bench_results/.

#ifndef SPECTRAL_LPM_BENCH_BENCH_COMMON_H_
#define SPECTRAL_LPM_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/linear_order.h"
#include "core/mapping_service.h"
#include "core/ordering_request.h"
#include "space/point_set.h"
#include "util/table_printer.h"

namespace spectral {
namespace bench {

/// A mapping under evaluation, labeled as in the paper's figures.
struct NamedOrder {
  std::string name;
  LinearOrder order;
};

/// Options for BuildOrders.
struct BuildOrdersOptions {
  /// Include the extra mappings beyond the paper's five (snake, triadic
  /// peano).
  bool include_extras = false;
  /// Overrides for the spectral mapper (seeded, canonicalized defaults).
  SpectralLpmOptions spectral;
};

/// Builds every mapping for `points` as one MappingService::OrderBatch over
/// the OrderingEngine registry. Labels follow the paper: "Sweep", "Peano"
/// (the zorder engine), "Gray", "Hilbert", "Spectral" (+ "Snake", "Peano3",
/// "Spiral" extras). CHECK-fails on mapper errors: benches run on
/// known-good configurations.
std::vector<NamedOrder> BuildOrders(const PointSet& points,
                                    const BuildOrdersOptions& options = {});

/// Standard spectral options for a bench on `dims`-dimensional data: enough
/// eigenpairs to canonicalize a fully degenerate hyper-cube eigenspace.
SpectralLpmOptions DefaultSpectralOptions(int dims);

/// Prints the table to stdout and mirrors it to bench_results/<name>.csv.
void EmitTable(const std::string& bench_name, const TablePrinter& table);

/// Writes pre-rendered JSON object rows as a pretty-printed array to
/// bench_results/<file_name> (creating the directory) and logs the path —
/// the shared emitter for the committed CI bench baselines
/// (BENCH_ordering_engines.json, BENCH_eigensolver.json). Each entry in
/// `rows` must be one complete JSON object without trailing comma.
void EmitJsonRows(const std::string& file_name,
                  const std::vector<std::string>& rows);

/// Formats a value in scientific notation with 3 significant decimals —
/// for JSON fields with high dynamic range (residuals), where fixed-point
/// formatting would truncate machine-precision values to 0 and make
/// baseline diffs meaningless.
std::string FormatScientific(double value);

}  // namespace bench
}  // namespace spectral

#endif  // SPECTRAL_LPM_BENCH_BENCH_COMMON_H_
