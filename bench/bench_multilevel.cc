// Experiment X9 — solver ablation: flat Lanczos vs the multilevel V-cycle
// on growing grids. Reports wall time, matvec counts, and the eigenvalue
// error against the closed-form grid spectrum.

#include <cmath>
#include <iostream>
#include <numbers>

#include "bench/bench_common.h"
#include "core/multilevel.h"
#include "eigen/fiedler.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "util/check.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace spectral {
namespace bench {
namespace {

constexpr double kPi = std::numbers::pi;

void RunSide(Coord side, TablePrinter& table) {
  const GridSpec grid = GridSpec::Uniform(2, side);
  const Graph g = BuildGridGraph(grid);
  const double exact = 2.0 - 2.0 * std::cos(kPi / side);

  FiedlerOptions flat_options;
  flat_options.method = FiedlerMethod::kLanczos;
  flat_options.num_pairs = 1;
  WallTimer flat_timer;
  auto flat = ComputeFiedler(BuildLaplacian(g), flat_options);
  const double flat_seconds = flat_timer.ElapsedSeconds();
  SPECTRAL_CHECK(flat.ok());

  WallTimer ml_timer;
  auto multi = ComputeFiedlerMultilevel(g);
  const double ml_seconds = ml_timer.ElapsedSeconds();
  SPECTRAL_CHECK(multi.ok());

  const int64_t n = grid.NumCells();
  table.AddRow({FormatInt(side) + "x" + FormatInt(side), FormatInt(n),
                FormatDouble(flat_seconds * 1e3, 1),
                FormatInt(flat->matvecs),
                FormatDouble(std::fabs(flat->lambda2 - exact), 9),
                FormatDouble(ml_seconds * 1e3, 1), FormatInt(multi->matvecs),
                FormatDouble(std::fabs(multi->lambda2 - exact), 9)});
}

void Run() {
  std::cout << "Solver ablation: flat Lanczos vs multilevel V-cycle "
               "(2-d grids; |err| is the gap to the closed-form lambda2)\n\n";
  TablePrinter table;
  table.SetHeader({"grid", "n", "flat_ms", "flat_matvecs", "flat_err",
                   "ml_ms", "ml_matvecs", "ml_err"});
  RunSide(32, table);
  RunSide(48, table);
  RunSide(64, table);
  RunSide(96, table);
  EmitTable("multilevel", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
