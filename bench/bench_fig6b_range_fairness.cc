// Experiment E7 — paper Figure 6b (range queries, fairness).
//
// Question: for all partial range queries of a given size in the
// 4-dimensional space, what is the standard deviation of the (max - min)
// spread of 1-d values? Lower stddev = fairer mapping: query cost does not
// depend on where (or along which axes) the query happens to fall.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "query/range_query.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const int kDims = 4;
  const Coord kSide = 6;  // N = 1296
  const GridSpec grid = GridSpec::Uniform(kDims, kSide);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "Figure 6b: range queries, fairness - stddev of the (max-min) "
               "spread over all partial range queries, "
            << kDims << "-d grid, side " << kSide
            << ", N = " << grid.NumCells() << "\n\n";

  BuildOrdersOptions build;
  build.spectral = DefaultSpectralOptions(kDims);
  const auto orders = BuildOrders(points, build);

  const std::vector<int> percents = {2, 4, 8, 16, 32, 64};

  TablePrinter table;
  std::vector<std::string> header = {"size_pct"};
  for (const auto& named : orders) header.push_back(named.name);
  table.SetHeader(header);

  for (int pct : percents) {
    const auto shapes = ShapesForVolume(grid, pct / 100.0);
    std::vector<std::string> cells = {FormatInt(pct)};
    for (const auto& named : orders) {
      const auto stats = EvaluateRangeQueryShapes(grid, named.order, shapes);
      cells.push_back(FormatDouble(stats.stddev_spread, 1));
    }
    table.AddRow(cells);
  }
  EmitTable("fig6b_range_fairness", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
