// Experiment X4 — page I/O under a spatially local access stream: LRU
// buffer-pool hit rates and the run-aware I/O cost of range queries, per
// mapping. This is the end-to-end storage consequence of locality
// preservation.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "query/range_query.h"
#include "storage/buffer_pool.h"
#include "storage/io_model.h"
#include "storage/page_map.h"
#include "util/string_util.h"
#include "workload/trace.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const Coord kSide = 32;
  const GridSpec grid = GridSpec::Uniform(2, kSide);
  const PointSet points = PointSet::FullGrid(grid);
  const int64_t kPageSize = 16;
  const int64_t kPoolPages = 8;

  std::cout << "Page I/O: LRU hit rate under a random-walk access stream "
               "(page size " << kPageSize << ", pool " << kPoolPages
            << " pages) and run-aware I/O cost of 8x8 range queries, "
            << kSide << "x" << kSide << " grid\n\n";

  BuildOrdersOptions build;
  build.include_extras = true;
  build.spectral = DefaultSpectralOptions(2);
  const auto orders = BuildOrders(points, build);

  RandomWalkOptions walk;
  walk.length = 200000;
  walk.restart_probability = 0.002;
  const auto trace = MakeRandomWalkTrace(grid, walk);

  const PageMap pages(kPageSize);
  const IoCostModel io_model;

  TablePrinter table;
  table.SetHeader({"mapping", "lru_hit_rate", "mean_io_cost_8x8",
                   "mean_page_runs_8x8"});
  for (const auto& named : orders) {
    LruBufferPool pool(kPoolPages);
    for (int64_t cell : trace) {
      pool.Access(pages.PageOfRank(named.order.RankOf(cell)));
    }

    // All 8x8 window placements: collect page footprint costs.
    double cost_sum = 0.0;
    double runs_sum = 0.0;
    int64_t count = 0;
    std::vector<int64_t> ranks;
    std::vector<Coord> cell(2);
    for (Coord x0 = 0; x0 + 8 <= kSide; ++x0) {
      for (Coord y0 = 0; y0 + 8 <= kSide; ++y0) {
        ranks.clear();
        for (Coord x = x0; x < x0 + 8; ++x) {
          for (Coord y = y0; y < y0 + 8; ++y) {
            cell[0] = x;
            cell[1] = y;
            ranks.push_back(named.order.RankOf(grid.Flatten(cell)));
          }
        }
        const auto fp = ComputePageFootprint(ranks, pages);
        cost_sum += IoCost(fp, io_model);
        runs_sum += static_cast<double>(fp.page_runs);
        ++count;
      }
    }
    table.AddRow({named.name, FormatDouble(pool.HitRate(), 4),
                  FormatDouble(cost_sum / count, 1),
                  FormatDouble(runs_sum / count, 2)});
  }
  EmitTable("pageio", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
