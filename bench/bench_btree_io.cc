// Experiment X7 — end-to-end index I/O: the reason LPMs exist. Records are
// stored in a B+-tree keyed by their 1-d rank; a multi-dimensional range
// query scans the single key interval [min rank, max rank] and filters
// (the paper's "sequential access from the minimum point to the maximum
// point while eliminating the records that lie outside"). We report the
// mean node reads per query and the scan precision (matched / scanned).

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "index/bplus_tree.h"
#include "query/range_query.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const int kDims = 4;
  const Coord kSide = 6;  // N = 1296
  const GridSpec grid = GridSpec::Uniform(kDims, kSide);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "B+-tree I/O per multi-dimensional range query (leaf=32, "
               "fanout=16), " << kDims << "-d grid side " << kSide
            << ": mean node reads | scan precision\n\n";

  BuildOrdersOptions build;
  build.spectral = DefaultSpectralOptions(kDims);
  const auto orders = BuildOrders(points, build);

  // One tree layout per mapping: keys are the ranks 0..N-1 (every record
  // present), so tree shape is identical; what differs is which interval a
  // query needs.
  std::vector<int64_t> keys(static_cast<size_t>(grid.NumCells()));
  for (int64_t i = 0; i < grid.NumCells(); ++i) keys[static_cast<size_t>(i)] = i;
  StaticBPlusTree::BuildOptions tree_options;
  tree_options.leaf_capacity = 32;
  tree_options.fanout = 16;
  const StaticBPlusTree tree = StaticBPlusTree::Build(keys, tree_options);

  const std::vector<int> percents = {2, 8, 32};

  TablePrinter table;
  std::vector<std::string> header = {"size_pct"};
  for (const auto& named : orders) {
    header.push_back(named.name + " reads");
    header.push_back(named.name + " prec");
  }
  table.SetHeader(header);

  for (int pct : percents) {
    const auto shapes = ShapesForVolume(grid, pct / 100.0);
    std::vector<std::string> cells = {FormatInt(pct)};
    for (const auto& named : orders) {
      double reads = 0.0;
      double precision = 0.0;
      int64_t queries = 0;
      for (const auto& shape : shapes) {
        ForEachRangeQuery(
            grid, named.order, shape,
            [&](int64_t min_rank, int64_t max_rank, int64_t volume) {
              const auto scan = tree.RangeScan(min_rank, max_rank);
              reads += static_cast<double>(scan.internal_read +
                                           scan.leaves_read);
              precision += static_cast<double>(volume) /
                           static_cast<double>(scan.records);
              ++queries;
            });
      }
      cells.push_back(FormatDouble(reads / queries, 1));
      cells.push_back(FormatDouble(precision / queries, 3));
    }
    table.AddRow(cells);
  }
  EmitTable("btree_io", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
