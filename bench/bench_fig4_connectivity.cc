// Experiment E3 — paper Figure 4 (variation of the graph model).
//
// The same 4x4 point set mapped under 4-connectivity (Figures 4a/4b) and
// 8-connectivity (Figures 4c/4d). The spectral order is optimal for
// whichever graph is chosen; the bench prints both orders and the
// algebraic connectivity of each model.

#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "graph/laplacian.h"
#include "util/check.h"
#include "linalg/vector_ops.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const GridSpec grid({4, 4});
  const PointSet points = PointSet::FullGrid(grid);

  // The same point set under two graph models: one batch, two requests
  // whose fingerprints differ only in the connectivity option.
  OrderingRequest four_request = OrderingRequest::ForPoints(points);
  four_request.options.spectral = DefaultSpectralOptions(2);
  OrderingRequest eight_request = four_request;
  eight_request.options.spectral.graph.connectivity = GridConnectivity::kMoore;

  MappingService service;
  const std::vector<OrderingRequest> batch = {four_request, eight_request};
  auto results = service.OrderBatch(batch);
  auto& four_result = results[0];
  auto& eight_result = results[1];
  SPECTRAL_CHECK(four_result.ok());
  SPECTRAL_CHECK(eight_result.ok());

  std::cout << "Figure 4: spectral order under different graph models "
               "(4x4 grid)\n\n";
  std::cout << "(a/b) 4-connectivity order (lambda2 = "
            << FormatDouble(four_result->lambda2, 4) << "):\n"
            << four_result->order.ToGridString(points) << '\n';
  std::cout << "(c/d) 8-connectivity order (lambda2 = "
            << FormatDouble(eight_result->lambda2, 4) << "):\n"
            << eight_result->order.ToGridString(points) << '\n';

  const double dot = std::fabs(Dot(four_result->embedding, eight_result->embedding));
  std::cout << "|<v4, v8>| = " << FormatDouble(dot, 6)
            << " (different Fiedler directions for different models)\n\n";

  TablePrinter table;
  table.SetHeader({"model", "lambda2", "matvecs", "engine"});
  table.AddRow({"4-connectivity", FormatDouble(four_result->lambda2, 6),
                FormatInt(four_result->matvecs), four_result->method});
  table.AddRow({"8-connectivity", FormatDouble(eight_result->lambda2, 6),
                FormatInt(eight_result->matvecs), eight_result->method});
  EmitTable("fig4_connectivity", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
