// Serving-tier load bench: drives an OrderingServer with the Zipfian
// hot-set request mix from workload/trace.h and reports sustained qps,
// cold-vs-warm p50/p99 latency, cache hit rate, and batching effectiveness
// for four scenarios — "cold" (fresh server), "warm" (same trace replayed
// against the now-populated cache), "warm_restart" (a new server restored
// from a cache snapshot, which must perform zero eigensolves), and
// "degraded" (the same trace against a server whose eigensolver fails on a
// fixed util/fault.h schedule, measuring the cost of the retry/fallback
// ladder under partial solver failure). The degraded scenario needs the
// fault registry compiled in: it is skipped — with a log note, and without
// its JSON row — when the build lacks SPECTRAL_FAULTS, so run the gate
// from a -DSPECTRAL_FAULTS=ON build (CI's bench job does).
// Emits bench_results/BENCH_service_traffic.json, the third CI
// bench-regression suite; tools/check_bench_regression.py gates only the
// machine-portable fields (hit rate, solve counts, ladder counters,
// Spearman vs direct engine calls), never absolute qps or latency.

#include <algorithm>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/ordering_engine.h"
#include "serve/ordering_server.h"
#include "stats/rank_correlation.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/trace.h"

namespace spectral {
namespace bench {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

struct ScenarioSample {
  std::string scenario;
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t solves = 0;
  int64_t coalesced = 0;
  int64_t retried_solves = 0;
  int64_t degraded_orders = 0;
  double hit_rate = 0.0;
  double spearman_min_vs_direct = 0.0;
  double qps = 0.0;
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cold_p50_ms = 0.0;
  double cold_p99_ms = 0.0;
  double warm_p50_ms = 0.0;
  double warm_p99_ms = 0.0;
};

// Reads a finished scenario's counters off the server stats. wall_ms must
// already be set (qps derives from it).
void FillFromStats(const OrderingServer& server, ScenarioSample* s) {
  const OrderingServerStats stats = server.stats();
  s->requests = stats.service.requests;
  s->batches = stats.service.batches;
  s->solves = stats.service.solves;
  s->coalesced = stats.service.coalesced_requests;
  s->retried_solves = stats.service.retried_solves;
  s->degraded_orders = stats.service.degraded_orders;
  s->hit_rate = static_cast<double>(stats.service.cache_hits) /
                static_cast<double>(stats.service.requests);
  s->qps = static_cast<double>(stats.service.requests) / (s->wall_ms / 1e3);
  s->p50_ms = stats.p50_ms;
  s->p99_ms = stats.p99_ms;
  s->cold_p50_ms = stats.cold_p50_ms;
  s->cold_p99_ms = stats.cold_p99_ms;
  s->warm_p50_ms = stats.warm_p50_ms;
  s->warm_p99_ms = stats.warm_p99_ms;
}

// Replays the trace open-loop (every request submitted before any reply is
// awaited, so the aggregation window sees real concurrency), checks every
// order against the direct engine call for its universe entry, and reads
// the scenario's counters off the server stats.
ScenarioSample RunScenario(const std::string& scenario, OrderingServer& server,
                           const ZipfianRequestMix& mix,
                           const std::vector<std::vector<int64_t>>& direct) {
  server.ResetStats();
  WallTimer timer;
  std::vector<std::future<StatusOr<OrderingResult>>> futures;
  futures.reserve(mix.trace.size());
  for (const int entry : mix.trace) {
    futures.push_back(server.Submit(mix.universe[static_cast<size_t>(entry)]));
  }

  ScenarioSample sample;
  sample.scenario = scenario;
  sample.spearman_min_vs_direct = 1.0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    SPECTRAL_CHECK(result.ok()) << scenario << ": " << result.status();
    const auto& reference =
        direct[static_cast<size_t>(mix.trace[i])];
    const double rho = SpearmanRho(reference, Ranks(result->order));
    sample.spearman_min_vs_direct =
        std::min(sample.spearman_min_vs_direct, rho);
  }
  sample.wall_ms = timer.ElapsedSeconds() * 1e3;
  FillFromStats(server, &sample);
  return sample;
}

// The "degraded" scenario: the same trace against a server whose
// eigensolver reports unconverged on a fixed fault schedule, so a slice of
// the traffic rides the full degradation ladder (retry, then fallback
// curve). Everything is pinned for the regression gate: serial solves
// (parallelism=1) and Pause/Resume-chunked submission make the solve order
// — and therefore which hits of the "solver.converge" site land on which
// solve — deterministic, and degraded orders are never cached, so the
// hit/solve/ladder counters are exact integers, not noise. The schedule
// fails hits 5 and 6 of every 8: consecutive, so the failing solve's
// escalated retry fails too and the request degrades all the way to the
// fallback curve; and dense enough to matter against the ~16 distinct
// spectral-family solves the trace performs (degraded entries are never
// cached, so their repeats re-solve and some later recover — the
// self-healing path — while others land on the next failing pair).
// Spearman-vs-direct is taken over the non-degraded
// replies only (a fallback order is correct but intentionally different).
ScenarioSample RunDegradedScenario(
    OrderingServer& server, const ZipfianRequestMix& mix,
    const std::vector<std::vector<int64_t>>& direct) {
  server.ResetStats();
  constexpr size_t kChunk = 40;
  WallTimer timer;
  ScenarioSample sample;
  sample.scenario = "degraded";
  sample.spearman_min_vs_direct = 1.0;
  for (size_t start = 0; start < mix.trace.size(); start += kChunk) {
    const size_t end = std::min(start + kChunk, mix.trace.size());
    server.Pause();
    std::vector<std::future<StatusOr<OrderingResult>>> futures;
    futures.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      futures.push_back(
          server.Submit(mix.universe[static_cast<size_t>(mix.trace[i])]));
    }
    server.Resume();
    for (size_t i = start; i < end; ++i) {
      auto result = futures[i - start].get();
      SPECTRAL_CHECK(result.ok()) << "degraded: " << result.status();
      if (result->detail.find("degraded=") != std::string::npos) continue;
      const auto& reference = direct[static_cast<size_t>(mix.trace[i])];
      const double rho = SpearmanRho(reference, Ranks(result->order));
      sample.spearman_min_vs_direct =
          std::min(sample.spearman_min_vs_direct, rho);
    }
  }
  sample.wall_ms = timer.ElapsedSeconds() * 1e3;
  FillFromStats(server, &sample);
  return sample;
}

void Run() {
  ZipfianRequestMixOptions mix_options;
  mix_options.num_requests = 400;
  mix_options.universe_size = 24;
  mix_options.zipf_exponent = 0.99;
  mix_options.min_side = 8;
  mix_options.max_side = 20;
  const ZipfianRequestMix mix = MakeZipfianRequestMix(mix_options);

  std::cout << "Serving-tier load: " << mix.trace.size()
            << " Zipfian requests over " << mix.universe.size()
            << " distinct (engine, grid) entries through an OrderingServer "
               "(window=2ms, max_batch=64, cache=64)\n\n";

  // Reference orders: one direct engine call per universe entry. Everything
  // the server answers must match these byte-for-byte, so Spearman is
  // exactly 1 unless the serving path breaks determinism.
  std::vector<std::vector<int64_t>> direct;
  direct.reserve(mix.universe.size());
  for (const OrderingRequest& request : mix.universe) {
    auto engine = MakeOrderingEngine(request.engine);
    SPECTRAL_CHECK(engine.ok());
    auto result = (*engine)->Order(request);
    SPECTRAL_CHECK(result.ok()) << result.status();
    direct.push_back(Ranks(result->order));
  }

  OrderingServerOptions options;
  // Capacity above the universe size: no evictions, so hit/solve counts are
  // machine-independent and the regression gate can pin them.
  options.service.cache_capacity = 64;
  options.window_ms = 2.0;
  options.max_batch = 64;
  options.max_queue = 1024;

  std::vector<ScenarioSample> samples;
  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "bench_service_cache.txt")
          .string();
  {
    OrderingServer server(options);
    samples.push_back(RunScenario("cold", server, mix, direct));
    samples.push_back(RunScenario("warm", server, mix, direct));
    SPECTRAL_CHECK(server.SaveSnapshot(snapshot_path).ok());
  }
  {
    OrderingServer restarted(options);
    auto imported = restarted.LoadSnapshot(snapshot_path);
    SPECTRAL_CHECK(imported.ok()) << imported.status();
    samples.push_back(RunScenario("warm_restart", restarted, mix, direct));
  }
  std::filesystem::remove(snapshot_path);

  // A warm cache — restored or not — must serve without any eigensolves.
  SPECTRAL_CHECK_EQ(samples[1].solves, 0);
  SPECTRAL_CHECK_EQ(samples[2].solves, 0);

  if (kFaultInjectionEnabled) {
    // Serial solves + chunked submission make the fault schedule land on
    // the same solves every run; see RunDegradedScenario.
    FaultInjector faults(0xC4A05ull);
    FaultSiteConfig schedule;
    for (int64_t k = 0; k < 100000; ++k) {
      const int64_t m = k % 8;
      if (m == 5 || m == 6) schedule.schedule.push_back(k);
    }
    faults.Arm("solver.converge", std::move(schedule));
    OrderingServerOptions degraded_options = options;
    degraded_options.service.parallelism = 1;
    degraded_options.faults = &faults;
    OrderingServer degraded_server(degraded_options);
    samples.push_back(RunDegradedScenario(degraded_server, mix, direct));
    // The schedule must actually have exercised the full ladder.
    SPECTRAL_CHECK_GT(samples[3].degraded_orders, 0);
    SPECTRAL_CHECK_GT(samples[3].retried_solves, 0);
  } else {
    std::cout << "degraded scenario skipped: built without SPECTRAL_FAULTS "
                 "(configure with -DSPECTRAL_FAULTS=ON to emit its row)\n";
  }

  TablePrinter table;
  table.SetHeader({"scenario", "requests", "batches", "solves", "retried",
                   "degraded", "hit_rate", "spearman_min", "qps", "p50_ms",
                   "p99_ms", "cold_p50_ms", "warm_p50_ms"});
  std::vector<std::string> rows;
  for (const ScenarioSample& s : samples) {
    table.AddRow({s.scenario, FormatInt(s.requests), FormatInt(s.batches),
                  FormatInt(s.solves), FormatInt(s.retried_solves),
                  FormatInt(s.degraded_orders), FormatDouble(s.hit_rate, 3),
                  FormatDouble(s.spearman_min_vs_direct, 6),
                  FormatDouble(s.qps, 0), FormatDouble(s.p50_ms, 3),
                  FormatDouble(s.p99_ms, 3), FormatDouble(s.cold_p50_ms, 3),
                  FormatDouble(s.warm_p50_ms, 3)});
    rows.push_back(
        "{\"scenario\": \"" + s.scenario +
        "\", \"requests\": " + FormatInt(s.requests) +
        ", \"batches\": " + FormatInt(s.batches) +
        ", \"solves\": " + FormatInt(s.solves) +
        ", \"coalesced\": " + FormatInt(s.coalesced) +
        ", \"retried_solves\": " + FormatInt(s.retried_solves) +
        ", \"degraded_orders\": " + FormatInt(s.degraded_orders) +
        ", \"hit_rate\": " + FormatDouble(s.hit_rate, 6) +
        ", \"spearman_min_vs_direct\": " +
        FormatDouble(s.spearman_min_vs_direct, 6) +
        ", \"qps\": " + FormatDouble(s.qps, 1) +
        ", \"wall_ms\": " + FormatDouble(s.wall_ms, 2) +
        ", \"p50_ms\": " + FormatDouble(s.p50_ms, 4) +
        ", \"p99_ms\": " + FormatDouble(s.p99_ms, 4) +
        ", \"cold_p50_ms\": " + FormatDouble(s.cold_p50_ms, 4) +
        ", \"cold_p99_ms\": " + FormatDouble(s.cold_p99_ms, 4) +
        ", \"warm_p50_ms\": " + FormatDouble(s.warm_p50_ms, 4) +
        ", \"warm_p99_ms\": " + FormatDouble(s.warm_p99_ms, 4) + "}");
  }
  EmitTable("service_traffic", table);
  EmitJsonRows("BENCH_service_traffic.json", rows);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
