// Serving-tier load bench: drives an OrderingServer with the Zipfian
// hot-set request mix from workload/trace.h and reports sustained qps,
// cold-vs-warm p50/p99 latency, cache hit rate, and batching effectiveness
// for three scenarios — "cold" (fresh server), "warm" (same trace replayed
// against the now-populated cache), and "warm_restart" (a new server
// restored from a cache snapshot, which must perform zero eigensolves).
// Emits bench_results/BENCH_service_traffic.json, the third CI
// bench-regression suite; tools/check_bench_regression.py gates only the
// machine-portable fields (hit rate, solve counts, Spearman vs direct
// engine calls), never absolute qps or latency.

#include <algorithm>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/ordering_engine.h"
#include "serve/ordering_server.h"
#include "stats/rank_correlation.h"
#include "util/check.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/trace.h"

namespace spectral {
namespace bench {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

struct ScenarioSample {
  std::string scenario;
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t solves = 0;
  int64_t coalesced = 0;
  double hit_rate = 0.0;
  double spearman_min_vs_direct = 0.0;
  double qps = 0.0;
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cold_p50_ms = 0.0;
  double cold_p99_ms = 0.0;
  double warm_p50_ms = 0.0;
  double warm_p99_ms = 0.0;
};

// Replays the trace open-loop (every request submitted before any reply is
// awaited, so the aggregation window sees real concurrency), checks every
// order against the direct engine call for its universe entry, and reads
// the scenario's counters off the server stats.
ScenarioSample RunScenario(const std::string& scenario, OrderingServer& server,
                           const ZipfianRequestMix& mix,
                           const std::vector<std::vector<int64_t>>& direct) {
  server.ResetStats();
  WallTimer timer;
  std::vector<std::future<StatusOr<OrderingResult>>> futures;
  futures.reserve(mix.trace.size());
  for (const int entry : mix.trace) {
    futures.push_back(server.Submit(mix.universe[static_cast<size_t>(entry)]));
  }

  ScenarioSample sample;
  sample.scenario = scenario;
  sample.spearman_min_vs_direct = 1.0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    SPECTRAL_CHECK(result.ok()) << scenario << ": " << result.status();
    const auto& reference =
        direct[static_cast<size_t>(mix.trace[i])];
    const double rho = SpearmanRho(reference, Ranks(result->order));
    sample.spearman_min_vs_direct =
        std::min(sample.spearman_min_vs_direct, rho);
  }
  sample.wall_ms = timer.ElapsedSeconds() * 1e3;

  const OrderingServerStats stats = server.stats();
  sample.requests = stats.service.requests;
  sample.batches = stats.service.batches;
  sample.solves = stats.service.solves;
  sample.coalesced = stats.service.coalesced_requests;
  sample.hit_rate = static_cast<double>(stats.service.cache_hits) /
                    static_cast<double>(stats.service.requests);
  sample.qps =
      static_cast<double>(stats.service.requests) / (sample.wall_ms / 1e3);
  sample.p50_ms = stats.p50_ms;
  sample.p99_ms = stats.p99_ms;
  sample.cold_p50_ms = stats.cold_p50_ms;
  sample.cold_p99_ms = stats.cold_p99_ms;
  sample.warm_p50_ms = stats.warm_p50_ms;
  sample.warm_p99_ms = stats.warm_p99_ms;
  return sample;
}

void Run() {
  ZipfianRequestMixOptions mix_options;
  mix_options.num_requests = 400;
  mix_options.universe_size = 24;
  mix_options.zipf_exponent = 0.99;
  mix_options.min_side = 8;
  mix_options.max_side = 20;
  const ZipfianRequestMix mix = MakeZipfianRequestMix(mix_options);

  std::cout << "Serving-tier load: " << mix.trace.size()
            << " Zipfian requests over " << mix.universe.size()
            << " distinct (engine, grid) entries through an OrderingServer "
               "(window=2ms, max_batch=64, cache=64)\n\n";

  // Reference orders: one direct engine call per universe entry. Everything
  // the server answers must match these byte-for-byte, so Spearman is
  // exactly 1 unless the serving path breaks determinism.
  std::vector<std::vector<int64_t>> direct;
  direct.reserve(mix.universe.size());
  for (const OrderingRequest& request : mix.universe) {
    auto engine = MakeOrderingEngine(request.engine);
    SPECTRAL_CHECK(engine.ok());
    auto result = (*engine)->Order(request);
    SPECTRAL_CHECK(result.ok()) << result.status();
    direct.push_back(Ranks(result->order));
  }

  OrderingServerOptions options;
  // Capacity above the universe size: no evictions, so hit/solve counts are
  // machine-independent and the regression gate can pin them.
  options.service.cache_capacity = 64;
  options.window_ms = 2.0;
  options.max_batch = 64;
  options.max_queue = 1024;

  std::vector<ScenarioSample> samples;
  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "bench_service_cache.txt")
          .string();
  {
    OrderingServer server(options);
    samples.push_back(RunScenario("cold", server, mix, direct));
    samples.push_back(RunScenario("warm", server, mix, direct));
    SPECTRAL_CHECK(server.SaveSnapshot(snapshot_path).ok());
  }
  {
    OrderingServer restarted(options);
    auto imported = restarted.LoadSnapshot(snapshot_path);
    SPECTRAL_CHECK(imported.ok()) << imported.status();
    samples.push_back(RunScenario("warm_restart", restarted, mix, direct));
  }
  std::filesystem::remove(snapshot_path);

  // A warm cache — restored or not — must serve without any eigensolves.
  SPECTRAL_CHECK_EQ(samples[1].solves, 0);
  SPECTRAL_CHECK_EQ(samples[2].solves, 0);

  TablePrinter table;
  table.SetHeader({"scenario", "requests", "batches", "solves", "hit_rate",
                   "spearman_min", "qps", "p50_ms", "p99_ms", "cold_p50_ms",
                   "warm_p50_ms"});
  std::vector<std::string> rows;
  for (const ScenarioSample& s : samples) {
    table.AddRow({s.scenario, FormatInt(s.requests), FormatInt(s.batches),
                  FormatInt(s.solves), FormatDouble(s.hit_rate, 3),
                  FormatDouble(s.spearman_min_vs_direct, 6),
                  FormatDouble(s.qps, 0), FormatDouble(s.p50_ms, 3),
                  FormatDouble(s.p99_ms, 3), FormatDouble(s.cold_p50_ms, 3),
                  FormatDouble(s.warm_p50_ms, 3)});
    rows.push_back(
        "{\"scenario\": \"" + s.scenario +
        "\", \"requests\": " + FormatInt(s.requests) +
        ", \"batches\": " + FormatInt(s.batches) +
        ", \"solves\": " + FormatInt(s.solves) +
        ", \"coalesced\": " + FormatInt(s.coalesced) +
        ", \"hit_rate\": " + FormatDouble(s.hit_rate, 6) +
        ", \"spearman_min_vs_direct\": " +
        FormatDouble(s.spearman_min_vs_direct, 6) +
        ", \"qps\": " + FormatDouble(s.qps, 1) +
        ", \"wall_ms\": " + FormatDouble(s.wall_ms, 2) +
        ", \"p50_ms\": " + FormatDouble(s.p50_ms, 4) +
        ", \"p99_ms\": " + FormatDouble(s.p99_ms, 4) +
        ", \"cold_p50_ms\": " + FormatDouble(s.cold_p50_ms, 4) +
        ", \"cold_p99_ms\": " + FormatDouble(s.cold_p99_ms, 4) +
        ", \"warm_p50_ms\": " + FormatDouble(s.warm_p50_ms, 4) +
        ", \"warm_p99_ms\": " + FormatDouble(s.warm_p99_ms, 4) + "}");
  }
  EmitTable("service_traffic", table);
  EmitJsonRows("BENCH_service_traffic.json", rows);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
