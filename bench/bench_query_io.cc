// End-to-end page-I/O bench: every OrderingEngine registry mapping is run
// through MappingService -> BuildQueryPath (layout + rank B+-tree + packed
// R-tree), then a fixed range-query and kNN workload executes against each
// physical design through an LruBufferPool of each configured size. Rows
// are keyed (workload, engine, pool_pages) and report data pages touched,
// page I/Os, hit rates, and modeled I/O cost per query.
//
// Every reported counter is deterministic — a pure function of the order
// and the query stream (see QueryResultStats) — so the committed baseline
// bench_results/BENCH_query_io.json is CI-gateable machine-independently
// (tools/check_bench_regression.py --suite query). wall_ms is the only
// machine-dependent field and is gated on share-of-total only.
//
// The headline gate is the paper's Figure 6 story end-to-end: range
// queries slide at an unaligned stride, so fractal curves pay their
// worst-case straddles (a box crossing a top-level split spans nearly the
// whole file) while the spectral order's interval stays bounded — spectral
// must beat every fractal curve on worst-case pages touched per query.

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/mapping_service.h"
#include "core/ordering_request.h"
#include "query/executor.h"
#include "space/point_set.h"
#include "storage/buffer_pool.h"
#include "util/check.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/generators.h"

namespace spectral {
namespace bench {
namespace {

struct RangeBox {
  std::vector<Coord> lo;
  std::vector<Coord> hi;
};

struct QueryWorkload {
  std::string name;
  std::shared_ptr<const PointSet> points;
  std::vector<RangeBox> range_queries;
  std::vector<int64_t> knn_queries;  // query point indices
};

// Square boxes of side `box` sliding at `stride` (deliberately unaligned
// with page and curve-block boundaries) across a `side`-cell extent.
std::vector<RangeBox> SlidingBoxes(Coord side, Coord box, Coord stride) {
  std::vector<RangeBox> boxes;
  for (Coord y = 0; y + box <= side; y += stride) {
    for (Coord x = 0; x + box <= side; x += stride) {
      boxes.push_back(RangeBox{
          {x, y}, {static_cast<Coord>(x + box - 1),
                   static_cast<Coord>(y + box - 1)}});
    }
  }
  return boxes;
}

QueryWorkload MakeGridWorkload() {
  QueryWorkload w;
  w.name = "grid64x64";
  w.points =
      std::make_shared<PointSet>(PointSet::FullGrid(GridSpec({64, 64})));
  w.range_queries = SlidingBoxes(/*side=*/64, /*box=*/8, /*stride=*/3);
  for (int64_t i = 0; i < w.points->size(); i += 97) {
    w.knn_queries.push_back(i);
  }
  return w;
}

QueryWorkload MakeClustersWorkload() {
  QueryWorkload w;
  w.name = "clusters2k";
  Rng rng(0xc1a5ull);
  w.points = std::make_shared<PointSet>(SampleGaussianClusters(
      GridSpec({128, 128}), /*num_clusters=*/4, /*count=*/2048,
      /*stddev_fraction=*/0.08, rng));
  w.range_queries = SlidingBoxes(/*side=*/128, /*box=*/16, /*stride=*/7);
  for (int64_t i = 0; i < w.points->size(); i += 67) {
    w.knn_queries.push_back(i);
  }
  return w;
}

struct Sample {
  std::string workload;
  std::string engine;
  int64_t pool_pages = 0;
  int64_t range_queries = 0;
  double range_pages_mean = 0.0;
  int64_t range_pages_max = 0;
  double range_page_io_mean = 0.0;
  double range_io_cost_mean = 0.0;
  int64_t knn_queries = 0;
  double knn_pages_mean = 0.0;
  double hit_rate = 0.0;
  double wall_ms = 0.0;
};

Sample RunEngine(const QueryWorkload& workload, const QueryPath& path,
                 const std::string& engine, int64_t pool_pages) {
  WallTimer timer;
  LruBufferPool pool(pool_pages);
  const QueryExecutor executor = path.MakeExecutor(&pool);

  Sample s;
  s.workload = workload.name;
  s.engine = engine;
  s.pool_pages = pool_pages;
  s.range_queries = static_cast<int64_t>(workload.range_queries.size());
  s.knn_queries = static_cast<int64_t>(workload.knn_queries.size());

  int64_t range_pages = 0, range_io = 0, knn_pages = 0;
  double range_cost = 0.0;
  for (const RangeBox& box : workload.range_queries) {
    const auto stats = executor.RangeViaBTree(box.lo, box.hi);
    range_pages += stats.pages_touched;
    range_io += stats.page_io;
    range_cost += stats.io_cost;
    s.range_pages_max = std::max(s.range_pages_max, stats.pages_touched);
  }
  for (const int64_t query : workload.knn_queries) {
    const auto stats =
        executor.KnnViaWindow(query, /*k=*/10, /*window=*/32);
    knn_pages += stats.pages_touched;
  }

  const double nr = static_cast<double>(s.range_queries);
  const double nk = static_cast<double>(s.knn_queries);
  s.range_pages_mean = static_cast<double>(range_pages) / nr;
  s.range_page_io_mean = static_cast<double>(range_io) / nr;
  s.range_io_cost_mean = range_cost / nr;
  s.knn_pages_mean = static_cast<double>(knn_pages) / nk;
  s.hit_rate = pool.HitRate();
  s.wall_ms = timer.ElapsedSeconds() * 1e3;
  return s;
}

void Run() {
  const std::vector<std::string> engines = {
      "sweep", "snake",  "zorder",   "gray",
      "hilbert", "peano", "spiral", "spectral", "sharded-spectral"};
  const std::vector<int64_t> pool_sizes = {8, 64};
  const std::vector<QueryWorkload> workloads = {MakeGridWorkload(),
                                                MakeClustersWorkload()};

  MappingService service;
  QueryPathOptions options;
  options.page_size = 32;

  std::cout << "Query-path page I/O: " << engines.size() << " engines x "
            << workloads.size() << " workloads x " << pool_sizes.size()
            << " pool sizes (page_size=" << options.page_size
            << " records)\n\n";

  TablePrinter table;
  table.SetHeader({"workload", "engine", "pool", "rq_pages_mean",
                   "rq_pages_max", "rq_io_mean", "knn_pages_mean", "hit_rate",
                   "wall_ms"});
  std::vector<std::string> rows;
  for (const QueryWorkload& workload : workloads) {
    for (const std::string& engine : engines) {
      OrderingRequest request =
          OrderingRequest::ForPoints(workload.points, engine);
      if (engine == "spectral" || engine == "sharded-spectral") {
        request.options.spectral = DefaultSpectralOptions(2);
      }
      if (engine == "sharded-spectral") {
        request.options.sharded.num_shards = 4;
      }
      auto path = BuildQueryPath(request, &service, options);
      SPECTRAL_CHECK(path.ok()) << engine << ": " << path.status();

      for (const int64_t pool_pages : pool_sizes) {
        const Sample s = RunEngine(workload, *path, engine, pool_pages);
        table.AddRow({s.workload, s.engine, FormatInt(s.pool_pages),
                      FormatDouble(s.range_pages_mean, 2),
                      FormatInt(s.range_pages_max),
                      FormatDouble(s.range_page_io_mean, 2),
                      FormatDouble(s.knn_pages_mean, 2),
                      FormatDouble(s.hit_rate, 3),
                      FormatDouble(s.wall_ms, 2)});
        rows.push_back(
            "{\"workload\": \"" + s.workload + "\", \"engine\": \"" +
            s.engine + "\", \"pool_pages\": " + FormatInt(s.pool_pages) +
            ", \"range_queries\": " + FormatInt(s.range_queries) +
            ", \"range_pages_mean\": " + FormatDouble(s.range_pages_mean, 6) +
            ", \"range_pages_max\": " + FormatInt(s.range_pages_max) +
            ", \"range_page_io_mean\": " +
            FormatDouble(s.range_page_io_mean, 6) +
            ", \"range_io_cost_mean\": " +
            FormatDouble(s.range_io_cost_mean, 6) +
            ", \"knn_queries\": " + FormatInt(s.knn_queries) +
            ", \"knn_pages_mean\": " + FormatDouble(s.knn_pages_mean, 6) +
            ", \"hit_rate\": " + FormatDouble(s.hit_rate, 6) +
            ", \"wall_ms\": " + FormatDouble(s.wall_ms, 2) + "}");
      }
    }
  }
  EmitTable("query_io", table);
  EmitJsonRows("BENCH_query_io.json", rows);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
