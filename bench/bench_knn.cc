// Experiment X5 — kNN via the 1-d order ("similarity search", the first
// application the paper names). A window of ranks around the query point
// serves as the candidate set; recall against exact kNN measures how much
// of the true neighborhood the mapping keeps nearby.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "query/knn.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const Coord kSide = 24;
  const GridSpec grid = GridSpec::Uniform(2, kSide);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "kNN through the linear order: recall@10 of a +/-window "
               "candidate set vs exact kNN, " << kSide << "x" << kSide
            << " grid, 300 queries\n\n";

  BuildOrdersOptions build;
  build.include_extras = true;
  build.spectral = DefaultSpectralOptions(2);
  const auto orders = BuildOrders(points, build);

  const std::vector<int64_t> windows = {10, 20, 40, 80};

  TablePrinter table;
  std::vector<std::string> header = {"window"};
  for (const auto& named : orders) header.push_back(named.name);
  table.SetHeader(header);

  for (int64_t window : windows) {
    std::vector<std::string> cells = {FormatInt(window)};
    for (const auto& named : orders) {
      KnnOptions options;
      options.k = 10;
      options.window = window;
      options.num_queries = 300;
      options.seed = 0xabcd01;
      const auto stats = EvaluateKnnRecall(points, named.order, options);
      cells.push_back(FormatDouble(stats.mean_recall, 3));
    }
    table.AddRow(cells);
  }
  EmitTable("knn", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
