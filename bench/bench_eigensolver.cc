// Experiment X6 — eigensolver substrate microbenchmarks (google-benchmark):
// the Lanczos Fiedler path vs the dense Jacobi reference, SpMV throughput,
// and end-to-end Spectral LPM mapping cost by problem size. This is the
// ablation for DESIGN.md's "sparse eigensolver" requirement: it shows where
// the dense engine stops being viable and what the sparse path costs.

#include <benchmark/benchmark.h>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "eigen/fiedler.h"
#include "util/check.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "linalg/sparse_matrix.h"
#include "space/point_set.h"

namespace spectral {
namespace {

void BM_SpMV_GridLaplacian(benchmark::State& state) {
  const Coord side = static_cast<Coord>(state.range(0));
  const SparseMatrix lap =
      BuildLaplacian(BuildGridGraph(GridSpec::Uniform(2, side)));
  Vector x(static_cast<size_t>(lap.rows()), 1.0);
  Vector y(static_cast<size_t>(lap.rows()));
  for (auto _ : state) {
    lap.MatVec(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * lap.nnz());
}
BENCHMARK(BM_SpMV_GridLaplacian)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_Fiedler_Lanczos_Grid2D(benchmark::State& state) {
  const Coord side = static_cast<Coord>(state.range(0));
  const SparseMatrix lap =
      BuildLaplacian(BuildGridGraph(GridSpec::Uniform(2, side)));
  FiedlerOptions options;
  options.method = FiedlerMethod::kLanczos;
  options.num_pairs = 1;
  for (auto _ : state) {
    auto result = ComputeFiedler(lap, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Fiedler_Lanczos_Grid2D)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Fiedler_Dense_Grid2D(benchmark::State& state) {
  const Coord side = static_cast<Coord>(state.range(0));
  const SparseMatrix lap =
      BuildLaplacian(BuildGridGraph(GridSpec::Uniform(2, side)));
  FiedlerOptions options;
  options.method = FiedlerMethod::kDense;
  options.num_pairs = 1;
  for (auto _ : state) {
    auto result = ComputeFiedler(lap, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Fiedler_Dense_Grid2D)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_Fiedler_Lanczos_Path(benchmark::State& state) {
  const Coord n = static_cast<Coord>(state.range(0));
  const SparseMatrix lap = BuildLaplacian(BuildGridGraph(GridSpec({n})));
  FiedlerOptions options;
  options.method = FiedlerMethod::kLanczos;
  options.num_pairs = 1;
  for (auto _ : state) {
    auto result = ComputeFiedler(lap, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Fiedler_Lanczos_Path)->Arg(256)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_SpectralMap_EndToEnd(benchmark::State& state) {
  const Coord side = static_cast<Coord>(state.range(0));
  const PointSet points = PointSet::FullGrid(GridSpec::Uniform(2, side));
  OrderingRequest request = OrderingRequest::ForPoints(points);
  request.options.spectral.fiedler.num_pairs = 3;
  request.options.spectral.parallelism = 1;
  const auto engine = MakeOrderingEngine("spectral");
  SPECTRAL_CHECK(engine.ok()) << engine.status();
  for (auto _ : state) {
    auto result = (*engine)->Order(request);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SpectralMap_EndToEnd)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Parallel component solves: 4 disconnected 24x24 islands, swept over the
// solver thread count (1 = the serial baseline; output is identical for
// every value — see tests/ordering_engine_test.cc).
void BM_SpectralMap_MultiComponent(benchmark::State& state) {
  const Coord kSide = 24;
  PointSet points(2);
  for (Coord island = 0; island < 4; ++island) {
    const Coord x0 = island * 1000;
    for (Coord x = 0; x < kSide; ++x) {
      for (Coord y = 0; y < kSide; ++y) {
        points.Add(std::vector<Coord>{static_cast<Coord>(x0 + x), y});
      }
    }
  }
  OrderingRequest request = OrderingRequest::ForPoints(points);
  request.options.spectral.fiedler.num_pairs = 3;
  request.options.spectral.parallelism = static_cast<int>(state.range(0));
  const auto engine = MakeOrderingEngine("spectral");
  SPECTRAL_CHECK(engine.ok()) << engine.status();
  for (auto _ : state) {
    auto result = (*engine)->Order(request);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SpectralMap_MultiComponent)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace spectral

BENCHMARK_MAIN();
