// Experiment X6 — eigensolver substrate bench: every Fiedler engine (dense
// reference, scalar Lanczos with sequential deflation, block Lanczos cold,
// block Lanczos with the multilevel warm start) on the repo's standard
// workloads, reporting cold wall time, matvec/restart counts, and the true
// worst residual per extracted pair. This is the ablation behind the
// solver overhaul: it shows what the block path and the warm start each
// buy, and where the dense engine stops being viable.
//
// Emits bench_results/BENCH_eigensolver.json (one object per
// method/workload row) which tools/check_bench_regression.py diffs against
// the committed baseline next to the ordering-engines gate: cold time is
// share-normalized, matvecs are deterministic and gated on relative
// growth, residuals are gated against the tolerance contract.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/multilevel.h"
#include "eigen/fiedler.h"
#include "graph/graph.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "graph/point_graph.h"
#include "linalg/sparse_matrix.h"
#include "space/point_set.h"
#include "util/check.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/generators.h"

namespace spectral {
namespace bench {
namespace {

struct SolverSample {
  std::string method;
  std::string workload;
  double cold_ms = 0.0;
  int64_t matvecs = 0;
  int64_t restarts = 0;
  double max_residual = 0.0;
  double lambda2 = 0.0;
};

std::vector<SolverSample>& AllSamples() {
  static std::vector<SolverSample> samples;
  return samples;
}

void EmitJson() {
  std::vector<std::string> rows;
  for (const SolverSample& s : AllSamples()) {
    // max_residual in scientific notation: machine-precision residuals
    // (~1e-13) must survive the round trip, or the gate's growth check
    // would compare against a truncated 0.
    rows.push_back("{\"method\": \"" + s.method + "\", \"workload\": \"" +
                   s.workload + "\", \"cold_ms\": " +
                   FormatDouble(s.cold_ms, 3) + ", \"matvecs\": " +
                   FormatInt(s.matvecs) + ", \"restarts\": " +
                   FormatInt(s.restarts) + ", \"max_residual\": " +
                   FormatScientific(s.max_residual) + ", \"lambda2\": " +
                   FormatDouble(s.lambda2, 9) + "}");
  }
  EmitJsonRows("BENCH_eigensolver.json", rows);
}

// Worst ||L v - lambda v|| over the returned pairs.
double MaxResidual(const SparseMatrix& lap, const FiedlerResult& result) {
  double worst = 0.0;
  Vector lv(static_cast<size_t>(lap.rows()));
  for (const LaplacianEigenPair& pair : result.pairs) {
    lap.MatVec(pair.eigenvector, lv);
    Axpy(-pair.eigenvalue, pair.eigenvector, lv);
    worst = std::max(worst, Norm2(lv));
  }
  return worst;
}

struct Workload {
  std::string name;
  Graph graph;
  SparseMatrix laplacian;
  std::vector<Vector> axes;
};

Workload MakeGridWorkload(std::vector<Coord> sides) {
  Workload w;
  GridSpec grid(sides);
  w.name = "grid";
  for (size_t d = 0; d < sides.size(); ++d) {
    if (d > 0) w.name += "x";
    w.name += FormatInt(sides[d]);
  }
  w.graph = BuildGridGraph(grid);
  w.laplacian = BuildLaplacian(w.graph);
  w.axes = PointSet::FullGrid(grid).CenteredAxisFunctions();
  return w;
}

Workload MakeKernelBlobWorkload() {
  Rng rng(12345);
  PointSet points = SampleConnectedBlob(GridSpec({300, 30}), 5000, rng);
  PointGraphOptions graph_options;
  graph_options.radius = 2;
  graph_options.kernel = WeightKernel::kGaussian;
  graph_options.gaussian_sigma = 1.5;
  auto graph = BuildPointGraph(points, graph_options);
  SPECTRAL_CHECK(graph.ok()) << graph.status();
  Workload w;
  w.name = "kernelblob300x30";
  w.graph = std::move(*graph);
  w.laplacian = BuildLaplacian(w.graph);
  w.axes = points.CenteredAxisFunctions();
  return w;
}

void RunMethod(const std::string& method, const Workload& w,
               TablePrinter& table) {
  FiedlerOptions options;
  options.num_pairs = 3;
  WallTimer timer;
  StatusOr<FiedlerResult> result = [&]() {
    if (method == "multilevel-warm") {
      MultilevelOptions multilevel;
      multilevel.fiedler = options;
      return ComputeFiedlerMultilevel(w.graph, multilevel, w.axes);
    }
    if (method == "dense") {
      options.method = FiedlerMethod::kDense;
    } else if (method == "lanczos") {
      options.method = FiedlerMethod::kLanczos;
    } else {
      SPECTRAL_CHECK_EQ(method, "block");
      options.method = FiedlerMethod::kBlockLanczos;
    }
    return ComputeFiedler(w.laplacian, options, w.axes);
  }();
  const double cold_ms = timer.ElapsedSeconds() * 1e3;
  SPECTRAL_CHECK(result.ok()) << method << " on " << w.name << ": "
                              << result.status();

  SolverSample sample;
  sample.method = method;
  sample.workload = w.name;
  sample.cold_ms = cold_ms;
  sample.matvecs = result->matvecs;
  sample.restarts = result->restarts;
  sample.max_residual = MaxResidual(w.laplacian, *result);
  sample.lambda2 = result->lambda2;
  AllSamples().push_back(sample);
  table.AddRow({w.name, method, FormatDouble(cold_ms, 1),
                FormatInt(sample.matvecs), FormatInt(sample.restarts),
                FormatDouble(sample.max_residual, 10),
                FormatDouble(sample.lambda2, 8), result->method_used});
}

void Run() {
  std::cout << "Fiedler engines (num_pairs=3, tol=1e-9): cold wall time, "
               "matvec/restart counts, worst true residual per method and "
               "workload\n\n";
  TablePrinter table;
  table.SetHeader({"workload", "method", "cold_ms", "matvecs", "restarts",
                   "max_residual", "lambda2", "detail"});

  // The dense reference only on a size where O(n^3) is still sane.
  {
    const Workload small = MakeGridWorkload({16, 16});
    RunMethod("dense", small, table);
    RunMethod("lanczos", small, table);
    RunMethod("block", small, table);
  }

  std::vector<Workload> workloads;
  workloads.push_back(MakeGridWorkload({64, 64}));
  workloads.push_back(MakeGridWorkload({128, 32}));
  workloads.push_back(MakeKernelBlobWorkload());
  for (const Workload& w : workloads) {
    RunMethod("lanczos", w, table);
    RunMethod("block", w, table);
    RunMethod("multilevel-warm", w, table);
  }
  EmitTable("eigensolver", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  spectral::bench::EmitJson();
  return 0;
}
