// Experiment X6 — eigensolver substrate bench: every Fiedler engine (dense
// reference, scalar Lanczos with sequential deflation, block Lanczos cold,
// block Lanczos with the multilevel warm start) on the repo's standard
// workloads, reporting cold wall time, matvec/restart counts, and the true
// worst residual per extracted pair. This is the ablation behind the
// solver overhaul: it shows what the block path and the warm start each
// buy, and where the dense engine stops being viable.
//
// Emits bench_results/BENCH_eigensolver.json (one object per
// method/workload row) which tools/check_bench_regression.py diffs against
// the committed baseline next to the ordering-engines gate: cold time is
// share-normalized, matvecs are deterministic and gated on relative
// growth, residuals are gated against the tolerance contract.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/multilevel.h"
#include "eigen/fiedler.h"
#include "eigen/kernel_profile.h"
#include "graph/graph.h"
#include "linalg/block_ops.h"
#include "linalg/packed_basis.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "graph/point_graph.h"
#include "linalg/sparse_matrix.h"
#include "space/point_set.h"
#include "util/check.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/generators.h"

namespace spectral {
namespace bench {
namespace {

struct SolverSample {
  std::string method;
  std::string workload;
  double cold_ms = 0.0;
  int64_t matvecs = 0;
  int64_t restarts = 0;
  double max_residual = 0.0;
  double lambda2 = 0.0;
};

std::vector<SolverSample>& AllSamples() {
  static std::vector<SolverSample> samples;
  return samples;
}

void EmitJson() {
  std::vector<std::string> rows;
  for (const SolverSample& s : AllSamples()) {
    // max_residual in scientific notation: machine-precision residuals
    // (~1e-13) must survive the round trip, or the gate's growth check
    // would compare against a truncated 0.
    rows.push_back("{\"method\": \"" + s.method + "\", \"workload\": \"" +
                   s.workload + "\", \"cold_ms\": " +
                   FormatDouble(s.cold_ms, 3) + ", \"matvecs\": " +
                   FormatInt(s.matvecs) + ", \"restarts\": " +
                   FormatInt(s.restarts) + ", \"max_residual\": " +
                   FormatScientific(s.max_residual) + ", \"lambda2\": " +
                   FormatDouble(s.lambda2, 9) + "}");
  }
  EmitJsonRows("BENCH_eigensolver.json", rows);
}

// Worst ||L v - lambda v|| over the returned pairs.
double MaxResidual(const SparseMatrix& lap, const FiedlerResult& result) {
  double worst = 0.0;
  Vector lv(static_cast<size_t>(lap.rows()));
  for (const LaplacianEigenPair& pair : result.pairs) {
    lap.MatVec(pair.eigenvector, lv);
    Axpy(-pair.eigenvalue, pair.eigenvector, lv);
    worst = std::max(worst, Norm2(lv));
  }
  return worst;
}

struct Workload {
  std::string name;
  Graph graph;
  SparseMatrix laplacian;
  std::vector<Vector> axes;
};

Workload MakeGridWorkload(std::vector<Coord> sides) {
  Workload w;
  GridSpec grid(sides);
  w.name = "grid";
  for (size_t d = 0; d < sides.size(); ++d) {
    if (d > 0) w.name += "x";
    w.name += FormatInt(sides[d]);
  }
  w.graph = BuildGridGraph(grid);
  w.laplacian = BuildLaplacian(w.graph);
  w.axes = PointSet::FullGrid(grid).CenteredAxisFunctions();
  return w;
}

Workload MakeKernelBlobWorkload() {
  Rng rng(12345);
  PointSet points = SampleConnectedBlob(GridSpec({300, 30}), 5000, rng);
  PointGraphOptions graph_options;
  graph_options.radius = 2;
  graph_options.kernel = WeightKernel::kGaussian;
  graph_options.gaussian_sigma = 1.5;
  auto graph = BuildPointGraph(points, graph_options);
  SPECTRAL_CHECK(graph.ok()) << graph.status();
  Workload w;
  w.name = "kernelblob300x30";
  w.graph = std::move(*graph);
  w.laplacian = BuildLaplacian(w.graph);
  w.axes = points.CenteredAxisFunctions();
  return w;
}

// Per-kernel share rows for the block solver: one row per profiled phase
// (SpMM growth, BCGS2 reorth, multi-dot H-fill, Rayleigh-Ritz, Chebyshev
// filter). `cold_ms` is the phase's wall time (share-gated like any other
// row) and `matvecs` carries the phase's deterministic flop estimate, so
// the gate pins the work volume even when the timing share is noise. The
// regression gate additionally checks that the phase times of a workload
// sum to at most the block row's total (tools/check_bench_regression.py).
void EmitPhaseRows(const Workload& w, const KernelProfile& p,
                   TablePrinter& table) {
  const struct {
    const char* name;
    double ms;
    int64_t flops;
  } phases[] = {{"phase-spmm", p.spmm_ms, p.spmm_flops},
                {"phase-reorth", p.reorth_ms, p.reorth_flops},
                {"phase-hfill", p.hfill_ms, p.hfill_flops},
                {"phase-rr", p.rr_ms, p.rr_flops},
                {"phase-cheb", p.cheb_ms, p.cheb_flops}};
  for (const auto& phase : phases) {
    SolverSample sample;
    sample.method = phase.name;
    sample.workload = w.name;
    sample.cold_ms = phase.ms;
    sample.matvecs = phase.flops;  // deterministic flop estimate
    AllSamples().push_back(sample);
    table.AddRow({w.name, sample.method, FormatDouble(sample.cold_ms, 1),
                  FormatInt(sample.matvecs), "0", "0", "0",
                  "block solver kernel share"});
  }
}

void RunMethod(const std::string& method, const Workload& w,
               TablePrinter& table, bool emit_phases = false) {
  FiedlerOptions options;
  options.num_pairs = 3;
  WallTimer timer;
  StatusOr<FiedlerResult> result = [&]() {
    if (method == "multilevel-warm") {
      MultilevelOptions multilevel;
      multilevel.fiedler = options;
      return ComputeFiedlerMultilevel(w.graph, multilevel, w.axes);
    }
    if (method == "dense") {
      options.method = FiedlerMethod::kDense;
    } else if (method == "lanczos") {
      options.method = FiedlerMethod::kLanczos;
    } else {
      SPECTRAL_CHECK_EQ(method, "block");
      options.method = FiedlerMethod::kBlockLanczos;
    }
    return ComputeFiedler(w.laplacian, options, w.axes);
  }();
  const double cold_ms = timer.ElapsedSeconds() * 1e3;
  SPECTRAL_CHECK(result.ok()) << method << " on " << w.name << ": "
                              << result.status();

  SolverSample sample;
  sample.method = method;
  sample.workload = w.name;
  sample.cold_ms = cold_ms;
  sample.matvecs = result->matvecs;
  sample.restarts = result->restarts;
  sample.max_residual = MaxResidual(w.laplacian, *result);
  sample.lambda2 = result->lambda2;
  AllSamples().push_back(sample);
  table.AddRow({w.name, method, FormatDouble(cold_ms, 1),
                FormatInt(sample.matvecs), FormatInt(sample.restarts),
                FormatDouble(sample.max_residual, 10),
                FormatDouble(sample.lambda2, 8), result->method_used});
  if (emit_phases) EmitPhaseRows(w, result->profile, table);
}

// --- Kernel microbenches --------------------------------------------------
// Direct timings of the two fused kernels behind the block solver, emitted
// as rows in the same JSON so the regression gate covers them: `matvecs`
// carries each kernel's deterministic work counter (column applications /
// panel applications) and `max_residual` its correctness check, so a
// rewrite that silently changes the arithmetic or the work volume fails
// the gate even when the timing share sits below the noise floor.

// "spmm-w8": fused 8-wide SpMM passes chained output-to-input, then
// verified element-for-element against per-column MatVec (the kernel's
// bit-identity contract, so the residual is exactly 0).
void RunSpmmMicrobench(const Workload& w, TablePrinter& table) {
  constexpr int64_t kWidth = 8;
  constexpr int kReps = 40;
  const int64_t n = w.laplacian.rows();
  Rng rng(0xb10cf00d);
  std::vector<double> x(static_cast<size_t>(n * kWidth));
  std::vector<double> y(x.size());
  for (double& v : x) v = rng.UniformDouble(-1.0, 1.0);
  const std::vector<double> x0 = x;

  WallTimer timer;
  for (int r = 0; r < kReps; ++r) {
    w.laplacian.MatVecRowsBlock(0, n, kWidth, x, y);
    x.swap(y);
  }
  const double cold_ms = timer.ElapsedSeconds() * 1e3;

  // Bit-identity check against the scalar kernel, off the clock.
  w.laplacian.MatVecRowsBlock(0, n, kWidth, x0, y);
  double worst = 0.0;
  Vector xc(static_cast<size_t>(n));
  Vector yc(static_cast<size_t>(n));
  for (int64_t c = 0; c < kWidth; ++c) {
    for (int64_t j = 0; j < n; ++j) {
      xc[static_cast<size_t>(j)] = x0[static_cast<size_t>(j * kWidth + c)];
    }
    w.laplacian.MatVec(xc, yc);
    for (int64_t j = 0; j < n; ++j) {
      worst = std::max(worst,
                       std::fabs(yc[static_cast<size_t>(j)] -
                                 y[static_cast<size_t>(j * kWidth + c)]));
    }
  }

  SolverSample sample;
  sample.method = "spmm-w8";
  sample.workload = w.name;
  sample.cold_ms = cold_ms;
  sample.matvecs = kReps * kWidth;  // column applications, deterministic
  sample.max_residual = worst;      // == 0: bit-identical to MatVec
  AllSamples().push_back(sample);
  table.AddRow({w.name, sample.method, FormatDouble(cold_ms, 1),
                FormatInt(sample.matvecs), "0",
                FormatDouble(sample.max_residual, 10), "0",
                "fused SpMM vs per-column MatVec"});
}

// "reorth-blocked": panel-blocked orthonormalization of a seeded 24-column
// block; `matvecs` carries the panel counter and `max_residual` the worst
// |Q^T Q - I| entry of the factor.
void RunReorthMicrobench(const Workload& w, TablePrinter& table) {
  constexpr int kCols = 24;
  constexpr int kReps = 10;
  const int64_t n = w.laplacian.rows();
  Rng rng(0x0c7a90);
  VectorBlock master(kCols, Vector(static_cast<size_t>(n)));
  for (Vector& col : master) {
    for (double& v : col) v = rng.UniformDouble(-1.0, 1.0);
  }

  int64_t panels = 0;
  int64_t rank = 0;
  VectorBlock q;
  WallTimer timer;
  for (int r = 0; r < kReps; ++r) {
    VectorBlock block = master;
    rank = OrthonormalizeBlock(block, /*drop_tol=*/1e-10, nullptr, &panels);
    if (r + 1 == kReps) q = std::move(block);
  }
  const double cold_ms = timer.ElapsedSeconds() * 1e3;
  SPECTRAL_CHECK_EQ(rank, kCols);

  double worst = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    for (size_t j = i; j < q.size(); ++j) {
      const double expect = i == j ? 1.0 : 0.0;
      worst = std::max(worst, std::fabs(Dot(q[i], q[j]) - expect));
    }
  }

  SolverSample sample;
  sample.method = "reorth-blocked";
  sample.workload = w.name;
  sample.cold_ms = cold_ms;
  sample.matvecs = panels;     // panel applications, deterministic
  sample.max_residual = worst; // worst |Q^T Q - I|
  AllSamples().push_back(sample);
  table.AddRow({w.name, sample.method, FormatDouble(cold_ms, 1),
                FormatInt(sample.matvecs), "0",
                FormatDouble(sample.max_residual, 10), "0",
                "panel-blocked orthonormalize, 24 cols"});
}

// "hfill-multidot": the fused symmetric multi-dot behind the Rayleigh-Ritz
// H-fill — one pass per 8-column panel instead of 2m scalar Dot passes per
// projected row. `matvecs` carries the number of H entries computed and
// `max_residual` the worst deviation from the scalar (Dot + Dot) / 2
// reference (the kernel's bit-identity contract, so it is exactly 0).
void RunHfillMicrobench(const Workload& w, TablePrinter& table) {
  constexpr int64_t kCols = 24;
  constexpr int kReps = 20;
  const int64_t n = w.laplacian.rows();
  Rng rng(0x4f111);
  PackedBasis v, av;
  v.Reset(n, kCols);
  av.Reset(n, kCols);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < kCols; ++c) {
      v.at(r, c) = rng.UniformDouble(-1.0, 1.0);
      av.at(r, c) = rng.UniformDouble(-1.0, 1.0);
    }
  }

  std::vector<double> h(static_cast<size_t>(kCols * kCols), 0.0);
  int64_t entries = 0;
  WallTimer timer;
  for (int rep = 0; rep < kReps; ++rep) {
    entries = 0;
    for (int64_t i = 0; i < kCols; ++i) {
      ProjectedRowMultiDot(v, av, i, i, kCols - i,
                           h.data() + i * kCols + i);
      entries += kCols - i;
    }
  }
  const double cold_ms = timer.ElapsedSeconds() * 1e3;

  // Bit-identity check against the scalar Dot pair, off the clock.
  double worst = 0.0;
  Vector vi, vj, avi, avj;
  for (int64_t i = 0; i < kCols; ++i) {
    v.CopyColumnOut(i, vi);
    av.CopyColumnOut(i, avi);
    for (int64_t j = i; j < kCols; ++j) {
      v.CopyColumnOut(j, vj);
      av.CopyColumnOut(j, avj);
      const double expect = (Dot(vi, avj) + Dot(vj, avi)) / 2.0;
      worst = std::max(
          worst, std::fabs(h[static_cast<size_t>(i * kCols + j)] - expect));
    }
  }

  SolverSample sample;
  sample.method = "hfill-multidot";
  sample.workload = w.name;
  sample.cold_ms = cold_ms;
  sample.matvecs = kReps * entries;  // H entries computed, deterministic
  sample.max_residual = worst;       // == 0: bit-identical to Dot pairs
  AllSamples().push_back(sample);
  table.AddRow({w.name, sample.method, FormatDouble(cold_ms, 1),
                FormatInt(sample.matvecs), "0",
                FormatDouble(sample.max_residual, 10), "0",
                "fused multi-dot vs scalar Dot pairs, 24 cols"});
}

void Run() {
  std::cout << "Fiedler engines (num_pairs=3, tol=1e-9): cold wall time, "
               "matvec/restart counts, worst true residual per method and "
               "workload\n\n";
  TablePrinter table;
  table.SetHeader({"workload", "method", "cold_ms", "matvecs", "restarts",
                   "max_residual", "lambda2", "detail"});

  // The dense reference only on a size where O(n^3) is still sane.
  {
    const Workload small = MakeGridWorkload({16, 16});
    RunMethod("dense", small, table);
    RunMethod("lanczos", small, table);
    RunMethod("block", small, table);
  }

  std::vector<Workload> workloads;
  workloads.push_back(MakeGridWorkload({64, 64}));
  workloads.push_back(MakeGridWorkload({128, 32}));
  workloads.push_back(MakeKernelBlobWorkload());
  for (const Workload& w : workloads) {
    RunMethod("lanczos", w, table);
    RunMethod("block", w, table, /*emit_phases=*/true);
    RunMethod("multilevel-warm", w, table);
  }

  // Kernel microbenches on the two structurally different Laplacians (5-pt
  // grid stencil vs irregular Gaussian-kernel graph).
  RunSpmmMicrobench(workloads[0], table);
  RunReorthMicrobench(workloads[0], table);
  RunHfillMicrobench(workloads[0], table);
  RunSpmmMicrobench(workloads[2], table);
  RunReorthMicrobench(workloads[2], table);
  RunHfillMicrobench(workloads[2], table);
  EmitTable("eigensolver", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  spectral::bench::EmitJson();
  return 0;
}
