// Experiment X1 — clustering metric of Moon et al. (the paper's ref [4]).
//
// For square range queries on a 2-d grid: the number of "clusters" (runs of
// consecutive 1-d positions) inside a query equals the number of sequential
// I/O segments needed to fetch the result. Fewer clusters = fewer seeks.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "query/range_query.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const Coord kSide = 32;
  const GridSpec grid = GridSpec::Uniform(2, kSide);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "Clustering (Moon et al. metric): mean number of consecutive "
               "rank runs per square query, "
            << kSide << "x" << kSide << " grid\n\n";

  BuildOrdersOptions build;
  build.include_extras = true;
  build.spectral = DefaultSpectralOptions(2);
  const auto orders = BuildOrders(points, build);

  const std::vector<Coord> query_sides = {2, 4, 8, 16};

  TablePrinter table;
  std::vector<std::string> header = {"query_side"};
  for (const auto& named : orders) header.push_back(named.name);
  table.SetHeader(header);

  for (Coord qs : query_sides) {
    RangeQueryShape shape;
    shape.extents = {qs, qs};
    RangeQueryOptions options;
    options.include_axis_permutations = false;
    options.collect_clusters = true;
    std::vector<std::string> cells = {FormatInt(qs)};
    for (const auto& named : orders) {
      const auto stats = EvaluateRangeQueries(grid, named.order, shape, options);
      cells.push_back(FormatDouble(stats.mean_clusters, 2));
    }
    table.AddRow(cells);
  }
  EmitTable("clustering", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
