#include "bench/bench_common.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/check.h"
#include "util/csv_writer.h"

namespace spectral {
namespace bench {

SpectralLpmOptions DefaultSpectralOptions(int dims) {
  SpectralLpmOptions options;
  // A hyper-cube grid has a (dims)-fold degenerate lambda2; computing one
  // extra pair lets the canonicalizer see the whole eigenspace.
  options.fiedler.num_pairs = dims + 1;
  return options;
}

std::vector<NamedOrder> BuildOrders(const PointSet& points,
                                    const BuildOrdersOptions& options) {
  // Paper figure label -> registry engine name. The paper calls Z-order
  // "Peano"; the true triadic Peano rides along as the "Peano3" extra.
  struct LabeledEngine {
    const char* label;
    const char* engine;
    bool required;
  };
  std::vector<LabeledEngine> lineup = {
      {"Sweep", "sweep", true},
      {"Peano", "zorder", true},
      {"Gray", "gray", true},
      {"Hilbert", "hilbert", true},
  };
  if (options.include_extras) {
    lineup.push_back({"Snake", "snake", false});
    lineup.push_back({"Peano3", "peano", false});
    lineup.push_back({"Spiral", "spiral", false});
  }
  lineup.push_back({"Spectral", "spectral", true});

  // The whole lineup is one batch: the service fans the engines out
  // largest-input-first on its shared pool (output is byte-identical to
  // ordering serially).
  std::vector<OrderingRequest> requests;
  requests.reserve(lineup.size());
  for (const LabeledEngine& entry : lineup) {
    OrderingRequest request = OrderingRequest::ForPoints(points, entry.engine);
    request.options.spectral = options.spectral;
    requests.push_back(std::move(request));
  }
  MappingService service;
  auto results = service.OrderBatch(requests);

  std::vector<NamedOrder> orders;
  for (size_t i = 0; i < lineup.size(); ++i) {
    auto& result = results[i];
    if (!result.ok()) {
      // Optional extras may not support this grid shape (e.g. spiral off a
      // square); required lineup members must always succeed.
      SPECTRAL_CHECK(!lineup[i].required)
          << lineup[i].label << ": " << result.status();
      continue;
    }
    orders.push_back({lineup[i].label, std::move(result->order)});
  }
  return orders;
}

void EmitJsonRows(const std::string& file_name,
                  const std::vector<std::string>& rows) {
  const std::string path = "bench_results/" + file_name;
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "(could not write " << path << ")\n";
    return;
  }
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out << "  " << rows[i] << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "[json: " << path << "]\n";
}

std::string FormatScientific(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3e", value);
  return buffer;
}

void EmitTable(const std::string& bench_name, const TablePrinter& table) {
  table.Print(std::cout);
  std::cout.flush();
  CsvWriter csv;
  const std::string path = "bench_results/" + bench_name + ".csv";
  if (!csv.Open(path).ok()) {
    std::cerr << "(could not write " << path << ")\n";
    return;
  }
  csv.WriteRow(table.header());
  for (const auto& row : table.rows()) csv.WriteRow(row);
  csv.Close();
  std::cout << "[csv: " << path << "]\n";
}

}  // namespace bench
}  // namespace spectral
