#include "bench/bench_common.h"

#include <iostream>

#include "util/check.h"
#include "util/csv_writer.h"

namespace spectral {
namespace bench {

SpectralLpmOptions DefaultSpectralOptions(int dims) {
  SpectralLpmOptions options;
  // A hyper-cube grid has a (dims)-fold degenerate lambda2; computing one
  // extra pair lets the canonicalizer see the whole eigenspace.
  options.fiedler.num_pairs = dims + 1;
  return options;
}

std::vector<NamedOrder> BuildOrders(const PointSet& points,
                                    const BuildOrdersOptions& options) {
  std::vector<NamedOrder> orders;
  auto add_curve = [&](const std::string& label, CurveKind kind,
                       bool required) {
    auto order = OrderByCurve(points, kind);
    if (!order.ok()) {
      SPECTRAL_CHECK(!required) << label << ": " << order.status();
      return;  // optional extras may not support this grid shape
    }
    orders.push_back({label, std::move(*order)});
  };
  add_curve("Sweep", CurveKind::kSweep, true);
  add_curve("Peano", CurveKind::kZOrder, true);  // the paper's "Peano"
  add_curve("Gray", CurveKind::kGray, true);
  add_curve("Hilbert", CurveKind::kHilbert, true);
  if (options.include_extras) {
    add_curve("Snake", CurveKind::kSnake, false);
    add_curve("Peano3", CurveKind::kPeano, false);
    add_curve("Spiral", CurveKind::kSpiral, false);
  }
  auto spectral_result = SpectralMapper(options.spectral).Map(points);
  SPECTRAL_CHECK(spectral_result.ok())
      << "Spectral: " << spectral_result.status();
  orders.push_back({"Spectral", std::move(spectral_result->order)});
  return orders;
}

void EmitTable(const std::string& bench_name, const TablePrinter& table) {
  table.Print(std::cout);
  std::cout.flush();
  CsvWriter csv;
  const std::string path = "bench_results/" + bench_name + ".csv";
  if (!csv.Open(path).ok()) {
    std::cerr << "(could not write " << path << ")\n";
    return;
  }
  csv.WriteRow(table.header());
  for (const auto& row : table.rows()) csv.WriteRow(row);
  csv.Close();
  std::cout << "[csv: " << path << "]\n";
}

}  // namespace bench
}  // namespace spectral
