// Experiment E4 — paper Figure 5a (nearest-neighbor queries, worst case).
//
// Question: if two 5-dimensional points are at Manhattan distance d (given
// as a percent of the maximum), how far apart can their images be in the
// one-dimensional order (percent of N-1)? Lower is better. One row per
// distance, one column per mapping, exactly the series the paper plots.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "query/pair_metrics.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void Run() {
  const int kDims = 5;
  const Coord kSide = 4;  // N = 4^5 = 1024, matching the paper's 5-d setting
  const GridSpec grid = GridSpec::Uniform(kDims, kSide);
  const PointSet points = PointSet::FullGrid(grid);

  std::cout << "Figure 5a: NN worst case - max 1-d distance (% of N-1) vs "
               "Manhattan distance (% of max), "
            << kDims << "-d grid, side " << kSide
            << ", N = " << grid.NumCells() << "\n\n";

  BuildOrdersOptions build;
  build.spectral = DefaultSpectralOptions(kDims);
  const auto orders = BuildOrders(points, build);

  const int64_t max_manhattan = grid.MaxManhattanDistance();
  const std::vector<int> percents = {10, 20, 30, 40, 50};
  std::vector<int64_t> distances;
  for (int p : percents) {
    distances.push_back(std::max<int64_t>(
        1, std::llround(p / 100.0 * static_cast<double>(max_manhattan))));
  }

  TablePrinter table;
  std::vector<std::string> header = {"manhattan_pct", "manhattan_d"};
  for (const auto& named : orders) header.push_back(named.name);
  table.SetHeader(header);

  // One pair sweep per mapping; the series are aligned by distance row.
  std::vector<PairDistanceSeries> series;
  for (const auto& named : orders) {
    series.push_back(
        ComputePairDistanceSeries(points, named.order, distances));
  }
  const double denom = static_cast<double>(grid.NumCells() - 1);
  for (size_t row = 0; row < percents.size(); ++row) {
    std::vector<std::string> cells = {FormatInt(percents[row]),
                                      FormatInt(distances[row])};
    for (const auto& s : series) {
      cells.push_back(FormatDouble(
          100.0 * static_cast<double>(s.max_rank_distance[row]) / denom, 1));
    }
    table.AddRow(cells);
  }
  EmitTable("fig5a_nn_worstcase", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
