// Experiment X8 — ablation: direct Fiedler order (the paper's algorithm)
// vs recursive spectral bisection (the median-cut method of the paper's
// reference [1]). Compares arrangement objectives, Figure-6-style range
// spreads, and solver work.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "graph/grid_graph.h"
#include "query/range_query.h"
#include "util/check.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace spectral {
namespace bench {
namespace {

void RunGrid(const GridSpec& grid, const std::string& label,
             TablePrinter& table) {
  const PointSet points = PointSet::FullGrid(grid);
  const Graph g = BuildGridGraph(grid);

  OrderingRequest direct_request = OrderingRequest::ForPoints(points);
  direct_request.options.spectral = DefaultSpectralOptions(grid.dims());
  OrderingRequest bisect_request =
      OrderingRequest::ForPoints(points, "bisection");
  bisect_request.options.spectral = DefaultSpectralOptions(grid.dims());
  bisect_request.options.bisection.leaf_size = 8;
  auto direct_engine = MakeOrderingEngine("spectral");
  auto bisect_engine = MakeOrderingEngine("bisection");
  SPECTRAL_CHECK(direct_engine.ok());
  SPECTRAL_CHECK(bisect_engine.ok());

  WallTimer direct_timer;
  auto direct = (*direct_engine)->Order(direct_request);
  const double direct_seconds = direct_timer.ElapsedSeconds();
  SPECTRAL_CHECK(direct.ok());

  WallTimer bisect_timer;
  auto bisect = (*bisect_engine)->Order(bisect_request);
  const double bisect_seconds = bisect_timer.ElapsedSeconds();
  SPECTRAL_CHECK(bisect.ok());

  const auto shapes = ShapesForVolume(grid, 0.04);
  const auto direct_stats =
      EvaluateRangeQueryShapes(grid, direct->order, shapes);
  const auto bisect_stats =
      EvaluateRangeQueryShapes(grid, bisect->order, shapes);

  table.AddRow({label, "direct-fiedler",
                FormatDouble(direct->order.SquaredArrangementCost(g), 0),
                FormatDouble(direct->order.LinearArrangementCost(g), 0),
                FormatInt(direct_stats.max_spread),
                FormatDouble(direct_stats.stddev_spread, 1), "1",
                FormatDouble(direct_seconds * 1e3, 1)});
  table.AddRow({label, "median-cut-bisect",
                FormatDouble(bisect->order.SquaredArrangementCost(g), 0),
                FormatDouble(bisect->order.LinearArrangementCost(g), 0),
                FormatInt(bisect_stats.max_spread),
                FormatDouble(bisect_stats.stddev_spread, 1),
                FormatInt(bisect->num_solves),
                FormatDouble(bisect_seconds * 1e3, 1)});
}

void Run() {
  std::cout << "Ablation: direct Fiedler order vs recursive median-cut "
               "spectral bisection (4% partial range queries; costs are the "
               "rank-space arrangement objectives)\n\n";
  TablePrinter table;
  table.SetHeader({"grid", "variant", "sq_cost", "lin_cost", "max_spread",
                   "stddev_spread", "solves", "ms"});
  RunGrid(GridSpec({16, 16}), "16x16", table);
  RunGrid(GridSpec({32, 32}), "32x32", table);
  RunGrid(GridSpec::Uniform(3, 8), "8^3", table);
  EmitTable("ablation_bisection", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
