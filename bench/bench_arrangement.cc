// Experiment X10 — the paper's Theorem-1 objective, measured directly: the
// arrangement costs (squared / linear / bandwidth) of every mapping,
// together with the Juvan-Mohar spectral lower bound. Shows how close each
// integer permutation gets to the continuous optimum lambda2 certifies.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "graph/grid_graph.h"
#include "query/arrangement.h"
#include "util/check.h"
#include "util/string_util.h"

namespace spectral {
namespace bench {
namespace {

void RunGrid(const GridSpec& grid, const std::string& label,
             TablePrinter& table) {
  const PointSet points = PointSet::FullGrid(grid);
  const Graph g = BuildGridGraph(grid);

  BuildOrdersOptions build;
  build.include_extras = true;
  build.spectral = DefaultSpectralOptions(grid.dims());
  const auto orders = BuildOrders(points, build);

  OrderingRequest request = OrderingRequest::ForPoints(points);
  request.options.spectral = DefaultSpectralOptions(grid.dims());
  auto engine = MakeOrderingEngine("spectral");
  SPECTRAL_CHECK(engine.ok());
  auto spectral_result = (*engine)->Order(request);
  SPECTRAL_CHECK(spectral_result.ok());
  const double bound = SquaredArrangementLowerBound(spectral_result->lambda2,
                                                    grid.NumCells());
  table.AddRow({label, "(lower bound)", FormatDouble(bound, 0), "-", "-"});
  for (const auto& named : orders) {
    const auto m = ComputeArrangementMetrics(g, named.order);
    table.AddRow({label, named.name, FormatDouble(m.squared, 0),
                  FormatDouble(m.linear, 0), FormatInt(m.bandwidth)});
  }
}

void Run() {
  std::cout << "Arrangement objectives (Theorem 1): squared / linear / "
               "bandwidth cost of each mapping, with the spectral lower "
               "bound lambda2 * n(n^2-1)/12\n\n";
  TablePrinter table;
  table.SetHeader({"grid", "mapping", "sq_cost", "lin_cost", "bandwidth"});
  RunGrid(GridSpec({16, 16}), "16x16", table);
  RunGrid(GridSpec::Uniform(3, 6), "6^3", table);
  EmitTable("arrangement", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
