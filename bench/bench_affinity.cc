// Experiment E8 — paper section 4 (extensibility: access-pattern affinity).
//
// Scenario: "whenever point p is accessed, point q is very likely accessed
// soon afterwards". We generate a correlated access trace, derive affinity
// edges from observed co-accesses, re-map with Spectral LPM, and measure
// (a) the mean 1-d distance between hot partners and (b) the LRU buffer
// pool hit rate when replaying the trace over the mapped pages.

#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "storage/buffer_pool.h"
#include "storage/page_map.h"
#include "util/string_util.h"
#include "workload/trace.h"

namespace spectral {
namespace bench {
namespace {

double MeanHotPairRankGap(const CorrelatedTrace& trace,
                          const LinearOrder& order) {
  double total = 0.0;
  for (const auto& [p, q] : trace.hot_pairs) {
    total += static_cast<double>(std::llabs(order.RankOf(p) - order.RankOf(q)));
  }
  return total / static_cast<double>(trace.hot_pairs.size());
}

double ReplayHitRate(const CorrelatedTrace& trace, const LinearOrder& order,
                     int64_t page_size, int64_t pool_pages) {
  const PageMap pages(page_size);
  LruBufferPool pool(pool_pages);
  for (int64_t point : trace.accesses) {
    pool.Access(pages.PageOfRank(order.RankOf(point)));
  }
  return pool.HitRate();
}

void Run() {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);

  CorrelatedTraceOptions trace_options;
  trace_options.length = 50000;
  trace_options.num_hot_pairs = 12;
  trace_options.follow_probability = 0.9;
  trace_options.hot_fraction = 0.75;
  const CorrelatedTrace trace =
      MakeCorrelatedTrace(points.size(), trace_options);

  std::cout << "Section 4: affinity-edge extensibility - hot pairs pulled "
               "together in the 1-d order (8x8 grid, "
            << trace_options.num_hot_pairs << " hot pairs, trace length "
            << trace_options.length << ")\n\n";

  // Count co-accesses (q immediately after p) and turn them into affinity
  // edges weighted by observed correlation strength.
  std::map<std::pair<int64_t, int64_t>, int64_t> co_access;
  for (size_t i = 0; i + 1 < trace.accesses.size(); ++i) {
    int64_t a = trace.accesses[i];
    int64_t b = trace.accesses[i + 1];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    co_access[{a, b}] += 1;
  }
  const double mean_count =
      static_cast<double>(trace.accesses.size()) /
      static_cast<double>(points.size() * points.size());
  std::vector<GraphEdge> affinity;
  for (const auto& [pair, count] : co_access) {
    // Keep only strong correlations (way above the uniform expectation).
    if (static_cast<double>(count) < 50.0 * (mean_count + 1.0)) continue;
    affinity.push_back(
        {pair.first, pair.second,
         static_cast<double>(count) * 64.0 /
             static_cast<double>(trace_options.length)});
  }
  const int64_t edges_added = static_cast<int64_t>(affinity.size());

  // Three heterogeneous requests, one batch: the plain spectral map, the
  // affinity-tuned map (the section-4 input kind), and the Hilbert baseline.
  OrderingRequest plain_request = OrderingRequest::ForPoints(points);
  plain_request.options.spectral = DefaultSpectralOptions(2);
  OrderingRequest tuned_request =
      OrderingRequest::ForPointsWithAffinity(points, std::move(affinity));
  tuned_request.options.spectral = DefaultSpectralOptions(2);
  const OrderingRequest hilbert_request =
      OrderingRequest::ForPoints(points, "hilbert");

  MappingService service;
  const std::vector<OrderingRequest> batch = {plain_request, tuned_request,
                                              hilbert_request};
  auto results = service.OrderBatch(batch);
  auto& plain_result = results[0];
  auto& tuned_result = results[1];
  auto& hilbert_result = results[2];
  SPECTRAL_CHECK(plain_result.ok());
  SPECTRAL_CHECK(tuned_result.ok());
  SPECTRAL_CHECK(hilbert_result.ok());
  const LinearOrder& hilbert = hilbert_result->order;

  std::cout << "affinity edges derived from the trace: " << edges_added
            << "\n\n";

  const int64_t kPageSize = 8;
  const int64_t kPoolPages = 2;

  TablePrinter table;
  table.SetHeader({"mapping", "mean_hot_pair_rank_gap", "lru_hit_rate"});
  table.AddRow(
      {"Hilbert", FormatDouble(MeanHotPairRankGap(trace, hilbert), 2),
       FormatDouble(ReplayHitRate(trace, hilbert, kPageSize, kPoolPages), 4)});
  table.AddRow({"Spectral (plain)",
                FormatDouble(MeanHotPairRankGap(trace, plain_result->order), 2),
                FormatDouble(ReplayHitRate(trace, plain_result->order,
                                           kPageSize, kPoolPages),
                             4)});
  table.AddRow({"Spectral (affinity)",
                FormatDouble(MeanHotPairRankGap(trace, tuned_result->order), 2),
                FormatDouble(ReplayHitRate(trace, tuned_result->order,
                                           kPageSize, kPoolPages),
                             4)});
  EmitTable("affinity", table);
}

}  // namespace
}  // namespace bench
}  // namespace spectral

int main() {
  spectral::bench::Run();
  return 0;
}
