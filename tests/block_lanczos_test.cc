// Block Lanczos solver tests: multi-pair extraction against diagonal
// operators and closed-form Laplacian spectra, deflation, Krylov
// exhaustion, Chebyshev on/off equivalence, and warm-start behaviour
// (including deliberately garbage starts).

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "eigen/block_lanczos.h"
#include "eigen/fiedler.h"
#include "eigen/operator.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "linalg/sparse_matrix.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace spectral {
namespace {

constexpr double kPi = std::numbers::pi;

SparseMatrix DiagonalMatrix(const Vector& d) {
  std::vector<Triplet> t;
  for (size_t i = 0; i < d.size(); ++i) {
    t.push_back({static_cast<int64_t>(i), static_cast<int64_t>(i), d[i]});
  }
  return SparseMatrix::FromTriplets(static_cast<int64_t>(d.size()),
                                    static_cast<int64_t>(d.size()), t);
}

SparseMatrix PathLaplacian(int n) {
  return BuildLaplacian(BuildGridGraph(GridSpec({static_cast<Coord>(n)})));
}

double PathLambda(int n, int k) { return 2.0 - 2.0 * std::cos(k * kPi / n); }

TEST(BlockLanczos, TopPairsOfDiagonal) {
  const SparseMatrix m = DiagonalMatrix({1.0, 9.0, 3.0, -2.0, 7.0, 0.5});
  const SparseOperator op(&m);
  BlockLanczosOptions options;
  options.num_pairs = 3;
  auto result = LargestEigenpairsBlock(op, {}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  ASSERT_EQ(result->eigenvalues.size(), 3u);
  EXPECT_NEAR(result->eigenvalues[0], 9.0, 1e-8);
  EXPECT_NEAR(result->eigenvalues[1], 7.0, 1e-8);
  EXPECT_NEAR(result->eigenvalues[2], 3.0, 1e-8);
  EXPECT_NEAR(std::fabs(result->eigenvectors[0][1]), 1.0, 1e-6);
  EXPECT_NEAR(std::fabs(result->eigenvectors[1][4]), 1.0, 1e-6);
}

TEST(BlockLanczos, EigenvectorsAreOrthonormal) {
  const SparseMatrix m = DiagonalMatrix({5.0, 4.0, 3.0, 2.0, 1.0});
  const SparseOperator op(&m);
  BlockLanczosOptions options;
  options.num_pairs = 3;
  auto result = LargestEigenpairsBlock(op, {}, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->eigenvectors.size(); ++i) {
    for (size_t j = 0; j < result->eigenvectors.size(); ++j) {
      const double expected = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(Dot(result->eigenvectors[i], result->eigenvectors[j]),
                  expected, 1e-8);
    }
  }
}

TEST(BlockLanczos, DeflationExcludesDirections) {
  const SparseMatrix m = DiagonalMatrix({1.0, 9.0, 3.0, -2.0});
  const SparseOperator op(&m);
  std::vector<Vector> deflate = {{0.0, 1.0, 0.0, 0.0}};
  BlockLanczosOptions options;
  options.num_pairs = 2;
  auto result = LargestEigenpairsBlock(op, deflate, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->eigenvalues[0], 3.0, 1e-8);
  EXPECT_NEAR(result->eigenvalues[1], 1.0, 1e-8);
  for (const Vector& v : result->eigenvectors) {
    EXPECT_NEAR(v[1], 0.0, 1e-8);
  }
}

TEST(BlockLanczos, FullDeflationFails) {
  const SparseMatrix m = DiagonalMatrix({1.0, 2.0});
  const SparseOperator op(&m);
  std::vector<Vector> deflate = {{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_FALSE(LargestEigenpairsBlock(op, deflate).ok());
}

TEST(BlockLanczos, PathLaplacianSmallestTriple) {
  // Shift-negate maps the smallest Laplacian eigenvalues to the top; with
  // ones deflated the block returns lambda2..lambda4 of the n-path.
  const int n = 60;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const double shift = lap.GershgorinBound() + 1e-9;
  const ShiftNegateOperator op(&inner, shift);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};
  BlockLanczosOptions options;
  options.num_pairs = 3;
  auto result = LargestEigenpairsBlock(op, deflate, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(shift - result->eigenvalues[static_cast<size_t>(k)],
                PathLambda(n, k + 1), 1e-7)
        << "k=" << k;
  }
}

TEST(BlockLanczos, DeflatedKernelDoesNotLeakBack) {
  // The deflated ones vector is the *largest* eigenvalue of shift*I - L;
  // a solver that lets normalization amplify projection rounding will
  // re-discover it (theta == shift <=> lambda == 0). Tight tolerance plus
  // many restarts exercise exactly that failure mode.
  const int n = 80;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const double shift = lap.GershgorinBound() * 1.0001 + 1e-12;
  const ShiftNegateOperator op(&inner, shift);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};
  BlockLanczosOptions options;
  options.num_pairs = 3;
  options.tol = 1e-12;
  auto result = LargestEigenpairsBlock(op, deflate, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(shift - result->eigenvalues[0], PathLambda(n, 1), 1e-8);
}

TEST(BlockLanczos, KrylovExhaustionReturnsExactPairs) {
  // Dimension 4 with one deflated direction: the reachable space has rank
  // 3, the basis exhausts immediately, and the Ritz pairs are exact.
  const SparseMatrix m = DiagonalMatrix({4.0, 3.0, 2.0, 1.0});
  const SparseOperator op(&m);
  std::vector<Vector> deflate = {{1.0, 0.0, 0.0, 0.0}};
  BlockLanczosOptions options;
  options.num_pairs = 3;
  auto result = LargestEigenpairsBlock(op, deflate, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  ASSERT_EQ(result->eigenvalues.size(), 3u);
  EXPECT_NEAR(result->eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(result->eigenvalues[1], 2.0, 1e-9);
  EXPECT_NEAR(result->eigenvalues[2], 1.0, 1e-9);
}

TEST(BlockLanczos, ChebyshevOffMatchesOn) {
  const int n = 96;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const double shift = lap.GershgorinBound() * 1.0001 + 1e-12;
  const ShiftNegateOperator op(&inner, shift);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};
  BlockLanczosOptions with_filter;
  with_filter.num_pairs = 2;
  BlockLanczosOptions without_filter = with_filter;
  without_filter.cheb_degree_max = 0;
  auto a = LargestEigenpairsBlock(op, deflate, with_filter);
  auto b = LargestEigenpairsBlock(op, deflate, without_filter);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->converged);
  EXPECT_TRUE(b->converged);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(a->eigenvalues[k], b->eigenvalues[k], 1e-8);
    EXPECT_NEAR(std::fabs(Dot(a->eigenvectors[k], b->eigenvectors[k])), 1.0,
                1e-5);
  }
}

TEST(BlockLanczos, ExactWarmStartConvergesFast) {
  const SparseMatrix m = DiagonalMatrix({6.0, 5.0, 4.0, 3.0, 2.0, 1.0});
  const SparseOperator op(&m);
  BlockLanczosOptions options;
  options.num_pairs = 2;
  options.start = {{1.0, 0.0, 0.0, 0.0, 0.0, 0.0},
                   {0.0, 1.0, 0.0, 0.0, 0.0, 0.0}};
  auto result = LargestEigenpairsBlock(op, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->restarts, 1);
  EXPECT_NEAR(result->eigenvalues[0], 6.0, 1e-9);
  EXPECT_NEAR(result->eigenvalues[1], 5.0, 1e-9);
}

TEST(BlockLanczos, GarbageWarmStartStillConverges) {
  // A start block that is useless (orthogonal to the wanted eigenvectors,
  // wrong width, even a zero-ish column) must degrade to the random-start
  // path, not sink the solve.
  const int n = 50;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const double shift = lap.GershgorinBound() * 1.0001 + 1e-12;
  const ShiftNegateOperator op(&inner, shift);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};
  BlockLanczosOptions options;
  options.num_pairs = 2;
  // Garbage: the (deflated!) ones direction and an alternating vector far
  // from the smooth Fiedler modes.
  options.start.assign(2, Vector(static_cast<size_t>(n), 1.0));
  for (int i = 0; i < n; ++i) {
    options.start[1][static_cast<size_t>(i)] = (i % 2 == 0) ? 1.0 : -1.0;
  }
  auto result = LargestEigenpairsBlock(op, deflate, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(shift - result->eigenvalues[0], PathLambda(n, 1), 1e-7);
  EXPECT_NEAR(shift - result->eigenvalues[1], PathLambda(n, 2), 1e-7);
}

TEST(BlockLanczos, DeterministicAcrossRuns) {
  const int n = 40;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const ShiftNegateOperator op(&inner, lap.GershgorinBound() + 1e-9);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};
  BlockLanczosOptions options;
  options.num_pairs = 3;
  auto a = LargestEigenpairsBlock(op, deflate, options);
  auto b = LargestEigenpairsBlock(op, deflate, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->matvecs, b->matvecs);
  for (size_t k = 0; k < a->eigenvectors.size(); ++k) {
    for (size_t i = 0; i < a->eigenvectors[k].size(); ++i) {
      EXPECT_DOUBLE_EQ(a->eigenvectors[k][i], b->eigenvectors[k][i]);
    }
  }
}

// The solver's byte-identity contract across parallelism levels: every
// kernel (fused SpMM, panel reorthogonalization, Rayleigh-Ritz Gram fill)
// partitions only across independent output elements, so eigenpairs and
// all work counters must match EXACTLY — not approximately — for any pool
// size. 48x48 comfortably clears SparseOperator's min_parallel_rows gate
// (2048), so the pooled row-partitioned SpMM really runs.
TEST(BlockLanczos, ByteIdenticalAcrossPoolSizes) {
  const SparseMatrix lap =
      BuildLaplacian(BuildGridGraph(GridSpec({48, 48})));
  FiedlerOptions options;
  options.method = FiedlerMethod::kBlockLanczos;

  auto serial = ComputeFiedler(lap, options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_GT(serial->matvecs, 0);
  EXPECT_GT(serial->spmm_calls, 0);
  EXPECT_GT(serial->reorth_panels, 0);

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    FiedlerOptions pooled_options = options;
    pooled_options.matvec_pool = &pool;
    auto pooled = ComputeFiedler(lap, pooled_options);
    ASSERT_TRUE(pooled.ok()) << pooled.status();
    EXPECT_EQ(pooled->matvecs, serial->matvecs);
    EXPECT_EQ(pooled->spmm_calls, serial->spmm_calls);
    EXPECT_EQ(pooled->reorth_panels, serial->reorth_panels);
    EXPECT_EQ(pooled->restarts, serial->restarts);
    ASSERT_EQ(pooled->pairs.size(), serial->pairs.size());
    for (size_t k = 0; k < pooled->pairs.size(); ++k) {
      ASSERT_DOUBLE_EQ(pooled->pairs[k].eigenvalue,
                       serial->pairs[k].eigenvalue);
      const Vector& pv = pooled->pairs[k].eigenvector;
      const Vector& sv = serial->pairs[k].eigenvector;
      ASSERT_EQ(pv.size(), sv.size());
      for (size_t i = 0; i < pv.size(); ++i) {
        ASSERT_DOUBLE_EQ(pv[i], sv[i])
            << "threads=" << threads << " pair=" << k << " row=" << i;
      }
    }
  }
}

TEST(BlockOps, OrthonormalizeDropsDependentColumns) {
  VectorBlock block = {{1.0, 0.0, 0.0},
                       {2.0, 0.0, 0.0},  // parallel to the first: dropped
                       {0.0, 1.0, 0.0}};
  EXPECT_EQ(OrthonormalizeBlock(block), 2);
  ASSERT_EQ(block.size(), 2u);
  EXPECT_NEAR(std::fabs(block[0][0]), 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(block[1][1]), 1.0, 1e-12);
}

TEST(BlockOps, OrthogonalizeBlockMatchesScalar) {
  Rng rng(7);
  std::vector<Vector> basis;
  Vector b(16);
  for (double& x : b) x = rng.UniformDouble(-1.0, 1.0);
  Normalize(b);
  basis.push_back(b);
  VectorBlock block(3, Vector(16));
  for (Vector& col : block) {
    for (double& x : col) x = rng.UniformDouble(-1.0, 1.0);
  }
  VectorBlock scalar = block;
  OrthogonalizeBlockAgainst(basis, block);
  for (Vector& col : scalar) OrthogonalizeAgainst(basis, col);
  for (size_t k = 0; k < block.size(); ++k) {
    for (size_t i = 0; i < block[k].size(); ++i) {
      EXPECT_DOUBLE_EQ(block[k][i], scalar[k][i]);
    }
    EXPECT_NEAR(Dot(block[k], basis[0]), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace spectral
