// Multilevel Fiedler solver tests: coarsening invariants, eigenvalue
// agreement with the flat solver, and the end-to-end mapper path.

#include <cmath>
#include <numbers>
#include <set>

#include <gtest/gtest.h>

#include "core/multilevel.h"
#include "core/spectral_lpm.h"
#include "graph/coarsening.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "graph/traversal.h"

namespace spectral {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Coarsening, PathContractsByHalf) {
  const Graph g = BuildGridGraph(GridSpec({16}));
  const Coarsening c = CoarsenByHeavyEdgeMatching(g);
  EXPECT_EQ(c.num_coarse, 8);  // perfect matching on an even path
  EXPECT_TRUE(IsConnected(c.coarse));
}

TEST(Coarsening, MappingIsOntoAndContiguousIds) {
  const Graph g = BuildGridGraph(GridSpec({7, 5}));
  const Coarsening c = CoarsenByHeavyEdgeMatching(g);
  std::set<int64_t> ids(c.fine_to_coarse.begin(), c.fine_to_coarse.end());
  EXPECT_EQ(static_cast<int64_t>(ids.size()), c.num_coarse);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), c.num_coarse - 1);
  // Each coarse vertex contains 1 or 2 fine vertices.
  std::vector<int> sizes(static_cast<size_t>(c.num_coarse), 0);
  for (int64_t cv : c.fine_to_coarse) sizes[static_cast<size_t>(cv)] += 1;
  for (int s : sizes) {
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 2);
  }
}

TEST(Coarsening, HeavyEdgesContractFirst) {
  // Two vertices joined by a heavy edge must merge.
  std::vector<GraphEdge> edges = {
      {0, 1, 10.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}};
  const Graph g = Graph::FromEdges(4, edges);
  const Coarsening c = CoarsenByHeavyEdgeMatching(g);
  EXPECT_EQ(c.fine_to_coarse[0], c.fine_to_coarse[1]);
}

TEST(Coarsening, WeightsAreConserved) {
  // Cross-cluster fine weight equals total coarse weight.
  const Graph g = BuildGridGraph(GridSpec({6, 6}));
  const Coarsening c = CoarsenByHeavyEdgeMatching(g);
  double expected = 0.0;
  g.ForEachEdge([&](int64_t u, int64_t v, double w) {
    if (c.fine_to_coarse[static_cast<size_t>(u)] !=
        c.fine_to_coarse[static_cast<size_t>(v)]) {
      expected += w;
    }
  });
  EXPECT_NEAR(c.coarse.TotalEdgeWeight(), expected, 1e-12);
}

TEST(Coarsening, ProlongVector) {
  const Graph g = BuildGridGraph(GridSpec({4}));
  const Coarsening c = CoarsenByHeavyEdgeMatching(g);
  ASSERT_EQ(c.num_coarse, 2);
  const std::vector<double> coarse = {1.0, 2.0};
  const auto fine = ProlongVector(c, coarse);
  ASSERT_EQ(fine.size(), 4u);
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_EQ(fine[v], coarse[static_cast<size_t>(c.fine_to_coarse[v])]);
  }
}

TEST(Multilevel, MatchesFlatLambda2OnPath) {
  const int n = 400;
  const Graph g = BuildGridGraph(GridSpec({n}));
  auto result = ComputeFiedlerMultilevel(g);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->lambda2, 2.0 - 2.0 * std::cos(kPi / n), 1e-7);
  EXPECT_GT(result->matvecs, 0);
}

TEST(Multilevel, MatchesFlatLambda2OnGrid) {
  const Graph g = BuildGridGraph(GridSpec({24, 18}));
  auto flat = ComputeFiedler(BuildLaplacian(g));
  auto multi = ComputeFiedlerMultilevel(g);
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(multi.ok()) << multi.status();
  EXPECT_NEAR(multi->lambda2, flat->lambda2,
              1e-6 * std::max(1.0, flat->lambda2));
  // Same eigenvector up to sign (non-degenerate rectangle).
  EXPECT_NEAR(std::fabs(Dot(multi->fiedler, flat->fiedler)), 1.0, 1e-5);
}

TEST(Multilevel, ResidualIsSmall) {
  const Graph g = BuildGridGraph(GridSpec({20, 20}));
  const SparseMatrix lap = BuildLaplacian(g);
  auto result = ComputeFiedlerMultilevel(g);
  ASSERT_TRUE(result.ok());
  Vector lv(result->fiedler.size());
  lap.MatVec(result->fiedler, lv);
  Axpy(-result->lambda2, result->fiedler, lv);
  EXPECT_LT(Norm2(lv), 1e-6);
}

TEST(Multilevel, RejectsDisconnected) {
  const Graph g =
      Graph::FromEdges(4, std::vector<GraphEdge>{{0, 1, 1.0}, {2, 3, 1.0}});
  EXPECT_FALSE(ComputeFiedlerMultilevel(g).ok());
}

TEST(Multilevel, RejectsTiny) {
  EXPECT_FALSE(ComputeFiedlerMultilevel(Graph::FromEdges(1, {})).ok());
}

TEST(Multilevel, CoarsestSizeRespected) {
  const Graph g = BuildGridGraph(GridSpec({30, 30}));
  MultilevelOptions options;
  options.coarsen.coarsest_size = 500;  // almost no coarsening
  auto shallow = ComputeFiedlerMultilevel(g, options);
  ASSERT_TRUE(shallow.ok());
  options.coarsen.coarsest_size = 16;
  auto deep = ComputeFiedlerMultilevel(g, options);
  ASSERT_TRUE(deep.ok());
  EXPECT_NEAR(shallow->lambda2, deep->lambda2, 1e-6);
}

TEST(Multilevel, MapperIntegrationMatchesFlatOrder) {
  // Rectangle (non-degenerate): multilevel and flat must give the same
  // final order thanks to rank quantization.
  const PointSet points = PointSet::FullGrid(GridSpec({20, 11}));
  auto flat = SpectralMapper().Map(points);
  SpectralLpmOptions ml;
  ml.multilevel_threshold = 50;
  auto multi = SpectralMapper(ml).Map(points);
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(multi->method_used.rfind("multilevel", 0) == 0)
      << multi->method_used;
  // Orders agree up to a global reversal (the eigenvector sign of the
  // multilevel path is inherited from the coarsest solve).
  int64_t agree = 0;
  int64_t agree_reversed = 0;
  const int64_t n = points.size();
  for (int64_t i = 0; i < n; ++i) {
    if (multi->order.RankOf(i) == flat->order.RankOf(i)) ++agree;
    if (multi->order.RankOf(i) == n - 1 - flat->order.RankOf(i)) {
      ++agree_reversed;
    }
  }
  EXPECT_TRUE(agree == n || agree_reversed == n)
      << "agree=" << agree << " reversed=" << agree_reversed;
}

TEST(Multilevel, SquareGridOrderMatchesFlatSolve) {
  // Regression pin for the old bench_ordering_engines grid64x64 row, where
  // spectral-multilevel sat at spearman_vs_spectral == -0.706721 — byte-
  // equal to the sweep engine's value. Diagnosis: lambda2 of a square grid
  // is degenerate (the x- and y-modes tie), the old V-cycle tracked a
  // single eigenpair with no axis canonicalization, so it silently
  // returned an axis-aligned member of the eigenspace; sorting a pure
  // axis mode (constant along the other axis, ties broken by index) IS the
  // sweep order up to orientation — the V-cycle degenerated to a sweep.
  // The block warm-start cascade carries the whole num_pairs eigenspace to
  // the finest level and canonicalizes with the axes there, so the
  // multilevel path now produces the *identical* order to a flat (cold)
  // solve of the same grid.
  const PointSet points = PointSet::FullGrid(GridSpec({64, 64}));
  SpectralLpmOptions flat_options;
  flat_options.fiedler.num_pairs = 3;
  flat_options.warm_start_threshold = 0;  // cold flat block solve
  SpectralLpmOptions ml_options;
  ml_options.fiedler.num_pairs = 3;
  ml_options.multilevel_threshold = 50;
  auto flat = SpectralMapper(flat_options).Map(points);
  auto multi = SpectralMapper(ml_options).Map(points);
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(flat->method_used, "block-lanczos");
  EXPECT_TRUE(multi->method_used.rfind("multilevel", 0) == 0)
      << multi->method_used;
  for (int64_t i = 0; i < points.size(); ++i) {
    ASSERT_EQ(multi->order.RankOf(i), flat->order.RankOf(i))
        << "multilevel order diverged from flat at point " << i;
  }
}

TEST(Multilevel, LargeGridSanity) {
  // 64x64 = 4096 vertices: multilevel converges and the eigenvalue matches
  // the closed form min(2 - 2cos(pi/64)) of the grid product spectrum.
  const Graph g = BuildGridGraph(GridSpec({64, 64}));
  auto result = ComputeFiedlerMultilevel(g);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->lambda2, 2.0 - 2.0 * std::cos(kPi / 64), 1e-6);
}

}  // namespace
}  // namespace spectral
