#include <vector>

#include <gtest/gtest.h>

#include "core/linear_order.h"
#include "graph/grid_graph.h"

namespace spectral {
namespace {

TEST(LinearOrder, FromRanksValidPermutation) {
  auto order = LinearOrder::FromRanks({2, 0, 1});
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->size(), 3);
  EXPECT_EQ(order->RankOf(0), 2);
  EXPECT_EQ(order->PointAtRank(2), 0);
  EXPECT_EQ(order->PointAtRank(0), 1);
}

TEST(LinearOrder, FromRanksRejectsNonPermutation) {
  EXPECT_FALSE(LinearOrder::FromRanks({0, 0, 1}).ok());
  EXPECT_FALSE(LinearOrder::FromRanks({0, 3, 1}).ok());
  EXPECT_FALSE(LinearOrder::FromRanks({-1, 0, 1}).ok());
}

TEST(LinearOrder, FromValuesSortsAscending) {
  const std::vector<double> values = {0.5, -1.0, 0.0};
  const LinearOrder order = LinearOrder::FromValues(values);
  EXPECT_EQ(order.RankOf(1), 0);  // -1.0 first
  EXPECT_EQ(order.RankOf(2), 1);
  EXPECT_EQ(order.RankOf(0), 2);
}

TEST(LinearOrder, FromValuesTieBreaksByIndex) {
  const std::vector<double> values = {1.0, 1.0, 0.0};
  const LinearOrder order = LinearOrder::FromValues(values);
  EXPECT_EQ(order.RankOf(2), 0);
  EXPECT_EQ(order.RankOf(0), 1);  // index 0 before index 1 on ties
  EXPECT_EQ(order.RankOf(1), 2);
}

TEST(LinearOrder, FromKeys) {
  const std::vector<uint64_t> keys = {42, 7, 99};
  const LinearOrder order = LinearOrder::FromKeys(keys);
  EXPECT_EQ(order.RankOf(1), 0);
  EXPECT_EQ(order.RankOf(0), 1);
  EXPECT_EQ(order.RankOf(2), 2);
}

TEST(LinearOrder, IdentityAndInverseConsistency) {
  const LinearOrder order = LinearOrder::Identity(5);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(order.RankOf(i), i);
    EXPECT_EQ(order.PointAtRank(i), i);
  }
}

TEST(LinearOrder, ReversedFlipsRanks) {
  auto order = LinearOrder::FromRanks({2, 0, 1});
  ASSERT_TRUE(order.ok());
  const LinearOrder rev = order->Reversed();
  EXPECT_EQ(rev.RankOf(0), 0);
  EXPECT_EQ(rev.RankOf(1), 2);
  EXPECT_EQ(rev.RankOf(2), 1);
}

TEST(LinearOrder, ArrangementCostsOnPath) {
  // Path 0-1-2-3 with identity order: squared cost = 3, linear cost = 3.
  const Graph g = BuildGridGraph(GridSpec({4}));
  const LinearOrder identity = LinearOrder::Identity(4);
  EXPECT_DOUBLE_EQ(identity.SquaredArrangementCost(g), 3.0);
  EXPECT_DOUBLE_EQ(identity.LinearArrangementCost(g), 3.0);

  // Order (0,2,1,3): edges 0-1 span 2, 1-2 span 1, 2-3 span 2.
  auto shuffled = LinearOrder::FromRanks({0, 2, 1, 3});
  ASSERT_TRUE(shuffled.ok());
  EXPECT_DOUBLE_EQ(shuffled->SquaredArrangementCost(g), 4.0 + 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(shuffled->LinearArrangementCost(g), 5.0);
}

TEST(LinearOrder, ReversalPreservesCosts) {
  const Graph g = BuildGridGraph(GridSpec({3, 3}));
  auto order = LinearOrder::FromRanks({4, 2, 8, 0, 6, 1, 7, 3, 5});
  ASSERT_TRUE(order.ok());
  const LinearOrder rev = order->Reversed();
  EXPECT_DOUBLE_EQ(order->SquaredArrangementCost(g),
                   rev.SquaredArrangementCost(g));
  EXPECT_DOUBLE_EQ(order->LinearArrangementCost(g),
                   rev.LinearArrangementCost(g));
}

TEST(LinearOrder, ToGridString) {
  const PointSet points = PointSet::FullGrid(GridSpec({2, 2}));
  const LinearOrder order = LinearOrder::Identity(4);
  EXPECT_EQ(order.ToGridString(points), "0 1\n2 3\n");
}

TEST(LinearOrder, ToGridStringWithHoles) {
  PointSet points(2);
  points.Add(std::vector<Coord>{0, 0});
  points.Add(std::vector<Coord>{1, 1});
  const LinearOrder order = LinearOrder::Identity(2);
  EXPECT_EQ(order.ToGridString(points), "0 .\n. 1\n");
}

}  // namespace
}  // namespace spectral
