// End-to-end query-path tests: layout round trips, index correctness
// against brute force, buffer-pool counter determinism, and the paper's
// headline claim pinned as a test — spectral touches fewer data pages per
// range query than Hilbert on a 64x64 grid.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "core/ordering_request.h"
#include "query/executor.h"
#include "space/point_set.h"
#include "storage/layout.h"
#include "storage/page_map.h"
#include "util/random.h"
#include "workload/generators.h"

namespace spectral {
namespace {

std::vector<int64_t> BruteForceRange(const PointSet& points,
                                     const std::vector<Coord>& lo,
                                     const std::vector<Coord>& hi) {
  std::vector<int64_t> matches;
  for (int64_t i = 0; i < points.size(); ++i) {
    bool inside = true;
    for (int axis = 0; axis < points.dims(); ++axis) {
      const Coord c = points.At(i, axis);
      if (c < lo[static_cast<size_t>(axis)] ||
          c > hi[static_cast<size_t>(axis)]) {
        inside = false;
        break;
      }
    }
    if (inside) matches.push_back(i);
  }
  return matches;
}

TEST(QueryIo, LayoutPageMapRoundTrip) {
  Rng rng(0x10ull);
  const GridSpec grid({32, 32});
  const PointSet points = SampleUniformPoints(grid, 300, rng);
  auto order = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(order.ok());
  const int64_t page_size = 7;  // deliberately not a divisor of 300
  const StorageLayout layout(*order, page_size);
  const PageMap pages(page_size);

  EXPECT_EQ(layout.num_pages(), pages.NumPages(points.size()));
  for (int64_t i = 0; i < points.size(); ++i) {
    const int64_t rank = layout.RankOfPoint(i);
    EXPECT_EQ(layout.PointOfRank(rank), i);
    EXPECT_EQ(layout.PageOfPoint(i), pages.PageOfRank(rank));
    EXPECT_EQ(layout.PageOfRank(rank), rank / page_size);
  }
  // Every record appears on exactly one page, in rank order.
  int64_t seen = 0;
  for (int64_t p = 0; p < layout.num_pages(); ++p) {
    for (const int64_t point : layout.PointsOnPage(p)) {
      EXPECT_EQ(layout.RankOfPoint(point), seen);
      ++seen;
    }
  }
  EXPECT_EQ(seen, points.size());
}

TEST(QueryIo, IndexesMatchBruteForceOnSparsePoints) {
  Rng rng(0x11ull);
  const GridSpec grid({48, 48});
  const PointSet points = SampleGaussianClusters(grid, 4, 400, 0.08, rng);
  auto shared = std::make_shared<PointSet>(points);
  auto path = BuildQueryPath(OrderingRequest::ForPoints(shared, "hilbert"));
  ASSERT_TRUE(path.ok());
  const QueryExecutor executor = path->MakeExecutor(nullptr);

  Rng qrng(0x12ull);
  for (int q = 0; q < 25; ++q) {
    std::vector<Coord> lo(2), hi(2);
    for (int axis = 0; axis < 2; ++axis) {
      const Coord a = static_cast<Coord>(qrng.UniformInt(0, 47));
      const Coord b = static_cast<Coord>(qrng.UniformInt(0, 47));
      lo[static_cast<size_t>(axis)] = std::min(a, b);
      hi[static_cast<size_t>(axis)] = std::max(a, b);
    }
    const auto expected = BruteForceRange(points, lo, hi);
    const auto via_btree = executor.RangeViaBTree(lo, hi);
    const auto via_rtree = executor.RangeViaRTree(lo, hi);
    EXPECT_EQ(via_btree.matches, static_cast<int64_t>(expected.size()));
    EXPECT_EQ(via_rtree.matches, static_cast<int64_t>(expected.size()));
    EXPECT_GE(via_btree.records_scanned, via_btree.matches);
    EXPECT_GE(via_rtree.records_scanned, via_rtree.matches);
  }
}

TEST(QueryIo, KnnWindowMatchesBruteForceOverTheWindow) {
  Rng rng(0x13ull);
  const GridSpec grid({32, 32});
  const PointSet points = SampleUniformPoints(grid, 256, rng);
  auto shared = std::make_shared<PointSet>(points);
  auto path = BuildQueryPath(OrderingRequest::ForPoints(shared, "hilbert"));
  ASSERT_TRUE(path.ok());
  const QueryExecutor executor = path->MakeExecutor(nullptr);

  const int k = 5;
  const int64_t window = 20;
  for (int64_t query : {int64_t{0}, int64_t{57}, int64_t{128}, int64_t{255}}) {
    std::vector<int64_t> got;
    const auto stats = executor.KnnViaWindow(query, k, window, &got);
    ASSERT_EQ(stats.matches, static_cast<int64_t>(got.size()));

    // Brute-force the same window in rank space.
    const int64_t rank = path->layout.RankOfPoint(query);
    std::vector<int64_t> candidates;
    for (int64_t r = std::max<int64_t>(0, rank - window);
         r <= std::min<int64_t>(points.size() - 1, rank + window); ++r) {
      if (r != rank) candidates.push_back(path->layout.PointOfRank(r));
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](int64_t a, int64_t b) {
                const int64_t da = points.Distance(query, a);
                const int64_t db = points.Distance(query, b);
                return da != db ? da < db : a < b;
              });
    candidates.resize(got.size());
    EXPECT_EQ(got, candidates);
  }
}

TEST(QueryIo, PoolCountersAreDeterministicAcrossRuns) {
  const GridSpec grid({16, 16});
  auto shared = std::make_shared<PointSet>(PointSet::FullGrid(grid));
  QueryPathOptions options;
  options.page_size = 8;
  auto path = BuildQueryPath(OrderingRequest::ForPoints(shared, "zorder"),
                             /*service=*/nullptr, options);
  ASSERT_TRUE(path.ok());

  // The same query stream against a fresh pool must reproduce every
  // counter byte-for-byte.
  auto run = [&]() {
    LruBufferPool pool(4);
    const QueryExecutor executor = path->MakeExecutor(&pool);
    std::vector<QueryResultStats> stats;
    for (Coord y = 0; y < 16; y += 4) {
      for (Coord x = 0; x < 16; x += 4) {
        stats.push_back(
            executor.RangeViaBTree(std::vector<Coord>{x, y},
                                   std::vector<Coord>{static_cast<Coord>(x + 3),
                                                      static_cast<Coord>(y + 3)}));
      }
    }
    return stats;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].matches, second[i].matches);
    EXPECT_EQ(first[i].records_scanned, second[i].records_scanned);
    EXPECT_EQ(first[i].index_nodes_read, second[i].index_nodes_read);
    EXPECT_EQ(first[i].pages_touched, second[i].pages_touched);
    EXPECT_EQ(first[i].page_io, second[i].page_io);
    EXPECT_EQ(first[i].page_hits, second[i].page_hits);
    EXPECT_EQ(first[i].page_runs, second[i].page_runs);
    EXPECT_DOUBLE_EQ(first[i].io_cost, second[i].io_cost);
  }
  // Total accounting: hits + misses == touches, and the small pool forced
  // at least one eviction-driven miss beyond the cold start.
  int64_t touched = 0, io = 0, hits = 0;
  for (const auto& s : first) {
    touched += s.pages_touched;
    io += s.page_io;
    hits += s.page_hits;
  }
  EXPECT_EQ(touched, io + hits);
  EXPECT_GT(io, 0);
}

TEST(QueryIo, SpectralBeatsHilbertOnWorstCasePagesOnGrid64) {
  // The paper's Figure 6 claim, pinned end-to-end. The claim is about the
  // worst case, not the mean: on aligned power-of-2 boxes Hilbert is
  // optimal, but a box sliding at an unaligned stride eventually straddles
  // a top-level curve split and its rank interval spans nearly the whole
  // file, while the spectral order's interval stays bounded by the box
  // height. So: over 8x8 boxes at stride 3 on a 64x64 grid, the spectral
  // B+-tree interval plan's worst query touches fewer data pages than
  // Hilbert's worst query.
  const GridSpec grid({64, 64});
  auto shared = std::make_shared<PointSet>(PointSet::FullGrid(grid));
  QueryPathOptions options;
  options.page_size = 32;

  auto max_pages = [&](const char* engine) {
    auto path = BuildQueryPath(OrderingRequest::ForPoints(shared, engine),
                               /*service=*/nullptr, options);
    EXPECT_TRUE(path.ok()) << engine;
    const QueryExecutor executor = path->MakeExecutor(nullptr);
    int64_t worst = 0;
    for (Coord y = 0; y + 8 <= 64; y += 3) {
      for (Coord x = 0; x + 8 <= 64; x += 3) {
        worst = std::max(
            worst,
            executor
                .RangeViaBTree(std::vector<Coord>{x, y},
                               std::vector<Coord>{static_cast<Coord>(x + 7),
                                                  static_cast<Coord>(y + 7)})
                .pages_touched);
      }
    }
    return worst;
  };

  const int64_t spectral_worst = max_pages("spectral");
  const int64_t hilbert_worst = max_pages("hilbert");
  EXPECT_LT(spectral_worst, hilbert_worst);
}

}  // namespace
}  // namespace spectral
