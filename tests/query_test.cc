#include <vector>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "query/knn.h"
#include "query/pair_metrics.h"
#include "query/range_query.h"
#include "space/point_set.h"

namespace spectral {
namespace {

TEST(PairMetrics, SweepOn1DPath) {
  // Identity order on a path: rank distance == Manhattan distance.
  const PointSet points = PointSet::FullGrid(GridSpec({10}));
  const LinearOrder order = LinearOrder::Identity(10);
  const std::vector<int64_t> distances = {1, 3, 5};
  const auto series = ComputePairDistanceSeries(points, order, distances);
  ASSERT_EQ(series.manhattan_distance.size(), 3u);
  for (size_t i = 0; i < distances.size(); ++i) {
    EXPECT_EQ(series.max_rank_distance[i], distances[static_cast<size_t>(i)]);
    EXPECT_EQ(series.mean_rank_distance[i],
              static_cast<double>(distances[static_cast<size_t>(i)]));
    EXPECT_EQ(series.pair_count[i], 10 - distances[static_cast<size_t>(i)]);
  }
}

TEST(PairMetrics, SweepOn2DGridWorstCase) {
  // Row-major on WxH: two vertically adjacent cells are H ranks apart.
  const GridSpec grid({4, 8});  // axis1 (fastest) has side 8
  const PointSet points = PointSet::FullGrid(grid);
  const LinearOrder order = LinearOrder::Identity(grid.NumCells());
  const std::vector<int64_t> distances = {1};
  const auto series = ComputePairDistanceSeries(points, order, distances);
  EXPECT_EQ(series.max_rank_distance[0], 8);  // vertical neighbor
  EXPECT_EQ(series.pair_count[0], 4 * 7 + 3 * 8);  // horizontal + vertical
}

TEST(PairMetrics, EmptyBucketForUnreachableDistance) {
  const PointSet points = PointSet::FullGrid(GridSpec({3}));
  const LinearOrder order = LinearOrder::Identity(3);
  const std::vector<int64_t> distances = {9};
  const auto series = ComputePairDistanceSeries(points, order, distances);
  EXPECT_EQ(series.pair_count[0], 0);
  EXPECT_EQ(series.max_rank_distance[0], 0);
}

TEST(PairMetrics, SamplingApproximatesExact) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto order = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(order.ok());
  const std::vector<int64_t> distances = {1, 2};
  const auto exact = ComputePairDistanceSeries(points, *order, distances);
  PairMetricsOptions options;
  options.sample_pairs = 200000;
  const auto sampled =
      ComputePairDistanceSeries(points, *order, distances, options);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_GT(sampled.pair_count[i], 0);
    // Sampled max cannot exceed the exact max; means should be close.
    EXPECT_LE(sampled.max_rank_distance[i], exact.max_rank_distance[i]);
    EXPECT_NEAR(sampled.mean_rank_distance[i], exact.mean_rank_distance[i],
                0.25 * exact.mean_rank_distance[i] + 1.0);
  }
}

TEST(AxisPairMetrics, SweepIsAnisotropic) {
  // Row-major 8x8: along the fastest axis rank distance = d; along the
  // slowest axis it's d * 8.
  const GridSpec grid({8, 8});
  PointSet points = PointSet::FullGrid(grid);
  points.BuildIndex();
  const LinearOrder order = LinearOrder::Identity(grid.NumCells());
  const std::vector<int64_t> distances = {1, 2, 3};
  const auto along_fast = ComputeAxisPairSeries(points, order, 1, distances);
  const auto along_slow = ComputeAxisPairSeries(points, order, 0, distances);
  for (size_t i = 0; i < distances.size(); ++i) {
    EXPECT_EQ(along_fast.max_rank_distance[i], distances[i]);
    EXPECT_EQ(along_slow.max_rank_distance[i], 8 * distances[i]);
  }
}

TEST(AxisPairMetrics, PairCounts) {
  const GridSpec grid({4, 4});
  PointSet points = PointSet::FullGrid(grid);
  points.BuildIndex();
  const LinearOrder order = LinearOrder::Identity(16);
  const std::vector<int64_t> distances = {2};
  const auto series = ComputeAxisPairSeries(points, order, 0, distances);
  EXPECT_EQ(series.pair_count[0], 2 * 4);  // (side - d) * other_side
}

TEST(RangeQueryShape, BalancedShapeHitsTarget) {
  const GridSpec grid = GridSpec::Uniform(4, 6);  // 1296 cells
  const RangeQueryShape s2 = BalancedShape(grid, 0.02);
  EXPECT_NEAR(static_cast<double>(s2.Volume()), 0.02 * 1296, 14.0);
  const RangeQueryShape s64 = BalancedShape(grid, 0.64);
  EXPECT_NEAR(static_cast<double>(s64.Volume()), 0.64 * 1296, 180.0);
  // Extents balanced: max - min <= 1 unless capped by the side.
  Coord lo = s2.extents[0], hi = s2.extents[0];
  for (Coord e : s2.extents) {
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(RangeQueryShape, FullVolumeIsWholeGrid) {
  const GridSpec grid({4, 4});
  const RangeQueryShape shape = BalancedShape(grid, 1.0);
  EXPECT_EQ(shape.Volume(), 16);
}

TEST(RangeQuery, SweepSpreadFormula) {
  // Row-major on an 8x8 grid, w x h window at origin rows r..r+w-1:
  // spread = (w - 1) * 8 + (h - 1).
  const GridSpec grid({8, 8});
  const LinearOrder order = LinearOrder::Identity(64);
  RangeQueryShape shape;
  shape.extents = {3, 2};
  RangeQueryOptions options;
  options.include_axis_permutations = false;
  const auto stats = EvaluateRangeQueries(grid, order, shape, options);
  EXPECT_EQ(stats.max_spread, 2 * 8 + 1);
  EXPECT_EQ(stats.mean_spread, 2 * 8 + 1);  // same for every placement
  EXPECT_EQ(stats.stddev_spread, 0.0);
  EXPECT_EQ(stats.num_queries, 6 * 7);
}

TEST(RangeQuery, PermutationsIncreaseQueryCount) {
  const GridSpec grid({6, 6});
  const LinearOrder order = LinearOrder::Identity(36);
  RangeQueryShape shape;
  shape.extents = {2, 3};
  RangeQueryOptions no_perm;
  no_perm.include_axis_permutations = false;
  const auto without = EvaluateRangeQueries(grid, order, shape, no_perm);
  const auto with = EvaluateRangeQueries(grid, order, shape);
  EXPECT_GT(with.num_queries, without.num_queries);
}

TEST(RangeQuery, ClusterCounting) {
  // Identity order, full-width rows: each w x 8 window on the 8x8 grid is
  // one contiguous rank run.
  const GridSpec grid({8, 8});
  const LinearOrder order = LinearOrder::Identity(64);
  RangeQueryShape shape;
  shape.extents = {2, 8};
  RangeQueryOptions options;
  options.include_axis_permutations = false;
  options.collect_clusters = true;
  const auto stats = EvaluateRangeQueries(grid, order, shape, options);
  EXPECT_EQ(stats.mean_clusters, 1.0);
  EXPECT_EQ(stats.max_clusters, 1);

  // A 2-wide column window touches 2 separate runs per row pair.
  shape.extents = {8, 2};
  const auto split = EvaluateRangeQueries(grid, order, shape, options);
  EXPECT_EQ(split.max_clusters, 8);
}

TEST(RangeQuery, SpreadLowerBound) {
  // Spread >= volume - 1 for any order (pigeonhole).
  const GridSpec grid({5, 5});
  const PointSet points = PointSet::FullGrid(grid);
  auto order = OrderByCurve(points, CurveKind::kSnake);
  ASSERT_TRUE(order.ok());
  RangeQueryShape shape;
  shape.extents = {3, 3};
  const auto stats = EvaluateRangeQueries(grid, *order, shape);
  EXPECT_GE(stats.max_spread, shape.Volume() - 1);
}

TEST(Knn, PerfectRecallWithFullWindow) {
  const GridSpec grid({6, 6});
  const PointSet points = PointSet::FullGrid(grid);
  const LinearOrder order = LinearOrder::Identity(36);
  KnnOptions options;
  options.k = 4;
  options.window = 36;  // window covers everything
  options.num_queries = 20;
  const auto stats = EvaluateKnnRecall(points, order, options);
  EXPECT_DOUBLE_EQ(stats.mean_recall, 1.0);
  EXPECT_NEAR(stats.mean_distance_ratio, 1.0, 1e-12);
}

TEST(Knn, LocalityOrderBeatsScrambledOrder) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto hilbert = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(hilbert.ok());
  // A deliberately scrambled order: multiply ranks by 37 mod 64.
  std::vector<int64_t> scrambled_ranks(64);
  for (int64_t i = 0; i < 64; ++i) scrambled_ranks[static_cast<size_t>(i)] = (i * 37) % 64;
  auto scrambled = LinearOrder::FromRanks(scrambled_ranks);
  ASSERT_TRUE(scrambled.ok());

  KnnOptions options;
  options.k = 5;
  options.window = 8;
  options.num_queries = 64;
  const auto good = EvaluateKnnRecall(points, *hilbert, options);
  const auto bad = EvaluateKnnRecall(points, *scrambled, options);
  EXPECT_GT(good.mean_recall, bad.mean_recall);
}

}  // namespace
}  // namespace spectral
