// Kernel-level exact-equality tests for linalg/packed_basis.h: every
// packed (strided) kernel must reproduce its unpacked vector_ops /
// block_ops twin bit for bit — same values, same panel counters, with and
// without a thread pool. These are the ground truth behind the solver's
// byte-identity contract; all comparisons are EXPECT_DOUBLE_EQ /
// EXPECT_EQ, never near-equality.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/block_ops.h"
#include "linalg/packed_basis.h"
#include "linalg/vector_ops.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace spectral {
namespace {

Vector RandomVector(int64_t n, Rng& rng) {
  Vector v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Gaussian();
  return v;
}

VectorBlock RandomBlock(int64_t n, int64_t cols, Rng& rng) {
  VectorBlock block;
  block.reserve(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) block.push_back(RandomVector(n, rng));
  return block;
}

// Packs `block` into columns [c0, c0 + block.size()) of `v`.
void PackInto(const VectorBlock& block, PackedBasis& v, int64_t c0) {
  for (size_t c = 0; c < block.size(); ++c) {
    v.CopyColumnIn(block[c], c0 + static_cast<int64_t>(c));
  }
}

void ExpectColumnEq(const PackedBasis& v, int64_t c, const Vector& expect) {
  ASSERT_EQ(v.rows(), static_cast<int64_t>(expect.size()));
  for (int64_t r = 0; r < v.rows(); ++r) {
    EXPECT_DOUBLE_EQ(v.at(r, c), expect[static_cast<size_t>(r)])
        << "col " << c << " row " << r;
  }
}

TEST(PackedBasis, CopyRoundTripAndColumnCopy) {
  Rng rng(11);
  const int64_t n = 37;
  PackedBasis v;
  v.Reset(n, 5);
  const Vector a = RandomVector(n, rng);
  const Vector b = RandomVector(n, rng);
  v.CopyColumnIn(a, 1);
  v.CopyColumnIn(b, 4);
  Vector out;
  v.CopyColumnOut(1, out);
  EXPECT_EQ(out, a);
  v.CopyColumn(4, 0);
  ExpectColumnEq(v, 0, b);
  ExpectColumnEq(v, 4, b);
  // Reset with the same geometry keeps contents.
  v.Reset(n, 5);
  ExpectColumnEq(v, 1, a);
}

TEST(PackedBasis, DotAxpyNormalizeMatchScalarKernels) {
  Rng rng(22);
  const int64_t n = 101;
  Vector a = RandomVector(n, rng);
  Vector b = RandomVector(n, rng);
  PackedBasis v;
  v.Reset(n, 3);
  v.CopyColumnIn(a, 0);
  v.CopyColumnIn(b, 2);

  EXPECT_DOUBLE_EQ(DotColumns(v, 0, v, 2), Dot(a, b));

  const double alpha = -0.37251;
  Axpy(alpha, a, b);
  AxpyColumn(alpha, v, 0, 2);
  ExpectColumnEq(v, 2, b);

  const double expect_norm = Normalize(b);
  EXPECT_DOUBLE_EQ(NormalizeColumn(v, 2), expect_norm);
  ExpectColumnEq(v, 2, b);
}

TEST(PackedBasis, NormalizeColumnTinySemantics) {
  PackedBasis v;
  v.Reset(4, 2);
  for (int64_t r = 0; r < 4; ++r) v.at(r, 1) = 1e-200;
  Vector twin(4, 1e-200);
  EXPECT_DOUBLE_EQ(NormalizeColumn(v, 1, /*tiny=*/1e-150),
                   Normalize(twin, 1e-150));
  // Below `tiny`: untouched, returns 0.
  ExpectColumnEq(v, 1, Vector(4, 1e-200));
}

TEST(PackedBasis, OrthogonalizeVectorAgainstColumnsMatchesMgs) {
  Rng rng(33);
  const int64_t n = 64;
  VectorBlock basis = RandomBlock(n, 3, rng);
  for (Vector& q : basis) Normalize(q);
  Vector x = RandomVector(n, rng);
  Vector x_packed = x;

  PackedBasis v;
  v.Reset(n, 3);
  PackInto(basis, v, 0);
  OrthogonalizeAgainst(basis, x);
  OrthogonalizeVectorAgainstColumns(v, 3, x_packed);
  for (int64_t r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(x_packed[static_cast<size_t>(r)],
                     x[static_cast<size_t>(r)]);
  }
}

// Panel counters and every element must match OrthogonalizeBlockAgainst,
// serial and pooled, across basis sizes that exercise partial panels.
TEST(PackedBasis, OrthogonalizeColumnsAgainstBlockMatchesUnpacked) {
  ThreadPool pool(4);
  for (int64_t basis_size : {1, 7, 8, 9, 17}) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      Rng rng(1000 + static_cast<uint64_t>(basis_size));
      VectorBlock basis = RandomBlock(400, basis_size, rng);
      for (Vector& q : basis) Normalize(q);
      VectorBlock block = RandomBlock(400, 5, rng);

      PackedBasis v;
      v.Reset(400, 8);
      PackInto(block, v, 2);

      int64_t unpacked_panels = 0;
      OrthogonalizeBlockAgainst(basis, block, p, &unpacked_panels);
      int64_t packed_panels = 0;
      int64_t flops = 0;
      OrthogonalizeColumnsAgainstBlock(basis, v, 2, 5, p, &packed_panels,
                                       &flops);
      EXPECT_EQ(packed_panels, unpacked_panels) << "basis=" << basis_size;
      EXPECT_GT(flops, 0);
      for (int64_t c = 0; c < 5; ++c) {
        ExpectColumnEq(v, 2 + c, block[static_cast<size_t>(c)]);
      }
    }
  }
}

TEST(PackedBasis, OrthogonalizeColumnsAgainstColumnsMatchesUnpacked) {
  ThreadPool pool(4);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    Rng rng(44);
    const int64_t n = 300;
    VectorBlock basis = RandomBlock(n, 10, rng);
    for (Vector& q : basis) Normalize(q);
    VectorBlock block = RandomBlock(n, 4, rng);

    PackedBasis v;
    v.Reset(n, 14);
    PackInto(basis, v, 0);
    PackInto(block, v, 10);

    int64_t unpacked_panels = 0;
    OrthogonalizeBlockAgainst(basis, block, p, &unpacked_panels);
    int64_t packed_panels = 0;
    OrthogonalizeColumnsAgainstColumns(v, 0, 10, 10, 4, p, &packed_panels,
                                       nullptr);
    EXPECT_EQ(packed_panels, unpacked_panels);
    for (int64_t c = 0; c < 4; ++c) {
      ExpectColumnEq(v, 10 + c, block[static_cast<size_t>(c)]);
    }
  }
}

TEST(PackedBasis, OrthonormalizeColumnsMatchesUnpackedIncludingDrops) {
  ThreadPool pool(4);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    Rng rng(55);
    const int64_t n = 256;
    // 11 columns with two exact duplicates: rank must drop to 9 and the
    // survivor set/compaction must match the unpacked kernel exactly.
    VectorBlock block = RandomBlock(n, 9, rng);
    block.insert(block.begin() + 3, block[1]);
    block.push_back(block[5]);
    ASSERT_EQ(block.size(), 11u);

    PackedBasis v;
    v.Reset(n, 11);
    PackInto(block, v, 0);

    VectorBlock twin = block;
    int64_t unpacked_panels = 0;
    const int64_t unpacked_rank =
        OrthonormalizeBlock(twin, 1e-10, p, &unpacked_panels);
    int64_t packed_panels = 0;
    const int64_t packed_rank =
        OrthonormalizeColumns(v, 0, 11, 1e-10, p, &packed_panels, nullptr);

    EXPECT_EQ(packed_rank, unpacked_rank);
    EXPECT_EQ(packed_rank, 9);
    EXPECT_EQ(packed_panels, unpacked_panels);
    for (int64_t c = 0; c < packed_rank; ++c) {
      ExpectColumnEq(v, c, twin[static_cast<size_t>(c)]);
    }
  }
}

TEST(PackedBasis, OrthonormalizeColumnsRespectsOffset) {
  Rng rng(66);
  const int64_t n = 128;
  VectorBlock block = RandomBlock(n, 6, rng);
  const Vector sentinel = RandomVector(n, rng);

  PackedBasis v;
  v.Reset(n, 8);
  v.CopyColumnIn(sentinel, 0);
  PackInto(block, v, 2);

  VectorBlock twin = block;
  const int64_t expect_rank = OrthonormalizeBlock(twin);
  const int64_t rank = OrthonormalizeColumns(v, 2, 6);
  EXPECT_EQ(rank, expect_rank);
  ExpectColumnEq(v, 0, sentinel);  // columns outside [b0, b0+count) untouched
  for (int64_t c = 0; c < rank; ++c) {
    ExpectColumnEq(v, 2 + c, twin[static_cast<size_t>(c)]);
  }
}

TEST(PackedBasis, ProjectedRowMultiDotMatchesScalarDotPairs) {
  Rng rng(77);
  const int64_t n = 222;
  for (int64_t m : {1, 2, 7, 8, 9, 13}) {
    VectorBlock vb = RandomBlock(n, m, rng);
    VectorBlock avb = RandomBlock(n, m, rng);
    PackedBasis v, av;
    v.Reset(n, m);
    av.Reset(n, m);
    PackInto(vb, v, 0);
    PackInto(avb, av, 0);
    for (int64_t i = 0; i < m; ++i) {
      std::vector<double> out(static_cast<size_t>(m - i), 0.0);
      ProjectedRowMultiDot(v, av, i, i, m - i, out.data());
      for (int64_t j = i; j < m; ++j) {
        const double expect = (Dot(vb[static_cast<size_t>(i)],
                                   avb[static_cast<size_t>(j)]) +
                               Dot(vb[static_cast<size_t>(j)],
                                   avb[static_cast<size_t>(i)])) /
                              2.0;
        EXPECT_DOUBLE_EQ(out[static_cast<size_t>(j - i)], expect)
            << "m=" << m << " i=" << i << " j=" << j;
      }
    }
  }
}

}  // namespace
}  // namespace spectral
