#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "graph/partition.h"
#include "graph/point_graph.h"
#include "graph/traversal.h"
#include "linalg/dense_matrix.h"
#include "space/point_set.h"

namespace spectral {
namespace {

TEST(Graph, FromEdgesBasic) {
  std::vector<GraphEdge> edges = {{0, 1, 1.0}, {1, 2, 2.0}};
  const Graph g = Graph::FromEdges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 3.0);
  EXPECT_DOUBLE_EQ(g.TotalEdgeWeight(), 3.0);
}

TEST(Graph, DuplicateEdgesMerge) {
  std::vector<GraphEdge> edges = {{0, 1, 1.0}, {1, 0, 2.5}};
  const Graph g = Graph::FromEdges(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 3.5);
}

TEST(Graph, NeighborsAreSorted) {
  std::vector<GraphEdge> edges = {{2, 0, 1.0}, {2, 3, 1.0}, {2, 1, 1.0}};
  const Graph g = Graph::FromEdges(4, edges);
  const auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 1);
  EXPECT_EQ(nbrs[2], 3);
}

TEST(Graph, ForEachEdgeVisitsOncePerEdge) {
  std::vector<GraphEdge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  const Graph g = Graph::FromEdges(3, edges);
  int count = 0;
  g.ForEachEdge([&](int64_t u, int64_t v, double) {
    EXPECT_LT(u, v);
    ++count;
  });
  EXPECT_EQ(count, 3);
}

TEST(Graph, IsolatedVertices) {
  const Graph g = Graph::FromEdges(5, std::vector<GraphEdge>{{1, 3, 1.0}});
  EXPECT_EQ(g.Degree(0), 0);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.MaxDegree(), 1);
}

TEST(GridGraph, PathGraph) {
  const Graph g = BuildGridGraph(GridSpec({5}));
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(2), 2);
}

TEST(GridGraph, TwoDimOrthogonalDegrees) {
  const Graph g = BuildGridGraph(GridSpec({3, 3}));
  EXPECT_EQ(g.num_vertices(), 9);
  EXPECT_EQ(g.num_edges(), 12);  // 2 * 3 * 2 grid edges
  EXPECT_EQ(g.Degree(0), 2);     // corner
  EXPECT_EQ(g.Degree(1), 3);     // edge cell
  EXPECT_EQ(g.Degree(4), 4);     // center
}

TEST(GridGraph, MooreDegrees) {
  GridGraphOptions options;
  options.connectivity = GridConnectivity::kMoore;
  const Graph g = BuildGridGraph(GridSpec({3, 3}), options);
  EXPECT_EQ(g.Degree(4), 8);  // center touches all
  EXPECT_EQ(g.Degree(0), 3);  // corner
  EXPECT_EQ(g.num_edges(), 20);
}

TEST(GridGraph, MooreDiagonalWeight) {
  GridGraphOptions options;
  options.connectivity = GridConnectivity::kMoore;
  options.diagonal_weight = 0.5;
  const Graph g = BuildGridGraph(GridSpec({2, 2}), options);
  // Each vertex: two orthogonal (1.0) + one diagonal (0.5).
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 2.5);
}

TEST(GridGraph, ThreeDimDegrees) {
  const Graph g = BuildGridGraph(GridSpec({3, 3, 3}));
  EXPECT_EQ(g.Degree(13), 6);  // center of 3x3x3
  EXPECT_EQ(g.Degree(0), 3);
}

TEST(PointGraph, MatchesGridGraphOnFullGrid) {
  const GridSpec grid({4, 3});
  const PointSet points = PointSet::FullGrid(grid);
  auto pg = BuildPointGraph(points);
  ASSERT_TRUE(pg.ok());
  const Graph gg = BuildGridGraph(grid);
  ASSERT_EQ(pg->num_vertices(), gg.num_vertices());
  ASSERT_EQ(pg->num_edges(), gg.num_edges());
  for (int64_t v = 0; v < gg.num_vertices(); ++v) {
    EXPECT_EQ(pg->Degree(v), gg.Degree(v));
  }
}

TEST(PointGraph, SparsePointsRadius1) {
  PointSet points(2);
  points.Add(std::vector<Coord>{0, 0});
  points.Add(std::vector<Coord>{0, 1});
  points.Add(std::vector<Coord>{5, 5});
  auto g = BuildPointGraph(points);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_EQ(g->Degree(2), 0);
}

TEST(PointGraph, Radius2Connects) {
  PointSet points(2);
  points.Add(std::vector<Coord>{0, 0});
  points.Add(std::vector<Coord>{0, 2});
  points.Add(std::vector<Coord>{1, 1});
  PointGraphOptions options;
  options.radius = 2;
  auto g = BuildPointGraph(points, options);
  ASSERT_TRUE(g.ok());
  // All three pairs are within Manhattan distance 2.
  EXPECT_EQ(g->num_edges(), 3);
}

TEST(PointGraph, InverseDistanceWeight) {
  PointSet points(1);
  points.Add(std::vector<Coord>{0});
  points.Add(std::vector<Coord>{2});
  PointGraphOptions options;
  options.radius = 2;
  options.kernel = WeightKernel::kInverseDistance;
  auto g = BuildPointGraph(points, options);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->WeightedDegree(0), 0.5);
}

TEST(PointGraph, RejectsDuplicates) {
  PointSet points(2);
  points.Add(std::vector<Coord>{1, 1});
  points.Add(std::vector<Coord>{1, 1});
  EXPECT_FALSE(BuildPointGraph(points).ok());
}

TEST(PointGraph, MooreConnectivity) {
  PointSet points(2);
  points.Add(std::vector<Coord>{0, 0});
  points.Add(std::vector<Coord>{1, 1});  // diagonal neighbor
  PointGraphOptions options;
  options.connectivity = GridConnectivity::kMoore;
  auto g = BuildPointGraph(points, options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  // Orthogonal-only misses the diagonal.
  auto g4 = BuildPointGraph(points);
  ASSERT_TRUE(g4.ok());
  EXPECT_EQ(g4->num_edges(), 0);
}

TEST(Laplacian, MatchesPaperFigure3Matrix) {
  // 3x3 grid, 4-connectivity: diagonal = degrees (2,3,2,3,4,3,2,3,2),
  // off-diagonal -1 at grid edges (the matrix printed in Figure 3c).
  const Graph g = BuildGridGraph(GridSpec({3, 3}));
  const DenseMatrix l = DenseMatrix::FromSparse(BuildLaplacian(g));
  const double expected_diag[9] = {2, 3, 2, 3, 4, 3, 2, 3, 2};
  for (int i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(l.At(i, i), expected_diag[i]) << i;
  }
  EXPECT_DOUBLE_EQ(l.At(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(l.At(0, 3), -1.0);
  EXPECT_DOUBLE_EQ(l.At(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(l.At(4, 1), -1.0);
  EXPECT_DOUBLE_EQ(l.At(4, 3), -1.0);
  EXPECT_DOUBLE_EQ(l.At(4, 5), -1.0);
  EXPECT_DOUBLE_EQ(l.At(4, 7), -1.0);
}

TEST(Laplacian, RowSumsZero) {
  const Graph g = BuildGridGraph(GridSpec({4, 5}));
  const SparseMatrix lap = BuildLaplacian(g);
  Vector ones(static_cast<size_t>(g.num_vertices()), 1.0);
  Vector out(ones.size());
  lap.MatVec(ones, out);
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Laplacian, DirichletEnergyMatchesQuadraticForm) {
  const Graph g = BuildGridGraph(GridSpec({3, 3}));
  const SparseMatrix lap = BuildLaplacian(g);
  Vector x(9);
  for (int i = 0; i < 9; ++i) x[static_cast<size_t>(i)] = 0.1 * i * i - 0.3 * i;
  Vector lx(9);
  lap.MatVec(x, lx);
  EXPECT_NEAR(DirichletEnergy(g, x), Dot(x, lx), 1e-10);
}

TEST(Traversal, ConnectedComponents) {
  std::vector<GraphEdge> edges = {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}};
  const Graph g = Graph::FromEdges(6, edges);
  int64_t count = 0;
  const auto comp = ConnectedComponents(g, &count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[2]);
}

TEST(Traversal, IsConnected) {
  EXPECT_TRUE(IsConnected(BuildGridGraph(GridSpec({3, 3}))));
  EXPECT_FALSE(
      IsConnected(Graph::FromEdges(3, std::vector<GraphEdge>{{0, 1, 1.0}})));
  EXPECT_TRUE(IsConnected(Graph::FromEdges(0, {})));
}

TEST(Traversal, BfsDistances) {
  const Graph g = BuildGridGraph(GridSpec({3, 3}));
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[4], 2);
  EXPECT_EQ(dist[8], 4);
}

TEST(Traversal, BfsUnreachable) {
  const Graph g = Graph::FromEdges(3, std::vector<GraphEdge>{{0, 1, 1.0}});
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[2], -1);
}

TEST(Partition, CoarsenToTargetReachesTargetAndComposesMaps) {
  // A 16-vertex path halves per matching round: 16 -> 8 -> 4.
  std::vector<GraphEdge> edges;
  for (int64_t v = 0; v + 1 < 16; ++v) edges.push_back({v, v + 1, 1.0});
  const Graph path = Graph::FromEdges(16, edges);

  const CoarseningChain chain = CoarsenToTarget(path, 4, 10);
  EXPECT_LE(chain.coarse.num_vertices(), 4);
  EXPECT_GE(chain.levels, 2);
  ASSERT_EQ(chain.fine_to_coarse.size(), 16u);
  // The composite map must be onto [0, coarse vertices) and every coarse
  // vertex must contain a contiguous run of the path (matchings only merge
  // neighbors).
  std::vector<int64_t> count(
      static_cast<size_t>(chain.coarse.num_vertices()), 0);
  for (int64_t c : chain.fine_to_coarse) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, chain.coarse.num_vertices());
    ++count[static_cast<size_t>(c)];
  }
  for (int64_t c : count) EXPECT_GT(c, 0);
}

TEST(Partition, CoarsenToTargetIsIdentityWhenAlreadySmall) {
  const Graph g = Graph::FromEdges(3, std::vector<GraphEdge>{{0, 1, 1.0}});
  const CoarseningChain chain = CoarsenToTarget(g, 8, 10);
  EXPECT_EQ(chain.levels, 0);
  EXPECT_EQ(chain.coarse.num_vertices(), 3);
  EXPECT_EQ(chain.fine_to_coarse, (std::vector<int64_t>{0, 1, 2}));
}

TEST(Partition, ContractByPartsSumsCutWeights) {
  // Two triangles joined by two bridges of weight 0.5 each.
  const std::vector<GraphEdge> edges = {
      {0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0},  // part 0
      {3, 4, 1.0}, {4, 5, 1.0}, {3, 5, 1.0},  // part 1
      {2, 3, 0.5}, {0, 5, 0.5}};              // bridges
  const Graph g = Graph::FromEdges(6, edges);
  const std::vector<int64_t> part_of = {0, 0, 0, 1, 1, 1};

  const GraphContraction contraction = ContractByParts(g, part_of, 2);
  EXPECT_EQ(contraction.cut_edges, 2);
  EXPECT_DOUBLE_EQ(contraction.cut_weight, 1.0);
  EXPECT_EQ(contraction.quotient.num_vertices(), 2);
  EXPECT_EQ(contraction.quotient.num_edges(), 1);
  EXPECT_DOUBLE_EQ(contraction.quotient.Weights(0)[0], 1.0);
}

TEST(Partition, ContractByPartsHandlesIsolatedParts) {
  // Three parts, no edges between parts 0 and 2.
  const Graph g = Graph::FromEdges(
      4, std::vector<GraphEdge>{{0, 1, 1.0}, {2, 3, 1.0}});
  const std::vector<int64_t> part_of = {0, 0, 1, 2};
  const GraphContraction contraction = ContractByParts(g, part_of, 3);
  EXPECT_EQ(contraction.cut_edges, 1);
  EXPECT_EQ(contraction.quotient.num_vertices(), 3);
  EXPECT_EQ(contraction.quotient.Degree(0), 0);
}

}  // namespace
}  // namespace spectral
