#include <vector>

#include <gtest/gtest.h>

#include "index/bplus_tree.h"
#include "util/random.h"

namespace spectral {
namespace {

std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> keys(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) keys[static_cast<size_t>(i)] = i;
  return keys;
}

TEST(BPlusTree, SingleLeaf) {
  const auto keys = Iota(5);
  const StaticBPlusTree tree = StaticBPlusTree::Build(keys);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_EQ(tree.num_keys(), 5);
  EXPECT_TRUE(tree.Lookup(3).found);
  EXPECT_FALSE(tree.Lookup(9).found);
}

TEST(BPlusTree, MultiLevelShape) {
  StaticBPlusTree::BuildOptions options;
  options.leaf_capacity = 4;
  options.fanout = 4;
  const StaticBPlusTree tree = StaticBPlusTree::Build(Iota(100), options);
  EXPECT_EQ(tree.num_leaves(), 25);
  EXPECT_EQ(tree.height(), 4);  // 25 leaves -> 7 -> 2 -> 1
  EXPECT_EQ(tree.num_nodes(), 25 + 7 + 2 + 1);
}

TEST(BPlusTree, LookupEveryKey) {
  StaticBPlusTree::BuildOptions options;
  options.leaf_capacity = 3;
  options.fanout = 3;
  const StaticBPlusTree tree = StaticBPlusTree::Build(Iota(200), options);
  for (int64_t k = 0; k < 200; ++k) {
    const auto result = tree.Lookup(k);
    EXPECT_TRUE(result.found) << k;
    EXPECT_EQ(result.nodes_read, tree.height()) << k;
  }
  EXPECT_FALSE(tree.Lookup(-1).found);
  EXPECT_FALSE(tree.Lookup(200).found);
}

TEST(BPlusTree, LookupSparseKeys) {
  const std::vector<int64_t> keys = {2, 5, 11, 17, 23, 40, 41, 99};
  StaticBPlusTree::BuildOptions options;
  options.leaf_capacity = 2;
  options.fanout = 2;
  const StaticBPlusTree tree = StaticBPlusTree::Build(keys, options);
  for (int64_t k : keys) EXPECT_TRUE(tree.Lookup(k).found) << k;
  for (int64_t k : {0, 3, 12, 50, 100}) {
    EXPECT_FALSE(tree.Lookup(k).found) << k;
  }
}

TEST(BPlusTree, RangeScanCounts) {
  StaticBPlusTree::BuildOptions options;
  options.leaf_capacity = 4;
  options.fanout = 4;
  const StaticBPlusTree tree = StaticBPlusTree::Build(Iota(64), options);
  const auto scan = tree.RangeScan(10, 25);
  EXPECT_EQ(scan.records, 16);
  // Keys 10..25 live in leaves [8,12) [12,16) [16,20) [20,24) [24,28).
  EXPECT_EQ(scan.leaves_read, 5);
  EXPECT_EQ(scan.internal_read, tree.height() - 1);
}

TEST(BPlusTree, RangeScanFull) {
  const StaticBPlusTree tree = StaticBPlusTree::Build(Iota(128));
  const auto scan = tree.RangeScan(0, 127);
  EXPECT_EQ(scan.records, 128);
  EXPECT_EQ(scan.leaves_read, tree.num_leaves());
}

TEST(BPlusTree, RangeScanEmptyInterval) {
  const StaticBPlusTree tree = StaticBPlusTree::Build(Iota(32));
  EXPECT_EQ(tree.RangeScan(10, 5).records, 0);
  EXPECT_EQ(tree.RangeScan(100, 200).records, 0);
}

TEST(BPlusTree, RangeScanBeyondBothEnds) {
  const StaticBPlusTree tree = StaticBPlusTree::Build(Iota(32));
  const auto scan = tree.RangeScan(-10, 100);
  EXPECT_EQ(scan.records, 32);
}

TEST(BPlusTree, RangeScanMatchesBruteForceOnSparseKeys) {
  Rng rng(77);
  std::vector<int64_t> keys;
  int64_t k = 0;
  for (int i = 0; i < 500; ++i) {
    k += 1 + rng.UniformInt(0, 9);
    keys.push_back(k);
  }
  StaticBPlusTree::BuildOptions options;
  options.leaf_capacity = 7;
  options.fanout = 5;
  const StaticBPlusTree tree = StaticBPlusTree::Build(keys, options);
  for (int trial = 0; trial < 100; ++trial) {
    const int64_t lo = rng.UniformInt(0, k);
    const int64_t hi = lo + rng.UniformInt(0, 200);
    int64_t expected = 0;
    for (int64_t key : keys) {
      if (key >= lo && key <= hi) ++expected;
    }
    EXPECT_EQ(tree.RangeScan(lo, hi).records, expected)
        << "[" << lo << ", " << hi << "]";
  }
}

TEST(BPlusTree, ScanCostProportionalToSpread) {
  StaticBPlusTree::BuildOptions options;
  options.leaf_capacity = 8;
  options.fanout = 8;
  const StaticBPlusTree tree = StaticBPlusTree::Build(Iota(512), options);
  const auto narrow = tree.RangeScan(100, 115);
  const auto wide = tree.RangeScan(100, 355);
  EXPECT_LT(narrow.leaves_read, wide.leaves_read);
  // Leaves read ~ spread / leaf_capacity (+1 boundary).
  EXPECT_LE(wide.leaves_read, (355 - 100) / 8 + 2);
}

}  // namespace
}  // namespace spectral
