#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/io_model.h"
#include "storage/page_map.h"

namespace spectral {
namespace {

TEST(PageMap, PageOfRank) {
  const PageMap pages(4);
  EXPECT_EQ(pages.PageOfRank(0), 0);
  EXPECT_EQ(pages.PageOfRank(3), 0);
  EXPECT_EQ(pages.PageOfRank(4), 1);
  EXPECT_EQ(pages.PageOfRank(11), 2);
}

TEST(PageMap, NumPages) {
  const PageMap pages(4);
  EXPECT_EQ(pages.NumPages(0), 0);
  EXPECT_EQ(pages.NumPages(1), 1);
  EXPECT_EQ(pages.NumPages(4), 1);
  EXPECT_EQ(pages.NumPages(5), 2);
}

TEST(PageFootprint, EmptyResult) {
  const PageMap pages(4);
  const auto fp = ComputePageFootprint({}, pages);
  EXPECT_EQ(fp.distinct_pages, 0);
  EXPECT_EQ(fp.page_runs, 0);
}

TEST(PageFootprint, ContiguousRanksOneRun) {
  const PageMap pages(4);
  const std::vector<int64_t> ranks = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto fp = ComputePageFootprint(ranks, pages);
  EXPECT_EQ(fp.distinct_pages, 2);
  EXPECT_EQ(fp.page_runs, 1);
}

TEST(PageFootprint, ScatteredRanksManyRuns) {
  const PageMap pages(4);
  const std::vector<int64_t> ranks = {0, 40, 80};
  const auto fp = ComputePageFootprint(ranks, pages);
  EXPECT_EQ(fp.distinct_pages, 3);
  EXPECT_EQ(fp.page_runs, 3);
}

TEST(PageFootprint, DuplicatePagesCountedOnce) {
  const PageMap pages(4);
  const std::vector<int64_t> ranks = {0, 1, 2, 9, 8};
  const auto fp = ComputePageFootprint(ranks, pages);
  EXPECT_EQ(fp.distinct_pages, 2);
  EXPECT_EQ(fp.page_runs, 2);  // pages 0 and 2
}

TEST(PageFootprint, UnsortedInputHandled) {
  const PageMap pages(2);
  const std::vector<int64_t> ranks = {9, 0, 4, 1, 8, 5};
  const auto fp = ComputePageFootprint(ranks, pages);
  EXPECT_EQ(fp.distinct_pages, 3);  // pages 0, 2, 4
  EXPECT_EQ(fp.page_runs, 3);
}

TEST(LruBufferPool, HitsAndMisses) {
  LruBufferPool pool(2);
  EXPECT_FALSE(pool.Access(1));  // miss
  EXPECT_FALSE(pool.Access(2));  // miss
  EXPECT_TRUE(pool.Access(1));   // hit
  EXPECT_FALSE(pool.Access(3));  // miss, evicts 2 (LRU)
  EXPECT_TRUE(pool.Access(1));   // hit
  EXPECT_FALSE(pool.Access(2));  // miss (was evicted)
  EXPECT_EQ(pool.hits(), 2);
  EXPECT_EQ(pool.misses(), 4);
  EXPECT_NEAR(pool.HitRate(), 2.0 / 6.0, 1e-12);
}

TEST(LruBufferPool, EvictionOrderIsLru) {
  LruBufferPool pool(3);
  pool.Access(1);
  pool.Access(2);
  pool.Access(3);
  pool.Access(1);   // 1 becomes MRU; LRU is 2
  pool.Access(4);   // evicts 2
  EXPECT_TRUE(pool.Access(1));
  EXPECT_TRUE(pool.Access(3));
  EXPECT_FALSE(pool.Access(2));
}

TEST(LruBufferPool, Reset) {
  LruBufferPool pool(2);
  pool.Access(1);
  pool.Access(1);
  pool.Reset();
  EXPECT_EQ(pool.accesses(), 0);
  EXPECT_FALSE(pool.Access(1));  // cold again
}

TEST(LruBufferPool, CapacityOne) {
  LruBufferPool pool(1);
  EXPECT_FALSE(pool.Access(1));
  EXPECT_TRUE(pool.Access(1));
  EXPECT_FALSE(pool.Access(2));
  EXPECT_FALSE(pool.Access(1));
}

TEST(IoModel, CostFormula) {
  PageFootprint fp;
  fp.distinct_pages = 10;
  fp.page_runs = 2;
  IoCostModel model;
  model.seek_cost = 40.0;
  model.transfer_cost = 1.0;
  EXPECT_DOUBLE_EQ(IoCost(fp, model), 90.0);
}

TEST(IoModel, SequentialBeatsScattered) {
  PageFootprint seq{10, 1};
  PageFootprint scattered{10, 10};
  EXPECT_LT(IoCost(seq), IoCost(scattered));
}

}  // namespace
}  // namespace spectral
