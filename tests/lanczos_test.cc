// Lanczos solver tests against diagonal operators and closed-form graph
// Laplacian spectra.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "eigen/lanczos.h"
#include "eigen/operator.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "linalg/sparse_matrix.h"

namespace spectral {
namespace {

constexpr double kPi = std::numbers::pi;

SparseMatrix DiagonalMatrix(const Vector& d) {
  std::vector<Triplet> t;
  for (size_t i = 0; i < d.size(); ++i) {
    t.push_back({static_cast<int64_t>(i), static_cast<int64_t>(i), d[i]});
  }
  return SparseMatrix::FromTriplets(static_cast<int64_t>(d.size()),
                                    static_cast<int64_t>(d.size()), t);
}

SparseMatrix PathLaplacian(int n) {
  const GridSpec grid({static_cast<Coord>(n)});
  return BuildLaplacian(BuildGridGraph(grid));
}

TEST(Lanczos, DominantOfDiagonal) {
  const SparseMatrix m = DiagonalMatrix({1.0, 5.0, 3.0, -2.0});
  const SparseOperator op(&m);
  auto result = LargestEigenpair(op, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->eigenvalue, 5.0, 1e-8);
  EXPECT_NEAR(std::fabs(result->eigenvector[1]), 1.0, 1e-6);
}

TEST(Lanczos, DeflationFindsSecond) {
  const SparseMatrix m = DiagonalMatrix({1.0, 5.0, 3.0, -2.0});
  const SparseOperator op(&m);
  std::vector<Vector> deflate = {{0.0, 1.0, 0.0, 0.0}};
  auto result = LargestEigenpair(op, deflate);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->eigenvalue, 3.0, 1e-8);
}

TEST(Lanczos, FullDeflationFails) {
  const SparseMatrix m = DiagonalMatrix({1.0, 2.0});
  const SparseOperator op(&m);
  std::vector<Vector> deflate = {{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_FALSE(LargestEigenpair(op, deflate).ok());
}

TEST(Lanczos, DimensionOne) {
  const SparseMatrix m = DiagonalMatrix({4.2});
  const SparseOperator op(&m);
  auto result = LargestEigenpair(op, {});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalue, 4.2, 1e-10);
}

TEST(Lanczos, ShiftNegateMapsSmallestToLargest) {
  const SparseMatrix m = DiagonalMatrix({1.0, 5.0, 3.0});
  const SparseOperator inner(&m);
  const ShiftNegateOperator op(&inner, 10.0);
  auto result = LargestEigenpair(op, {});
  ASSERT_TRUE(result.ok());
  // Largest of 10 - lambda is at the smallest lambda = 1.
  EXPECT_NEAR(result->eigenvalue, 9.0, 1e-8);
}

TEST(Lanczos, PathFiedlerValue) {
  // Smallest non-trivial Laplacian eigenvalue of the n-path is
  // 2 - 2 cos(pi / n); found via shift-negate with the ones vector deflated.
  const int n = 50;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const double shift = lap.GershgorinBound() + 1e-9;
  const ShiftNegateOperator op(&inner, shift);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};
  auto result = LargestEigenpair(op, deflate);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  const double lambda2 = shift - result->eigenvalue;
  EXPECT_NEAR(lambda2, 2.0 - 2.0 * std::cos(kPi / n), 1e-7);
}

TEST(Lanczos, ResidualIsSmallOnConvergence) {
  const int n = 40;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const double shift = lap.GershgorinBound() + 1e-9;
  const ShiftNegateOperator op(&inner, shift);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};
  LanczosOptions options;
  options.tol = 1e-10;
  auto result = LargestEigenpair(op, deflate, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LE(result->residual, 1e-10 * std::max(result->eigenvalue, 1.0));
}

TEST(Lanczos, SequentialDeflationRecoversSpectrumPrefix) {
  const int n = 24;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const double shift = lap.GershgorinBound() + 1e-9;
  const ShiftNegateOperator op(&inner, shift);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};
  for (int k = 1; k <= 4; ++k) {
    auto result = LargestEigenpair(op, deflate);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->converged);
    const double lambda = shift - result->eigenvalue;
    EXPECT_NEAR(lambda, 2.0 - 2.0 * std::cos(k * kPi / n), 1e-7) << "k=" << k;
    deflate.push_back(result->eigenvector);
  }
}

TEST(Lanczos, SmallBasisStillConvergesViaRestarts) {
  const int n = 60;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const double shift = lap.GershgorinBound() + 1e-9;
  const ShiftNegateOperator op(&inner, shift);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};
  LanczosOptions options;
  options.max_basis = 12;  // force multiple restart cycles
  options.max_restarts = 400;
  auto result = LargestEigenpair(op, deflate, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(shift - result->eigenvalue, 2.0 - 2.0 * std::cos(kPi / n), 1e-6);
  EXPECT_GT(result->restarts, 1);
}

TEST(Lanczos, EigenvectorOrthogonalToDeflation) {
  const int n = 30;
  const SparseMatrix lap = PathLaplacian(n);
  const SparseOperator inner(&lap);
  const ShiftNegateOperator op(&inner, lap.GershgorinBound() + 1e-9);
  const Vector ones(static_cast<size_t>(n),
                    1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<Vector> deflate = {ones};
  auto result = LargestEigenpair(op, deflate);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(Dot(result->eigenvector, ones), 0.0, 1e-10);
  EXPECT_NEAR(Norm2(result->eigenvector), 1.0, 1e-10);
}

}  // namespace
}  // namespace spectral
