#include "util/fault.h"

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"

namespace spectral {
namespace {

FaultSiteConfig Probability(double p) {
  FaultSiteConfig config;
  config.probability = p;
  return config;
}

FaultSiteConfig Schedule(std::vector<int64_t> hits) {
  FaultSiteConfig config;
  config.schedule = std::move(hits);
  return config;
}

// Records which of `n` hits on `site` fail, as a 0/1 string ("0100110...")
// so schedules from different injectors compare with one EXPECT_EQ.
std::string HitSchedule(FaultInjector& faults, std::string_view site, int n) {
  std::string out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(faults.ShouldFail(site) ? '1' : '0');
  }
  return out;
}

TEST(FaultInjector, SameSeedProducesIdenticalHitSchedule) {
  // The registry itself is deterministic in every build (only the
  // FaultFires call sites compile away); two injectors with the same seed
  // must agree hit-for-hit, and a third with a different seed must not be
  // forced to (probability 0.5 over 256 hits collides with probability
  // ~2^-256).
  FaultInjector a(42);
  FaultInjector b(42);
  FaultInjector c(43);
  const FaultSiteConfig coin = Probability(0.5);
  a.Arm("solver.converge", coin);
  b.Arm("solver.converge", coin);
  c.Arm("solver.converge", coin);

  const std::string sa = HitSchedule(a, "solver.converge", 256);
  const std::string sb = HitSchedule(b, "solver.converge", 256);
  const std::string sc = HitSchedule(c, "solver.converge", 256);
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
  // The schedule is nontrivial: some hits fail, some pass.
  EXPECT_NE(sa.find('1'), std::string::npos);
  EXPECT_NE(sa.find('0'), std::string::npos);
  EXPECT_EQ(a.hits("solver.converge"), 256);
  EXPECT_EQ(a.failures("solver.converge"), b.failures("solver.converge"));
}

TEST(FaultInjector, ResetReplaysTheExactSameSchedule) {
  FaultInjector faults(7);
  faults.Arm("serve.dispatch", Probability(0.3));
  const std::string first = HitSchedule(faults, "serve.dispatch", 100);
  faults.Reset();
  EXPECT_EQ(faults.hits("serve.dispatch"), 0);
  EXPECT_EQ(HitSchedule(faults, "serve.dispatch", 100), first);
}

TEST(FaultInjector, SitesAreScopedIndependently) {
  // Arming one site never makes a different site fail, and each site's
  // stream is independent: draining hits on one leaves the other's
  // schedule untouched.
  FaultInjector faults(11);
  faults.Arm("snapshot.write", Schedule({0, 2}));

  EXPECT_FALSE(faults.ShouldFail("snapshot.rename"));  // unarmed: hit, no
  EXPECT_EQ(faults.hits("snapshot.rename"), 1);        // failure
  EXPECT_EQ(faults.failures("snapshot.rename"), 0);

  EXPECT_TRUE(faults.ShouldFail("snapshot.write"));   // hit 0: scheduled
  EXPECT_FALSE(faults.ShouldFail("snapshot.write"));  // hit 1
  EXPECT_TRUE(faults.ShouldFail("snapshot.write"));   // hit 2: scheduled
  EXPECT_FALSE(faults.ShouldFail("snapshot.write"));  // hit 3
  EXPECT_EQ(faults.failures("snapshot.write"), 2);

  // Interleaving another site's hits must not perturb a probability
  // stream: replay the same seed with and without interleaved traffic.
  FaultInjector quiet(99);
  FaultInjector noisy(99);
  quiet.Arm("solver.converge", Probability(0.5));
  noisy.Arm("solver.converge", Probability(0.5));
  noisy.Arm("serve.dispatch", Probability(0.5));
  std::string with_noise;
  for (int i = 0; i < 64; ++i) {
    noisy.ShouldFail("serve.dispatch");
    with_noise.push_back(noisy.ShouldFail("solver.converge") ? '1' : '0');
  }
  EXPECT_EQ(HitSchedule(quiet, "solver.converge", 64), with_noise);
}

TEST(FaultInjector, ArmFromSpecParsesProbabilitiesAndSchedules) {
  FaultInjector faults;
  ASSERT_TRUE(faults
                  .ArmFromSpec(
                      "solver.converge:1,snapshot.write:#0/2,serve.dispatch:0")
                  .ok());
  EXPECT_TRUE(faults.ShouldFail("solver.converge"));
  EXPECT_TRUE(faults.ShouldFail("solver.converge"));
  EXPECT_FALSE(faults.ShouldFail("serve.dispatch"));
  EXPECT_TRUE(faults.ShouldFail("snapshot.write"));
  EXPECT_FALSE(faults.ShouldFail("snapshot.write"));
  EXPECT_TRUE(faults.ShouldFail("snapshot.write"));
  EXPECT_FALSE(faults.ShouldFail("snapshot.write"));

  EXPECT_EQ(faults.ArmFromSpec("no-colon").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(faults.ArmFromSpec("site:1.5").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(faults.ArmFromSpec("site:#x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(faults.ArmFromSpec(":0.5").code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjector, StatsReportEverySiteTouched) {
  FaultInjector faults(3);
  faults.Arm("a", Probability(1.0));
  faults.ShouldFail("a");
  faults.ShouldFail("b");
  const std::vector<FaultSiteStats> stats = faults.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].site, "a");
  EXPECT_EQ(stats[0].hits, 1);
  EXPECT_EQ(stats[0].failures, 1);
  EXPECT_EQ(stats[1].site, "b");
  EXPECT_EQ(stats[1].failures, 0);
}

TEST(FaultFires, CompilesToConstantFalseInNormalBuilds) {
  // The gate must be usable at compile time (it guards `if constexpr` in
  // FaultFires), and in a normal build FaultFires must not even record a
  // hit — the registry is never consulted, so armed sites stay silent.
  static_assert(std::is_same_v<decltype(kFaultInjectionEnabled), const bool>,
                "gate must be a compile-time constant");
  FaultInjector faults;
  faults.Arm("always", Probability(1.0));
  const bool fired = FaultFires(&faults, "always");
  if (kFaultInjectionEnabled) {
    EXPECT_TRUE(fired);
    EXPECT_EQ(faults.hits("always"), 1);
  } else {
    EXPECT_FALSE(fired);
    EXPECT_EQ(faults.hits("always"), 0);
  }
  // A null injector is always safe, gate on or off.
  EXPECT_FALSE(FaultFires(nullptr, "always"));
}

}  // namespace
}  // namespace spectral
