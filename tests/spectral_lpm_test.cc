// End-to-end tests of the Spectral LPM core: the paper's worked example
// (Figure 3), optimality of the continuous relaxation (Theorems 1-3),
// section-4 extensions (affinity edges, 8-connectivity, weights), and
// disconnected-input handling.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/spectral_lpm.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "util/random.h"
#include "workload/generators.h"

namespace spectral {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(SpectralLpm, PathOrderIsContiguous) {
  // On a 1-d path the optimal order is the path itself (or its reverse).
  const PointSet points = PointSet::FullGrid(GridSpec({17}));
  auto result = SpectralMapper().Map(points);
  ASSERT_TRUE(result.ok()) << result.status();
  const int64_t first = result->order.RankOf(0);
  const bool forward = first == 0;
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(result->order.RankOf(i), forward ? i : points.size() - 1 - i);
  }
  EXPECT_NEAR(result->lambda2, 2.0 - 2.0 * std::cos(kPi / 17), 1e-8);
}

TEST(SpectralLpm, PaperFigure3Grid3x3) {
  // Paper Figure 3: 3x3 grid, lambda2 = 1. The printed eigenvector is one
  // member of the 2-d degenerate eigenspace; we verify the invariants that
  // are well-defined: lambda2, eigenvector validity, and that the assigned
  // values produce a permutation.
  const PointSet points = PointSet::FullGrid(GridSpec({3, 3}));
  auto result = SpectralMapper().Map(points);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->lambda2, 1.0, 1e-9);

  const Graph g = BuildGridGraph(GridSpec({3, 3}));
  // values is a unit-norm eigenvector: energy == lambda2.
  EXPECT_NEAR(DirichletEnergy(g, result->values), result->lambda2, 1e-8);
  EXPECT_NEAR(Norm2(result->values), 1.0, 1e-9);
  double sum = 0.0;
  for (double v : result->values) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(SpectralLpm, TheoremOptimality) {
  // Theorems 1-3: among unit vectors orthogonal to 1, the Fiedler vector
  // minimizes the Dirichlet energy. Compare against random candidates and
  // the normalized sweep ranks.
  const GridSpec grid({4, 5});
  const PointSet points = PointSet::FullGrid(grid);
  const Graph g = BuildGridGraph(grid);
  auto result = SpectralMapper().Map(points);
  ASSERT_TRUE(result.ok());
  const double optimal = DirichletEnergy(g, result->values);
  EXPECT_NEAR(optimal, result->lambda2, 1e-8);

  Rng rng(77);
  for (int trial = 0; trial < 32; ++trial) {
    Vector x(static_cast<size_t>(points.size()));
    for (auto& v : x) v = rng.UniformDouble(-1.0, 1.0);
    const double mean = Sum(x) / static_cast<double>(x.size());
    for (auto& v : x) v -= mean;
    Normalize(x);
    EXPECT_GE(DirichletEnergy(g, x), optimal - 1e-9) << "trial " << trial;
  }

  // Normalized, centered sweep ranks are also a feasible candidate.
  Vector sweep(static_cast<size_t>(points.size()));
  for (int64_t i = 0; i < points.size(); ++i) {
    sweep[static_cast<size_t>(i)] = static_cast<double>(i);
  }
  const double mean = Sum(sweep) / static_cast<double>(sweep.size());
  for (auto& v : sweep) v -= mean;
  Normalize(sweep);
  EXPECT_GE(DirichletEnergy(g, sweep), optimal - 1e-9);
}

TEST(SpectralLpm, AffinityEdgesPullPointsTogether) {
  // Section 4: adding an affinity edge between two far-apart points must
  // shrink their distance in the 1-d order.
  const PointSet points = PointSet::FullGrid(GridSpec({16}));

  auto plain = SpectralMapper().Map(points);
  ASSERT_TRUE(plain.ok());
  const int64_t before =
      std::abs(plain->order.RankOf(2) - plain->order.RankOf(13));

  SpectralLpmOptions options;
  options.affinity_edges.push_back({2, 13, 4.0});
  auto tuned = SpectralMapper(options).Map(points);
  ASSERT_TRUE(tuned.ok());
  const int64_t after =
      std::abs(tuned->order.RankOf(2) - tuned->order.RankOf(13));
  EXPECT_LT(after, before);
}

TEST(SpectralLpm, AffinityEdgeValidation) {
  const PointSet points = PointSet::FullGrid(GridSpec({4}));
  SpectralLpmOptions options;
  options.affinity_edges.push_back({0, 9, 1.0});
  EXPECT_FALSE(SpectralMapper(options).Map(points).ok());
  options.affinity_edges = {{1, 1, 1.0}};
  EXPECT_FALSE(SpectralMapper(options).Map(points).ok());
  options.affinity_edges = {{0, 1, -2.0}};
  EXPECT_FALSE(SpectralMapper(options).Map(points).ok());
}

TEST(SpectralLpm, DisconnectedComponentsOrderedBySize) {
  // A 5-point segment and a 2-point segment, far apart: the mapper must
  // rank each component contiguously, larger component first.
  PointSet points(2);
  for (Coord i = 0; i < 5; ++i) points.Add(std::vector<Coord>{0, i});
  points.Add(std::vector<Coord>{10, 0});
  points.Add(std::vector<Coord>{10, 1});
  auto result = SpectralMapper().Map(points);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 2);
  // Large component occupies ranks 0..4.
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_LT(result->order.RankOf(i), 5);
  }
  EXPECT_GE(result->order.RankOf(5), 5);
  EXPECT_GE(result->order.RankOf(6), 5);
}

TEST(SpectralLpm, SingletonComponents) {
  PointSet points(2);
  points.Add(std::vector<Coord>{0, 0});
  points.Add(std::vector<Coord>{5, 5});
  points.Add(std::vector<Coord>{9, 9});
  auto result = SpectralMapper().Map(points);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 3);
  EXPECT_EQ(result->method_used, "trivial");
  // Singletons tie on size; ordered by lowest point index.
  EXPECT_EQ(result->order.RankOf(0), 0);
  EXPECT_EQ(result->order.RankOf(1), 1);
  EXPECT_EQ(result->order.RankOf(2), 2);
}

TEST(SpectralLpm, SinglePoint) {
  PointSet points(3);
  points.Add(std::vector<Coord>{1, 2, 3});
  auto result = SpectralMapper().Map(points);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->order.size(), 1);
  EXPECT_EQ(result->order.RankOf(0), 0);
}

TEST(SpectralLpm, EmptyInputRejected) {
  PointSet points(2);
  EXPECT_FALSE(SpectralMapper().Map(points).ok());
}

TEST(SpectralLpm, MooreConnectivityChangesTheSpectrum) {
  // Paper Figure 4: 4- vs 8-connectivity yields a different graph and a
  // different Fiedler problem. On the 4x4 grid the canonicalized orders
  // happen to coincide (both eigenspaces contain the same balanced diagonal
  // mix), but the eigenpairs demonstrably differ.
  const PointSet points = PointSet::FullGrid(GridSpec({4, 4}));
  auto four = SpectralMapper().Map(points);
  SpectralLpmOptions options;
  options.graph.connectivity = GridConnectivity::kMoore;
  auto eight = SpectralMapper(options).Map(points);
  ASSERT_TRUE(four.ok());
  ASSERT_TRUE(eight.ok());
  // More edges => stiffer graph => strictly larger algebraic connectivity.
  EXPECT_GT(eight->lambda2, four->lambda2 + 0.1);
  // The Fiedler vectors are genuinely different directions.
  EXPECT_LT(std::fabs(Dot(four->values, eight->values)), 1.0 - 1e-4);
}

TEST(SpectralLpm, MooreConnectivityChangesTheOrderOnRectangles) {
  // On a non-square grid the diagonal edges shift the spectrum enough to
  // reorder points (no degeneracy masks it).
  const PointSet points = PointSet::FullGrid(GridSpec({8, 3}));
  auto four = SpectralMapper().Map(points);
  SpectralLpmOptions options;
  options.graph.connectivity = GridConnectivity::kMoore;
  options.graph.weight = 1.0;
  auto eight = SpectralMapper(options).Map(points);
  ASSERT_TRUE(four.ok());
  ASSERT_TRUE(eight.ok());
  EXPECT_GT(eight->lambda2, four->lambda2);
}

TEST(SpectralLpm, MapGraphCustomWeights) {
  // Section 4 footnote: a weighted graph where one heavy edge dominates.
  std::vector<GraphEdge> edges = {
      {0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {0, 3, 10.0}};
  const Graph g = Graph::FromEdges(4, edges);
  auto result = SpectralMapper().MapGraph(g, nullptr);
  ASSERT_TRUE(result.ok());
  // The heavy edge forces 0 and 3 adjacent in the order.
  EXPECT_EQ(std::abs(result->order.RankOf(0) - result->order.RankOf(3)), 1);
}

TEST(SpectralLpm, DeterministicAcrossRuns) {
  const PointSet points = PointSet::FullGrid(GridSpec({5, 5}));
  auto a = SpectralMapper().Map(points);
  auto b = SpectralMapper().Map(points);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(a->order.RankOf(i), b->order.RankOf(i));
  }
}

TEST(SpectralLpm, LanczosPathOnLargerGrid) {
  // Force the sparse engine and validate against the closed form
  // lambda2(16x16 grid) = 2 - 2 cos(pi/16).
  const PointSet points = PointSet::FullGrid(GridSpec({16, 16}));
  SpectralLpmOptions options;
  options.fiedler.method = FiedlerMethod::kLanczos;
  auto result = SpectralMapper(options).Map(points);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->method_used, "lanczos");
  EXPECT_NEAR(result->lambda2, 2.0 - 2.0 * std::cos(kPi / 16), 1e-6);
  // values must be a near-eigenvector: energy == lambda2.
  const Graph g = BuildGridGraph(GridSpec({16, 16}));
  EXPECT_NEAR(DirichletEnergy(g, result->values), result->lambda2, 1e-5);
}

TEST(SpectralLpm, EnginesProduceSameOrder) {
  const PointSet points = PointSet::FullGrid(GridSpec({6, 5}));
  SpectralLpmOptions dense;
  dense.fiedler.method = FiedlerMethod::kDense;
  SpectralLpmOptions lanczos;
  lanczos.fiedler.method = FiedlerMethod::kLanczos;
  auto a = SpectralMapper(dense).Map(points);
  auto b = SpectralMapper(lanczos).Map(points);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(a->order.RankOf(i), b->order.RankOf(i)) << "point " << i;
  }
}

TEST(SpectralLpm, ConnectedBlobWorkload) {
  Rng rng(5);
  const PointSet points = SampleConnectedBlob(GridSpec({12, 12}), 60, rng);
  auto result = SpectralMapper().Map(points);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 1);
  EXPECT_EQ(result->order.size(), points.size());
}

TEST(SpectralLpm, InverseDistanceWeightedRadius2) {
  const PointSet points = PointSet::FullGrid(GridSpec({6, 6}));
  SpectralLpmOptions options;
  options.graph.radius = 2;
  options.graph.kernel = WeightKernel::kInverseDistance;
  auto result = SpectralMapper(options).Map(points);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->order.size(), 36);
  EXPECT_GT(result->lambda2, 0.0);
}

}  // namespace
}  // namespace spectral
