#include <vector>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "index/declustering.h"
#include "index/packed_rtree.h"
#include "space/point_set.h"

namespace spectral {
namespace {

TEST(Mbr, ExpandAndContains) {
  Mbr mbr = Mbr::Empty(2);
  EXPECT_TRUE(mbr.IsEmpty());
  mbr.Expand(std::vector<Coord>{1, 2});
  EXPECT_FALSE(mbr.IsEmpty());
  mbr.Expand(std::vector<Coord>{3, 0});
  EXPECT_TRUE(mbr.Contains(std::vector<Coord>{2, 1}));
  EXPECT_FALSE(mbr.Contains(std::vector<Coord>{4, 1}));
  EXPECT_DOUBLE_EQ(mbr.Volume(), 3.0 * 3.0);
  EXPECT_DOUBLE_EQ(mbr.Margin(), 6.0);
}

TEST(Mbr, IntersectsAndOverlap) {
  Mbr a = Mbr::Empty(2);
  a.Expand(std::vector<Coord>{0, 0});
  a.Expand(std::vector<Coord>{3, 3});
  Mbr b = Mbr::Empty(2);
  b.Expand(std::vector<Coord>{2, 2});
  b.Expand(std::vector<Coord>{5, 5});
  EXPECT_TRUE(a.Intersects(b.lo, b.hi));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 4.0);  // 2x2 cells
  Mbr c = Mbr::Empty(2);
  c.Expand(std::vector<Coord>{10, 10});
  EXPECT_FALSE(a.Intersects(c.lo, c.hi));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(c), 0.0);
}

TEST(PackedRTree, QueryMatchesBruteForce) {
  const GridSpec grid({9, 9});
  const PointSet points = PointSet::FullGrid(grid);
  auto order = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(order.ok());
  const PackedRTree tree = PackedRTree::Build(points, *order,
                                         {.leaf_capacity = 8, .fanout = 4});

  const std::vector<std::pair<std::vector<Coord>, std::vector<Coord>>> queries =
      {{{0, 0}, {2, 2}},
       {{3, 1}, {7, 4}},
       {{8, 8}, {8, 8}},
       {{0, 0}, {8, 8}},
       {{5, 5}, {4, 4}}};  // empty (lo > hi)
  for (const auto& [lo, hi] : queries) {
    int64_t expected = 0;
    for (int64_t i = 0; i < points.size(); ++i) {
      const auto p = points[i];
      if (p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1]) {
        ++expected;
      }
    }
    const auto result = tree.RangeQuery(lo, hi);
    EXPECT_EQ(result.matches, expected);
  }
}

TEST(PackedRTree, StatsShape) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto order = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(order.ok());
  const PackedRTree tree = PackedRTree::Build(points, *order,
                                         {.leaf_capacity = 8, .fanout = 4});
  const auto stats = tree.ComputeStats();
  EXPECT_EQ(stats.num_leaves, 8);
  EXPECT_EQ(stats.height, 3);  // 8 leaves -> 2 nodes -> 1 root
  EXPECT_GT(stats.total_leaf_volume, 0.0);
}

TEST(PackedRTree, HilbertPacksTighterThanScrambled) {
  const GridSpec grid({16, 16});
  const PointSet points = PointSet::FullGrid(grid);
  auto hilbert = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(hilbert.ok());
  std::vector<int64_t> scrambled_ranks(256);
  for (int64_t i = 0; i < 256; ++i) {
    scrambled_ranks[static_cast<size_t>(i)] = (i * 101) % 256;
  }
  auto scrambled = LinearOrder::FromRanks(scrambled_ranks);
  ASSERT_TRUE(scrambled.ok());

  const auto good = PackedRTree::Build(points, *hilbert, {.leaf_capacity = 16, .fanout = 8}).ComputeStats();
  const auto bad =
      PackedRTree::Build(points, *scrambled, {.leaf_capacity = 16, .fanout = 8}).ComputeStats();
  EXPECT_LT(good.total_leaf_volume, bad.total_leaf_volume);
  EXPECT_LT(good.leaf_overlap_volume, bad.leaf_overlap_volume);
}

TEST(PackedRTree, NodeVisitsBoundedByTotalNodes) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto order = OrderByCurve(points, CurveKind::kZOrder);
  ASSERT_TRUE(order.ok());
  const PackedRTree tree = PackedRTree::Build(points, *order,
                                         {.leaf_capacity = 4, .fanout = 4});
  const auto result = tree.RangeQuery(std::vector<Coord>{0, 0},
                                      std::vector<Coord>{7, 7});
  EXPECT_EQ(result.matches, 64);
  EXPECT_EQ(result.leaves_visited, 16);
}

TEST(PackedRTree, SinglePoint) {
  PointSet points(2);
  points.Add(std::vector<Coord>{3, 4});
  const PackedRTree tree =
      PackedRTree::Build(points, LinearOrder::Identity(1),
                         {.leaf_capacity = 4, .fanout = 4});
  const auto hit = tree.RangeQuery(std::vector<Coord>{3, 4},
                                   std::vector<Coord>{3, 4});
  EXPECT_EQ(hit.matches, 1);
  const auto miss = tree.RangeQuery(std::vector<Coord>{0, 0},
                                    std::vector<Coord>{2, 2});
  EXPECT_EQ(miss.matches, 0);
}

TEST(Decluster, RoundRobinAssignment) {
  const RoundRobinDecluster decluster(4);
  EXPECT_EQ(decluster.DiskOfRank(0), 0);
  EXPECT_EQ(decluster.DiskOfRank(5), 1);
  EXPECT_EQ(decluster.DiskOfRank(7), 3);
}

TEST(Decluster, PerfectBalanceOnContiguousOrder) {
  // Identity order + full-row windows: ranks in a window are contiguous, so
  // round-robin is perfectly balanced whenever volume % disks == 0.
  const GridSpec grid({8, 8});
  const LinearOrder order = LinearOrder::Identity(64);
  RangeQueryShape shape;
  shape.extents = {2, 8};  // volume 16, contiguous ranks
  const auto stats = EvaluateDeclustering(grid, order, shape, 4);
  EXPECT_DOUBLE_EQ(stats.mean_balance_ratio, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_balance_ratio, 1.0);
}

TEST(Decluster, SingleDiskDegenerate) {
  const GridSpec grid({4, 4});
  const LinearOrder order = LinearOrder::Identity(16);
  RangeQueryShape shape;
  shape.extents = {2, 2};
  const auto stats = EvaluateDeclustering(grid, order, shape, 1);
  EXPECT_DOUBLE_EQ(stats.mean_balance_ratio, 1.0);
}

TEST(Decluster, BadOrderWorseThanGoodOrder) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto hilbert = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(hilbert.ok());
  // Adversarial order: rank = 4 * cell mod 64 + offset, so cells in a row
  // tend to collide on the same disk under 4-disk round-robin.
  std::vector<int64_t> bad_ranks(64);
  for (int64_t i = 0; i < 64; ++i) {
    bad_ranks[static_cast<size_t>(i)] = (i * 4 + i / 16) % 64;
  }
  auto bad = LinearOrder::FromRanks(bad_ranks);
  ASSERT_TRUE(bad.ok());
  RangeQueryShape shape;
  shape.extents = {4, 4};
  const auto good_stats = EvaluateDeclustering(grid, *hilbert, shape, 4);
  const auto bad_stats = EvaluateDeclustering(grid, *bad, shape, 4);
  EXPECT_LE(good_stats.mean_balance_ratio, bad_stats.mean_balance_ratio);
}

}  // namespace
}  // namespace spectral
