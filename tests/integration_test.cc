// Cross-module integration tests: the paper's qualitative claims, checked
// end-to-end (spectral vs. fractal vs. sweep on real metrics).

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "query/pair_metrics.h"
#include "query/range_query.h"
#include "storage/page_map.h"

namespace spectral {
namespace {

// One engine request per registry name; engines that cannot handle the
// grid shape (e.g. spiral off a square) are skipped.
std::map<std::string, LinearOrder> AllOrders(const PointSet& points) {
  std::map<std::string, LinearOrder> orders;
  for (const std::string& name : AllOrderingEngineNames()) {
    auto engine = MakeOrderingEngine(name);
    if (!engine.ok()) continue;
    auto result = (*engine)->Order(OrderingRequest::ForPoints(points, name));
    if (result.ok()) orders.emplace(name, std::move(result->order));
  }
  return orders;
}

StatusOr<OrderingResult> SpectralOrder(const OrderingRequest& request) {
  auto engine = MakeOrderingEngine("spectral");
  if (!engine.ok()) return engine.status();
  return (*engine)->Order(request);
}

TEST(Integration, AllMappingsArePermutations) {
  const GridSpec grid({6, 6});
  const PointSet points = PointSet::FullGrid(grid);
  const auto orders = AllOrders(points);
  EXPECT_GE(orders.size(), 7u);
  for (const auto& [name, order] : orders) {
    std::vector<bool> seen(static_cast<size_t>(order.size()), false);
    for (int64_t i = 0; i < order.size(); ++i) {
      const int64_t r = order.RankOf(i);
      ASSERT_GE(r, 0) << name;
      ASSERT_LT(r, order.size()) << name;
      EXPECT_FALSE(seen[static_cast<size_t>(r)]) << name;
      seen[static_cast<size_t>(r)] = true;
    }
  }
}

TEST(Integration, Lambda2LowerBoundsEveryOrder) {
  // Theorem 2 gives: for any permutation pi (as a centered unit vector),
  // energy(pi) >= lambda2. Check every mapping on an 8x8 grid.
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  const Graph g = BuildGridGraph(grid);
  auto spectral_result = SpectralOrder(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(spectral_result.ok());
  const double lambda2 = spectral_result->lambda2;

  for (const auto& [name, order] : AllOrders(points)) {
    Vector x(static_cast<size_t>(order.size()));
    for (int64_t i = 0; i < order.size(); ++i) {
      x[static_cast<size_t>(i)] = static_cast<double>(order.RankOf(i));
    }
    const double mean = Sum(x) / static_cast<double>(x.size());
    for (double& v : x) v -= mean;
    Normalize(x);
    EXPECT_GE(DirichletEnergy(g, x), lambda2 - 1e-9) << name;
  }
}

TEST(Integration, SpectralValuesAchieveTheBound) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  const Graph g = BuildGridGraph(grid);
  auto result = SpectralOrder(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(DirichletEnergy(g, result->embedding), result->lambda2, 1e-7);
}

TEST(Integration, SpectralBeatsBaselinesOnPartialRangeQueries) {
  // Figure 6's setting: 4-dimensional grid, all partial range queries of a
  // given size. Spectral has (a) the lowest worst-case spread (Fig. 6a) and
  // (b) by far the lowest stddev of the spread (Fig. 6b).
  const GridSpec grid = GridSpec::Uniform(4, 6);
  const PointSet points = PointSet::FullGrid(grid);
  auto sweep = OrderByCurve(points, CurveKind::kSweep);
  auto hilbert = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(sweep.ok());
  ASSERT_TRUE(hilbert.ok());
  auto spectral_result = SpectralOrder(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(spectral_result.ok());

  const auto shapes = ShapesForVolume(grid, 0.02);
  const auto sweep_stats = EvaluateRangeQueryShapes(grid, *sweep, shapes);
  const auto hilbert_stats = EvaluateRangeQueryShapes(grid, *hilbert, shapes);
  const auto spectral_stats =
      EvaluateRangeQueryShapes(grid, spectral_result->order, shapes);

  EXPECT_LT(spectral_stats.max_spread, sweep_stats.max_spread);
  EXPECT_LT(spectral_stats.max_spread, hilbert_stats.max_spread);
  EXPECT_LT(spectral_stats.stddev_spread, sweep_stats.stddev_spread);
  EXPECT_LT(spectral_stats.stddev_spread, hilbert_stats.stddev_spread);
}

TEST(Integration, SpectralIsAxisFairSweepIsNot) {
  // Figure 5b: sweep's max rank distance along the two axes differs by the
  // grid side; spectral's are comparable.
  const GridSpec grid({8, 8});
  PointSet points = PointSet::FullGrid(grid);
  points.BuildIndex();
  const auto orders = AllOrders(points);
  const std::vector<int64_t> distances = {1, 2};

  const auto sweep_x =
      ComputeAxisPairSeries(points, orders.at("sweep"), 1, distances);
  const auto sweep_y =
      ComputeAxisPairSeries(points, orders.at("sweep"), 0, distances);
  const auto spec_x =
      ComputeAxisPairSeries(points, orders.at("spectral"), 1, distances);
  const auto spec_y =
      ComputeAxisPairSeries(points, orders.at("spectral"), 0, distances);

  const double sweep_gap =
      std::fabs(static_cast<double>(sweep_x.max_rank_distance[0] -
                                    sweep_y.max_rank_distance[0]));
  const double spec_gap =
      std::fabs(static_cast<double>(spec_x.max_rank_distance[0] -
                                    spec_y.max_rank_distance[0]));
  EXPECT_GT(sweep_gap, 4);       // sweep heavily favours one axis
  EXPECT_LT(spec_gap, sweep_gap);  // spectral is (much) fairer
}

TEST(Integration, ContinuousCurvesHaveUnitNeighborRankGaps) {
  // Hilbert/snake visit neighbors consecutively, so min rank distance at
  // Manhattan distance 1 is 1; the mean for spectral should still be small.
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  const auto orders = AllOrders(points);
  const std::vector<int64_t> distances = {1};
  const auto hilbert =
      ComputePairDistanceSeries(points, orders.at("hilbert"), distances);
  const auto spectral_series =
      ComputePairDistanceSeries(points, orders.at("spectral"), distances);
  EXPECT_GT(hilbert.pair_count[0], 0);
  // Spectral mean neighbor rank distance stays within a small factor of
  // Hilbert's (both are locality preserving).
  EXPECT_LT(spectral_series.mean_rank_distance[0],
            4.0 * hilbert.mean_rank_distance[0] + 1.0);
}

TEST(Integration, PageFootprintImprovesWithLocality) {
  // Range query results under a locality-preserving order touch fewer
  // page runs than under a scrambled order.
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  const auto orders = AllOrders(points);
  const PageMap pages(4);

  auto footprint_for = [&](const LinearOrder& order) {
    // 3x3 window at (2,2).
    std::vector<int64_t> ranks;
    std::vector<Coord> p(2);
    for (Coord x = 2; x < 5; ++x) {
      for (Coord y = 2; y < 5; ++y) {
        p = {x, y};
        ranks.push_back(order.RankOf(grid.Flatten(p)));
      }
    }
    return ComputePageFootprint(ranks, pages);
  };

  std::vector<int64_t> scrambled_ranks(64);
  for (int64_t i = 0; i < 64; ++i) {
    scrambled_ranks[static_cast<size_t>(i)] = (i * 37) % 64;
  }
  auto scrambled = LinearOrder::FromRanks(scrambled_ranks);
  ASSERT_TRUE(scrambled.ok());

  const auto spectral_fp = footprint_for(orders.at("spectral"));
  const auto scrambled_fp = footprint_for(*scrambled);
  EXPECT_LT(spectral_fp.page_runs, scrambled_fp.page_runs);
}

TEST(Integration, FiveDimensionalPipeline) {
  // Small 5-d end-to-end run (the Figure 5a setting, shrunk): every mapping
  // produces a permutation and spectral's worst neighbor gap is finite.
  const GridSpec grid = GridSpec::Uniform(5, 2);
  const PointSet points = PointSet::FullGrid(grid);
  const auto orders = AllOrders(points);
  EXPECT_GE(orders.size(), 7u);
  const std::vector<int64_t> distances = {1, 2, 3};
  for (const auto& [name, order] : orders) {
    const auto series = ComputePairDistanceSeries(points, order, distances);
    EXPECT_GT(series.pair_count[0], 0) << name;
    EXPECT_LT(series.max_rank_distance[0], 32) << name;
  }
}

TEST(Integration, WeightedAffinityImprovesTraceLocality) {
  // Section 4 end-to-end: affinity edges derived from a correlated trace
  // reduce the mean rank distance between hot partners.
  const GridSpec grid({6, 6});
  const PointSet points = PointSet::FullGrid(grid);

  // Hot pair: two opposite corners.
  const int64_t p = grid.Flatten(std::vector<Coord>{0, 0});
  const int64_t q = grid.Flatten(std::vector<Coord>{5, 5});

  auto plain = SpectralOrder(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(plain.ok());
  auto tuned = SpectralOrder(
      OrderingRequest::ForPointsWithAffinity(points, {{p, q, 5.0}}));
  ASSERT_TRUE(tuned.ok());

  const int64_t before = std::abs(plain->order.RankOf(p) - plain->order.RankOf(q));
  const int64_t after = std::abs(tuned->order.RankOf(p) - tuned->order.RankOf(q));
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace spectral
