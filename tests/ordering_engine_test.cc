// OrderingEngine registry tests: round-trip construction of every name,
// request-based adapter-vs-direct equivalence against the underlying
// producers, input-kind handling (points / graph / affinity), request
// addressing, and byte-identical output across solver thread counts.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "core/recursive_bisection.h"
#include "core/spectral_lpm.h"
#include "space/point_set.h"

namespace spectral {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

// A 5-point strip, a 3-point strip, a 2-point strip, and a singleton — four
// components of distinct sizes, far enough apart to stay disconnected.
PointSet FourComponentPoints() {
  PointSet points(2);
  for (Coord i = 0; i < 5; ++i) points.Add(std::vector<Coord>{0, i});
  for (Coord i = 0; i < 3; ++i) points.Add(std::vector<Coord>{100, i});
  for (Coord i = 0; i < 2; ++i) points.Add(std::vector<Coord>{200, i});
  points.Add(std::vector<Coord>{300, 0});
  return points;
}

TEST(OrderingEngineRegistry, EveryNameConstructsAndOrders) {
  const PointSet points = PointSet::FullGrid(GridSpec({8, 8}));
  for (const std::string& name : AllOrderingEngineNames()) {
    auto engine = MakeOrderingEngine(name);
    ASSERT_TRUE(engine.ok()) << name << ": " << engine.status();
    EXPECT_EQ((*engine)->name(), name);
    auto result = (*engine)->Order(OrderingRequest::ForPoints(points, name));
    ASSERT_TRUE(result.ok()) << name << ": " << result.status();
    EXPECT_EQ(result->order.size(), points.size());
    EXPECT_FALSE(result->detail.empty()) << name;
    EXPECT_FALSE(result->method.empty()) << name;
  }
}

TEST(OrderingEngineRegistry, UnknownNameIsNotFound) {
  auto engine = MakeOrderingEngine("no-such-engine");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
  // The error names the registry so CLI users can self-serve.
  EXPECT_NE(engine.status().message().find("spectral"), std::string::npos);
}

TEST(OrderingEngineRegistry, MisaddressedRequestIsRejected) {
  const PointSet points = PointSet::FullGrid(GridSpec({4, 4}));
  auto engine = MakeOrderingEngine("hilbert");
  ASSERT_TRUE(engine.ok());
  // The request says "spectral" but the engine is hilbert: a routing bug a
  // batch scheduler must hear about, not silently mis-serve.
  auto result = (*engine)->Order(OrderingRequest::ForPoints(points));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(OrderingEngineRegistry, InvalidRequestIsRejected) {
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  OrderingRequest empty;  // kPoints with no point set
  auto result = (*engine)->Order(empty);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(OrderingEngineRegistry, SpectralAdapterMatchesDirectMapper) {
  const PointSet points = PointSet::FullGrid(GridSpec({16, 16}));
  SpectralLpmOptions options;
  options.fiedler.num_pairs = 3;

  auto direct = SpectralMapper(options).Map(points);
  ASSERT_TRUE(direct.ok());

  OrderingRequest request = OrderingRequest::ForPoints(points);
  request.options.spectral = options;
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto via_engine = (*engine)->Order(request);
  ASSERT_TRUE(via_engine.ok());

  EXPECT_EQ(Ranks(direct->order), Ranks(via_engine->order));
  EXPECT_EQ(direct->lambda2, via_engine->lambda2);
  EXPECT_EQ(direct->num_components, via_engine->num_components);
  EXPECT_EQ(direct->method_used, via_engine->method);
  EXPECT_EQ(direct->values, via_engine->embedding);
}

TEST(OrderingEngineRegistry, AffinityRequestMatchesAffinityOptions) {
  // The kPointsWithAffinity input kind and options.spectral.affinity_edges
  // are two spellings of the same mapping problem.
  const PointSet points = PointSet::FullGrid(GridSpec({6, 6}));
  const std::vector<GraphEdge> edges = {{0, 35, 5.0}};

  OrderingRequest via_options = OrderingRequest::ForPoints(points);
  via_options.options.spectral.affinity_edges = edges;
  const OrderingRequest via_input =
      OrderingRequest::ForPointsWithAffinity(points, edges);

  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto a = (*engine)->Order(via_options);
  auto b = (*engine)->Order(via_input);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Ranks(a->order), Ranks(b->order));
  EXPECT_EQ(a->embedding, b->embedding);
}

TEST(OrderingEngineRegistry, CurveAdaptersMatchOrderByCurve) {
  const PointSet points = PointSet::FullGrid(GridSpec({16, 16}));
  for (CurveKind kind : AllCurveKinds()) {
    auto direct = OrderByCurve(points, kind);
    ASSERT_TRUE(direct.ok()) << CurveKindName(kind);

    auto engine = MakeOrderingEngine(CurveKindName(kind));
    ASSERT_TRUE(engine.ok());
    auto via_engine = (*engine)->Order(
        OrderingRequest::ForPoints(points, CurveKindName(kind)));
    ASSERT_TRUE(via_engine.ok()) << CurveKindName(kind);

    EXPECT_EQ(Ranks(*direct), Ranks(via_engine->order)) << CurveKindName(kind);
    // Power-of-two families fit 16 exactly; peano pads to 27.
    EXPECT_EQ(via_engine->grid_side, kind == CurveKind::kPeano ? 27 : 16)
        << CurveKindName(kind);
    EXPECT_EQ(via_engine->grid_cells,
              static_cast<int64_t>(via_engine->grid_side) *
                  via_engine->grid_side)
        << CurveKindName(kind);
  }
}

TEST(OrderingEngineRegistry, CurvePaddingDiagnostics) {
  // A 5x5 extent forces power-of-two and power-of-three padding.
  const PointSet points = PointSet::FullGrid(GridSpec({5, 5}));
  auto hilbert = MakeOrderingEngine("hilbert");
  ASSERT_TRUE(hilbert.ok());
  auto result =
      (*hilbert)->Order(OrderingRequest::ForPoints(points, "hilbert"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->grid_side, 8);
  EXPECT_EQ(result->grid_cells, 64);

  auto peano = MakeOrderingEngine("peano");
  ASSERT_TRUE(peano.ok());
  auto peano_result =
      (*peano)->Order(OrderingRequest::ForPoints(points, "peano"));
  ASSERT_TRUE(peano_result.ok());
  EXPECT_EQ(peano_result->grid_side, 9);
}

TEST(OrderingEngineRegistry, BisectionAdapterMatchesDirect) {
  const PointSet points = PointSet::FullGrid(GridSpec({16, 16}));
  RecursiveBisectionOptions options;
  options.leaf_size = 8;

  auto direct = RecursiveSpectralOrder(points, options);
  ASSERT_TRUE(direct.ok());

  OrderingRequest request = OrderingRequest::ForPoints(points, "bisection");
  request.options.bisection.leaf_size = 8;
  auto engine = MakeOrderingEngine("bisection");
  ASSERT_TRUE(engine.ok());
  auto via_engine = (*engine)->Order(request);
  ASSERT_TRUE(via_engine.ok());

  EXPECT_EQ(Ranks(direct->order), Ranks(via_engine->order));
  EXPECT_EQ(direct->num_solves, via_engine->num_solves);
  EXPECT_EQ(direct->depth, via_engine->depth);
}

TEST(OrderingEngineRegistry, GraphInputCapability) {
  std::vector<GraphEdge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  const Graph graph = Graph::FromEdges(4, edges);

  for (const std::string& name : AllOrderingEngineNames()) {
    auto engine = MakeOrderingEngine(name);
    ASSERT_TRUE(engine.ok()) << name;
    const bool is_spectral_family = name == "spectral" ||
                                    name == "spectral-multilevel" ||
                                    name == "sharded-spectral" ||
                                    name == "bisection";
    EXPECT_EQ((*engine)->supports_graph_input(), is_spectral_family) << name;
    auto result = (*engine)->Order(
        OrderingRequest::ForGraph(graph, /*canonical_points=*/nullptr, name));
    if (is_spectral_family) {
      ASSERT_TRUE(result.ok()) << name << ": " << result.status();
      EXPECT_EQ(result->order.size(), 4);
    } else {
      ASSERT_FALSE(result.ok()) << name;
      EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented) << name;
    }
  }
}

TEST(OrderingEngineRegistry, ParallelSolveIsByteIdenticalToSerial) {
  const PointSet points = FourComponentPoints();

  OrderingRequest serial_request = OrderingRequest::ForPoints(points);
  serial_request.options.spectral.parallelism = 1;
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto serial = (*engine)->Order(serial_request);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->num_components, 4);

  OrderingRequest parallel_request = OrderingRequest::ForPoints(points);
  parallel_request.options.spectral.parallelism = 8;
  auto parallel = (*engine)->Order(parallel_request);
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(Ranks(serial->order), Ranks(parallel->order));
  // Byte-identical, not just rank-identical: the Fiedler components, the
  // diagnostics, and the solver label all match the serial run.
  EXPECT_EQ(serial->embedding, parallel->embedding);
  EXPECT_EQ(serial->lambda2, parallel->lambda2);
  EXPECT_EQ(serial->matvecs, parallel->matvecs);
  EXPECT_EQ(serial->method, parallel->method);
}

TEST(OrderingEngineRegistry, ParallelSolveOnLargeSingleComponent) {
  // Exercises the row-partitioned matvec path (grid big enough to clear
  // the SparseOperator parallel threshold) and checks it against serial.
  const PointSet points = PointSet::FullGrid(GridSpec({64, 64}));
  OrderingRequest serial_request = OrderingRequest::ForPoints(points);
  serial_request.options.spectral.parallelism = 1;
  OrderingRequest parallel_request = OrderingRequest::ForPoints(points);
  parallel_request.options.spectral.parallelism = 4;

  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto serial = (*engine)->Order(serial_request);
  auto parallel = (*engine)->Order(parallel_request);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(Ranks(serial->order), Ranks(parallel->order));
  EXPECT_EQ(serial->embedding, parallel->embedding);
  EXPECT_EQ(serial->matvecs, parallel->matvecs);
}

TEST(OrderingEngineRegistry, MultilevelEngineAppliesDefaultThreshold) {
  // 32x32 = 1024 vertices > the 256 default threshold: the multilevel
  // engine must produce a valid permutation of the same size.
  const PointSet points = PointSet::FullGrid(GridSpec({32, 32}));
  auto engine = MakeOrderingEngine("spectral-multilevel");
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Order(
      OrderingRequest::ForPoints(points, "spectral-multilevel"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->order.size(), points.size());
  EXPECT_GT(result->lambda2, 0.0);
}

}  // namespace
}  // namespace spectral
