// Fiedler driver tests: closed-form algebraic connectivity, degenerate
// eigenspace handling (the paper's square-grid examples), engine
// cross-validation, and disconnection detection.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "eigen/fiedler.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "space/point_set.h"

namespace spectral {
namespace {

constexpr double kPi = std::numbers::pi;

double PathLambda(int n, int k = 1) { return 2.0 - 2.0 * std::cos(k * kPi / n); }

SparseMatrix GridLaplacian(std::vector<Coord> sides) {
  return BuildLaplacian(BuildGridGraph(GridSpec(std::move(sides))));
}

double LaplacianResidual(const SparseMatrix& lap, const Vector& v,
                         double lambda) {
  Vector lv(v.size());
  lap.MatVec(v, lv);
  Axpy(-lambda, v, lv);
  return Norm2(lv);
}

TEST(Fiedler, PathLambda2BothEngines) {
  const int n = 20;
  const SparseMatrix lap = GridLaplacian({n});
  for (FiedlerMethod method : {FiedlerMethod::kDense, FiedlerMethod::kLanczos,
                               FiedlerMethod::kBlockLanczos}) {
    FiedlerOptions options;
    options.method = method;
    auto result = ComputeFiedler(lap, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_NEAR(result->lambda2, PathLambda(n), 1e-7);
    EXPECT_LT(LaplacianResidual(lap, result->fiedler, result->lambda2), 1e-6);
  }
}

TEST(Fiedler, PathFiedlerVectorIsMonotone) {
  // For a path, the Fiedler vector is cos((i + 1/2) pi / n): strictly
  // monotone, so the induced order must be the path order (or its reverse).
  const int n = 31;
  auto result = ComputeFiedler(GridLaplacian({n}));
  ASSERT_TRUE(result.ok());
  const Vector& v = result->fiedler;
  const bool increasing = v[1] > v[0];
  for (int i = 1; i < n; ++i) {
    if (increasing) {
      EXPECT_GT(v[static_cast<size_t>(i)], v[static_cast<size_t>(i - 1)]);
    } else {
      EXPECT_LT(v[static_cast<size_t>(i)], v[static_cast<size_t>(i - 1)]);
    }
  }
}

TEST(Fiedler, CycleIsDegenerate) {
  // Cycle C_n: lambda2 = 2 - 2 cos(2 pi / n) with multiplicity 2.
  const int n = 12;
  std::vector<GraphEdge> edges;
  for (int i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n, 1.0});
  const SparseMatrix lap = BuildLaplacian(Graph::FromEdges(n, edges));
  FiedlerOptions options;
  options.num_pairs = 3;
  auto result = ComputeFiedler(lap, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->lambda2, 2.0 - 2.0 * std::cos(2.0 * kPi / n), 1e-8);
  EXPECT_EQ(result->degenerate_dim, 2);
}

TEST(Fiedler, SquareGridDegeneracyAndLambda) {
  // 3x3 grid (paper Figure 3): lambda2 = 1 with multiplicity 2.
  const SparseMatrix lap = GridLaplacian({3, 3});
  FiedlerOptions options;
  options.num_pairs = 3;
  auto result = ComputeFiedler(lap, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->lambda2, 1.0, 1e-9);
  EXPECT_EQ(result->degenerate_dim, 2);
  // Any canonicalized vector must still be an eigenvector for lambda2.
  EXPECT_LT(LaplacianResidual(lap, result->fiedler, result->lambda2), 1e-7);
}

TEST(Fiedler, RectangleGridNonDegenerate) {
  // 4x3 grid: lambda2 = 2 - 2 cos(pi/4) (the longer axis), multiplicity 1.
  const SparseMatrix lap = GridLaplacian({4, 3});
  auto result = ComputeFiedler(lap);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->lambda2, PathLambda(4), 1e-9);
  EXPECT_EQ(result->degenerate_dim, 1);
}

TEST(Fiedler, EnginesAgreeOnGrid) {
  const SparseMatrix lap = GridLaplacian({5, 4});
  FiedlerOptions dense_options;
  dense_options.method = FiedlerMethod::kDense;
  auto dense = ComputeFiedler(lap, dense_options);
  ASSERT_TRUE(dense.ok());
  for (FiedlerMethod method :
       {FiedlerMethod::kLanczos, FiedlerMethod::kBlockLanczos}) {
    FiedlerOptions options;
    options.method = method;
    auto iterative = ComputeFiedler(lap, options);
    ASSERT_TRUE(iterative.ok());
    EXPECT_NEAR(dense->lambda2, iterative->lambda2, 1e-7);
    // Eigenvectors agree up to sign.
    const double dot = std::fabs(Dot(dense->fiedler, iterative->fiedler));
    EXPECT_NEAR(dot, 1.0, 1e-5);
  }
}

TEST(Fiedler, DisconnectedGraphRejected) {
  // Two disjoint edges: second zero eigenvalue must be detected.
  std::vector<GraphEdge> edges = {{0, 1, 1.0}, {2, 3, 1.0}};
  const SparseMatrix lap = BuildLaplacian(Graph::FromEdges(4, edges));
  for (FiedlerMethod method : {FiedlerMethod::kDense, FiedlerMethod::kLanczos,
                               FiedlerMethod::kBlockLanczos}) {
    FiedlerOptions options;
    options.method = method;
    auto result = ComputeFiedler(lap, options);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(Fiedler, TwoVertices) {
  std::vector<GraphEdge> edges = {{0, 1, 3.0}};
  const SparseMatrix lap = BuildLaplacian(Graph::FromEdges(2, edges));
  auto result = ComputeFiedler(lap);
  ASSERT_TRUE(result.ok());
  // L = [[3,-3],[-3,3]]: lambda2 = 6.
  EXPECT_NEAR(result->lambda2, 6.0, 1e-10);
}

TEST(Fiedler, WeightScalesLambda2) {
  const int n = 10;
  std::vector<GraphEdge> light, heavy;
  for (int i = 0; i + 1 < n; ++i) {
    light.push_back({i, i + 1, 1.0});
    heavy.push_back({i, i + 1, 2.5});
  }
  auto a = ComputeFiedler(BuildLaplacian(Graph::FromEdges(n, light)));
  auto b = ComputeFiedler(BuildLaplacian(Graph::FromEdges(n, heavy)));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b->lambda2, 2.5 * a->lambda2, 1e-8);
}

TEST(Fiedler, CompleteGraphLambda2) {
  // K_n: lambda2 = n (multiplicity n-1).
  const int n = 7;
  std::vector<GraphEdge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) edges.push_back({i, j, 1.0});
  }
  FiedlerOptions options;
  options.num_pairs = 4;
  auto result = ComputeFiedler(BuildLaplacian(Graph::FromEdges(n, edges)),
                               options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->lambda2, static_cast<double>(n), 1e-8);
  EXPECT_GE(result->degenerate_dim, 3);  // limited by num_pairs
}

TEST(Fiedler, StarGraphLambda2) {
  // Star S_n (hub + n-1 leaves): lambda2 = 1.
  const int n = 9;
  std::vector<GraphEdge> edges;
  for (int i = 1; i < n; ++i) edges.push_back({0, i, 1.0});
  auto result = ComputeFiedler(BuildLaplacian(Graph::FromEdges(n, edges)));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->lambda2, 1.0, 1e-8);
}

TEST(Fiedler, BalancedMixIsAxisFairOnSquareGrid) {
  // With kBalancedMix canonicalization over a square grid, the Fiedler
  // vector must weight both axes equally: correlation with centered x and
  // centered y should have equal magnitude.
  const GridSpec grid({4, 4});
  const SparseMatrix lap = GridLaplacian({4, 4});
  const PointSet points = PointSet::FullGrid(grid);
  const auto axes = points.CenteredAxisFunctions();
  FiedlerOptions options;
  options.num_pairs = 3;
  options.degeneracy_policy = DegeneracyPolicy::kBalancedMix;
  auto result = ComputeFiedler(lap, options, axes);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->degenerate_dim, 2);
  const double cx = std::fabs(Dot(result->fiedler, axes[0]));
  const double cy = std::fabs(Dot(result->fiedler, axes[1]));
  EXPECT_GT(cx, 1e-6);
  EXPECT_NEAR(cx, cy, 1e-6);
}

TEST(Fiedler, SignConventionIsDeterministic) {
  const SparseMatrix lap = GridLaplacian({6});
  auto a = ComputeFiedler(lap);
  auto b = ComputeFiedler(lap);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->fiedler.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->fiedler[i], b->fiedler[i]);
  }
}

TEST(Fiedler, RejectsTinyGraphs) {
  const SparseMatrix lap = SparseMatrix::FromTriplets(1, 1, {{0, 0, 0.0}});
  EXPECT_FALSE(ComputeFiedler(lap).ok());
}

TEST(Fiedler, LambdaLowerBoundsTheorem) {
  // Fiedler 1973: lambda2 <= n/(n-1) * min degree. Sanity-check on a grid.
  const SparseMatrix lap = GridLaplacian({5, 5});
  auto result = ComputeFiedler(lap);
  ASSERT_TRUE(result.ok());
  const double n = 25.0;
  EXPECT_LE(result->lambda2, n / (n - 1.0) * 2.0 + 1e-9);  // min degree 2
  EXPECT_GT(result->lambda2, 0.0);
}

}  // namespace
}  // namespace spectral
