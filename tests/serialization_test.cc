#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "space/point_set.h"

namespace spectral {
namespace {

TEST(Serialization, LinearOrderRoundTrip) {
  auto order = LinearOrder::FromRanks({3, 1, 4, 0, 2});
  ASSERT_TRUE(order.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteLinearOrder(*order, buffer).ok());
  auto loaded = ReadLinearOrder(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 5);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(loaded->RankOf(i), order->RankOf(i));
  }
}

TEST(Serialization, LinearOrderRejectsBadMagic) {
  std::stringstream buffer("not-an-order\n3\n0\n1\n2\n");
  EXPECT_FALSE(ReadLinearOrder(buffer).ok());
}

TEST(Serialization, LinearOrderRejectsTruncation) {
  std::stringstream buffer("spectral-lpm-order v1\n5\n0\n1\n2\n");
  EXPECT_FALSE(ReadLinearOrder(buffer).ok());
}

TEST(Serialization, LinearOrderRejectsNonPermutation) {
  std::stringstream buffer("spectral-lpm-order v1\n3\n0\n0\n1\n");
  EXPECT_FALSE(ReadLinearOrder(buffer).ok());
}

TEST(Serialization, PointSetRoundTrip) {
  PointSet points(3);
  points.Add(std::vector<Coord>{1, -2, 3});
  points.Add(std::vector<Coord>{0, 0, 0});
  points.Add(std::vector<Coord>{7, 8, -9});
  std::stringstream buffer;
  ASSERT_TRUE(WritePointSet(points, buffer).ok());
  auto loaded = ReadPointSet(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 3);
  ASSERT_EQ(loaded->dims(), 3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_EQ(loaded->At(i, a), points.At(i, a));
    }
  }
}

TEST(Serialization, PointSetRejectsBadHeader) {
  std::stringstream buffer("spectral-lpm-points v1\n-1 2\n");
  EXPECT_FALSE(ReadPointSet(buffer).ok());
}

TEST(Serialization, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string order_path = (dir / "spectral_order_test.txt").string();
  const std::string points_path = (dir / "spectral_points_test.txt").string();

  const PointSet points = PointSet::FullGrid(GridSpec({4, 4}));
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto mapped = (*engine)->Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(mapped.ok());

  ASSERT_TRUE(SaveLinearOrderToFile(mapped->order, order_path).ok());
  ASSERT_TRUE(SavePointSetToFile(points, points_path).ok());

  auto order = LoadLinearOrderFromFile(order_path);
  auto pts = LoadPointSetFromFile(points_path);
  ASSERT_TRUE(order.ok());
  ASSERT_TRUE(pts.ok());
  EXPECT_EQ(order->size(), points.size());
  EXPECT_EQ(pts->size(), points.size());
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(order->RankOf(i), mapped->order.RankOf(i));
  }

  EXPECT_FALSE(LoadLinearOrderFromFile("/nonexistent/path.txt").ok());
  std::filesystem::remove(order_path);
  std::filesystem::remove(points_path);
}

TEST(Serialization, EmptyOrderRoundTrip) {
  auto order = LinearOrder::FromRanks({});
  ASSERT_TRUE(order.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteLinearOrder(*order, buffer).ok());
  auto loaded = ReadLinearOrder(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0);
}

}  // namespace
}  // namespace spectral
