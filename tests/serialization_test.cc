#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/mapping_service.h"
#include "core/serialization.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "space/point_set.h"

namespace spectral {
namespace {

TEST(Serialization, LinearOrderRoundTrip) {
  auto order = LinearOrder::FromRanks({3, 1, 4, 0, 2});
  ASSERT_TRUE(order.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteLinearOrder(*order, buffer).ok());
  auto loaded = ReadLinearOrder(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 5);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(loaded->RankOf(i), order->RankOf(i));
  }
}

TEST(Serialization, LinearOrderRejectsBadMagic) {
  std::stringstream buffer("not-an-order\n3\n0\n1\n2\n");
  EXPECT_FALSE(ReadLinearOrder(buffer).ok());
}

TEST(Serialization, LinearOrderRejectsTruncation) {
  std::stringstream buffer("spectral-lpm-order v1\n5\n0\n1\n2\n");
  EXPECT_FALSE(ReadLinearOrder(buffer).ok());
}

TEST(Serialization, LinearOrderRejectsNonPermutation) {
  std::stringstream buffer("spectral-lpm-order v1\n3\n0\n0\n1\n");
  EXPECT_FALSE(ReadLinearOrder(buffer).ok());
}

TEST(Serialization, PointSetRoundTrip) {
  PointSet points(3);
  points.Add(std::vector<Coord>{1, -2, 3});
  points.Add(std::vector<Coord>{0, 0, 0});
  points.Add(std::vector<Coord>{7, 8, -9});
  std::stringstream buffer;
  ASSERT_TRUE(WritePointSet(points, buffer).ok());
  auto loaded = ReadPointSet(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 3);
  ASSERT_EQ(loaded->dims(), 3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_EQ(loaded->At(i, a), points.At(i, a));
    }
  }
}

TEST(Serialization, PointSetRejectsBadHeader) {
  std::stringstream buffer("spectral-lpm-points v1\n-1 2\n");
  EXPECT_FALSE(ReadPointSet(buffer).ok());
}

TEST(Serialization, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string order_path = (dir / "spectral_order_test.txt").string();
  const std::string points_path = (dir / "spectral_points_test.txt").string();

  const PointSet points = PointSet::FullGrid(GridSpec({4, 4}));
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto mapped = (*engine)->Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(mapped.ok());

  ASSERT_TRUE(SaveLinearOrderToFile(mapped->order, order_path).ok());
  ASSERT_TRUE(SavePointSetToFile(points, points_path).ok());

  auto order = LoadLinearOrderFromFile(order_path);
  auto pts = LoadPointSetFromFile(points_path);
  ASSERT_TRUE(order.ok());
  ASSERT_TRUE(pts.ok());
  EXPECT_EQ(order->size(), points.size());
  EXPECT_EQ(pts->size(), points.size());
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(order->RankOf(i), mapped->order.RankOf(i));
  }

  EXPECT_FALSE(LoadLinearOrderFromFile("/nonexistent/path.txt").ok());
  std::filesystem::remove(order_path);
  std::filesystem::remove(points_path);
}

TEST(Serialization, EmptyOrderRoundTrip) {
  auto order = LinearOrder::FromRanks({});
  ASSERT_TRUE(order.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteLinearOrder(*order, buffer).ok());
  auto loaded = ReadLinearOrder(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0);
}

// Real cache contents: a few spectral solves exported from a warm
// MappingService.
std::vector<OrderCacheEntry> MakeCacheEntries() {
  MappingServiceOptions options;
  options.cache_capacity = 8;
  options.parallelism = 1;
  MappingService service(options);
  for (const auto& sides : {GridSpec({5, 4}), GridSpec({3, 7})}) {
    const PointSet points = PointSet::FullGrid(sides);
    auto result = service.Order(OrderingRequest::ForPoints(points));
    EXPECT_TRUE(result.ok());
  }
  return service.ExportCache();
}

TEST(Serialization, CacheSnapshotRoundTripIsExact) {
  const std::vector<OrderCacheEntry> entries = MakeCacheEntries();
  ASSERT_EQ(entries.size(), 2);

  std::stringstream buffer;
  ASSERT_TRUE(WriteOrderCacheSnapshot(entries, buffer).ok());
  auto loaded = ReadOrderCacheSnapshot(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), entries.size());
  for (size_t e = 0; e < entries.size(); ++e) {
    const OrderCacheEntry& want = entries[e];
    const OrderCacheEntry& got = (*loaded)[e];
    EXPECT_EQ(got.fingerprint.hi, want.fingerprint.hi);
    EXPECT_EQ(got.fingerprint.lo, want.fingerprint.lo);
    const OrderingResult& w = want.result;
    const OrderingResult& g = got.result;
    EXPECT_EQ(g.method, w.method);
    EXPECT_EQ(g.detail, w.detail);
    // max_digits10 round-trips doubles bit-exactly; a restored cache entry
    // must be byte-identical to the solve that produced it.
    EXPECT_EQ(g.lambda2, w.lambda2);
    EXPECT_EQ(g.num_components, w.num_components);
    EXPECT_EQ(g.matvecs, w.matvecs);
    EXPECT_EQ(g.restarts, w.restarts);
    EXPECT_EQ(g.spmm_calls, w.spmm_calls);
    EXPECT_EQ(g.reorth_panels, w.reorth_panels);
    EXPECT_EQ(g.num_solves, w.num_solves);
    EXPECT_EQ(g.depth, w.depth);
    EXPECT_EQ(g.grid_side, w.grid_side);
    EXPECT_EQ(g.grid_cells, w.grid_cells);
    EXPECT_EQ(g.converged, w.converged);
    ASSERT_EQ(g.order.size(), w.order.size());
    for (int64_t i = 0; i < w.order.size(); ++i) {
      EXPECT_EQ(g.order.RankOf(i), w.order.RankOf(i));
    }
    ASSERT_EQ(g.embedding.size(), w.embedding.size());
    for (size_t i = 0; i < w.embedding.size(); ++i) {
      EXPECT_EQ(g.embedding[i], w.embedding[i]);
    }
  }
}

TEST(Serialization, EmptyCacheSnapshotRoundTrip) {
  std::stringstream buffer;
  ASSERT_TRUE(
      WriteOrderCacheSnapshot(std::vector<OrderCacheEntry>{}, buffer).ok());
  auto loaded = ReadOrderCacheSnapshot(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->empty());
}

TEST(Serialization, CacheSnapshotRejectsWrongVersion) {
  for (const char* old_version :
       {"spectral-lpm-cache v1\n0\n", "spectral-lpm-cache v3\n0\n"}) {
    // Even with a valid checksum trailer, a wrong version line is rejected
    // first (with a version message, not a checksum one).
    std::stringstream buffer(WithSnapshotChecksum(old_version));
    const auto loaded = ReadOrderCacheSnapshot(buffer);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos)
        << loaded.status();
  }
}

TEST(Serialization, CacheSnapshotRejectsTruncation) {
  std::stringstream full;
  ASSERT_TRUE(WriteOrderCacheSnapshot(MakeCacheEntries(), full).ok());
  const std::string text = full.str();
  // Chop anywhere inside the payload: always a clean error, never a crash
  // (the checksum trailer is gone or covers bytes that are).
  for (const double fraction : {0.25, 0.5, 0.9}) {
    std::stringstream truncated(
        text.substr(0, static_cast<size_t>(text.size() * fraction)));
    const auto loaded = ReadOrderCacheSnapshot(truncated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Serialization, CacheSnapshotRejectsBitFlip) {
  std::stringstream full;
  ASSERT_TRUE(WriteOrderCacheSnapshot(MakeCacheEntries(), full).ok());
  std::string text = full.str();
  // Flip one digit inside an embedding value: structurally still a valid
  // snapshot, so only the checksum can catch it.
  const size_t pos = text.find("embedding ");
  ASSERT_NE(pos, std::string::npos);
  char& digit = text[pos + std::string("embedding ").size()];
  digit = digit == '9' ? '8' : '9';
  std::stringstream flipped(text);
  const auto loaded = ReadOrderCacheSnapshot(flipped);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos)
      << loaded.status();
}

TEST(Serialization, CacheSnapshotRejectsCorruptPayload) {
  // Bodies with a *valid* checksum trailer, so these exercise the field
  // parsers behind the checksum gate, not the gate itself.
  const char* kBadSnapshots[] = {
      // Non-permutation ranks.
      "spectral-lpm-cache v2\n1\n"
      "entry 000000000000000000000000000000ab\nmethod m\ndetail d\n"
      "metrics 0 1 0 0 0 0 0 0 0 0 1\norder 3 0 0 1\nembedding 0\n",
      // Bad fingerprint (too short).
      "spectral-lpm-cache v2\n1\n"
      "entry 1234\nmethod m\ndetail d\n"
      "metrics 0 1 0 0 0 0 0 0 0 0 1\norder 1 0\nembedding 0\n",
      // Garbage metrics.
      "spectral-lpm-cache v2\n1\n"
      "entry 000000000000000000000000000000ab\nmethod m\ndetail d\n"
      "metrics x 1 0 0 0 0 0 0 0 0 1\norder 1 0\nembedding 0\n",
      // Converged flag outside {0, 1}.
      "spectral-lpm-cache v2\n1\n"
      "entry 000000000000000000000000000000ab\nmethod m\ndetail d\n"
      "metrics 0 1 0 0 0 0 0 0 0 0 7\norder 1 0\nembedding 0\n",
      // Embedding shorter than declared.
      "spectral-lpm-cache v2\n1\n"
      "entry 000000000000000000000000000000ab\nmethod m\ndetail d\n"
      "metrics 0 1 0 0 0 0 0 0 0 0 1\norder 1 0\nembedding 3 0.5\n",
      // Negative entry count.
      "spectral-lpm-cache v2\n-2\n",
  };
  for (const char* bad : kBadSnapshots) {
    std::stringstream buffer(WithSnapshotChecksum(bad));
    const auto loaded = ReadOrderCacheSnapshot(buffer);
    ASSERT_FALSE(loaded.ok()) << "accepted: " << bad;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(loaded.status().message().find("checksum"), std::string::npos)
        << "failed at the checksum gate instead of the parser: "
        << loaded.status();
  }
}

TEST(Serialization, CacheSnapshotFileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "spectral_cache_test.txt").string();
  const std::vector<OrderCacheEntry> entries = MakeCacheEntries();
  ASSERT_TRUE(SaveOrderCacheSnapshotToFile(entries, path).ok());
  // The atomic rename consumed its temp file.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto loaded = LoadOrderCacheSnapshotFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), entries.size());
  std::filesystem::remove(path);

  const auto missing = LoadOrderCacheSnapshotFromFile("/nonexistent/cache.txt");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(Serialization, CorruptCacheSnapshotFileIsQuarantined) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "spectral_cache_quarantine.txt").string();
  const std::string quarantine = path + ".corrupt";
  std::filesystem::remove(path);
  std::filesystem::remove(quarantine);

  // A valid snapshot, torn mid-file as an interrupted non-atomic writer
  // would leave it.
  std::stringstream full;
  ASSERT_TRUE(WriteOrderCacheSnapshot(MakeCacheEntries(), full).ok());
  const std::string text = full.str();
  {
    std::ofstream torn(path);
    torn << text.substr(0, text.size() / 2);
  }

  const auto loaded = LoadOrderCacheSnapshotFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  // The damaged file moved aside: the path is clean for the next save and
  // the bytes are kept for inspection.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(quarantine));
  EXPECT_NE(loaded.status().message().find(".corrupt"), std::string::npos)
      << loaded.status();

  // A second load finds nothing: quarantine is idempotent, never a crash.
  const auto again = LoadOrderCacheSnapshotFromFile(path);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kNotFound);
  std::filesystem::remove(quarantine);
}

}  // namespace
}  // namespace spectral
