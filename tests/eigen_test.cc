// Dense eigensolver tests: cyclic Jacobi and tridiagonal QL, validated
// against closed-form spectra and reconstruction identities.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "eigen/jacobi.h"
#include "eigen/tridiagonal.h"
#include "linalg/dense_matrix.h"
#include "util/random.h"

namespace spectral {
namespace {

constexpr double kPi = std::numbers::pi;

DenseMatrix RandomSymmetric(int64_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix a(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      const double v = rng.UniformDouble(-1.0, 1.0);
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  return a;
}

TEST(Jacobi, TwoByTwoKnown) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 2.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 2.0;
  auto result = JacobiEigenSolve(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(result->eigenvalues[1], 3.0, 1e-12);
}

TEST(Jacobi, RejectsNonSquare) {
  EXPECT_FALSE(JacobiEigenSolve(DenseMatrix(2, 3)).ok());
}

TEST(Jacobi, RejectsAsymmetric) {
  DenseMatrix a(2, 2);
  a.At(0, 1) = 1.0;
  EXPECT_FALSE(JacobiEigenSolve(a).ok());
}

TEST(Jacobi, DiagonalMatrixIsFixed) {
  DenseMatrix a(3, 3);
  a.At(0, 0) = 3.0;
  a.At(1, 1) = -1.0;
  a.At(2, 2) = 2.0;
  auto result = JacobiEigenSolve(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], -1.0, 1e-13);
  EXPECT_NEAR(result->eigenvalues[1], 2.0, 1e-13);
  EXPECT_NEAR(result->eigenvalues[2], 3.0, 1e-13);
}

TEST(Jacobi, EigenvectorsAreOrthonormal) {
  const DenseMatrix a = RandomSymmetric(20, 123);
  auto result = JacobiEigenSolve(a);
  ASSERT_TRUE(result.ok());
  const auto& v = result->eigenvectors;
  for (int64_t p = 0; p < 20; ++p) {
    for (int64_t q = 0; q < 20; ++q) {
      double dot = 0.0;
      for (int64_t i = 0; i < 20; ++i) dot += v.At(i, p) * v.At(i, q);
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Jacobi, ReconstructsMatrix) {
  const DenseMatrix a = RandomSymmetric(15, 321);
  auto result = JacobiEigenSolve(a);
  ASSERT_TRUE(result.ok());
  // A == V diag(lambda) V^T
  DenseMatrix rec(15, 15);
  for (int64_t i = 0; i < 15; ++i) {
    for (int64_t j = 0; j < 15; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < 15; ++k) {
        acc += result->eigenvectors.At(i, k) *
               result->eigenvalues[static_cast<size_t>(k)] *
               result->eigenvectors.At(j, k);
      }
      rec.At(i, j) = acc;
    }
  }
  EXPECT_LT(a.MaxAbsDiff(rec), 1e-9);
}

TEST(Jacobi, EigenvaluesAscending) {
  const DenseMatrix a = RandomSymmetric(30, 99);
  auto result = JacobiEigenSolve(a);
  ASSERT_TRUE(result.ok());
  for (size_t k = 1; k < result->eigenvalues.size(); ++k) {
    EXPECT_LE(result->eigenvalues[k - 1], result->eigenvalues[k]);
  }
}

TEST(Tridiagonal, SingleElement) {
  auto result = SolveTridiagonal({7.0}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->eigenvalues[0], 7.0);
  EXPECT_DOUBLE_EQ(result->eigenvectors.At(0, 0), 1.0);
}

TEST(Tridiagonal, TwoByTwoKnown) {
  // [[2, 1], [1, 2]] -> 1, 3.
  auto result = SolveTridiagonal({2.0, 2.0}, {1.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(result->eigenvalues[1], 3.0, 1e-12);
}

TEST(Tridiagonal, FreeChainSpectrum) {
  // diag 0, sub 1: eigenvalues 2 cos(k pi / (n+1)), k = 1..n.
  const int n = 12;
  Vector diag(n, 0.0);
  Vector sub(n - 1, 1.0);
  auto result = SolveTridiagonal(diag, sub);
  ASSERT_TRUE(result.ok());
  for (int k = 0; k < n; ++k) {
    const double expected = 2.0 * std::cos((n - k) * kPi / (n + 1));
    EXPECT_NEAR(result->eigenvalues[static_cast<size_t>(k)], expected, 1e-10);
  }
}

TEST(Tridiagonal, PathLaplacianSpectrum) {
  // Path graph Laplacian (tridiagonal): eigenvalues 2 - 2 cos(k pi / n).
  const int n = 16;
  Vector diag(n, 2.0);
  diag[0] = diag[static_cast<size_t>(n - 1)] = 1.0;
  Vector sub(n - 1, -1.0);
  auto result = SolveTridiagonal(diag, sub);
  ASSERT_TRUE(result.ok());
  for (int k = 0; k < n; ++k) {
    const double expected = 2.0 - 2.0 * std::cos(k * kPi / n);
    EXPECT_NEAR(result->eigenvalues[static_cast<size_t>(k)], expected, 1e-10);
  }
}

TEST(Tridiagonal, MatchesJacobiOnRandomTridiagonal) {
  const int n = 25;
  Rng rng(5);
  Vector diag(n), sub(n - 1);
  for (auto& d : diag) d = rng.UniformDouble(-2.0, 2.0);
  for (auto& e : sub) e = rng.UniformDouble(-2.0, 2.0);

  auto ql = SolveTridiagonal(diag, sub);
  ASSERT_TRUE(ql.ok());

  DenseMatrix dense(n, n);
  for (int i = 0; i < n; ++i) dense.At(i, i) = diag[static_cast<size_t>(i)];
  for (int i = 0; i + 1 < n; ++i) {
    dense.At(i, i + 1) = sub[static_cast<size_t>(i)];
    dense.At(i + 1, i) = sub[static_cast<size_t>(i)];
  }
  auto jac = JacobiEigenSolve(dense);
  ASSERT_TRUE(jac.ok());
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(ql->eigenvalues[static_cast<size_t>(k)],
                jac->eigenvalues[static_cast<size_t>(k)], 1e-9);
  }
}

TEST(Tridiagonal, EigenvectorResiduals) {
  const int n = 20;
  Vector diag(n, 2.0);
  diag[0] = diag[static_cast<size_t>(n - 1)] = 1.0;
  Vector sub(n - 1, -1.0);
  auto result = SolveTridiagonal(diag, sub);
  ASSERT_TRUE(result.ok());
  // ||T v - lambda v|| small for every pair.
  for (int k = 0; k < n; ++k) {
    double res = 0.0;
    for (int i = 0; i < n; ++i) {
      double tv = diag[static_cast<size_t>(i)] * result->eigenvectors.At(i, k);
      if (i > 0) tv += sub[static_cast<size_t>(i - 1)] * result->eigenvectors.At(i - 1, k);
      if (i + 1 < n) tv += sub[static_cast<size_t>(i)] * result->eigenvectors.At(i + 1, k);
      const double diff =
          tv - result->eigenvalues[static_cast<size_t>(k)] *
                   result->eigenvectors.At(i, k);
      res += diff * diff;
    }
    EXPECT_LT(std::sqrt(res), 1e-10) << "pair " << k;
  }
}

}  // namespace
}  // namespace spectral
