// OrderingRequest tests: structural validation and the fingerprint
// contract — equal inputs/options hash equal, every semantic field change
// (input contents, engine name, any option layer) changes the fingerprint,
// and runtime-only fields (parallelism, worker pools) are excluded so
// caches hit across differently-parallel runs.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/ordering_request.h"
#include "space/point_set.h"
#include "util/thread_pool.h"

namespace spectral {
namespace {

PointSet MakePoints() { return PointSet::FullGrid(GridSpec({4, 4})); }

Graph MakeGraph() {
  const std::vector<GraphEdge> edges = {{0, 1, 1.0}, {1, 2, 2.0}};
  return Graph::FromEdges(3, edges);
}

TEST(OrderingRequestValidate, AcceptsWellFormedRequests) {
  const PointSet points = MakePoints();
  const Graph graph = MakeGraph();
  EXPECT_TRUE(OrderingRequest::ForPoints(points).Validate().ok());
  EXPECT_TRUE(OrderingRequest::ForPointsWithAffinity(points, {{0, 15, 2.0}})
                  .Validate()
                  .ok());
  EXPECT_TRUE(OrderingRequest::ForGraph(graph).Validate().ok());
}

TEST(OrderingRequestValidate, RejectsMalformedRequests) {
  const PointSet points = MakePoints();
  const Graph graph = MakeGraph();

  OrderingRequest no_engine = OrderingRequest::ForPoints(points);
  no_engine.engine.clear();
  EXPECT_FALSE(no_engine.Validate().ok());

  OrderingRequest no_payload;
  EXPECT_FALSE(no_payload.Validate().ok());

  // Affinity edges on a plain kPoints request: the caller forgot the kind.
  OrderingRequest stray_edges = OrderingRequest::ForPoints(points);
  stray_edges.affinity_edges.push_back({0, 1, 1.0});
  EXPECT_FALSE(stray_edges.Validate().ok());

  // Graph + mismatched canonicalization points.
  OrderingRequest mismatched = OrderingRequest::ForGraph(graph, &points);
  EXPECT_FALSE(mismatched.Validate().ok());
}

TEST(OrderingRequestFingerprint, EqualContentHashesEqual) {
  // Separately constructed but identical inputs and options: the
  // fingerprint must depend on content, not object identity.
  const PointSet a = MakePoints();
  const PointSet b = MakePoints();
  OrderingRequest ra = OrderingRequest::ForPoints(a);
  OrderingRequest rb = OrderingRequest::ForPoints(b);
  ra.options.spectral.fiedler.num_pairs = 4;
  rb.options.spectral.fiedler.num_pairs = 4;
  EXPECT_EQ(ra.Fingerprint(), rb.Fingerprint());
  EXPECT_EQ(ra.Fingerprint().ToHex(), rb.Fingerprint().ToHex());
  EXPECT_EQ(ra.Fingerprint().ToHex().size(), 32u);
}

TEST(OrderingRequestFingerprint, InputChangesChangeTheFingerprint) {
  const PointSet points = MakePoints();
  const Fingerprint128 base = OrderingRequest::ForPoints(points).Fingerprint();

  // Engine name.
  EXPECT_NE(OrderingRequest::ForPoints(points, "hilbert").Fingerprint(), base);

  // Point contents (one coordinate nudged).
  PointSet moved(2);
  for (int64_t i = 0; i < points.size(); ++i) moved.Add(points[i]);
  moved.Add(std::vector<Coord>{9, 9});
  EXPECT_NE(OrderingRequest::ForPoints(moved).Fingerprint(), base);

  // Input kind (same point set, affinity kind with no edges yet).
  EXPECT_NE(OrderingRequest::ForPointsWithAffinity(points, {}).Fingerprint(),
            base);

  // Affinity edge content: endpoint and weight.
  const Fingerprint128 aff =
      OrderingRequest::ForPointsWithAffinity(points, {{0, 15, 2.0}})
          .Fingerprint();
  EXPECT_NE(
      OrderingRequest::ForPointsWithAffinity(points, {{0, 14, 2.0}})
          .Fingerprint(),
      aff);
  EXPECT_NE(
      OrderingRequest::ForPointsWithAffinity(points, {{0, 15, 2.5}})
          .Fingerprint(),
      aff);

  // Graph content.
  const Graph g1 = MakeGraph();
  const std::vector<GraphEdge> reweighted = {{0, 1, 1.0}, {1, 2, 2.5}};
  const Graph g2 = Graph::FromEdges(3, reweighted);
  EXPECT_NE(OrderingRequest::ForGraph(g1).Fingerprint(),
            OrderingRequest::ForGraph(g2).Fingerprint());
}

TEST(OrderingRequestFingerprint, EverySemanticOptionLayerIsHashed) {
  const PointSet points = MakePoints();
  const OrderingRequest base_request = OrderingRequest::ForPoints(points);
  const Fingerprint128 base = base_request.Fingerprint();

  // One mutation per option layer; each must move the fingerprint.
  const auto mutated = [&](auto&& mutate) {
    OrderingRequest r = base_request;
    mutate(r.options);
    return r.Fingerprint();
  };
  EXPECT_NE(mutated([](OrderingEngineOptions& o) {
              o.spectral.graph.connectivity = GridConnectivity::kMoore;
            }),
            base);
  EXPECT_NE(mutated([](OrderingEngineOptions& o) { o.spectral.graph.radius = 2; }),
            base);
  EXPECT_NE(mutated([](OrderingEngineOptions& o) {
              o.spectral.graph.kernel = WeightKernel::kGaussian;
            }),
            base);
  EXPECT_NE(mutated([](OrderingEngineOptions& o) {
              o.spectral.canonicalize_with_axes = false;
            }),
            base);
  EXPECT_NE(mutated([](OrderingEngineOptions& o) {
              o.spectral.rank_quantum_rel = 1e-6;
            }),
            base);
  EXPECT_NE(mutated([](OrderingEngineOptions& o) {
              o.spectral.multilevel_threshold = 512;
            }),
            base);
  EXPECT_NE(mutated([](OrderingEngineOptions& o) {
              o.spectral.fiedler.seed = 123;
            }),
            base);
  EXPECT_NE(mutated([](OrderingEngineOptions& o) {
              o.spectral.fiedler.tol = 1e-6;
            }),
            base);
  EXPECT_NE(mutated([](OrderingEngineOptions& o) {
              o.spectral.multilevel.coarsen.coarsest_size = 128;
            }),
            base);
  EXPECT_NE(mutated([](OrderingEngineOptions& o) {
              o.spectral.affinity_edges.push_back({0, 15, 1.0});
            }),
            base);
}

TEST(OrderingRequestFingerprint, OnlyTheNamedEnginesOptionsParticipate) {
  // The fingerprint covers the *effective* options. Fields the named
  // engine never reads must not split the cache key space...
  const PointSet points = MakePoints();
  {
    // "spectral" ignores the multilevel default and the bisection shape.
    const OrderingRequest base_request = OrderingRequest::ForPoints(points);
    OrderingRequest r = base_request;
    r.options.multilevel_default_threshold = 1024;
    r.options.bisection.leaf_size = 16;
    r.options.bisection.max_depth = 8;
    EXPECT_EQ(r.Fingerprint(), base_request.Fingerprint());
  }
  {
    // Curve engines are geometry-only: no option is read at all.
    const OrderingRequest base_request =
        OrderingRequest::ForPoints(points, "hilbert");
    OrderingRequest r = base_request;
    r.options.spectral.fiedler.seed = 99;
    r.options.spectral.graph.radius = 3;
    r.options.bisection.leaf_size = 32;
    EXPECT_EQ(r.Fingerprint(), base_request.Fingerprint());
  }
  // ...while the fields the engine does read must move the fingerprint.
  {
    const OrderingRequest base_request =
        OrderingRequest::ForPoints(points, "bisection");
    const Fingerprint128 base = base_request.Fingerprint();
    OrderingRequest leaf = base_request;
    leaf.options.bisection.leaf_size = 16;
    EXPECT_NE(leaf.Fingerprint(), base);
    OrderingRequest depth = base_request;
    depth.options.bisection.max_depth = 8;
    EXPECT_NE(depth.Fingerprint(), base);
    // bisection.base is overwritten with `spectral` by the engine and so
    // never participates, even for bisection requests.
    OrderingRequest ignored_base = base_request;
    ignored_base.options.bisection.base.fiedler.num_pairs = 7;
    EXPECT_EQ(ignored_base.Fingerprint(), base);
  }
  {
    const OrderingRequest base_request =
        OrderingRequest::ForPoints(points, "spectral-multilevel");
    OrderingRequest r = base_request;
    r.options.multilevel_default_threshold = 1024;
    EXPECT_NE(r.Fingerprint(), base_request.Fingerprint());
  }
  {
    // sharded-spectral reads the spectral options plus its shard shape,
    // but not the bisection recursion fields.
    const OrderingRequest base_request =
        OrderingRequest::ForPoints(points, "sharded-spectral");
    OrderingRequest shards = base_request;
    shards.options.sharded.num_shards = 4;
    EXPECT_NE(shards.Fingerprint(), base_request.Fingerprint());
    OrderingRequest coarsen = base_request;
    coarsen.options.sharded.coarsen_target = 64;
    EXPECT_NE(coarsen.Fingerprint(), base_request.Fingerprint());
    OrderingRequest ignored = base_request;
    ignored.options.bisection.leaf_size = 16;
    EXPECT_EQ(ignored.Fingerprint(), base_request.Fingerprint());
  }
  {
    // Unknown (future) engine names conservatively hash every field.
    const OrderingRequest base_request =
        OrderingRequest::ForPoints(points, "some-future-engine");
    OrderingRequest r = base_request;
    r.options.bisection.leaf_size = 16;
    EXPECT_NE(r.Fingerprint(), base_request.Fingerprint());
    OrderingRequest s = base_request;
    s.options.sharded.num_shards = 4;
    EXPECT_NE(s.Fingerprint(), base_request.Fingerprint());
  }
}

TEST(OrderingRequestFingerprint, RuntimeOnlyFieldsAreExcluded) {
  // parallelism and worker-pool pointers never change the computed order
  // (solves are byte-identical across thread counts), so they must not
  // split the cache key space.
  const PointSet points = MakePoints();
  const Fingerprint128 base = OrderingRequest::ForPoints(points).Fingerprint();

  ThreadPool pool(2);
  OrderingRequest r = OrderingRequest::ForPoints(points);
  r.options.spectral.parallelism = 8;
  r.options.spectral.pool = &pool;
  r.options.spectral.fiedler.matvec_pool = &pool;
  r.options.bisection.base.parallelism = 4;
  EXPECT_EQ(r.Fingerprint(), base);
}

TEST(OrderingRequestFingerprint, StableWithinProcessAcrossCalls) {
  const PointSet points = MakePoints();
  const OrderingRequest request = OrderingRequest::ForPoints(points);
  EXPECT_EQ(request.Fingerprint(), request.Fingerprint());
}

TEST(OrderingRequest, InputSizeFollowsThePayload) {
  const PointSet points = MakePoints();
  const Graph graph = MakeGraph();
  EXPECT_EQ(OrderingRequest::ForPoints(points).InputSize(), 16);
  EXPECT_EQ(OrderingRequest::ForGraph(graph).InputSize(), 3);
  EXPECT_EQ(OrderingRequest().InputSize(), 0);
}

}  // namespace
}  // namespace spectral
