#include <vector>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "query/executor.h"
#include "storage/layout.h"

namespace spectral {
namespace {

TEST(StorageLayout, PageContents) {
  auto order = LinearOrder::FromRanks({2, 0, 3, 1});  // pts 1,3,0,2 by rank
  ASSERT_TRUE(order.ok());
  const StorageLayout layout(*order, 2);
  EXPECT_EQ(layout.num_pages(), 2);
  const auto page0 = layout.PointsOnPage(0);
  ASSERT_EQ(page0.size(), 2u);
  EXPECT_EQ(page0[0], 1);
  EXPECT_EQ(page0[1], 3);
  EXPECT_EQ(layout.PageOfPoint(0), 1);
  EXPECT_EQ(layout.PageOfPoint(1), 0);
  EXPECT_EQ(layout.PageOfRank(3), 1);
}

TEST(StorageLayout, PartialLastPage) {
  const StorageLayout layout(LinearOrder::Identity(5), 2);
  EXPECT_EQ(layout.num_pages(), 3);
  EXPECT_EQ(layout.PointsOnPage(2).size(), 1u);
}

TEST(Executor, CountsMatchesExactly) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto order = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(order.ok());
  const GridRangeExecutor executor(grid, *order);

  const std::vector<Coord> lo = {2, 3};
  const std::vector<Coord> hi = {5, 6};
  const auto result = executor.Execute(lo, hi);
  EXPECT_EQ(result.matches, 16);
  EXPECT_GE(result.records_scanned, result.matches);
  EXPECT_GT(result.index_nodes_read, 0);
  EXPECT_GT(result.pages_read, 0);
  EXPECT_GT(result.io_cost, 0.0);
}

TEST(Executor, EmptyBox) {
  const GridSpec grid({4, 4});
  const GridRangeExecutor executor(grid, LinearOrder::Identity(16));
  const std::vector<Coord> lo = {3, 3};
  const std::vector<Coord> hi = {1, 1};
  const auto result = executor.Execute(lo, hi);
  EXPECT_EQ(result.matches, 0);
  EXPECT_EQ(result.records_scanned, 0);
  EXPECT_EQ(result.pages_read, 0);
}

TEST(Executor, ClampsToGrid) {
  const GridSpec grid({4, 4});
  const GridRangeExecutor executor(grid, LinearOrder::Identity(16));
  const std::vector<Coord> lo = {-5, -5};
  const std::vector<Coord> hi = {10, 10};
  const auto result = executor.Execute(lo, hi);
  EXPECT_EQ(result.matches, 16);
  EXPECT_EQ(result.records_scanned, 16);
}

TEST(Executor, IdentityOrderScansExactlyTheMatchesOnRowBoxes) {
  // Row-major order + full-width row box => rank interval == matches.
  const GridSpec grid({8, 8});
  const GridRangeExecutor executor(grid, LinearOrder::Identity(64));
  const std::vector<Coord> lo = {2, 0};
  const std::vector<Coord> hi = {4, 7};
  const auto result = executor.Execute(lo, hi);
  EXPECT_EQ(result.matches, 24);
  EXPECT_EQ(result.records_scanned, 24);  // perfectly contiguous
}

TEST(Executor, BetterOrderScansFewerRecords) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto hilbert = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(hilbert.ok());
  // Scrambled order: spreads every box over nearly the full file.
  std::vector<int64_t> scrambled_ranks(64);
  for (int64_t i = 0; i < 64; ++i) {
    scrambled_ranks[static_cast<size_t>(i)] = (i * 37) % 64;
  }
  auto scrambled = LinearOrder::FromRanks(scrambled_ranks);
  ASSERT_TRUE(scrambled.ok());

  const GridRangeExecutor good(grid, *hilbert);
  const GridRangeExecutor bad(grid, *scrambled);
  const std::vector<Coord> lo = {1, 1};
  const std::vector<Coord> hi = {3, 3};
  EXPECT_LT(good.Execute(lo, hi).records_scanned,
            bad.Execute(lo, hi).records_scanned);
}

TEST(Executor, SpectralEndToEnd) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto mapped = (*engine)->Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(mapped.ok());
  GridRangeExecutor::Options options;
  options.page_size = 8;
  const GridRangeExecutor executor(grid, mapped->order, options);
  const std::vector<Coord> lo = {0, 0};
  const std::vector<Coord> hi = {7, 7};
  const auto result = executor.Execute(lo, hi);
  EXPECT_EQ(result.matches, 64);
  EXPECT_EQ(result.records_scanned, 64);
  EXPECT_EQ(result.pages_read, 8);
}

}  // namespace
}  // namespace spectral
