#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "query/executor.h"
#include "storage/layout.h"

namespace spectral {
namespace {

TEST(StorageLayout, PageContents) {
  auto order = LinearOrder::FromRanks({2, 0, 3, 1});  // pts 1,3,0,2 by rank
  ASSERT_TRUE(order.ok());
  const StorageLayout layout(*order, 2);
  EXPECT_EQ(layout.num_pages(), 2);
  const auto page0 = layout.PointsOnPage(0);
  ASSERT_EQ(page0.size(), 2u);
  EXPECT_EQ(page0[0], 1);
  EXPECT_EQ(page0[1], 3);
  EXPECT_EQ(layout.PageOfPoint(0), 1);
  EXPECT_EQ(layout.PageOfPoint(1), 0);
  EXPECT_EQ(layout.PageOfRank(3), 1);
}

TEST(StorageLayout, PartialLastPage) {
  const StorageLayout layout(LinearOrder::Identity(5), 2);
  EXPECT_EQ(layout.num_pages(), 3);
  EXPECT_EQ(layout.PointsOnPage(2).size(), 1u);
}

// Hand-assembled physical design (the pieces BuildQueryPath bundles), for
// tests that need a specific order rather than a registry engine.
struct ManualPath {
  ManualPath(const PointSet& points_in, const LinearOrder& order,
             int64_t page_size = 32)
      : points(points_in),
        layout(order, page_size),
        btree(StaticBPlusTree::BuildRankIndex(order)),
        rtree(PackedRTree::Build(points_in, order)) {}

  QueryExecutor Executor(LruBufferPool* pool = nullptr) const {
    return QueryExecutor(points, layout, btree, rtree, pool);
  }

  const PointSet& points;
  StorageLayout layout;
  StaticBPlusTree btree;
  PackedRTree rtree;
};

TEST(Executor, BTreePlanCountsMatchesExactly) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto path = BuildQueryPath(
      OrderingRequest::ForPoints(std::make_shared<PointSet>(points),
                                 "hilbert"));
  ASSERT_TRUE(path.ok());
  const QueryExecutor executor = path->MakeExecutor(nullptr);

  const std::vector<Coord> lo = {2, 3};
  const std::vector<Coord> hi = {5, 6};
  const auto result = executor.RangeViaBTree(lo, hi);
  EXPECT_EQ(result.matches, 16);
  EXPECT_GE(result.records_scanned, result.matches);
  EXPECT_GT(result.index_nodes_read, 0);
  EXPECT_GT(result.pages_touched, 0);
  EXPECT_EQ(result.page_runs, 1);  // interval plan: one sequential run
  EXPECT_EQ(result.page_io, result.pages_touched);  // no pool = all misses
  EXPECT_GT(result.io_cost, 0.0);
}

TEST(Executor, RTreePlanAgreesWithBTreePlanOnMatches) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto hilbert = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(hilbert.ok());
  const ManualPath path(points, *hilbert, /*page_size=*/8);
  const QueryExecutor executor = path.Executor();

  const std::vector<std::pair<std::vector<Coord>, std::vector<Coord>>> boxes =
      {{{0, 0}, {2, 2}}, {{3, 1}, {7, 4}}, {{7, 7}, {7, 7}},
       {{0, 0}, {7, 7}}};
  for (const auto& [lo, hi] : boxes) {
    const auto a = executor.RangeViaBTree(lo, hi);
    const auto b = executor.RangeViaRTree(lo, hi);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_GE(b.records_scanned, b.matches);
  }
}

TEST(Executor, EmptyBox) {
  const PointSet points = PointSet::FullGrid(GridSpec({4, 4}));
  const ManualPath path(points, LinearOrder::Identity(16));
  const QueryExecutor executor = path.Executor();
  const std::vector<Coord> lo = {3, 3};
  const std::vector<Coord> hi = {1, 1};
  const auto result = executor.RangeViaBTree(lo, hi);
  EXPECT_EQ(result.matches, 0);
  EXPECT_EQ(result.records_scanned, 0);
  EXPECT_EQ(result.pages_touched, 0);
  EXPECT_GT(result.index_nodes_read, 0);  // one wasted descent
}

TEST(Executor, BoxLargerThanExtentMatchesEverything) {
  const PointSet points = PointSet::FullGrid(GridSpec({4, 4}));
  const ManualPath path(points, LinearOrder::Identity(16));
  const QueryExecutor executor = path.Executor();
  const std::vector<Coord> lo = {-5, -5};
  const std::vector<Coord> hi = {10, 10};
  const auto result = executor.RangeViaBTree(lo, hi);
  EXPECT_EQ(result.matches, 16);
  EXPECT_EQ(result.records_scanned, 16);
}

TEST(Executor, IdentityOrderScansExactlyTheMatchesOnRowBoxes) {
  // Row-major order + full-width row box => rank interval == matches.
  const PointSet points = PointSet::FullGrid(GridSpec({8, 8}));
  const ManualPath path(points, LinearOrder::Identity(64));
  const QueryExecutor executor = path.Executor();
  const std::vector<Coord> lo = {2, 0};
  const std::vector<Coord> hi = {4, 7};
  const auto result = executor.RangeViaBTree(lo, hi);
  EXPECT_EQ(result.matches, 24);
  EXPECT_EQ(result.records_scanned, 24);  // perfectly contiguous
}

TEST(Executor, BetterOrderScansFewerRecords) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto hilbert = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(hilbert.ok());
  // Scrambled order: spreads every box over nearly the full file.
  std::vector<int64_t> scrambled_ranks(64);
  for (int64_t i = 0; i < 64; ++i) {
    scrambled_ranks[static_cast<size_t>(i)] = (i * 37) % 64;
  }
  auto scrambled = LinearOrder::FromRanks(scrambled_ranks);
  ASSERT_TRUE(scrambled.ok());

  const ManualPath good(points, *hilbert);
  const ManualPath bad(points, *scrambled);
  const std::vector<Coord> lo = {1, 1};
  const std::vector<Coord> hi = {3, 3};
  EXPECT_LT(good.Executor().RangeViaBTree(lo, hi).records_scanned,
            bad.Executor().RangeViaBTree(lo, hi).records_scanned);
}

TEST(Executor, WarmPoolTurnsRepeatIntoHits) {
  const PointSet points = PointSet::FullGrid(GridSpec({8, 8}));
  const ManualPath path(points, LinearOrder::Identity(64), /*page_size=*/8);
  LruBufferPool pool(64);  // big enough to hold everything
  const QueryExecutor executor = path.Executor(&pool);
  const std::vector<Coord> lo = {0, 0};
  const std::vector<Coord> hi = {7, 7};
  const auto cold = executor.RangeViaBTree(lo, hi);
  EXPECT_EQ(cold.page_io, cold.pages_touched);
  EXPECT_EQ(cold.page_hits, 0);
  const auto warm = executor.RangeViaBTree(lo, hi);
  EXPECT_EQ(warm.page_hits, warm.pages_touched);
  EXPECT_EQ(warm.page_io, 0);
}

TEST(Executor, KnnWindowFindsTrueNeighborsOnIdentityOrder) {
  // Identity (row-major) order on one row: ranks == x coordinates, so the
  // window around a point contains exactly its closest points.
  PointSet points(2);
  for (Coord x = 0; x < 16; ++x) points.Add(std::vector<Coord>{x, 0});
  const ManualPath path(points, LinearOrder::Identity(16), /*page_size=*/4);
  const QueryExecutor executor = path.Executor();
  std::vector<int64_t> neighbors;
  const auto result = executor.KnnViaWindow(/*query_point=*/8, /*k=*/2,
                                            /*window=*/3, &neighbors);
  EXPECT_EQ(result.matches, 2);
  ASSERT_EQ(neighbors.size(), 2u);
  // Points 7 and 9 are at distance 1 (ties by point index).
  EXPECT_EQ(neighbors[0], 7);
  EXPECT_EQ(neighbors[1], 9);
  EXPECT_GT(result.index_nodes_read, 0);
  EXPECT_GT(result.pages_touched, 0);
}

TEST(Executor, SpectralEndToEnd) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  QueryPathOptions options;
  options.page_size = 8;
  auto path = BuildQueryPath(
      OrderingRequest::ForPoints(std::make_shared<PointSet>(points),
                                 "spectral"),
      /*service=*/nullptr, options);
  ASSERT_TRUE(path.ok());
  const QueryExecutor executor = path->MakeExecutor(nullptr);
  const std::vector<Coord> lo = {0, 0};
  const std::vector<Coord> hi = {7, 7};
  const auto result = executor.RangeViaBTree(lo, hi);
  EXPECT_EQ(result.matches, 64);
  EXPECT_EQ(result.records_scanned, 64);
  EXPECT_EQ(result.pages_touched, 8);
  EXPECT_EQ(result.page_runs, 1);
}

TEST(Executor, BuildQueryPathRejectsPointlessRequests) {
  const GridSpec grid({4, 4});
  const PointSet points = PointSet::FullGrid(grid);
  auto graph_request = OrderingRequest::ForGraph(
      std::shared_ptr<const Graph>(), nullptr, "spectral");
  EXPECT_FALSE(BuildQueryPath(graph_request).ok());

  auto empty = std::make_shared<PointSet>(2);
  EXPECT_FALSE(BuildQueryPath(OrderingRequest::ForPoints(empty)).ok());
}

}  // namespace
}  // namespace spectral
