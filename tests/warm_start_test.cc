// Warm-start path property tests (the contract behind the solver
// overhaul): across every bench workload, the warm-started multilevel
// solve and the cold block solve produce the *identical* final order; a
// deliberately garbage warm start still converges to the same answer; and
// the eigen/warm_start.h unit honors its invariants (kernel-orthogonal
// block, disconnection detection through the hierarchy).

#include <algorithm>
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/mapping_service.h"
#include "core/ordering_request.h"
#include "eigen/fiedler.h"
#include "eigen/warm_start.h"
#include "graph/coarsening.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "graph/point_graph.h"
#include "space/point_set.h"
#include "util/random.h"
#include "workload/generators.h"

namespace spectral {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

PointSet LexSorted(const PointSet& in) {
  std::vector<std::vector<Coord>> rows;
  rows.reserve(static_cast<size_t>(in.size()));
  for (int64_t i = 0; i < in.size(); ++i) {
    rows.emplace_back(in[i].begin(), in[i].end());
  }
  std::sort(rows.begin(), rows.end());
  PointSet out(in.dims());
  for (const auto& row : rows) out.Add(row);
  return out;
}

// The bench workloads of bench_ordering_engines (grid64x64 is the
// degenerate square; the other two have a dominant direction).
struct Workload {
  std::string name;
  PointSet points{2};
  SpectralLpmOptions spectral;
};

std::vector<Workload> BenchWorkloads() {
  std::vector<Workload> workloads;
  {
    Workload w;
    w.name = "grid64x64";
    w.points = PointSet::FullGrid(GridSpec::Uniform(2, 64));
    w.spectral.fiedler.num_pairs = 3;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "grid128x32";
    w.points = PointSet::FullGrid(GridSpec({128, 32}));
    w.spectral.fiedler.num_pairs = 3;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "kernelblob300x30";
    Rng rng(12345);
    w.points = LexSorted(SampleConnectedBlob(GridSpec({300, 30}), 5000, rng));
    w.spectral.fiedler.num_pairs = 3;
    w.spectral.graph.radius = 2;
    w.spectral.graph.kernel = WeightKernel::kGaussian;
    w.spectral.graph.gaussian_sigma = 1.5;
    workloads.push_back(std::move(w));
  }
  return workloads;
}

TEST(WarmStart, WarmAndColdOrdersAreIdenticalOnBenchWorkloads) {
  MappingService service;
  for (const Workload& w : BenchWorkloads()) {
    OrderingRequest cold = OrderingRequest::ForPoints(w.points);
    cold.options.spectral = w.spectral;
    cold.options.spectral.warm_start_threshold = 0;  // cold block solve
    OrderingRequest warm = OrderingRequest::ForPoints(w.points);
    warm.options.spectral = w.spectral;  // default: warm-started multilevel

    auto cold_result = service.Order(cold);
    auto warm_result = service.Order(warm);
    ASSERT_TRUE(cold_result.ok()) << w.name << ": " << cold_result.status();
    ASSERT_TRUE(warm_result.ok()) << w.name << ": " << warm_result.status();
    EXPECT_EQ(cold_result->method, "block-lanczos") << w.name;
    EXPECT_NE(warm_result->method.find("block-lanczos+warm"),
              std::string::npos)
        << w.name << ": " << warm_result->method;
    EXPECT_EQ(Ranks(cold_result->order), Ranks(warm_result->order))
        << w.name << ": warm-started and cold orders diverged";
    EXPECT_NEAR(cold_result->lambda2, warm_result->lambda2,
                1e-9 * std::max(1.0, cold_result->lambda2))
        << w.name;
  }
}

TEST(WarmStart, GarbageWarmStartConvergesToTheSameFiedlerVector) {
  // Feed ComputeFiedler a deliberately useless warm start (the deflated
  // ones direction, an alternating high-frequency vector, and a zero
  // vector): the solve must fall back cleanly and produce the same
  // canonicalized vector as the cold solve.
  const GridSpec grid({48, 24});
  const SparseMatrix lap = BuildLaplacian(BuildGridGraph(grid));
  const auto axes = PointSet::FullGrid(grid).CenteredAxisFunctions();
  const int64_t n = lap.rows();

  FiedlerOptions options;
  options.method = FiedlerMethod::kBlockLanczos;
  options.num_pairs = 3;

  VectorBlock garbage;
  garbage.emplace_back(static_cast<size_t>(n), 1.0);  // deflated kernel
  garbage.emplace_back(static_cast<size_t>(n), 0.0);  // zero column
  Vector alternating(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    alternating[static_cast<size_t>(i)] = (i % 2 == 0) ? 1.0 : -1.0;
  }
  garbage.push_back(std::move(alternating));

  auto cold = ComputeFiedler(lap, options, axes);
  auto warm = ComputeFiedler(lap, options, axes, &garbage);
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_NEAR(warm->lambda2, cold->lambda2, 1e-10);
  ASSERT_EQ(warm->fiedler.size(), cold->fiedler.size());
  for (size_t i = 0; i < warm->fiedler.size(); ++i) {
    EXPECT_NEAR(warm->fiedler[i], cold->fiedler[i], 1e-7);
  }
}

TEST(WarmStart, BlockIsKernelOrthogonalAndAccurate) {
  const Graph g = BuildGridGraph(GridSpec({40, 20}));
  const CoarseningHierarchy hierarchy = BuildCoarseningHierarchy(g, {});
  ASSERT_FALSE(hierarchy.steps.empty());
  std::vector<WarmStartLevel> levels(hierarchy.steps.size() + 1);
  levels[0].laplacian = BuildLaplacian(g);
  for (size_t k = 0; k < hierarchy.steps.size(); ++k) {
    levels[k].fine_to_coarse = hierarchy.steps[k].fine_to_coarse;
    levels[k + 1].laplacian = BuildLaplacian(hierarchy.steps[k].coarse);
  }
  WarmStartOptions options;
  options.num_vectors = 3;
  auto warm = MultilevelFiedlerWarmStart(levels, options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_EQ(warm->block.size(), 3u);
  EXPECT_EQ(warm->levels, static_cast<int>(levels.size()));
  EXPECT_GT(warm->matvecs, 0);

  const int64_t n = g.num_vertices();
  Vector lv(static_cast<size_t>(n));
  for (const Vector& column : warm->block) {
    EXPECT_NEAR(Norm2(column), 1.0, 1e-10);
    EXPECT_NEAR(Sum(column), 0.0, 1e-8);  // orthogonal to the kernel
    // Near-eigenvector: the Rayleigh residual must be far below the
    // spectral radius (it only needs to be a good start, not converged).
    levels[0].laplacian.MatVec(column, lv);
    const double rho = Dot(column, lv);
    Axpy(-rho, column, lv);
    EXPECT_LT(Norm2(lv), 0.05) << "smoothed column is not a usable start";
  }
}

TEST(WarmStart, DetectsDisconnectionThroughTheHierarchy) {
  // Two disjoint 12x12 islands: coarsening preserves components, so the
  // coarsest dense solve must report the second zero eigenvalue.
  std::vector<GraphEdge> edges;
  const Graph island = BuildGridGraph(GridSpec({12, 12}));
  const int64_t m = island.num_vertices();
  island.ForEachEdge([&](int64_t u, int64_t v, double w) {
    edges.push_back({u, v, w});
    edges.push_back({u + m, v + m, w});
  });
  const Graph two = Graph::FromEdges(2 * m, edges);
  const CoarseningHierarchy hierarchy = BuildCoarseningHierarchy(two, {});
  std::vector<WarmStartLevel> levels(hierarchy.steps.size() + 1);
  levels[0].laplacian = BuildLaplacian(two);
  for (size_t k = 0; k < hierarchy.steps.size(); ++k) {
    levels[k].fine_to_coarse = hierarchy.steps[k].fine_to_coarse;
    levels[k + 1].laplacian = BuildLaplacian(hierarchy.steps[k].coarse);
  }
  auto warm = MultilevelFiedlerWarmStart(levels, {});
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WarmStart, StalledCoarseningFallsBackToColdCoarsestSolve) {
  // A 600-vertex star stalls heavy-edge matching immediately (only the hub
  // can match), so the hierarchy has zero steps and the "coarsest" level
  // is the 600-vertex input — above dense_limit, which routes into the
  // cold loose block-solve fallback. That path must work even with the
  // default level_max_restarts == 0 (regression: it used to CHECK-fail on
  // a zero restart budget).
  const int64_t n = 600;
  std::vector<GraphEdge> edges;
  for (int64_t leaf = 1; leaf < n; ++leaf) edges.push_back({0, leaf, 1.0});
  const Graph star = Graph::FromEdges(n, edges);
  const CoarseningHierarchy hierarchy = BuildCoarseningHierarchy(star, {});
  EXPECT_TRUE(hierarchy.steps.empty());
  std::vector<WarmStartLevel> levels(1);
  levels[0].laplacian = BuildLaplacian(star);
  WarmStartOptions options;
  options.num_vectors = 2;
  auto warm = MultilevelFiedlerWarmStart(levels, options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_FALSE(warm->block.empty());
  // Star lambda2 = 1: the fallback block must be a usable approximation.
  Vector lv(static_cast<size_t>(n));
  levels[0].laplacian.MatVec(warm->block[0], lv);
  const double rho = Dot(warm->block[0], lv);
  EXPECT_NEAR(rho, 1.0, 0.05);
}

TEST(WarmStart, HierarchySharedWithMultilevelEngineStopsAtCoarsestSize) {
  const Graph g = BuildGridGraph(GridSpec({32, 32}));
  CoarseningOptions options;
  options.coarsest_size = 64;
  const CoarseningHierarchy hierarchy = BuildCoarseningHierarchy(g, options);
  ASSERT_FALSE(hierarchy.steps.empty());
  EXPECT_LE(hierarchy.coarsest_size(g.num_vertices()), 64);
  // Each step at least halves-ish the level (heavy-edge matching bound).
  int64_t previous = g.num_vertices();
  for (const Coarsening& step : hierarchy.steps) {
    EXPECT_GE(step.num_coarse, (previous + 1) / 2);
    EXPECT_LT(step.num_coarse, previous);
    previous = step.num_coarse;
  }
}

}  // namespace
}  // namespace spectral
