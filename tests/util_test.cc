#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "util/bit_ops.h"
#include "util/csv_writer.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace spectral {
namespace {

TEST(BitOps, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(BitOps, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 40), 40);
}

TEST(BitOps, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(8), 3);
}

TEST(BitOps, GrayCodeRoundTrip) {
  for (uint64_t x = 0; x < 1024; ++x) {
    EXPECT_EQ(GrayDecode(GrayEncode(x)), x);
  }
  EXPECT_EQ(GrayDecode(GrayEncode(0xDEADBEEFCAFEull)), 0xDEADBEEFCAFEull);
}

TEST(BitOps, GrayCodeAdjacencyProperty) {
  // Consecutive Gray codes differ in exactly one bit.
  for (uint64_t x = 0; x + 1 < 4096; ++x) {
    const uint64_t diff = GrayEncode(x) ^ GrayEncode(x + 1);
    EXPECT_TRUE(IsPowerOfTwo(diff)) << "x=" << x;
  }
}

TEST(BitOps, InterleaveRoundTrip2D) {
  uint32_t coords[2];
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      coords[0] = x;
      coords[1] = y;
      const uint64_t code = InterleaveBits(coords, 4);
      uint32_t out[2] = {0, 0};
      DeinterleaveBits(code, 4, out);
      EXPECT_EQ(out[0], x);
      EXPECT_EQ(out[1], y);
    }
  }
}

TEST(BitOps, InterleaveIsBijective3D) {
  std::set<uint64_t> codes;
  uint32_t coords[3];
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      for (uint32_t z = 0; z < 8; ++z) {
        coords[0] = x;
        coords[1] = y;
        coords[2] = z;
        codes.insert(InterleaveBits(coords, 3));
      }
    }
  }
  EXPECT_EQ(codes.size(), 512u);
  EXPECT_EQ(*codes.rbegin(), 511u);
}

TEST(BitOps, RotateLeftBits) {
  EXPECT_EQ(RotateLeftBits(0b001, 1, 3), 0b010u);
  EXPECT_EQ(RotateLeftBits(0b100, 1, 3), 0b001u);
  EXPECT_EQ(RotateLeftBits(0b101, 2, 3), 0b110u);
  EXPECT_EQ(RotateLeftBits(0xF, 4, 4), 0xFu);  // full rotation
}

TEST(BitOps, RotateRightInvertsRotateLeft) {
  for (uint64_t x = 0; x < 32; ++x) {
    for (int amount = 0; amount < 5; ++amount) {
      EXPECT_EQ(RotateRightBits(RotateLeftBits(x, amount, 5), amount, 5), x);
    }
  }
}

TEST(Random, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Random, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Random, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Random, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Random, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(OkStatus().ok());
  const Status bad = InvalidArgumentError("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.message(), "nope");
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: nope");
}

TEST(Status, StatusOrHoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(Status, StatusOrHoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StringUtil, StrJoin) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"a"}, ","), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtil, StrSplit) {
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.25, 4), "3.25");
  EXPECT_EQ(FormatDouble(14.0, 2), "14");
  EXPECT_EQ(FormatDouble(0.002, 4), "0.002");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(Hasher, ContentDecidesTheFingerprint) {
  // Same mix sequence -> same fingerprint; any difference moves it.
  const Fingerprint128 a =
      Hasher().MixInt(7).MixDouble(1.5).MixString("abc").Finish();
  const Fingerprint128 b =
      Hasher().MixInt(7).MixDouble(1.5).MixString("abc").Finish();
  EXPECT_EQ(a, b);
  EXPECT_NE(Hasher().MixInt(8).MixDouble(1.5).MixString("abc").Finish(), a);
  EXPECT_NE(Hasher().MixInt(7).MixDouble(1.5).MixString("abd").Finish(), a);
  EXPECT_NE(Hasher().MixInt(7).MixDouble(1.5).Finish(), a);
}

TEST(Hasher, FieldsDoNotAliasAcrossBoundaries) {
  // Length prefixes and position tags keep adjacent fields apart.
  EXPECT_NE(Hasher().MixString("ab").MixString("c").Finish(),
            Hasher().MixString("a").MixString("bc").Finish());
  EXPECT_NE(Hasher().MixInt(0).MixInt(1).Finish(),
            Hasher().MixInt(1).MixInt(0).Finish());
  EXPECT_NE(Hasher().MixUint(0).Finish(), Hasher().Finish());
  EXPECT_NE(Hasher().MixBool(true).Finish(), Hasher().MixBool(false).Finish());
}

TEST(Fingerprint128, HexRoundTripIsStable) {
  const Fingerprint128 fp = Hasher().MixString("spectral").Finish();
  EXPECT_EQ(fp.ToHex().size(), 32u);
  EXPECT_EQ(fp.ToHex(), fp.ToHex());
  EXPECT_NE(fp.ToHex(), Fingerprint128{}.ToHex());
  EXPECT_EQ(Fingerprint128{}.ToHex(), std::string(32, '0'));
}

TEST(CsvWriter, WritesQuotedFields) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "spectral_csv_test.csv")
          .string();
  {
    CsvWriter csv;
    ASSERT_TRUE(csv.Open(path).ok());
    csv.WriteRow({"a", "b,c", "d\"e"});
    csv.Close();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,\"b,c\",\"d\"\"e\"");
  std::filesystem::remove(path);
}

TEST(CsvWriter, SilentWhenNotOpen) {
  CsvWriter csv;
  csv.WriteRow({"ignored"});  // must not crash
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table;
  table.SetHeader({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

}  // namespace
}  // namespace spectral
