// Space-filling-curve tests: bijectivity sweeps (parameterized over curve
// family, dimension, and side), continuity properties for the continuous
// curves, and exact small-case orders.

#include <limits>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sfc/curve_registry.h"
#include "sfc/snake.h"
#include "sfc/sweep.h"
#include "space/grid.h"

namespace spectral {
namespace {

using CurveCase = std::tuple<CurveKind, int /*dims*/, Coord /*side*/>;

class CurveBijectivityTest : public ::testing::TestWithParam<CurveCase> {};

TEST_P(CurveBijectivityTest, IndexOfIsBijective) {
  const auto [kind, dims, side] = GetParam();
  const GridSpec grid = GridSpec::Uniform(dims, side);
  auto curve = MakeCurve(kind, grid);
  ASSERT_TRUE(curve.ok()) << curve.status();

  std::set<uint64_t> seen;
  std::vector<Coord> p(static_cast<size_t>(dims));
  for (int64_t cell = 0; cell < grid.NumCells(); ++cell) {
    grid.Unflatten(cell, p);
    const uint64_t index = (*curve)->IndexOf(p);
    EXPECT_LT(index, static_cast<uint64_t>(grid.NumCells()));
    EXPECT_TRUE(seen.insert(index).second) << "duplicate index " << index;
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), grid.NumCells());
}

TEST_P(CurveBijectivityTest, PointOfInvertsIndexOf) {
  const auto [kind, dims, side] = GetParam();
  const GridSpec grid = GridSpec::Uniform(dims, side);
  auto curve = MakeCurve(kind, grid);
  ASSERT_TRUE(curve.ok()) << curve.status();

  std::vector<Coord> p(static_cast<size_t>(dims));
  std::vector<Coord> q(static_cast<size_t>(dims));
  for (int64_t cell = 0; cell < grid.NumCells(); ++cell) {
    grid.Unflatten(cell, p);
    const uint64_t index = (*curve)->IndexOf(p);
    (*curve)->PointOf(index, q);
    EXPECT_EQ(p, q) << "cell " << cell;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PowerOfTwoCurves, CurveBijectivityTest,
    ::testing::Combine(::testing::Values(CurveKind::kZOrder, CurveKind::kGray,
                                         CurveKind::kHilbert),
                       ::testing::Values(1, 2, 3, 4),
                       ::testing::Values<Coord>(2, 4, 8)),
    [](const ::testing::TestParamInfo<CurveCase>& info) {
      return std::string(CurveKindName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    AnyGridCurves, CurveBijectivityTest,
    ::testing::Combine(::testing::Values(CurveKind::kSweep, CurveKind::kSnake),
                       ::testing::Values(1, 2, 3, 4),
                       ::testing::Values<Coord>(2, 3, 5)),
    [](const ::testing::TestParamInfo<CurveCase>& info) {
      return std::string(CurveKindName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    PeanoCurves, CurveBijectivityTest,
    ::testing::Combine(::testing::Values(CurveKind::kPeano),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values<Coord>(3, 9)),
    [](const ::testing::TestParamInfo<CurveCase>& info) {
      return std::string(CurveKindName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// Continuity: Hilbert, Peano, and Snake visit grid neighbors consecutively.
class CurveContinuityTest : public ::testing::TestWithParam<CurveCase> {};

TEST_P(CurveContinuityTest, ConsecutivePositionsAreGridNeighbors) {
  const auto [kind, dims, side] = GetParam();
  const GridSpec grid = GridSpec::Uniform(dims, side);
  auto curve = MakeCurve(kind, grid);
  ASSERT_TRUE(curve.ok()) << curve.status();

  std::vector<Coord> prev(static_cast<size_t>(dims));
  std::vector<Coord> next(static_cast<size_t>(dims));
  (*curve)->PointOf(0, prev);
  for (int64_t i = 1; i < grid.NumCells(); ++i) {
    (*curve)->PointOf(static_cast<uint64_t>(i), next);
    EXPECT_EQ(ManhattanDistance(prev, next), 1) << "step " << i;
    prev = next;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Continuous, CurveContinuityTest,
    ::testing::Values(CurveCase{CurveKind::kHilbert, 2, 8},
                      CurveCase{CurveKind::kHilbert, 3, 4},
                      CurveCase{CurveKind::kHilbert, 4, 4},
                      CurveCase{CurveKind::kHilbert, 5, 2},
                      CurveCase{CurveKind::kPeano, 2, 9},
                      CurveCase{CurveKind::kPeano, 3, 9},
                      CurveCase{CurveKind::kPeano, 4, 3},
                      CurveCase{CurveKind::kSnake, 2, 7},
                      CurveCase{CurveKind::kSnake, 3, 4}),
    [](const ::testing::TestParamInfo<CurveCase>& info) {
      return std::string(CurveKindName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Sweep, MatchesFlatten) {
  const GridSpec grid({3, 4});
  SweepCurve sweep{grid};
  std::vector<Coord> p(2);
  for (int64_t cell = 0; cell < grid.NumCells(); ++cell) {
    grid.Unflatten(cell, p);
    EXPECT_EQ(sweep.IndexOf(p), static_cast<uint64_t>(cell));
  }
}

TEST(Snake, KnownOrder2x3) {
  // Rows alternate direction: (0,0) (0,1) (0,2) (1,2) (1,1) (1,0).
  SnakeCurve snake{GridSpec({2, 3})};
  const std::vector<std::vector<Coord>> expected = {
      {0, 0}, {0, 1}, {0, 2}, {1, 2}, {1, 1}, {1, 0}};
  std::vector<Coord> p(2);
  for (size_t i = 0; i < expected.size(); ++i) {
    snake.PointOf(i, p);
    EXPECT_EQ(p, expected[i]) << "position " << i;
  }
}

TEST(ZOrder, KnownOrder4x4FirstQuadrant) {
  // With axis 0 major, the first four positions fill the 2x2 block in
  // "Z" order: (0,0) (0,1) (1,0) (1,1).
  const GridSpec grid = GridSpec::Uniform(2, 4);
  auto curve = MakeCurve(CurveKind::kZOrder, grid);
  ASSERT_TRUE(curve.ok());
  const std::vector<std::vector<Coord>> expected = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<Coord> p(2);
  for (size_t i = 0; i < expected.size(); ++i) {
    (*curve)->PointOf(i, p);
    EXPECT_EQ(p, expected[i]) << "position " << i;
  }
}

TEST(ZOrder, QuadrantLocality) {
  // All positions 0..3 in one quadrant of the 4x4, 4..7 in the next, etc.
  const GridSpec grid = GridSpec::Uniform(2, 4);
  auto curve = MakeCurve(CurveKind::kZOrder, grid);
  ASSERT_TRUE(curve.ok());
  std::vector<Coord> p(2);
  for (uint64_t i = 0; i < 16; ++i) {
    (*curve)->PointOf(i, p);
    const int quadrant = static_cast<int>(i / 4);
    EXPECT_EQ((p[0] / 2) * 2 + (p[1] / 2), quadrant);
  }
}

TEST(Gray, ConsecutiveDifferInOneInterleavedBit) {
  const GridSpec grid = GridSpec::Uniform(2, 8);
  auto curve = MakeCurve(CurveKind::kGray, grid);
  ASSERT_TRUE(curve.ok());
  std::vector<Coord> prev(2), next(2);
  (*curve)->PointOf(0, prev);
  for (uint64_t i = 1; i < 64; ++i) {
    (*curve)->PointOf(i, next);
    // Exactly one coordinate changes, and the change is a power of two.
    int changed = 0;
    for (int a = 0; a < 2; ++a) {
      const int delta = std::abs(next[static_cast<size_t>(a)] -
                                 prev[static_cast<size_t>(a)]);
      if (delta != 0) {
        ++changed;
        EXPECT_TRUE(delta == 1 || delta == 2 || delta == 4) << "step " << i;
      }
    }
    EXPECT_EQ(changed, 1) << "step " << i;
    prev = next;
  }
}

TEST(Hilbert, KnownOrder2x2) {
  // The 2x2 Hilbert curve is a U: each step is a grid neighbor and all
  // cells are covered (orientation is implementation-defined).
  const GridSpec grid = GridSpec::Uniform(2, 2);
  auto curve = MakeCurve(CurveKind::kHilbert, grid);
  ASSERT_TRUE(curve.ok());
  std::vector<Coord> prev(2), next(2);
  (*curve)->PointOf(0, prev);
  for (uint64_t i = 1; i < 4; ++i) {
    (*curve)->PointOf(i, next);
    EXPECT_EQ(ManhattanDistance(prev, next), 1);
    prev = next;
  }
}

TEST(Hilbert, StartsAtOrigin) {
  const GridSpec grid = GridSpec::Uniform(2, 8);
  auto curve = MakeCurve(CurveKind::kHilbert, grid);
  ASSERT_TRUE(curve.ok());
  std::vector<Coord> p(2);
  (*curve)->PointOf(0, p);
  EXPECT_EQ(p, (std::vector<Coord>{0, 0}));
}

TEST(Peano, KnownOrder3x3) {
  // First column up, second down, third up (axis-0-major serpentine).
  const GridSpec grid = GridSpec::Uniform(2, 3);
  auto curve = MakeCurve(CurveKind::kPeano, grid);
  ASSERT_TRUE(curve.ok());
  const std::vector<std::vector<Coord>> expected = {
      {0, 0}, {0, 1}, {0, 2}, {1, 2}, {1, 1}, {1, 0}, {2, 0}, {2, 1}, {2, 2}};
  std::vector<Coord> p(2);
  for (size_t i = 0; i < expected.size(); ++i) {
    (*curve)->PointOf(i, p);
    EXPECT_EQ(p, expected[i]) << "position " << i;
  }
}

// Rectangular-grid regression (spiral used to demand a square, peano a
// hyper-cube): both families now take per-axis sides and must stay
// bijective, inverse-consistent, and continuous on rectangles.
class RectangularCurveTest
    : public ::testing::TestWithParam<
          std::tuple<CurveKind, std::vector<Coord>>> {};

TEST_P(RectangularCurveTest, BijectiveInverseAndContinuousOnRectangles) {
  const auto& [kind, sides] = GetParam();
  const GridSpec grid(sides);
  auto curve = MakeCurve(kind, grid);
  ASSERT_TRUE(curve.ok()) << curve.status();

  std::set<uint64_t> seen;
  std::vector<Coord> p(sides.size());
  std::vector<Coord> q(sides.size());
  for (int64_t cell = 0; cell < grid.NumCells(); ++cell) {
    grid.Unflatten(cell, p);
    const uint64_t index = (*curve)->IndexOf(p);
    ASSERT_LT(index, static_cast<uint64_t>(grid.NumCells()));
    ASSERT_TRUE(seen.insert(index).second) << "duplicate index " << index;
    (*curve)->PointOf(index, q);
    ASSERT_EQ(p, q) << "cell " << cell;
  }

  std::vector<Coord> prev(sides.size());
  (*curve)->PointOf(0, prev);
  for (int64_t i = 1; i < grid.NumCells(); ++i) {
    (*curve)->PointOf(static_cast<uint64_t>(i), q);
    ASSERT_EQ(ManhattanDistance(prev, q), 1) << "step " << i;
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rectangles, RectangularCurveTest,
    ::testing::Values(
        std::tuple{CurveKind::kSpiral, std::vector<Coord>{3, 5}},
        std::tuple{CurveKind::kSpiral, std::vector<Coord>{5, 2}},
        std::tuple{CurveKind::kSpiral, std::vector<Coord>{1, 7}},
        std::tuple{CurveKind::kSpiral, std::vector<Coord>{6, 4}},
        std::tuple{CurveKind::kPeano, std::vector<Coord>{27, 9}},
        std::tuple{CurveKind::kPeano, std::vector<Coord>{3, 9}},
        std::tuple{CurveKind::kPeano, std::vector<Coord>{9, 1}},
        std::tuple{CurveKind::kPeano, std::vector<Coord>{9, 3, 3}}),
    [](const ::testing::TestParamInfo<
        std::tuple<CurveKind, std::vector<Coord>>>& info) {
      std::string name(CurveKindName(std::get<0>(info.param)));
      for (Coord side : std::get<1>(info.param)) {
        name += "_";
        name += std::to_string(side);
      }
      return name;
    });

TEST(Peano, RectangleLeadingDigitsSweepSuperBlocks) {
  // On a 9x3 grid the extra axis-0 digit sweeps three 3x3 blocks: the
  // curve must fill rows 0..2 completely before visiting row 3.
  const GridSpec grid({9, 3});
  auto curve = MakeCurve(CurveKind::kPeano, grid);
  ASSERT_TRUE(curve.ok());
  std::vector<Coord> p(2);
  for (uint64_t i = 0; i < 9; ++i) {
    (*curve)->PointOf(i, p);
    EXPECT_LT(p[0], 3) << "position " << i;
  }
  (*curve)->PointOf(9, p);
  EXPECT_EQ(p[0], 3);
}

TEST(Registry, NamesRoundTrip) {
  for (CurveKind kind : AllCurveKinds()) {
    auto parsed = CurveKindFromName(CurveKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(CurveKindFromName("nonsense").ok());
}

TEST(Registry, ShapeValidation) {
  EXPECT_FALSE(MakeCurve(CurveKind::kHilbert, GridSpec({4, 8})).ok());
  EXPECT_FALSE(MakeCurve(CurveKind::kHilbert, GridSpec::Uniform(2, 6)).ok());
  EXPECT_FALSE(MakeCurve(CurveKind::kPeano, GridSpec::Uniform(2, 4)).ok());
  EXPECT_TRUE(MakeCurve(CurveKind::kPeano, GridSpec::Uniform(2, 27)).ok());
  EXPECT_TRUE(MakeCurve(CurveKind::kPeano, GridSpec({27, 9})).ok());
  EXPECT_FALSE(MakeCurve(CurveKind::kPeano, GridSpec({27, 10})).ok());
  EXPECT_TRUE(MakeCurve(CurveKind::kSpiral, GridSpec({4, 9})).ok());
  EXPECT_FALSE(MakeCurve(CurveKind::kSpiral, GridSpec({4, 9, 2})).ok());
  EXPECT_TRUE(MakeCurve(CurveKind::kSweep, GridSpec({4, 6, 5})).ok());
}

TEST(Registry, EnclosingGrid) {
  EXPECT_EQ(EnclosingGridFor(CurveKind::kHilbert, 2, 6)->side(0), 8);
  EXPECT_EQ(EnclosingGridFor(CurveKind::kPeano, 2, 6)->side(0), 9);
  EXPECT_EQ(EnclosingGridFor(CurveKind::kSweep, 2, 6)->side(0), 6);
  EXPECT_EQ(EnclosingGridFor(CurveKind::kZOrder, 3, 8)->side(0), 8);
}

TEST(Registry, EnclosingGridForExtentsKeepsRectanglesTight) {
  // The exact families take rectangular extents verbatim.
  const std::vector<Coord> rect = {3, 100};
  auto sweep = EnclosingGridForExtents(CurveKind::kSweep, rect);
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->sides(), rect);
  auto spiral = EnclosingGridForExtents(CurveKind::kSpiral, rect);
  ASSERT_TRUE(spiral.ok());
  EXPECT_EQ(spiral->sides(), rect);

  // Peano pads per axis (regression: it used to pad both axes to the
  // hyper-cube of the largest extent, 243x243 here).
  auto peano = EnclosingGridForExtents(CurveKind::kPeano,
                                       std::vector<Coord>{10, 100});
  ASSERT_TRUE(peano.ok());
  EXPECT_EQ(peano->sides(), (std::vector<Coord>{27, 243}));

  // The power-of-two families still need a hyper-cube.
  auto hilbert = EnclosingGridForExtents(CurveKind::kHilbert,
                                         std::vector<Coord>{3, 10});
  ASSERT_TRUE(hilbert.ok());
  EXPECT_EQ(hilbert->sides(), (std::vector<Coord>{16, 16}));

  // Spiral on non-2-d data is a clear error instead of a downstream
  // construction failure.
  auto bad = EnclosingGridForExtents(CurveKind::kSpiral,
                                     std::vector<Coord>{3, 4, 5});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Registry, EnclosingGridRejectsCoordinateOverflow) {
  // Regression for the 2^31 boundary: rounding an extent just past 2^30 up
  // to the next power of two lands on 2^31, which is not representable as a
  // Coord (int32). This used to wrap silently; now it is a Status.
  const Coord just_past = (Coord{1} << 30) + 1;
  auto grid = EnclosingGridFor(CurveKind::kHilbert, 2, just_past);
  ASSERT_FALSE(grid.ok());
  EXPECT_EQ(grid.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(EnclosingGridFor(CurveKind::kZOrder, 1, just_past).ok());
  EXPECT_FALSE(EnclosingGridFor(CurveKind::kGray, 3, just_past).ok());
  // Peano rounds past 2^31 even earlier (3^20 > 2^31).
  const Coord max_extent = std::numeric_limits<Coord>::max();
  EXPECT_FALSE(EnclosingGridFor(CurveKind::kPeano, 2, max_extent).ok());
  // The exact families accept the full Coord range per axis in 1-d.
  auto sweep = EnclosingGridFor(CurveKind::kSweep, 1, max_extent);
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->side(0), max_extent);
}

TEST(Registry, EnclosingGridRejectsIndexWidthOverflow) {
  // Cell count must fit the 64-bit index: 4 dims x 2^30 sides = 120 bits.
  const Coord big = Coord{1} << 30;
  EXPECT_FALSE(EnclosingGridFor(CurveKind::kZOrder, 4, big).ok());
  EXPECT_FALSE(EnclosingGridFor(CurveKind::kSweep, 3, big).ok());
  // 2 dims x 2^30 = 60 bits still fits.
  auto ok_grid = EnclosingGridFor(CurveKind::kZOrder, 2, big);
  ASSERT_TRUE(ok_grid.ok());
  EXPECT_EQ(ok_grid->side(0), big);
}

TEST(Registry, IndexWidthLimits) {
  // A grid whose cell count overflows int64 is a programmer error caught at
  // GridSpec construction (before any curve-level check can run).
  EXPECT_DEATH(GridSpec::Uniform(5, 65536), "overflows");
  // Near the limit everything still works: 3 dims x 20 bits = 60 bits.
  EXPECT_TRUE(
      MakeCurve(CurveKind::kHilbert, GridSpec::Uniform(3, 1 << 20)).ok());
}

}  // namespace
}  // namespace spectral
