#include <vector>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "space/point_set.h"

namespace spectral {
namespace {

TEST(CurveOrder, FullGridSweepIsIdentity) {
  const PointSet points = PointSet::FullGrid(GridSpec({4, 5}));
  auto order = OrderByCurve(points, CurveKind::kSweep);
  ASSERT_TRUE(order.ok());
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(order->RankOf(i), i);
  }
}

TEST(CurveOrder, FullPowerOfTwoGridMatchesCurvePositions) {
  const GridSpec grid = GridSpec::Uniform(2, 8);
  const PointSet points = PointSet::FullGrid(grid);
  auto curve = MakeCurve(CurveKind::kHilbert, grid);
  ASSERT_TRUE(curve.ok());
  auto order = OrderByCurve(points, CurveKind::kHilbert);
  ASSERT_TRUE(order.ok());
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(order->RankOf(i),
              static_cast<int64_t>((*curve)->IndexOf(points[i])));
  }
}

TEST(CurveOrder, TranslationInvariant) {
  // Shifting all points by a constant must not change the order.
  PointSet base(2), shifted(2);
  const std::vector<std::vector<Coord>> raw = {
      {0, 0}, {1, 2}, {3, 1}, {2, 3}, {0, 3}};
  for (const auto& p : raw) {
    base.Add(p);
    shifted.Add(std::vector<Coord>{static_cast<Coord>(p[0] - 7),
                                   static_cast<Coord>(p[1] + 11)});
  }
  for (CurveKind kind : AllCurveKinds()) {
    auto a = OrderByCurve(base, kind);
    auto b = OrderByCurve(shifted, kind);
    ASSERT_TRUE(a.ok()) << CurveKindName(kind);
    ASSERT_TRUE(b.ok()) << CurveKindName(kind);
    for (int64_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(a->RankOf(i), b->RankOf(i)) << CurveKindName(kind);
    }
  }
}

TEST(CurveOrder, NonPowerOfTwoExtentUsesEnclosingGrid) {
  // A 6x6 grid needs an 8x8 Hilbert curve; the restriction is still a
  // valid permutation of the 36 points.
  const PointSet points = PointSet::FullGrid(GridSpec({6, 6}));
  for (CurveKind kind : AllCurveKinds()) {
    auto order = OrderByCurve(points, kind);
    ASSERT_TRUE(order.ok()) << CurveKindName(kind);
    std::vector<bool> seen(36, false);
    for (int64_t i = 0; i < 36; ++i) {
      const int64_t r = order->RankOf(i);
      ASSERT_GE(r, 0);
      ASSERT_LT(r, 36);
      EXPECT_FALSE(seen[static_cast<size_t>(r)]);
      seen[static_cast<size_t>(r)] = true;
    }
  }
}

TEST(CurveOrder, RectangularDataUsesTightGridsForSpiralAndPeano) {
  // Regression: a 3x12 rectangle used to pad spiral to a 12x12 square and
  // peano to a 27x27 hyper-cube. Both now get per-axis grids (exact for
  // spiral, per-axis power of three for peano) and the orders stay full
  // permutations of the input.
  const PointSet points = PointSet::FullGrid(GridSpec({3, 12}));

  GridSpec spiral_grid = GridSpec::Uniform(1, 1);
  auto spiral = OrderByCurve(points, CurveKind::kSpiral, &spiral_grid);
  ASSERT_TRUE(spiral.ok()) << spiral.status();
  EXPECT_EQ(spiral_grid.sides(), (std::vector<Coord>{3, 12}));
  EXPECT_EQ(spiral->size(), points.size());

  GridSpec peano_grid = GridSpec::Uniform(1, 1);
  auto peano = OrderByCurve(points, CurveKind::kPeano, &peano_grid);
  ASSERT_TRUE(peano.ok()) << peano.status();
  EXPECT_EQ(peano_grid.sides(), (std::vector<Coord>{3, 27}));
  EXPECT_EQ(peano->size(), points.size());

  // Spiral on 3-d data reports a clear error.
  const PointSet cube = PointSet::FullGrid(GridSpec({2, 2, 2}));
  auto bad = OrderByCurve(cube, CurveKind::kSpiral);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(CurveOrder, RelativeOrderPreservedUnderRestriction) {
  // The restriction keeps the relative curve order of the surviving points.
  const GridSpec grid = GridSpec::Uniform(2, 8);
  auto curve = MakeCurve(CurveKind::kHilbert, grid);
  ASSERT_TRUE(curve.ok());
  PointSet points(2);
  points.Add(std::vector<Coord>{0, 0});
  points.Add(std::vector<Coord>{5, 5});
  points.Add(std::vector<Coord>{3, 1});
  auto order = OrderByCurveOnGrid(points, **curve);
  ASSERT_TRUE(order.ok());
  std::vector<std::pair<uint64_t, int64_t>> expected;
  for (int64_t i = 0; i < points.size(); ++i) {
    expected.emplace_back((*curve)->IndexOf(points[i]), i);
  }
  std::sort(expected.begin(), expected.end());
  for (int64_t r = 0; r < points.size(); ++r) {
    EXPECT_EQ(order->PointAtRank(r), expected[static_cast<size_t>(r)].second);
  }
}

TEST(CurveOrder, OnGridRejectsOutsidePoints) {
  const GridSpec grid = GridSpec::Uniform(2, 4);
  auto curve = MakeCurve(CurveKind::kZOrder, grid);
  ASSERT_TRUE(curve.ok());
  PointSet points(2);
  points.Add(std::vector<Coord>{5, 0});
  EXPECT_FALSE(OrderByCurveOnGrid(points, **curve).ok());
}

TEST(CurveOrder, EmptyInputRejected) {
  PointSet points(2);
  EXPECT_FALSE(OrderByCurve(points, CurveKind::kSweep).ok());
}

TEST(CurveOrder, DimensionMismatchRejected) {
  const GridSpec grid = GridSpec::Uniform(3, 4);
  auto curve = MakeCurve(CurveKind::kZOrder, grid);
  ASSERT_TRUE(curve.ok());
  PointSet points(2);
  points.Add(std::vector<Coord>{0, 0});
  EXPECT_FALSE(OrderByCurveOnGrid(points, **curve).ok());
}

}  // namespace
}  // namespace spectral
