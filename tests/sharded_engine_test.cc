// sharded-spectral engine tests — the divide-and-conquer contract:
// K=1 is byte-identical to the monolithic "spectral" engine, K>1 produces
// a valid permutation whose Spearman correlation with the monolithic order
// stays high, standalone and service-routed execution agree byte for byte,
// and identical shards deduplicate through the MappingService cache
// (stable sub-request fingerprints).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mapping_service.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "space/point_set.h"
#include "stats/rank_correlation.h"

namespace spectral {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

std::string StripCacheTag(const std::string& detail) {
  const size_t pos = detail.rfind(" | cache=");
  return pos == std::string::npos ? detail : detail.substr(0, pos);
}

void ExpectIdenticalResults(const OrderingResult& a, const OrderingResult& b) {
  EXPECT_EQ(Ranks(a.order), Ranks(b.order));
  EXPECT_EQ(a.embedding, b.embedding);
  EXPECT_EQ(a.lambda2, b.lambda2);
  EXPECT_EQ(a.matvecs, b.matvecs);
  EXPECT_EQ(a.num_components, b.num_components);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.num_solves, b.num_solves);
  EXPECT_EQ(StripCacheTag(a.detail), StripCacheTag(b.detail));
}

StatusOr<OrderingResult> Solve(const OrderingRequest& request) {
  auto engine = MakeOrderingEngine(request.engine);
  if (!engine.ok()) return engine.status();
  return (*engine)->Order(request);
}

OrderingRequest ShardedRequest(const PointSet& points, int num_shards,
                               int64_t coarsen_target = 128) {
  OrderingRequest request =
      OrderingRequest::ForPoints(points, "sharded-spectral");
  request.options.sharded.num_shards = num_shards;
  request.options.sharded.coarsen_target = coarsen_target;
  return request;
}

TEST(ShardedEngine, IsARegistryEngine) {
  const auto names = AllOrderingEngineNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "sharded-spectral"),
            names.end());
  auto engine = MakeOrderingEngine("sharded-spectral");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->name(), "sharded-spectral");
  EXPECT_TRUE((*engine)->supports_graph_input());
}

TEST(ShardedEngine, KOneIsByteIdenticalToSpectral) {
  // The property-test anchor: with one shard the engine must delegate to
  // the monolithic solve, diagnostics included.
  const PointSet points = PointSet::FullGrid(GridSpec({12, 12}));

  auto spectral = Solve(OrderingRequest::ForPoints(points, "spectral"));
  ASSERT_TRUE(spectral.ok()) << spectral.status();
  auto sharded = Solve(ShardedRequest(points, /*num_shards=*/1));
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ExpectIdenticalResults(*sharded, *spectral);
  EXPECT_EQ(sharded->detail, spectral->detail);
  EXPECT_EQ(sharded->method, spectral->method);
}

TEST(ShardedEngine, KOneByteIdenticalThroughTheService) {
  const PointSet points = PointSet::FullGrid(GridSpec({10, 10}));
  MappingService service;
  auto spectral =
      service.Order(OrderingRequest::ForPoints(points, "spectral"));
  ASSERT_TRUE(spectral.ok());
  auto sharded = service.Order(ShardedRequest(points, 1));
  ASSERT_TRUE(sharded.ok());
  ExpectIdenticalResults(*sharded, *spectral);
}

TEST(ShardedEngine, MultiShardOrderTracksMonolithicSpectral) {
  // 64x8 grid, K in {2, 4, 8}: the stitched order must be a permutation
  // that stays strongly rank-correlated with the monolithic order. The
  // grid is deliberately elongated: on data with a dominant direction the
  // shard bands align with the monolithic order's level sets, which is the
  // workload family the bench gate holds >= 0.95 on. (On exactly
  // symmetric inputs — squares — the band *direction* is a degenerate
  // canonicalization convention and rank correlation against the
  // monolithic convention is structurally lower, although the locality
  // objective value is the same; see core/sharded_engine.h.)
  const PointSet points = PointSet::FullGrid(GridSpec({64, 8}));
  auto mono = Solve(OrderingRequest::ForPoints(points, "spectral"));
  ASSERT_TRUE(mono.ok()) << mono.status();
  const std::vector<int64_t> mono_ranks = Ranks(mono->order);

  for (const int shards : {2, 4, 8}) {
    auto result = Solve(ShardedRequest(points, shards));
    ASSERT_TRUE(result.ok()) << "K=" << shards << ": " << result.status();
    EXPECT_EQ(result->order.size(), points.size());
    const double rho = SpearmanRho(mono_ranks, Ranks(result->order));
    EXPECT_GE(rho, 0.95) << "K=" << shards;
    EXPECT_NE(result->detail.find("shards="), std::string::npos);
  }
}

TEST(ShardedEngine, StandaloneMatchesServiceRouted) {
  // The routing service (sub-request caching, shared pool) must not change
  // a single byte of the result.
  const PointSet points = PointSet::FullGrid(GridSpec({16, 16}));
  const OrderingRequest request = ShardedRequest(points, 3);

  auto standalone = Solve(request);
  ASSERT_TRUE(standalone.ok()) << standalone.status();

  for (const int parallelism : {1, 4}) {
    MappingServiceOptions options;
    options.parallelism = parallelism;
    MappingService service(options);
    auto routed = service.Order(request);
    ASSERT_TRUE(routed.ok()) << routed.status();
    ExpectIdenticalResults(*routed, *standalone);
  }
}

TEST(ShardedEngine, IdenticalShardsDeduplicateThroughTheCache) {
  // Two geometrically identical, far-apart islands: the partitioner puts
  // one island per shard, shard point sets are translated to their own
  // origin, so both shards carry the same sub-request fingerprint — the
  // second one must be a cache hit, not a solve.
  PointSet points(2);
  for (Coord x = 0; x < 6; ++x) {
    for (Coord y = 0; y < 10; ++y) {
      points.Add(std::vector<Coord>{x, y});
    }
  }
  for (Coord x = 0; x < 6; ++x) {
    for (Coord y = 0; y < 10; ++y) {
      points.Add(std::vector<Coord>{static_cast<Coord>(x + 1000), y});
    }
  }

  MappingService service;
  OrderingRequest request = ShardedRequest(points, 2, /*coarsen_target=*/32);
  auto result = service.Order(request);
  ASSERT_TRUE(result.ok()) << result.status();

  // Sub-requests flow through the service: 1 outer + coarse + 2 shards +
  // quotient = 5 requests, of which the second shard is served from cache.
  const MappingServiceStats cold = service.stats();
  EXPECT_EQ(cold.requests, 5);
  EXPECT_EQ(cold.solves, 4);
  EXPECT_EQ(cold.cache_hits, 1);
  EXPECT_EQ(cold.cache_misses, 4);

  // Same request again: stable fingerprints make the whole thing one outer
  // cache hit — zero additional solves.
  auto warm = service.Order(request);
  ASSERT_TRUE(warm.ok());
  ExpectIdenticalResults(*warm, *result);
  const MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.solves, cold.solves);
  EXPECT_EQ(stats.cache_hits, cold.cache_hits + 1);

  // The two islands occupy a contiguous rank block each, in vertex-id
  // order (mirroring the monolithic tie rule for equal components).
  const int64_t half = points.size() / 2;
  for (int64_t v = 0; v < half; ++v) {
    EXPECT_LT(result->order.RankOf(v), half);
  }
}

TEST(ShardedEngine, GraphInputIsSupported) {
  // A 40-vertex weighted path via the kGraph input: the sharded order must
  // agree with the monolithic graph order up to rank correlation (no
  // canonicalization points, so only the magnitude is pinned down by the
  // solver's sign convention on both sides).
  std::vector<GraphEdge> edges;
  for (int64_t v = 0; v + 1 < 40; ++v) {
    edges.push_back({v, v + 1, 1.0 + 0.01 * static_cast<double>(v % 3)});
  }
  const Graph graph = Graph::FromEdges(40, edges);

  auto mono = Solve(OrderingRequest::ForGraph(graph));
  ASSERT_TRUE(mono.ok()) << mono.status();
  OrderingRequest request =
      OrderingRequest::ForGraph(graph, nullptr, "sharded-spectral");
  request.options.sharded.num_shards = 4;
  request.options.sharded.coarsen_target = 16;
  auto sharded = Solve(request);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ(sharded->order.size(), 40);
  const double rho = SpearmanRho(Ranks(mono->order), Ranks(sharded->order));
  EXPECT_GE(std::abs(rho), 0.9);
}

TEST(ShardedEngine, ShardCountClampsToInput) {
  PointSet points(2);
  for (Coord i = 0; i < 5; ++i) points.Add(std::vector<Coord>{i, 0});
  auto result = Solve(ShardedRequest(points, 100));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->order.size(), 5);
}

TEST(ShardedEngine, InvalidShardCountIsRejected) {
  const PointSet points = PointSet::FullGrid(GridSpec({4, 4}));
  OrderingRequest request = ShardedRequest(points, 0);
  request.options.sharded.num_shards = 0;
  auto result = Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace spectral
