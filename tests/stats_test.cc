#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "stats/running_stats.h"

namespace spectral {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.PopulationVariance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.Count(), 1);
  EXPECT_EQ(s.Mean(), 5.0);
  EXPECT_EQ(s.Min(), 5.0);
  EXPECT_EQ(s.Max(), 5.0);
  EXPECT_EQ(s.PopulationVariance(), 0.0);
  EXPECT_EQ(s.SampleVariance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 4.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.PopulationVariance(), all.PopulationVariance(), 1e-10);
  EXPECT_EQ(left.Min(), all.Min());
  EXPECT_EQ(left.Max(), all.Max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);    // bin 0
  h.Add(9.99);   // bin 4
  h.Add(-3.0);   // clamped to bin 0
  h.Add(100.0);  // clamped to bin 4
  EXPECT_EQ(h.total_count(), 4);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(4), 2);
  EXPECT_EQ(h.bin_count(2), 0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, QuantileUniformData) {
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 1000; ++i) h.Add((i + 0.5) / 1000.0);
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.Quantile(0.9), 0.9, 0.02);
}

TEST(ExactQuantile, NearestRank) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(ExactQuantile(v, 0.0), 1.0);
  EXPECT_EQ(ExactQuantile(v, 0.5), 3.0);
  EXPECT_EQ(ExactQuantile(v, 1.0), 5.0);
}

}  // namespace
}  // namespace spectral
