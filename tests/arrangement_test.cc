// Arrangement objectives, rank correlation, spiral curve, and torus grids.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "eigen/fiedler.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "query/arrangement.h"
#include "sfc/curve_registry.h"
#include "stats/rank_correlation.h"

namespace spectral {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Arrangement, PathIdentityOrder) {
  const Graph g = BuildGridGraph(GridSpec({5}));
  const auto m = ComputeArrangementMetrics(g, LinearOrder::Identity(5));
  EXPECT_DOUBLE_EQ(m.squared, 4.0);
  EXPECT_DOUBLE_EQ(m.linear, 4.0);
  EXPECT_EQ(m.bandwidth, 1);
  EXPECT_DOUBLE_EQ(m.mean_gap, 1.0);
}

TEST(Arrangement, SweepOn2DGrid) {
  // WxH row-major: horizontal edges gap 1, vertical edges gap H.
  const GridSpec grid({3, 4});
  const Graph g = BuildGridGraph(grid);
  const auto m = ComputeArrangementMetrics(g, LinearOrder::Identity(12));
  // 3 rows x 3 horizontal edges = 9 edges gap 1; 2x4 vertical edges gap 4.
  EXPECT_DOUBLE_EQ(m.linear, 9.0 * 1 + 8.0 * 4);
  EXPECT_DOUBLE_EQ(m.squared, 9.0 * 1 + 8.0 * 16);
  EXPECT_EQ(m.bandwidth, 4);
}

TEST(Arrangement, LowerBoundHolsForEveryMapping) {
  const GridSpec grid({6, 6});
  const PointSet points = PointSet::FullGrid(grid);
  const Graph g = BuildGridGraph(grid);
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto spectral_result = (*engine)->Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(spectral_result.ok());
  const double bound =
      SquaredArrangementLowerBound(spectral_result->lambda2, 36);
  for (CurveKind kind : AllCurveKinds()) {
    auto order = OrderByCurve(points, kind);
    ASSERT_TRUE(order.ok()) << CurveKindName(kind);
    const auto m = ComputeArrangementMetrics(g, *order);
    EXPECT_GE(m.squared, bound - 1e-9) << CurveKindName(kind);
  }
  const auto spectral_metrics =
      ComputeArrangementMetrics(g, spectral_result->order);
  EXPECT_GE(spectral_metrics.squared, bound - 1e-9);
}

TEST(Arrangement, WeightsScaleObjectives) {
  std::vector<GraphEdge> light = {{0, 1, 1.0}, {1, 2, 1.0}};
  std::vector<GraphEdge> heavy = {{0, 1, 3.0}, {1, 2, 3.0}};
  const LinearOrder order = LinearOrder::Identity(3);
  const auto a = ComputeArrangementMetrics(Graph::FromEdges(3, light), order);
  const auto b = ComputeArrangementMetrics(Graph::FromEdges(3, heavy), order);
  EXPECT_DOUBLE_EQ(b.squared, 3.0 * a.squared);
  EXPECT_DOUBLE_EQ(b.linear, 3.0 * a.linear);
  EXPECT_EQ(a.bandwidth, b.bandwidth);  // bandwidth ignores weights
}

TEST(RankCorrelation, IdenticalAndReversed) {
  const std::vector<int64_t> a = {0, 1, 2, 3, 4};
  const std::vector<int64_t> r = {4, 3, 2, 1, 0};
  EXPECT_DOUBLE_EQ(SpearmanRho(a, a), 1.0);
  EXPECT_DOUBLE_EQ(SpearmanRho(a, r), -1.0);
  EXPECT_DOUBLE_EQ(KendallTau(a, a), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(a, r), -1.0);
}

TEST(RankCorrelation, KnownIntermediateValue) {
  const std::vector<int64_t> a = {0, 1, 2, 3};
  const std::vector<int64_t> b = {0, 1, 3, 2};
  // One discordant pair out of 6: tau = (5 - 1) / 6.
  EXPECT_NEAR(KendallTau(a, b), 4.0 / 6.0, 1e-12);
  EXPECT_GT(SpearmanRho(a, b), 0.7);
}

TEST(RankCorrelation, TinyInputs) {
  const std::vector<int64_t> one = {0};
  EXPECT_DOUBLE_EQ(SpearmanRho(one, one), 0.0);
  EXPECT_DOUBLE_EQ(KendallTau(one, one), 0.0);
}

TEST(RankCorrelation, SpectralCloserToSnakeThanToScrambled) {
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  auto snake = OrderByCurve(points, CurveKind::kSnake);
  ASSERT_TRUE(snake.ok());
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto spectral_result = (*engine)->Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(spectral_result.ok());

  std::vector<int64_t> spec_ranks(64), snake_ranks(64), scram_ranks(64);
  for (int64_t i = 0; i < 64; ++i) {
    spec_ranks[static_cast<size_t>(i)] = spectral_result->order.RankOf(i);
    snake_ranks[static_cast<size_t>(i)] = snake->RankOf(i);
    scram_ranks[static_cast<size_t>(i)] = (i * 37) % 64;
  }
  EXPECT_GT(std::fabs(SpearmanRho(spec_ranks, snake_ranks)),
            std::fabs(SpearmanRho(spec_ranks, scram_ranks)));
}

TEST(Spiral, KnownOrder3x3) {
  const GridSpec grid = GridSpec::Uniform(2, 3);
  auto curve = MakeCurve(CurveKind::kSpiral, grid);
  ASSERT_TRUE(curve.ok());
  // Clockwise from the top-left; center last.
  const std::vector<std::vector<Coord>> expected = {
      {0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}, {2, 1}, {2, 0}, {1, 0}, {1, 1}};
  std::vector<Coord> p(2);
  for (size_t i = 0; i < expected.size(); ++i) {
    (*curve)->PointOf(i, p);
    EXPECT_EQ(p, expected[i]) << "position " << i;
  }
}

TEST(Spiral, BijectiveAndContinuous) {
  const GridSpec grid = GridSpec::Uniform(2, 7);
  auto curve = MakeCurve(CurveKind::kSpiral, grid);
  ASSERT_TRUE(curve.ok());
  std::vector<Coord> prev(2), next(2);
  std::set<int64_t> cells;
  (*curve)->PointOf(0, prev);
  cells.insert(grid.Flatten(prev));
  for (int64_t i = 1; i < grid.NumCells(); ++i) {
    (*curve)->PointOf(static_cast<uint64_t>(i), next);
    EXPECT_EQ(ManhattanDistance(prev, next), 1) << "step " << i;
    cells.insert(grid.Flatten(next));
    prev = next;
  }
  EXPECT_EQ(static_cast<int64_t>(cells.size()), grid.NumCells());
  // Round trip.
  for (int64_t i = 0; i < grid.NumCells(); ++i) {
    (*curve)->PointOf(static_cast<uint64_t>(i), next);
    EXPECT_EQ((*curve)->IndexOf(next), static_cast<uint64_t>(i));
  }
}

TEST(Spiral, ShapeValidation) {
  // Rectangles are legal since the ring walk generalized; only non-2-d
  // grids are rejected.
  EXPECT_TRUE(MakeCurve(CurveKind::kSpiral, GridSpec({3, 4})).ok());
  EXPECT_FALSE(MakeCurve(CurveKind::kSpiral, GridSpec::Uniform(3, 3)).ok());
  EXPECT_TRUE(MakeCurve(CurveKind::kSpiral, GridSpec::Uniform(2, 1)).ok());
}

TEST(TorusGrid, DegreesAndEdgeCount) {
  GridGraphOptions options;
  options.periodic = true;
  const Graph g = BuildGridGraph(GridSpec({4, 4}), options);
  for (int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(g.Degree(v), 4) << v;  // every torus vertex is interior
  }
  EXPECT_EQ(g.num_edges(), 32);
}

TEST(TorusGrid, SmallSidesDoNotWrap) {
  GridGraphOptions options;
  options.periodic = true;
  // Side 2: the wrap edge would duplicate the existing edge.
  const Graph g = BuildGridGraph(GridSpec({2, 5}), options);
  EXPECT_EQ(g.Degree(0), 1 + 2);  // one axis-0 edge, wrap on axis 1
}

TEST(TorusGrid, CycleSpectrum) {
  // 1-d periodic grid = cycle: lambda2 = 2 - 2 cos(2 pi / n), degenerate.
  const int n = 10;
  GridGraphOptions options;
  options.periodic = true;
  const Graph g = BuildGridGraph(GridSpec({n}), options);
  FiedlerOptions fo;
  fo.num_pairs = 3;
  auto result = ComputeFiedler(BuildLaplacian(g), fo);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->lambda2, 2.0 - 2.0 * std::cos(2.0 * kPi / n), 1e-9);
  EXPECT_EQ(result->degenerate_dim, 2);
}

TEST(TorusGrid, TorusLambda2ExceedsOpenGrid) {
  GridGraphOptions periodic;
  periodic.periodic = true;
  auto open_result =
      ComputeFiedler(BuildLaplacian(BuildGridGraph(GridSpec({8, 8}))));
  auto torus_result = ComputeFiedler(
      BuildLaplacian(BuildGridGraph(GridSpec({8, 8}), periodic)));
  ASSERT_TRUE(open_result.ok());
  ASSERT_TRUE(torus_result.ok());
  EXPECT_GT(torus_result->lambda2, open_result->lambda2);
}

}  // namespace
}  // namespace spectral
