// Byte-identity property tests for the packed-basis block solver: the
// spectral orders on three reference workloads must match the committed
// fingerprints of the pre-refactor (unpacked VectorBlock) solver exactly
// — warm and cold, at parallelism 1/2/8. Any change to these hashes means
// the packed kernels, the strided SpMM, or the counter-driven control
// flow altered the solver's arithmetic, which breaks the cache/sharding
// layers' byte-identity contract.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "space/point_set.h"
#include "util/hash.h"
#include "util/random.h"
#include "workload/generators.h"

namespace spectral {
namespace {

// Order-rank fingerprints of the solver as of the packed-basis refactor,
// identical to the unpacked solver they replaced (regenerated with
// the same Hasher walk below).
constexpr const char* kGrid64x64Hash = "7a5565039030866a429dd6c6867d426c";
constexpr const char* kGrid128x32Hash = "5ef0b1c1b16a8af52150e93b68eab495";
constexpr const char* kKernelBlobHash = "f9ec1b2bad983062563564937fc3f5fc";

PointSet LexSorted(const PointSet& in) {
  std::vector<std::vector<Coord>> rows;
  rows.reserve(static_cast<size_t>(in.size()));
  for (int64_t i = 0; i < in.size(); ++i) {
    rows.emplace_back(in[i].begin(), in[i].end());
  }
  std::sort(rows.begin(), rows.end());
  PointSet out(in.dims());
  for (const auto& row : rows) out.Add(row);
  return out;
}

std::string OrderHash(const LinearOrder& order) {
  Hasher h;
  for (int64_t i = 0; i < order.size(); ++i) h.MixInt(order.RankOf(i));
  return h.Finish().ToHex();
}

void ExpectGoldenOrders(const std::string& name, const PointSet& points,
                        const SpectralLpmOptions& base,
                        const std::string& expected_hash) {
  for (bool warm : {false, true}) {
    for (int parallelism : {1, 2, 8}) {
      OrderingRequest request = OrderingRequest::ForPoints(points);
      request.options.spectral = base;
      request.options.spectral.parallelism = parallelism;
      if (!warm) request.options.spectral.warm_start_threshold = 0;
      auto engine = MakeOrderingEngine("spectral");
      ASSERT_TRUE(engine.ok());
      auto result = (*engine)->Order(request);
      ASSERT_TRUE(result.ok())
          << name << " warm=" << warm << " p=" << parallelism << ": "
          << result.status();
      EXPECT_EQ(OrderHash(result->order), expected_hash)
          << name << " warm=" << warm << " p=" << parallelism
          << " method=" << result->method;
    }
  }
}

TEST(PackedIdentity, Grid64x64MatchesPreRefactorOrders) {
  SpectralLpmOptions options;
  options.fiedler.num_pairs = 3;
  ExpectGoldenOrders("grid64x64", PointSet::FullGrid(GridSpec::Uniform(2, 64)),
                     options, kGrid64x64Hash);
}

TEST(PackedIdentity, Grid128x32MatchesPreRefactorOrders) {
  SpectralLpmOptions options;
  options.fiedler.num_pairs = 3;
  ExpectGoldenOrders("grid128x32", PointSet::FullGrid(GridSpec({128, 32})),
                     options, kGrid128x32Hash);
}

TEST(PackedIdentity, KernelBlobMatchesPreRefactorOrders) {
  SpectralLpmOptions options;
  options.fiedler.num_pairs = 3;
  options.graph.radius = 2;
  options.graph.kernel = WeightKernel::kGaussian;
  options.graph.gaussian_sigma = 1.5;
  Rng rng(12345);
  ExpectGoldenOrders(
      "kernelblob300x30",
      LexSorted(SampleConnectedBlob(GridSpec({300, 30}), 5000, rng)), options,
      kKernelBlobHash);
}

// The deterministic halves of the kernel profile must also be identical
// across pool sizes (the wall-time halves are machine state, explicitly
// exempt) — they feed OrderingResult::detail, which caching and sharding
// layers compare byte for byte.
TEST(PackedIdentity, ProfileFlopsArePoolInvariant) {
  const PointSet points = PointSet::FullGrid(GridSpec::Uniform(2, 64));
  auto solve = [&](int parallelism) {
    OrderingRequest request = OrderingRequest::ForPoints(points);
    request.options.spectral.fiedler.num_pairs = 3;
    request.options.spectral.parallelism = parallelism;
    request.options.spectral.warm_start_threshold = 0;
    auto engine = MakeOrderingEngine("spectral");
    auto result = (*engine)->Order(request);
    EXPECT_TRUE(result.ok()) << result.status();
    return *std::move(result);
  };
  const OrderingResult serial = solve(1);
  EXPECT_GT(serial.profile.spmm_flops, 0);
  EXPECT_GT(serial.profile.reorth_flops, 0);
  EXPECT_GT(serial.profile.hfill_flops, 0);
  EXPECT_GT(serial.profile.rr_flops, 0);
  for (int parallelism : {2, 8}) {
    const OrderingResult pooled = solve(parallelism);
    EXPECT_EQ(pooled.profile.spmm_flops, serial.profile.spmm_flops);
    EXPECT_EQ(pooled.profile.reorth_flops, serial.profile.reorth_flops);
    EXPECT_EQ(pooled.profile.hfill_flops, serial.profile.hfill_flops);
    EXPECT_EQ(pooled.profile.rr_flops, serial.profile.rr_flops);
    EXPECT_EQ(pooled.profile.cheb_flops, serial.profile.cheb_flops);
    EXPECT_EQ(pooled.detail, serial.detail);
  }
}

}  // namespace
}  // namespace spectral
