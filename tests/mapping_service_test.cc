// MappingService tests — the facade's determinism and caching contract:
// OrderBatch results are byte-identical to per-request serial engine calls
// (cache on or off, any parallelism), a warm-cache batch performs zero
// additional eigensolves (the matvec counter is unchanged), duplicates
// within a batch are deduplicated, and the LRU evicts with counters.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mapping_service.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "space/point_set.h"

namespace spectral {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

// Drops the service's " | cache=..." detail suffix; everything else in the
// result must match the engine's output byte for byte.
std::string StripCacheTag(const std::string& detail) {
  const size_t pos = detail.rfind(" | cache=");
  return pos == std::string::npos ? detail : detail.substr(0, pos);
}

// Full-payload equality between a service result and a direct engine
// reference: order, embedding, and every diagnostic.
void ExpectSameResult(const OrderingResult& service_result,
                      const OrderingResult& reference) {
  EXPECT_EQ(Ranks(service_result.order), Ranks(reference.order));
  EXPECT_EQ(service_result.embedding, reference.embedding);
  EXPECT_EQ(service_result.lambda2, reference.lambda2);
  EXPECT_EQ(service_result.matvecs, reference.matvecs);
  EXPECT_EQ(service_result.num_components, reference.num_components);
  EXPECT_EQ(service_result.method, reference.method);
  EXPECT_EQ(service_result.num_solves, reference.num_solves);
  EXPECT_EQ(service_result.depth, reference.depth);
  EXPECT_EQ(service_result.grid_side, reference.grid_side);
  EXPECT_EQ(service_result.grid_cells, reference.grid_cells);
  EXPECT_EQ(StripCacheTag(service_result.detail), reference.detail);
}

// A heterogeneous batch: several engines, a disconnected input, an option
// variant, and an affinity request.
std::vector<OrderingRequest> MixedRequests(const PointSet& grid_points,
                                           const PointSet& islands) {
  std::vector<OrderingRequest> requests;
  requests.push_back(OrderingRequest::ForPoints(grid_points, "spectral"));
  requests.push_back(OrderingRequest::ForPoints(grid_points, "hilbert"));
  requests.push_back(OrderingRequest::ForPoints(islands, "spectral"));
  requests.push_back(OrderingRequest::ForPoints(grid_points, "bisection"));
  OrderingRequest moore = OrderingRequest::ForPoints(grid_points, "spectral");
  moore.options.spectral.graph.connectivity = GridConnectivity::kMoore;
  requests.push_back(std::move(moore));
  requests.push_back(OrderingRequest::ForPointsWithAffinity(
      grid_points, {{0, 63, 4.0}}, "spectral"));
  requests.push_back(OrderingRequest::ForPoints(grid_points, "sweep"));
  return requests;
}

PointSet Islands() {
  PointSet points(2);
  for (Coord i = 0; i < 6; ++i) points.Add(std::vector<Coord>{0, i});
  for (Coord i = 0; i < 4; ++i) points.Add(std::vector<Coord>{500, i});
  for (Coord i = 0; i < 3; ++i) points.Add(std::vector<Coord>{900, i});
  return points;
}

class MappingServiceBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(MappingServiceBatchTest, BatchMatchesSerialEngineCalls) {
  // The acceptance contract: OrderBatch == per-request serial Order calls,
  // byte for byte, with the cache on or off and at any parallelism.
  const PointSet grid_points = PointSet::FullGrid(GridSpec({8, 8}));
  const PointSet islands = Islands();
  const std::vector<OrderingRequest> requests =
      MixedRequests(grid_points, islands);

  // Reference: each request against a fresh engine, no service involved.
  std::vector<OrderingResult> reference;
  for (const OrderingRequest& request : requests) {
    auto engine = MakeOrderingEngine(request.engine);
    ASSERT_TRUE(engine.ok());
    auto result = (*engine)->Order(request);
    ASSERT_TRUE(result.ok()) << result.status();
    reference.push_back(*result);
  }

  for (const size_t cache_capacity : {size_t{0}, size_t{64}}) {
    MappingServiceOptions options;
    options.parallelism = GetParam();
    options.cache_capacity = cache_capacity;
    MappingService service(options);
    auto results = service.OrderBatch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << "parallelism=" << GetParam() << " cache=" << cache_capacity
          << " slot " << i << ": " << results[i].status();
      ExpectSameResult(*results[i], reference[i]);
    }

    // A second, cached pass returns the same bytes again.
    auto warm = service.OrderBatch(requests);
    for (size_t i = 0; i < warm.size(); ++i) {
      ASSERT_TRUE(warm[i].ok());
      ExpectSameResult(*warm[i], reference[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, MappingServiceBatchTest,
                         ::testing::Values(1, 2, 8));

TEST(MappingService, WarmCacheBatchPerformsZeroAdditionalEigensolves) {
  // 16x16 = 256 vertices clears the dense_threshold, so the spectral
  // requests go through Lanczos and the matvec counter is non-trivial.
  const PointSet grid_points = PointSet::FullGrid(GridSpec({16, 16}));
  const PointSet islands = Islands();
  const std::vector<OrderingRequest> requests =
      MixedRequests(grid_points, islands);

  MappingService service;
  auto cold = service.OrderBatch(requests);
  for (const auto& r : cold) ASSERT_TRUE(r.ok());
  const MappingServiceStats after_cold = service.stats();
  EXPECT_GT(after_cold.solver_matvecs, 0);
  EXPECT_EQ(after_cold.solves, static_cast<int64_t>(requests.size()));

  auto warm = service.OrderBatch(requests);
  for (const auto& r : warm) {
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r->detail.find(" | cache=hit"), std::string::npos);
  }
  const MappingServiceStats after_warm = service.stats();
  // Zero additional engine work: matvec and solve counters are unchanged.
  EXPECT_EQ(after_warm.solver_matvecs, after_cold.solver_matvecs);
  EXPECT_EQ(after_warm.solves, after_cold.solves);
  EXPECT_EQ(after_warm.cache_hits,
            after_cold.cache_hits + static_cast<int64_t>(requests.size()));
  EXPECT_EQ(after_warm.cache_misses, after_cold.cache_misses);
}

TEST(MappingService, DuplicatesWithinABatchSolveOnce) {
  const PointSet points = PointSet::FullGrid(GridSpec({8, 8}));
  const OrderingRequest request = OrderingRequest::ForPoints(points);
  const std::vector<OrderingRequest> batch = {request, request, request};

  MappingService service;
  auto results = service.OrderBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  const MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.solves, 1);
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 2);

  // The annotation mirrors a serial replay: first occurrence missed, the
  // repeats hit; the payloads are identical bytes.
  EXPECT_NE(results[0]->detail.find(" | cache=miss"), std::string::npos);
  EXPECT_NE(results[1]->detail.find(" | cache=hit"), std::string::npos);
  EXPECT_NE(results[2]->detail.find(" | cache=hit"), std::string::npos);
  EXPECT_EQ(Ranks(results[0]->order), Ranks(results[1]->order));
  EXPECT_EQ(results[0]->embedding, results[2]->embedding);
}

TEST(MappingService, CacheOffStillDeduplicatesButNeverHits) {
  const PointSet points = PointSet::FullGrid(GridSpec({6, 6}));
  const OrderingRequest request = OrderingRequest::ForPoints(points);

  MappingServiceOptions options;
  options.cache_capacity = 0;
  MappingService service(options);
  auto results = service.OrderBatch(
      std::vector<OrderingRequest>{request, request});
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r->detail.find(" | cache=off"), std::string::npos);
  }
  EXPECT_EQ(service.stats().solves, 1);

  // A later batch re-solves: nothing was retained.
  auto again = service.Order(request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service.stats().solves, 2);
}

TEST(MappingService, LruEvictsAndCountsEvictions) {
  const PointSet a = PointSet::FullGrid(GridSpec({5, 5}));
  const PointSet b = PointSet::FullGrid(GridSpec({6, 6}));

  MappingServiceOptions options;
  options.cache_capacity = 1;
  options.parallelism = 1;
  MappingService service(options);

  ASSERT_TRUE(service.Order(OrderingRequest::ForPoints(a)).ok());  // miss
  ASSERT_TRUE(service.Order(OrderingRequest::ForPoints(b)).ok());  // miss, evicts a
  auto re_a = service.Order(OrderingRequest::ForPoints(a));        // miss again
  ASSERT_TRUE(re_a.ok());
  EXPECT_NE(re_a->detail.find(" | cache=miss"), std::string::npos);

  const MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 3);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_GE(stats.cache_evictions, 2);

  service.ClearCache();
  auto after_clear = service.Order(OrderingRequest::ForPoints(a));
  ASSERT_TRUE(after_clear.ok());
  EXPECT_NE(after_clear->detail.find(" | cache=miss"), std::string::npos);
}

TEST(MappingService, ErrorsPropagateAndAreNeverCached) {
  const PointSet points = PointSet::FullGrid(GridSpec({4, 4}));

  MappingService service;
  // Unknown engine: NotFound, aligned with its slot; no engine ever ran,
  // so the solve/miss counters stay untouched.
  auto unknown =
      service.Order(OrderingRequest::ForPoints(points, "no-such-engine"));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.stats().solves, 0);
  EXPECT_EQ(service.stats().cache_misses, 0);
  EXPECT_EQ(service.stats().failures, 1);

  // Invalid affinity endpoint: the engine rejects it; repeats re-fail (the
  // error was not cached) and the failure counter advances.
  const OrderingRequest bad = OrderingRequest::ForPointsWithAffinity(
      points, {{0, 99, 1.0}});
  const int64_t failures_before = service.stats().failures;
  ASSERT_FALSE(service.Order(bad).ok());
  ASSERT_FALSE(service.Order(bad).ok());
  const MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.failures, failures_before + 2);

  // A structurally invalid request is rejected before reaching any engine.
  OrderingRequest invalid;
  auto res = service.Order(invalid);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);

  // Healthy traffic is unaffected by the failures around it.
  auto ok = service.Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(ok.ok()) << ok.status();
}

TEST(MappingService, GraphRequestsFlowThroughTheFacade) {
  const std::vector<GraphEdge> edges = {
      {0, 1, 4.0}, {1, 2, 4.0}, {2, 3, 0.5}, {3, 4, 4.0}, {4, 5, 4.0}};
  const Graph graph = Graph::FromEdges(6, edges);

  MappingService service;
  auto first = service.Order(OrderingRequest::ForGraph(graph));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->order.size(), 6);

  auto second = service.Order(OrderingRequest::ForGraph(graph));
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->detail.find(" | cache=hit"), std::string::npos);
  EXPECT_EQ(Ranks(first->order), Ranks(second->order));
  EXPECT_EQ(first->embedding, second->embedding);
}

}  // namespace
}  // namespace spectral
