// MappingService tests — the facade's determinism and caching contract:
// OrderBatch results are byte-identical to per-request serial engine calls
// (cache on or off, any parallelism), a warm-cache batch performs zero
// additional eigensolves (the matvec counter is unchanged), duplicates
// within a batch are deduplicated, and the LRU evicts with counters.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mapping_service.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "space/point_set.h"

namespace spectral {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

// Drops the service's " | cache=..." detail suffix; everything else in the
// result must match the engine's output byte for byte.
std::string StripCacheTag(const std::string& detail) {
  const size_t pos = detail.rfind(" | cache=");
  return pos == std::string::npos ? detail : detail.substr(0, pos);
}

// Full-payload equality between a service result and a direct engine
// reference: order, embedding, and every diagnostic.
void ExpectSameResult(const OrderingResult& service_result,
                      const OrderingResult& reference) {
  EXPECT_EQ(Ranks(service_result.order), Ranks(reference.order));
  EXPECT_EQ(service_result.embedding, reference.embedding);
  EXPECT_EQ(service_result.lambda2, reference.lambda2);
  EXPECT_EQ(service_result.matvecs, reference.matvecs);
  EXPECT_EQ(service_result.num_components, reference.num_components);
  EXPECT_EQ(service_result.method, reference.method);
  EXPECT_EQ(service_result.num_solves, reference.num_solves);
  EXPECT_EQ(service_result.depth, reference.depth);
  EXPECT_EQ(service_result.grid_side, reference.grid_side);
  EXPECT_EQ(service_result.grid_cells, reference.grid_cells);
  EXPECT_EQ(StripCacheTag(service_result.detail), reference.detail);
}

// A heterogeneous batch: several engines, a disconnected input, an option
// variant, and an affinity request.
std::vector<OrderingRequest> MixedRequests(const PointSet& grid_points,
                                           const PointSet& islands) {
  std::vector<OrderingRequest> requests;
  requests.push_back(OrderingRequest::ForPoints(grid_points, "spectral"));
  requests.push_back(OrderingRequest::ForPoints(grid_points, "hilbert"));
  requests.push_back(OrderingRequest::ForPoints(islands, "spectral"));
  requests.push_back(OrderingRequest::ForPoints(grid_points, "bisection"));
  OrderingRequest moore = OrderingRequest::ForPoints(grid_points, "spectral");
  moore.options.spectral.graph.connectivity = GridConnectivity::kMoore;
  requests.push_back(std::move(moore));
  requests.push_back(OrderingRequest::ForPointsWithAffinity(
      grid_points, {{0, 63, 4.0}}, "spectral"));
  requests.push_back(OrderingRequest::ForPoints(grid_points, "sweep"));
  return requests;
}

PointSet Islands() {
  PointSet points(2);
  for (Coord i = 0; i < 6; ++i) points.Add(std::vector<Coord>{0, i});
  for (Coord i = 0; i < 4; ++i) points.Add(std::vector<Coord>{500, i});
  for (Coord i = 0; i < 3; ++i) points.Add(std::vector<Coord>{900, i});
  return points;
}

class MappingServiceBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(MappingServiceBatchTest, BatchMatchesSerialEngineCalls) {
  // The acceptance contract: OrderBatch == per-request serial Order calls,
  // byte for byte, with the cache on or off and at any parallelism.
  const PointSet grid_points = PointSet::FullGrid(GridSpec({8, 8}));
  const PointSet islands = Islands();
  const std::vector<OrderingRequest> requests =
      MixedRequests(grid_points, islands);

  // Reference: each request against a fresh engine, no service involved.
  std::vector<OrderingResult> reference;
  for (const OrderingRequest& request : requests) {
    auto engine = MakeOrderingEngine(request.engine);
    ASSERT_TRUE(engine.ok());
    auto result = (*engine)->Order(request);
    ASSERT_TRUE(result.ok()) << result.status();
    reference.push_back(*result);
  }

  for (const size_t cache_capacity : {size_t{0}, size_t{64}}) {
    MappingServiceOptions options;
    options.parallelism = GetParam();
    options.cache_capacity = cache_capacity;
    MappingService service(options);
    auto results = service.OrderBatch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << "parallelism=" << GetParam() << " cache=" << cache_capacity
          << " slot " << i << ": " << results[i].status();
      ExpectSameResult(*results[i], reference[i]);
    }

    // A second, cached pass returns the same bytes again.
    auto warm = service.OrderBatch(requests);
    for (size_t i = 0; i < warm.size(); ++i) {
      ASSERT_TRUE(warm[i].ok());
      ExpectSameResult(*warm[i], reference[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, MappingServiceBatchTest,
                         ::testing::Values(1, 2, 8));

TEST(MappingService, WarmCacheBatchPerformsZeroAdditionalEigensolves) {
  // 16x16 = 256 vertices clears the dense_threshold, so the spectral
  // requests go through Lanczos and the matvec counter is non-trivial.
  const PointSet grid_points = PointSet::FullGrid(GridSpec({16, 16}));
  const PointSet islands = Islands();
  const std::vector<OrderingRequest> requests =
      MixedRequests(grid_points, islands);

  MappingService service;
  auto cold = service.OrderBatch(requests);
  for (const auto& r : cold) ASSERT_TRUE(r.ok());
  const MappingServiceStats after_cold = service.stats();
  EXPECT_GT(after_cold.solver_matvecs, 0);
  EXPECT_EQ(after_cold.solves, static_cast<int64_t>(requests.size()));

  auto warm = service.OrderBatch(requests);
  for (const auto& r : warm) {
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r->detail.find(" | cache=hit"), std::string::npos);
  }
  const MappingServiceStats after_warm = service.stats();
  // Zero additional engine work: matvec and solve counters are unchanged.
  EXPECT_EQ(after_warm.solver_matvecs, after_cold.solver_matvecs);
  EXPECT_EQ(after_warm.solves, after_cold.solves);
  EXPECT_EQ(after_warm.cache_hits,
            after_cold.cache_hits + static_cast<int64_t>(requests.size()));
  EXPECT_EQ(after_warm.cache_misses, after_cold.cache_misses);
}

TEST(MappingService, DuplicatesWithinABatchSolveOnce) {
  const PointSet points = PointSet::FullGrid(GridSpec({8, 8}));
  const OrderingRequest request = OrderingRequest::ForPoints(points);
  const std::vector<OrderingRequest> batch = {request, request, request};

  MappingService service;
  auto results = service.OrderBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  const MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.solves, 1);
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 2);

  // The annotation mirrors a serial replay: first occurrence missed, the
  // repeats hit; the payloads are identical bytes.
  EXPECT_NE(results[0]->detail.find(" | cache=miss"), std::string::npos);
  EXPECT_NE(results[1]->detail.find(" | cache=hit"), std::string::npos);
  EXPECT_NE(results[2]->detail.find(" | cache=hit"), std::string::npos);
  EXPECT_EQ(Ranks(results[0]->order), Ranks(results[1]->order));
  EXPECT_EQ(results[0]->embedding, results[2]->embedding);
}

TEST(MappingService, CacheOffStillDeduplicatesButNeverHits) {
  const PointSet points = PointSet::FullGrid(GridSpec({6, 6}));
  const OrderingRequest request = OrderingRequest::ForPoints(points);

  MappingServiceOptions options;
  options.cache_capacity = 0;
  MappingService service(options);
  auto results = service.OrderBatch(
      std::vector<OrderingRequest>{request, request});
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r->detail.find(" | cache=off"), std::string::npos);
  }
  EXPECT_EQ(service.stats().solves, 1);

  // A later batch re-solves: nothing was retained.
  auto again = service.Order(request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service.stats().solves, 2);
}

TEST(MappingService, LruEvictsAndCountsEvictions) {
  const PointSet a = PointSet::FullGrid(GridSpec({5, 5}));
  const PointSet b = PointSet::FullGrid(GridSpec({6, 6}));

  MappingServiceOptions options;
  options.cache_capacity = 1;
  options.parallelism = 1;
  MappingService service(options);

  ASSERT_TRUE(service.Order(OrderingRequest::ForPoints(a)).ok());  // miss
  ASSERT_TRUE(service.Order(OrderingRequest::ForPoints(b)).ok());  // miss, evicts a
  auto re_a = service.Order(OrderingRequest::ForPoints(a));        // miss again
  ASSERT_TRUE(re_a.ok());
  EXPECT_NE(re_a->detail.find(" | cache=miss"), std::string::npos);

  const MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 3);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_GE(stats.cache_evictions, 2);

  service.ClearCache();
  auto after_clear = service.Order(OrderingRequest::ForPoints(a));
  ASSERT_TRUE(after_clear.ok());
  EXPECT_NE(after_clear->detail.find(" | cache=miss"), std::string::npos);
}

TEST(MappingService, ErrorsPropagateAndAreNeverCached) {
  const PointSet points = PointSet::FullGrid(GridSpec({4, 4}));

  MappingService service;
  // Unknown engine: NotFound, aligned with its slot; no engine ever ran,
  // so the solve/miss counters stay untouched.
  auto unknown =
      service.Order(OrderingRequest::ForPoints(points, "no-such-engine"));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.stats().solves, 0);
  EXPECT_EQ(service.stats().cache_misses, 0);
  EXPECT_EQ(service.stats().failures, 1);

  // Invalid affinity endpoint: the engine rejects it; repeats re-fail (the
  // error was not cached) and the failure counter advances.
  const OrderingRequest bad = OrderingRequest::ForPointsWithAffinity(
      points, {{0, 99, 1.0}});
  const int64_t failures_before = service.stats().failures;
  ASSERT_FALSE(service.Order(bad).ok());
  ASSERT_FALSE(service.Order(bad).ok());
  const MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.failures, failures_before + 2);

  // A structurally invalid request is rejected before reaching any engine.
  OrderingRequest invalid;
  auto res = service.Order(invalid);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);

  // Healthy traffic is unaffected by the failures around it.
  auto ok = service.Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(ok.ok()) << ok.status();
}

TEST(MappingService, GraphRequestsFlowThroughTheFacade) {
  const std::vector<GraphEdge> edges = {
      {0, 1, 4.0}, {1, 2, 4.0}, {2, 3, 0.5}, {3, 4, 4.0}, {4, 5, 4.0}};
  const Graph graph = Graph::FromEdges(6, edges);

  MappingService service;
  auto first = service.Order(OrderingRequest::ForGraph(graph));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->order.size(), 6);

  auto second = service.Order(OrderingRequest::ForGraph(graph));
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->detail.find(" | cache=hit"), std::string::npos);
  EXPECT_EQ(Ranks(first->order), Ranks(second->order));
  EXPECT_EQ(first->embedding, second->embedding);
}

// A spectral request starved of solver budget: one restart, no Chebyshev
// filter, a tiny Krylov basis, and no multilevel warm start, on a grid too
// large for those crumbs. The solve stays ok() — it returns its best-effort
// order — but reports converged == false, which is what drives the
// degradation ladder below.
OrderingRequest StarvedSpectralRequest(const PointSet& points) {
  OrderingRequest request = OrderingRequest::ForPoints(points, "spectral");
  FiedlerOptions& fiedler = request.options.spectral.fiedler;
  fiedler.max_restarts = 1;
  fiedler.cheb_degree_max = 0;
  fiedler.block_max_basis = 4;
  request.options.spectral.warm_start_threshold = 0;
  return request;
}

TEST(MappingServiceLadder, ConvergenceIsPinnedInResultAndDetail) {
  const PointSet points = PointSet::FullGrid(GridSpec({24, 24}));

  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto starved = (*engine)->Order(StarvedSpectralRequest(points));
  ASSERT_TRUE(starved.ok()) << starved.status();
  EXPECT_FALSE(starved->converged);
  EXPECT_NE(starved->detail.find(" converged=0"), std::string::npos)
      << starved->detail;

  auto healthy = (*engine)->Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_TRUE(healthy->converged);
  EXPECT_NE(healthy->detail.find(" converged=1"), std::string::npos)
      << healthy->detail;
}

TEST(MappingServiceLadder, DegradedOrdersServeFallbackAndAreNeverCached) {
  const PointSet points = PointSet::FullGrid(GridSpec({24, 24}));
  MappingServiceOptions options;
  options.parallelism = 1;
  options.cache_capacity = 64;
  // Keep the retry as starved as the first attempt, so the ladder is
  // forced all the way down to the fallback curve.
  options.retry_restart_multiplier = 1;
  MappingService service(options);

  auto result = service.Order(StarvedSpectralRequest(points));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->converged);
  EXPECT_NE(result->detail.find(" | degraded=hilbert"), std::string::npos)
      << result->detail;

  // The served order is exactly the fallback engine's order.
  auto hilbert = MakeOrderingEngine("hilbert");
  ASSERT_TRUE(hilbert.ok());
  auto reference = (*hilbert)->Order(OrderingRequest::ForPoints(
      points, "hilbert"));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Ranks(result->order), Ranks(reference->order));

  MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.retried_solves, 1);
  EXPECT_EQ(stats.degraded_orders, 1);
  EXPECT_EQ(stats.solves, 1);
  // The invariant under test: a degraded order never reaches the cache or
  // any snapshot exported from it, so the repeat misses and re-degrades.
  EXPECT_EQ(service.CacheSize(), 0u);
  EXPECT_TRUE(service.ExportCache().empty());

  auto repeat = service.Order(StarvedSpectralRequest(points));
  ASSERT_TRUE(repeat.ok());
  stats = service.stats();
  EXPECT_EQ(stats.solves, 2);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.degraded_orders, 2);
  EXPECT_EQ(service.CacheSize(), 0u);
}

TEST(MappingServiceLadder, EscalatedRetryConvergesAndIsCached) {
  const PointSet points = PointSet::FullGrid(GridSpec({24, 24}));
  MappingServiceOptions options;
  options.parallelism = 1;
  options.cache_capacity = 64;
  MappingService service(options);

  // Starve only the restart budget (the Chebyshev filter stays on): one
  // restart is not enough for a cold 576-vertex solve, but the ladder's
  // default 4x escalation is — the retry converges and the ladder stops at
  // rung 1 with a cacheable result.
  OrderingRequest request = OrderingRequest::ForPoints(points, "spectral");
  request.options.spectral.fiedler.max_restarts = 1;
  request.options.spectral.warm_start_threshold = 0;

  auto result = service.Order(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  EXPECT_NE(result->detail.find(" converged=1"), std::string::npos)
      << result->detail;
  EXPECT_EQ(result->detail.find(" | degraded="), std::string::npos)
      << result->detail;

  MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.retried_solves, 1);
  EXPECT_EQ(stats.degraded_orders, 0);
  EXPECT_EQ(service.CacheSize(), 1u);

  auto repeat = service.Order(request);
  ASSERT_TRUE(repeat.ok());
  EXPECT_NE(repeat->detail.find(" | cache=hit"), std::string::npos);
  EXPECT_EQ(service.stats().solves, 1);
}

TEST(MappingServiceLadder, GraphInputsDegradeToBestEffortSpectral) {
  // A graph request has no geometry to fall back on: the ladder serves the
  // best-effort spectral order, tagged degraded, still uncached.
  std::vector<GraphEdge> edges;
  for (int64_t i = 0; i + 1 < 600; ++i) edges.push_back({i, i + 1, 1.0});
  const Graph graph = Graph::FromEdges(600, edges);

  MappingServiceOptions options;
  options.parallelism = 1;
  options.retry_restart_multiplier = 1;
  MappingService service(options);

  OrderingRequest request = OrderingRequest::ForGraph(graph);
  FiedlerOptions& fiedler = request.options.spectral.fiedler;
  fiedler.max_restarts = 1;
  fiedler.cheb_degree_max = 0;
  fiedler.block_max_basis = 4;
  request.options.spectral.warm_start_threshold = 0;

  auto result = service.Order(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->converged);
  EXPECT_NE(result->detail.find(" | degraded=unconverged"), std::string::npos)
      << result->detail;
  EXPECT_EQ(result->order.size(), 600);
  EXPECT_EQ(service.stats().degraded_orders, 1);
  EXPECT_EQ(service.CacheSize(), 0u);
}

TEST(MappingServiceLadder, DisabledLadderServesUnconvergedUncached) {
  const PointSet points = PointSet::FullGrid(GridSpec({24, 24}));
  MappingServiceOptions options;
  options.parallelism = 1;
  options.degrade_unconverged = false;
  MappingService service(options);

  auto result = service.Order(StarvedSpectralRequest(points));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->converged);
  EXPECT_NE(result->detail.find(" converged=0"), std::string::npos);
  EXPECT_EQ(result->detail.find(" | degraded="), std::string::npos);

  const MappingServiceStats stats = service.stats();
  EXPECT_EQ(stats.retried_solves, 0);
  EXPECT_EQ(stats.degraded_orders, 0);
  // Even with the ladder off, an unconverged order must never be cached.
  EXPECT_EQ(service.CacheSize(), 0u);
}


}  // namespace
}  // namespace spectral
