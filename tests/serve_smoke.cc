// End-to-end smoke test for the spectral_serve binary: spawns it in
// --stdio mode over a pipe pair, drives a mixed ORDER / STATS / QUIT
// session, and checks every ORDERED response byte-for-byte against a
// direct MakeOrderingEngine call on the same request. Plain main (no
// gtest): argv[1] is the path to the spectral_serve binary.
//
// With argv[2] == "--faults" (registered as serve_smoke_faults, only in
// SPECTRAL_FAULTS builds) it instead runs two failure drills against the
// same binary: a 100%-everything chaos session where every reply must
// still be well-formed (typed errors, a deterministic HEALTH line, zero
// hangs) and byte-identical across two same-seed runs, and a
// solver-fault-only session where orders degrade to the exact fallback
// curve order.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "serve/fd_stream.h"
#include "serve/wire.h"
#include "space/grid.h"
#include "space/point_set.h"

namespace spectral {
namespace {

int Fail(const std::string& message) {
  std::cerr << "serve_smoke: FAIL: " << message << "\n";
  return 1;
}

// What the server must answer for "ORDER <id> <engine> GRID <s0>x<s1>",
// computed through the engine directly (no service, no cache).
std::string ExpectedResponse(const std::string& id, const std::string& engine,
                             Coord s0, Coord s1) {
  const PointSet points = PointSet::FullGrid(GridSpec({s0, s1}));
  const OrderingRequest request = OrderingRequest::ForPoints(points, engine);
  auto impl = MakeOrderingEngine(engine);
  if (!impl.ok()) return "engine construction failed";
  auto result = (*impl)->Order(request);
  if (!result.ok()) return "direct order failed";
  return FormatOrderedResponse(id, *result);
}

int Run(const char* server_path) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    return Fail("pipe() failed");
  }
  const pid_t pid = fork();
  if (pid < 0) return Fail("fork() failed");
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl(server_path, "spectral_serve", "--stdio", "--window-ms=5",
          "--cache=64", static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);

  FdStreambuf out_buf(to_child[1]);
  FdStreambuf in_buf(from_child[0]);
  std::ostream to_server(&out_buf);
  std::istream from_server(&in_buf);

  // A pipelined mixed session: two engines, one repeated request (served
  // by coalescing or the cache — either way byte-identical), one bad
  // request, stats, quit.
  to_server << "ORDER a spectral GRID 6x5\n"
               "ORDER b bisection GRID 4x7\n"
               "ORDER c spectral GRID 6x5\n"
               "ORDER d no-such-engine GRID 3x3\n"
               "STATS s\n"
               "QUIT\n";
  to_server.flush();
  close(to_child[1]);

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(from_server, line)) lines.push_back(line);
  close(from_child[0]);

  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return Fail("waitpid() failed");
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return Fail("server exited with status " + std::to_string(status));
  }

  if (lines.size() != 6) {
    return Fail("expected 6 response lines, got " +
                std::to_string(lines.size()));
  }
  const std::string expect_a = ExpectedResponse("a", "spectral", 6, 5);
  const std::string expect_b = ExpectedResponse("b", "bisection", 4, 7);
  const std::string expect_c = ExpectedResponse("c", "spectral", 6, 5);
  if (lines[0] != expect_a) {
    return Fail("response a mismatch:\n  got  " + lines[0] + "\n  want " +
                expect_a);
  }
  if (lines[1] != expect_b) {
    return Fail("response b mismatch:\n  got  " + lines[1] + "\n  want " +
                expect_b);
  }
  if (lines[2] != expect_c) {
    return Fail("response c mismatch:\n  got  " + lines[2] + "\n  want " +
                expect_c);
  }
  if (lines[3].rfind("ERROR d NOT_FOUND", 0) != 0) {
    return Fail("expected 'ERROR d NOT_FOUND ...', got: " + lines[3]);
  }
  if (lines[4].rfind("STATS s ", 0) != 0) {
    return Fail("expected a STATS line, got: " + lines[4]);
  }
  // Two distinct fingerprints -> exactly two solves however the repeat was
  // served (within-batch coalescing or a cache hit).
  if (lines[4].find(" solves=2 ") == std::string::npos) {
    return Fail("expected solves=2 in: " + lines[4]);
  }
  if (lines[5] != "BYE") return Fail("expected BYE, got: " + lines[5]);

  std::cout << "serve_smoke: PASS\n";
  return 0;
}

// Spawns the server in --stdio mode with the given fault spec and drives
// `requests` strictly sequentially (write one line, read one reply), so
// every ORDER dispatches as a batch of one and the transcript is
// deterministic. Returns false on spawn/protocol failure.
bool RunFaultSession(const char* server_path, const std::string& fault_spec,
                     const std::vector<std::string>& requests,
                     std::vector<std::string>* replies) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    const std::string faults_arg = "--faults=" + fault_spec;
    execl(server_path, "spectral_serve", "--stdio", "--window-ms=1",
          "--cache=64", "--parallelism=1", faults_arg.c_str(),
          static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);

  FdStreambuf out_buf(to_child[1]);
  FdStreambuf in_buf(from_child[0]);
  std::ostream to_server(&out_buf);
  std::istream from_server(&in_buf);

  replies->clear();
  bool ok = true;
  for (const std::string& request : requests) {
    to_server << request << "\n";
    to_server.flush();
    std::string reply;
    if (!std::getline(from_server, reply)) {
      ok = false;
      break;
    }
    replies->push_back(reply);
  }
  close(to_child[1]);
  close(from_child[0]);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return false;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::cerr << "serve_smoke: fault-session server exited with status "
              << status << "\n";
    return false;
  }
  return ok;
}

int RunFaultDrills(const char* server_path) {
  const std::string snapshot =
      "/tmp/serve_smoke_faults_snapshot." + std::to_string(getpid());
  std::remove(snapshot.c_str());

  // Drill 1: every site armed at 100%. Orders fail with the typed
  // dispatch error, the snapshot rotation is queued then fails on its
  // injected write, and HEALTH reports all of it deterministically.
  const std::string all_sites =
      "serve.dispatch:1,solver.converge:1,snapshot.write:1,snapshot.rename:1";
  const std::vector<std::string> chaos_session = {
      "ORDER a spectral GRID 6x5",
      "ORDER b hilbert GRID 4x4",
      "SNAPSHOT sn " + snapshot,
      "HEALTH h",
      "QUIT",
  };
  std::vector<std::string> first;
  if (!RunFaultSession(server_path, all_sites, chaos_session, &first)) {
    return Fail("chaos session did not complete cleanly");
  }
  const std::vector<std::string> expect_chaos = {
      "ERROR a INTERNAL injected serve.dispatch fault: batch of 1 dropped",
      "ERROR b INTERNAL injected serve.dispatch fault: batch of 1 dropped",
      "SAVED sn 0 " + snapshot,
      "HEALTH h accepted=2 shed_overload=0 expired_deadline=0 served_ok=0"
      " served_error=2 retried_solves=0 degraded_orders=0 cache_entries=0"
      " snapshots_saved=0 snapshot_failures=1",
      "BYE",
  };
  if (first.size() != expect_chaos.size()) {
    return Fail("chaos session: expected " +
                std::to_string(expect_chaos.size()) + " replies, got " +
                std::to_string(first.size()));
  }
  for (size_t i = 0; i < expect_chaos.size(); ++i) {
    if (first[i] != expect_chaos[i]) {
      return Fail("chaos reply " + std::to_string(i) + " mismatch:\n  got  " +
                  first[i] + "\n  want " + expect_chaos[i]);
    }
  }
  // The failed rotation must not have produced a snapshot file.
  if (FILE* f = std::fopen(snapshot.c_str(), "r")) {
    std::fclose(f);
    return Fail("failed rotation left a snapshot at " + snapshot);
  }

  // Same seed, same session: the transcript must be byte-identical.
  std::vector<std::string> second;
  if (!RunFaultSession(server_path, all_sites, chaos_session, &second) ||
      second != first) {
    return Fail("chaos session is not reproducible across same-seed runs");
  }

  // Drill 2: only the solver faults. The point order degrades to exactly
  // the fallback curve order and is served, not errored — and never
  // cached, so HEALTH shows a second degraded solve for the repeat.
  const std::vector<std::string> degraded_session = {
      "ORDER a spectral GRID 6x5",
      "ORDER b spectral GRID 6x5",
      "HEALTH h",
      "QUIT",
  };
  std::vector<std::string> degraded;
  if (!RunFaultSession(server_path, "solver.converge:1", degraded_session,
                       &degraded)) {
    return Fail("degraded session did not complete cleanly");
  }
  const std::vector<std::string> expect_degraded = {
      ExpectedResponse("a", "hilbert", 6, 5),
      ExpectedResponse("b", "hilbert", 6, 5),
      "HEALTH h accepted=2 shed_overload=0 expired_deadline=0 served_ok=2"
      " served_error=0 retried_solves=2 degraded_orders=2 cache_entries=0"
      " snapshots_saved=0 snapshot_failures=0",
      "BYE",
  };
  for (size_t i = 0; i < expect_degraded.size(); ++i) {
    if (i >= degraded.size() || degraded[i] != expect_degraded[i]) {
      return Fail("degraded reply " + std::to_string(i) +
                  " mismatch:\n  got  " +
                  (i < degraded.size() ? degraded[i] : "<missing>") +
                  "\n  want " + expect_degraded[i]);
    }
  }

  std::remove((snapshot + ".tmp").c_str());
  std::cout << "serve_smoke: PASS (fault drills)\n";
  return 0;
}

}  // namespace
}  // namespace spectral

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3 ||
      (argc == 3 && std::string(argv[2]) != "--faults")) {
    std::cerr << "usage: serve_smoke <path to spectral_serve> [--faults]\n";
    return 2;
  }
  if (argc == 3) return spectral::RunFaultDrills(argv[1]);
  return spectral::Run(argv[1]);
}
