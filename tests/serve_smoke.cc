// End-to-end smoke test for the spectral_serve binary: spawns it in
// --stdio mode over a pipe pair, drives a mixed ORDER / STATS / QUIT
// session, and checks every ORDERED response byte-for-byte against a
// direct MakeOrderingEngine call on the same request. Plain main (no
// gtest): argv[1] is the path to the spectral_serve binary.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "serve/fd_stream.h"
#include "serve/wire.h"
#include "space/grid.h"
#include "space/point_set.h"

namespace spectral {
namespace {

int Fail(const std::string& message) {
  std::cerr << "serve_smoke: FAIL: " << message << "\n";
  return 1;
}

// What the server must answer for "ORDER <id> <engine> GRID <s0>x<s1>",
// computed through the engine directly (no service, no cache).
std::string ExpectedResponse(const std::string& id, const std::string& engine,
                             Coord s0, Coord s1) {
  const PointSet points = PointSet::FullGrid(GridSpec({s0, s1}));
  const OrderingRequest request = OrderingRequest::ForPoints(points, engine);
  auto impl = MakeOrderingEngine(engine);
  if (!impl.ok()) return "engine construction failed";
  auto result = (*impl)->Order(request);
  if (!result.ok()) return "direct order failed";
  return FormatOrderedResponse(id, *result);
}

int Run(const char* server_path) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    return Fail("pipe() failed");
  }
  const pid_t pid = fork();
  if (pid < 0) return Fail("fork() failed");
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl(server_path, "spectral_serve", "--stdio", "--window-ms=5",
          "--cache=64", static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);

  FdStreambuf out_buf(to_child[1]);
  FdStreambuf in_buf(from_child[0]);
  std::ostream to_server(&out_buf);
  std::istream from_server(&in_buf);

  // A pipelined mixed session: two engines, one repeated request (served
  // by coalescing or the cache — either way byte-identical), one bad
  // request, stats, quit.
  to_server << "ORDER a spectral GRID 6x5\n"
               "ORDER b bisection GRID 4x7\n"
               "ORDER c spectral GRID 6x5\n"
               "ORDER d no-such-engine GRID 3x3\n"
               "STATS s\n"
               "QUIT\n";
  to_server.flush();
  close(to_child[1]);

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(from_server, line)) lines.push_back(line);
  close(from_child[0]);

  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return Fail("waitpid() failed");
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return Fail("server exited with status " + std::to_string(status));
  }

  if (lines.size() != 6) {
    return Fail("expected 6 response lines, got " +
                std::to_string(lines.size()));
  }
  const std::string expect_a = ExpectedResponse("a", "spectral", 6, 5);
  const std::string expect_b = ExpectedResponse("b", "bisection", 4, 7);
  const std::string expect_c = ExpectedResponse("c", "spectral", 6, 5);
  if (lines[0] != expect_a) {
    return Fail("response a mismatch:\n  got  " + lines[0] + "\n  want " +
                expect_a);
  }
  if (lines[1] != expect_b) {
    return Fail("response b mismatch:\n  got  " + lines[1] + "\n  want " +
                expect_b);
  }
  if (lines[2] != expect_c) {
    return Fail("response c mismatch:\n  got  " + lines[2] + "\n  want " +
                expect_c);
  }
  if (lines[3].rfind("ERROR d NOT_FOUND", 0) != 0) {
    return Fail("expected 'ERROR d NOT_FOUND ...', got: " + lines[3]);
  }
  if (lines[4].rfind("STATS s ", 0) != 0) {
    return Fail("expected a STATS line, got: " + lines[4]);
  }
  // Two distinct fingerprints -> exactly two solves however the repeat was
  // served (within-batch coalescing or a cache hit).
  if (lines[4].find(" solves=2 ") == std::string::npos) {
    return Fail("expected solves=2 in: " + lines[4]);
  }
  if (lines[5] != "BYE") return Fail("expected BYE, got: " + lines[5]);

  std::cout << "serve_smoke: PASS\n";
  return 0;
}

}  // namespace
}  // namespace spectral

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: serve_smoke <path to spectral_serve>\n";
    return 2;
  }
  return spectral::Run(argv[1]);
}
