#include <cmath>

#include <gtest/gtest.h>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector_ops.h"

namespace spectral {
namespace {

TEST(VectorOps, DotAndNorm) {
  Vector x = {1.0, 2.0, 3.0};
  Vector y = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), 12.0);
  EXPECT_DOUBLE_EQ(Norm2(x), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(NormInf(y), 6.0);
}

TEST(VectorOps, AxpyAndScale) {
  Vector x = {1.0, 1.0};
  Vector y = {2.0, 3.0};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  Scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 2.5);
}

TEST(VectorOps, NormalizeUnitResult) {
  Vector x = {3.0, 4.0};
  const double norm = Normalize(x);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(Norm2(x), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeTinyVectorUntouched) {
  Vector x = {0.0, 0.0};
  EXPECT_EQ(Normalize(x), 0.0);
  EXPECT_EQ(x[0], 0.0);
}

TEST(VectorOps, OrthogonalizeAgainstBasis) {
  std::vector<Vector> basis = {{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  Vector x = {3.0, 4.0, 5.0};
  OrthogonalizeAgainst(basis, x);
  EXPECT_NEAR(x[0], 0.0, 1e-14);
  EXPECT_NEAR(x[1], 0.0, 1e-14);
  EXPECT_NEAR(x[2], 5.0, 1e-14);
}

TEST(DenseMatrix, IdentityMatVec) {
  const DenseMatrix eye = DenseMatrix::Identity(3);
  Vector x = {1.0, 2.0, 3.0};
  Vector y(3);
  eye.MatVec(x, y);
  EXPECT_EQ(y, x);
}

TEST(DenseMatrix, MatVecKnown) {
  DenseMatrix a(2, 3);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(0, 2) = 3;
  a.At(1, 0) = 4;
  a.At(1, 1) = 5;
  a.At(1, 2) = 6;
  Vector x = {1.0, 0.0, -1.0};
  Vector y(2);
  a.MatVec(x, y);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(DenseMatrix, SymmetryError) {
  DenseMatrix a(2, 2);
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.5;
  EXPECT_DOUBLE_EQ(a.SymmetryError(), 0.5);
}

TEST(SparseMatrix, FromTripletsMergesDuplicates) {
  std::vector<Triplet> t = {{0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 1.0}};
  const SparseMatrix m = SparseMatrix::FromTriplets(2, 2, t);
  EXPECT_EQ(m.nnz(), 2);
  const DenseMatrix d = DenseMatrix::FromSparse(m);
  EXPECT_DOUBLE_EQ(d.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.At(0, 0), 0.0);
}

TEST(SparseMatrix, MatVecMatchesDense) {
  std::vector<Triplet> t = {{0, 0, 2.0}, {0, 2, -1.0}, {1, 1, 3.0},
                            {2, 0, -1.0}, {2, 2, 2.0}};
  const SparseMatrix m = SparseMatrix::FromTriplets(3, 3, t);
  const DenseMatrix d = DenseMatrix::FromSparse(m);
  Vector x = {1.0, 2.0, 3.0};
  Vector ys(3), yd(3);
  m.MatVec(x, ys);
  d.MatVec(x, yd);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-14);
}

TEST(SparseMatrix, GershgorinBoundsSpectralRadius) {
  // Laplacian-like matrix: diag 2, off -1.
  std::vector<Triplet> t = {{0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0},
                            {1, 1, 2.0}};
  const SparseMatrix m = SparseMatrix::FromTriplets(2, 2, t);
  // Eigenvalues are 1 and 3; Gershgorin gives 3.
  EXPECT_DOUBLE_EQ(m.GershgorinBound(), 3.0);
}

TEST(SparseMatrix, SymmetryErrorDetectsAsymmetry) {
  std::vector<Triplet> sym = {{0, 1, 1.0}, {1, 0, 1.0}};
  EXPECT_DOUBLE_EQ(SparseMatrix::FromTriplets(2, 2, sym).SymmetryError(), 0.0);
  std::vector<Triplet> asym = {{0, 1, 1.0}};
  EXPECT_DOUBLE_EQ(SparseMatrix::FromTriplets(2, 2, asym).SymmetryError(), 1.0);
}

TEST(SparseMatrix, Diagonal) {
  std::vector<Triplet> t = {{0, 0, 4.0}, {1, 1, 5.0}, {0, 1, 9.0}};
  const Vector diag = SparseMatrix::FromTriplets(2, 2, t).Diagonal();
  EXPECT_DOUBLE_EQ(diag[0], 4.0);
  EXPECT_DOUBLE_EQ(diag[1], 5.0);
}

TEST(SparseMatrix, EmptyMatrix) {
  const SparseMatrix m = SparseMatrix::FromTriplets(0, 0, {});
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

}  // namespace
}  // namespace spectral
