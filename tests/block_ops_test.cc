// Panel-blocked reorthogonalization kernel tests: correctness of the
// BCGS2 panel kernels against the scalar reference, rank detection across
// panel boundaries, the panel work counter, and the byte-identity contract
// across pool sizes (the kernels parallelize only across independent
// columns, so any pool size must reproduce the serial result bit for bit).

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/block_ops.h"
#include "linalg/vector_ops.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace spectral {
namespace {

VectorBlock RandomBlock(int64_t cols, int64_t n, uint64_t seed) {
  Rng rng(seed);
  VectorBlock block(static_cast<size_t>(cols),
                    Vector(static_cast<size_t>(n)));
  for (Vector& col : block) {
    for (double& v : col) v = rng.UniformDouble(-1.0, 1.0);
  }
  return block;
}

VectorBlock OrthonormalBasis(int64_t cols, int64_t n, uint64_t seed) {
  VectorBlock basis = RandomBlock(cols, n, seed);
  EXPECT_EQ(OrthonormalizeBlock(basis), cols);
  return basis;
}

TEST(BlockOpsPanels, RemovesAllBasisComponents) {
  const int64_t n = 200;
  const VectorBlock basis = OrthonormalBasis(19, n, 11);  // 3 panels (8,8,3)
  VectorBlock block = RandomBlock(5, n, 22);
  OrthogonalizeBlockAgainst(basis, block);
  for (const Vector& col : block) {
    for (const Vector& b : basis) {
      EXPECT_NEAR(Dot(b, col), 0.0, 1e-12);
    }
  }
}

TEST(BlockOpsPanels, PanelCounterCountsApplications) {
  const int64_t n = 64;
  const VectorBlock basis = OrthonormalBasis(20, n, 5);  // 3 panels
  VectorBlock block = RandomBlock(4, n, 6);
  int64_t panels = 0;
  OrthogonalizeBlockAgainst(basis, block, nullptr, &panels);
  // 2 passes x 3 panels x 4 columns.
  EXPECT_EQ(panels, 24);
}

TEST(BlockOpsPanels, OrthonormalizeFactorsAcrossPanelBoundaries) {
  // 12 incoming columns span two panels; plant dependencies that cross the
  // panel boundary so the second panel must be cleaned against survivors
  // of the first.
  const int64_t n = 96;
  VectorBlock block = RandomBlock(12, n, 33);
  block[9] = block[0];                       // duplicate from panel 1
  Scale(2.0, block[9]);
  block[10].assign(block[10].size(), 0.0);   // combination across panels
  Axpy(1.0, block[2], block[10]);
  Axpy(-3.0, block[8], block[10]);
  int64_t panels = 0;
  const int64_t rank =
      OrthonormalizeBlock(block, /*drop_tol=*/1e-10, nullptr, &panels);
  EXPECT_EQ(rank, 10);
  ASSERT_EQ(block.size(), 10u);
  EXPECT_GT(panels, 0);
  for (size_t i = 0; i < block.size(); ++i) {
    for (size_t j = i; j < block.size(); ++j) {
      const double expect = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(Dot(block[i], block[j]), expect, 1e-10);
    }
  }
}

TEST(BlockOpsPanels, MatchesScalarReferenceSubspace) {
  // The blocked kernel and the scalar MGS reference differ in rounding but
  // must remove the same subspace: residual projections on the basis are
  // zero and the blocked result reconstructs the scalar one.
  const int64_t n = 128;
  const VectorBlock basis = OrthonormalBasis(10, n, 44);
  VectorBlock blocked = RandomBlock(3, n, 55);
  VectorBlock scalar = blocked;
  OrthogonalizeBlockAgainst(basis, blocked);
  for (Vector& col : scalar) {
    for (int pass = 0; pass < 2; ++pass) {
      OrthogonalizeAgainst(basis, col);
    }
  }
  for (size_t k = 0; k < blocked.size(); ++k) {
    Vector diff = blocked[k];
    Axpy(-1.0, scalar[k], diff);
    EXPECT_NEAR(Norm2(diff), 0.0, 1e-11);
  }
}

// The byte-identity contract: pool parallelism is across independent
// columns only, so every pool size reproduces the serial result exactly.
// n * cols clears the kernel's minimum-work gate so the pooled path
// actually engages.
TEST(BlockOpsPanels, OrthogonalizeByteIdenticalAcrossPoolSizes) {
  const int64_t n = 8192;
  const VectorBlock basis = OrthonormalBasis(12, n, 66);
  const VectorBlock input = RandomBlock(6, n, 77);

  VectorBlock serial = input;
  int64_t serial_panels = 0;
  OrthogonalizeBlockAgainst(basis, serial, nullptr, &serial_panels);

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    VectorBlock pooled = input;
    int64_t pooled_panels = 0;
    OrthogonalizeBlockAgainst(basis, pooled, &pool, &pooled_panels);
    EXPECT_EQ(pooled_panels, serial_panels);
    for (size_t k = 0; k < pooled.size(); ++k) {
      for (size_t i = 0; i < pooled[k].size(); ++i) {
        ASSERT_DOUBLE_EQ(pooled[k][i], serial[k][i])
            << "threads=" << threads << " col=" << k << " row=" << i;
      }
    }
  }
}

TEST(BlockOpsPanels, OrthonormalizeByteIdenticalAcrossPoolSizes) {
  const int64_t n = 8192;
  const VectorBlock input = RandomBlock(10, n, 88);

  VectorBlock serial = input;
  int64_t serial_panels = 0;
  const int64_t serial_rank =
      OrthonormalizeBlock(serial, /*drop_tol=*/1e-10, nullptr,
                          &serial_panels);

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    VectorBlock pooled = input;
    int64_t pooled_panels = 0;
    const int64_t pooled_rank =
        OrthonormalizeBlock(pooled, /*drop_tol=*/1e-10, &pool,
                            &pooled_panels);
    EXPECT_EQ(pooled_rank, serial_rank);
    EXPECT_EQ(pooled_panels, serial_panels);
    for (size_t k = 0; k < pooled.size(); ++k) {
      for (size_t i = 0; i < pooled[k].size(); ++i) {
        ASSERT_DOUBLE_EQ(pooled[k][i], serial[k][i])
            << "threads=" << threads << " col=" << k << " row=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace spectral
