#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "workload/generators.h"
#include "workload/trace.h"

namespace spectral {
namespace {

TEST(Generators, FullGridCount) {
  const PointSet points = MakeFullGrid(GridSpec({3, 4}));
  EXPECT_EQ(points.size(), 12);
}

TEST(Generators, UniformSampleDistinctAndInGrid) {
  const GridSpec grid({10, 10});
  Rng rng(1);
  const PointSet points = SampleUniformPoints(grid, 40, rng);
  EXPECT_EQ(points.size(), 40);
  std::set<int64_t> cells;
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(grid.Contains(points[i]));
    cells.insert(grid.Flatten(points[i]));
  }
  EXPECT_EQ(cells.size(), 40u);
}

TEST(Generators, UniformSampleFullGrid) {
  const GridSpec grid({4, 4});
  Rng rng(2);
  const PointSet points = SampleUniformPoints(grid, 16, rng);
  EXPECT_EQ(points.size(), 16);
}

TEST(Generators, GaussianClustersAreClustered) {
  const GridSpec grid({64, 64});
  Rng rng(3);
  const PointSet points = SampleGaussianClusters(grid, 2, 200, 0.04, rng);
  EXPECT_EQ(points.size(), 200);
  // Clustered data occupies a small fraction of the bounding box.
  std::set<int64_t> rows;
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(grid.Contains(points[i]));
    rows.insert(points.At(i, 0));
  }
  EXPECT_LT(rows.size(), 64u);
}

TEST(Generators, ConnectedBlobIsConnectedAndSized) {
  const GridSpec grid({20, 20});
  Rng rng(4);
  const PointSet points = SampleConnectedBlob(grid, 50, rng);
  EXPECT_EQ(points.size(), 50);
  // Connectivity: BFS over Manhattan-1 neighbors reaches everything.
  std::unordered_set<int64_t> cells;
  for (int64_t i = 0; i < points.size(); ++i) {
    cells.insert(grid.Flatten(points[i]));
  }
  std::vector<int64_t> stack = {grid.Flatten(points[0])};
  std::unordered_set<int64_t> visited = {stack[0]};
  std::vector<Coord> p(2), q(2);
  while (!stack.empty()) {
    const int64_t cell = stack.back();
    stack.pop_back();
    grid.Unflatten(cell, p);
    for (int a = 0; a < 2; ++a) {
      for (int step = -1; step <= 1; step += 2) {
        q = p;
        q[static_cast<size_t>(a)] = static_cast<Coord>(q[static_cast<size_t>(a)] + step);
        if (!grid.Contains(q)) continue;
        const int64_t nb = grid.Flatten(q);
        if (cells.count(nb) > 0 && visited.insert(nb).second) {
          stack.push_back(nb);
        }
      }
    }
  }
  EXPECT_EQ(visited.size(), cells.size());
}

TEST(Generators, Deterministic) {
  const GridSpec grid({16, 16});
  Rng a(9), b(9);
  const PointSet pa = SampleUniformPoints(grid, 30, a);
  const PointSet pb = SampleUniformPoints(grid, 30, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (int64_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa.At(i, 0), pb.At(i, 0));
    EXPECT_EQ(pa.At(i, 1), pb.At(i, 1));
  }
}

TEST(Trace, CorrelatedTraceLengthAndRange) {
  CorrelatedTraceOptions options;
  options.length = 5000;
  const CorrelatedTrace trace = MakeCorrelatedTrace(100, options);
  EXPECT_EQ(static_cast<int64_t>(trace.accesses.size()), 5000);
  for (int64_t a : trace.accesses) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 100);
  }
  EXPECT_EQ(static_cast<int>(trace.hot_pairs.size()), options.num_hot_pairs);
}

TEST(Trace, HotPairsAreDisjoint) {
  CorrelatedTraceOptions options;
  options.num_hot_pairs = 20;
  const CorrelatedTrace trace = MakeCorrelatedTrace(100, options);
  std::set<int64_t> endpoints;
  for (const auto& [p, q] : trace.hot_pairs) {
    EXPECT_TRUE(endpoints.insert(p).second);
    EXPECT_TRUE(endpoints.insert(q).second);
  }
}

TEST(Trace, CorrelationIsPresent) {
  // With follow_probability 1 and hot_fraction 1, every access to p is
  // followed by its partner q.
  CorrelatedTraceOptions options;
  options.length = 1000;
  options.follow_probability = 1.0;
  options.hot_fraction = 1.0;
  const CorrelatedTrace trace = MakeCorrelatedTrace(50, options);
  std::map<int64_t, int64_t> partner;
  for (const auto& [p, q] : trace.hot_pairs) partner[p] = q;
  for (size_t i = 0; i + 1 < trace.accesses.size(); i += 2) {
    auto it = partner.find(trace.accesses[i]);
    ASSERT_NE(it, partner.end());
    EXPECT_EQ(trace.accesses[i + 1], it->second);
  }
}

TEST(Trace, RandomWalkStepsAreLocal) {
  const GridSpec grid({16, 16});
  RandomWalkOptions options;
  options.length = 2000;
  options.restart_probability = 0.0;
  const auto trace = MakeRandomWalkTrace(grid, options);
  ASSERT_EQ(static_cast<int64_t>(trace.size()), 2000);
  std::vector<Coord> a(2), b(2);
  for (size_t i = 1; i < trace.size(); ++i) {
    grid.Unflatten(trace[i - 1], a);
    grid.Unflatten(trace[i], b);
    EXPECT_EQ(ManhattanDistance(a, b), 1) << "step " << i;
  }
}

TEST(Trace, RandomWalkRestartsTeleport) {
  const GridSpec grid({32, 32});
  RandomWalkOptions options;
  options.length = 500;
  options.restart_probability = 1.0;  // every step teleports
  const auto trace = MakeRandomWalkTrace(grid, options);
  // With constant teleporting the trace should touch many distinct cells.
  std::set<int64_t> distinct(trace.begin(), trace.end());
  EXPECT_GT(distinct.size(), 300u);
}

}  // namespace
}  // namespace spectral
