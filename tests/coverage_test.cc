// Gap-coverage tests: options and paths not exercised by the module suites
// (degeneracy policies, Lanczos warm starts, kernel weights, shape
// enumeration, per-query callbacks).

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "eigen/fiedler.h"
#include "eigen/lanczos.h"
#include "eigen/operator.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "graph/point_graph.h"
#include "query/range_query.h"
#include "space/point_set.h"

namespace spectral {
namespace {

constexpr double kPi = std::numbers::pi;

SparseMatrix GridLap(std::vector<Coord> sides) {
  return BuildLaplacian(BuildGridGraph(GridSpec(std::move(sides))));
}

TEST(FiedlerPolicies, AxisAlignedPicksOneAxisOnSquareGrid) {
  const GridSpec grid({5, 5});
  const PointSet points = PointSet::FullGrid(grid);
  const auto axes = points.CenteredAxisFunctions();
  FiedlerOptions options;
  options.num_pairs = 3;
  options.degeneracy_policy = DegeneracyPolicy::kAxisAligned;
  auto result = ComputeFiedler(GridLap({5, 5}), options, axes);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->degenerate_dim, 2);
  // Aligned: correlation with axis 0 strong, with axis 1 ~zero.
  const double c0 = std::fabs(Dot(result->fiedler, axes[0]));
  const double c1 = std::fabs(Dot(result->fiedler, axes[1]));
  EXPECT_GT(c0, 10.0 * c1);
}

TEST(FiedlerPolicies, NonePassesRawSolverVector) {
  FiedlerOptions none;
  none.degeneracy_policy = DegeneracyPolicy::kNone;
  auto result = ComputeFiedler(GridLap({4, 4}), none);
  ASSERT_TRUE(result.ok());
  // Still a valid unit eigenvector.
  EXPECT_NEAR(Norm2(result->fiedler), 1.0, 1e-9);
}

TEST(FiedlerPolicies, PoliciesAgreeOnNonDegenerateInput) {
  const auto lap = GridLap({7, 3});
  FiedlerOptions mix;
  mix.degeneracy_policy = DegeneracyPolicy::kBalancedMix;
  FiedlerOptions aligned;
  aligned.degeneracy_policy = DegeneracyPolicy::kAxisAligned;
  const PointSet points = PointSet::FullGrid(GridSpec({7, 3}));
  const auto axes = points.CenteredAxisFunctions();
  auto a = ComputeFiedler(lap, mix, axes);
  auto b = ComputeFiedler(lap, aligned, axes);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(std::fabs(Dot(a->fiedler, b->fiedler)), 1.0, 1e-9);
}

TEST(LanczosWarmStart, ExactEigenvectorConvergesImmediately) {
  // Feed the analytic Fiedler vector of a path as the start: Lanczos must
  // converge in a single (cheap) cycle.
  const int n = 60;
  const SparseMatrix lap = GridLap({n});
  const double shift = lap.GershgorinBound() + 1e-9;
  const SparseOperator inner(&lap);
  const ShiftNegateOperator op(&inner, shift);
  std::vector<Vector> deflate = {
      Vector(static_cast<size_t>(n), 1.0 / std::sqrt(static_cast<double>(n)))};

  LanczosOptions warm;
  warm.start.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    warm.start[static_cast<size_t>(i)] = std::cos((i + 0.5) * kPi / n);
  }
  auto result = LargestEigenpair(op, deflate, warm);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->restarts, 1);
  EXPECT_NEAR(shift - result->eigenvalue, 2.0 - 2.0 * std::cos(kPi / n),
              1e-8);
}

TEST(LanczosWarmStart, DegenerateStartFallsBackToRandom) {
  const int n = 20;
  const SparseMatrix lap = GridLap({n});
  const SparseOperator inner(&lap);
  const ShiftNegateOperator op(&inner, lap.GershgorinBound() + 1e-9);
  const Vector ones(static_cast<size_t>(n),
                    1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<Vector> deflate = {ones};
  LanczosOptions options;
  options.start = ones;  // entirely inside the deflation span
  auto result = LargestEigenpair(op, deflate, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
}

TEST(PointGraphKernels, GaussianWeights) {
  PointSet points(1);
  points.Add(std::vector<Coord>{0});
  points.Add(std::vector<Coord>{1});
  points.Add(std::vector<Coord>{3});
  PointGraphOptions options;
  options.radius = 2;
  options.kernel = WeightKernel::kGaussian;
  options.gaussian_sigma = 2.0;
  auto g = BuildPointGraph(points, options);
  ASSERT_TRUE(g.ok());
  // Edge (0,1) at d=1: w = exp(-0.25); edge (1,2) at d=2: w = exp(-1).
  EXPECT_NEAR(g->WeightedDegree(0), std::exp(-0.25), 1e-12);
  EXPECT_NEAR(g->WeightedDegree(2), std::exp(-1.0), 1e-12);
}

TEST(PointGraphKernels, KernelsOrderWeightsSensibly) {
  PointSet points(1);
  points.Add(std::vector<Coord>{0});
  points.Add(std::vector<Coord>{2});
  PointGraphOptions uniform;
  uniform.radius = 2;
  PointGraphOptions inv = uniform;
  inv.kernel = WeightKernel::kInverseDistance;
  PointGraphOptions gauss = uniform;
  gauss.kernel = WeightKernel::kGaussian;
  gauss.gaussian_sigma = 1.0;
  auto gu = BuildPointGraph(points, uniform);
  auto gi = BuildPointGraph(points, inv);
  auto gg = BuildPointGraph(points, gauss);
  ASSERT_TRUE(gu.ok());
  ASSERT_TRUE(gi.ok());
  ASSERT_TRUE(gg.ok());
  EXPECT_GT(gu->WeightedDegree(0), gi->WeightedDegree(0));
  EXPECT_GT(gi->WeightedDegree(0), gg->WeightedDegree(0));
}

TEST(ShapesForVolume, WithinToleranceWhenAchievable) {
  const GridSpec grid = GridSpec::Uniform(2, 10);  // 100 cells
  const auto shapes = ShapesForVolume(grid, 0.25, 0.1);
  ASSERT_FALSE(shapes.empty());
  for (const auto& s : shapes) {
    EXPECT_GE(s.Volume(), 22);
    EXPECT_LE(s.Volume(), 28);
  }
}

TEST(ShapesForVolume, FallsBackToClosest) {
  // 1-d grid of 7 cells, target 40% = 2.8 cells with zero tolerance: the
  // closest integer extents are {3}.
  const GridSpec grid({7});
  const auto shapes = ShapesForVolume(grid, 0.4, 0.0);
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0].Volume(), 3);
}

TEST(ShapesForVolume, IncludesSlabShapes) {
  const GridSpec grid = GridSpec::Uniform(2, 8);
  const auto shapes = ShapesForVolume(grid, 0.125, 0.05);  // 8 cells
  bool has_slab = false;
  for (const auto& s : shapes) {
    if (s.extents[0] == 8 || s.extents[1] == 8) has_slab = true;
  }
  EXPECT_TRUE(has_slab);  // the 8x1 / 1x8 shapes are part of the population
}

TEST(ForEachRangeQuery, VisitsEveryPlacementWithCorrectVolume) {
  const GridSpec grid({5, 4});
  const LinearOrder order = LinearOrder::Identity(20);
  RangeQueryShape shape;
  shape.extents = {2, 3};
  int64_t count = 0;
  ForEachRangeQuery(grid, order, shape,
                    [&](int64_t min_rank, int64_t max_rank, int64_t volume) {
                      EXPECT_EQ(volume, 6);
                      EXPECT_GE(max_rank - min_rank, volume - 1);
                      ++count;
                    });
  EXPECT_EQ(count, (5 - 2 + 1) * (4 - 3 + 1));
}

TEST(ForEachRangeQuery, AgreesWithEvaluate) {
  const GridSpec grid({6, 6});
  const PointSet points = PointSet::FullGrid(grid);
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto order = (*engine)->Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(order.ok());
  RangeQueryShape shape;
  shape.extents = {3, 2};
  int64_t max_spread = 0;
  ForEachRangeQuery(grid, order->order, shape,
                    [&](int64_t min_rank, int64_t max_rank, int64_t) {
                      max_spread = std::max(max_spread, max_rank - min_rank);
                    });
  RangeQueryOptions options;
  options.include_axis_permutations = false;
  const auto stats =
      EvaluateRangeQueries(grid, order->order, shape, options);
  EXPECT_EQ(stats.max_spread, max_spread);
}

TEST(MapperOptions, QuantizationDisabledStillValid) {
  const PointSet points = PointSet::FullGrid(GridSpec({6, 4}));
  OrderingRequest request = OrderingRequest::ForPoints(points);
  request.options.spectral.rank_quantum_rel = 0.0;  // raw double ordering
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Order(request);
  ASSERT_TRUE(result.ok());
  std::vector<bool> seen(24, false);
  for (int64_t i = 0; i < 24; ++i) {
    seen[static_cast<size_t>(result->order.RankOf(i))] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(MapperOptions, CanonicalizationOffIsStillOptimal) {
  const GridSpec grid({5, 5});
  const PointSet points = PointSet::FullGrid(grid);
  OrderingRequest request = OrderingRequest::ForPoints(points);
  request.options.spectral.canonicalize_with_axes = false;
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Order(request);
  ASSERT_TRUE(result.ok());
  const Graph g = BuildGridGraph(grid);
  EXPECT_NEAR(DirichletEnergy(g, result->embedding), result->lambda2, 1e-7);
}

}  // namespace
}  // namespace spectral
