#include <cmath>

#include <gtest/gtest.h>

#include "core/recursive_bisection.h"
#include "graph/grid_graph.h"
#include "graph/subgraph.h"
#include "workload/generators.h"

namespace spectral {
namespace {

TEST(Subgraph, InducedEdgesAndMapping) {
  // Path 0-1-2-3-4; induce {1, 2, 4}.
  const Graph g = BuildGridGraph(GridSpec({5}));
  const std::vector<int64_t> verts = {1, 2, 4};
  const InducedSubgraph sub = BuildInducedSubgraph(g, verts);
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 1);  // only 1-2 survives
  EXPECT_EQ(sub.local_to_global[0], 1);
  EXPECT_EQ(sub.local_to_global[2], 4);
  EXPECT_EQ(sub.graph.Degree(2), 0);  // vertex 4 is isolated
}

TEST(Subgraph, KeepsWeights) {
  std::vector<GraphEdge> edges = {{0, 1, 2.5}, {1, 2, 1.0}};
  const Graph g = Graph::FromEdges(3, edges);
  const std::vector<int64_t> verts = {0, 1};
  const InducedSubgraph sub = BuildInducedSubgraph(g, verts);
  EXPECT_DOUBLE_EQ(sub.graph.WeightedDegree(0), 2.5);
}

TEST(Subgraph, EmptySelection) {
  const Graph g = BuildGridGraph(GridSpec({3}));
  const InducedSubgraph sub = BuildInducedSubgraph(g, {});
  EXPECT_EQ(sub.graph.num_vertices(), 0);
}

TEST(RecursiveBisection, PathOrderIsContiguous) {
  const PointSet points = PointSet::FullGrid(GridSpec({32}));
  auto result = RecursiveSpectralOrder(points);
  ASSERT_TRUE(result.ok()) << result.status();
  const bool forward = result->order.RankOf(0) == 0;
  for (int64_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(result->order.RankOf(i), forward ? i : points.size() - 1 - i);
  }
  EXPECT_GT(result->num_solves, 1);  // actually recursed
  EXPECT_GT(result->depth, 0);
}

TEST(RecursiveBisection, ProducesPermutationOn2DGrid) {
  const PointSet points = PointSet::FullGrid(GridSpec({9, 7}));
  auto result = RecursiveSpectralOrder(points);
  ASSERT_TRUE(result.ok());
  std::vector<bool> seen(static_cast<size_t>(points.size()), false);
  for (int64_t i = 0; i < points.size(); ++i) {
    const int64_t r = result->order.RankOf(i);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, points.size());
    EXPECT_FALSE(seen[static_cast<size_t>(r)]);
    seen[static_cast<size_t>(r)] = true;
  }
}

TEST(RecursiveBisection, LeafSizeControlsSolves) {
  const PointSet points = PointSet::FullGrid(GridSpec({16}));
  RecursiveBisectionOptions coarse;
  coarse.leaf_size = 16;  // no split needed
  auto one = RecursiveSpectralOrder(points, coarse);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->num_solves, 1);
  EXPECT_EQ(one->depth, 0);

  RecursiveBisectionOptions fine;
  fine.leaf_size = 2;
  auto many = RecursiveSpectralOrder(points, fine);
  ASSERT_TRUE(many.ok());
  EXPECT_GT(many->num_solves, 3);
}

TEST(RecursiveBisection, HandlesDisconnectedInput) {
  PointSet points(2);
  for (Coord i = 0; i < 6; ++i) points.Add(std::vector<Coord>{0, i});
  for (Coord i = 0; i < 3; ++i) points.Add(std::vector<Coord>{10, i});
  auto result = RecursiveSpectralOrder(points);
  ASSERT_TRUE(result.ok());
  // Larger component (6 points) first.
  for (int64_t i = 0; i < 6; ++i) EXPECT_LT(result->order.RankOf(i), 6);
  for (int64_t i = 6; i < 9; ++i) EXPECT_GE(result->order.RankOf(i), 6);
}

TEST(RecursiveBisection, MedianCutHalvesAreRankContiguous) {
  // After the first cut, the lower half of Fiedler values occupies ranks
  // [0, n/2): verify on a path where the halves are the two ends.
  const PointSet points = PointSet::FullGrid(GridSpec({20}));
  RecursiveBisectionOptions options;
  options.leaf_size = 10;
  auto result = RecursiveSpectralOrder(points, options);
  ASSERT_TRUE(result.ok());
  // Ranks 0..9 must be one contiguous end of the path.
  std::vector<int64_t> low_points;
  for (int64_t r = 0; r < 10; ++r) {
    low_points.push_back(result->order.PointAtRank(r));
  }
  std::sort(low_points.begin(), low_points.end());
  const bool left_end = low_points[0] == 0 && low_points[9] == 9;
  const bool right_end = low_points[0] == 10 && low_points[9] == 19;
  EXPECT_TRUE(left_end || right_end);
}

TEST(RecursiveBisection, QualityComparableToDirectOrder) {
  // Both spectral variants produce low-cost arrangements: within an order
  // of magnitude of each other and far below a scrambled order. (On square
  // grids the direct order benefits from the degenerate diagonal mix, so
  // the variants are not expected to tie exactly.)
  const GridSpec grid({8, 8});
  const PointSet points = PointSet::FullGrid(grid);
  const Graph g = BuildGridGraph(grid);
  auto direct = SpectralMapper().Map(points);
  auto bisect = RecursiveSpectralOrder(points);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(bisect.ok());
  const double direct_cost = direct->order.SquaredArrangementCost(g);
  const double bisect_cost = bisect->order.SquaredArrangementCost(g);
  EXPECT_LT(bisect_cost, 10.0 * direct_cost);
  EXPECT_LT(direct_cost, 10.0 * bisect_cost);

  std::vector<int64_t> scrambled_ranks(64);
  for (int64_t i = 0; i < 64; ++i) {
    scrambled_ranks[static_cast<size_t>(i)] = (i * 37) % 64;
  }
  auto scrambled = LinearOrder::FromRanks(scrambled_ranks);
  ASSERT_TRUE(scrambled.ok());
  const double scrambled_cost = scrambled->SquaredArrangementCost(g);
  EXPECT_LT(bisect_cost, scrambled_cost);
  EXPECT_LT(direct_cost, scrambled_cost);
}

TEST(RecursiveBisection, GraphInputWithWeights) {
  std::vector<GraphEdge> edges = {
      {0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {4, 5, 1.0}};
  const Graph g = Graph::FromEdges(6, edges);
  RecursiveBisectionOptions options;
  options.leaf_size = 2;
  auto result = RecursiveSpectralOrderGraph(g, nullptr, options);
  ASSERT_TRUE(result.ok());
  const bool forward = result->order.RankOf(0) == 0;
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result->order.RankOf(i), forward ? i : 5 - i);
  }
}

TEST(RecursiveBisection, AffinityEdgesHonored) {
  const PointSet points = PointSet::FullGrid(GridSpec({12}));
  RecursiveBisectionOptions plain;
  auto base = RecursiveSpectralOrder(points, plain);
  ASSERT_TRUE(base.ok());
  const int64_t before =
      std::abs(base->order.RankOf(1) - base->order.RankOf(10));

  RecursiveBisectionOptions tuned;
  tuned.base.affinity_edges.push_back({1, 10, 6.0});
  auto result = RecursiveSpectralOrder(points, tuned);
  ASSERT_TRUE(result.ok());
  const int64_t after =
      std::abs(result->order.RankOf(1) - result->order.RankOf(10));
  EXPECT_LT(after, before);
}

TEST(RecursiveBisection, EmptyInputRejected) {
  PointSet points(2);
  EXPECT_FALSE(RecursiveSpectralOrder(points).ok());
}

TEST(RecursiveBisection, WarmStartedChildrenMatchColdOrders) {
  // The rescue contract: feeding each child solve the parent's restricted
  // Fiedler block changes COST only, never the order. Both runs use the
  // same dense_threshold so the solver path per child is identical and the
  // only difference is the start (the solver's warm == cold contract plus
  // the quantized ranks absorb the remaining rounding noise).
  const PointSet points = PointSet::FullGrid(GridSpec({24, 24}));

  RecursiveBisectionOptions warm;
  warm.base.fiedler.dense_threshold = 32;
  warm.warm_start_children = true;
  auto warm_result = RecursiveSpectralOrder(points, warm);
  ASSERT_TRUE(warm_result.ok()) << warm_result.status();
  EXPECT_GT(warm_result->warm_solves, 0);
  EXPECT_GT(warm_result->matvecs, 0);

  RecursiveBisectionOptions cold = warm;
  cold.warm_start_children = false;
  auto cold_result = RecursiveSpectralOrder(points, cold);
  ASSERT_TRUE(cold_result.ok()) << cold_result.status();
  EXPECT_EQ(cold_result->warm_solves, 0);

  EXPECT_EQ(warm_result->num_solves, cold_result->num_solves);
  for (int64_t i = 0; i < points.size(); ++i) {
    ASSERT_EQ(warm_result->order.RankOf(i), cold_result->order.RankOf(i))
        << "point " << i;
  }
  // The whole point of the warm start: strictly less iteration work.
  EXPECT_LT(warm_result->matvecs, cold_result->matvecs);
}

}  // namespace
}  // namespace spectral
