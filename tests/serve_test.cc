// OrderingServer tests — the serving tier's contract: orders served
// through the batcher are byte-identical to direct serial engine calls
// (coalescing on or off, any window, cache cold or warm), overload and
// deadline expiry produce clean Statuses (never a hang), a warm-restarted
// server performs zero eigensolves on previously-served fingerprints, and
// the wire protocol round-trips over streams and TCP.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "serve/fd_stream.h"
#include "serve/ordering_server.h"
#include "serve/wire.h"
#include "space/grid.h"
#include "space/point_set.h"
#include "util/fault.h"

namespace spectral {
namespace {

std::vector<int64_t> Ranks(const LinearOrder& order) {
  std::vector<int64_t> ranks(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(i)] = order.RankOf(i);
  }
  return ranks;
}

std::string StripCacheTag(const std::string& detail) {
  const size_t pos = detail.rfind(" | cache=");
  return pos == std::string::npos ? detail : detail.substr(0, pos);
}

// Full-payload equality against a direct engine call on the same request.
void ExpectMatchesDirect(const OrderingResult& served,
                         const OrderingRequest& request) {
  auto engine = MakeOrderingEngine(request.engine);
  ASSERT_TRUE(engine.ok());
  auto reference = (*engine)->Order(request);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(Ranks(served.order), Ranks(reference->order));
  EXPECT_EQ(served.embedding, reference->embedding);
  EXPECT_EQ(served.lambda2, reference->lambda2);
  EXPECT_EQ(served.matvecs, reference->matvecs);
  EXPECT_EQ(served.method, reference->method);
  EXPECT_EQ(StripCacheTag(served.detail), reference->detail);
}

OrderingRequest GridRequest(Coord s0, Coord s1,
                            const std::string& engine = "spectral") {
  return OrderingRequest::ForPoints(
      std::make_shared<const PointSet>(PointSet::FullGrid(GridSpec({s0, s1}))),
      engine);
}

TEST(OrderingServer, CoalescedBatchMatchesDirectCalls) {
  // Cache OFF: the repeats below can only be deduplicated by within-batch
  // coalescing, which Pause/Resume makes deterministic.
  OrderingServerOptions options;
  options.service.cache_capacity = 0;
  options.service.parallelism = 2;
  options.window_ms = 0.0;
  OrderingServer server(options);

  const std::vector<OrderingRequest> requests = {
      GridRequest(6, 5), GridRequest(4, 7, "bisection"), GridRequest(6, 5),
      GridRequest(5, 5, "hilbert"), GridRequest(6, 5)};
  server.Pause();
  std::vector<std::future<StatusOr<OrderingResult>>> futures;
  for (const OrderingRequest& request : requests) {
    futures.push_back(server.Submit(request));
  }
  server.Resume();
  for (size_t i = 0; i < requests.size(); ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectMatchesDirect(*result, requests[i]);
  }

  const OrderingServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 5);
  EXPECT_EQ(stats.served_ok, 5);
  EXPECT_EQ(stats.service.batches, 1);
  EXPECT_EQ(stats.service.solves, 3);
  EXPECT_EQ(stats.service.coalesced_requests, 2);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.max_queue_depth, 5);
}

TEST(OrderingServer, WindowCoalescesConcurrentArrivals) {
  OrderingServerOptions options;
  options.service.cache_capacity = 0;
  options.window_ms = 200.0;  // generous: both submits land in one window
  OrderingServer server(options);

  auto f1 = server.Submit(GridRequest(5, 6));
  auto f2 = server.Submit(GridRequest(5, 6));
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(Ranks(r1->order), Ranks(r2->order));

  const OrderingServerStats stats = server.stats();
  EXPECT_EQ(stats.service.batches, 1);
  EXPECT_EQ(stats.service.solves, 1);
  EXPECT_EQ(stats.service.coalesced_requests, 1);
  EXPECT_GT(stats.service.batch_latency_max_ms, 0.0);
  EXPECT_GT(stats.p99_ms, 0.0);
}

TEST(OrderingServer, MaxBatchCutsTheWindowShort) {
  OrderingServerOptions options;
  options.service.cache_capacity = 0;
  options.window_ms = 60000.0;  // would stall forever without the cap
  options.max_batch = 2;
  OrderingServer server(options);

  auto f1 = server.Submit(GridRequest(4, 4));
  auto f2 = server.Submit(GridRequest(4, 5));
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  EXPECT_EQ(server.stats().service.batches, 1);
}

TEST(OrderingServer, ExpiredDeadlineGetsCleanStatus) {
  OrderingServerOptions options;
  options.service.cache_capacity = 0;
  OrderingServer server(options);

  server.Pause();
  auto expired = server.Submit(GridRequest(5, 5), /*deadline_ms=*/1.0);
  auto alive = server.Submit(GridRequest(5, 4));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Resume();

  const auto expired_result = expired.get();
  ASSERT_FALSE(expired_result.ok());
  EXPECT_EQ(expired_result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(alive.get().ok());

  const OrderingServerStats stats = server.stats();
  EXPECT_EQ(stats.expired_deadline, 1);
  EXPECT_EQ(stats.served_ok, 1);
  EXPECT_EQ(stats.service.requests, 1);  // the expired one never dispatched
}

TEST(OrderingServer, OverloadIsShedNotQueued) {
  OrderingServerOptions options;
  options.service.cache_capacity = 0;
  options.max_queue = 2;
  OrderingServer server(options);

  server.Pause();
  auto f1 = server.Submit(GridRequest(4, 6));
  auto f2 = server.Submit(GridRequest(6, 4));
  auto shed = server.Submit(GridRequest(7, 4));
  // The shed future is ready immediately; no dispatch has happened yet.
  const auto shed_result = shed.get();
  ASSERT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.status().code(), StatusCode::kResourceExhausted);
  server.Resume();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());

  const OrderingServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_overload, 1);
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.served_ok, 2);
}

TEST(OrderingServer, ShutdownDrainsPendingWork) {
  OrderingServerOptions options;
  options.service.cache_capacity = 0;
  OrderingServer server(options);
  server.Pause();
  auto f1 = server.Submit(GridRequest(5, 5));
  auto f2 = server.Submit(GridRequest(5, 6));
  server.Shutdown();  // overrides the pause and drains
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  const auto rejected = server.Submit(GridRequest(4, 4)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OrderingServer, WarmRestartFromSnapshotDoesZeroSolves) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_snapshot_test.txt")
          .string();
  const std::vector<OrderingRequest> requests = {
      GridRequest(6, 6), GridRequest(5, 7, "bisection"), GridRequest(4, 9)};

  OrderingServerOptions options;
  options.service.cache_capacity = 16;
  std::vector<OrderingResult> first_results;
  {
    OrderingServer server(options);
    for (const OrderingRequest& request : requests) {
      auto result = server.Submit(request).get();
      ASSERT_TRUE(result.ok()) << result.status();
      first_results.push_back(*result);
    }
    ASSERT_TRUE(server.SaveSnapshot(path).ok());
    EXPECT_EQ(server.stats().service.solves, 3);
  }

  OrderingServer restarted(options);
  auto imported = restarted.LoadSnapshot(path);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(*imported, 3);
  for (size_t i = 0; i < requests.size(); ++i) {
    auto result = restarted.Submit(requests[i]).get();
    ASSERT_TRUE(result.ok()) << result.status();
    // Byte-identical to the first run and to a direct engine call.
    EXPECT_EQ(Ranks(result->order), Ranks(first_results[i].order));
    EXPECT_EQ(result->embedding, first_results[i].embedding);
    ExpectMatchesDirect(*result, requests[i]);
    EXPECT_NE(result->detail.find(" | cache=hit"), std::string::npos);
  }
  const OrderingServerStats stats = restarted.stats();
  EXPECT_EQ(stats.service.solves, 0);
  EXPECT_EQ(stats.service.cache_hits, 3);
  EXPECT_GT(stats.warm_p50_ms, 0.0);
  EXPECT_EQ(stats.cold_p50_ms, 0.0);  // no cold serves happened
  std::filesystem::remove(path);
}

TEST(OrderingServer, CorruptSnapshotIsQuarantinedAndStartsCold) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_corrupt_test.txt")
          .string();
  {
    std::ofstream out(path);
    out << "spectral-lpm-cache v1\n2\nentry zzzz\n";
  }
  OrderingServerOptions options;
  options.service.cache_capacity = 16;
  OrderingServer server(options);
  const auto imported = server.LoadSnapshot(path);
  ASSERT_FALSE(imported.ok());
  EXPECT_EQ(imported.status().code(), StatusCode::kInvalidArgument);
  // The damaged file was moved aside for inspection, never reloaded.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  EXPECT_NE(imported.status().message().find(".corrupt"), std::string::npos);
  // The server is cold but fully serviceable.
  const auto result = server.Submit(GridRequest(5, 5)).get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(server.stats().service.solves, 1);
  std::filesystem::remove(path + ".corrupt");
}

TEST(OrderingServer, SnapshotRotationRunsOffThreadAndIsCrashSafe) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_rotation_test.txt")
          .string();
  std::filesystem::remove(path);
  OrderingServerOptions options;
  options.service.cache_capacity = 16;
  {
    OrderingServer server(options);
    ASSERT_TRUE(server.Submit(GridRequest(6, 6)).get().ok());
    ASSERT_TRUE(server.Submit(GridRequest(5, 7)).get().ok());

    auto queued = server.RotateSnapshot(path);
    ASSERT_TRUE(queued.ok()) << queued.status();
    EXPECT_EQ(*queued, 2);
    server.FlushSnapshots();
    EXPECT_EQ(server.stats().snapshots_saved, 1);
    EXPECT_EQ(server.stats().snapshot_failures, 0);
    // No stray temp file: the write was renamed into place atomically.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    // A later rotation replaces the file in place (still atomically).
    ASSERT_TRUE(server.Submit(GridRequest(4, 9)).get().ok());
    ASSERT_TRUE(server.RotateSnapshot(path).ok());
    server.FlushSnapshots();
    EXPECT_EQ(server.stats().snapshots_saved, 2);

    EXPECT_EQ(server.RotateSnapshot("").status().code(),
              StatusCode::kInvalidArgument);
  }

  // The rotated snapshot warm-starts a fresh server with zero solves.
  OrderingServer restarted(options);
  auto imported = restarted.LoadSnapshot(path);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(*imported, 3);
  ASSERT_TRUE(restarted.Submit(GridRequest(6, 6)).get().ok());
  EXPECT_EQ(restarted.stats().service.solves, 0);

  restarted.Shutdown();
  EXPECT_EQ(restarted.RotateSnapshot(path).status().code(),
            StatusCode::kFailedPrecondition);
  std::filesystem::remove(path);
}

TEST(OrderingServer, StatsLineAndReset) {
  OrderingServerOptions options;
  options.service.cache_capacity = 4;
  OrderingServer server(options);
  ASSERT_TRUE(server.Submit(GridRequest(5, 5)).get().ok());
  const std::string line = server.StatsLine("s1");
  EXPECT_EQ(line.rfind("STATS s1 ", 0), 0u);
  EXPECT_NE(line.find(" accepted=1"), std::string::npos);
  EXPECT_NE(line.find(" solves=1"), std::string::npos);
  server.ResetStats();
  const OrderingServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 0);
  EXPECT_EQ(stats.service.requests, 0);
  EXPECT_EQ(stats.p50_ms, 0.0);
  // The cache itself survives a stats reset.
  ASSERT_TRUE(server.Submit(GridRequest(5, 5)).get().ok());
  EXPECT_EQ(server.stats().service.cache_hits, 1);
}

TEST(Wire, ParseOrderGrid) {
  auto parsed = ParseWireRequest(
      "ORDER r1 spectral deadline=250 connectivity=moore radius=2 GRID 8x5");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->command, WireCommand::kOrder);
  EXPECT_EQ(parsed->id, "r1");
  EXPECT_EQ(parsed->deadline_ms, 250.0);
  EXPECT_EQ(parsed->request.engine, "spectral");
  EXPECT_EQ(parsed->request.options.spectral.graph.connectivity,
            GridConnectivity::kMoore);
  EXPECT_EQ(parsed->request.options.spectral.graph.radius, 2);
  ASSERT_NE(parsed->request.points, nullptr);
  EXPECT_EQ(parsed->request.points->size(), 40);
}

TEST(Wire, ParseOrderPoints) {
  auto parsed = ParseWireRequest("ORDER p sweep POINTS 2 3 0 0 1 0 5 5");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_NE(parsed->request.points, nullptr);
  EXPECT_EQ(parsed->request.points->size(), 3);
  EXPECT_EQ(parsed->request.points->dims(), 2);
  EXPECT_EQ(parsed->request.points->At(2, 1), 5);
}

TEST(Wire, ParseRejectsMalformedLines) {
  const char* kBad[] = {
      "",
      "NONSENSE x",
      "ORDER",
      "ORDER id",
      "ORDER id spectral",
      "ORDER id spectral GRID",
      "ORDER id spectral GRID 4xx4",
      "ORDER id spectral GRID 0x4",
      "ORDER id spectral GRID 4x4 junk",
      "ORDER id spectral bogus=1 GRID 4x4",
      "ORDER id spectral deadline=abc GRID 4x4",
      "ORDER id spectral POINTS 2 3 0 0 1",
      "SNAPSHOT id",
      "HEALTH",
  };
  for (const char* line : kBad) {
    const auto parsed = ParseWireRequest(line);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << line;
  }
}

TEST(Wire, StatsHealthAndQuitParse) {
  auto stats = ParseWireRequest("STATS q7");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->command, WireCommand::kStats);
  EXPECT_EQ(stats->id, "q7");
  auto health = ParseWireRequest("HEALTH h3");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->command, WireCommand::kHealth);
  EXPECT_EQ(health->id, "h3");
  auto quit = ParseWireRequest("QUIT");
  ASSERT_TRUE(quit.ok());
  EXPECT_EQ(quit->command, WireCommand::kQuit);
}

TEST(OrderingServer, ServeStreamEndToEnd) {
  OrderingServerOptions options;
  options.service.cache_capacity = 8;
  options.window_ms = 5.0;
  OrderingServer server(options);

  std::istringstream in(
      "ORDER a spectral GRID 6x5\n"
      "ORDER b hilbert GRID 4x4\n"
      "ORDER a2 spectral GRID 6x5\n"
      "bad line\n"
      "STATS s\n"
      "HEALTH h\n"
      "QUIT\n");
  std::ostringstream out;
  server.ServeStream(in, out);

  std::istringstream lines(out.str());
  std::vector<std::string> replies;
  std::string line;
  while (std::getline(lines, line)) replies.push_back(line);
  ASSERT_EQ(replies.size(), 7u);

  auto parsed = ParseWireRequest("ORDER a spectral GRID 6x5");
  ASSERT_TRUE(parsed.ok());
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto reference = (*engine)->Order(parsed->request);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(replies[0], FormatOrderedResponse("a", *reference));
  EXPECT_EQ(replies[1].rfind("ORDERED b 16 ", 0), 0u);
  EXPECT_EQ(replies[2], FormatOrderedResponse("a2", *reference));
  EXPECT_EQ(replies[3].rfind("ERROR - INVALID_ARGUMENT", 0), 0u);
  // STATS is rendered at its reply position: all three orders are counted.
  EXPECT_EQ(replies[4].rfind("STATS s ", 0), 0u);
  EXPECT_NE(replies[4].find(" requests=3"), std::string::npos);
  EXPECT_NE(replies[4].find(" solves=2"), std::string::npos);
  // HEALTH carries only deterministic counters (no latency percentiles).
  EXPECT_EQ(replies[5],
            "HEALTH h accepted=3 shed_overload=0 expired_deadline=0 "
            "served_ok=3 served_error=0 retried_solves=0 degraded_orders=0 "
            "cache_entries=2 snapshots_saved=0 snapshot_failures=0");
  EXPECT_EQ(replies[6], "BYE");
}

// --- Fault-injection failure drills (SPECTRAL_FAULTS builds only) -------

TEST(OrderingServerFaults, SnapshotWriteFailureLeavesPreviousGeneration) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without SPECTRAL_FAULTS";
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_fault_snapshot.txt")
          .string();
  std::filesystem::remove(path);

  FaultInjector faults;
  OrderingServerOptions options;
  options.service.cache_capacity = 16;
  options.faults = &faults;
  OrderingServer server(options);
  ASSERT_TRUE(server.Submit(GridRequest(6, 6)).get().ok());

  // Generation 1 lands cleanly.
  ASSERT_TRUE(server.RotateSnapshot(path).ok());
  server.FlushSnapshots();
  ASSERT_EQ(server.stats().snapshots_saved, 1);

  // Generation 2's write is injected to fail mid-file: the rotation is
  // counted as a failure and generation 1 must remain fully readable.
  ASSERT_TRUE(server.Submit(GridRequest(5, 7)).get().ok());
  faults.Arm("snapshot.write", FaultSiteConfig{1.0, {}});
  ASSERT_TRUE(server.RotateSnapshot(path).ok());
  server.FlushSnapshots();
  EXPECT_EQ(server.stats().snapshot_failures, 1);
  EXPECT_EQ(server.stats().snapshots_saved, 1);

  OrderingServer restarted(OrderingServerOptions{});
  auto imported = restarted.LoadSnapshot(path);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(*imported, 1);  // generation 1, untouched by the torn write
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

TEST(OrderingServerFaults, SolverFaultServesDegradedAndNeverPoisonsCache) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without SPECTRAL_FAULTS";
  }
  FaultInjector faults;
  faults.Arm("solver.converge", FaultSiteConfig{1.0, {}});
  OrderingServerOptions options;
  options.service.cache_capacity = 16;
  options.service.parallelism = 1;
  options.faults = &faults;
  OrderingServer server(options);

  // Every solve (including the ladder's retry) is forced unconverged, so
  // the point request degrades to the fallback curve — and is NOT cached.
  auto degraded = server.Submit(GridRequest(6, 6)).get();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_FALSE(degraded->converged);
  EXPECT_NE(degraded->detail.find(" | degraded=hilbert"), std::string::npos)
      << degraded->detail;
  EXPECT_EQ(server.stats().service.degraded_orders, 1);
  EXPECT_EQ(server.stats().service.retried_solves, 1);
  EXPECT_EQ(server.service().CacheSize(), 0u);

  // With the fault disarmed the same request solves cleanly from scratch:
  // no degraded bytes were left behind in the cache.
  faults.Arm("solver.converge", FaultSiteConfig{});
  auto healthy = server.Submit(GridRequest(6, 6)).get();
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_TRUE(healthy->converged);
  EXPECT_EQ(healthy->detail.find(" | degraded="), std::string::npos);
  ExpectMatchesDirect(*healthy, GridRequest(6, 6));
  EXPECT_EQ(server.stats().service.solves, 2);
  EXPECT_EQ(server.service().CacheSize(), 1u);
}

TEST(OrderingServerFaults, DispatchFaultFailsTheBatchWithTypedError) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without SPECTRAL_FAULTS";
  }
  FaultInjector faults;
  // Only the first dispatched batch fails; the next one serves normally.
  faults.Arm("serve.dispatch", FaultSiteConfig{0.0, {0}});
  OrderingServerOptions options;
  options.service.cache_capacity = 0;
  options.faults = &faults;
  OrderingServer server(options);

  auto failed = server.Submit(GridRequest(5, 5)).get();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_NE(failed.status().message().find("serve.dispatch"),
            std::string::npos);

  auto ok = server.Submit(GridRequest(5, 5)).get();
  ASSERT_TRUE(ok.ok()) << ok.status();
  const OrderingServerStats stats = server.stats();
  EXPECT_EQ(stats.served_error, 1);
  EXPECT_EQ(stats.served_ok, 1);
}

TEST(OrderingServer, TcpRoundTrip) {
  OrderingServerOptions options;
  options.service.cache_capacity = 8;
  OrderingServer server(options);
  auto port = server.StartTcp(0);
  ASSERT_TRUE(port.ok()) << port.status();
  ASSERT_GT(*port, 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);

  FdStreambuf in_buf(fd);
  FdStreambuf out_buf(fd);
  std::istream from_server(&in_buf);
  std::ostream to_server(&out_buf);
  to_server << "ORDER t spectral GRID 5x6\nQUIT\n";
  to_server.flush();

  std::string reply;
  ASSERT_TRUE(static_cast<bool>(std::getline(from_server, reply)));
  auto parsed = ParseWireRequest("ORDER t spectral GRID 5x6");
  ASSERT_TRUE(parsed.ok());
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto reference = (*engine)->Order(parsed->request);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reply, FormatOrderedResponse("t", *reference));
  ASSERT_TRUE(static_cast<bool>(std::getline(from_server, reply)));
  EXPECT_EQ(reply, "BYE");
  ::close(fd);
  server.Shutdown();
}

}  // namespace
}  // namespace spectral
