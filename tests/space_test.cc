#include <vector>

#include <gtest/gtest.h>

#include "space/grid.h"
#include "space/point_set.h"

namespace spectral {
namespace {

TEST(GridSpec, BasicProperties) {
  const GridSpec grid({4, 3, 2});
  EXPECT_EQ(grid.dims(), 3);
  EXPECT_EQ(grid.NumCells(), 24);
  EXPECT_EQ(grid.side(0), 4);
  EXPECT_EQ(grid.side(2), 2);
  EXPECT_EQ(grid.MaxManhattanDistance(), 3 + 2 + 1);
}

TEST(GridSpec, Uniform) {
  const GridSpec grid = GridSpec::Uniform(5, 4);
  EXPECT_EQ(grid.dims(), 5);
  EXPECT_EQ(grid.NumCells(), 1024);
}

TEST(GridSpec, FlattenRowMajor) {
  const GridSpec grid({3, 4});
  const std::vector<Coord> p = {1, 2};
  EXPECT_EQ(grid.Flatten(p), 1 * 4 + 2);
  const std::vector<Coord> origin = {0, 0};
  EXPECT_EQ(grid.Flatten(origin), 0);
  const std::vector<Coord> last = {2, 3};
  EXPECT_EQ(grid.Flatten(last), 11);
}

TEST(GridSpec, FlattenUnflattenRoundTrip) {
  const GridSpec grid({3, 5, 2});
  std::vector<Coord> p(3);
  for (int64_t cell = 0; cell < grid.NumCells(); ++cell) {
    grid.Unflatten(cell, p);
    EXPECT_TRUE(grid.Contains(p));
    EXPECT_EQ(grid.Flatten(p), cell);
  }
}

TEST(GridSpec, Contains) {
  const GridSpec grid({2, 2});
  EXPECT_TRUE(grid.Contains(std::vector<Coord>{0, 1}));
  EXPECT_FALSE(grid.Contains(std::vector<Coord>{2, 0}));
  EXPECT_FALSE(grid.Contains(std::vector<Coord>{0, -1}));
}

TEST(Distances, ManhattanAndChebyshev) {
  const std::vector<Coord> a = {0, 3, -2};
  const std::vector<Coord> b = {2, 0, -2};
  EXPECT_EQ(ManhattanDistance(a, b), 5);
  EXPECT_EQ(ChebyshevDistance(a, b), 3);
  EXPECT_EQ(ManhattanDistance(a, a), 0);
}

TEST(PointSet, AddAndAccess) {
  PointSet set(2);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.Add(std::vector<Coord>{1, 2}), 0);
  EXPECT_EQ(set.Add(std::vector<Coord>{3, 4}), 1);
  EXPECT_EQ(set.size(), 2);
  EXPECT_EQ(set.At(0, 0), 1);
  EXPECT_EQ(set.At(1, 1), 4);
  EXPECT_EQ(set[1][0], 3);
}

TEST(PointSet, FullGridMatchesFlattenOrder) {
  const GridSpec grid({3, 4});
  const PointSet set = PointSet::FullGrid(grid);
  ASSERT_EQ(set.size(), grid.NumCells());
  for (int64_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(grid.Flatten(set[i]), i);
  }
}

TEST(PointSet, FindAfterBuildIndex) {
  PointSet set(2);
  set.Add(std::vector<Coord>{5, 5});
  set.Add(std::vector<Coord>{0, 1});
  set.Add(std::vector<Coord>{-3, 7});
  set.BuildIndex();
  EXPECT_EQ(set.Find(std::vector<Coord>{0, 1}), 1);
  EXPECT_EQ(set.Find(std::vector<Coord>{-3, 7}), 2);
  EXPECT_EQ(set.Find(std::vector<Coord>{5, 5}), 0);
  EXPECT_EQ(set.Find(std::vector<Coord>{9, 9}), -1);
  EXPECT_EQ(set.Find(std::vector<Coord>{0, 2}), -1);
}

TEST(PointSet, FindReturnsLowestDuplicate) {
  PointSet set(1);
  set.Add(std::vector<Coord>{7});
  set.Add(std::vector<Coord>{7});
  set.BuildIndex();
  EXPECT_EQ(set.Find(std::vector<Coord>{7}), 0);
}

TEST(PointSet, Bounds) {
  PointSet set(2);
  set.Add(std::vector<Coord>{3, -1});
  set.Add(std::vector<Coord>{0, 5});
  set.Add(std::vector<Coord>{2, 2});
  std::vector<Coord> lo, hi;
  set.Bounds(&lo, &hi);
  EXPECT_EQ(lo, (std::vector<Coord>{0, -1}));
  EXPECT_EQ(hi, (std::vector<Coord>{3, 5}));
}

TEST(PointSet, Distance) {
  PointSet set(3);
  set.Add(std::vector<Coord>{0, 0, 0});
  set.Add(std::vector<Coord>{1, -2, 3});
  EXPECT_EQ(set.Distance(0, 1), 6);
}

TEST(PointSet, CenteredAxisFunctionsSumToZero) {
  const PointSet set = PointSet::FullGrid(GridSpec({3, 5}));
  const auto axes = set.CenteredAxisFunctions();
  ASSERT_EQ(axes.size(), 2u);
  for (const auto& axis : axes) {
    double sum = 0.0;
    for (double v : axis) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-10);
  }
  // Axis 0 of the full grid is (flatten / 5) - mean.
  EXPECT_NEAR(axes[0][0] - axes[0][5], -1.0, 1e-12);
  EXPECT_NEAR(axes[1][0] - axes[1][1], -1.0, 1e-12);
}

}  // namespace
}  // namespace spectral
