// Property-based tests: randomized inputs and parameterized sweeps that
// check structural invariants across modules rather than single examples.

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "core/curve_order.h"
#include "core/recursive_bisection.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "eigen/fiedler.h"
#include "eigen/jacobi.h"
#include "eigen/lanczos.h"
#include "eigen/operator.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "graph/point_graph.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "linalg/dense_matrix.h"
#include "util/random.h"
#include "workload/generators.h"

namespace spectral {
namespace {

// ---------------------------------------------------------------------------
// Random connected graphs: Lanczos agrees with the dense reference.

class RandomGraphEigenTest : public ::testing::TestWithParam<uint64_t> {};

Graph RandomConnectedGraph(int64_t n, double extra_edge_prob, Rng& rng) {
  std::vector<GraphEdge> edges;
  // Random spanning tree first (connectivity), then extra random edges.
  for (int64_t v = 1; v < n; ++v) {
    edges.push_back({rng.UniformInt(0, v - 1), v,
                     rng.UniformDouble(0.5, 2.0)});
  }
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(extra_edge_prob)) {
        edges.push_back({u, v, rng.UniformDouble(0.5, 2.0)});
      }
    }
  }
  return Graph::FromEdges(n, edges);
}

TEST_P(RandomGraphEigenTest, LanczosMatchesDenseLambda2) {
  Rng rng(GetParam());
  const int64_t n = 20 + static_cast<int64_t>(rng.UniformInt(0, 40));
  const Graph g = RandomConnectedGraph(n, 0.08, rng);
  const SparseMatrix lap = BuildLaplacian(g);

  FiedlerOptions dense;
  dense.method = FiedlerMethod::kDense;
  FiedlerOptions lanczos;
  lanczos.method = FiedlerMethod::kLanczos;
  auto a = ComputeFiedler(lap, dense);
  auto b = ComputeFiedler(lap, lanczos);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_NEAR(a->lambda2, b->lambda2,
              1e-6 * std::max(1.0, a->lambda2));
}

TEST_P(RandomGraphEigenTest, FiedlerVectorInvariants) {
  Rng rng(GetParam() ^ 0xF00Dull);
  const int64_t n = 15 + static_cast<int64_t>(rng.UniformInt(0, 30));
  const Graph g = RandomConnectedGraph(n, 0.1, rng);
  const SparseMatrix lap = BuildLaplacian(g);
  auto result = ComputeFiedler(lap);
  ASSERT_TRUE(result.ok());
  // Unit norm, orthogonal to ones, nonnegative eigenvalue, small residual.
  EXPECT_NEAR(Norm2(result->fiedler), 1.0, 1e-8);
  EXPECT_NEAR(Sum(result->fiedler), 0.0, 1e-7);
  EXPECT_GT(result->lambda2, 0.0);
  Vector lv(result->fiedler.size());
  lap.MatVec(result->fiedler, lv);
  Axpy(-result->lambda2, result->fiedler, lv);
  EXPECT_LT(Norm2(lv), 1e-5 * std::max(1.0, result->lambda2));
}

TEST_P(RandomGraphEigenTest, EnergyIsMinimalAmongRandomCandidates) {
  Rng rng(GetParam() ^ 0xBEEFull);
  const int64_t n = 12 + static_cast<int64_t>(rng.UniformInt(0, 20));
  const Graph g = RandomConnectedGraph(n, 0.15, rng);
  auto result = ComputeFiedler(BuildLaplacian(g));
  ASSERT_TRUE(result.ok());
  const double optimal = DirichletEnergy(g, result->fiedler);
  for (int trial = 0; trial < 16; ++trial) {
    Vector x(static_cast<size_t>(n));
    for (auto& v : x) v = rng.UniformDouble(-1.0, 1.0);
    const double mean = Sum(x) / static_cast<double>(n);
    for (auto& v : x) v -= mean;
    if (Normalize(x) == 0.0) continue;
    EXPECT_GE(DirichletEnergy(g, x), optimal - 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphEigenTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Spectral mapping invariants across random connected blobs.

class BlobMappingTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int64_t>> {};

TEST_P(BlobMappingTest, MappingIsValidPermutationWithOptimalValues) {
  const auto [seed, count] = GetParam();
  Rng rng(seed);
  const PointSet points = SampleConnectedBlob(GridSpec({16, 16}), count, rng);
  auto engine = MakeOrderingEngine("spectral");
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Order(OrderingRequest::ForPoints(points));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->order.size(), points.size());

  std::vector<bool> seen(static_cast<size_t>(points.size()), false);
  for (int64_t i = 0; i < points.size(); ++i) {
    const int64_t r = result->order.RankOf(i);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, points.size());
    EXPECT_FALSE(seen[static_cast<size_t>(r)]);
    seen[static_cast<size_t>(r)] = true;
  }
  // Inverse is consistent.
  for (int64_t r = 0; r < points.size(); ++r) {
    EXPECT_EQ(result->order.RankOf(result->order.PointAtRank(r)), r);
  }
  // values achieves lambda2 on the blob's neighborhood graph.
  auto graph = BuildPointGraph(points);
  ASSERT_TRUE(graph.ok());
  EXPECT_NEAR(DirichletEnergy(*graph, result->embedding), result->lambda2,
              1e-5 * std::max(1.0, result->lambda2));
}

TEST_P(BlobMappingTest, BisectionAlsoValidOnBlobs) {
  const auto [seed, count] = GetParam();
  Rng rng(seed ^ 0x515Eull);
  const PointSet points = SampleConnectedBlob(GridSpec({16, 16}), count, rng);
  auto result = RecursiveSpectralOrder(points);
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<int64_t> ranks;
  for (int64_t i = 0; i < points.size(); ++i) {
    ranks.insert(result->order.RankOf(i));
  }
  EXPECT_EQ(static_cast<int64_t>(ranks.size()), points.size());
}

INSTANTIATE_TEST_SUITE_P(
    BlobCases, BlobMappingTest,
    ::testing::Combine(::testing::Values<uint64_t>(11, 22, 33),
                       ::testing::Values<int64_t>(20, 60, 120)));

// ---------------------------------------------------------------------------
// Curve-order invariants across kinds and point sets.

class CurveOrderPropertyTest
    : public ::testing::TestWithParam<std::tuple<CurveKind, uint64_t>> {};

TEST_P(CurveOrderPropertyTest, RestrictionIsPermutationAndMonotone) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  const GridSpec grid({20, 20});
  const PointSet points = SampleUniformPoints(grid, 150, rng);
  auto order = OrderByCurve(points, kind);
  ASSERT_TRUE(order.ok()) << CurveKindName(kind);

  std::set<int64_t> ranks;
  for (int64_t i = 0; i < points.size(); ++i) {
    ranks.insert(order->RankOf(i));
  }
  EXPECT_EQ(static_cast<int64_t>(ranks.size()), points.size());
}

TEST_P(CurveOrderPropertyTest, SubsetKeepsRelativeOrder) {
  // Removing points must not change the relative order of the survivors
  // (a property every curve-induced order has, and spectral does not).
  const auto [kind, seed] = GetParam();
  Rng rng(seed ^ 0xACEull);
  const GridSpec grid({16, 16});
  const PointSet all = SampleUniformPoints(grid, 120, rng);
  // Survivors: every other point, same coordinates.
  PointSet survivors(2);
  std::vector<int64_t> survivor_ids;
  for (int64_t i = 0; i < all.size(); i += 2) {
    survivors.Add(all[i]);
    survivor_ids.push_back(i);
  }
  // NOTE: OrderByCurve translates by the bounding box, which can differ
  // between the two sets; pin both orders to the same explicit grid.
  auto enclosing = EnclosingGridFor(kind, 2, 16);
  ASSERT_TRUE(enclosing.ok()) << CurveKindName(kind);
  auto curve = MakeCurve(kind, *enclosing);
  ASSERT_TRUE(curve.ok()) << CurveKindName(kind);
  auto full = OrderByCurveOnGrid(all, **curve);
  auto sub = OrderByCurveOnGrid(survivors, **curve);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sub.ok());
  for (size_t a = 0; a < survivor_ids.size(); ++a) {
    for (size_t b = a + 1; b < survivor_ids.size(); ++b) {
      const bool full_less = full->RankOf(survivor_ids[a]) <
                             full->RankOf(survivor_ids[b]);
      const bool sub_less = sub->RankOf(static_cast<int64_t>(a)) <
                            sub->RankOf(static_cast<int64_t>(b));
      ASSERT_EQ(full_less, sub_less) << CurveKindName(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, CurveOrderPropertyTest,
    ::testing::Combine(::testing::Values(CurveKind::kSweep, CurveKind::kSnake,
                                         CurveKind::kZOrder, CurveKind::kGray,
                                         CurveKind::kHilbert,
                                         CurveKind::kPeano),
                       ::testing::Values<uint64_t>(101, 202)),
    [](const ::testing::TestParamInfo<std::tuple<CurveKind, uint64_t>>& info) {
      return std::string(CurveKindName(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Graph construction invariants under randomization.

class RandomPointGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPointGraphTest, EdgesMatchBruteForce) {
  Rng rng(GetParam());
  const GridSpec grid({12, 12});
  const PointSet points = SampleUniformPoints(grid, 50, rng);
  PointGraphOptions options;
  options.radius = 1 + static_cast<int>(rng.UniformInt(0, 1));
  auto g = BuildPointGraph(points, options);
  ASSERT_TRUE(g.ok());

  int64_t expected = 0;
  for (int64_t i = 0; i < points.size(); ++i) {
    for (int64_t j = i + 1; j < points.size(); ++j) {
      const int64_t d = points.Distance(i, j);
      if (d >= 1 && d <= options.radius) ++expected;
    }
  }
  EXPECT_EQ(g->num_edges(), expected);
}

TEST_P(RandomPointGraphTest, SubgraphDegreesBounded) {
  Rng rng(GetParam() ^ 0x5ab5ull);
  const Graph g = RandomConnectedGraph(40, 0.1, rng);
  std::vector<int64_t> verts;
  for (int64_t v = 0; v < 40; v += 2) verts.push_back(v);
  const InducedSubgraph sub = BuildInducedSubgraph(g, verts);
  for (size_t i = 0; i < verts.size(); ++i) {
    EXPECT_LE(sub.graph.Degree(static_cast<int64_t>(i)),
              g.Degree(verts[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPointGraphTest,
                         ::testing::Values(7, 8, 9, 10));

// ---------------------------------------------------------------------------
// Jacobi vs Lanczos on random diagonal-dominant symmetric matrices
// (beyond Laplacians).

class RandomMatrixTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomMatrixTest, LanczosFindsDominantEigenvalue) {
  Rng rng(GetParam());
  const int64_t n = 30;
  std::vector<Triplet> triplets;
  DenseMatrix dense(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      if (i != j && !rng.Bernoulli(0.2)) continue;
      const double v = rng.UniformDouble(-1.0, 1.0) + (i == j ? 3.0 : 0.0);
      triplets.push_back({i, j, v});
      if (i != j) triplets.push_back({j, i, v});
      dense.At(i, j) = v;
      dense.At(j, i) = v;
    }
  }
  const SparseMatrix sparse = SparseMatrix::FromTriplets(n, n, triplets);
  const SparseOperator op(&sparse);
  auto lanczos = LargestEigenpair(op, {});
  auto jacobi = JacobiEigenSolve(dense);
  ASSERT_TRUE(lanczos.ok());
  ASSERT_TRUE(jacobi.ok());
  EXPECT_NEAR(lanczos->eigenvalue,
              jacobi->eigenvalues[static_cast<size_t>(n - 1)], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMatrixTest,
                         ::testing::Values(21, 22, 23, 24, 25));

}  // namespace
}  // namespace spectral
