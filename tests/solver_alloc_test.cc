// Allocation-count regression test for the block solver: the packed-basis
// refactor hoisted all per-restart scratch (basis/AV panels, Chebyshev
// ping-pong buffers, Ritz assembly vectors, padding temporaries) into
// solve-lifetime workspace, so a cold solve performs a small, restart-
// independent number of heap allocations. This test pins that budget with
// a global operator-new counter so a regression that reintroduces
// per-restart (or worse, per-column) allocation fails loudly.
//
// The counting override is safe here because every test file links into
// its own gtest binary.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "eigen/block_lanczos.h"
#include "eigen/operator.h"
#include "graph/grid_graph.h"
#include "graph/laplacian.h"
#include "linalg/sparse_matrix.h"

namespace {

std::atomic<int64_t> g_live_allocs{0};
std::atomic<bool> g_counting{false};

void* CountingAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountingAlloc(size); }
void* operator new[](std::size_t size) { return CountingAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace spectral {
namespace {

int64_t CountSolveAllocations(const BlockLanczosOptions& options,
                              const LinearOperator& op,
                              BlockLanczosResult* out) {
  g_live_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  auto result = LargestEigenpairsBlock(op, {}, options);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_TRUE(result.ok()) << result.status();
  if (result.ok() && out != nullptr) *out = *std::move(result);
  return g_live_allocs.load(std::memory_order_relaxed);
}

TEST(SolverAllocations, ColdSolveAllocationBudgetIsRestartIndependent) {
  const SparseMatrix lap = BuildLaplacian(BuildGridGraph(GridSpec({48, 48})));
  const SparseOperator inner(&lap);
  const ShiftNegateOperator op(&inner, lap.GershgorinBound() + 1e-9);

  BlockLanczosOptions options;
  options.num_pairs = 3;
  options.max_basis = 16;
  options.pool = nullptr;

  BlockLanczosResult result;
  const int64_t allocs = CountSolveAllocations(options, op, &result);
  EXPECT_TRUE(result.converged);
  ASSERT_GT(result.restarts, 1) << "workload too easy to exercise restarts";

  // Budget: solve-lifetime workspace (packed panels, ping-pong buffers,
  // coefficient scratch) plus the per-restart dense Rayleigh-Ritz solve
  // (DenseMatrix H + Jacobi eigenvector matrix) and one Vector per locked
  // pair. Measured ~94 on this workload; generous headroom so only a real
  // regression — per-column Vector churn was thousands of allocations —
  // trips it.
  EXPECT_LT(allocs, 500) << "restarts=" << result.restarts;

  // And the budget must not scale with restart count: with the Chebyshev
  // filter off this workload burns through max_restarts, and each extra
  // restart may only add the per-restart dense-RR allocations (measured
  // ~17: H, Jacobi workspace, locking) — never a fresh basis worth of
  // column vectors (the pre-refactor per-restart churn was >100).
  BlockLanczosOptions hard = options;
  hard.cheb_degree_max = 0;
  hard.max_restarts = 80;
  BlockLanczosResult hard_result;
  const int64_t hard_allocs = CountSolveAllocations(hard, op, &hard_result);
  ASSERT_GT(hard_result.restarts, result.restarts);
  const int64_t extra_restarts = hard_result.restarts - result.restarts;
  EXPECT_LT(hard_allocs, allocs + extra_restarts * 64)
      << "restarts " << result.restarts << " -> " << hard_result.restarts;
}

}  // namespace
}  // namespace spectral
