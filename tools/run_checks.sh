#!/usr/bin/env bash
# Repo verification driver.
#
#   tools/run_checks.sh              configure (-Wall -Wextra -Werror),
#                                    build everything, run ctest, then lint
#   tools/run_checks.sh --sanitize   ASan+UBSan build of the whole tree and
#                                    a full ctest run under the sanitizers
#   tools/run_checks.sh --lint-only  banned-pattern source lint only (this
#                                    mode is registered as a ctest test, so
#                                    a plain ctest run also lints)
#
# Exit status is non-zero on the first failing stage.

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

lint() {
  local failed=0

  # Build artifacts must never be included.
  if grep -rn --include='*.cc' --include='*.h' --include='*.cpp' \
       '#include "build/' src tests bench tools examples 2>/dev/null; then
    echo "FAIL: '#include \"build/...\"' found (see above)"
    failed=1
  fi

  # Headers must not inject namespaces into every includer.
  if grep -rn --include='*.h' 'using namespace std' src bench 2>/dev/null; then
    echo "FAIL: 'using namespace std' in a header (see above)"
    failed=1
  fi

  # Relative includes break the single src/ include root.
  if grep -rn --include='*.cc' --include='*.h' '#include "\.\./' \
       src tests bench tools examples 2>/dev/null; then
    echo "FAIL: relative '../' include found (see above)"
    failed=1
  fi

  # std::cout/cerr in the libraries (fine in benches/tools/examples).
  if grep -rln --include='*.cc' 'std::cout' src 2>/dev/null; then
    echo "FAIL: std::cout in library code (see above)"
    failed=1
  fi

  # Consumers must ask for orders through OrderingRequest / MappingService /
  # the OrderingEngine registry, never by driving SpectralMapper directly —
  # one way to ask for an order keeps batching and caching in the loop. The
  # unit tests of the mapper and of its direct adapters are grandfathered.
  local mapper_uses
  mapper_uses="$(grep -rn --include='*.cc' --include='*.cpp' --include='*.h' \
       'SpectralMapper' tests bench tools examples 2>/dev/null \
     | grep -v '^tests/spectral_lpm_test\.cc:' \
     | grep -v '^tests/multilevel_test\.cc:' \
     | grep -v '^tests/recursive_bisection_test\.cc:' \
     | grep -v '^tests/ordering_engine_test\.cc:')"
  if [ -n "${mapper_uses}" ]; then
    echo "${mapper_uses}"
    echo "FAIL: direct SpectralMapper use outside core/ (see above);" \
         "go through OrderingRequest + MakeOrderingEngine or MappingService"
    failed=1
  fi

  if [ "${failed}" -ne 0 ]; then
    return 1
  fi
  echo "lint: OK"
}

if [ "${1:-}" = "--lint-only" ]; then
  lint
  exit $?
fi

build_dir="${BUILD_DIR:-build-checks}"
configure_args=(-DSPECTRAL_WERROR=ON -DCMAKE_BUILD_TYPE=Release)
if [ "${1:-}" = "--sanitize" ]; then
  build_dir="${BUILD_DIR:-build-sanitize}"
  # RelWithDebInfo keeps the eigensolver fast enough for the suite while
  # ASan/UBSan reports still carry symbols and line numbers.
  configure_args=(-DSPECTRAL_WERROR=ON -DSPECTRAL_SANITIZE=ON
                  -DCMAKE_BUILD_TYPE=RelWithDebInfo)
fi

echo "== configure (${build_dir}) =="
cmake -B "${build_dir}" -S . "${configure_args[@]}" || exit 1

echo "== build =="
cmake --build "${build_dir}" -j "$(nproc)" || exit 1

echo "== ctest =="
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" || exit 1

echo "== lint =="
lint || exit 1

echo "run_checks: all stages passed"
