#!/usr/bin/env bash
# Repo verification driver.
#
#   tools/run_checks.sh              configure (-Wall -Wextra -Werror),
#                                    build everything, run ctest, then lint
#   tools/run_checks.sh --lint-only  banned-pattern source lint only (this
#                                    mode is registered as a ctest test, so
#                                    a plain ctest run also lints)
#
# Exit status is non-zero on the first failing stage.

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

lint() {
  local failed=0

  # Build artifacts must never be included.
  if grep -rn --include='*.cc' --include='*.h' --include='*.cpp' \
       '#include "build/' src tests bench tools examples 2>/dev/null; then
    echo "FAIL: '#include \"build/...\"' found (see above)"
    failed=1
  fi

  # Headers must not inject namespaces into every includer.
  if grep -rn --include='*.h' 'using namespace std' src bench 2>/dev/null; then
    echo "FAIL: 'using namespace std' in a header (see above)"
    failed=1
  fi

  # Relative includes break the single src/ include root.
  if grep -rn --include='*.cc' --include='*.h' '#include "\.\./' \
       src tests bench tools examples 2>/dev/null; then
    echo "FAIL: relative '../' include found (see above)"
    failed=1
  fi

  # std::cout/cerr in the libraries (fine in benches/tools/examples).
  if grep -rln --include='*.cc' 'std::cout' src 2>/dev/null; then
    echo "FAIL: std::cout in library code (see above)"
    failed=1
  fi

  if [ "${failed}" -ne 0 ]; then
    return 1
  fi
  echo "lint: OK"
}

if [ "${1:-}" = "--lint-only" ]; then
  lint
  exit $?
fi

build_dir="${BUILD_DIR:-build-checks}"

echo "== configure (${build_dir}, -Werror) =="
cmake -B "${build_dir}" -S . -DSPECTRAL_WERROR=ON \
  -DCMAKE_BUILD_TYPE=Release || exit 1

echo "== build =="
cmake --build "${build_dir}" -j "$(nproc)" || exit 1

echo "== ctest =="
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" || exit 1

echo "== lint =="
lint || exit 1

echo "run_checks: all stages passed"
