#!/usr/bin/env bash
# Repo verification driver — the same gate CI runs (.github/workflows/ci.yml).
#
#   tools/run_checks.sh              configure (-Wall -Wextra -Werror),
#                                    build everything, run ctest, then lint
#   tools/run_checks.sh --sanitize   ASan+UBSan build of the whole tree and
#                                    a full ctest run under the sanitizers
#   tools/run_checks.sh --faults     SPECTRAL_FAULTS=ON build and the
#                                    fault-labeled ctest suite (ctest -L
#                                    faults): deterministic fault
#                                    injection, the degradation ladder,
#                                    snapshot crash-safety, and the
#                                    100%-fault serve smoke drills
#   tools/run_checks.sh --lint-only  banned-pattern source lint only (this
#                                    mode is registered as a ctest test, so
#                                    a plain ctest run also lints)
#   tools/run_checks.sh --help       this text
#
# Every phase is timed and a summary is printed at the end. The script
# verifies that the ctest run actually registered the lint target
# (lint_banned_patterns): a build dir configured without tests used to
# skip the lint silently — that is now a hard failure.
#
# ccache is picked up automatically when installed (CI caches it across
# runs). BUILD_DIR overrides the build directory.
#
# The CI bench gate is separate: tools/check_bench_regression.py runs
# the four gated benches (ordering, eigensolver, service, query) and
# diffs the bench_results/BENCH_*.json files against the committed
# baselines (see that script's --help and docs/benchmarks.md for the
# baseline update procedure).
#
# Exit status is non-zero on the first failing stage.

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

if [ "${1:-}" = "--help" ] || [ "${1:-}" = "-h" ]; then
  # Print the whole header comment (everything up to the first
  # non-comment line), stripped of the leading '# '.
  awk 'NR == 1 { next } /^#/ { sub(/^# ?/, ""); print; next } { exit }' "$0"
  exit 0
fi

phase_names=()
phase_secs=()
lint_ran=0

# run_phase <name> <cmd...>: times the phase, records it for the summary,
# and exits on failure (after printing the summary so partial timings are
# not lost).
run_phase() {
  local name="$1"
  shift
  echo "== ${name} =="
  local start
  start=$(date +%s)
  "$@"
  local status=$?
  local end
  end=$(date +%s)
  phase_names+=("${name}")
  phase_secs+=("$((end - start))")
  if [ "${status}" -ne 0 ]; then
    echo "run_checks: phase '${name}' failed (exit ${status})"
    print_summary
    exit "${status}"
  fi
}

print_summary() {
  echo ""
  echo "== phase timings =="
  local i
  for i in "${!phase_names[@]}"; do
    printf '  %-12s %4ss\n' "${phase_names[$i]}" "${phase_secs[$i]}"
  done
}

lint() {
  local failed=0

  # Build artifacts must never be included.
  if grep -rn --include='*.cc' --include='*.h' --include='*.cpp' \
       '#include "build/' src tests bench tools examples 2>/dev/null; then
    echo "FAIL: '#include \"build/...\"' found (see above)"
    failed=1
  fi

  # Headers must not inject namespaces into every includer.
  if grep -rn --include='*.h' 'using namespace std' src bench 2>/dev/null; then
    echo "FAIL: 'using namespace std' in a header (see above)"
    failed=1
  fi

  # Relative includes break the single src/ include root.
  if grep -rn --include='*.cc' --include='*.h' '#include "\.\./' \
       src tests bench tools examples 2>/dev/null; then
    echo "FAIL: relative '../' include found (see above)"
    failed=1
  fi

  # std::cout/cerr in the libraries (fine in benches/tools/examples).
  if grep -rln --include='*.cc' 'std::cout' src 2>/dev/null; then
    echo "FAIL: std::cout in library code (see above)"
    failed=1
  fi

  # Snapshot/state writes in the libraries must flow through the crash-safe
  # path in core/serialization.cc (tmp file + fsync + atomic rename) — a
  # raw ofstream can tear the file on a crash. util/csv_writer.h is the one
  # sanctioned stream writer (bench/tool CSV output, not durable state);
  # tests/bench/tools write scratch files freely.
  local ofstream_uses
  ofstream_uses="$(grep -rn --include='*.cc' --include='*.h' \
       'std::ofstream' src 2>/dev/null \
     | grep -v '^src/core/serialization\.cc:' \
     | grep -v '^src/util/csv_writer\.h:')"
  if [ -n "${ofstream_uses}" ]; then
    echo "${ofstream_uses}"
    echo "FAIL: raw std::ofstream in library code (see above); durable" \
         "state goes through core/serialization.cc's atomic save path"
    failed=1
  fi

  # Leftover seed-scaffolding markers: every layer is live now, so a
  # TODO(seed) means a migration was left half-done.
  if grep -rn --include='*.cc' --include='*.h' --include='*.cpp' \
       'TODO(seed)' src tests bench tools examples 2>/dev/null; then
    echo "FAIL: stale 'TODO(seed)' marker found (see above)"
    failed=1
  fi

  # Consumers must ask for orders through OrderingRequest / MappingService /
  # the OrderingEngine registry, never by driving SpectralMapper directly —
  # one way to ask for an order keeps batching and caching in the loop. The
  # unit tests of the mapper and of its direct adapters are grandfathered.
  local mapper_uses
  mapper_uses="$(grep -rn --include='*.cc' --include='*.cpp' --include='*.h' \
       'SpectralMapper' tests bench tools examples 2>/dev/null \
     | grep -v '^tests/spectral_lpm_test\.cc:' \
     | grep -v '^tests/multilevel_test\.cc:' \
     | grep -v '^tests/recursive_bisection_test\.cc:' \
     | grep -v '^tests/ordering_engine_test\.cc:')"
  if [ -n "${mapper_uses}" ]; then
    echo "${mapper_uses}"
    echo "FAIL: direct SpectralMapper use outside core/ (see above);" \
         "go through OrderingRequest + MakeOrderingEngine or MappingService"
    failed=1
  fi

  if [ "${failed}" -ne 0 ]; then
    return 1
  fi
  lint_ran=1
  echo "lint: OK"
}

if [ "${1:-}" = "--lint-only" ]; then
  lint
  exit $?
fi

build_dir="${BUILD_DIR:-build-checks}"
configure_args=(-DSPECTRAL_WERROR=ON -DCMAKE_BUILD_TYPE=Release)
ctest_args=()
if [ "${1:-}" = "--sanitize" ]; then
  build_dir="${BUILD_DIR:-build-sanitize}"
  # RelWithDebInfo keeps the eigensolver fast enough for the suite while
  # ASan/UBSan reports still carry symbols and line numbers.
  configure_args=(-DSPECTRAL_WERROR=ON -DSPECTRAL_SANITIZE=ON
                  -DCMAKE_BUILD_TYPE=RelWithDebInfo)
fi
if [ "${1:-}" = "--faults" ]; then
  build_dir="${BUILD_DIR:-build-faults}"
  configure_args=(-DSPECTRAL_WERROR=ON -DSPECTRAL_FAULTS=ON
                  -DCMAKE_BUILD_TYPE=Release)
  # Only the fault-labeled suite: the full matrix already ran in the plain
  # build; this run exists to exercise the injected-failure paths (and the
  # serve_smoke_faults chaos drill, which only registers in this build).
  ctest_args=(-L faults)
fi
if command -v ccache >/dev/null 2>&1; then
  configure_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_phase "configure" cmake -B "${build_dir}" -S . "${configure_args[@]}"
run_phase "build" cmake --build "${build_dir}" -j "$(nproc)"

# Guard against a silently lint-less test run: the lint must be registered
# as a ctest target in this build dir (it vanishes when the dir was
# configured with SPECTRAL_BUILD_TESTS=OFF or predates the lint target).
if ! ctest --test-dir "${build_dir}" -N 2>/dev/null \
     | grep -q "lint_banned_patterns"; then
  echo "run_checks: lint_banned_patterns is not registered in" \
       "${build_dir} — the lint would be silently skipped. Reconfigure" \
       "with SPECTRAL_BUILD_TESTS=ON (the default)."
  print_summary
  exit 1
fi

run_phase "ctest" ctest --test-dir "${build_dir}" --output-on-failure \
  -j "$(nproc)" ${ctest_args[@]+"${ctest_args[@]}"}
run_phase "lint" lint

print_summary
if [ "${lint_ran}" -ne 1 ]; then
  echo "run_checks: lint never ran — failing"
  exit 1
fi
echo "run_checks: all stages passed"
