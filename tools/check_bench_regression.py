#!/usr/bin/env python3
"""CI bench-regression gate over the committed bench baselines.

Diffs one or more bench suites against their committed baseline JSONs and
fails on regressions. Four suites are known:

  ordering     bench_ordering_engines -> bench_results/BENCH_ordering_engines.json
               rows keyed (engine, workload, shards); gates cold-time share
               and spearman_vs_spectral drops.
  eigensolver  bench_eigensolver -> bench_results/BENCH_eigensolver.json
               rows keyed (method, workload); gates cold-time share, matvec
               growth (deterministic counts), and residual growth beyond
               the tolerance contract. The block solver additionally emits
               per-kernel "phase-*" share rows (cold_ms = phase wall time,
               matvecs = deterministic flop estimate) plus an
               "hfill-multidot" microbench row; a consistency check
               requires each workload's phase times to sum to at most the
               "block" row's total (+5% timer slack).
  service      bench_service_traffic -> bench_results/BENCH_service_traffic.json
               rows keyed (scenario,); gates only the machine-portable
               metrics — cache hit rate drops, deduplicated-solve-count
               growth, Spearman-vs-direct drops, and (rows that carry
               them) exact ladder counters retried_solves /
               degraded_orders (all deterministic: the bench pins the
               request mix seed, the fault schedule, and uses a cache
               larger than the request universe). The "degraded" row is
               only emitted by SPECTRAL_FAULTS=ON builds — gate this
               suite from one (CI's bench job is). Absolute qps and
               latency are reported but never gated; wall_ms feeds the
               share check.
  query        bench_query_io -> bench_results/BENCH_query_io.json
               rows keyed (workload, engine, pool_pages); gates the
               deterministic page-I/O counters (pages-touched growth,
               buffer hit-rate drops) and a paper-fidelity consistency
               check: on the grid64x64 workload the spectral engine's
               worst-case range-query pages must stay strictly below
               every fractal curve's (zorder, gray, hilbert, peano) —
               Figure 6's claim, end-to-end. wall_ms feeds the share
               check only.

For every suite the gate fails on:

  * a missing row (a combination the baseline has but the current run lost),
  * a quality regression (spearman drop / matvec growth / residual growth
    beyond tolerance — all machine-independent, since solves are
    deterministic),
  * a cold-time regression beyond --cold-tolerance (default 25%).

Cold times are compared as *shares of the suite's total cold time*, not as
absolute milliseconds: CI machines and dev laptops differ by integer
factors in raw speed, but a single row suddenly consuming a much larger
fraction of the whole suite is machine-independent evidence of a
regression. Rows whose share is below --min-share in both runs are skipped
as timing noise. This keeps the gate tolerance-based and non-flaky.

Usage:

    # gate both suites against the committed baselines
    python3 tools/check_bench_regression.py \
        --suite ordering --bench build/bench_ordering_engines \
        --suite eigensolver --bench build/bench_eigensolver

    # gate one suite from a pre-generated JSON
    python3 tools/check_bench_regression.py --suite ordering --current out.json

    # legacy single-suite spelling (implies --suite ordering)
    python3 tools/check_bench_regression.py --bench build/bench_ordering_engines

Updating the baselines (after an intentional perf/quality change): re-run
with --update, which runs each bench and copies its fresh JSON over the
committed baseline; or run the bench binaries from the repo root (they
rewrite bench_results/*.json in place) and commit the result. --out-dir
additionally copies each fresh JSON into the given directory (CI uploads
these as workflow artifacts for trend history).
"""

import argparse
import json
import os
import shutil
import sys
import subprocess
import tempfile


class Suite:
    """One bench binary + baseline JSON + gating rules."""

    def __init__(self, name, json_relpath, key_fields, time_field="cold_ms"):
        self.name = name
        self.json_relpath = json_relpath
        self.key_fields = key_fields
        # Field the share-of-total-time check reads (machine-portable by
        # construction: shares, never absolute milliseconds).
        self.time_field = time_field

    def key_of(self, row):
        return tuple(row.get(field, "") for field in self.key_fields)

    def quality_failures(self, name, base, cur, args):
        raise NotImplementedError

    def consistency_failures(self, current, args):
        """Cross-row invariants of the current run (no baseline needed)."""
        return []


class OrderingSuite(Suite):
    def __init__(self):
        super().__init__(
            "ordering",
            os.path.join("bench_results", "BENCH_ordering_engines.json"),
            ("engine", "workload", "shards"),
        )

    def quality_failures(self, name, base, cur, args):
        failures = []
        base_rho = base["spearman_vs_spectral"]
        cur_rho = cur["spearman_vs_spectral"]
        if cur_rho < base_rho - args.spearman_tolerance:
            failures.append(
                f"{name}: spearman {base_rho:.6f} -> {cur_rho:.6f}")
        return failures


class EigensolverSuite(Suite):
    def __init__(self):
        super().__init__(
            "eigensolver",
            os.path.join("bench_results", "BENCH_eigensolver.json"),
            ("method", "workload"),
        )

    def quality_failures(self, name, base, cur, args):
        failures = []
        # Matvec counts are deterministic; growth is an algorithmic
        # regression, not noise.
        if cur["matvecs"] > base["matvecs"] * (1.0 + args.matvec_tolerance):
            failures.append(
                f"{name}: matvecs {base['matvecs']} -> {cur['matvecs']} "
                f"(> {args.matvec_tolerance:.0%} growth)")
        # Residuals must honor the tolerance contract: gate growth beyond
        # an order of magnitude over the baseline. The absolute floor
        # keeps rows already at machine precision from flaking across
        # compilers/FMA behavior while staying two decades below the
        # solver's 1e-9 * scale contract.
        floor = 1e-10
        if cur["max_residual"] > max(base["max_residual"] * 10.0, floor):
            failures.append(
                f"{name}: max_residual {base['max_residual']:.3e} -> "
                f"{cur['max_residual']:.3e}")
        return failures

    def consistency_failures(self, current, args):
        # The per-phase rows ("phase-spmm"/"phase-reorth"/"phase-hfill"/
        # "phase-rr"/"phase-cheb") are timed *inside* the block solve, so
        # per workload they must sum to at most the "block" row's total
        # wall time (5% slack for timer overhead). A sum that exceeds the
        # total means a phase timer started double-counting; a phase row
        # without its block row means the bench emit drifted.
        failures = []
        phase_ms = {}
        for (method, workload), row in current.items():
            if method.startswith("phase-"):
                phase_ms[workload] = phase_ms.get(workload, 0.0) + \
                    row[self.time_field]
        for workload, total in sorted(phase_ms.items()):
            block = current.get(("block", workload))
            if block is None:
                failures.append(
                    f"{workload}: phase rows present without a block row")
                continue
            budget = block[self.time_field] * 1.05
            if total > budget:
                failures.append(
                    f"{workload}: phase times sum to {total:.1f} ms > "
                    f"block total {block[self.time_field]:.1f} ms + 5%")
        return failures


class ServiceSuite(Suite):
    def __init__(self):
        super().__init__(
            "service",
            os.path.join("bench_results", "BENCH_service_traffic.json"),
            ("scenario",),
            time_field="wall_ms",
        )

    def quality_failures(self, name, base, cur, args):
        failures = []
        # Hit rate and solve counts are deterministic (pinned mix seed, no
        # evictions): any hit-rate drop or solve growth is a caching or
        # coalescing regression, not noise.
        if cur["hit_rate"] < base["hit_rate"] - 1e-6:
            failures.append(
                f"{name}: hit_rate {base['hit_rate']:.6f} -> "
                f"{cur['hit_rate']:.6f}")
        if cur["solves"] > base["solves"]:
            failures.append(
                f"{name}: solves {base['solves']} -> {cur['solves']}")
        base_rho = base["spearman_min_vs_direct"]
        cur_rho = cur["spearman_min_vs_direct"]
        if cur_rho < base_rho - args.spearman_tolerance:
            failures.append(
                f"{name}: spearman_min_vs_direct {base_rho:.6f} -> "
                f"{cur_rho:.6f}")
        # Degradation-ladder counters are exact integers (fixed fault
        # schedule, serial deterministic solve order), so any drift in
        # either direction is a ladder regression — fewer retries means
        # the schedule stopped landing, more degraded orders means the
        # escalated retry stopped rescuing solves. Gated only when the
        # baseline row carries the fields (pre-ladder baselines do not).
        for field in ("retried_solves", "degraded_orders"):
            if field in base and cur.get(field) != base[field]:
                failures.append(
                    f"{name}: {field} {base[field]} -> {cur.get(field)}")
        return failures


class QuerySuite(Suite):
    def __init__(self):
        super().__init__(
            "query",
            os.path.join("bench_results", "BENCH_query_io.json"),
            ("workload", "engine", "pool_pages"),
            time_field="wall_ms",
        )

    def quality_failures(self, name, base, cur, args):
        failures = []
        # All page counters are deterministic (fixed workload seeds, strict
        # LRU, no wall-clock anywhere): any pages-touched growth or
        # hit-rate drop is a planner/layout regression, not noise.
        for field in ("range_pages_mean", "range_pages_max",
                      "knn_pages_mean"):
            if cur[field] > base[field] + 1e-6:
                failures.append(
                    f"{name}: {field} {base[field]} -> {cur[field]}")
        if cur["hit_rate"] < base["hit_rate"] - 1e-6:
            failures.append(
                f"{name}: hit_rate {base['hit_rate']:.6f} -> "
                f"{cur['hit_rate']:.6f}")
        return failures

    def consistency_failures(self, current, args):
        # Paper fidelity (Figure 6, end-to-end): on the full-grid workload
        # the spectral order's worst-case range query must touch strictly
        # fewer data pages than every fractal curve's. The claim is about
        # the worst case — fractal curves straddle top-level splits —
        # which is exactly what range_pages_max captures.
        failures = []
        gated_workload = "grid64x64"
        fractal = ("zorder", "gray", "hilbert", "peano")
        spectral_rows = {
            key: row for key, row in current.items()
            if key[0] == gated_workload and key[1] == "spectral"}
        if not spectral_rows:
            return [f"{gated_workload}: no spectral rows to gate"]
        for (workload, _, pool), srow in sorted(spectral_rows.items()):
            for curve in fractal:
                crow = current.get((workload, curve, pool))
                if crow is None:
                    failures.append(
                        f"{workload} {curve} pool={pool}: row missing, "
                        "cannot verify spectral-beats-fractal gate")
                    continue
                if srow["range_pages_max"] >= crow["range_pages_max"]:
                    failures.append(
                        f"{workload} pool={pool}: spectral worst-case "
                        f"range pages {srow['range_pages_max']} not below "
                        f"{curve}'s {crow['range_pages_max']}")
        return failures


SUITES = {s.name: s
          for s in (OrderingSuite(), EigensolverSuite(), ServiceSuite(),
                    QuerySuite())}


def load_rows(suite, path):
    with open(path, "r", encoding="utf-8") as f:
        rows = json.load(f)
    table = {}
    for row in rows:
        table[suite.key_of(row)] = row
    return table


def run_bench(suite, bench_path):
    """Runs the bench in a scratch cwd, returns (rows, raw_json)."""
    bench_abs = os.path.abspath(bench_path)
    with tempfile.TemporaryDirectory(prefix="bench_regression_") as scratch:
        proc = subprocess.run(
            [bench_abs], cwd=scratch, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            sys.exit(f"{suite.name}: bench exited with {proc.returncode}")
        produced = os.path.join(scratch, suite.json_relpath)
        if not os.path.exists(produced):
            sys.exit(f"{suite.name}: bench did not produce "
                     f"{suite.json_relpath}")
        rows = load_rows(suite, produced)
        with open(produced, "r", encoding="utf-8") as f:
            raw = f.read()
    return rows, raw


def key_name(key):
    parts = [str(part) for part in key if part not in ("", 0)]
    return " ".join(parts) if parts else str(key)


def gate_suite(suite, current, args):
    """Diffs one suite; returns the list of failure strings."""
    baseline = load_rows(suite, os.path.join(args.baseline_dir,
                                             suite.json_relpath))
    base_total = sum(
        row[suite.time_field] for row in baseline.values()) or 1.0
    cur_total = sum(row[suite.time_field] for row in current.values()) or 1.0

    failures = []
    print(f"\n=== suite: {suite.name} ===")
    print(f"{'row':44s} {'base_share':>10s} {'cur_share':>10s}  verdict")
    for key, base in sorted(baseline.items()):
        name = key_name(key)
        cur = current.get(key)
        if cur is None:
            failures.append(f"{name}: row missing from current run")
            print(f"{name:44s} {'-':>10s} {'-':>10s}  MISSING")
            continue

        base_share = base[suite.time_field] / base_total
        cur_share = cur[suite.time_field] / cur_total
        verdicts = []
        if (max(base_share, cur_share) >= args.min_share and
                cur_share > base_share * (1.0 + args.cold_tolerance) + 0.005):
            verdicts.append("COLD-REGRESSION")
            failures.append(
                f"{name}: cold share {base_share:.3f} -> {cur_share:.3f} "
                f"(> {args.cold_tolerance:.0%} growth)")
        quality = suite.quality_failures(name, base, cur, args)
        if quality:
            verdicts.append("QUALITY")
            failures.extend(quality)
        print(f"{name:44s} {base_share:10.3f} {cur_share:10.3f}  "
              f"{'+'.join(verdicts) if verdicts else 'ok'}")

    for key in sorted(set(current) - set(baseline)):
        print(f"{key_name(key):44s} (new row, not gated)")
    consistency = suite.consistency_failures(current, args)
    for failure in consistency:
        print(f"CONSISTENCY: {failure}")
    failures.extend(consistency)
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--suite", action="append", dest="suites",
                        choices=sorted(SUITES),
                        help="suite the following --bench/--current applies "
                             "to; repeatable (default: ordering)")
    parser.add_argument("--bench", action="append", dest="benches",
                        help="path to the suite's bench binary; repeatable, "
                             "pairs up with --suite in order")
    parser.add_argument("--current", action="append", dest="currents",
                        help="pre-generated current JSON for the suite "
                             "(skips running the bench)")
    parser.add_argument("--baseline-dir", default=".",
                        help="repo root holding the committed baselines "
                             "(default: .)")
    parser.add_argument("--cold-tolerance", type=float, default=0.25,
                        help="max allowed relative growth of a row's share "
                             "of total cold time (default 0.25 = 25%%)")
    parser.add_argument("--min-share", type=float, default=0.02,
                        help="ignore rows below this share of total cold "
                             "time in both runs (default 0.02)")
    parser.add_argument("--spearman-tolerance", type=float, default=1e-3,
                        help="max allowed Spearman drop (default 1e-3)")
    parser.add_argument("--matvec-tolerance", type=float, default=0.25,
                        help="max allowed matvec-count growth (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="run the benches and overwrite the baselines "
                             "instead of gating")
    parser.add_argument("--out-dir",
                        help="also copy each fresh JSON here (CI artifacts)")
    args = parser.parse_args()

    suites = args.suites or ["ordering"]
    if args.benches and args.currents:
        parser.error("--bench and --current cannot be mixed: sources pair "
                     "up with --suite flags in order, so use one kind")
    sources = args.benches if args.benches else (args.currents or [])
    use_current = args.benches is None
    if len(sources) != len(suites):
        parser.error("need exactly one --bench or --current per --suite")

    all_failures = []
    for suite_name, source in zip(suites, sources):
        suite = SUITES[suite_name]
        if use_current:
            current = load_rows(suite, source)
            raw = None
        else:
            current, raw = run_bench(suite, source)

        if args.out_dir and raw is not None:
            out_path = os.path.join(args.out_dir,
                                    os.path.basename(suite.json_relpath))
            os.makedirs(args.out_dir, exist_ok=True)
            with open(out_path, "w", encoding="utf-8") as f:
                f.write(raw)

        baseline_path = os.path.join(args.baseline_dir, suite.json_relpath)
        if args.update:
            if raw is None:
                shutil.copyfile(source, baseline_path)
            else:
                os.makedirs(os.path.dirname(baseline_path) or ".",
                            exist_ok=True)
                with open(baseline_path, "w", encoding="utf-8") as f:
                    f.write(raw)
            print(f"baseline updated: {baseline_path}")
            continue

        all_failures.extend(gate_suite(suite, current, args))

    if args.update:
        return 0
    if all_failures:
        print("\nbench regression check FAILED:")
        for failure in all_failures:
            print(f"  - {failure}")
        print("\nIf the change is intentional, refresh the baselines "
              "(see --help).")
        return 1
    print("\nbench regression check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
