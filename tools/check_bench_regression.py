#!/usr/bin/env python3
"""CI bench-regression gate for bench_ordering_engines.

Runs the bench binary (or takes a pre-generated JSON), diffs
bench_results/BENCH_ordering_engines.json against the committed baseline,
and fails on:

  * a missing row (an engine/workload/shard combination the baseline has
    but the current run lost),
  * any Spearman-vs-spectral drop beyond --spearman-tolerance (solves are
    deterministic, so a real drop means the ordering quality regressed),
  * a cold-time regression beyond --cold-tolerance (default 25%).

Cold times are compared as *shares of the run's total cold time*, not as
absolute milliseconds: CI machines and dev laptops differ by integer
factors in raw speed, but a single engine suddenly consuming a much larger
fraction of the whole suite is machine-independent evidence of a
regression. Rows whose share is below --min-share in both runs are skipped
as timing noise. This keeps the gate tolerance-based and non-flaky.

Updating the baseline (after an intentional perf/quality change):

    cmake --build build --target bench_ordering_engines
    (cd <repo-root> && ./build/bench_ordering_engines)   # rewrites the JSON
    git add bench_results/BENCH_ordering_engines.json

or run this script with --update, which runs the bench and copies the
fresh JSON over the baseline.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

JSON_RELPATH = os.path.join("bench_results", "BENCH_ordering_engines.json")


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        rows = json.load(f)
    table = {}
    for row in rows:
        key = (row["engine"], row.get("workload", ""), int(row.get("shards", 0)))
        table[key] = row
    return table


def run_bench(bench_path):
    """Runs the bench in a scratch cwd and returns the parsed JSON rows."""
    bench_abs = os.path.abspath(bench_path)
    with tempfile.TemporaryDirectory(prefix="bench_regression_") as scratch:
        proc = subprocess.run(
            [bench_abs], cwd=scratch, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            sys.exit(f"bench exited with {proc.returncode}")
        produced = os.path.join(scratch, JSON_RELPATH)
        if not os.path.exists(produced):
            sys.exit(f"bench did not produce {JSON_RELPATH}")
        rows = load_rows(produced)
        # Keep a copy around for --update before the tempdir vanishes.
        with open(produced, "r", encoding="utf-8") as f:
            raw = f.read()
    return rows, raw


def key_name(key):
    engine, workload, shards = key
    name = engine
    if workload:
        name += f" @{workload}"
    if shards:
        name += f" K={shards}"
    return name


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--bench", help="path to the bench_ordering_engines binary")
    parser.add_argument("--current",
                        help="pre-generated current JSON (skips running the bench)")
    parser.add_argument("--baseline", default=JSON_RELPATH,
                        help=f"committed baseline JSON (default: {JSON_RELPATH})")
    parser.add_argument("--cold-tolerance", type=float, default=0.25,
                        help="max allowed relative growth of a row's share of "
                             "total cold time (default 0.25 = 25%%)")
    parser.add_argument("--min-share", type=float, default=0.02,
                        help="ignore rows below this share of total cold time "
                             "in both runs (timing noise floor, default 0.02)")
    parser.add_argument("--spearman-tolerance", type=float, default=1e-3,
                        help="max allowed Spearman drop (default 1e-3)")
    parser.add_argument("--update", action="store_true",
                        help="run the bench and overwrite the baseline "
                             "instead of gating")
    args = parser.parse_args()

    if args.current:
        current = load_rows(args.current)
        raw = None
    elif args.bench:
        current, raw = run_bench(args.bench)
    else:
        parser.error("one of --bench or --current is required")

    if args.update:
        if raw is None:
            shutil.copyfile(args.current, args.baseline)
        else:
            os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
            with open(args.baseline, "w", encoding="utf-8") as f:
                f.write(raw)
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = load_rows(args.baseline)
    base_total = sum(row["cold_ms"] for row in baseline.values()) or 1.0
    cur_total = sum(row["cold_ms"] for row in current.values()) or 1.0

    failures = []
    print(f"\n{'row':44s} {'base_share':>10s} {'cur_share':>10s} "
          f"{'base_rho':>9s} {'cur_rho':>9s}  verdict")
    for key, base in sorted(baseline.items()):
        name = key_name(key)
        cur = current.get(key)
        if cur is None:
            failures.append(f"{name}: row missing from current run")
            print(f"{name:44s} {'-':>10s} {'-':>10s} {'-':>9s} {'-':>9s}  MISSING")
            continue

        base_share = base["cold_ms"] / base_total
        cur_share = cur["cold_ms"] / cur_total
        verdict = "ok"
        if (max(base_share, cur_share) >= args.min_share and
                cur_share > base_share * (1.0 + args.cold_tolerance) + 0.005):
            verdict = "COLD-REGRESSION"
            failures.append(
                f"{name}: cold share {base_share:.3f} -> {cur_share:.3f} "
                f"(> {args.cold_tolerance:.0%} growth)")

        base_rho = base["spearman_vs_spectral"]
        cur_rho = cur["spearman_vs_spectral"]
        if cur_rho < base_rho - args.spearman_tolerance:
            verdict = (verdict + "+" if verdict != "ok" else "") + "RHO-DROP"
            failures.append(
                f"{name}: spearman {base_rho:.6f} -> {cur_rho:.6f}")

        print(f"{name:44s} {base_share:10.3f} {cur_share:10.3f} "
              f"{base_rho:9.4f} {cur_rho:9.4f}  {verdict}")

    new_rows = sorted(set(current) - set(baseline))
    for key in new_rows:
        print(f"{key_name(key):44s} (new row, not gated)")

    if failures:
        print("\nbench regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print("\nIf the change is intentional, refresh the baseline "
              "(see --help).")
        return 1
    print("\nbench regression check passed "
          f"({len(baseline)} rows, {len(new_rows)} new).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
