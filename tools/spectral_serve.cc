// The ordering server daemon: wraps an OrderingServer and serves the
// line-delimited wire protocol (see src/serve/ordering_server.h for the
// grammar) over stdin/stdout or a loopback TCP port.
//
// Usage:
//   spectral_serve --stdio [options]        serve one session over the pipe
//   spectral_serve --port=N [options]       listen on 127.0.0.1:N (0 =
//                                           ephemeral; the bound port is
//                                           printed as "LISTENING <port>")
// Options:
//   --window-ms=MS     aggregation window (default 1.0)
//   --max-batch=K      max requests per dispatched batch (default 64)
//   --queue=N          admission bound; beyond it submissions are shed
//                      (default 1024)
//   --deadline-ms=MS   default per-request deadline, 0 = none (default 0)
//   --cache=N          LRU order-cache capacity in entries (default 4096)
//   --parallelism=N    worker threads (0 = hardware concurrency)
//   --snapshot=PATH    restore the order cache from PATH on start (a
//                      missing snapshot starts cold; a corrupt one is
//                      quarantined to PATH.corrupt and starts cold) and
//                      save it back on clean exit
//   --faults=SPEC      arm the fault-injection registry (SPECTRAL_FAULTS
//                      builds only; a warning otherwise). SPEC is
//                      comma-separated site:probability or site:#i/j/k
//                      hit schedules, e.g.
//                      "solver.converge:1,snapshot.write:#0"
//   --fault-seed=N     seed for the fault registry's per-site streams
//                      (default 0x5EED5EED5EED5EED)
//
// In --stdio mode the process exits when the client sends QUIT or closes
// stdin. In --port mode it runs until SIGINT/SIGTERM, then drains and (with
// --snapshot) persists the cache; SIGHUP rotates the snapshot immediately
// (crash-safe, off the serving threads) without stopping.

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "serve/ordering_server.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace spectral {
namespace {

struct ServeArgs {
  bool stdio = false;
  int port = -1;
  std::string fault_spec;
  uint64_t fault_seed = 0x5EED5EED5EED5EEDull;
  OrderingServerOptions server;

  ServeArgs() { server.service.cache_capacity = 4096; }
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Usage() {
  std::cerr << "usage: spectral_serve (--stdio | --port=N) [--window-ms=MS] "
               "[--max-batch=K] [--queue=N] [--deadline-ms=MS] [--cache=N] "
               "[--parallelism=N] [--snapshot=PATH] [--faults=SPEC] "
               "[--fault-seed=N]\n";
  return 2;
}

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_rotate = 0;
void HandleStop(int) { g_stop = 1; }
void HandleRotate(int) { g_rotate = 1; }

int RunServer(const ServeArgs& args) {
  // Process-lifetime registry; the server (and everything below it) holds
  // a raw pointer, so it must outlive the OrderingServer.
  FaultInjector faults(args.fault_seed);
  OrderingServerOptions server_options = args.server;
  if (!args.fault_spec.empty()) {
    if (!kFaultInjectionEnabled) {
      std::cerr << "warning: --faults ignored (built without "
                   "SPECTRAL_FAULTS)\n";
    } else if (const Status s = faults.ArmFromSpec(args.fault_spec); !s.ok()) {
      std::cerr << "bad --faults spec: " << s << "\n";
      return 2;
    } else {
      server_options.faults = &faults;
    }
  }
  OrderingServer server(server_options);
  const std::string& snapshot = args.server.snapshot_path;
  if (!snapshot.empty()) {
    auto restored = server.LoadSnapshot(snapshot);
    if (restored.ok()) {
      std::cerr << "restored " << *restored << " cache entries from "
                << snapshot << "\n";
    } else {
      std::cerr << "starting cold (snapshot " << snapshot
                << " unusable: " << restored.status() << ")\n";
    }
  }

  if (args.stdio) {
    server.ServeStream(std::cin, std::cout);
  } else {
    auto port = server.StartTcp(args.port);
    if (!port.ok()) {
      std::cerr << "error starting listener: " << port.status() << "\n";
      return 1;
    }
    // Printed on stdout so scripts can scrape the ephemeral port.
    std::cout << "LISTENING " << *port << std::endl;
    std::signal(SIGINT, HandleStop);
    std::signal(SIGTERM, HandleStop);
    std::signal(SIGHUP, HandleRotate);
    sigset_t empty;
    sigemptyset(&empty);
    while (g_stop == 0) {
      sigsuspend(&empty);
      if (g_rotate != 0) {
        g_rotate = 0;
        if (snapshot.empty()) {
          std::cerr << "SIGHUP ignored: no --snapshot path configured\n";
        } else if (auto queued = server.RotateSnapshot(snapshot);
                   queued.ok()) {
          std::cerr << "SIGHUP: rotating snapshot (" << *queued
                    << " entries) to " << snapshot << "\n";
        } else {
          std::cerr << "SIGHUP rotation failed: " << queued.status() << "\n";
        }
      }
    }
    std::cerr << "draining...\n";
  }

  server.Shutdown();
  if (!snapshot.empty()) {
    if (const Status s = server.SaveSnapshot(snapshot); !s.ok()) {
      std::cerr << "error saving snapshot: " << s << "\n";
      return 1;
    }
    std::cerr << "saved cache snapshot to " << snapshot << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace spectral

int main(int argc, char** argv) {
  spectral::ServeArgs args;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdio") {
      args.stdio = true;
    } else if (spectral::ParseFlag(arg, "port", &value)) {
      args.port = std::atoi(value.c_str());
      if (args.port < 0 || args.port > 65535) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "window-ms", &value)) {
      args.server.window_ms = std::atof(value.c_str());
      if (args.server.window_ms < 0.0) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "max-batch", &value)) {
      const long long v = std::atoll(value.c_str());
      if (v < 1) return spectral::Usage();
      args.server.max_batch = static_cast<size_t>(v);
    } else if (spectral::ParseFlag(arg, "queue", &value)) {
      const long long v = std::atoll(value.c_str());
      if (v < 1) return spectral::Usage();
      args.server.max_queue = static_cast<size_t>(v);
    } else if (spectral::ParseFlag(arg, "deadline-ms", &value)) {
      args.server.default_deadline_ms = std::atof(value.c_str());
      if (args.server.default_deadline_ms < 0.0) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "cache", &value)) {
      const long long v = std::atoll(value.c_str());
      if (v < 0) return spectral::Usage();
      args.server.service.cache_capacity = static_cast<size_t>(v);
    } else if (spectral::ParseFlag(arg, "parallelism", &value)) {
      args.server.service.parallelism = std::atoi(value.c_str());
      if (args.server.service.parallelism < 0) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "snapshot", &value)) {
      args.server.snapshot_path = value;
    } else if (spectral::ParseFlag(arg, "faults", &value)) {
      args.fault_spec = value;
    } else if (spectral::ParseFlag(arg, "fault-seed", &value)) {
      args.fault_seed =
          static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 0));
    } else {
      return spectral::Usage();
    }
  }
  if (args.stdio == (args.port >= 0)) return spectral::Usage();
  return spectral::RunServer(args);
}
