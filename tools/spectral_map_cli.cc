// Command-line mapper: read a point file, compute a linear order, write it
// back out. Lets the (expensive) eigensolve run offline and the resulting
// order ship to whatever system lays the data out.
//
// Usage:
//   spectral_map_cli <points.txt> <order.txt> [options]
// Options:
//   --mapping=NAME    any OrderingEngine registry name: spectral,
//                     spectral-multilevel, bisection, sweep, snake, zorder,
//                     gray, hilbert, peano, spiral
//   --connectivity=orthogonal|moore      (spectral family only)
//   --radius=N                           (default 1)
//   --multilevel=N    use the multilevel solver for components >= N
//   --parallelism=N   solver threads (0 = hardware concurrency, 1 = serial;
//                     spectral/spectral-multilevel only — bisection and the
//                     curve engines run serially)
//   --quiet           suppress the summary line
//
// The points file uses the core/serialization.h text format; see
// examples/offline_pipeline.cpp for a producer.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/ordering_engine.h"
#include "core/serialization.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace spectral {
namespace {

struct CliArgs {
  std::string points_path;
  std::string order_path;
  std::string mapping = "spectral";
  GridConnectivity connectivity = GridConnectivity::kOrthogonal;
  int radius = 1;
  int64_t multilevel = 0;
  int parallelism = 0;
  bool quiet = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Usage() {
  std::cerr << "usage: spectral_map_cli <points.txt> <order.txt> "
               "[--mapping=NAME] [--connectivity=orthogonal|moore] "
               "[--radius=N] [--multilevel=N] [--parallelism=N] [--quiet]\n"
               "known mappings: "
            << StrJoin(AllOrderingEngineNames(), ", ") << "\n";
  return 2;
}

int RunCli(const CliArgs& args) {
  auto points = LoadPointSetFromFile(args.points_path);
  if (!points.ok()) {
    std::cerr << "error reading points: " << points.status() << "\n";
    return 1;
  }

  OrderingEngineOptions options;
  options.spectral.graph.connectivity = args.connectivity;
  options.spectral.graph.radius = args.radius;
  options.spectral.multilevel_threshold = args.multilevel;
  options.spectral.parallelism = args.parallelism;
  auto engine = MakeOrderingEngine(args.mapping, options);
  if (!engine.ok()) {
    std::cerr << engine.status().message() << "\n";
    return 2;
  }

  WallTimer timer;
  auto result = (*engine)->Order(*points);
  if (!result.ok()) {
    std::cerr << "mapping failed: " << result.status() << "\n";
    return 1;
  }
  const double seconds = timer.ElapsedSeconds();

  if (const Status s = SaveLinearOrderToFile(result->order, args.order_path);
      !s.ok()) {
    std::cerr << "error writing order: " << s << "\n";
    return 1;
  }
  if (!args.quiet) {
    std::cout << "mapped " << points->size() << " points (" << points->dims()
              << "-d) with " << args.mapping << " in "
              << static_cast<int64_t>(seconds * 1e3) << " ms; "
              << result->detail << "; wrote " << args.order_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace spectral

int main(int argc, char** argv) {
  spectral::CliArgs args;
  std::string value;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (spectral::ParseFlag(arg, "mapping", &value)) {
      args.mapping = value;
    } else if (spectral::ParseFlag(arg, "connectivity", &value)) {
      if (value == "moore") {
        args.connectivity = spectral::GridConnectivity::kMoore;
      } else if (value == "orthogonal") {
        args.connectivity = spectral::GridConnectivity::kOrthogonal;
      } else {
        return spectral::Usage();
      }
    } else if (spectral::ParseFlag(arg, "radius", &value)) {
      args.radius = std::atoi(value.c_str());
      if (args.radius < 1) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "multilevel", &value)) {
      args.multilevel = std::atoll(value.c_str());
    } else if (spectral::ParseFlag(arg, "parallelism", &value)) {
      args.parallelism = std::atoi(value.c_str());
      if (args.parallelism < 0) return spectral::Usage();
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      return spectral::Usage();
    } else if (positional == 0) {
      args.points_path = arg;
      ++positional;
    } else if (positional == 1) {
      args.order_path = arg;
      ++positional;
    } else {
      return spectral::Usage();
    }
  }
  if (positional != 2) return spectral::Usage();
  return spectral::RunCli(args);
}
