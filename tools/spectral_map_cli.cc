// Command-line mapper: read a point file, compute a linear order through
// the MappingService facade, write it back out. Lets the (expensive)
// eigensolve run offline and the resulting order ship to whatever system
// lays the data out.
//
// Usage:
//   spectral_map_cli <points.txt> <order.txt> [options]
// Options:
//   --mapping=NAME    any OrderingEngine registry name (the engine list in
//                     --help is generated from the registry itself)
//   --connectivity=orthogonal|moore      (spectral family only)
//   --radius=N                           (default 1)
//   --multilevel=N    use the multilevel solver for components >= N
//   --shards=K        shard count for --mapping=sharded-spectral (K=1 is
//                     byte-identical to spectral; K>1 partitions the
//                     request, solves shards concurrently, stitches)
//   --parallelism=N   worker threads shared by batch fan-out and the
//                     spectral solves (0 = hardware concurrency, 1 = serial)
//   --cache=N         LRU order-cache capacity in entries (default 0 = off)
//   --batch=K         submit K copies of the request as one OrderBatch —
//                     a cache/batching smoke knob; the order file is
//                     written once and the service stats are printed
//   --profile         print the block solver's per-kernel breakdown (wall
//                     ms and deterministic flop estimates for SpMM /
//                     reorth / H-fill / Rayleigh-Ritz / Chebyshev)
//   --quiet           suppress the summary lines
//
// The points file uses the core/serialization.h text format; see
// examples/offline_pipeline.cpp for a producer.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/mapping_service.h"
#include "core/ordering_request.h"
#include "core/serialization.h"
#include "eigen/kernel_profile.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace spectral {
namespace {

struct CliArgs {
  std::string points_path;
  std::string order_path;
  std::string mapping = "spectral";
  GridConnectivity connectivity = GridConnectivity::kOrthogonal;
  int radius = 1;
  int64_t multilevel = 0;
  int shards = 1;
  int parallelism = 0;
  int64_t cache = 0;
  int64_t batch = 1;
  bool profile = false;
  bool quiet = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Usage() {
  std::cerr << "usage: spectral_map_cli <points.txt> <order.txt> "
               "[--mapping=NAME] [--connectivity=orthogonal|moore] "
               "[--radius=N] [--multilevel=N] [--shards=K] "
               "[--parallelism=N] [--cache=N] [--batch=K] [--profile] "
               "[--quiet]\n"
               "known mappings: "
            << StrJoin(AllOrderingEngineNames(), ", ") << "\n";
  return 2;
}

int RunCli(const CliArgs& args) {
  auto points = LoadPointSetFromFile(args.points_path);
  if (!points.ok()) {
    std::cerr << "error reading points: " << points.status() << "\n";
    return 1;
  }

  OrderingRequest request = OrderingRequest::ForPoints(*points, args.mapping);
  request.options.spectral.graph.connectivity = args.connectivity;
  request.options.spectral.graph.radius = args.radius;
  request.options.spectral.multilevel_threshold = args.multilevel;
  request.options.sharded.num_shards = args.shards;
  request.options.spectral.parallelism = args.parallelism;

  MappingServiceOptions service_options;
  service_options.parallelism = args.parallelism;
  service_options.cache_capacity = static_cast<size_t>(args.cache);
  MappingService service(service_options);

  const std::vector<OrderingRequest> batch(
      static_cast<size_t>(args.batch), request);
  WallTimer timer;
  auto results = service.OrderBatch(batch);
  const double seconds = timer.ElapsedSeconds();
  for (const auto& result : results) {
    if (!result.ok()) {
      std::cerr << "mapping failed: " << result.status() << "\n";
      return result.status().code() == StatusCode::kNotFound ? 2 : 1;
    }
  }
  const OrderingResult& result = *results.front();

  if (const Status s = SaveLinearOrderToFile(result.order, args.order_path);
      !s.ok()) {
    std::cerr << "error writing order: " << s << "\n";
    return 1;
  }
  if (!args.quiet) {
    std::cout << "mapped " << points->size() << " points (" << points->dims()
              << "-d) with " << args.mapping << " in "
              << static_cast<int64_t>(seconds * 1e3) << " ms; "
              << result.detail << "; wrote " << args.order_path << "\n";
    const MappingServiceStats stats = service.stats();
    std::cout << "service: requests=" << stats.requests
              << " solves=" << stats.solves
              << " cache_hits=" << stats.cache_hits
              << " cache_misses=" << stats.cache_misses
              << " cache_evictions=" << stats.cache_evictions
              << " fingerprint=" << request.Fingerprint().ToHex() << "\n";
  }
  if (args.profile) {
    // Wall times are machine state; the flop estimates are deterministic
    // (they also ride in result.detail as the flops=... token).
    const KernelProfile& p = result.profile;
    const struct {
      const char* name;
      double ms;
      int64_t flops;
    } phases[] = {{"spmm", p.spmm_ms, p.spmm_flops},
                  {"reorth", p.reorth_ms, p.reorth_flops},
                  {"hfill", p.hfill_ms, p.hfill_flops},
                  {"rr", p.rr_ms, p.rr_flops},
                  {"cheb", p.cheb_ms, p.cheb_flops}};
    const double total_ms = p.total_ms();
    std::cout << "profile (block solver kernels):\n";
    for (const auto& phase : phases) {
      const double share = total_ms > 0.0 ? phase.ms / total_ms : 0.0;
      std::printf("  %-7s %9.2f ms  %5.1f%%  %15lld flops\n", phase.name,
                  phase.ms, share * 100.0,
                  static_cast<long long>(phase.flops));
    }
    std::printf("  %-7s %9.2f ms         %15lld flops\n", "total", total_ms,
                static_cast<long long>(p.total_flops()));
  }
  return 0;
}

}  // namespace
}  // namespace spectral

int main(int argc, char** argv) {
  spectral::CliArgs args;
  std::string value;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (spectral::ParseFlag(arg, "mapping", &value)) {
      args.mapping = value;
    } else if (spectral::ParseFlag(arg, "connectivity", &value)) {
      if (value == "moore") {
        args.connectivity = spectral::GridConnectivity::kMoore;
      } else if (value == "orthogonal") {
        args.connectivity = spectral::GridConnectivity::kOrthogonal;
      } else {
        return spectral::Usage();
      }
    } else if (spectral::ParseFlag(arg, "radius", &value)) {
      args.radius = std::atoi(value.c_str());
      if (args.radius < 1) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "multilevel", &value)) {
      args.multilevel = std::atoll(value.c_str());
    } else if (spectral::ParseFlag(arg, "shards", &value)) {
      args.shards = std::atoi(value.c_str());
      if (args.shards < 1) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "parallelism", &value)) {
      args.parallelism = std::atoi(value.c_str());
      if (args.parallelism < 0) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "cache", &value)) {
      args.cache = std::atoll(value.c_str());
      if (args.cache < 0) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "batch", &value)) {
      args.batch = std::atoll(value.c_str());
      if (args.batch < 1) return spectral::Usage();
    } else if (arg == "--profile") {
      args.profile = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      return spectral::Usage();
    } else if (positional == 0) {
      args.points_path = arg;
      ++positional;
    } else if (positional == 1) {
      args.order_path = arg;
      ++positional;
    } else {
      return spectral::Usage();
    }
  }
  if (positional != 2) return spectral::Usage();
  return spectral::RunCli(args);
}
