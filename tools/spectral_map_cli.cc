// Command-line mapper: read a point file, compute a linear order, write it
// back out. Lets the (expensive) eigensolve run offline and the resulting
// order ship to whatever system lays the data out.
//
// Usage:
//   spectral_map_cli <points.txt> <order.txt> [options]
// Options:
//   --mapping=spectral|bisection|sweep|snake|zorder|gray|hilbert|peano
//   --connectivity=orthogonal|moore      (spectral/bisection only)
//   --radius=N                           (default 1)
//   --multilevel=N    use the multilevel solver for components >= N
//   --quiet           suppress the summary line
//
// The points file uses the core/serialization.h text format; see
// examples/offline_pipeline.cpp for a producer.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/curve_order.h"
#include "core/recursive_bisection.h"
#include "core/serialization.h"
#include "core/spectral_lpm.h"
#include "util/timer.h"

namespace spectral {
namespace {

struct CliArgs {
  std::string points_path;
  std::string order_path;
  std::string mapping = "spectral";
  GridConnectivity connectivity = GridConnectivity::kOrthogonal;
  int radius = 1;
  int64_t multilevel = 0;
  bool quiet = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Usage() {
  std::cerr
      << "usage: spectral_map_cli <points.txt> <order.txt> "
         "[--mapping=spectral|bisection|sweep|snake|zorder|gray|hilbert|"
         "peano] [--connectivity=orthogonal|moore] [--radius=N] "
         "[--multilevel=N] [--quiet]\n";
  return 2;
}

int RunCli(const CliArgs& args) {
  auto points = LoadPointSetFromFile(args.points_path);
  if (!points.ok()) {
    std::cerr << "error reading points: " << points.status() << "\n";
    return 1;
  }

  WallTimer timer;
  LinearOrder order;
  std::string summary;
  if (args.mapping == "spectral" || args.mapping == "bisection") {
    SpectralLpmOptions options;
    options.graph.connectivity = args.connectivity;
    options.graph.radius = args.radius;
    options.multilevel_threshold = args.multilevel;
    if (args.mapping == "spectral") {
      auto result = SpectralMapper(options).Map(*points);
      if (!result.ok()) {
        std::cerr << "mapping failed: " << result.status() << "\n";
        return 1;
      }
      order = std::move(result->order);
      summary = "lambda2=" + std::to_string(result->lambda2) +
                " components=" + std::to_string(result->num_components) +
                " engine=" + result->method_used;
    } else {
      RecursiveBisectionOptions options_bisect;
      options_bisect.base = options;
      auto result = RecursiveSpectralOrder(*points, options_bisect);
      if (!result.ok()) {
        std::cerr << "mapping failed: " << result.status() << "\n";
        return 1;
      }
      order = std::move(result->order);
      summary = "solves=" + std::to_string(result->num_solves) +
                " depth=" + std::to_string(result->depth);
    }
  } else {
    auto kind = CurveKindFromName(args.mapping);
    if (!kind.ok()) {
      std::cerr << "unknown mapping '" << args.mapping << "'\n";
      return 2;
    }
    auto result = OrderByCurve(*points, *kind);
    if (!result.ok()) {
      std::cerr << "mapping failed: " << result.status() << "\n";
      return 1;
    }
    order = std::move(*result);
    summary = "curve=" + args.mapping;
  }
  const double seconds = timer.ElapsedSeconds();

  if (const Status s = SaveLinearOrderToFile(order, args.order_path);
      !s.ok()) {
    std::cerr << "error writing order: " << s << "\n";
    return 1;
  }
  if (!args.quiet) {
    std::cout << "mapped " << points->size() << " points (" << points->dims()
              << "-d) with " << args.mapping << " in "
              << static_cast<int64_t>(seconds * 1e3) << " ms; " << summary
              << "; wrote " << args.order_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace spectral

int main(int argc, char** argv) {
  spectral::CliArgs args;
  std::string value;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (spectral::ParseFlag(arg, "mapping", &value)) {
      args.mapping = value;
    } else if (spectral::ParseFlag(arg, "connectivity", &value)) {
      if (value == "moore") {
        args.connectivity = spectral::GridConnectivity::kMoore;
      } else if (value == "orthogonal") {
        args.connectivity = spectral::GridConnectivity::kOrthogonal;
      } else {
        return spectral::Usage();
      }
    } else if (spectral::ParseFlag(arg, "radius", &value)) {
      args.radius = std::atoi(value.c_str());
      if (args.radius < 1) return spectral::Usage();
    } else if (spectral::ParseFlag(arg, "multilevel", &value)) {
      args.multilevel = std::atoll(value.c_str());
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      return spectral::Usage();
    } else if (positional == 0) {
      args.points_path = arg;
      ++positional;
    } else if (positional == 1) {
      args.order_path = arg;
      ++positional;
    } else {
      return spectral::Usage();
    }
  }
  if (positional != 2) return spectral::Usage();
  return spectral::RunCli(args);
}
