// True triadic Peano curve (Peano 1890), arbitrary dimension: base-3 digit
// construction with reflections. Continuous like Hilbert (consecutive
// positions at Manhattan distance 1) but built on 3x3 serpentines. Included
// beyond the paper's baselines (its "Peano" is Z-order; see sfc/morton.h).
//
// Rectangular grids are supported as long as every side is a power of three
// (sides may differ per axis). A longer axis contributes extra leading
// digits before the shorter axes join: those digits sweep serpentine-wise
// over hyper-cube super-blocks, and the standard reflection rule applied to
// the variable-length digit sequence keeps consecutive positions at
// Manhattan distance 1 across block boundaries. For hyper-cube grids the
// construction reduces exactly to the classic curve.

#ifndef SPECTRAL_LPM_SFC_PEANO_H_
#define SPECTRAL_LPM_SFC_PEANO_H_

#include <memory>
#include <vector>

#include "sfc/curve.h"

namespace spectral {

/// Triadic Peano curve over a grid whose sides are powers of three (not
/// necessarily equal). Requires sum_a log3(side_a) <= 39 (index fits in 63
/// bits).
class PeanoCurve : public SpaceFillingCurve {
 public:
  static StatusOr<std::unique_ptr<PeanoCurve>> Create(const GridSpec& grid);

  std::string_view name() const override { return "peano"; }
  uint64_t IndexOf(std::span<const Coord> p) const override;
  void PointOf(uint64_t index, std::span<Coord> out) const override;

 private:
  PeanoCurve(GridSpec grid, std::vector<int> digits);

  std::vector<int> digits_;        // base-3 digits per axis
  std::vector<int> digit_offset_;  // prefix sums of digits_ (flat layout)
  // Digit positions, most significant first: pos_axis_[k] is the axis the
  // k-th index digit belongs to, pos_level_[k] its digit index within that
  // axis (0 = most significant). Axes with fewer digits join late, which is
  // what makes the leading digits sweep over super-blocks.
  std::vector<int> pos_axis_;
  std::vector<int> pos_level_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_PEANO_H_
