// True triadic Peano curve (Peano 1890), arbitrary dimension: base-3 digit
// construction with reflections. Continuous like Hilbert (consecutive
// positions at Manhattan distance 1) but built on 3x3 serpentines. Included
// beyond the paper's baselines (its "Peano" is Z-order; see sfc/morton.h).

#ifndef SPECTRAL_LPM_SFC_PEANO_H_
#define SPECTRAL_LPM_SFC_PEANO_H_

#include <memory>

#include "sfc/curve.h"

namespace spectral {

/// Triadic Peano curve over a hyper-cube grid with power-of-three side.
/// Requires dims * log3(side) <= 39 (index fits in 63 bits).
class PeanoCurve : public SpaceFillingCurve {
 public:
  static StatusOr<std::unique_ptr<PeanoCurve>> Create(const GridSpec& grid);

  std::string_view name() const override { return "peano"; }
  uint64_t IndexOf(std::span<const Coord> p) const override;
  void PointOf(uint64_t index, std::span<Coord> out) const override;

 private:
  PeanoCurve(GridSpec grid, int digits);

  int digits_;  // base-3 digits per axis
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_PEANO_H_
