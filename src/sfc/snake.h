// Snake (boustrophedon) mapping: row-major with alternating direction, i.e.
// the reflected mixed-radix Gray code over the coordinates. Continuous
// (consecutive positions are grid neighbors) on any grid — a useful
// non-fractal, non-spectral reference point beyond the paper's baselines.

#ifndef SPECTRAL_LPM_SFC_SNAKE_H_
#define SPECTRAL_LPM_SFC_SNAKE_H_

#include "sfc/curve.h"

namespace spectral {

/// Boustrophedon scan of any grid.
class SnakeCurve : public SpaceFillingCurve {
 public:
  explicit SnakeCurve(GridSpec grid);

  std::string_view name() const override { return "snake"; }
  uint64_t IndexOf(std::span<const Coord> p) const override;
  void PointOf(uint64_t index, std::span<Coord> out) const override;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_SNAKE_H_
