// Name-based curve construction so benches and examples can iterate over
// all baselines uniformly.

#ifndef SPECTRAL_LPM_SFC_CURVE_REGISTRY_H_
#define SPECTRAL_LPM_SFC_CURVE_REGISTRY_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "sfc/curve.h"

namespace spectral {

/// All curve families in the library.
enum class CurveKind {
  kSweep,
  kSnake,
  /// Z-order; the "Peano" of the paper's Figure 1a.
  kZOrder,
  kGray,
  kHilbert,
  /// True triadic Peano.
  kPeano,
  /// Concentric spiral (2-d square grids only).
  kSpiral,
};

/// Stable lowercase name ("sweep", "zorder", ...).
std::string_view CurveKindName(CurveKind kind);

/// Parses a name produced by CurveKindName.
StatusOr<CurveKind> CurveKindFromName(std::string_view name);

/// All kinds, in presentation order.
std::vector<CurveKind> AllCurveKinds();

/// Instantiates a curve over `grid`; fails if the grid shape is unsupported
/// by the family (e.g. non-power-of-two side for hilbert).
StatusOr<std::unique_ptr<SpaceFillingCurve>> MakeCurve(CurveKind kind,
                                                       const GridSpec& grid);

/// Smallest uniform grid of the family-required side (power of 2, power of
/// 3, or exact) that covers `extent` cells per axis. Returns
/// InvalidArgument when the rounded-up side exceeds the coordinate range
/// or the cell count overflows the 64-bit curve index width — callers used
/// to see a silently wrapped grid near the 2^31 coordinate boundary.
StatusOr<GridSpec> EnclosingGridFor(CurveKind kind, int dims, Coord extent);

/// Per-axis variant: the smallest legal enclosing grid covering
/// `extents[a]` cells along axis a. Sweep, snake, and spiral take the
/// extents exactly (spiral additionally requires 2-d data, reported as a
/// clear InvalidArgument instead of a downstream construction failure);
/// peano rounds each axis up to its own power of three (rectangles compose
/// as sweep blocks, so a 10x100 extent costs a 27x243 grid instead of the
/// old 243x243 hyper-cube); the power-of-two families still need a
/// hyper-cube padded from the largest extent. Overflow checks as above.
StatusOr<GridSpec> EnclosingGridForExtents(CurveKind kind,
                                           std::span<const Coord> extents);

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_CURVE_REGISTRY_H_
