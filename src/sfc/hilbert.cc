#include "sfc/hilbert.h"

#include <vector>

#include "util/check.h"

namespace spectral {

namespace {

// Skilling's in-place transforms on the "transpose" representation: X[i]
// holds the b bits of axis i.

// Hilbert transpose -> axes (decode).
void TransposeToAxes(std::vector<uint32_t>& x, int b) {
  const int n = static_cast<int>(x.size());
  const uint32_t top = uint32_t{1} << (b - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[static_cast<size_t>(n - 1)] >> 1;
  for (int i = n - 1; i > 0; --i) {
    x[static_cast<size_t>(i)] ^= x[static_cast<size_t>(i - 1)];
  }
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != top << 1; q <<= 1) {
    const uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[static_cast<size_t>(i)] & q) {
        x[0] ^= p;  // invert low bits of axis 0
      } else {
        t = (x[0] ^ x[static_cast<size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<size_t>(i)] ^= t;
      }
    }
  }
}

// Axes -> Hilbert transpose (encode).
void AxesToTranspose(std::vector<uint32_t>& x, int b) {
  const int n = static_cast<int>(x.size());
  const uint32_t top = uint32_t{1} << (b - 1);
  uint32_t t;
  // Inverse undo.
  for (uint32_t q = top; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[static_cast<size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[static_cast<size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) {
    x[static_cast<size_t>(i)] ^= x[static_cast<size_t>(i - 1)];
  }
  t = 0;
  for (uint32_t q = top; q > 1; q >>= 1) {
    if (x[static_cast<size_t>(n - 1)] & q) t ^= q - 1;
  }
  for (int i = 0; i < n; ++i) x[static_cast<size_t>(i)] ^= t;
}

// Packs the transpose into a linear index: bit j of axis i lands so that
// (axis 0, bit b-1) is the most significant index bit.
uint64_t TransposeToIndex(const std::vector<uint32_t>& x, int b) {
  uint64_t h = 0;
  for (int j = b - 1; j >= 0; --j) {
    for (const uint32_t xi : x) {
      h = (h << 1) | ((xi >> j) & 1u);
    }
  }
  return h;
}

void IndexToTranspose(uint64_t h, int b, std::vector<uint32_t>& x) {
  const int n = static_cast<int>(x.size());
  for (auto& xi : x) xi = 0;
  int pos = b * n - 1;  // bit position in h, MSB first
  for (int j = b - 1; j >= 0; --j) {
    for (int i = 0; i < n; ++i) {
      const uint32_t bit = static_cast<uint32_t>((h >> pos) & 1u);
      x[static_cast<size_t>(i)] |= bit << j;
      --pos;
    }
  }
}

}  // namespace

StatusOr<std::unique_ptr<HilbertCurve>> HilbertCurve::Create(
    const GridSpec& grid) {
  auto digits = internal::UniformPowerDigits(grid, 2, "hilbert");
  if (!digits.ok()) return digits.status();
  const int bits = *digits;
  if (bits * grid.dims() > 63) {
    return InvalidArgumentError("hilbert: dims * log2(side) must be <= 63");
  }
  return std::unique_ptr<HilbertCurve>(
      new HilbertCurve(grid, bits == 0 ? 1 : bits));
}

HilbertCurve::HilbertCurve(GridSpec grid, int bits)
    : SpaceFillingCurve(std::move(grid)), bits_(bits) {}

uint64_t HilbertCurve::IndexOf(std::span<const Coord> p) const {
  SPECTRAL_DCHECK(grid_.Contains(p));
  std::vector<uint32_t> x(static_cast<size_t>(dims()));
  for (int a = 0; a < dims(); ++a) {
    x[static_cast<size_t>(a)] = static_cast<uint32_t>(p[static_cast<size_t>(a)]);
  }
  AxesToTranspose(x, bits_);
  return TransposeToIndex(x, bits_);
}

void HilbertCurve::PointOf(uint64_t index, std::span<Coord> out) const {
  SPECTRAL_DCHECK_LT(index, static_cast<uint64_t>(NumCells()));
  std::vector<uint32_t> x(static_cast<size_t>(dims()));
  IndexToTranspose(index, bits_, x);
  TransposeToAxes(x, bits_);
  for (int a = 0; a < dims(); ++a) {
    out[static_cast<size_t>(a)] = static_cast<Coord>(x[static_cast<size_t>(a)]);
  }
}

}  // namespace spectral
