#include "sfc/peano.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace spectral {

StatusOr<std::unique_ptr<PeanoCurve>> PeanoCurve::Create(
    const GridSpec& grid) {
  auto digits = internal::PerAxisPowerDigits(grid, 3, "peano");
  if (!digits.ok()) return digits.status();
  int total = 0;
  for (int d : *digits) total += d;
  if (total > 39) {
    return InvalidArgumentError("peano: sum of log3(side) over the axes "
                                "must be <= 39");
  }
  return std::unique_ptr<PeanoCurve>(
      new PeanoCurve(grid, *std::move(digits)));
}

PeanoCurve::PeanoCurve(GridSpec grid, std::vector<int> digits)
    : SpaceFillingCurve(std::move(grid)), digits_(std::move(digits)) {
  digit_offset_.assign(static_cast<size_t>(dims()) + 1, 0);
  for (int a = 0; a < dims(); ++a) {
    digit_offset_[static_cast<size_t>(a) + 1] =
        digit_offset_[static_cast<size_t>(a)] + digits_[static_cast<size_t>(a)];
  }
  // Level-major, axis-minor digit order. Axis a participates only in the
  // last digits_[a] levels, so a grid of sides (27, 9) yields the sequence
  // x0, x1 y0, x2 y1 — the leading x digit alone sweeps three 9x9
  // super-blocks.
  const int max_digits =
      digits_.empty() ? 0 : *std::max_element(digits_.begin(), digits_.end());
  for (int level = 0; level < max_digits; ++level) {
    for (int a = 0; a < dims(); ++a) {
      if (level >= max_digits - digits_[static_cast<size_t>(a)]) {
        pos_axis_.push_back(a);
        pos_level_.push_back(level - (max_digits -
                                      digits_[static_cast<size_t>(a)]));
      }
    }
  }
}

// The curve index has sum(digits_) base-3 digits t_0 t_1 ... (most
// significant first), laid out by pos_axis_/pos_level_. Peano's
// construction: the coordinate digit equals the index digit, complemented
// (t -> 2 - t) iff the sum of all *earlier* index digits belonging to
// *other* axes is odd. Applied to the variable-length sequence, the leading
// solo digits of longer axes see no earlier foreign digits (plain sweep
// over super-blocks) while later blocks are reflected by the parity of the
// sweep digits — a serpentine over blocks that preserves adjacency.

uint64_t PeanoCurve::IndexOf(std::span<const Coord> p) const {
  SPECTRAL_DCHECK(grid_.Contains(p));
  const int n = dims();
  // Coordinate digits, most significant first, flat with digits_[a] per
  // axis at digit_offset_[a] (one allocation; IndexOf is the per-point hot
  // path of OrderByCurve).
  std::vector<int> coord_digits(pos_axis_.size(), 0);
  for (int a = 0; a < n; ++a) {
    const int base = digit_offset_[static_cast<size_t>(a)];
    int64_t c = p[static_cast<size_t>(a)];
    for (int l = digits_[static_cast<size_t>(a)] - 1; l >= 0; --l) {
      coord_digits[static_cast<size_t>(base + l)] = static_cast<int>(c % 3);
      c /= 3;
    }
  }
  uint64_t index = 0;
  std::vector<int> axis_digit_sum(static_cast<size_t>(n), 0);
  int total_digit_sum = 0;
  for (size_t pos = 0; pos < pos_axis_.size(); ++pos) {
    const int axis = pos_axis_[pos];
    const int level = pos_level_[pos];
    const int flag =
        (total_digit_sum - axis_digit_sum[static_cast<size_t>(axis)]) & 1;
    const int coord_digit = coord_digits[static_cast<size_t>(
        digit_offset_[static_cast<size_t>(axis)] + level)];
    const int index_digit = flag ? 2 - coord_digit : coord_digit;
    index = index * 3 + static_cast<uint64_t>(index_digit);
    axis_digit_sum[static_cast<size_t>(axis)] += index_digit;
    total_digit_sum += index_digit;
  }
  return index;
}

void PeanoCurve::PointOf(uint64_t index, std::span<Coord> out) const {
  SPECTRAL_DCHECK_LT(index, static_cast<uint64_t>(NumCells()));
  const int n = dims();
  const size_t total = pos_axis_.size();
  std::vector<int> index_digits(total);
  for (size_t pos = total; pos-- > 0;) {
    index_digits[pos] = static_cast<int>(index % 3);
    index /= 3;
  }
  std::vector<int64_t> coords(static_cast<size_t>(n), 0);
  std::vector<int> axis_digit_sum(static_cast<size_t>(n), 0);
  int total_digit_sum = 0;
  for (size_t pos = 0; pos < total; ++pos) {
    const int axis = pos_axis_[pos];
    const int flag =
        (total_digit_sum - axis_digit_sum[static_cast<size_t>(axis)]) & 1;
    const int index_digit = index_digits[pos];
    const int coord_digit = flag ? 2 - index_digit : index_digit;
    coords[static_cast<size_t>(axis)] =
        coords[static_cast<size_t>(axis)] * 3 + coord_digit;
    axis_digit_sum[static_cast<size_t>(axis)] += index_digit;
    total_digit_sum += index_digit;
  }
  for (int a = 0; a < n; ++a) {
    out[static_cast<size_t>(a)] = static_cast<Coord>(coords[static_cast<size_t>(a)]);
  }
}

}  // namespace spectral
