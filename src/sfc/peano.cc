#include "sfc/peano.h"

#include <vector>

#include "util/check.h"

namespace spectral {

StatusOr<std::unique_ptr<PeanoCurve>> PeanoCurve::Create(
    const GridSpec& grid) {
  auto digits = internal::UniformPowerDigits(grid, 3, "peano");
  if (!digits.ok()) return digits.status();
  if (*digits * grid.dims() > 39) {
    return InvalidArgumentError("peano: dims * log3(side) must be <= 39");
  }
  return std::unique_ptr<PeanoCurve>(
      new PeanoCurve(grid, *digits == 0 ? 1 : *digits));
}

PeanoCurve::PeanoCurve(GridSpec grid, int digits)
    : SpaceFillingCurve(std::move(grid)), digits_(digits) {}

// The curve index has digits_ * dims base-3 digits t_0 t_1 ... (most
// significant first). Position p belongs to axis a = p % dims at refinement
// level p / dims. Peano's construction: the coordinate digit equals the
// index digit, complemented (t -> 2 - t) iff the sum of all *earlier* index
// digits belonging to *other* axes is odd.

uint64_t PeanoCurve::IndexOf(std::span<const Coord> p) const {
  SPECTRAL_DCHECK(grid_.Contains(p));
  const int n = dims();
  // Coordinate digits, most significant first.
  std::vector<int> coord_digits(static_cast<size_t>(n * digits_));
  for (int a = 0; a < n; ++a) {
    int64_t c = p[static_cast<size_t>(a)];
    for (int l = digits_ - 1; l >= 0; --l) {
      coord_digits[static_cast<size_t>(a * digits_ + l)] = static_cast<int>(c % 3);
      c /= 3;
    }
  }
  uint64_t index = 0;
  std::vector<int> axis_digit_sum(static_cast<size_t>(n), 0);
  int total_digit_sum = 0;
  for (int pos = 0; pos < n * digits_; ++pos) {
    const int axis = pos % n;
    const int level = pos / n;
    const int flag =
        (total_digit_sum - axis_digit_sum[static_cast<size_t>(axis)]) & 1;
    const int coord_digit =
        coord_digits[static_cast<size_t>(axis * digits_ + level)];
    const int index_digit = flag ? 2 - coord_digit : coord_digit;
    index = index * 3 + static_cast<uint64_t>(index_digit);
    axis_digit_sum[static_cast<size_t>(axis)] += index_digit;
    total_digit_sum += index_digit;
  }
  return index;
}

void PeanoCurve::PointOf(uint64_t index, std::span<Coord> out) const {
  SPECTRAL_DCHECK_LT(index, static_cast<uint64_t>(NumCells()));
  const int n = dims();
  const int total = n * digits_;
  std::vector<int> index_digits(static_cast<size_t>(total));
  for (int pos = total - 1; pos >= 0; --pos) {
    index_digits[static_cast<size_t>(pos)] = static_cast<int>(index % 3);
    index /= 3;
  }
  std::vector<int64_t> coords(static_cast<size_t>(n), 0);
  std::vector<int> axis_digit_sum(static_cast<size_t>(n), 0);
  int total_digit_sum = 0;
  for (int pos = 0; pos < total; ++pos) {
    const int axis = pos % n;
    const int flag =
        (total_digit_sum - axis_digit_sum[static_cast<size_t>(axis)]) & 1;
    const int index_digit = index_digits[static_cast<size_t>(pos)];
    const int coord_digit = flag ? 2 - index_digit : index_digit;
    coords[static_cast<size_t>(axis)] =
        coords[static_cast<size_t>(axis)] * 3 + coord_digit;
    axis_digit_sum[static_cast<size_t>(axis)] += index_digit;
    total_digit_sum += index_digit;
  }
  for (int a = 0; a < n; ++a) {
    out[static_cast<size_t>(a)] = static_cast<Coord>(coords[static_cast<size_t>(a)]);
  }
}

}  // namespace spectral
