// Gray-code curve (Faloutsos): position i visits the cell whose interleaved
// coordinate bits equal the binary reflected Gray code of i. Consecutive
// positions differ in exactly one interleaved bit. One of the paper's three
// fractal baselines (Figure 1b).

#ifndef SPECTRAL_LPM_SFC_GRAY_H_
#define SPECTRAL_LPM_SFC_GRAY_H_

#include <memory>

#include "sfc/curve.h"

namespace spectral {

/// Gray-code ordering over a hyper-cube grid with power-of-two side.
class GrayCurve : public SpaceFillingCurve {
 public:
  static StatusOr<std::unique_ptr<GrayCurve>> Create(const GridSpec& grid);

  std::string_view name() const override { return "gray"; }
  uint64_t IndexOf(std::span<const Coord> p) const override;
  void PointOf(uint64_t index, std::span<Coord> out) const override;

 private:
  GrayCurve(GridSpec grid, int bits);

  int bits_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_GRAY_H_
