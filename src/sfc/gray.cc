#include "sfc/gray.h"

#include <vector>

#include "util/bit_ops.h"
#include "util/check.h"

namespace spectral {

StatusOr<std::unique_ptr<GrayCurve>> GrayCurve::Create(const GridSpec& grid) {
  auto digits = internal::UniformPowerDigits(grid, 2, "gray");
  if (!digits.ok()) return digits.status();
  const int bits = *digits;
  if (bits * grid.dims() > 63) {
    return InvalidArgumentError("gray: dims * log2(side) must be <= 63");
  }
  return std::unique_ptr<GrayCurve>(new GrayCurve(grid, bits == 0 ? 1 : bits));
}

GrayCurve::GrayCurve(GridSpec grid, int bits)
    : SpaceFillingCurve(std::move(grid)), bits_(bits) {}

uint64_t GrayCurve::IndexOf(std::span<const Coord> p) const {
  SPECTRAL_DCHECK(grid_.Contains(p));
  std::vector<uint32_t> coords(static_cast<size_t>(dims()));
  for (int a = 0; a < dims(); ++a) {
    coords[static_cast<size_t>(dims() - 1 - a)] =
        static_cast<uint32_t>(p[static_cast<size_t>(a)]);
  }
  const uint64_t z = InterleaveBits(coords, bits_);
  return GrayDecode(z);
}

void GrayCurve::PointOf(uint64_t index, std::span<Coord> out) const {
  SPECTRAL_DCHECK_LT(index, static_cast<uint64_t>(NumCells()));
  const uint64_t z = GrayEncode(index);
  std::vector<uint32_t> coords(static_cast<size_t>(dims()));
  DeinterleaveBits(z, bits_, coords);
  for (int a = 0; a < dims(); ++a) {
    out[static_cast<size_t>(a)] =
        static_cast<Coord>(coords[static_cast<size_t>(dims() - 1 - a)]);
  }
}

}  // namespace spectral
