#include "sfc/curve.h"

#include <string>

namespace spectral {
namespace internal {

StatusOr<int> UniformPowerDigits(const GridSpec& grid, int base,
                                 std::string_view curve_name) {
  const Coord side = grid.side(0);
  for (int a = 1; a < grid.dims(); ++a) {
    if (grid.side(a) != side) {
      return InvalidArgumentError(std::string(curve_name) +
                                  " requires a uniform (hyper-cube) grid");
    }
  }
  int digits = 0;
  int64_t s = 1;
  while (s < side) {
    s *= base;
    ++digits;
  }
  if (s != side) {
    return InvalidArgumentError(std::string(curve_name) +
                                " requires the side to be a power of " +
                                std::to_string(base));
  }
  // digits == 0 (side 1) is legal: a single cell per axis.
  return digits;
}

StatusOr<std::vector<int>> PerAxisPowerDigits(const GridSpec& grid, int base,
                                              std::string_view curve_name) {
  std::vector<int> digits(static_cast<size_t>(grid.dims()), 0);
  for (int a = 0; a < grid.dims(); ++a) {
    const Coord side = grid.side(a);
    int d = 0;
    int64_t s = 1;
    while (s < side) {
      s *= base;
      ++d;
    }
    if (s != side) {
      return InvalidArgumentError(std::string(curve_name) +
                                  " requires every side to be a power of " +
                                  std::to_string(base));
    }
    digits[static_cast<size_t>(a)] = d;
  }
  return digits;
}

}  // namespace internal
}  // namespace spectral
