#include "sfc/curve.h"

#include <string>

namespace spectral {
namespace internal {

StatusOr<int> UniformPowerDigits(const GridSpec& grid, int base,
                                 std::string_view curve_name) {
  const Coord side = grid.side(0);
  for (int a = 1; a < grid.dims(); ++a) {
    if (grid.side(a) != side) {
      return InvalidArgumentError(std::string(curve_name) +
                                  " requires a uniform (hyper-cube) grid");
    }
  }
  int digits = 0;
  int64_t s = 1;
  while (s < side) {
    s *= base;
    ++digits;
  }
  if (s != side) {
    return InvalidArgumentError(std::string(curve_name) +
                                " requires the side to be a power of " +
                                std::to_string(base));
  }
  // digits == 0 (side 1) is legal: a single cell per axis.
  return digits;
}

}  // namespace internal
}  // namespace spectral
