// n-dimensional Hilbert curve via Skilling's transform ("Programming the
// Hilbert curve", AIP Conf. Proc. 707, 2004). The strongest of the paper's
// fractal baselines (Figure 1c): continuous, with consecutive positions at
// Manhattan distance exactly 1.

#ifndef SPECTRAL_LPM_SFC_HILBERT_H_
#define SPECTRAL_LPM_SFC_HILBERT_H_

#include <memory>

#include "sfc/curve.h"

namespace spectral {

/// Hilbert curve over a hyper-cube grid with power-of-two side. Requires
/// dims * log2(side) <= 63.
class HilbertCurve : public SpaceFillingCurve {
 public:
  static StatusOr<std::unique_ptr<HilbertCurve>> Create(const GridSpec& grid);

  std::string_view name() const override { return "hilbert"; }
  uint64_t IndexOf(std::span<const Coord> p) const override;
  void PointOf(uint64_t index, std::span<Coord> out) const override;

 private:
  HilbertCurve(GridSpec grid, int bits);

  int bits_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_HILBERT_H_
