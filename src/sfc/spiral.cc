#include "sfc/spiral.h"

#include "util/check.h"

namespace spectral {

StatusOr<std::unique_ptr<SpiralCurve>> SpiralCurve::Create(
    const GridSpec& grid) {
  if (grid.dims() != 2) {
    return InvalidArgumentError("spiral requires a 2-d grid");
  }
  return std::unique_ptr<SpiralCurve>(new SpiralCurve(grid));
}

SpiralCurve::SpiralCurve(GridSpec grid) : SpaceFillingCurve(std::move(grid)) {
  const int64_t n = NumCells();
  index_of_cell_.assign(static_cast<size_t>(n), -1);
  cell_of_index_.assign(static_cast<size_t>(n), -1);

  // Walk the spiral: right along the top row, down the right column, left
  // along the bottom, up the left column, then recurse inward. The four
  // bounds shrink independently, so rectangles work unmodified.
  Coord top = 0, bottom = static_cast<Coord>(grid_.side(0) - 1);
  Coord left = 0, right = static_cast<Coord>(grid_.side(1) - 1);
  int64_t next = 0;
  std::vector<Coord> p(2);
  auto emit = [&](Coord row, Coord col) {
    p[0] = row;
    p[1] = col;
    const int64_t cell = grid_.Flatten(p);
    index_of_cell_[static_cast<size_t>(cell)] = next;
    cell_of_index_[static_cast<size_t>(next)] = cell;
    ++next;
  };
  while (top <= bottom && left <= right) {
    for (Coord col = left; col <= right; ++col) emit(top, col);
    for (Coord row = static_cast<Coord>(top + 1); row <= bottom; ++row) {
      emit(row, right);
    }
    if (top < bottom) {
      for (Coord col = static_cast<Coord>(right - 1); col >= left; --col) {
        emit(bottom, col);
      }
    }
    if (left < right) {
      for (Coord row = static_cast<Coord>(bottom - 1); row > top; --row) {
        emit(row, left);
      }
    }
    ++top;
    --bottom;
    ++left;
    --right;
  }
  SPECTRAL_CHECK_EQ(next, n);
}

uint64_t SpiralCurve::IndexOf(std::span<const Coord> p) const {
  SPECTRAL_DCHECK(grid_.Contains(p));
  return static_cast<uint64_t>(
      index_of_cell_[static_cast<size_t>(grid_.Flatten(p))]);
}

void SpiralCurve::PointOf(uint64_t index, std::span<Coord> out) const {
  SPECTRAL_DCHECK_LT(index, static_cast<uint64_t>(NumCells()));
  grid_.Unflatten(cell_of_index_[static_cast<size_t>(index)], out);
}

}  // namespace spectral
