#include "sfc/curve_registry.h"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "sfc/gray.h"
#include "sfc/hilbert.h"
#include "sfc/morton.h"
#include "sfc/peano.h"
#include "sfc/snake.h"
#include "sfc/spiral.h"
#include "sfc/sweep.h"
#include "util/check.h"

namespace spectral {

std::string_view CurveKindName(CurveKind kind) {
  switch (kind) {
    case CurveKind::kSweep:
      return "sweep";
    case CurveKind::kSnake:
      return "snake";
    case CurveKind::kZOrder:
      return "zorder";
    case CurveKind::kGray:
      return "gray";
    case CurveKind::kHilbert:
      return "hilbert";
    case CurveKind::kPeano:
      return "peano";
    case CurveKind::kSpiral:
      return "spiral";
  }
  SPECTRAL_CHECK(false) << "unknown CurveKind";
  return "";
}

StatusOr<CurveKind> CurveKindFromName(std::string_view name) {
  for (CurveKind kind : AllCurveKinds()) {
    if (CurveKindName(kind) == name) return kind;
  }
  return NotFoundError("unknown curve name: " + std::string(name));
}

std::vector<CurveKind> AllCurveKinds() {
  return {CurveKind::kSweep,   CurveKind::kSnake, CurveKind::kZOrder,
          CurveKind::kGray,    CurveKind::kHilbert, CurveKind::kPeano,
          CurveKind::kSpiral};
}

StatusOr<std::unique_ptr<SpaceFillingCurve>> MakeCurve(CurveKind kind,
                                                       const GridSpec& grid) {
  switch (kind) {
    case CurveKind::kSweep:
      return std::unique_ptr<SpaceFillingCurve>(new SweepCurve(grid));
    case CurveKind::kSnake:
      return std::unique_ptr<SpaceFillingCurve>(new SnakeCurve(grid));
    case CurveKind::kZOrder: {
      auto curve = MortonCurve::Create(grid);
      if (!curve.ok()) return curve.status();
      return std::unique_ptr<SpaceFillingCurve>(std::move(*curve));
    }
    case CurveKind::kGray: {
      auto curve = GrayCurve::Create(grid);
      if (!curve.ok()) return curve.status();
      return std::unique_ptr<SpaceFillingCurve>(std::move(*curve));
    }
    case CurveKind::kHilbert: {
      auto curve = HilbertCurve::Create(grid);
      if (!curve.ok()) return curve.status();
      return std::unique_ptr<SpaceFillingCurve>(std::move(*curve));
    }
    case CurveKind::kPeano: {
      auto curve = PeanoCurve::Create(grid);
      if (!curve.ok()) return curve.status();
      return std::unique_ptr<SpaceFillingCurve>(std::move(*curve));
    }
    case CurveKind::kSpiral: {
      auto curve = SpiralCurve::Create(grid);
      if (!curve.ok()) return curve.status();
      return std::unique_ptr<SpaceFillingCurve>(std::move(*curve));
    }
  }
  SPECTRAL_CHECK(false) << "unknown CurveKind";
  return InternalError("unreachable");
}

StatusOr<GridSpec> EnclosingGridFor(CurveKind kind, int dims, Coord extent) {
  SPECTRAL_CHECK_GE(extent, 1);
  SPECTRAL_CHECK_GE(dims, 1);
  const std::vector<Coord> extents(static_cast<size_t>(dims), extent);
  return EnclosingGridForExtents(kind, extents);
}

StatusOr<GridSpec> EnclosingGridForExtents(CurveKind kind,
                                           std::span<const Coord> extents) {
  const int dims = static_cast<int>(extents.size());
  SPECTRAL_CHECK_GE(dims, 1);
  for (const Coord extent : extents) SPECTRAL_CHECK_GE(extent, 1);
  if (kind == CurveKind::kSpiral && dims != 2) {
    return InvalidArgumentError("spiral requires 2-d data (got " +
                                std::to_string(dims) + "-d)");
  }

  // Round up in 64 bits: the power-of-base families can need a side beyond
  // the Coord (int32) range even for representable extents (e.g. rounding
  // 2^30 + 1 up to 2^31), which used to wrap silently.
  auto round_up = [](int64_t extent, int64_t base) {
    int64_t side = 1;
    while (side < extent) side *= base;
    return side;
  };
  std::vector<int64_t> sides(extents.begin(), extents.end());
  switch (kind) {
    case CurveKind::kSweep:
    case CurveKind::kSnake:
    case CurveKind::kSpiral:
      break;  // exact per-axis
    case CurveKind::kZOrder:
    case CurveKind::kGray:
    case CurveKind::kHilbert: {
      // These implementations need a hyper-cube, padded from the largest
      // extent.
      const int64_t side =
          round_up(*std::max_element(sides.begin(), sides.end()), 2);
      sides.assign(static_cast<size_t>(dims), side);
      break;
    }
    case CurveKind::kPeano: {
      // Each axis rounds up independently; the rectangle composes as sweep
      // blocks (see sfc/peano.h).
      for (int64_t& side : sides) side = round_up(side, 3);
      break;
    }
  }
  // The curve index is a uint64 and GridSpec itself only supports int64
  // cell counts; reject a cell count overflowing 63 bits instead of
  // tripping the GridSpec CHECK.
  int64_t cells = 1;
  std::vector<Coord> coord_sides;
  coord_sides.reserve(static_cast<size_t>(dims));
  for (int a = 0; a < dims; ++a) {
    const int64_t side = sides[static_cast<size_t>(a)];
    if (side > std::numeric_limits<Coord>::max()) {
      return InvalidArgumentError(
          std::string(CurveKindName(kind)) + ": enclosing side " +
          std::to_string(side) + " for extent " +
          std::to_string(extents[static_cast<size_t>(a)]) +
          " exceeds the coordinate range");
    }
    if (cells > std::numeric_limits<int64_t>::max() / side) {
      return InvalidArgumentError(
          std::string(CurveKindName(kind)) + ": " + std::to_string(dims) +
          "-d grid of side " + std::to_string(side) +
          " overflows the 64-bit curve index width");
    }
    cells *= side;
    coord_sides.push_back(static_cast<Coord>(side));
  }
  return GridSpec(std::move(coord_sides));
}

}  // namespace spectral
