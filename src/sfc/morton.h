// Z-order (Morton) curve: bit interleaving. This is the curve the database
// literature of the paper's era calls the "Peano" curve (quadrant-recursive
// Z shapes, Figure 1a of the paper); see sfc/peano.h for the true triadic
// Peano curve.

#ifndef SPECTRAL_LPM_SFC_MORTON_H_
#define SPECTRAL_LPM_SFC_MORTON_H_

#include <memory>

#include "sfc/curve.h"

namespace spectral {

/// Z-order over a hyper-cube grid with power-of-two side. Requires
/// dims * log2(side) <= 63.
class MortonCurve : public SpaceFillingCurve {
 public:
  /// Validates the grid shape.
  static StatusOr<std::unique_ptr<MortonCurve>> Create(const GridSpec& grid);

  std::string_view name() const override { return "zorder"; }
  uint64_t IndexOf(std::span<const Coord> p) const override;
  void PointOf(uint64_t index, std::span<Coord> out) const override;

 private:
  MortonCurve(GridSpec grid, int bits);

  int bits_;  // bits per axis
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_MORTON_H_
