#include "sfc/morton.h"

#include <vector>

#include "util/bit_ops.h"
#include "util/check.h"

namespace spectral {

StatusOr<std::unique_ptr<MortonCurve>> MortonCurve::Create(
    const GridSpec& grid) {
  auto digits = internal::UniformPowerDigits(grid, 2, "zorder");
  if (!digits.ok()) return digits.status();
  const int bits = *digits;
  if (bits * grid.dims() > 63) {
    return InvalidArgumentError("zorder: dims * log2(side) must be <= 63");
  }
  return std::unique_ptr<MortonCurve>(
      new MortonCurve(grid, bits == 0 ? 1 : bits));
}

MortonCurve::MortonCurve(GridSpec grid, int bits)
    : SpaceFillingCurve(std::move(grid)), bits_(bits) {}

uint64_t MortonCurve::IndexOf(std::span<const Coord> p) const {
  SPECTRAL_DCHECK(grid_.Contains(p));
  // Axis 0 is the most significant within each bit group, mirroring the
  // sweep convention.
  std::vector<uint32_t> coords(static_cast<size_t>(dims()));
  for (int a = 0; a < dims(); ++a) {
    coords[static_cast<size_t>(dims() - 1 - a)] =
        static_cast<uint32_t>(p[static_cast<size_t>(a)]);
  }
  return InterleaveBits(coords, bits_);
}

void MortonCurve::PointOf(uint64_t index, std::span<Coord> out) const {
  SPECTRAL_DCHECK_LT(index, static_cast<uint64_t>(NumCells()));
  std::vector<uint32_t> coords(static_cast<size_t>(dims()));
  DeinterleaveBits(index, bits_, coords);
  for (int a = 0; a < dims(); ++a) {
    out[static_cast<size_t>(a)] =
        static_cast<Coord>(coords[static_cast<size_t>(dims() - 1 - a)]);
  }
}

}  // namespace spectral
