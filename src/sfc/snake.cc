#include "sfc/snake.h"

#include <vector>

#include "util/check.h"

namespace spectral {

SnakeCurve::SnakeCurve(GridSpec grid) : SpaceFillingCurve(std::move(grid)) {}

// Recursive serpentine: within axis k, the whole suffix ordering is
// traversed forward when the digit c_k is even and backward when it is odd
// (I -> S - 1 - I). The backward traversal of a serpentine sequence is again
// serpentine, so the reflection composes correctly for any radices — this is
// what keeps consecutive positions at Manhattan distance exactly 1.

uint64_t SnakeCurve::IndexOf(std::span<const Coord> p) const {
  SPECTRAL_DCHECK(grid_.Contains(p));
  const int d = dims();
  int64_t index = p[static_cast<size_t>(d - 1)];
  int64_t suffix = grid_.side(d - 1);
  for (int k = d - 2; k >= 0; --k) {
    const int64_t c = p[static_cast<size_t>(k)];
    const int64_t inner = (c % 2 == 0) ? index : suffix - 1 - index;
    index = c * suffix + inner;
    suffix *= grid_.side(k);
  }
  return static_cast<uint64_t>(index);
}

void SnakeCurve::PointOf(uint64_t index, std::span<Coord> out) const {
  SPECTRAL_DCHECK_LT(index, static_cast<uint64_t>(NumCells()));
  SPECTRAL_CHECK_EQ(static_cast<int>(out.size()), dims());
  const int d = dims();
  // Suffix cell counts: suffix[k] = product of sides k+1..d-1.
  std::vector<int64_t> suffix(static_cast<size_t>(d), 1);
  for (int k = d - 2; k >= 0; --k) {
    suffix[static_cast<size_t>(k)] =
        suffix[static_cast<size_t>(k + 1)] * grid_.side(k + 1);
  }
  int64_t rest = static_cast<int64_t>(index);
  for (int k = 0; k < d; ++k) {
    const int64_t c = rest / suffix[static_cast<size_t>(k)];
    rest = rest % suffix[static_cast<size_t>(k)];
    if (c % 2 != 0) rest = suffix[static_cast<size_t>(k)] - 1 - rest;
    out[static_cast<size_t>(k)] = static_cast<Coord>(c);
  }
}

}  // namespace spectral
