// Spiral ("onion") order for 2-d grids: visits cells ring by ring from the
// outside in, walking each ring contiguously. Continuous like Snake, but
// concentric instead of row-oriented — a useful extra non-fractal baseline
// for boundary-effect studies. Rectangular grids are supported: the ring
// walk shrinks each side independently, so no square padding is needed.

#ifndef SPECTRAL_LPM_SFC_SPIRAL_H_
#define SPECTRAL_LPM_SFC_SPIRAL_H_

#include <memory>
#include <vector>

#include "sfc/curve.h"

namespace spectral {

/// Clockwise inward spiral over any 2-d grid (each side >= 1).
class SpiralCurve : public SpaceFillingCurve {
 public:
  /// Fails unless the grid is 2-d (rectangles are fine).
  static StatusOr<std::unique_ptr<SpiralCurve>> Create(const GridSpec& grid);

  std::string_view name() const override { return "spiral"; }
  uint64_t IndexOf(std::span<const Coord> p) const override;
  void PointOf(uint64_t index, std::span<Coord> out) const override;

 private:
  explicit SpiralCurve(GridSpec grid);

  // Small grids are cheap to tabulate; index_of_cell_[Flatten(p)] and its
  // inverse make both directions O(1).
  std::vector<int64_t> index_of_cell_;
  std::vector<int64_t> cell_of_index_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_SPIRAL_H_
