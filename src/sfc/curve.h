// Space-filling curve interface: a bijection between the cells of a finite
// grid and the interval [0, NumCells). These are the fractal (and sweep)
// baselines the paper compares Spectral LPM against.

#ifndef SPECTRAL_LPM_SFC_CURVE_H_
#define SPECTRAL_LPM_SFC_CURVE_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "space/grid.h"
#include "util/status.h"

namespace spectral {

/// Bijective mapping grid cell <-> curve position. Implementations are
/// immutable and thread-compatible.
class SpaceFillingCurve {
 public:
  virtual ~SpaceFillingCurve() = default;
  SpaceFillingCurve(const SpaceFillingCurve&) = delete;
  SpaceFillingCurve& operator=(const SpaceFillingCurve&) = delete;

  /// Short lowercase identifier ("hilbert", "zorder", ...).
  virtual std::string_view name() const = 0;

  const GridSpec& grid() const { return grid_; }
  int dims() const { return grid_.dims(); }
  int64_t NumCells() const { return grid_.NumCells(); }

  /// Curve position of cell `p`; requires grid().Contains(p).
  virtual uint64_t IndexOf(std::span<const Coord> p) const = 0;

  /// Cell at curve position `index`; requires index < NumCells().
  virtual void PointOf(uint64_t index, std::span<Coord> out) const = 0;

 protected:
  explicit SpaceFillingCurve(GridSpec grid) : grid_(std::move(grid)) {}

  GridSpec grid_;
};

namespace internal {

/// Shared validation: all sides equal and a power of `base` (2 or 3).
/// Returns the number of base-`base` digits per axis on success.
StatusOr<int> UniformPowerDigits(const GridSpec& grid, int base,
                                 std::string_view curve_name);

/// Per-axis variant: every side must be a power of `base`, but sides may
/// differ. Returns the digit count of each axis (0 for side 1).
StatusOr<std::vector<int>> PerAxisPowerDigits(const GridSpec& grid, int base,
                                              std::string_view curve_name);

}  // namespace internal

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_CURVE_H_
