// Sweep (row-major) mapping: the paper's simple non-fractal baseline. Axis 0
// varies slowest; axis d-1 is scanned contiguously.

#ifndef SPECTRAL_LPM_SFC_SWEEP_H_
#define SPECTRAL_LPM_SFC_SWEEP_H_

#include <memory>

#include "sfc/curve.h"

namespace spectral {

/// Row-major linearization of any grid.
class SweepCurve : public SpaceFillingCurve {
 public:
  explicit SweepCurve(GridSpec grid);

  std::string_view name() const override { return "sweep"; }
  uint64_t IndexOf(std::span<const Coord> p) const override;
  void PointOf(uint64_t index, std::span<Coord> out) const override;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SFC_SWEEP_H_
