#include "sfc/sweep.h"

#include "util/check.h"

namespace spectral {

SweepCurve::SweepCurve(GridSpec grid) : SpaceFillingCurve(std::move(grid)) {}

uint64_t SweepCurve::IndexOf(std::span<const Coord> p) const {
  SPECTRAL_DCHECK(grid_.Contains(p));
  return static_cast<uint64_t>(grid_.Flatten(p));
}

void SweepCurve::PointOf(uint64_t index, std::span<Coord> out) const {
  SPECTRAL_DCHECK_LT(index, static_cast<uint64_t>(NumCells()));
  grid_.Unflatten(static_cast<int64_t>(index), out);
}

}  // namespace spectral
