// Rank correlation between linear orders: quantifies how similar two
// mappings are (e.g. how far the spectral order is from a sweep) without
// eyeballing grids.

#ifndef SPECTRAL_LPM_STATS_RANK_CORRELATION_H_
#define SPECTRAL_LPM_STATS_RANK_CORRELATION_H_

#include <cstdint>
#include <span>

namespace spectral {

/// Spearman's rho between two rank assignments over the same items (both
/// must be permutations of [0, n)). 1 = identical, -1 = exactly reversed.
/// Returns 0 for n < 2.
double SpearmanRho(std::span<const int64_t> ranks_a,
                   std::span<const int64_t> ranks_b);

/// Kendall's tau-a (pair concordance) between two rank assignments.
/// O(n^2); intended for analysis, not hot paths. Returns 0 for n < 2.
double KendallTau(std::span<const int64_t> ranks_a,
                  std::span<const int64_t> ranks_b);

}  // namespace spectral

#endif  // SPECTRAL_LPM_STATS_RANK_CORRELATION_H_
