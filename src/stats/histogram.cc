#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace spectral {

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi), counts_(static_cast<size_t>(num_bins), 0) {
  SPECTRAL_CHECK_LT(lo, hi);
  SPECTRAL_CHECK_GE(num_bins, 1);
  bin_width_ = (hi - lo) / num_bins;
}

void Histogram::Add(double x) {
  int bin = static_cast<int>(std::floor((x - lo_) / bin_width_));
  bin = std::clamp(bin, 0, num_bins() - 1);
  counts_[static_cast<size_t>(bin)] += 1;
  total_ += 1;
}

int64_t Histogram::bin_count(int bin) const {
  SPECTRAL_CHECK_GE(bin, 0);
  SPECTRAL_CHECK_LT(bin, num_bins());
  return counts_[static_cast<size_t>(bin)];
}

double Histogram::bin_lo(int bin) const { return lo_ + bin * bin_width_; }
double Histogram::bin_hi(int bin) const { return lo_ + (bin + 1) * bin_width_; }

double Histogram::Quantile(double p) const {
  SPECTRAL_CHECK_GE(p, 0.0);
  SPECTRAL_CHECK_LE(p, 1.0);
  if (total_ == 0) return lo_;
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (int b = 0; b < num_bins(); ++b) {
    const double next = cum + static_cast<double>(counts_[static_cast<size_t>(b)]);
    if (next >= target) {
      const double in_bin =
          counts_[static_cast<size_t>(b)] > 0
              ? (target - cum) / static_cast<double>(counts_[static_cast<size_t>(b)])
              : 0.0;
      return bin_lo(b) + in_bin * bin_width_;
    }
    cum = next;
  }
  return hi_;
}

double ExactQuantile(std::vector<double> values, double p) {
  SPECTRAL_CHECK(!values.empty());
  SPECTRAL_CHECK_GE(p, 0.0);
  SPECTRAL_CHECK_LE(p, 1.0);
  const size_t n = values.size();
  size_t rank = static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
  if (rank > 0) rank -= 1;  // nearest-rank, 0-based
  std::nth_element(values.begin(), values.begin() + static_cast<int64_t>(rank),
                   values.end());
  return values[rank];
}

}  // namespace spectral
