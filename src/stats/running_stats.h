// Streaming summary statistics (Welford's algorithm) used by the fairness
// metrics: the paper's Figure 5b/6b report standard deviations over large
// populations of queries, which we accumulate without materializing them.

#ifndef SPECTRAL_LPM_STATS_RUNNING_STATS_H_
#define SPECTRAL_LPM_STATS_RUNNING_STATS_H_

#include <cstdint>

namespace spectral {

/// Accumulates count, mean, variance, min and max of a stream of doubles in
/// O(1) memory. Numerically stable (Welford).
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

  int64_t Count() const { return count_; }
  double Mean() const;
  /// Population variance (divide by n). Zero for fewer than one sample.
  double PopulationVariance() const;
  /// Sample variance (divide by n-1). Zero for fewer than two samples.
  double SampleVariance() const;
  /// Population standard deviation (matches how the paper aggregates
  /// "StDev. Distance" over the full query population).
  double StdDev() const;
  double Min() const;
  double Max() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_STATS_RUNNING_STATS_H_
