#include "stats/rank_correlation.h"

#include "util/check.h"

namespace spectral {

double SpearmanRho(std::span<const int64_t> ranks_a,
                   std::span<const int64_t> ranks_b) {
  SPECTRAL_CHECK_EQ(ranks_a.size(), ranks_b.size());
  const int64_t n = static_cast<int64_t>(ranks_a.size());
  if (n < 2) return 0.0;
  // Distinct integer ranks 0..n-1: rho = 1 - 6 sum d^2 / (n (n^2 - 1)).
  double sum_d2 = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(ranks_a[static_cast<size_t>(i)] -
                                         ranks_b[static_cast<size_t>(i)]);
    sum_d2 += d * d;
  }
  const double dn = static_cast<double>(n);
  return 1.0 - 6.0 * sum_d2 / (dn * (dn * dn - 1.0));
}

double KendallTau(std::span<const int64_t> ranks_a,
                  std::span<const int64_t> ranks_b) {
  SPECTRAL_CHECK_EQ(ranks_a.size(), ranks_b.size());
  const int64_t n = static_cast<int64_t>(ranks_a.size());
  if (n < 2) return 0.0;
  int64_t concordant = 0;
  int64_t discordant = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const int64_t da = ranks_a[static_cast<size_t>(i)] -
                         ranks_a[static_cast<size_t>(j)];
      const int64_t db = ranks_b[static_cast<size_t>(i)] -
                         ranks_b[static_cast<size_t>(j)];
      const int64_t sign = (da > 0 ? 1 : -1) * (db > 0 ? 1 : -1);
      if (sign > 0) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  return static_cast<double>(concordant - discordant) /
         (0.5 * static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace spectral
