// Fixed-width histogram plus exact percentile helpers for metric
// distributions (e.g. the distribution of one-dimensional distances of all
// point pairs at a given Manhattan distance).

#ifndef SPECTRAL_LPM_STATS_HISTOGRAM_H_
#define SPECTRAL_LPM_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace spectral {

/// Uniform-bin histogram over [lo, hi). Values outside the range are clamped
/// to the first/last bin so totals always match the number of Add calls.
class Histogram {
 public:
  /// Creates `num_bins` equal bins covering [lo, hi); requires lo < hi and
  /// num_bins >= 1.
  Histogram(double lo, double hi, int num_bins);

  void Add(double x);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t bin_count(int bin) const;
  int64_t total_count() const { return total_; }
  /// Inclusive lower edge of `bin`.
  double bin_lo(int bin) const;
  /// Exclusive upper edge of `bin`.
  double bin_hi(int bin) const;

  /// Approximate p-quantile (0 <= p <= 1) assuming uniform density within
  /// each bin. Returns lo for an empty histogram.
  double Quantile(double p) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  int64_t total_ = 0;
  std::vector<int64_t> counts_;
};

/// Exact p-quantile of `values` (nearest-rank). Copies and partially sorts.
/// Requires non-empty input and 0 <= p <= 1.
double ExactQuantile(std::vector<double> values, double p);

}  // namespace spectral

#endif  // SPECTRAL_LPM_STATS_HISTOGRAM_H_
