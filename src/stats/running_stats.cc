#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace spectral {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += 1;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) * other.count_ / total);
  mean_ += delta * other.count_ / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStats::Mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::PopulationVariance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::SampleVariance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::StdDev() const { return std::sqrt(PopulationVariance()); }

double RunningStats::Min() const {
  SPECTRAL_CHECK_GT(count_, 0);
  return min_;
}

double RunningStats::Max() const {
  SPECTRAL_CHECK_GT(count_, 0);
  return max_;
}

}  // namespace spectral
