// Assertion macros for invariant and precondition checking.
//
// SPECTRAL_CHECK* macros are always on (release and debug): they guard
// programmer errors that must never ship. SPECTRAL_DCHECK* compile away in
// NDEBUG builds and may be used on hot paths.
//
// All macros support message streaming:
//   SPECTRAL_CHECK(n > 0) << "need a positive size, got " << n;

#ifndef SPECTRAL_LPM_UTIL_CHECK_H_
#define SPECTRAL_LPM_UTIL_CHECK_H_

#include <ostream>
#include <sstream>

namespace spectral {
namespace internal {

// Collects a failure message and aborts the process when destroyed.
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  [[noreturn]] ~CheckFailure();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows the ostream produced by the streaming arm of the CHECK ternary so
// both arms have type void.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace spectral

#define SPECTRAL_CHECK(condition)                             \
  (condition) ? (void)0                                       \
              : ::spectral::internal::Voidify() &             \
                    ::spectral::internal::CheckFailure(       \
                        #condition, __FILE__, __LINE__)       \
                        .stream()

#define SPECTRAL_CHECK_EQ(a, b) SPECTRAL_CHECK((a) == (b))
#define SPECTRAL_CHECK_NE(a, b) SPECTRAL_CHECK((a) != (b))
#define SPECTRAL_CHECK_LT(a, b) SPECTRAL_CHECK((a) < (b))
#define SPECTRAL_CHECK_LE(a, b) SPECTRAL_CHECK((a) <= (b))
#define SPECTRAL_CHECK_GT(a, b) SPECTRAL_CHECK((a) > (b))
#define SPECTRAL_CHECK_GE(a, b) SPECTRAL_CHECK((a) >= (b))

#ifdef NDEBUG
// Short-circuit keeps the condition syntactically alive (no unused-variable
// warnings) without evaluating it.
#define SPECTRAL_DCHECK(condition) SPECTRAL_CHECK(true || (condition))
#else
#define SPECTRAL_DCHECK(condition) SPECTRAL_CHECK(condition)
#endif

#define SPECTRAL_DCHECK_EQ(a, b) SPECTRAL_DCHECK((a) == (b))
#define SPECTRAL_DCHECK_NE(a, b) SPECTRAL_DCHECK((a) != (b))
#define SPECTRAL_DCHECK_LT(a, b) SPECTRAL_DCHECK((a) < (b))
#define SPECTRAL_DCHECK_LE(a, b) SPECTRAL_DCHECK((a) <= (b))
#define SPECTRAL_DCHECK_GT(a, b) SPECTRAL_DCHECK((a) > (b))
#define SPECTRAL_DCHECK_GE(a, b) SPECTRAL_DCHECK((a) >= (b))

#endif  // SPECTRAL_LPM_UTIL_CHECK_H_
