// Wall-clock timer for benchmarks and solver diagnostics.

#ifndef SPECTRAL_LPM_UTIL_TIMER_H_
#define SPECTRAL_LPM_UTIL_TIMER_H_

#include <chrono>

namespace spectral {

/// Measures elapsed wall time in seconds. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_TIMER_H_
