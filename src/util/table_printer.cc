#include "util/table_printer.h"

#include <algorithm>

namespace spectral {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> width(cols, 0);
  auto account = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(width[i] - cell.size(), ' ');
      if (i + 1 < cols) os << "  ";
    }
    os << '\n';
  };

  if (!header_.empty()) {
    print_row(header_);
    size_t total = 0;
    for (size_t i = 0; i < cols; ++i) total += width[i] + (i + 1 < cols ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

}  // namespace spectral
