// Stable content hashing for cache keys. Hasher folds typed fields into a
// 128-bit Fingerprint128 whose value depends only on the mixed content (not
// on process, platform, or pointer identity), so fingerprints are safe to
// persist and to compare across runs. The primary consumer is
// OrderingRequest::Fingerprint(), the key of MappingService's order cache.
//
// This is not a cryptographic hash: two lanes of multiply-xor mixing with a
// splitmix-style finalizer. 128 bits keeps accidental collisions out of
// reach for any realistic cache population.

#ifndef SPECTRAL_LPM_UTIL_HASH_H_
#define SPECTRAL_LPM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace spectral {

/// A 128-bit content hash. Value-comparable and hashable, so it can key an
/// unordered_map directly (see Fingerprint128Hash).
struct Fingerprint128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const Fingerprint128& a, const Fingerprint128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint128& a, const Fingerprint128& b) {
    return !(a == b);
  }

  /// 32 lowercase hex digits (hi then lo), for logs and bench output.
  std::string ToHex() const;
};

/// std::hash-style functor for unordered containers keyed by fingerprint.
struct Fingerprint128Hash {
  size_t operator()(const Fingerprint128& fp) const {
    return static_cast<size_t>(fp.hi ^ fp.lo);
  }
};

/// Accumulates typed fields into a Fingerprint128. Each Mix* call folds the
/// value plus an implicit position counter, so field order matters and
/// adjacent fields cannot alias ("ab" + "c" != "a" + "bc").
class Hasher {
 public:
  Hasher();

  Hasher& MixUint(uint64_t value);
  Hasher& MixInt(int64_t value);
  /// Hashes the IEEE-754 bit pattern; +0.0 and -0.0 therefore differ, as do
  /// distinct NaN payloads. Equal doubles always hash equal.
  Hasher& MixDouble(double value);
  Hasher& MixBool(bool value);
  /// Length-prefixed, so strings never alias with their neighbors.
  Hasher& MixString(std::string_view value);
  Hasher& MixDoubles(std::span<const double> values);

  /// Any enum folds as its underlying integral value.
  template <typename E>
  Hasher& MixEnum(E value) {
    return MixInt(static_cast<int64_t>(value));
  }

  /// The fingerprint of everything mixed so far (does not reset).
  Fingerprint128 Finish() const;

 private:
  uint64_t h1_;
  uint64_t h2_;
  uint64_t count_ = 0;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_HASH_H_
