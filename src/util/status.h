// Minimal Status / StatusOr error-handling vocabulary (absl-like, header
// only). Recoverable errors (bad user input, unsupported configurations)
// travel through Status; programmer errors abort via SPECTRAL_CHECK.

#ifndef SPECTRAL_LPM_UTIL_STATUS_H_
#define SPECTRAL_LPM_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/check.h"

namespace spectral {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kNotFound = 3,
  kInternal = 4,
  kUnimplemented = 5,
  /// A bounded resource (serving queue, cache) refused the work; retrying
  /// later may succeed. Used by OrderingServer admission control.
  kResourceExhausted = 6,
  /// The request's deadline passed before it was served.
  kDeadlineExceeded = 7,
};

/// Human-readable name of a StatusCode (e.g. "INVALID_ARGUMENT").
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

/// Result of an operation that can fail without crashing: a code plus a
/// message. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

/// Either a value of type T or an error Status. `value()` CHECK-fails if the
/// StatusOr holds an error; test `ok()` first on fallible paths.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: lets functions return
  // either a T or a Status directly.
  StatusOr(const T& value) : value_(value) {}          // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SPECTRAL_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SPECTRAL_CHECK(ok()) << "StatusOr::value() on error: " << status_;
    return *value_;
  }
  T& value() & {
    SPECTRAL_CHECK(ok()) << "StatusOr::value() on error: " << status_;
    return *value_;
  }
  T&& value() && {
    SPECTRAL_CHECK(ok()) << "StatusOr::value() on error: " << status_;
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_STATUS_H_
