// Aligned plain-text tables for bench output. The printed series mirror the
// rows of the paper's figures (one row per x-axis value, one column per
// mapping algorithm).

#ifndef SPECTRAL_LPM_UTIL_TABLE_PRINTER_H_
#define SPECTRAL_LPM_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace spectral {

/// Collects a header plus rows of string cells and prints them with columns
/// padded to equal width.
class TablePrinter {
 public:
  TablePrinter() = default;

  /// Sets the column headers; defines the column count.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row; shorter rows are padded with empty cells, longer rows
  /// extend the column count.
  void AddRow(std::vector<std::string> row);

  /// Renders the table. A separator line follows the header.
  void Print(std::ostream& os) const;

  /// All rows (header excluded), e.g. for forwarding into a CsvWriter.
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  const std::vector<std::string>& header() const { return header_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_TABLE_PRINTER_H_
