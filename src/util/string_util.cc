#include "util/string_util.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace spectral {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string FormatDouble(double value, int precision) {
  SPECTRAL_CHECK_GE(precision, 0);
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') last -= 1;
    s.erase(last + 1);
  }
  return s;
}

std::string FormatInt(int64_t value) { return std::to_string(value); }

}  // namespace spectral
