#include "util/csv_writer.h"

#include <filesystem>

namespace spectral {

namespace {

std::string EscapeCsvField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Status CsvWriter::Open(const std::string& path) {
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      return InternalError("cannot create directory " +
                           p.parent_path().string() + ": " + ec.message());
    }
  }
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return InternalError("cannot open " + path + " for writing");
  }
  return OkStatus();
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!is_open()) return;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeCsvField(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::Close() {
  if (out_.is_open()) out_.close();
}

}  // namespace spectral
