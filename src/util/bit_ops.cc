#include "util/bit_ops.h"

#include <bit>

#include "util/check.h"

namespace spectral {

int FloorLog2(uint64_t x) {
  SPECTRAL_CHECK_GT(x, 0u);
  return 63 - std::countl_zero(x);
}

int CeilLog2(uint64_t x) {
  SPECTRAL_CHECK_GT(x, 0u);
  int f = FloorLog2(x);
  return IsPowerOfTwo(x) ? f : f + 1;
}

uint64_t GrayDecode(uint64_t g) {
  uint64_t x = g;
  for (int shift = 1; shift < 64; shift <<= 1) {
    x ^= x >> shift;
  }
  return x;
}

uint64_t InterleaveBits(std::span<const uint32_t> coords, int bits) {
  const int dims = static_cast<int>(coords.size());
  SPECTRAL_CHECK_GT(dims, 0);
  SPECTRAL_CHECK_GT(bits, 0);
  SPECTRAL_CHECK_LE(dims * bits, 64);
  uint64_t code = 0;
  for (int b = 0; b < bits; ++b) {
    for (int k = 0; k < dims; ++k) {
      SPECTRAL_DCHECK_LT(coords[k], uint64_t{1} << bits);
      uint64_t bit = (coords[k] >> b) & 1u;
      code |= bit << (b * dims + k);
    }
  }
  return code;
}

void DeinterleaveBits(uint64_t code, int bits, std::span<uint32_t> coords) {
  const int dims = static_cast<int>(coords.size());
  SPECTRAL_CHECK_GT(dims, 0);
  SPECTRAL_CHECK_GT(bits, 0);
  SPECTRAL_CHECK_LE(dims * bits, 64);
  for (int k = 0; k < dims; ++k) coords[k] = 0;
  for (int b = 0; b < bits; ++b) {
    for (int k = 0; k < dims; ++k) {
      uint32_t bit = static_cast<uint32_t>((code >> (b * dims + k)) & 1u);
      coords[k] |= bit << b;
    }
  }
}

uint64_t RotateLeftBits(uint64_t x, int amount, int width) {
  SPECTRAL_CHECK_GT(width, 0);
  SPECTRAL_CHECK_LE(width, 64);
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  SPECTRAL_DCHECK_EQ(x & ~mask, 0u);
  amount %= width;
  if (amount < 0) amount += width;
  if (amount == 0) return x;
  return ((x << amount) | (x >> (width - amount))) & mask;
}

uint64_t RotateRightBits(uint64_t x, int amount, int width) {
  amount %= width;
  if (amount < 0) amount += width;
  return RotateLeftBits(x, width - amount, width);
}

}  // namespace spectral
