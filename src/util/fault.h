// Deterministic fault injection for robustness tests and the chaos bench.
//
// A FaultInjector is a registry of named *sites* — places in the code that
// ask "should this operation fail now?" via ShouldFail("site.name"). Each
// site is armed with either a failure probability (drawn from a per-site
// SplitMix64 stream seeded from the injector seed and the site name, so the
// k-th hit of a site fails or not independently of thread interleaving) or
// an explicit schedule of failing hit indices. Unarmed sites never fail but
// still count hits.
//
// The whole facility is compile-time gated: unless the build defines
// SPECTRAL_FAULTS (cmake -DSPECTRAL_FAULTS=ON, same opt-in pattern as
// SPECTRAL_SANITIZE), FaultFires() folds to a constant `false` and
// production binaries carry no branch, no lock, and no registry lookup at
// any site. Instrumented call sites therefore always use the free function:
//
//   if (FaultFires(options.faults, "snapshot.write")) {
//     return InternalError("injected snapshot.write fault");
//   }
//
// Sites in this repo: "solver.converge" (SpectralLpm marks the component
// solve unconverged), "snapshot.write" (atomic snapshot save aborts after a
// partial temp-file write), "snapshot.rename" (save aborts between flush
// and rename), "serve.dispatch" (OrderingServer fails a dispatched batch
// with a typed error).

#ifndef SPECTRAL_LPM_UTIL_FAULT_H_
#define SPECTRAL_LPM_UTIL_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace spectral {

/// True when the build was configured with -DSPECTRAL_FAULTS=ON. All fault
/// plumbing compiles away when this is false.
#ifdef SPECTRAL_FAULTS
inline constexpr bool kFaultInjectionEnabled = true;
#else
inline constexpr bool kFaultInjectionEnabled = false;
#endif

/// Per-site failure policy. A hit fails when its 0-based index appears in
/// `schedule`, or — independently — when the site's deterministic RNG draw
/// lands under `probability`. Both may be combined; an empty config (the
/// default) never fails.
struct FaultSiteConfig {
  double probability = 0.0;
  std::vector<int64_t> schedule;
};

/// Counters for one site, as returned by FaultInjector::Stats().
struct FaultSiteStats {
  std::string site;
  int64_t hits = 0;
  int64_t failures = 0;
};

/// Thread-safe, seeded fault registry. Cheap enough to consult on hot-ish
/// paths in fault builds; nonexistent in normal builds (see FaultFires).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0x5EED5EED5EED5EEDull);

  /// (Re)arms `site` with the given policy. Resets the site's RNG stream
  /// and counters so arming is a deterministic starting point.
  void Arm(std::string_view site, FaultSiteConfig config);

  /// Arms sites from a comma-separated spec string, e.g.
  ///   "solver.converge:0.05,snapshot.write:#0/2/7,serve.dispatch:1"
  /// where `site:P` arms a probability in [0, 1] and `site:#a/b/c` arms an
  /// explicit schedule of failing hit indices.
  Status ArmFromSpec(std::string_view spec);

  /// Records a hit on `site` and returns true when this hit should fail.
  /// Unarmed sites return false (but count the hit).
  bool ShouldFail(std::string_view site);

  /// Total hits / injected failures recorded for `site` (0 if never hit).
  int64_t hits(std::string_view site) const;
  int64_t failures(std::string_view site) const;

  /// Snapshot of every site's counters, sorted by site name.
  std::vector<FaultSiteStats> Stats() const;

  /// Rewinds every site: counters to zero, RNG streams to their seeds.
  /// Armed configs are kept, so a Reset replays the exact same schedule.
  void Reset();

  uint64_t seed() const { return seed_; }

 private:
  struct Site {
    FaultSiteConfig config;
    uint64_t rng_state = 0;
    int64_t hits = 0;
    int64_t failures = 0;
  };

  /// Initial SplitMix64 state for `site`: the injector seed mixed with an
  /// FNV-1a hash of the site name, so streams are independent per site and
  /// stable across platforms.
  uint64_t SiteSeed(std::string_view site) const;

  Site& SiteLocked(std::string_view site);

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, Site, std::less<>> sites_;
};

/// The one instrumentation entry point. In normal builds this is a
/// compile-time `false` regardless of `injector`; in SPECTRAL_FAULTS builds
/// it consults the injector (a null injector never fails).
inline bool FaultFires(FaultInjector* injector, std::string_view site) {
  if constexpr (!kFaultInjectionEnabled) {
    (void)injector;
    (void)site;
    return false;
  } else {
    return injector != nullptr && injector->ShouldFail(site);
  }
}

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_FAULT_H_
