#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace spectral {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SPECTRAL_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>((*this)());
  }
  // Rejection sampling for an unbiased draw.
  const uint64_t limit = (std::numeric_limits<uint64_t>::max() / range) * range;
  uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  SPECTRAL_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_gaussian_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(theta);
  has_spare_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  SPECTRAL_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  SPECTRAL_CHECK_GE(p, 0.0);
  SPECTRAL_CHECK_LE(p, 1.0);
  return UniformDouble() < p;
}

}  // namespace spectral
