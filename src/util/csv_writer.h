// CSV output for benchmark results. Every bench binary mirrors the table it
// prints to stdout into a .csv so figures can be re-plotted offline.

#ifndef SPECTRAL_LPM_UTIL_CSV_WRITER_H_
#define SPECTRAL_LPM_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace spectral {

/// Writes rows of comma-separated values to a file. Fields containing commas
/// or quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter() = default;
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Opens `path` for writing (truncates), creating parent directories.
  Status Open(const std::string& path);

  /// True if Open succeeded and the stream is healthy.
  bool is_open() const { return out_.is_open() && out_.good(); }

  /// Writes one row. No-op (but safe) when the writer is not open, so bench
  /// code does not need to branch on CSV availability.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes the file.
  void Close();

 private:
  std::ofstream out_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_CSV_WRITER_H_
