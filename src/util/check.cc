#include "util/check.h"

#include <cstdlib>
#include <iostream>

namespace spectral {
namespace internal {

CheckFailure::CheckFailure(const char* condition, const char* file, int line) {
  stream_ << "[CHECK failed] " << file << ":" << line << ": " << condition
          << " ";
}

CheckFailure::~CheckFailure() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace spectral
