#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/check.h"

namespace spectral {

namespace {

// Shared state of one ParallelFor call. Helper tasks may outlive the call
// (a worker can pick one up after the caller drained every chunk), so the
// state is reference-counted.
struct ForLoopState {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  const std::function<void(int64_t)>* fn = nullptr;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> chunks_done{0};
  int64_t num_chunks = 0;
  std::mutex mu;
  std::condition_variable done_cv;

  // Claims and runs chunks until the cursor passes the end. Returns after
  // notifying the waiter when the final chunk completes.
  void Drain() {
    while (true) {
      const int64_t chunk = next_chunk.fetch_add(1);
      if (chunk >= num_chunks) return;
      const int64_t lo = begin + chunk * grain;
      const int64_t hi = std::min(end, lo + grain);
      for (int64_t i = lo; i < hi; ++i) (*fn)(i);
      if (chunks_done.fetch_add(1) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SPECTRAL_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    SPECTRAL_CHECK(!stop_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  SPECTRAL_CHECK_GE(grain, 1);
  const int64_t total = end - begin;
  const int64_t num_chunks = (total + grain - 1) / grain;
  if (num_chunks == 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForLoopState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->fn = &fn;
  state->num_chunks = num_chunks;

  const int64_t helpers = std::min<int64_t>(num_threads(), num_chunks - 1);
  for (int64_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] {
    return state->chunks_done.load() == state->num_chunks;
  });
}

}  // namespace spectral
