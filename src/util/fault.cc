#include "util/fault.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "util/random.h"
#include "util/string_util.h"

namespace spectral {
namespace {

// FNV-1a over the site name; stable across platforms, good enough to give
// each site an independent SplitMix64 stream.
uint64_t Fnv1a(std::string_view text) {
  uint64_t hash = 0xCBF29CE484222325ull;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {}

uint64_t FaultInjector::SiteSeed(std::string_view site) const {
  uint64_t state = seed_ ^ Fnv1a(site);
  // One warm-up step decorrelates sites whose hashes differ in few bits.
  SplitMix64(state);
  return state;
}

FaultInjector::Site& FaultInjector::SiteLocked(std::string_view site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    Site fresh;
    fresh.rng_state = SiteSeed(site);
    it = sites_.emplace(std::string(site), std::move(fresh)).first;
  }
  return it->second;
}

void FaultInjector::Arm(std::string_view site, FaultSiteConfig config) {
  std::sort(config.schedule.begin(), config.schedule.end());
  std::lock_guard<std::mutex> lock(mu_);
  Site& entry = SiteLocked(site);
  entry.config = std::move(config);
  entry.rng_state = SiteSeed(site);
  entry.hits = 0;
  entry.failures = 0;
}

Status FaultInjector::ArmFromSpec(std::string_view spec) {
  for (const std::string& part : StrSplit(spec, ',')) {
    if (part.empty()) continue;
    const size_t colon = part.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == part.size()) {
      return InvalidArgumentError("fault spec entry '" + part +
                                  "' is not site:probability or "
                                  "site:#i/j/k");
    }
    const std::string site = part.substr(0, colon);
    const std::string value = part.substr(colon + 1);
    FaultSiteConfig config;
    if (value[0] == '#') {
      for (const std::string& index : StrSplit(value.substr(1), '/')) {
        errno = 0;
        char* end = nullptr;
        const long long parsed = std::strtoll(index.c_str(), &end, 10);
        if (errno != 0 || end == index.c_str() || *end != '\0' || parsed < 0) {
          return InvalidArgumentError("fault spec schedule index '" + index +
                                      "' in '" + part +
                                      "' is not a non-negative integer");
        }
        config.schedule.push_back(parsed);
      }
    } else {
      errno = 0;
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (errno != 0 || end == value.c_str() || *end != '\0' ||
          parsed < 0.0 || parsed > 1.0) {
        return InvalidArgumentError("fault spec probability '" + value +
                                    "' in '" + part +
                                    "' is not in [0, 1]");
      }
      config.probability = parsed;
    }
    Arm(site, std::move(config));
  }
  return Status();
}

bool FaultInjector::ShouldFail(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& entry = SiteLocked(site);
  const int64_t hit = entry.hits++;
  bool fail = std::binary_search(entry.config.schedule.begin(),
                                 entry.config.schedule.end(), hit);
  if (entry.config.probability > 0.0) {
    // Always consume exactly one draw per hit so the stream position stays
    // aligned with the hit index whatever the schedule decided.
    const uint64_t draw = SplitMix64(entry.rng_state);
    const double uniform =
        static_cast<double>(draw >> 11) * 0x1.0p-53;  // [0, 1)
    if (uniform < entry.config.probability) fail = true;
  }
  if (fail) ++entry.failures;
  return fail;
}

int64_t FaultInjector::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

int64_t FaultInjector::failures(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.failures;
}

std::vector<FaultSiteStats> FaultInjector::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultSiteStats> out;
  out.reserve(sites_.size());
  for (const auto& [site, entry] : sites_) {
    out.push_back({site, entry.hits, entry.failures});
  }
  return out;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [site, entry] : sites_) {
    entry.rng_state = SiteSeed(site);
    entry.hits = 0;
    entry.failures = 0;
  }
}

}  // namespace spectral
