// Fixed-size worker pool shared by the spectral solvers. Two usage shapes:
//
//   * Submit(fn): fire-and-forget task, tracked by WaitIdle().
//   * ParallelFor(begin, end, grain, fn): blocking data-parallel loop. The
//     calling thread always participates in executing chunks, so nesting a
//     ParallelFor inside a Submit-ted task (component solve -> row-partitioned
//     matvec) cannot deadlock: if every worker is busy, the caller simply
//     drains all chunks itself and the loop degrades to serial execution.
//
// Chunks are assigned by an atomic cursor over a fixed partition, so the
// work each index receives — and therefore every floating-point result —
// is independent of which thread runs it.

#ifndef SPECTRAL_LPM_UTIL_THREAD_POOL_H_
#define SPECTRAL_LPM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spectral {

/// A fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; values < 1 are clamped to 1. A pool of
  /// one worker still runs tasks off the calling thread.
  explicit ThreadPool(int num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Blocks until queued tasks finish, then joins the workers.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on a worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

  /// Runs fn(i) for every i in [begin, end), splitting the range into
  /// chunks of at most `grain` indices. Blocks until the whole range is
  /// done. The caller participates, so this is safe to invoke from inside a
  /// pool task. fn must not throw.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int64_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_THREAD_POOL_H_
