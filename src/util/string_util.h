// Small string helpers used by the table/CSV writers and benchmarks.

#ifndef SPECTRAL_LPM_UTIL_STRING_UTIL_H_
#define SPECTRAL_LPM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace spectral {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on the single character `sep`; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Formats a double with `precision` significant decimal digits after the
/// point, trimming trailing zeros ("3.25", "14", "0.002").
std::string FormatDouble(double value, int precision = 6);

/// Formats an integer count ("1024").
std::string FormatInt(int64_t value);

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_STRING_UTIL_H_
