#include "util/hash.h"

#include <bit>

namespace spectral {

namespace {

// splitmix64 finalizer: full-avalanche mixing of one 64-bit word.
uint64_t Avalanche(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Hasher::Hasher()
    : h1_(0x6a09e667f3bcc908ull),  // sqrt(2), sqrt(3) fractional bits
      h2_(0xbb67ae8584caa73bull) {}

Hasher& Hasher::MixUint(uint64_t value) {
  // Each lane folds the value with a distinct rotation of the position
  // counter, so the pair (position, value) decides the contribution.
  const uint64_t tagged = Avalanche(value + 0x9e3779b97f4a7c15ull * count_);
  h1_ = Avalanche(h1_ ^ tagged);
  h2_ = Avalanche(h2_ + std::rotl(tagged, 32));
  ++count_;
  return *this;
}

Hasher& Hasher::MixInt(int64_t value) {
  return MixUint(static_cast<uint64_t>(value));
}

Hasher& Hasher::MixDouble(double value) {
  return MixUint(std::bit_cast<uint64_t>(value));
}

Hasher& Hasher::MixBool(bool value) { return MixUint(value ? 1u : 0u); }

Hasher& Hasher::MixString(std::string_view value) {
  MixUint(value.size());
  uint64_t word = 0;
  int filled = 0;
  for (const char c : value) {
    word = (word << 8) | static_cast<uint8_t>(c);
    if (++filled == 8) {
      MixUint(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) MixUint(word);
  return *this;
}

Hasher& Hasher::MixDoubles(std::span<const double> values) {
  MixUint(values.size());
  for (const double v : values) MixDouble(v);
  return *this;
}

Fingerprint128 Hasher::Finish() const {
  Fingerprint128 fp;
  fp.hi = Avalanche(h1_ ^ Avalanche(count_));
  fp.lo = Avalanche(h2_ + h1_);
  return fp;
}

std::string Fingerprint128::ToHex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<size_t>(15 - i)] = kDigits[(hi >> (4 * i)) & 0xf];
    out[static_cast<size_t>(31 - i)] = kDigits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

}  // namespace spectral
