// Bit-manipulation primitives shared by the space-filling-curve encoders and
// the linear-algebra utilities: power-of-two tests, integer logs, binary
// reflected Gray codes, and d-dimensional bit interleaving (Morton codes).

#ifndef SPECTRAL_LPM_UTIL_BIT_OPS_H_
#define SPECTRAL_LPM_UTIL_BIT_OPS_H_

#include <cstdint>
#include <span>

namespace spectral {

/// True iff `x` is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); requires x > 0.
int FloorLog2(uint64_t x);

/// ceil(log2(x)); requires x > 0. CeilLog2(1) == 0.
int CeilLog2(uint64_t x);

/// Binary reflected Gray code of `x`.
constexpr uint64_t GrayEncode(uint64_t x) { return x ^ (x >> 1); }

/// Inverse of GrayEncode.
uint64_t GrayDecode(uint64_t g);

/// Interleaves the low `bits` bits of each coordinate into a single integer:
/// bit b of coordinate k lands at position b * dims + k, so the result cycles
/// through dimensions from the least-significant bit upward (Z-order / Morton
/// code, most-significant interleave first across dims in the usual sense).
/// Requires dims * bits <= 64 and every coordinate < 2^bits.
uint64_t InterleaveBits(std::span<const uint32_t> coords, int bits);

/// Inverse of InterleaveBits; writes coords.size() coordinates.
void DeinterleaveBits(uint64_t code, int bits, std::span<uint32_t> coords);

/// Rotates the low `width` bits of `x` left by `amount` (mod width). Bits at
/// or above `width` must be zero. Used by the Hilbert transform.
uint64_t RotateLeftBits(uint64_t x, int amount, int width);

/// Rotates the low `width` bits of `x` right by `amount` (mod width).
uint64_t RotateRightBits(uint64_t x, int amount, int width);

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_BIT_OPS_H_
