// Deterministic pseudo-random number generation. All experiments and tests
// seed explicitly so every run of the harness is reproducible bit-for-bit.
//
// Engine: xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.

#ifndef SPECTRAL_LPM_UTIL_RANDOM_H_
#define SPECTRAL_LPM_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace spectral {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and as a tiny standalone generator.
uint64_t SplitMix64(uint64_t& state);

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, but the convenience members below are
/// preferred (they are platform-stable, unlike libstdc++ distributions).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64 bits.
  uint64_t operator()();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal deviate (Box-Muller, cached spare).
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_UTIL_RANDOM_H_
