#include "linalg/packed_basis.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>

#include "util/check.h"

namespace spectral {
namespace {

// Strided twin of block_ops' ApplyPanelFixed when the basis panel lives in
// the packed buffer itself: lanes [b0, b0 + PW) are contiguous per row, so
// one row pointer serves all PW coefficients. Accumulation order per
// coefficient (ascending row) and per element (ascending lane) is exactly
// the unpacked kernel's, so the arithmetic never changes. No __restrict:
// the target column aliases the same buffer (disjoint lanes).
template <int PW>
void PanelProjectPackedFixed(double* data, int64_t ld, int64_t n, int64_t b0,
                             int64_t xc) {
  const double* b = data + b0;
  double* x = data + xc;
  double coeffs[PW] = {};
  for (int64_t r = 0; r < n; ++r) {
    const double xi = x[r * ld];
    const double* br = b + r * ld;
    for (int c = 0; c < PW; ++c) coeffs[c] += br[c] * xi;
  }
  for (int64_t r = 0; r < n; ++r) {
    const double* br = b + r * ld;
    double acc = x[r * ld];
    for (int c = 0; c < PW; ++c) acc -= coeffs[c] * br[c];
    x[r * ld] = acc;
  }
}

void PanelProjectPacked(double* data, int64_t ld, int64_t n, int64_t b0,
                        int64_t pw, int64_t xc) {
  switch (pw) {
    case 1: return PanelProjectPackedFixed<1>(data, ld, n, b0, xc);
    case 2: return PanelProjectPackedFixed<2>(data, ld, n, b0, xc);
    case 3: return PanelProjectPackedFixed<3>(data, ld, n, b0, xc);
    case 4: return PanelProjectPackedFixed<4>(data, ld, n, b0, xc);
    case 5: return PanelProjectPackedFixed<5>(data, ld, n, b0, xc);
    case 6: return PanelProjectPackedFixed<6>(data, ld, n, b0, xc);
    case 7: return PanelProjectPackedFixed<7>(data, ld, n, b0, xc);
    case 8: return PanelProjectPackedFixed<8>(data, ld, n, b0, xc);
    default:
      SPECTRAL_CHECK_LE(pw, kReorthPanelWidth);
  }
}

// Same kernel with an unpacked (Vector) basis panel and a strided target
// column — used to project packed columns against deflation/locked sets
// that live as contiguous Vectors.
template <int PW>
void PanelProjectVectorsFixed(const Vector* basis, size_t p0, double* x,
                              int64_t ld, int64_t n) {
  const double* __restrict b[PW];
  for (int c = 0; c < PW; ++c) {
    b[c] = basis[p0 + static_cast<size_t>(c)].data();
  }
  double coeffs[PW] = {};
  for (int64_t r = 0; r < n; ++r) {
    const double xi = x[r * ld];
    for (int c = 0; c < PW; ++c) coeffs[c] += b[c][r] * xi;
  }
  for (int64_t r = 0; r < n; ++r) {
    double acc = x[r * ld];
    for (int c = 0; c < PW; ++c) acc -= coeffs[c] * b[c][r];
    x[r * ld] = acc;
  }
}

void PanelProjectVectors(std::span<const Vector> basis, size_t p0, size_t pw,
                         double* x, int64_t ld, int64_t n) {
  switch (pw) {
    case 1: return PanelProjectVectorsFixed<1>(basis.data(), p0, x, ld, n);
    case 2: return PanelProjectVectorsFixed<2>(basis.data(), p0, x, ld, n);
    case 3: return PanelProjectVectorsFixed<3>(basis.data(), p0, x, ld, n);
    case 4: return PanelProjectVectorsFixed<4>(basis.data(), p0, x, ld, n);
    case 5: return PanelProjectVectorsFixed<5>(basis.data(), p0, x, ld, n);
    case 6: return PanelProjectVectorsFixed<6>(basis.data(), p0, x, ld, n);
    case 7: return PanelProjectVectorsFixed<7>(basis.data(), p0, x, ld, n);
    case 8: return PanelProjectVectorsFixed<8>(basis.data(), p0, x, ld, n);
    default:
      SPECTRAL_CHECK_LE(pw, static_cast<size_t>(kReorthPanelWidth));
  }
}

// Column dispatch mirroring block_ops' ForEachColumn: one task owns one
// output column end to end, and small blocks skip the pool (same
// kMinParallelWork gate), so results never depend on the pool size.
void ForEachColumn(ThreadPool* pool, int64_t cols, int64_t column_size,
                   const std::function<void(int64_t)>& fn) {
  if (pool != nullptr && pool->num_threads() >= 2 && cols >= 2 &&
      cols * column_size >= kMinParallelWork) {
    pool->ParallelFor(0, cols, 1, fn);
  } else {
    for (int64_t j = 0; j < cols; ++j) fn(j);
  }
}

// Fixed-width H-fill lanes: both dot products of the symmetrized
// projected entry accumulate in ascending-row order, exactly matching the
// scalar (Dot(v_i, av_j) + Dot(v_j, av_i)) / 2.
template <int PW>
void HfillPanelFixed(const double* vd, const double* avd, int64_t ld_v,
                     int64_t ld_av, int64_t n, int64_t i, int64_t j0,
                     double* out) {
  double a[PW] = {};  // <v_i, av_j>
  double b[PW] = {};  // <v_j, av_i>
  for (int64_t r = 0; r < n; ++r) {
    const double vi = vd[r * ld_v + i];
    const double avi = avd[r * ld_av + i];
    const double* vj = vd + r * ld_v + j0;
    const double* avj = avd + r * ld_av + j0;
    for (int c = 0; c < PW; ++c) {
      a[c] += vi * avj[c];
      b[c] += vj[c] * avi;
    }
  }
  for (int c = 0; c < PW; ++c) out[c] = (a[c] + b[c]) / 2.0;
}

void HfillPanel(const double* vd, const double* avd, int64_t ld_v,
                int64_t ld_av, int64_t n, int64_t i, int64_t j0, int64_t pw,
                double* out) {
  switch (pw) {
    case 1: return HfillPanelFixed<1>(vd, avd, ld_v, ld_av, n, i, j0, out);
    case 2: return HfillPanelFixed<2>(vd, avd, ld_v, ld_av, n, i, j0, out);
    case 3: return HfillPanelFixed<3>(vd, avd, ld_v, ld_av, n, i, j0, out);
    case 4: return HfillPanelFixed<4>(vd, avd, ld_v, ld_av, n, i, j0, out);
    case 5: return HfillPanelFixed<5>(vd, avd, ld_v, ld_av, n, i, j0, out);
    case 6: return HfillPanelFixed<6>(vd, avd, ld_v, ld_av, n, i, j0, out);
    case 7: return HfillPanelFixed<7>(vd, avd, ld_v, ld_av, n, i, j0, out);
    case 8: return HfillPanelFixed<8>(vd, avd, ld_v, ld_av, n, i, j0, out);
    default:
      SPECTRAL_CHECK_LE(pw, kReorthPanelWidth);
  }
}

}  // namespace

double DotColumns(const PackedBasis& a, int64_t ca, const PackedBasis& b,
                  int64_t cb) {
  SPECTRAL_DCHECK_EQ(a.rows(), b.rows());
  const double* x = a.data() + ca;
  const double* y = b.data() + cb;
  const int64_t ld_a = a.ld();
  const int64_t ld_b = b.ld();
  double acc = 0.0;
  const int64_t n = a.rows();
  for (int64_t r = 0; r < n; ++r) acc += x[r * ld_a] * y[r * ld_b];
  return acc;
}

void AxpyColumn(double alpha, PackedBasis& v, int64_t src, int64_t dst) {
  const double* x = v.data() + src;
  double* y = v.data() + dst;
  const int64_t ld = v.ld();
  const int64_t n = v.rows();
  for (int64_t r = 0; r < n; ++r) y[r * ld] += alpha * x[r * ld];
}

double NormalizeColumn(PackedBasis& v, int64_t c, double tiny) {
  const double norm = std::sqrt(DotColumns(v, c, v, c));
  if (norm < tiny) return 0.0;
  const double alpha = 1.0 / norm;
  double* x = v.data() + c;
  const int64_t ld = v.ld();
  const int64_t n = v.rows();
  for (int64_t r = 0; r < n; ++r) x[r * ld] *= alpha;
  return norm;
}

void OrthogonalizeVectorAgainstColumns(const PackedBasis& v, int64_t cols,
                                       std::span<double> x) {
  const double* d = v.data();
  const int64_t ld = v.ld();
  const int64_t n = v.rows();
  SPECTRAL_DCHECK_EQ(static_cast<int64_t>(x.size()), n);
  // Two passes of MGS, like vector_ops' OrthogonalizeAgainst.
  for (int pass = 0; pass < 2; ++pass) {
    for (int64_t i = 0; i < cols; ++i) {
      const double* b = d + i;
      double coeff = 0.0;
      for (int64_t r = 0; r < n; ++r) {
        coeff += b[r * ld] * x[static_cast<size_t>(r)];
      }
      for (int64_t r = 0; r < n; ++r) {
        x[static_cast<size_t>(r)] -= coeff * b[r * ld];
      }
    }
  }
}

void OrthogonalizeColumnsAgainstBlock(std::span<const Vector> basis,
                                      PackedBasis& v, int64_t block0,
                                      int64_t block_cols, ThreadPool* pool,
                                      int64_t* panels, int64_t* flops) {
  if (basis.empty() || block_cols == 0) return;
  const int64_t n = v.rows();
  const int64_t ld = v.ld();
  const size_t num_panels =
      (basis.size() + kReorthPanelWidth - 1) / kReorthPanelWidth;
  for (int pass = 0; pass < 2; ++pass) {
    ForEachColumn(pool, block_cols, n, [&](int64_t j) {
      double* x = v.data() + block0 + j;
      for (size_t p0 = 0; p0 < basis.size(); p0 += kReorthPanelWidth) {
        const size_t pw = std::min(static_cast<size_t>(kReorthPanelWidth),
                                   basis.size() - p0);
        PanelProjectVectors(basis, p0, pw, x, ld, n);
      }
    });
  }
  if (panels != nullptr) {
    *panels += 2 * static_cast<int64_t>(num_panels) * block_cols;
  }
  if (flops != nullptr) {
    *flops += 8 * n * static_cast<int64_t>(basis.size()) * block_cols;
  }
}

void OrthogonalizeColumnsAgainstColumns(PackedBasis& v, int64_t basis0,
                                        int64_t basis_cols, int64_t block0,
                                        int64_t block_cols, ThreadPool* pool,
                                        int64_t* panels, int64_t* flops) {
  if (basis_cols == 0 || block_cols == 0) return;
  SPECTRAL_DCHECK(basis0 + basis_cols <= block0 || block0 + block_cols <=
                                                      basis0);
  const int64_t n = v.rows();
  const int64_t ld = v.ld();
  const int64_t num_panels =
      (basis_cols + kReorthPanelWidth - 1) / kReorthPanelWidth;
  for (int pass = 0; pass < 2; ++pass) {
    ForEachColumn(pool, block_cols, n, [&](int64_t j) {
      const int64_t xc = block0 + j;
      for (int64_t p0 = 0; p0 < basis_cols; p0 += kReorthPanelWidth) {
        const int64_t pw = std::min(kReorthPanelWidth, basis_cols - p0);
        PanelProjectPacked(v.data(), ld, n, basis0 + p0, pw, xc);
      }
    });
  }
  if (panels != nullptr) *panels += 2 * num_panels * block_cols;
  if (flops != nullptr) *flops += 8 * n * basis_cols * block_cols;
}

int64_t OrthonormalizeColumns(PackedBasis& v, int64_t b0, int64_t count,
                              double drop_tol, ThreadPool* pool,
                              int64_t* panels, int64_t* flops) {
  const int64_t n = v.rows();
  int64_t kept = 0;  // columns [b0, b0 + kept) are orthonormal survivors
  int64_t next = 0;  // first incoming column not yet consumed
  while (next < count) {
    const int64_t pw = std::min(kReorthPanelWidth, count - next);
    // Compact the incoming panel down to [kept, kept + pw) so the blocked
    // projection sees a contiguous lane group (CopyColumn self-guarded).
    if (kept != next) {
      for (int64_t c = 0; c < pw; ++c) {
        v.CopyColumn(b0 + next + c, b0 + kept + c);
      }
    }
    next += pw;
    OrthogonalizeColumnsAgainstColumns(v, b0, kept, b0 + kept, pw, pool,
                                       panels, flops);
    // Small in-panel factorization: two-pass MGS with rank drops, exactly
    // OrthonormalizeBlock's inner loop on strided columns.
    int64_t panel_kept = kept;
    for (int64_t j = kept; j < kept + pw; ++j) {
      for (int pass = 0; pass < 2; ++pass) {
        for (int64_t i = kept; i < panel_kept; ++i) {
          const double coeff = DotColumns(v, b0 + i, v, b0 + j);
          AxpyColumn(-coeff, v, b0 + i, b0 + j);
          if (flops != nullptr) *flops += 4 * n;
        }
      }
      if (flops != nullptr) *flops += 3 * n;
      if (NormalizeColumn(v, b0 + j) <= drop_tol) continue;  // dependent
      v.CopyColumn(b0 + j, b0 + panel_kept);
      ++panel_kept;
    }
    kept = panel_kept;
  }
  return kept;
}

void ProjectedRowMultiDot(const PackedBasis& v, const PackedBasis& av,
                          int64_t i, int64_t j0, int64_t count, double* out) {
  SPECTRAL_DCHECK_EQ(v.rows(), av.rows());
  const int64_t n = v.rows();
  for (int64_t p0 = 0; p0 < count; p0 += kReorthPanelWidth) {
    const int64_t pw = std::min(kReorthPanelWidth, count - p0);
    HfillPanel(v.data(), av.data(), v.ld(), av.ld(), n, i, j0 + p0, pw,
               out + p0);
  }
}

}  // namespace spectral
