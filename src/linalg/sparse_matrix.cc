#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace spectral {

SparseMatrix SparseMatrix::FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets) {
  SPECTRAL_CHECK_GE(rows, 0);
  SPECTRAL_CHECK_GE(cols, 0);
  for (const Triplet& t : triplets) {
    SPECTRAL_CHECK_GE(t.row, 0);
    SPECTRAL_CHECK_LT(t.row, rows);
    SPECTRAL_CHECK_GE(t.col, 0);
    SPECTRAL_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  size_t i = 0;
  while (i < triplets.size()) {
    const int64_t r = triplets[i].row;
    const int64_t c = triplets[i].col;
    double sum = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      sum += triplets[i].value;
      ++i;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(sum);
    m.row_ptr_[static_cast<size_t>(r) + 1] += 1;
  }
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

void SparseMatrix::MatVec(std::span<const double> x,
                          std::span<double> y) const {
  MatVecRows(0, rows_, x, y);
}

void SparseMatrix::MatVecRows(int64_t first, int64_t last,
                              std::span<const double> x,
                              std::span<double> y) const {
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(x.size()), cols_);
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(y.size()), rows_);
  SPECTRAL_CHECK_GE(first, 0);
  SPECTRAL_CHECK_LE(first, last);
  SPECTRAL_CHECK_LE(last, rows_);
  for (int64_t i = first; i < last; ++i) {
    double acc = 0.0;
    for (int64_t k = row_begin(i); k < row_end(i); ++k) {
      acc += values_[static_cast<size_t>(k)] *
             x[static_cast<size_t>(col_idx_[static_cast<size_t>(k)])];
    }
    y[static_cast<size_t>(i)] = acc;
  }
}

namespace {

// Fixed-width row kernel behind MatVecRowsBlock: the W accumulators live in
// registers (no y round trip per nonzero, no aliasing with x), and each
// lane still sums its row's nonzeros in ascending-k order — exactly
// MatVecRows' order — so the result stays bit-identical to per-column
// MatVec while the independent lanes vectorize.
template <int W>
void MatVecRowsBlockFixed(const int64_t* __restrict row_ptr,
                          const int64_t* __restrict col_idx,
                          const double* __restrict values, int64_t first,
                          int64_t last, const double* __restrict x,
                          double* __restrict y) {
  for (int64_t i = first; i < last; ++i) {
    double acc[W] = {};
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const double v = values[k];
      const double* xr = x + col_idx[k] * W;
      for (int c = 0; c < W; ++c) acc[c] += v * xr[c];
    }
    double* yr = y + i * W;
    for (int c = 0; c < W; ++c) yr[c] = acc[c];
  }
}

// Strided variant of MatVecRowsBlockFixed: identical per-lane arithmetic
// (ascending-k accumulation in W register lanes), only the addressing
// changes from a dense width-W block to panels with leading dimensions
// x_ld / y_ld. No __restrict on x/y: callers may pass panels of the same
// backing buffer (always disjoint column ranges).
template <int W>
void MatVecRowsPanelFixed(const int64_t* __restrict row_ptr,
                          const int64_t* __restrict col_idx,
                          const double* __restrict values, int64_t first,
                          int64_t last, const double* x, int64_t x_ld,
                          double* y, int64_t y_ld) {
  for (int64_t i = first; i < last; ++i) {
    double acc[W] = {};
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const double v = values[k];
      const double* xr = x + col_idx[k] * x_ld;
      for (int c = 0; c < W; ++c) acc[c] += v * xr[c];
    }
    double* yr = y + i * y_ld;
    for (int c = 0; c < W; ++c) yr[c] = acc[c];
  }
}

}  // namespace

void SparseMatrix::MatVecRowsPanel(int64_t first, int64_t last, int64_t width,
                                   const double* x, int64_t x_ld, double* y,
                                   int64_t y_ld) const {
  SPECTRAL_CHECK_GE(width, 1);
  SPECTRAL_CHECK_GE(x_ld, width);
  SPECTRAL_CHECK_GE(y_ld, width);
  SPECTRAL_CHECK_GE(first, 0);
  SPECTRAL_CHECK_LE(first, last);
  SPECTRAL_CHECK_LE(last, rows_);
  const int64_t* rp = row_ptr_.data();
  const int64_t* ci = col_idx_.data();
  const double* vv = values_.data();
  switch (width) {
    case 1:
      return MatVecRowsPanelFixed<1>(rp, ci, vv, first, last, x, x_ld, y,
                                     y_ld);
    case 2:
      return MatVecRowsPanelFixed<2>(rp, ci, vv, first, last, x, x_ld, y,
                                     y_ld);
    case 3:
      return MatVecRowsPanelFixed<3>(rp, ci, vv, first, last, x, x_ld, y,
                                     y_ld);
    case 4:
      return MatVecRowsPanelFixed<4>(rp, ci, vv, first, last, x, x_ld, y,
                                     y_ld);
    case 5:
      return MatVecRowsPanelFixed<5>(rp, ci, vv, first, last, x, x_ld, y,
                                     y_ld);
    case 6:
      return MatVecRowsPanelFixed<6>(rp, ci, vv, first, last, x, x_ld, y,
                                     y_ld);
    case 7:
      return MatVecRowsPanelFixed<7>(rp, ci, vv, first, last, x, x_ld, y,
                                     y_ld);
    case 8:
      return MatVecRowsPanelFixed<8>(rp, ci, vv, first, last, x, x_ld, y,
                                     y_ld);
    default:
      break;
  }
  // Wide fallback: same per-lane k-order.
  for (int64_t i = first; i < last; ++i) {
    double* yr = y + i * y_ld;
    for (int64_t c = 0; c < width; ++c) yr[c] = 0.0;
    for (int64_t k = row_begin(i); k < row_end(i); ++k) {
      const double v = values_[static_cast<size_t>(k)];
      const double* xr = x + col_idx_[static_cast<size_t>(k)] * x_ld;
      for (int64_t c = 0; c < width; ++c) yr[c] += v * xr[c];
    }
  }
}

void SparseMatrix::MatVecRowsBlock(int64_t first, int64_t last, int64_t width,
                                   std::span<const double> x,
                                   std::span<double> y) const {
  SPECTRAL_CHECK_GE(width, 1);
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(x.size()), cols_ * width);
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(y.size()), rows_ * width);
  SPECTRAL_CHECK_GE(first, 0);
  SPECTRAL_CHECK_LE(first, last);
  SPECTRAL_CHECK_LE(last, rows_);
  const int64_t* rp = row_ptr_.data();
  const int64_t* ci = col_idx_.data();
  const double* vv = values_.data();
  switch (width) {
    case 1:
      return MatVecRowsBlockFixed<1>(rp, ci, vv, first, last, x.data(),
                                     y.data());
    case 2:
      return MatVecRowsBlockFixed<2>(rp, ci, vv, first, last, x.data(),
                                     y.data());
    case 3:
      return MatVecRowsBlockFixed<3>(rp, ci, vv, first, last, x.data(),
                                     y.data());
    case 4:
      return MatVecRowsBlockFixed<4>(rp, ci, vv, first, last, x.data(),
                                     y.data());
    case 5:
      return MatVecRowsBlockFixed<5>(rp, ci, vv, first, last, x.data(),
                                     y.data());
    case 6:
      return MatVecRowsBlockFixed<6>(rp, ci, vv, first, last, x.data(),
                                     y.data());
    case 7:
      return MatVecRowsBlockFixed<7>(rp, ci, vv, first, last, x.data(),
                                     y.data());
    case 8:
      return MatVecRowsBlockFixed<8>(rp, ci, vv, first, last, x.data(),
                                     y.data());
    default:
      break;
  }
  // Wide fallback (no hot path uses width > 8): same per-lane k-order.
  for (int64_t i = first; i < last; ++i) {
    double* yr = &y[static_cast<size_t>(i * width)];
    for (int64_t c = 0; c < width; ++c) yr[c] = 0.0;
    for (int64_t k = row_begin(i); k < row_end(i); ++k) {
      const double v = values_[static_cast<size_t>(k)];
      const double* xr =
          &x[static_cast<size_t>(col_idx_[static_cast<size_t>(k)] * width)];
      for (int64_t c = 0; c < width; ++c) yr[c] += v * xr[c];
    }
  }
}

double SparseMatrix::GershgorinBound() const {
  double bound = 0.0;
  for (int64_t i = 0; i < rows_; ++i) {
    double row_sum = 0.0;
    for (int64_t k = row_begin(i); k < row_end(i); ++k) {
      row_sum += std::fabs(values_[static_cast<size_t>(k)]);
    }
    bound = std::max(bound, row_sum);
  }
  return bound;
}

double SparseMatrix::SymmetryError() const {
  SPECTRAL_CHECK_EQ(rows_, cols_);
  // Probe A^T lazily: for each entry (i, j, v) find (j, i) by binary search.
  double err = 0.0;
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = row_begin(i); k < row_end(i); ++k) {
      const int64_t j = col(k);
      // Find entry (j, i).
      const auto begin = col_idx_.begin() + row_begin(j);
      const auto end = col_idx_.begin() + row_end(j);
      const auto it = std::lower_bound(begin, end, i);
      double transposed = 0.0;
      if (it != end && *it == i) {
        transposed = values_[static_cast<size_t>(it - col_idx_.begin())];
      }
      err = std::max(err, std::fabs(value(k) - transposed));
    }
  }
  return err;
}

Vector SparseMatrix::Diagonal() const {
  Vector diag(static_cast<size_t>(std::min(rows_, cols_)), 0.0);
  for (int64_t i = 0; i < static_cast<int64_t>(diag.size()); ++i) {
    for (int64_t k = row_begin(i); k < row_end(i); ++k) {
      if (col(k) == i) diag[static_cast<size_t>(i)] += value(k);
    }
  }
  return diag;
}

}  // namespace spectral
