#include "linalg/block_ops.h"

#include "util/check.h"

namespace spectral {

void OrthogonalizeBlockAgainst(std::span<const Vector> basis,
                               std::span<Vector> block) {
  if (basis.empty() || block.empty()) return;
  // Two passes of modified Gram-Schmidt ("twice is enough", Kahan/Parlett),
  // with the basis vector as the outer loop so it stays cache-resident
  // across the columns.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& b : basis) {
      for (Vector& x : block) {
        SPECTRAL_DCHECK_EQ(b.size(), x.size());
        const double coeff = Dot(b, x);
        Axpy(-coeff, b, x);
      }
    }
  }
}

int64_t OrthonormalizeBlock(VectorBlock& block, double drop_tol) {
  size_t kept = 0;
  for (size_t j = 0; j < block.size(); ++j) {
    Vector& x = block[j];
    // Project out the already-kept columns, twice for stability.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < kept; ++i) {
        const double coeff = Dot(block[i], x);
        Axpy(-coeff, block[i], x);
      }
    }
    if (Normalize(x) <= drop_tol) continue;  // dependent column: drop
    if (kept != j) block[kept] = std::move(x);
    ++kept;
  }
  block.resize(kept);
  return static_cast<int64_t>(kept);
}

}  // namespace spectral
