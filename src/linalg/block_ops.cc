#include "linalg/block_ops.h"

#include <algorithm>
#include <cstddef>

#include "util/check.h"

namespace spectral {
namespace {

// Fixed-width body of ApplyPanel: the compile-time panel width lets the
// coefficient array and the basis pointers live in registers and the inner
// loops fully unroll. Accumulation order per coefficient (ascending i) and
// per element (ascending c) is the same for every PW, so specialization
// never changes the arithmetic.
template <int PW>
void ApplyPanelFixed(const Vector* basis, size_t p0, Vector& x) {
  const size_t n = x.size();
  const double* __restrict b[PW];
  for (int c = 0; c < PW; ++c) {
    SPECTRAL_DCHECK_EQ(basis[p0 + static_cast<size_t>(c)].size(), n);
    b[c] = basis[p0 + static_cast<size_t>(c)].data();
  }
  double coeffs[PW] = {};
  const double* __restrict xr = x.data();
  for (size_t i = 0; i < n; ++i) {
    const double xi = xr[i];
    for (int c = 0; c < PW; ++c) coeffs[c] += b[c][i] * xi;
  }
  double* __restrict xw = x.data();
  for (size_t i = 0; i < n; ++i) {
    double acc = xw[i];
    for (int c = 0; c < PW; ++c) acc -= coeffs[c] * b[c][i];
    xw[i] = acc;
  }
}

// Applies one panel of basis columns [p0, p0 + pw) to `x`: a fused Gram
// pass (all pw coefficients in one stream over x) followed by a fused
// multi-AXPY update (one more stream). Coefficients accumulate in index
// order, so the arithmetic per column is fixed regardless of threading.
void ApplyPanel(std::span<const Vector> basis, size_t p0, size_t pw,
                Vector& x) {
  switch (pw) {
    case 1: return ApplyPanelFixed<1>(basis.data(), p0, x);
    case 2: return ApplyPanelFixed<2>(basis.data(), p0, x);
    case 3: return ApplyPanelFixed<3>(basis.data(), p0, x);
    case 4: return ApplyPanelFixed<4>(basis.data(), p0, x);
    case 5: return ApplyPanelFixed<5>(basis.data(), p0, x);
    case 6: return ApplyPanelFixed<6>(basis.data(), p0, x);
    case 7: return ApplyPanelFixed<7>(basis.data(), p0, x);
    case 8: return ApplyPanelFixed<8>(basis.data(), p0, x);
    default:
      SPECTRAL_CHECK_LE(pw, static_cast<size_t>(kReorthPanelWidth));
  }
}

// Runs fn(j) for every column j in [0, cols), on the pool only when the
// block is big enough to amortize the dispatch. Each column is handled
// entirely by one task, so results never depend on the pool size.
void ForEachColumn(ThreadPool* pool, int64_t cols, int64_t column_size,
                   const std::function<void(int64_t)>& fn) {
  if (pool != nullptr && pool->num_threads() >= 2 && cols >= 2 &&
      cols * column_size >= kMinParallelWork) {
    pool->ParallelFor(0, cols, 1, fn);
  } else {
    for (int64_t j = 0; j < cols; ++j) fn(j);
  }
}

}  // namespace

void OrthogonalizeBlockAgainst(std::span<const Vector> basis,
                               std::span<Vector> block, ThreadPool* pool,
                               int64_t* panels) {
  if (basis.empty() || block.empty()) return;
  const int64_t n = static_cast<int64_t>(block.front().size());
  const size_t num_panels =
      (basis.size() + kReorthPanelWidth - 1) / kReorthPanelWidth;
  // Two passes of blocked classical Gram-Schmidt ("twice is enough",
  // Kahan/Parlett). Panels are applied in order within a column; columns
  // are independent of each other.
  for (int pass = 0; pass < 2; ++pass) {
    ForEachColumn(pool, static_cast<int64_t>(block.size()), n,
                  [&](int64_t j) {
                    Vector& x = block[static_cast<size_t>(j)];
                    for (size_t p0 = 0; p0 < basis.size();
                         p0 += kReorthPanelWidth) {
                      const size_t pw = std::min(
                          static_cast<size_t>(kReorthPanelWidth),
                          basis.size() - p0);
                      ApplyPanel(basis, p0, pw, x);
                    }
                  });
  }
  if (panels != nullptr) {
    *panels += 2 * static_cast<int64_t>(num_panels * block.size());
  }
}

int64_t OrthonormalizeBlock(VectorBlock& block, double drop_tol,
                            ThreadPool* pool, int64_t* panels) {
  size_t kept = 0;  // columns [0, kept) are orthonormal survivors
  size_t next = 0;  // first incoming column not yet consumed
  while (next < block.size()) {
    const size_t pw = std::min(static_cast<size_t>(kReorthPanelWidth),
                               block.size() - next);
    // Compact the incoming panel down to [kept, kept + pw) so the blocked
    // projection sees contiguous spans (self-move guarded).
    if (kept != next) {
      for (size_t c = 0; c < pw; ++c) {
        block[kept + c] = std::move(block[next + c]);
      }
    }
    next += pw;
    std::span<Vector> all(block);
    OrthogonalizeBlockAgainst(all.subspan(0, kept), all.subspan(kept, pw),
                              pool, panels);
    // Small in-panel factorization: two-pass MGS with rank drops. The
    // panel is at most kReorthPanelWidth wide, so this stays serial.
    size_t panel_kept = kept;
    for (size_t j = kept; j < kept + pw; ++j) {
      Vector& x = block[j];
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t i = kept; i < panel_kept; ++i) {
          const double coeff = Dot(block[i], x);
          Axpy(-coeff, block[i], x);
        }
      }
      if (Normalize(x) <= drop_tol) continue;  // dependent column: drop
      if (panel_kept != j) block[panel_kept] = std::move(x);
      ++panel_kept;
    }
    kept = panel_kept;
  }
  block.resize(kept);
  return static_cast<int64_t>(kept);
}

}  // namespace spectral
