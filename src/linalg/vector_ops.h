// Dense vector kernels used throughout the eigensolvers. Vectors are plain
// std::vector<double>; these free functions keep the numerical core free of
// any matrix-library dependency.

#ifndef SPECTRAL_LPM_LINALG_VECTOR_OPS_H_
#define SPECTRAL_LPM_LINALG_VECTOR_OPS_H_

#include <span>
#include <vector>

namespace spectral {

using Vector = std::vector<double>;

/// Inner product <x, y>; requires equal sizes.
double Dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void Scale(double alpha, std::span<double> x);

/// Euclidean norm.
double Norm2(std::span<const double> x);

/// Max-absolute-value norm. Returns 0 for empty input.
double NormInf(std::span<const double> x);

/// Scales x to unit Euclidean norm and returns the original norm. If the
/// norm is below `tiny` the vector is left untouched and 0 is returned.
double Normalize(std::span<double> x, double tiny = 1e-300);

/// Removes from `x` its components along each (assumed unit-norm) vector in
/// `basis` using modified Gram-Schmidt, applied twice for stability.
void OrthogonalizeAgainst(std::span<const Vector> basis, std::span<double> x);

/// Fills `x` with `value`.
void Fill(std::span<double> x, double value);

/// Sum of the entries.
double Sum(std::span<const double> x);

}  // namespace spectral

#endif  // SPECTRAL_LPM_LINALG_VECTOR_OPS_H_
