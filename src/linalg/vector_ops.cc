#include "linalg/vector_ops.h"

#include <cmath>

#include "util/check.h"

namespace spectral {

double Dot(std::span<const double> x, std::span<const double> y) {
  SPECTRAL_DCHECK_EQ(x.size(), y.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  SPECTRAL_DCHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double Norm2(std::span<const double> x) { return std::sqrt(Dot(x, x)); }

double NormInf(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::fabs(v));
  return m;
}

double Normalize(std::span<double> x, double tiny) {
  const double norm = Norm2(x);
  if (norm < tiny) return 0.0;
  Scale(1.0 / norm, x);
  return norm;
}

void OrthogonalizeAgainst(std::span<const Vector> basis, std::span<double> x) {
  // Two passes of modified Gram-Schmidt ("twice is enough", Kahan/Parlett).
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& b : basis) {
      SPECTRAL_DCHECK_EQ(b.size(), x.size());
      const double coeff = Dot(b, x);
      Axpy(-coeff, b, x);
    }
  }
}

void Fill(std::span<double> x, double value) {
  for (double& v : x) v = value;
}

double Sum(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

}  // namespace spectral
