// Packed column-panel storage for block Krylov bases, plus the strided
// kernels that let the whole block Lanczos iteration (growth, BCGS2
// reorthogonalization, Rayleigh-Ritz H-fill, Chebyshev filtering) run
// directly on the packed layout with zero pack/unpack round trips.
//
// Layout: row-major with a fixed leading dimension (`ld`) chosen once at
// Reset() time — element (row r, column c) lives at data[r * ld + c], so
// any group of consecutive columns is a contiguous panel per row. This is
// exactly the layout SparseMatrix::MatVecRowsPanel and the fixed-width
// Gram/multi-AXPY kernels consume, which is what makes the basis storage
// itself the SpMM operand: growing the basis never copies a column.
//
// Numerical contract: every kernel in this header reproduces, bit for
// bit, the arithmetic of the corresponding vector_ops.h / block_ops.h
// kernel on std::vector<Vector> columns — same accumulation order
// (ascending row index per coefficient, ascending panel lane per
// element), same two-pass BCGS2 structure, same drop rules. Parallelism
// is only ever across independent output columns, gated by the shared
// kMinParallelWork threshold, so results are byte-identical for any pool
// size including none.

#ifndef SPECTRAL_LPM_LINALG_PACKED_BASIS_H_
#define SPECTRAL_LPM_LINALG_PACKED_BASIS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/block_ops.h"
#include "linalg/vector_ops.h"
#include "util/thread_pool.h"

namespace spectral {

/// A block of equal-length column vectors stored as one contiguous
/// row-major buffer with a fixed leading dimension. Columns are cheap
/// views (offsets), never owning allocations; the buffer is sized once
/// and reused across solver restarts.
class PackedBasis {
 public:
  PackedBasis() = default;

  /// (Re)allocates storage for `rows` x `capacity` and fixes the leading
  /// dimension at `capacity`. Existing contents are discarded. Idempotent
  /// when the geometry is unchanged (no reallocation, contents kept).
  void Reset(int64_t rows, int64_t capacity) {
    if (rows == rows_ && capacity == ld_) return;
    rows_ = rows;
    ld_ = capacity;
    data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(capacity),
                 0.0);
  }

  int64_t rows() const { return rows_; }
  int64_t capacity() const { return ld_; }
  /// Leading dimension: the row stride in doubles (== capacity()).
  int64_t ld() const { return ld_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Base pointer of column `c` (stride ld() between rows).
  double* col(int64_t c) { return data_.data() + c; }
  const double* col(int64_t c) const { return data_.data() + c; }

  double& at(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(ld_) +
                 static_cast<size_t>(c)];
  }
  double at(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(ld_) +
                 static_cast<size_t>(c)];
  }

  /// Copies column `src` over column `dst` (no-op when src == dst).
  void CopyColumn(int64_t src, int64_t dst) {
    if (src == dst) return;
    double* d = data_.data();
    for (int64_t r = 0; r < rows_; ++r) d[r * ld_ + dst] = d[r * ld_ + src];
  }

  /// Copies a contiguous Vector into column `dst`.
  void CopyColumnIn(const Vector& src, int64_t dst) {
    double* d = data_.data();
    for (int64_t r = 0; r < rows_; ++r) {
      d[r * ld_ + dst] = src[static_cast<size_t>(r)];
    }
  }

  /// Copies column `src` out into a contiguous Vector (resized to rows()).
  void CopyColumnOut(int64_t src, Vector& dst) const {
    dst.resize(static_cast<size_t>(rows_));
    const double* d = data_.data();
    for (int64_t r = 0; r < rows_; ++r) {
      dst[static_cast<size_t>(r)] = d[r * ld_ + src];
    }
  }

 private:
  int64_t rows_ = 0;
  int64_t ld_ = 0;
  std::vector<double> data_;
};

/// <column ca of a, column cb of b>; same accumulation order as Dot().
double DotColumns(const PackedBasis& a, int64_t ca, const PackedBasis& b,
                  int64_t cb);

/// Column dst += alpha * column src (within one basis); same per-element
/// arithmetic as Axpy().
void AxpyColumn(double alpha, PackedBasis& v, int64_t src, int64_t dst);

/// Scales column `c` to unit norm and returns the original norm, with
/// Normalize()'s exact semantics (untouched + 0 below `tiny`).
double NormalizeColumn(PackedBasis& v, int64_t c, double tiny = 1e-300);

/// Two-pass MGS of the contiguous vector `x` against packed columns
/// [0, cols) of `v` — the strided twin of OrthogonalizeAgainst().
void OrthogonalizeVectorAgainstColumns(const PackedBasis& v, int64_t cols,
                                       std::span<double> x);

/// Removes from packed columns [block0, block0 + block_cols) of `v` their
/// components along each (assumed unit-norm) contiguous vector in `basis`.
/// Bit-identical twin of OrthogonalizeBlockAgainst() on unpacked columns;
/// `panels` counts panel-kernel applications with the same convention and
/// `flops` accumulates the deterministic flop estimate.
void OrthogonalizeColumnsAgainstBlock(std::span<const Vector> basis,
                                      PackedBasis& v, int64_t block0,
                                      int64_t block_cols,
                                      ThreadPool* pool = nullptr,
                                      int64_t* panels = nullptr,
                                      int64_t* flops = nullptr);

/// Same, but the basis is packed columns [basis0, basis0 + basis_cols) of
/// `v` itself; the ranges must not overlap.
void OrthogonalizeColumnsAgainstColumns(PackedBasis& v, int64_t basis0,
                                        int64_t basis_cols, int64_t block0,
                                        int64_t block_cols,
                                        ThreadPool* pool = nullptr,
                                        int64_t* panels = nullptr,
                                        int64_t* flops = nullptr);

/// Orthonormalizes packed columns [b0, b0 + count) of `v` in place with
/// OrthonormalizeBlock()'s exact algorithm (panel consumption, two-pass
/// in-panel MGS, drop rule, survivor compaction by column copies).
/// Returns the resulting rank; survivors end up at [b0, b0 + rank).
int64_t OrthonormalizeColumns(PackedBasis& v, int64_t b0, int64_t count,
                              double drop_tol = 1e-10,
                              ThreadPool* pool = nullptr,
                              int64_t* panels = nullptr,
                              int64_t* flops = nullptr);

/// Fused symmetric multi-dot for the Rayleigh-Ritz H-fill: for every j in
/// [j0, j0 + count) computes
///   out[j - j0] = (<v_i, av_j> + <v_j, av_i>) / 2
/// in ONE pass over the rows per panel of kReorthPanelWidth columns —
/// instead of 2 * count scalar Dot passes. Per output the accumulation is
/// ascending-row, so the result is bit-identical to the scalar Dot pair.
void ProjectedRowMultiDot(const PackedBasis& v, const PackedBasis& av,
                          int64_t i, int64_t j0, int64_t count, double* out);

}  // namespace spectral

#endif  // SPECTRAL_LPM_LINALG_PACKED_BASIS_H_
