// Compressed sparse row (CSR) matrix. This is the workhorse representation
// for graph Laplacians: the Lanczos eigensolver only needs y = A x.

#ifndef SPECTRAL_LPM_LINALG_SPARSE_MATRIX_H_
#define SPECTRAL_LPM_LINALG_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector_ops.h"

namespace spectral {

/// One nonzero entry for matrix assembly.
struct Triplet {
  int64_t row = 0;
  int64_t col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix. Build with FromTriplets (duplicates are summed).
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Assembles a rows x cols CSR matrix from unordered triplets. Duplicate
  /// (row, col) entries are summed; entries that sum to exactly zero are
  /// kept (harmless and keeps assembly deterministic).
  static SparseMatrix FromTriplets(int64_t rows, int64_t cols,
                                   std::vector<Triplet> triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// First index into col()/value() for row i.
  int64_t row_begin(int64_t i) const {
    return row_ptr_[static_cast<size_t>(i)];
  }
  /// One past the last index for row i.
  int64_t row_end(int64_t i) const {
    return row_ptr_[static_cast<size_t>(i) + 1];
  }
  int64_t col(int64_t k) const { return col_idx_[static_cast<size_t>(k)]; }
  double value(int64_t k) const { return values_[static_cast<size_t>(k)]; }

  /// y = A x.
  void MatVec(std::span<const double> x, std::span<double> y) const;

  /// Computes y[i] = (A x)[i] for rows i in [first, last) only; the rest of
  /// y is untouched. Each y[i] is accumulated exactly as in MatVec, so a
  /// row partition of [0, rows) reproduces MatVec bit for bit — this is the
  /// building block of the parallel operator in eigen/operator.h.
  void MatVecRows(int64_t first, int64_t last, std::span<const double> x,
                  std::span<double> y) const;

  /// Multi-vector matvec (SpMM) on packed row-major blocks: `x` and `y`
  /// hold `width` column values per row (x[j * width + c] is column c of
  /// row j). Computes y[i * width + c] = (A x_c)[i] for rows i in
  /// [first, last) in ONE pass over the matrix — each row's nonzeros are
  /// loaded once and applied to all `width` columns, which is what makes
  /// block-Krylov matvecs memory-bound on the block, not the matrix. Per
  /// (row, column) the accumulation order over the row's nonzeros is
  /// exactly MatVec's, so the result is bit-identical to `width`
  /// independent MatVec calls, and a row partition of [0, rows)
  /// reproduces the serial result bit for bit (the parallel block
  /// operator in eigen/operator.h builds on this).
  void MatVecRowsBlock(int64_t first, int64_t last, int64_t width,
                       std::span<const double> x, std::span<double> y) const;

  /// Strided SpMM: like MatVecRowsBlock, but `x` and `y` are raw panels
  /// with arbitrary leading dimensions (x[j * x_ld + c] is column c of row
  /// j, c < width <= x_ld), so a panel of a larger packed basis
  /// (linalg/packed_basis.h) is consumed in place — no pack/unpack copy.
  /// Per (row, column) the accumulation order is exactly MatVec's, so the
  /// result is bit-identical to MatVecRowsBlock on a compacted copy.
  void MatVecRowsPanel(int64_t first, int64_t last, int64_t width,
                       const double* x, int64_t x_ld, double* y,
                       int64_t y_ld) const;

  /// max over i of |A_ii| + sum_j |A_ij| — a Gershgorin bound on the
  /// spectral radius for symmetric matrices.
  double GershgorinBound() const;

  /// max |A - A^T| entry; zero for symmetric matrices.
  double SymmetryError() const;

  /// Diagonal entries as a vector (zeros where absent).
  Vector Diagonal() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_ = {0};
  std::vector<int64_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_LINALG_SPARSE_MATRIX_H_
