// Row-major dense matrix. Used for the exact reference eigensolver (Jacobi)
// on small problems and for test cross-validation of the sparse kernels; the
// production path is CSR + Lanczos.

#ifndef SPECTRAL_LPM_LINALG_DENSE_MATRIX_H_
#define SPECTRAL_LPM_LINALG_DENSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector_ops.h"
#include "util/check.h"

namespace spectral {

class SparseMatrix;

/// Dense row-major matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  /// rows x cols, zero-initialized.
  DenseMatrix(int64_t rows, int64_t cols);

  /// Identity of the given size.
  static DenseMatrix Identity(int64_t n);
  /// Densifies a sparse matrix.
  static DenseMatrix FromSparse(const SparseMatrix& sparse);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  // Element access stays header-inline: the Jacobi reference solver and the
  // block solver's Rayleigh-Ritz step go through At in their innermost
  // rotation loops, and an out-of-line call per element dominates them.
  double& At(int64_t i, int64_t j) {
    SPECTRAL_DCHECK_GE(i, 0);
    SPECTRAL_DCHECK_LT(i, rows_);
    SPECTRAL_DCHECK_GE(j, 0);
    SPECTRAL_DCHECK_LT(j, cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  double At(int64_t i, int64_t j) const {
    SPECTRAL_DCHECK_GE(i, 0);
    SPECTRAL_DCHECK_LT(i, rows_);
    SPECTRAL_DCHECK_GE(j, 0);
    SPECTRAL_DCHECK_LT(j, cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  /// Row `i` as a span.
  std::span<const double> Row(int64_t i) const {
    SPECTRAL_DCHECK_GE(i, 0);
    SPECTRAL_DCHECK_LT(i, rows_);
    return std::span<const double>(data_.data() + i * cols_,
                                   static_cast<size_t>(cols_));
  }

  /// y = A x; requires x.size() == cols, y.size() == rows.
  void MatVec(std::span<const double> x, std::span<double> y) const;

  /// max |A_ij - A_ji|; zero for a symmetric matrix.
  double SymmetryError() const;

  /// max |A_ij - B_ij|; requires equal shapes.
  double MaxAbsDiff(const DenseMatrix& other) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_LINALG_DENSE_MATRIX_H_
