#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "linalg/sparse_matrix.h"
#include "util/check.h"

namespace spectral {

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows * cols), 0.0) {
  SPECTRAL_CHECK_GE(rows, 0);
  SPECTRAL_CHECK_GE(cols, 0);
}

DenseMatrix DenseMatrix::Identity(int64_t n) {
  DenseMatrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::FromSparse(const SparseMatrix& sparse) {
  DenseMatrix m(sparse.rows(), sparse.cols());
  for (int64_t i = 0; i < sparse.rows(); ++i) {
    for (int64_t k = sparse.row_begin(i); k < sparse.row_end(i); ++k) {
      m.At(i, sparse.col(k)) += sparse.value(k);
    }
  }
  return m;
}

void DenseMatrix::MatVec(std::span<const double> x,
                         std::span<double> y) const {
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(x.size()), cols_);
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(y.size()), rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    y[static_cast<size_t>(i)] = Dot(Row(i), x);
  }
}

double DenseMatrix::SymmetryError() const {
  SPECTRAL_CHECK_EQ(rows_, cols_);
  double err = 0.0;
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = i + 1; j < cols_; ++j) {
      err = std::max(err, std::fabs(At(i, j) - At(j, i)));
    }
  }
  return err;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  SPECTRAL_CHECK_EQ(rows_, other.rows_);
  SPECTRAL_CHECK_EQ(cols_, other.cols_);
  double err = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    err = std::max(err, std::fabs(data_[i] - other.data_[i]));
  }
  return err;
}

}  // namespace spectral
