// Multi-vector (block) kernels for the block eigensolvers. A block is a
// set of equal-length column vectors; these kernels fuse the per-column
// loops of vector_ops.h so one pass over a basis vector serves every
// column — the dominant cost of Lanczos-type methods is exactly this
// (re)orthogonalization traffic, not the matvecs.
//
// Kernel shape: two-pass block classical Gram-Schmidt (BCGS2, "twice is
// enough") over cache-blocked panels of kReorthPanelWidth basis columns.
// For each panel a column is streamed exactly twice — once to form the
// panel Gram coefficients, once for the fused multi-AXPY update — so the
// basis traffic per column drops from 2 passes *per basis vector* to
// 2 passes *per panel of 8*.
//
// Threading model: parallelism is only ever across independent output
// columns (each column's arithmetic is fixed and fully serial), so the
// result is byte-identical for any pool size including none. The pool is
// a runtime resource, not part of any result: callers thread the single
// shared worker set down from SpectralLpmOptions::pool and never spawn
// nested pools (ThreadPool::ParallelFor is nest-safe — the caller
// participates and degrades to serial when workers are busy). Small
// blocks skip the pool entirely; see kMinParallelWork.
//
// These kernels operate on unpacked std::vector<Vector> blocks, which
// remain the interchange format for warm starts and deflation/locked
// sets. The block eigensolver's *native* basis storage is the packed
// column-panel layout of linalg/packed_basis.h; its strided kernels
// reproduce the ones here bit for bit, so either layout yields the same
// results.

#ifndef SPECTRAL_LPM_LINALG_BLOCK_OPS_H_
#define SPECTRAL_LPM_LINALG_BLOCK_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector_ops.h"
#include "util/thread_pool.h"

namespace spectral {

/// A block of equal-length column vectors.
using VectorBlock = std::vector<Vector>;

/// Basis columns per cache-blocked panel. Eight doubles of Gram
/// coefficients live in registers while eight basis columns stay hot in
/// L1/L2 across the fused Gram + update passes.
inline constexpr int64_t kReorthPanelWidth = 8;

/// Blocks below this total element count run serially: the panel kernels
/// finish faster than the pool's wake-up latency. Shared by every blocked
/// reorthogonalization kernel (here and in linalg/packed_basis.h) so the
/// serial/pooled decision cannot drift between the two layouts.
inline constexpr int64_t kMinParallelWork = int64_t{1} << 14;

/// Removes from every column of `block` its components along each (assumed
/// unit-norm) vector in `basis`. Two passes of panel-blocked classical
/// Gram-Schmidt; columns are processed independently (optionally in
/// parallel on `pool`), so results are byte-identical for any pool size.
/// If `panels` is non-null it is incremented by the number of panel-kernel
/// applications (passes x panels x columns) — the work unit reported in
/// FiedlerResult diagnostics.
void OrthogonalizeBlockAgainst(std::span<const Vector> basis,
                               std::span<Vector> block,
                               ThreadPool* pool = nullptr,
                               int64_t* panels = nullptr);

/// Orthonormalizes `block` in place: incoming columns are consumed in
/// panels of kReorthPanelWidth, each panel is orthogonalized against the
/// kept prefix with the blocked kernel above, then factored by a small
/// in-panel two-pass MGS. Columns whose norm collapses below `drop_tol`
/// are numerically dependent and are removed; the surviving columns keep
/// their relative order. Returns the resulting rank (the new block size).
int64_t OrthonormalizeBlock(VectorBlock& block, double drop_tol = 1e-10,
                            ThreadPool* pool = nullptr,
                            int64_t* panels = nullptr);

}  // namespace spectral

#endif  // SPECTRAL_LPM_LINALG_BLOCK_OPS_H_
