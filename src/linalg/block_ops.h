// Multi-vector (block) kernels for the block eigensolvers. A block is a
// set of equal-length column vectors; these kernels fuse the per-column
// loops of vector_ops.h so one pass over a basis vector serves every
// column — the dominant cost of Lanczos-type methods is exactly this
// (re)orthogonalization traffic, not the matvecs.

#ifndef SPECTRAL_LPM_LINALG_BLOCK_OPS_H_
#define SPECTRAL_LPM_LINALG_BLOCK_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector_ops.h"

namespace spectral {

/// A block of equal-length column vectors.
using VectorBlock = std::vector<Vector>;

/// Removes from every column of `block` its components along each (assumed
/// unit-norm) vector in `basis`. Fused two-pass modified Gram-Schmidt: each
/// basis vector is streamed once per pass and applied to all columns while
/// hot, instead of once per column as repeated OrthogonalizeAgainst calls
/// would.
void OrthogonalizeBlockAgainst(std::span<const Vector> basis,
                               std::span<Vector> block);

/// Orthonormalizes `block` in place by two-pass modified Gram-Schmidt.
/// Columns whose norm collapses below `drop_tol` after projection on the
/// previous columns are numerically dependent and are removed; the
/// surviving columns keep their relative order. Returns the resulting rank
/// (the new block size).
int64_t OrthonormalizeBlock(VectorBlock& block, double drop_tol = 1e-10);

}  // namespace spectral

#endif  // SPECTRAL_LPM_LINALG_BLOCK_OPS_H_
