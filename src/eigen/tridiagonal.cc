#include "eigen/tridiagonal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace spectral {

namespace {

// Hypotenuse without overflow.
double Pythag(double a, double b) {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double r = absb / absa;
    return absa * std::sqrt(1.0 + r * r);
  }
  if (absb == 0.0) return 0.0;
  const double r = absa / absb;
  return absb * std::sqrt(1.0 + r * r);
}

double SignLike(double magnitude, double sign_source) {
  return sign_source >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

}  // namespace

StatusOr<TridiagonalEigenResult> SolveTridiagonal(const Vector& diag,
                                                  const Vector& sub) {
  const int64_t n = static_cast<int64_t>(diag.size());
  if (n == 0) return InvalidArgumentError("empty tridiagonal");
  SPECTRAL_CHECK_EQ(sub.size() + 1, diag.size());

  auto at = [](Vector& v, int64_t i) -> double& {
    return v[static_cast<size_t>(i)];
  };

  Vector d = diag;
  // e[i] couples d[i] and d[i+1]; e[n-1] is a zero sentinel.
  Vector e(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n - 1; ++i) at(e, i) = sub[static_cast<size_t>(i)];

  DenseMatrix z = DenseMatrix::Identity(n);

  // Implicit QL with shifts; adapted (0-indexed) from the classic `tqli`.
  for (int64_t l = 0; l < n; ++l) {
    int iter = 0;
    int64_t m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(at(d, m)) + std::fabs(at(d, m + 1));
        if (std::fabs(at(e, m)) <=
            std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        if (iter++ == 60) {
          return InternalError("tridiagonal QL: too many iterations");
        }
        double g = (at(d, l + 1) - at(d, l)) / (2.0 * at(e, l));
        double r = Pythag(g, 1.0);
        g = at(d, m) - at(d, l) + at(e, l) / (g + SignLike(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int64_t i = m - 1;
        for (; i >= l; --i) {
          double f = s * at(e, i);
          const double b = c * at(e, i);
          r = Pythag(f, g);
          at(e, i + 1) = r;
          if (r == 0.0) {
            at(d, i + 1) -= p;
            at(e, m) = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = at(d, i + 1) - p;
          r = (at(d, i) - g) * s + 2.0 * c * b;
          p = s * r;
          at(d, i + 1) = g + p;
          g = c * r - b;
          for (int64_t k = 0; k < n; ++k) {
            f = z.At(k, i + 1);
            z.At(k, i + 1) = s * z.At(k, i) + c * f;
            z.At(k, i) = c * z.At(k, i) - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        at(d, l) -= p;
        at(e, l) = g;
        at(e, m) = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending.
  std::vector<int64_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](int64_t a, int64_t b) {
    return d[static_cast<size_t>(a)] < d[static_cast<size_t>(b)];
  });

  TridiagonalEigenResult result;
  result.eigenvalues.resize(static_cast<size_t>(n));
  result.eigenvectors = DenseMatrix(n, n);
  for (int64_t k = 0; k < n; ++k) {
    result.eigenvalues[static_cast<size_t>(k)] =
        d[static_cast<size_t>(perm[static_cast<size_t>(k)])];
    for (int64_t i = 0; i < n; ++i) {
      result.eigenvectors.At(i, k) = z.At(i, perm[static_cast<size_t>(k)]);
    }
  }
  return result;
}

}  // namespace spectral
