// Cyclic Jacobi eigensolver for dense symmetric matrices. O(n^3) per sweep;
// intended as the exact reference for small problems (n up to a few hundred)
// and for cross-validating the Lanczos path in tests.

#ifndef SPECTRAL_LPM_EIGEN_JACOBI_H_
#define SPECTRAL_LPM_EIGEN_JACOBI_H_

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace spectral {

/// Full eigendecomposition of a symmetric matrix.
struct DenseEigenResult {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// eigenvectors.At(i, k) is component i of the (unit) eigenvector for
  /// eigenvalues[k]; columns form an orthonormal set.
  DenseMatrix eigenvectors;
  /// Number of Jacobi sweeps used.
  int sweeps = 0;
};

/// Options for JacobiEigenSolve.
struct JacobiOptions {
  int max_sweeps = 100;
  /// Converged when the off-diagonal Frobenius mass drops below
  /// tol * ||A||_F.
  double tol = 1e-13;
};

/// Computes all eigenpairs of the symmetric matrix `a`. Fails if `a` is not
/// square, not symmetric (beyond 1e-10 absolute), or does not converge.
StatusOr<DenseEigenResult> JacobiEigenSolve(const DenseMatrix& a,
                                            const JacobiOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_EIGEN_JACOBI_H_
