// Fiedler-pair driver: computes the smallest non-trivial eigenpairs of a
// graph Laplacian (steps 2-3 of the paper's Spectral LPM pseudo code).
//
// Three engines, cross-validated in tests, selected by FiedlerMethod:
//
//   * kDense — dense Jacobi, the exact O(n^3) reference. Under kAuto it
//     serves every problem with n <= dense_threshold.
//   * kBlockLanczos — the production path (kAuto default above
//     dense_threshold): one restarted block-Krylov pass extracts all
//     num_pairs eigenpairs together (eigen/block_lanczos.h), with
//     adaptive-degree Chebyshev filtering on the shifted operator
//     shift * I - L doing the cheap reorthogonalization-free part of the
//     convergence work. Callers that own a coarsening hierarchy pass a
//     multilevel warm start (eigen/warm_start.h) through the `warm_start`
//     argument, and the solve only polishes — this is what makes the
//     *exact* spectral engine run at near-multilevel speed (the
//     coarsen/prolong/smooth cascade is assembled by core/spectral_lpm and
//     core/multilevel from one shared hierarchy build).
//   * kLanczos — the scalar restarted Lanczos path with sequential
//     deflation: one full solve per pair. Kept as the independent
//     reference implementation (warm-vs-cold property tests pin the block
//     path's orders against it); prefer kBlockLanczos everywhere else.
//
// Degenerate lambda2 (e.g. square grids, where the x- and y-modes tie) is
// handled by canonicalization: within the near-degenerate eigenspace we
// pick the balanced mix of the coordinate-axis projections, which
// reproduces the axis-fair behaviour the paper reports in Figure 5b. The
// canonicalized order is identical across all three engines (and across
// warm and cold starts): orientation conventions are part of the contract.

#ifndef SPECTRAL_LPM_EIGEN_FIEDLER_H_
#define SPECTRAL_LPM_EIGEN_FIEDLER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "eigen/kernel_profile.h"
#include "linalg/block_ops.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace spectral {

class ThreadPool;

/// Engine selection for ComputeFiedler.
enum class FiedlerMethod {
  /// Dense for n <= dense_threshold, block Lanczos otherwise.
  kAuto,
  kDense,
  /// Scalar restarted Lanczos, one deflated solve per pair (the reference
  /// iterative path; ~num_pairs times the matvec/reorthogonalization bill
  /// of kBlockLanczos).
  kLanczos,
  /// Block Lanczos: all pairs in one Krylov pass + Chebyshev filtering.
  kBlockLanczos,
};

/// How to pick a representative when lambda2 is (numerically) degenerate.
enum class DegeneracyPolicy {
  /// Return whatever the solver produced (still a valid optimum).
  kNone,
  /// Mix the projections of the provided axis vectors with equal energy.
  /// This is axis-fair: no coordinate is favored (paper Figure 5b).
  kBalancedMix,
  /// Align with the first axis vector that has a non-trivial projection.
  kAxisAligned,
};

/// Options for ComputeFiedler.
struct FiedlerOptions {
  FiedlerMethod method = FiedlerMethod::kAuto;
  /// Problems up to this size use the dense engine under kAuto. The dense
  /// reference is O(n^3) per Jacobi sweep; beyond ~10^2 vertices the
  /// Krylov paths are orders of magnitude faster (see bench_eigensolver).
  int64_t dense_threshold = 128;
  /// Number of smallest non-trivial eigenpairs to extract (>= 1). More pairs
  /// let the canonicalizer see the full degenerate eigenspace.
  int num_pairs = 3;
  /// Residual tolerance passed to the Krylov solvers.
  double tol = 1e-9;
  /// Krylov basis size for the scalar kLanczos path.
  int max_basis = 120;
  int max_restarts = 100;
  uint64_t seed = 0x5eedf1ed1e5ull;
  /// Iterated block width for kBlockLanczos; 0 = num_pairs + 2 guards.
  int block_size = 0;
  /// Krylov basis columns per restart for kBlockLanczos. Much smaller than
  /// the scalar max_basis: the Chebyshev filter replaces most of the basis
  /// growth, so the O(basis^2 n) reorthogonalization stays cheap (the
  /// sweep behind bench_eigensolver put the knee at ~24 for 10^3..10^4
  /// vertices).
  int block_max_basis = 24;
  /// Max Chebyshev filter degree per restart for kBlockLanczos (0 = off).
  int cheb_degree_max = 300;
  /// Eigenvalues within lambda2 * (1 + rel) + abs are treated as degenerate
  /// with lambda2.
  double degeneracy_rel_tol = 1e-5;
  double degeneracy_abs_tol = 1e-8;
  DegeneracyPolicy degeneracy_policy = DegeneracyPolicy::kBalancedMix;
  /// Optional worker pool (not owned; must outlive the solve). When set,
  /// the block path's kernels all draw from it: Krylov matvecs on
  /// sufficiently large Laplacians are row-partitioned (SparseOperator in
  /// eigen/operator.h), and the block solver's reorthogonalization panels
  /// and Rayleigh-Ritz Gram fill parallelize across columns/rows
  /// (BlockLanczosOptions::pool). Results are bit-identical to the serial
  /// path for any pool size.
  ThreadPool* matvec_pool = nullptr;
};

/// One eigenpair of the Laplacian.
struct LaplacianEigenPair {
  double eigenvalue = 0.0;
  Vector eigenvector;
};

/// Output of ComputeFiedler.
struct FiedlerResult {
  /// Algebraic connectivity lambda2.
  double lambda2 = 0.0;
  /// Canonicalized Fiedler vector (unit norm, sum ~ 0).
  Vector fiedler;
  /// The smallest non-trivial pairs, ascending (pairs[0] is the raw
  /// lambda2 pair before canonicalization).
  std::vector<LaplacianEigenPair> pairs;
  /// Dimension of the numerically degenerate lambda2 eigenspace observed.
  int degenerate_dim = 1;
  /// Total operator applications (Krylov + Chebyshev filter).
  int64_t matvecs = 0;
  /// The Chebyshev filter's (reorthogonalization-free) share of matvecs.
  int64_t cheb_matvecs = 0;
  /// Fused block-operator (SpMM) applications by the block path; zero for
  /// the dense and scalar paths. matvecs / spmm_calls is the per-call
  /// column amortization the fused kernel achieved.
  int64_t spmm_calls = 0;
  /// Reorthogonalization panel-kernel applications by the block path
  /// (see linalg/block_ops.h).
  int64_t reorth_panels = 0;
  /// Restart cycles consumed by the iterative paths (summed over the
  /// sequential solves for kLanczos).
  int64_t restarts = 0;
  /// Per-kernel wall time + deterministic flop estimates from the block
  /// path (zero for the dense and scalar paths); additive across
  /// multilevel/component solves. See eigen/kernel_profile.h.
  KernelProfile profile;
  std::string method_used;
  /// False when the iterative paths exhausted max_restarts before the
  /// Fiedler pair met tolerance. The result then carries the best-effort
  /// pair (still unit-norm, still canonicalized) instead of an error, and
  /// callers decide the policy: core/mapping_service retries and degrades,
  /// everything else at minimum surfaces the bit in its diagnostics.
  bool converged = true;
};

/// Computes the Fiedler pair of `laplacian` (symmetric, rows == cols,
/// row sums ~ 0). Requires a *connected* graph: if a second near-zero
/// eigenvalue shows up, returns FailedPrecondition (split into components
/// first; core/spectral_lpm does this automatically).
///
/// `canonical_axes` are optional direction vectors (e.g. the centered
/// coordinate functions of the point set) used by the degeneracy policy;
/// pass {} to disable canonicalization.
///
/// `warm_start` (optional, kBlockLanczos/kAuto only) seeds the block solve
/// with approximate eigenvectors — typically the multilevel warm start of
/// eigen/warm_start.h. The result must not depend on it: the solve
/// converges to the same tolerance either way, and a garbage warm start
/// only costs iterations (property-tested).
StatusOr<FiedlerResult> ComputeFiedler(
    const SparseMatrix& laplacian, const FiedlerOptions& options = {},
    std::span<const Vector> canonical_axes = {},
    const VectorBlock* warm_start = nullptr);

}  // namespace spectral

#endif  // SPECTRAL_LPM_EIGEN_FIEDLER_H_
