// Fiedler-pair driver: computes the smallest non-trivial eigenpairs of a
// graph Laplacian (steps 2-3 of the paper's Spectral LPM pseudo code).
//
// Two engines are available and cross-validated in tests:
//   * dense Jacobi (exact, for small n),
//   * restarted Lanczos with deflation on shift*I - L (the production path;
//     the paper's repro note calls for a sparse eigensolver).
//
// Degenerate lambda2 (e.g. square grids, where the x- and y-modes tie) is
// handled by canonicalization: within the near-degenerate eigenspace we pick
// the balanced mix of the coordinate-axis projections, which reproduces the
// axis-fair behaviour the paper reports in Figure 5b.

#ifndef SPECTRAL_LPM_EIGEN_FIEDLER_H_
#define SPECTRAL_LPM_EIGEN_FIEDLER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/sparse_matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace spectral {

class ThreadPool;

/// Engine selection for ComputeFiedler.
enum class FiedlerMethod {
  /// Dense for n <= dense_threshold, Lanczos otherwise.
  kAuto,
  kDense,
  kLanczos,
};

/// How to pick a representative when lambda2 is (numerically) degenerate.
enum class DegeneracyPolicy {
  /// Return whatever the solver produced (still a valid optimum).
  kNone,
  /// Mix the projections of the provided axis vectors with equal energy.
  /// This is axis-fair: no coordinate is favored (paper Figure 5b).
  kBalancedMix,
  /// Align with the first axis vector that has a non-trivial projection.
  kAxisAligned,
};

/// Options for ComputeFiedler.
struct FiedlerOptions {
  FiedlerMethod method = FiedlerMethod::kAuto;
  /// Problems up to this size use the dense engine under kAuto. The dense
  /// reference is O(n^3) per Jacobi sweep; beyond ~10^2 vertices the
  /// Lanczos path is orders of magnitude faster (see bench_eigensolver).
  int64_t dense_threshold = 128;
  /// Number of smallest non-trivial eigenpairs to extract (>= 1). More pairs
  /// let the canonicalizer see the full degenerate eigenspace.
  int num_pairs = 3;
  /// Residual tolerance passed to Lanczos.
  double tol = 1e-9;
  int max_basis = 120;
  int max_restarts = 100;
  uint64_t seed = 0x5eedf1ed1e5ull;
  /// Eigenvalues within lambda2 * (1 + rel) + abs are treated as degenerate
  /// with lambda2.
  double degeneracy_rel_tol = 1e-5;
  double degeneracy_abs_tol = 1e-8;
  DegeneracyPolicy degeneracy_policy = DegeneracyPolicy::kBalancedMix;
  /// Optional worker pool (not owned; must outlive the solve). When set,
  /// Lanczos matvecs on sufficiently large Laplacians are row-partitioned
  /// across the pool. Results are bit-identical to the serial path; see
  /// SparseOperator in eigen/operator.h.
  ThreadPool* matvec_pool = nullptr;
};

/// One eigenpair of the Laplacian.
struct LaplacianEigenPair {
  double eigenvalue = 0.0;
  Vector eigenvector;
};

/// Output of ComputeFiedler.
struct FiedlerResult {
  /// Algebraic connectivity lambda2.
  double lambda2 = 0.0;
  /// Canonicalized Fiedler vector (unit norm, sum ~ 0).
  Vector fiedler;
  /// The smallest non-trivial pairs, ascending (pairs[0] is the raw
  /// lambda2 pair before canonicalization).
  std::vector<LaplacianEigenPair> pairs;
  /// Dimension of the numerically degenerate lambda2 eigenspace observed.
  int degenerate_dim = 1;
  int64_t matvecs = 0;
  std::string method_used;
};

/// Computes the Fiedler pair of `laplacian` (symmetric, rows == cols,
/// row sums ~ 0). Requires a *connected* graph: if a second near-zero
/// eigenvalue shows up, returns FailedPrecondition (split into components
/// first; core/spectral_lpm does this automatically).
///
/// `canonical_axes` are optional direction vectors (e.g. the centered
/// coordinate functions of the point set) used by the degeneracy policy;
/// pass {} to disable canonicalization.
StatusOr<FiedlerResult> ComputeFiedler(
    const SparseMatrix& laplacian, const FiedlerOptions& options = {},
    std::span<const Vector> canonical_axes = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_EIGEN_FIEDLER_H_
