#include "eigen/fiedler.h"

#include <algorithm>
#include <cmath>

#include "eigen/block_lanczos.h"
#include "eigen/jacobi.h"
#include "eigen/lanczos.h"
#include "eigen/operator.h"
#include "util/check.h"

namespace spectral {

namespace {

// Mean-centers a copy of `x` and normalizes it; returns empty if the result
// is numerically zero (constant input).
Vector CenteredUnit(const Vector& x) {
  Vector out = x;
  const double mean = Sum(out) / static_cast<double>(out.size());
  for (double& v : out) v -= mean;
  if (Normalize(out) < 1e-12) return {};
  return out;
}

// Deterministic sign convention: flip so the first entry with magnitude
// above tolerance is positive.
void FixSign(Vector& v) {
  for (double x : v) {
    if (std::fabs(x) > 1e-12) {
      if (x < 0) Scale(-1.0, v);
      return;
    }
  }
}

// Picks the canonical representative of the (near-)degenerate eigenspace
// spanned by the orthonormal columns in `space`.
Vector Canonicalize(const std::vector<const Vector*>& space,
                    std::span<const Vector> axes, DegeneracyPolicy policy) {
  SPECTRAL_CHECK(!space.empty());
  const size_t n = space[0]->size();
  if (policy == DegeneracyPolicy::kNone || axes.empty() ||
      space.size() == 1) {
    Vector v = *space[0];
    FixSign(v);
    return v;
  }

  // Coefficients of each centered axis function projected into the space.
  std::vector<Vector> coeffs;  // one m-vector per usable axis
  for (const Vector& raw_axis : axes) {
    Vector axis = CenteredUnit(raw_axis);
    if (axis.empty()) continue;
    Vector c(space.size(), 0.0);
    double norm2 = 0.0;
    for (size_t k = 0; k < space.size(); ++k) {
      c[k] = Dot(*space[k], axis);
      norm2 += c[k] * c[k];
    }
    if (norm2 < 1e-16) continue;
    const double inv = 1.0 / std::sqrt(norm2);
    for (double& x : c) x *= inv;  // unit energy per axis: fair mix
    coeffs.push_back(std::move(c));
    if (policy == DegeneracyPolicy::kAxisAligned) break;
  }
  if (coeffs.empty()) {
    Vector v = *space[0];
    FixSign(v);
    return v;
  }

  Vector mix(space.size(), 0.0);
  for (const Vector& c : coeffs) Axpy(1.0, c, std::span<double>(mix));
  if (Norm2(mix) < 1e-12) mix = coeffs[0];

  Vector v(n, 0.0);
  for (size_t k = 0; k < space.size(); ++k) {
    Axpy(mix[k], *space[k], std::span<double>(v));
  }
  Normalize(v);
  FixSign(v);
  return v;
}

StatusOr<FiedlerResult> DensePath(const SparseMatrix& laplacian,
                                  const FiedlerOptions& options,
                                  double zero_tol) {
  auto eig = JacobiEigenSolve(DenseMatrix::FromSparse(laplacian));
  if (!eig.ok()) return eig.status();
  const int64_t n = laplacian.rows();

  int64_t zeros = 0;
  while (zeros < n && eig->eigenvalues[static_cast<size_t>(zeros)] < zero_tol) {
    ++zeros;
  }
  if (zeros == 0) {
    return InternalError("Laplacian has no zero eigenvalue; not a Laplacian?");
  }
  if (zeros > 1) {
    return FailedPreconditionError(
        "Laplacian has multiple zero eigenvalues: graph is disconnected");
  }

  FiedlerResult result;
  result.method_used = "dense-jacobi";
  const int64_t want = std::min<int64_t>(options.num_pairs, n - 1);
  for (int64_t k = 0; k < want; ++k) {
    LaplacianEigenPair pair;
    pair.eigenvalue = eig->eigenvalues[static_cast<size_t>(1 + k)];
    pair.eigenvector.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      pair.eigenvector[static_cast<size_t>(i)] = eig->eigenvectors.At(i, 1 + k);
    }
    result.pairs.push_back(std::move(pair));
  }
  return result;
}

StatusOr<FiedlerResult> LanczosPath(const SparseMatrix& laplacian,
                                    const FiedlerOptions& options,
                                    double zero_tol,
                                    const VectorBlock* warm_start) {
  const int64_t n = laplacian.rows();
  const double shift = laplacian.GershgorinBound() * 1.0001 + 1e-12;

  SparseOperator lap_op(&laplacian, options.matvec_pool);
  ShiftNegateOperator op(&lap_op, shift);

  // Deflate the exact kernel vector 1/sqrt(n).
  std::vector<Vector> deflate;
  deflate.emplace_back(static_cast<size_t>(n),
                       1.0 / std::sqrt(static_cast<double>(n)));

  FiedlerResult result;
  result.method_used = "lanczos";

  LanczosOptions lopt;
  lopt.max_basis = options.max_basis;
  lopt.max_restarts = options.max_restarts;
  lopt.tol = options.tol;
  lopt.seed = options.seed;

  const int64_t want = std::min<int64_t>(options.num_pairs, n - 1);
  for (int64_t k = 0; k < want; ++k) {
    // A provided warm start seeds the matching sequential solve; the
    // projection inside LargestEigenpair handles stale/garbage columns.
    lopt.start = warm_start != nullptr &&
                         k < static_cast<int64_t>(warm_start->size())
                     ? (*warm_start)[static_cast<size_t>(k)]
                     : Vector();
    auto lan = LargestEigenpair(op, deflate, lopt);
    if (!lan.ok()) return lan.status();
    result.matvecs += lan->matvecs;
    result.restarts += lan->restarts;
    if (!lan->converged && k > 0) {
      break;  // keep the pairs we have; extras are only for canonicalization
    }
    LaplacianEigenPair pair;
    pair.eigenvalue = shift - lan->eigenvalue;
    pair.eigenvector = lan->eigenvector;
    if (!lan->converged) {
      // The Fiedler pair itself missed tolerance: return it as a marked
      // best-effort estimate rather than an error, so callers can retry or
      // degrade. The disconnected check is skipped — an unconverged
      // eigenvalue estimate cannot prove a second kernel vector.
      result.converged = false;
      result.pairs.push_back(std::move(pair));
      break;
    }
    if (k == 0 && pair.eigenvalue < zero_tol) {
      return FailedPreconditionError(
          "Laplacian has multiple zero eigenvalues: graph is disconnected");
    }
    deflate.push_back(pair.eigenvector);
    result.pairs.push_back(std::move(pair));
  }
  return result;
}

StatusOr<FiedlerResult> BlockLanczosPath(const SparseMatrix& laplacian,
                                         const FiedlerOptions& options,
                                         double zero_tol,
                                         const VectorBlock* warm_start) {
  const int64_t n = laplacian.rows();
  const double shift = laplacian.GershgorinBound() * 1.0001 + 1e-12;

  SparseOperator lap_op(&laplacian, options.matvec_pool);
  ShiftNegateOperator op(&lap_op, shift);

  // Deflate the exact kernel vector 1/sqrt(n).
  std::vector<Vector> deflate;
  deflate.emplace_back(static_cast<size_t>(n),
                       1.0 / std::sqrt(static_cast<double>(n)));

  BlockLanczosOptions lopt;
  lopt.num_pairs =
      static_cast<int>(std::min<int64_t>(options.num_pairs, n - 1));
  lopt.block_size = options.block_size;
  lopt.max_basis = options.block_max_basis;
  lopt.max_restarts = options.max_restarts;
  // One decade below the caller's tolerance (the Chebyshev filter makes
  // the extra decade nearly free): at tol itself, start-dependent noise in
  // a degenerate eigenspace still straddles the rank quantizer, so warm-
  // and cold-started solves could disagree on exactly-tied points. The
  // warm-start property tests pin this contract.
  lopt.tol = std::max(options.tol * 0.1, 1e-13);
  lopt.seed = options.seed;
  lopt.cheb_degree_max = options.cheb_degree_max;
  lopt.op_lower_bound = 0.0;  // shift >= lambda_max: shift*I - L is PSD
  lopt.pool = options.matvec_pool;
  const bool warm = warm_start != nullptr && !warm_start->empty();
  if (warm) lopt.start = *warm_start;

  auto lan = LargestEigenpairsBlock(op, deflate, lopt);
  if (!lan.ok()) return lan.status();

  FiedlerResult result;
  result.method_used = warm ? "block-lanczos+warm" : "block-lanczos";
  result.matvecs = lan->matvecs;
  result.cheb_matvecs = lan->cheb_matvecs;
  result.spmm_calls = lan->spmm_calls;
  result.reorth_panels = lan->reorth_panels;
  result.restarts = lan->restarts;
  result.profile = lan->profile;

  // Keep the converged prefix (matching the scalar path: extra pairs exist
  // only for canonicalization and may be dropped, but the Fiedler pair
  // itself must have converged).
  for (size_t k = 0; k < lan->eigenvalues.size(); ++k) {
    const double theta = lan->eigenvalues[k];
    const double scale = std::max(std::fabs(theta), 1.0);
    const bool pair_ok =
        lan->converged || lan->residuals[k] <= options.tol * scale;
    if (!pair_ok && k > 0) break;
    LaplacianEigenPair pair;
    pair.eigenvalue = shift - theta;
    pair.eigenvector = std::move(lan->eigenvectors[k]);
    if (!pair_ok) {
      // Best-effort Fiedler pair: mark and return instead of erroring so
      // the caller's retry/degrade ladder can take over. No disconnected
      // check — the unconverged estimate cannot prove a second kernel
      // vector.
      result.converged = false;
      result.pairs.push_back(std::move(pair));
      break;
    }
    if (k == 0 && pair.eigenvalue < zero_tol) {
      return FailedPreconditionError(
          "Laplacian has multiple zero eigenvalues: graph is disconnected");
    }
    result.pairs.push_back(std::move(pair));
  }
  if (result.pairs.empty()) {
    return InternalError("block Lanczos produced no eigenpairs");
  }
  return result;
}

}  // namespace

StatusOr<FiedlerResult> ComputeFiedler(const SparseMatrix& laplacian,
                                       const FiedlerOptions& options,
                                       std::span<const Vector> canonical_axes,
                                       const VectorBlock* warm_start) {
  if (laplacian.rows() != laplacian.cols()) {
    return InvalidArgumentError("Laplacian must be square");
  }
  const int64_t n = laplacian.rows();
  if (n < 2) {
    return InvalidArgumentError(
        "Fiedler vector needs at least 2 vertices; got " + std::to_string(n));
  }
  SPECTRAL_CHECK_GE(options.num_pairs, 1);

  const double zero_tol =
      1e-8 * std::max(1.0, laplacian.GershgorinBound());

  const bool use_dense =
      options.method == FiedlerMethod::kDense ||
      (options.method == FiedlerMethod::kAuto &&
       n <= options.dense_threshold);

  auto result = [&]() -> StatusOr<FiedlerResult> {
    if (use_dense) return DensePath(laplacian, options, zero_tol);
    if (options.method == FiedlerMethod::kLanczos) {
      return LanczosPath(laplacian, options, zero_tol, warm_start);
    }
    return BlockLanczosPath(laplacian, options, zero_tol, warm_start);
  }();
  if (!result.ok()) return result.status();

  FiedlerResult out = std::move(result).value();
  SPECTRAL_CHECK(!out.pairs.empty());
  out.lambda2 = out.pairs[0].eigenvalue;

  // Collect the near-degenerate eigenspace of lambda2.
  const double degen_limit = out.lambda2 +
                             options.degeneracy_rel_tol *
                                 std::max(std::fabs(out.lambda2), 1e-30) +
                             options.degeneracy_abs_tol;
  std::vector<const Vector*> space;
  for (const auto& pair : out.pairs) {
    if (pair.eigenvalue <= degen_limit) space.push_back(&pair.eigenvector);
  }
  out.degenerate_dim = static_cast<int>(space.size());
  out.fiedler =
      Canonicalize(space, canonical_axes, options.degeneracy_policy);
  return out;
}

}  // namespace spectral
