// Block Lanczos / simultaneous-iteration eigensolver: extracts the
// `num_pairs` dominant eigenpairs of a symmetric operator in ONE Krylov
// pass instead of num_pairs sequential deflated solves (each of which
// re-pays the full reorthogonalization and matvec bill — see
// eigen/lanczos.h for the scalar path this replaces on the Fiedler driver).
//
// Per restart cycle the solver grows a block Krylov basis V = [X, AX~,
// A^2 X~, ...] with fused full reorthogonalization (linalg/block_ops.h),
// Rayleigh-Ritzes the projected matrix V^T A V (dense Jacobi; the basis is
// small), locks converged Ritz pairs into the deflation set in descending
// order, and restarts from the best unconverged Ritz block. Between
// restarts an optional Chebyshev filter on the operator damps the unwanted
// spectral interval [op_lower_bound, cut] — its matvecs skip the O(m^2 n)
// reorthogonalization entirely, so when the residual is still far from
// tol the cheap filter does the bulk of the convergence work and the
// expensive Krylov build only finishes it (degree is chosen adaptively
// from the residual/tolerance gap).
//
// The Fiedler driver (eigen/fiedler.h) runs this on shift * I - L with the
// all-ones kernel vector deflated, optionally warm-started from a coarse
// grid hierarchy (eigen/warm_start.h); the dominant pairs here are then
// exactly the (lambda2 ... lambda_{1+p}) pairs of the Laplacian.
//
// Storage model: the Krylov basis V and the applied block AV are PACKED
// column-panel buffers (linalg/packed_basis.h) — row-major with a fixed
// leading dimension, allocated once per solve and reused across restarts.
// Growth appends columns in place, the strided SpMM
// (LinearOperator::ApplyPanel) reads/writes basis panels directly, and
// the BCGS2 reorthogonalization, Rayleigh-Ritz multi-dot H-fill, Ritz
// assembly, and Chebyshev filter all run on the packed layout: no
// pack/unpack round trip anywhere in the iteration. Unpacked
// std::vector<Vector> blocks remain only at the API boundary (warm-start
// input, deflation set, locked eigenvector output).
//
// Threading model: BlockLanczosOptions::pool is the ONE worker set shared
// by every parallel site in a solve — the operator's row-partitioned
// strided SpMM (via SparseOperator's pool, wired by the Fiedler driver to
// the same pool), the column-parallel panel reorthogonalization
// (linalg/packed_basis.h), and the row-parallel Rayleigh-Ritz multi-dot
// H-fill. ThreadPool::ParallelFor is nest-safe (the caller participates
// and degrades to serial), so these sites can sit under
// batch/component/shard Submit tasks without spawning nested pools. Every
// parallel site partitions only across independent output elements with
// fixed per-element arithmetic, so eigenpairs, residuals, and all
// counters are byte-identical for any pool size including none: the pool
// is a runtime resource, never part of the result. Wall-clock fields in
// `profile` are the ONLY machine-dependent outputs.

#ifndef SPECTRAL_LPM_EIGEN_BLOCK_LANCZOS_H_
#define SPECTRAL_LPM_EIGEN_BLOCK_LANCZOS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "eigen/kernel_profile.h"
#include "eigen/operator.h"
#include "linalg/block_ops.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace spectral {

/// Tuning knobs for LargestEigenpairsBlock.
struct BlockLanczosOptions {
  /// Number of dominant eigenpairs to extract (>= 1).
  int num_pairs = 1;
  /// Width of the iterated block. 0 = num_pairs + 2 guard vectors (guards
  /// absorb clustered/degenerate eigenvalues that would otherwise stall a
  /// width-num_pairs subspace).
  int block_size = 0;
  /// Total Krylov basis columns per restart cycle. Memory is max_basis * n
  /// doubles; the Rayleigh-Ritz projection is a dense max_basis^2 solve.
  int max_basis = 48;
  /// Restart cycles before giving up.
  int max_restarts = 80;
  /// A Ritz pair is converged when ||A x - theta x|| <= tol * scale with
  /// scale = max(|theta|, 1).
  double tol = 1e-9;
  /// Seed for random start/padding columns.
  uint64_t seed = 0x51f3c7a11ull;
  /// Optional warm start (e.g. a prolonged + smoothed coarse eigenvector
  /// block, see eigen/warm_start.h). Any width; projected onto the
  /// complement of the deflation set, padded with random columns to
  /// block_size. A garbage start only costs iterations — the solver falls
  /// back to the random-start behaviour.
  VectorBlock start;
  /// Max Chebyshev filter degree per restart; 0 disables the accelerator.
  int cheb_degree_max = 300;
  /// Known lower bound of op's spectrum (the damped interval starts here).
  /// For shift * I - L with shift >= lambda_max(L) the operator is PSD, so
  /// the default 0 is tight.
  double op_lower_bound = 0.0;
  /// Shared worker pool for the solver's kernel parallelism (see the
  /// threading-model note above). Not owned; null keeps every kernel
  /// serial. Results are byte-identical either way.
  ThreadPool* pool = nullptr;
};

/// Output of LargestEigenpairsBlock.
struct BlockLanczosResult {
  /// The dominant eigenvalues, descending. Size num_pairs (or the largest
  /// achievable when the complement of the deflation set is smaller).
  std::vector<double> eigenvalues;
  /// Unit eigenvectors aligned with `eigenvalues`.
  VectorBlock eigenvectors;
  /// True residuals ||A x - theta x|| at acceptance, aligned.
  Vector residuals;
  /// Total operator applications, including the Chebyshev filter's. Each
  /// fused block apply counts as its width so the tally stays comparable
  /// with the scalar solver's.
  int64_t matvecs = 0;
  /// The filter's share of `matvecs` (reorthogonalization-free).
  int64_t cheb_matvecs = 0;
  /// Fused block-operator applications (each covers `matvecs / spmm_calls`
  /// columns on average — the SpMM amortization factor).
  int64_t spmm_calls = 0;
  /// Reorthogonalization panel-kernel applications (passes x panels x
  /// columns, see linalg/block_ops.h).
  int64_t reorth_panels = 0;
  /// Restart cycles consumed.
  int restarts = 0;
  bool converged = false;
  /// Per-kernel wall time + deterministic flop estimates (see
  /// eigen/kernel_profile.h). The `*_ms` fields are machine-dependent;
  /// everything else in this struct is byte-identical across pool sizes.
  KernelProfile profile;
};

/// Computes the `num_pairs` largest eigenpairs of symmetric `op` on the
/// orthogonal complement of `deflate` (vectors assumed orthonormal). Fails
/// if the complement is (numerically) empty or the iteration cannot make
/// progress; a best-effort result with converged == false is returned when
/// the residual check still fails after max_restarts.
StatusOr<BlockLanczosResult> LargestEigenpairsBlock(
    const LinearOperator& op, std::span<const Vector> deflate,
    const BlockLanczosOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_EIGEN_BLOCK_LANCZOS_H_
