// Per-kernel profile of one block Lanczos solve: wall time and a
// deterministic flop estimate for each of the five phases that dominate
// the eigensolve — fused SpMM, blocked reorthogonalization, Rayleigh-Ritz
// H-fill, the dense Rayleigh-Ritz solve + Ritz assembly, and the
// Chebyshev filter.
//
// The two counter families have different contracts:
//   * `*_ms` are wall-clock milliseconds — machine-dependent, useful for
//     bench share rows and --profile output, never embedded in result
//     detail strings (those are compared byte-for-byte across runs).
//   * `*_flops` are flop estimates derived only from deterministic solver
//     state (dimensions, iteration counts, operator nnz), so they are
//     identical across machines and pool sizes and safe to gate in CI.

#ifndef SPECTRAL_LPM_EIGEN_KERNEL_PROFILE_H_
#define SPECTRAL_LPM_EIGEN_KERNEL_PROFILE_H_

#include <cstdint>

namespace spectral {

/// Accumulated per-phase cost of the block eigensolver kernels. Additive:
/// multilevel/warm-start paths and multi-component solves sum the
/// profiles of their inner solves via Add().
struct KernelProfile {
  double spmm_ms = 0.0;    // fused/strided sparse matrix x panel products
  double reorth_ms = 0.0;  // BCGS2 panel reorthogonalization + pad/orthonorm
  double hfill_ms = 0.0;   // projected H = V^T A V multi-dot fill
  double rr_ms = 0.0;      // dense Jacobi solve + Ritz vector assembly
  double cheb_ms = 0.0;    // Chebyshev filter recurrence (incl. its SpMMs)

  int64_t spmm_flops = 0;
  int64_t reorth_flops = 0;
  int64_t hfill_flops = 0;
  int64_t rr_flops = 0;
  int64_t cheb_flops = 0;

  void Add(const KernelProfile& other) {
    spmm_ms += other.spmm_ms;
    reorth_ms += other.reorth_ms;
    hfill_ms += other.hfill_ms;
    rr_ms += other.rr_ms;
    cheb_ms += other.cheb_ms;
    spmm_flops += other.spmm_flops;
    reorth_flops += other.reorth_flops;
    hfill_flops += other.hfill_flops;
    rr_flops += other.rr_flops;
    cheb_flops += other.cheb_flops;
  }

  double total_ms() const {
    return spmm_ms + reorth_ms + hfill_ms + rr_ms + cheb_ms;
  }
  int64_t total_flops() const {
    return spmm_flops + reorth_flops + hfill_flops + rr_flops + cheb_flops;
  }
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_EIGEN_KERNEL_PROFILE_H_
