// Scalar restarted Lanczos iteration with full reorthogonalization and
// explicit deflation. Finds the dominant (largest) eigenpair of a symmetric
// operator restricted to the orthogonal complement of a given set of
// vectors.
//
// The Fiedler driver's kLanczos path calls this on shift * I - L with the
// all-ones vector deflated, so the dominant pair here is exactly the
// (lambda2, Fiedler vector) pair of the Laplacian. Sequential calls with
// previously found eigenvectors added to the deflation set yield lambda3,
// lambda4, ... — each such solve re-pays the full reorthogonalization and
// matvec bill, which is why the production path is the block solver in
// eigen/block_lanczos.h (all pairs in one Krylov pass, Chebyshev-filtered,
// optionally warm-started from a coarse hierarchy via eigen/warm_start.h).
// This scalar path is kept as the independent reference implementation the
// block path's orders are property-tested against, and as the refinement
// engine of last resort: it accepts the same LanczosOptions::start
// warm-start hook.

#ifndef SPECTRAL_LPM_EIGEN_LANCZOS_H_
#define SPECTRAL_LPM_EIGEN_LANCZOS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "eigen/operator.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace spectral {

/// Tuning knobs for the Lanczos iteration.
struct LanczosOptions {
  /// Krylov basis size per restart cycle. Memory is max_basis * n doubles.
  int max_basis = 120;
  /// Number of restart cycles before giving up.
  int max_restarts = 100;
  /// Converged when ||A x - theta x|| <= tol * scale, where `scale` is
  /// max(|theta|, 1).
  double tol = 1e-9;
  /// Seed for the random start vector.
  uint64_t seed = 0x51f3c7a11ull;
  /// Optional warm start (e.g. a prolonged coarse-level eigenvector). Used
  /// after projection onto the complement of the deflation set; falls back
  /// to a random start if the projection is numerically zero. Size must be
  /// the operator dimension when non-empty.
  Vector start;
};

/// Output of LargestEigenpair.
struct LanczosResult {
  double eigenvalue = 0.0;
  Vector eigenvector;
  /// True residual ||A x - theta x|| at exit.
  double residual = 0.0;
  /// Total operator applications.
  int64_t matvecs = 0;
  /// Restart cycles consumed.
  int restarts = 0;
  bool converged = false;
};

/// Computes the largest eigenpair of symmetric `op` on the orthogonal
/// complement of `deflate` (vectors assumed orthonormal). Fails if the
/// complement is (numerically) empty or if the iteration cannot make
/// progress. A non-converged but best-effort result is returned with
/// converged == false only when the residual check fails after
/// max_restarts; callers decide whether that is acceptable.
StatusOr<LanczosResult> LargestEigenpair(const LinearOperator& op,
                                         std::span<const Vector> deflate,
                                         const LanczosOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_EIGEN_LANCZOS_H_
