// Symmetric tridiagonal eigensolver (implicit QL with Wilkinson-style
// shifts). Used by Lanczos to diagonalize its projected tridiagonal matrix;
// the projected problems are small (<= max_basis), so O(m^3) is fine.

#ifndef SPECTRAL_LPM_EIGEN_TRIDIAGONAL_H_
#define SPECTRAL_LPM_EIGEN_TRIDIAGONAL_H_

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace spectral {

/// Eigendecomposition of a symmetric tridiagonal matrix.
struct TridiagonalEigenResult {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// eigenvectors.At(i, k): component i of the unit eigenvector for
  /// eigenvalues[k], expressed in the basis the tridiagonal was given in.
  DenseMatrix eigenvectors;
};

/// Solves the m x m symmetric tridiagonal eigenproblem with diagonal `diag`
/// (size m) and subdiagonal `sub` (size m-1; sub[i] couples i and i+1).
/// Fails only if QL iteration stalls (pathological input).
StatusOr<TridiagonalEigenResult> SolveTridiagonal(const Vector& diag,
                                                  const Vector& sub);

}  // namespace spectral

#endif  // SPECTRAL_LPM_EIGEN_TRIDIAGONAL_H_
