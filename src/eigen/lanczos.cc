#include "eigen/lanczos.h"

#include <algorithm>
#include <cmath>

#include "eigen/tridiagonal.h"
#include "util/check.h"
#include "util/random.h"

namespace spectral {

namespace {

// Fills `v` with random unit noise orthogonal to `deflate`. Returns false if
// the projected norm collapses (deflation spans nearly the whole space).
bool RandomStartVector(int64_t n, std::span<const Vector> deflate,
                       Rng& rng, Vector& v) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    v.assign(static_cast<size_t>(n), 0.0);
    for (auto& x : v) x = rng.UniformDouble(-1.0, 1.0);
    OrthogonalizeAgainst(deflate, v);
    if (Normalize(v) > 1e-8) return true;
  }
  return false;
}

}  // namespace

StatusOr<LanczosResult> LargestEigenpair(const LinearOperator& op,
                                         std::span<const Vector> deflate,
                                         const LanczosOptions& options) {
  const int64_t n = op.Dim();
  if (n <= 0) return InvalidArgumentError("operator dimension must be >= 1");
  if (static_cast<int64_t>(deflate.size()) >= n) {
    return FailedPreconditionError(
        "deflation set spans the entire space; no eigenpair to find");
  }
  SPECTRAL_CHECK_GE(options.max_basis, 2);
  SPECTRAL_CHECK_GE(options.max_restarts, 1);

  Rng rng(options.seed);
  LanczosResult result;

  Vector start;
  bool have_start = false;
  if (!options.start.empty()) {
    SPECTRAL_CHECK_EQ(static_cast<int64_t>(options.start.size()), n)
        << "warm-start vector has the wrong dimension";
    start = options.start;
    OrthogonalizeAgainst(deflate, start);
    have_start = Normalize(start) > 1e-10;
  }
  if (!have_start && !RandomStartVector(n, deflate, rng, start)) {
    return FailedPreconditionError(
        "could not construct a start vector orthogonal to the deflation set");
  }

  const int max_basis =
      static_cast<int>(std::min<int64_t>(options.max_basis,
                                         n - static_cast<int64_t>(deflate.size())));

  std::vector<Vector> basis;  // Lanczos vectors v_0 .. v_j
  Vector alphas;
  Vector betas;  // betas[j] couples v_j and v_{j+1}
  Vector w(static_cast<size_t>(n));
  Vector ritz(static_cast<size_t>(n));
  Vector applied(static_cast<size_t>(n));

  for (int restart = 0; restart < options.max_restarts; ++restart) {
    result.restarts = restart + 1;
    basis.clear();
    alphas.clear();
    betas.clear();
    basis.push_back(start);

    bool breakdown = false;
    for (int j = 0; j < max_basis; ++j) {
      op.Apply(basis[static_cast<size_t>(j)], w);
      result.matvecs += 1;
      const double alpha = Dot(w, basis[static_cast<size_t>(j)]);
      alphas.push_back(alpha);
      Axpy(-alpha, basis[static_cast<size_t>(j)], w);
      if (j > 0) {
        Axpy(-betas[static_cast<size_t>(j - 1)], basis[static_cast<size_t>(j - 1)], w);
      }
      // Full reorthogonalization against the deflation set and the whole
      // basis keeps the recurrence numerically orthogonal.
      OrthogonalizeAgainst(deflate, w);
      OrthogonalizeAgainst(basis, w);
      const double beta = Norm2(w);
      if (beta < 1e-12) {
        breakdown = true;  // exact invariant subspace reached
        break;
      }
      if (j + 1 >= max_basis) break;
      betas.push_back(beta);
      Scale(1.0 / beta, w);
      basis.push_back(w);
    }

    // Rayleigh-Ritz on the projected tridiagonal.
    const int m = static_cast<int>(alphas.size());
    SPECTRAL_CHECK_GT(m, 0);
    Vector sub(betas.begin(),
               betas.begin() + std::max(0, m - 1));
    auto tri = SolveTridiagonal(
        Vector(alphas.begin(), alphas.begin() + m), sub);
    if (!tri.ok()) return tri.status();

    // Largest Ritz pair.
    const int64_t top = m - 1;
    Fill(ritz, 0.0);
    for (int j = 0; j < m; ++j) {
      Axpy(tri->eigenvectors.At(j, top), basis[static_cast<size_t>(j)], ritz);
    }
    OrthogonalizeAgainst(deflate, ritz);
    if (Normalize(ritz) < 1e-12) {
      // Degenerate restart; try a fresh random direction.
      if (!RandomStartVector(n, deflate, rng, start)) {
        return InternalError("Lanczos lost the search subspace");
      }
      continue;
    }

    // True residual on the original operator.
    op.Apply(ritz, applied);
    result.matvecs += 1;
    const double theta = Dot(ritz, applied);
    Axpy(-theta, ritz, applied);
    const double residual = Norm2(applied);

    result.eigenvalue = theta;
    result.eigenvector = ritz;
    result.residual = residual;
    if (residual <= options.tol * std::max(std::fabs(theta), 1.0)) {
      result.converged = true;
      return result;
    }
    if (breakdown) {
      // The Krylov space is exhausted; the Ritz pair is exact for the
      // reachable subspace. Accept it.
      result.converged = true;
      return result;
    }
    start = ritz;  // restart from the best current estimate
  }
  return result;  // best effort, converged == false
}

}  // namespace spectral
