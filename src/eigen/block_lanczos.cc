#include "eigen/block_lanczos.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "eigen/jacobi.h"
#include "linalg/dense_matrix.h"
#include "linalg/packed_basis.h"
#include "util/check.h"
#include "util/random.h"
#include "util/timer.h"

namespace spectral {

namespace {

// Metadata of one assembled Ritz pair; the vector itself lives as a
// packed column of the solver's `ritz` buffer.
struct RitzInfo {
  double theta = 0.0;
  double residual = 0.0;
  bool taken = false;  // locked (moved to the output) — skip in the top-up
};

// Appends random unit columns orthogonal to `deflate`, `locked`, and the
// packed prefix [0, cur) until `v` has `width` live columns. Returns the
// new column count, or -1 if no such direction can be constructed (the
// complement is exhausted). RNG draw order and per-column arithmetic are
// exactly the unpacked PadBlockRandom's, so the same seed yields the same
// columns. The orthogonalization work is billed to profile.reorth_*.
int64_t PadPackedRandom(int64_t n, int64_t width,
                        std::span<const Vector> deflate,
                        const VectorBlock& locked, PackedBasis& v,
                        int64_t cur, Rng& rng, Vector& tmp,
                        KernelProfile& profile) {
  WallTimer timer;
  while (cur < width) {
    bool found = false;
    for (int attempt = 0; attempt < 8 && !found; ++attempt) {
      tmp.resize(static_cast<size_t>(n));
      for (double& x : tmp) x = rng.UniformDouble(-1.0, 1.0);
      OrthogonalizeAgainst(deflate, tmp);
      OrthogonalizeAgainst(locked, tmp);
      OrthogonalizeVectorAgainstColumns(v, cur, tmp);
      profile.reorth_flops +=
          8 * n *
              (static_cast<int64_t>(deflate.size()) +
               static_cast<int64_t>(locked.size()) + cur) +
          3 * n;
      if (Normalize(tmp) > 1e-8) {
        v.CopyColumnIn(tmp, cur);
        ++cur;
        found = true;
      }
    }
    if (!found) {
      profile.reorth_ms += timer.ElapsedSeconds() * 1e3;
      return -1;
    }
  }
  profile.reorth_ms += timer.ElapsedSeconds() * 1e3;
  return cur;
}

// In-place Chebyshev filter of the given degree on packed columns [0, w)
// of `v`: applies the degree-d Chebyshev polynomial of op mapped so
// [lo, cut] -> [-1, 1], amplifying every spectral component above `cut`
// by cosh(d * acosh(t)) while keeping the damped interval at magnitude
// <= 1. Columns are renormalized afterwards. These matvecs never touch a
// Krylov basis, so they cost no reorthogonalization — and the whole block
// advances through each recurrence step with ONE fused SpMM. The
// recurrence runs on dense width-w buffers (hoisted into the solver's
// workspace); the three-term step is evaluated element-wise, identically
// to the scalar per-column loop, so results are bit-identical to the
// unfused filter. Flops are billed to profile.cheb_*, including the
// filter's SpMMs.
void ChebyshevFilterPacked(const LinearOperator& op, double lo, double cut,
                           int degree, PackedBasis& v, int64_t w,
                           std::vector<double>& prev,
                           std::vector<double>& curr,
                           std::vector<double>& next, int64_t& matvecs,
                           int64_t& spmm_calls, KernelProfile& profile) {
  const int64_t n = op.Dim();
  if (w == 0) return;
  const double center = (cut + lo) / 2.0;
  const double half_width = (cut - lo) / 2.0;
  const size_t total = static_cast<size_t>(n * w);
  SPECTRAL_DCHECK_LE(total, prev.size());
  const int64_t flops_per_spmm = w * op.FlopsPerApply();
  // T_0(t) X = X: pack the block once; the recurrence stays packed.
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      prev[static_cast<size_t>(r * w + c)] = v.at(r, c);
    }
  }
  op.ApplyPanel(w, prev.data(), w, curr.data(), w);  // T_1(t) X = t(A) X
  matvecs += w;
  ++spmm_calls;
  profile.cheb_flops += flops_per_spmm;
  {
    double* __restrict cw = curr.data();
    const double* __restrict pr = prev.data();
    for (size_t e = 0; e < total; ++e) {
      cw[e] = (cw[e] - center * pr[e]) / half_width;
    }
    profile.cheb_flops += 3 * static_cast<int64_t>(total);
  }
  for (int k = 2; k <= degree; ++k) {
    op.ApplyPanel(w, curr.data(), w, next.data(), w);
    matvecs += w;
    ++spmm_calls;
    profile.cheb_flops += flops_per_spmm;
    {
      double* __restrict nw = next.data();
      const double* __restrict cr = curr.data();
      const double* __restrict pr = prev.data();
      for (size_t e = 0; e < total; ++e) {
        nw[e] = 2.0 * (nw[e] - center * cr[e]) / half_width - pr[e];
      }
      profile.cheb_flops += 5 * static_cast<int64_t>(total);
    }
    prev.swap(curr);
    curr.swap(next);
  }
  for (int64_t c = 0; c < w; ++c) {
    for (int64_t r = 0; r < n; ++r) {
      v.at(r, c) = curr[static_cast<size_t>(r * w + c)];
    }
    NormalizeColumn(v, c);
    profile.cheb_flops += 3 * n;
  }
}

}  // namespace

StatusOr<BlockLanczosResult> LargestEigenpairsBlock(
    const LinearOperator& op, std::span<const Vector> deflate,
    const BlockLanczosOptions& options) {
  const int64_t n = op.Dim();
  if (n <= 0) return InvalidArgumentError("operator dimension must be >= 1");
  const int64_t avail = n - static_cast<int64_t>(deflate.size());
  if (avail <= 0) {
    return FailedPreconditionError(
        "deflation set spans the entire space; no eigenpair to find");
  }
  SPECTRAL_CHECK_GE(options.num_pairs, 1);
  SPECTRAL_CHECK_GE(options.max_restarts, 1);
  const int64_t want = std::min<int64_t>(options.num_pairs, avail);
  int64_t width = options.block_size > 0 ? options.block_size : want + 2;
  width = std::clamp<int64_t>(width, want, avail);
  const int64_t max_basis = std::min<int64_t>(
      avail, std::max<int64_t>(options.max_basis, 2 * width));

  Rng rng(options.seed);
  BlockLanczosResult result;
  ThreadPool* pool = options.pool;
  int64_t* panels = &result.reorth_panels;
  KernelProfile& profile = result.profile;
  int64_t* reorth_flops = &profile.reorth_flops;

  VectorBlock locked;  // accepted eigenvectors, theta descending
  std::vector<double> locked_vals;
  Vector locked_res;

  // --- Solve-lifetime workspace, allocated ONCE and reused across every
  // restart: the packed Krylov basis `v` (capacity max_basis + width: a
  // staged candidate block rides beyond the basis), the packed applied
  // block `av`, the packed Ritz block, the Chebyshev recurrence buffers,
  // and small per-column scratch. Nothing below this reallocates per
  // restart except the dense m x m Rayleigh-Ritz problem itself.
  PackedBasis v;
  v.Reset(n, max_basis + width);
  PackedBasis av;
  av.Reset(n, max_basis);
  PackedBasis ritz_vecs;
  ritz_vecs.Reset(n, width);
  std::vector<double> cheb_prev(static_cast<size_t>(n * width));
  std::vector<double> cheb_curr(static_cast<size_t>(n * width));
  std::vector<double> cheb_next(static_cast<size_t>(n * width));
  Vector pad_tmp(static_cast<size_t>(n));
  Vector az(static_cast<size_t>(n));
  std::vector<double> coeffs(static_cast<size_t>(max_basis));
  std::vector<RitzInfo> ritz;
  ritz.reserve(static_cast<size_t>(width));

  // Start block: the warm start projected onto the complement of the
  // deflation set, padded with random columns to full width. A collapsed
  // (garbage) warm start degrades gracefully to the all-random start.
  // Live columns of `v` in [0, xw); between restarts this range holds the
  // restart block.
  int64_t xw = 0;
  for (const Vector& col : options.start) {
    if (xw >= width) break;
    SPECTRAL_CHECK_EQ(static_cast<int64_t>(col.size()), n)
        << "warm-start column has the wrong dimension";
    v.CopyColumnIn(col, xw);
    ++xw;
  }
  {
    WallTimer timer;
    OrthogonalizeColumnsAgainstBlock(deflate, v, 0, xw, pool, panels,
                                     reorth_flops);
    xw = OrthonormalizeColumns(v, 0, xw, /*drop_tol=*/1e-10, pool, panels,
                               reorth_flops);
    profile.reorth_ms += timer.ElapsedSeconds() * 1e3;
  }
  xw = PadPackedRandom(n, width, deflate, locked, v, xw, rng, pad_tmp,
                       profile);
  if (xw < 0) {
    return FailedPreconditionError(
        "could not construct a start block orthogonal to the deflation set");
  }

  for (int restart = 0; restart < options.max_restarts; ++restart) {
    result.restarts = restart + 1;
    const int64_t remaining = want - static_cast<int64_t>(locked.size());

    // --- Grow the block Krylov basis with fused full reorthogonalization.
    // The candidate block starts as the restart block already sitting at
    // [0, xw); each round absorbs it into the basis [0, m), applies the
    // operator to the new panel IN PLACE (strided SpMM straight off the
    // basis columns — no pack/unpack), stages the applied panel as the
    // next candidate at [m, m + cw), and cleans it against everything.
    int64_t m = 0;
    int64_t cw = xw;
    bool exhausted = false;
    while (cw > 0 && m + cw <= max_basis) {
      const int64_t base = m;
      m += cw;
      {
        WallTimer timer;
        // ONE fused SpMM applies the operator to every new basis column.
        op.ApplyPanel(cw, v.data() + base, v.ld(), av.data() + base,
                      av.ld());
        result.matvecs += cw;
        ++result.spmm_calls;
        profile.spmm_flops += cw * op.FlopsPerApply();
        // Stage the applied panel as the next candidate block.
        for (int64_t r = 0; r < n; ++r) {
          const double* src = av.data() + r * av.ld() + base;
          double* dst = v.data() + r * v.ld() + m;
          for (int64_t c = 0; c < cw; ++c) dst[c] = src[c];
        }
        profile.spmm_ms += timer.ElapsedSeconds() * 1e3;
      }
      WallTimer timer;
      OrthogonalizeColumnsAgainstBlock(deflate, v, m, cw, pool, panels,
                                       reorth_flops);
      OrthogonalizeColumnsAgainstBlock(locked, v, m, cw, pool, panels,
                                       reorth_flops);
      OrthogonalizeColumnsAgainstColumns(v, 0, m, m, cw, pool, panels,
                                         reorth_flops);
      cw = OrthonormalizeColumns(v, m, cw, /*drop_tol=*/1e-10, pool, panels,
                                 reorth_flops);
      // Re-clean at unit scale. Near convergence the remainder above is
      // tiny, so normalizing it amplifies the projections' rounding —
      // including the deflated kernel direction, which is the operator's
      // *largest* eigenvalue on shift*I - L and would otherwise leak back
      // in and get "found". A second pass over everything at unit norm
      // pins the pollution back to machine epsilon; columns that lose half
      // their mass here were junk and are dropped.
      OrthogonalizeColumnsAgainstBlock(deflate, v, m, cw, pool, panels,
                                       reorth_flops);
      OrthogonalizeColumnsAgainstBlock(locked, v, m, cw, pool, panels,
                                       reorth_flops);
      OrthogonalizeColumnsAgainstColumns(v, 0, m, m, cw, pool, panels,
                                         reorth_flops);
      cw = OrthonormalizeColumns(v, m, cw, /*drop_tol=*/0.5, pool, panels,
                                 reorth_flops);
      profile.reorth_ms += timer.ElapsedSeconds() * 1e3;
      if (cw == 0) exhausted = true;
    }
    SPECTRAL_CHECK_GT(m, 0);

    // --- Rayleigh-Ritz on the projected dense matrix H = V^T A V. Row i's
    // task computes the symmetrized entries (i, j >= i) with ONE fused
    // multi-dot pass per panel of 8 columns and mirrors them; every cell
    // is written by exactly one task, so rows parallelize race-free and
    // each accumulation runs serially: bit-identical for any pool size.
    DenseMatrix h(m, m);
    {
      WallTimer timer;
      const auto fill_row = [&](int64_t i) {
        ProjectedRowMultiDot(v, av, i, i, m - i, &h.At(i, i));
        for (int64_t j = i + 1; j < m; ++j) h.At(j, i) = h.At(i, j);
      };
      if (pool != nullptr && pool->num_threads() >= 2 && m >= 2) {
        pool->ParallelFor(0, m, 1, fill_row);
      } else {
        for (int64_t i = 0; i < m; ++i) fill_row(i);
      }
      profile.hfill_flops += (4 * n + 2) * (m * (m + 1) / 2);
      profile.hfill_ms += timer.ElapsedSeconds() * 1e3;
    }
    WallTimer rr_timer;
    auto eig = JacobiEigenSolve(h);
    if (!eig.ok()) return eig.status();

    // Assemble the top Ritz pairs (descending), enough for the restart
    // block; A z comes free from the stored applied columns. The row-fused
    // accumulation (ascending basis index per row) is exactly the old
    // per-column Axpy chain's per-element order.
    const int64_t assemble = std::min<int64_t>(m, width);
    ritz.assign(static_cast<size_t>(assemble), RitzInfo{});
    for (int64_t k = 0; k < assemble; ++k) {
      RitzInfo& pair = ritz[static_cast<size_t>(k)];
      const int64_t col = m - 1 - k;
      pair.theta = eig->eigenvalues[static_cast<size_t>(col)];
      for (int64_t i = 0; i < m; ++i) {
        coeffs[static_cast<size_t>(i)] = eig->eigenvectors.At(i, col);
      }
      for (int64_t r = 0; r < n; ++r) {
        const double* vr = v.data() + r * v.ld();
        const double* avr = av.data() + r * av.ld();
        double zr = 0.0;
        double azr = 0.0;
        for (int64_t i = 0; i < m; ++i) {
          const double u = coeffs[static_cast<size_t>(i)];
          zr += u * vr[i];
          azr += u * avr[i];
        }
        ritz_vecs.at(r, k) = zr;
        az[static_cast<size_t>(r)] = azr;
      }
      const double norm = NormalizeColumn(ritz_vecs, k);
      if (norm > 0.0) Scale(1.0 / norm, az);
      const double* z = ritz_vecs.data() + k;
      const int64_t zld = ritz_vecs.ld();
      const double mtheta = -pair.theta;
      for (int64_t r = 0; r < n; ++r) {
        az[static_cast<size_t>(r)] += mtheta * z[r * zld];
      }
      pair.residual = Norm2(az);
    }
    profile.rr_flops +=
        eig->sweeps * 6 * m * m * m + assemble * (4 * n * m + 8 * n);
    profile.rr_ms += rr_timer.ElapsedSeconds() * 1e3;

    // --- Lock the converged prefix, in descending order only, so the
    // accepted pairs are guaranteed to be the extremal ones in sequence.
    int64_t newly_locked = 0;
    while (newly_locked < remaining && newly_locked < assemble) {
      RitzInfo& pair = ritz[static_cast<size_t>(newly_locked)];
      const double scale = std::max(std::fabs(pair.theta), 1.0);
      // On Krylov exhaustion span(V) is invariant under A (up to drop_tol),
      // so the Ritz pairs are exact on the reachable subspace: accept them,
      // mirroring the scalar solver's breakdown path.
      if (pair.residual > options.tol * scale && !exhausted) break;
      locked_vals.push_back(pair.theta);
      locked_res.push_back(pair.residual);
      locked.emplace_back();
      ritz_vecs.CopyColumnOut(newly_locked, locked.back());
      pair.taken = true;
      ++newly_locked;
    }
    if (static_cast<int64_t>(locked.size()) >= want) {
      result.converged = true;
      break;
    }

    // --- Restart from the best unconverged Ritz vectors (thick restart:
    // the dense Rayleigh-Ritz above accepts any starting subspace). The
    // Ritz columns are copied, not moved: `ritz_vecs` doubles as the
    // best-effort answer when max_restarts runs out below.
    xw = 0;
    double worst_residual = 0.0;
    double wanted_theta_min = 0.0;
    const int64_t still_wanted = want - static_cast<int64_t>(locked.size());
    for (int64_t k = newly_locked; k < assemble; ++k) {
      const RitzInfo& pair = ritz[static_cast<size_t>(k)];
      if (k - newly_locked < still_wanted) {
        worst_residual = std::max(worst_residual, pair.residual);
        wanted_theta_min = pair.theta;
      }
      for (int64_t r = 0; r < n; ++r) v.at(r, xw) = ritz_vecs.at(r, k);
      ++xw;
    }

    // --- Chebyshev acceleration: when the residual is still far from tol,
    // damp the unwanted interval [lo, cut] on the restart block. The cut is
    // the best available estimate of the first unwanted eigenvalue: the
    // largest Ritz value below the restart set.
    const int64_t cut_col = m - 1 - assemble;
    if (options.cheb_degree_max > 0 && cut_col >= 0 && xw > 0) {
      const double lo = options.op_lower_bound;
      const double cut = eig->eigenvalues[static_cast<size_t>(cut_col)];
      const double scale = std::max(std::fabs(wanted_theta_min), 1.0);
      if (cut > lo && wanted_theta_min > cut &&
          worst_residual > options.tol * scale) {
        const double t_wanted = (2.0 * wanted_theta_min - cut - lo) /
                                (cut - lo);
        if (t_wanted > 1.0 + 1e-12) {
          // Degree that closes the remaining residual/tol gap (aiming one
          // decade below tol), capped by the option.
          const double gain = std::clamp(
              worst_residual / (0.1 * options.tol * scale), 1.0, 1e14);
          const int degree = static_cast<int>(std::ceil(
              std::acosh(gain) / std::acosh(t_wanted)));
          if (degree >= 2) {
            const int64_t before = result.matvecs;
            WallTimer timer;
            ChebyshevFilterPacked(op, lo, cut,
                                  std::min(degree, options.cheb_degree_max),
                                  v, xw, cheb_prev, cheb_curr, cheb_next,
                                  result.matvecs, result.spmm_calls,
                                  profile);
            profile.cheb_ms += timer.ElapsedSeconds() * 1e3;
            result.cheb_matvecs += result.matvecs - before;
          }
        }
      }
    }

    {
      WallTimer timer;
      OrthogonalizeColumnsAgainstBlock(deflate, v, 0, xw, pool, panels,
                                       reorth_flops);
      OrthogonalizeColumnsAgainstBlock(locked, v, 0, xw, pool, panels,
                                       reorth_flops);
      xw = OrthonormalizeColumns(v, 0, xw, /*drop_tol=*/1e-10, pool, panels,
                                 reorth_flops);
      profile.reorth_ms += timer.ElapsedSeconds() * 1e3;
    }
    xw = PadPackedRandom(n, width, deflate, locked, v, xw, rng, pad_tmp,
                         profile);
    if (xw < 0) {
      if (locked.empty()) {
        return InternalError("block Lanczos lost the search subspace");
      }
      break;  // complement exhausted: report what is locked
    }
  }

  // Best effort: top up with the freshest (unconverged) Ritz pairs so the
  // caller still sees `want` pairs with honest residuals.
  if (!result.converged) {
    for (size_t k = 0; k < ritz.size(); ++k) {
      if (static_cast<int64_t>(locked.size()) >= want) break;
      const RitzInfo& pair = ritz[k];
      if (pair.taken) continue;
      locked_vals.push_back(pair.theta);
      locked_res.push_back(pair.residual);
      locked.emplace_back();
      ritz_vecs.CopyColumnOut(static_cast<int64_t>(k), locked.back());
    }
  }
  result.eigenvalues = std::move(locked_vals);
  result.eigenvectors = std::move(locked);
  result.residuals = std::move(locked_res);
  return result;
}

}  // namespace spectral
