#include "eigen/block_lanczos.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "eigen/jacobi.h"
#include "linalg/dense_matrix.h"
#include "util/check.h"
#include "util/random.h"

namespace spectral {

namespace {

// One assembled Ritz pair.
struct RitzPair {
  double theta = 0.0;
  double residual = 0.0;
  Vector z;
};

// Appends random unit columns orthogonal to `deflate`, `locked`, and the
// block itself until the block has `width` columns. Returns false if no
// such direction can be constructed (the complement is exhausted).
bool PadBlockRandom(int64_t n, int64_t width, std::span<const Vector> deflate,
                    const VectorBlock& locked, VectorBlock& block, Rng& rng) {
  while (static_cast<int64_t>(block.size()) < width) {
    bool found = false;
    for (int attempt = 0; attempt < 8 && !found; ++attempt) {
      Vector v(static_cast<size_t>(n));
      for (double& x : v) x = rng.UniformDouble(-1.0, 1.0);
      OrthogonalizeAgainst(deflate, v);
      OrthogonalizeAgainst(locked, v);
      OrthogonalizeAgainst(block, v);
      if (Normalize(v) > 1e-8) {
        block.push_back(std::move(v));
        found = true;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Packs block columns [first, first + count) into a row-major buffer
// (packed[j * count + c] = block[first + c][j]) — the layout
// LinearOperator::ApplyBlock consumes.
void PackBlock(std::span<const Vector> block, size_t first, size_t count,
               int64_t n, std::vector<double>& packed) {
  packed.resize(static_cast<size_t>(n) * count);
  for (size_t c = 0; c < count; ++c) {
    const Vector& col = block[first + c];
    for (int64_t j = 0; j < n; ++j) {
      packed[static_cast<size_t>(j) * count + c] =
          col[static_cast<size_t>(j)];
    }
  }
}

// In-place Chebyshev filter of the given degree on `block`: applies the
// degree-d Chebyshev polynomial of op mapped so [lo, cut] -> [-1, 1],
// amplifying every spectral component above `cut` by cosh(d * acosh(t))
// while keeping the damped interval at magnitude <= 1. Columns are
// renormalized afterwards. These matvecs never touch a Krylov basis, so
// they cost no reorthogonalization — and the whole block advances through
// each recurrence step with ONE fused SpMM, so the matrix is streamed
// degree times total instead of degree times per column. The three-term
// recurrence is evaluated element-wise, identically to the scalar
// per-column loop, so results are bit-identical to the unfused filter.
void ChebyshevFilterBlock(const LinearOperator& op, double lo, double cut,
                          int degree, VectorBlock& block, int64_t& matvecs,
                          int64_t& spmm_calls) {
  const int64_t n = op.Dim();
  const size_t w = block.size();
  if (w == 0) return;
  const double center = (cut + lo) / 2.0;
  const double half_width = (cut - lo) / 2.0;
  std::vector<double> prev;  // T_0(t) X = X
  PackBlock(block, 0, w, n, prev);
  std::vector<double> curr(prev.size());  // T_1(t) X = t(A) X
  std::vector<double> next(prev.size());
  op.ApplyBlock(static_cast<int64_t>(w), prev, curr);
  matvecs += static_cast<int64_t>(w);
  ++spmm_calls;
  {
    double* __restrict cw = curr.data();
    const double* __restrict pr = prev.data();
    const size_t total = curr.size();
    for (size_t e = 0; e < total; ++e) {
      cw[e] = (cw[e] - center * pr[e]) / half_width;
    }
  }
  for (int k = 2; k <= degree; ++k) {
    op.ApplyBlock(static_cast<int64_t>(w), curr, next);
    matvecs += static_cast<int64_t>(w);
    ++spmm_calls;
    {
      double* __restrict nw = next.data();
      const double* __restrict cr = curr.data();
      const double* __restrict pr = prev.data();
      const size_t total = next.size();
      for (size_t e = 0; e < total; ++e) {
        nw[e] = 2.0 * (nw[e] - center * cr[e]) / half_width - pr[e];
      }
    }
    prev.swap(curr);
    curr.swap(next);
  }
  for (size_t c = 0; c < w; ++c) {
    Vector& x = block[c];
    for (int64_t j = 0; j < n; ++j) {
      x[static_cast<size_t>(j)] = curr[static_cast<size_t>(j) * w + c];
    }
    Normalize(x);
  }
}

}  // namespace

StatusOr<BlockLanczosResult> LargestEigenpairsBlock(
    const LinearOperator& op, std::span<const Vector> deflate,
    const BlockLanczosOptions& options) {
  const int64_t n = op.Dim();
  if (n <= 0) return InvalidArgumentError("operator dimension must be >= 1");
  const int64_t avail = n - static_cast<int64_t>(deflate.size());
  if (avail <= 0) {
    return FailedPreconditionError(
        "deflation set spans the entire space; no eigenpair to find");
  }
  SPECTRAL_CHECK_GE(options.num_pairs, 1);
  SPECTRAL_CHECK_GE(options.max_restarts, 1);
  const int64_t want = std::min<int64_t>(options.num_pairs, avail);
  int64_t width = options.block_size > 0 ? options.block_size : want + 2;
  width = std::clamp<int64_t>(width, want, avail);
  const int64_t max_basis = std::min<int64_t>(
      avail, std::max<int64_t>(options.max_basis, 2 * width));

  Rng rng(options.seed);
  BlockLanczosResult result;
  ThreadPool* pool = options.pool;
  int64_t* panels = &result.reorth_panels;

  VectorBlock locked;            // accepted eigenvectors, theta descending
  std::vector<double> locked_vals;
  Vector locked_res;

  // Start block: the warm start projected onto the complement of the
  // deflation set, padded with random columns to full width. A collapsed
  // (garbage) warm start degrades gracefully to the all-random start.
  VectorBlock x_block;
  for (const Vector& v : options.start) {
    if (static_cast<int64_t>(x_block.size()) >= width) break;
    SPECTRAL_CHECK_EQ(static_cast<int64_t>(v.size()), n)
        << "warm-start column has the wrong dimension";
    x_block.push_back(v);
  }
  OrthogonalizeBlockAgainst(deflate, x_block, pool, panels);
  OrthonormalizeBlock(x_block, /*drop_tol=*/1e-10, pool, panels);
  if (!PadBlockRandom(n, width, deflate, locked, x_block, rng)) {
    return FailedPreconditionError(
        "could not construct a start block orthogonal to the deflation set");
  }

  VectorBlock basis;       // Krylov columns v_0 .. v_{m-1}
  VectorBlock applied;     // A v_0 .. A v_{m-1}
  std::vector<RitzPair> ritz;
  std::vector<double> packed_x;  // scratch for the fused block matvec
  std::vector<double> packed_y;

  for (int restart = 0; restart < options.max_restarts; ++restart) {
    result.restarts = restart + 1;
    const int64_t remaining = want - static_cast<int64_t>(locked.size());

    // --- Grow the block Krylov basis with fused full reorthogonalization.
    basis.clear();
    applied.clear();
    VectorBlock candidate = std::move(x_block);
    x_block.clear();
    bool exhausted = false;
    while (!candidate.empty() &&
           static_cast<int64_t>(basis.size() + candidate.size()) <=
               max_basis) {
      const size_t base = basis.size();
      for (Vector& col : candidate) basis.push_back(std::move(col));
      // ONE fused SpMM applies the operator to every new basis column.
      const size_t bw = basis.size() - base;
      PackBlock(basis, base, bw, n, packed_x);
      packed_y.resize(packed_x.size());
      op.ApplyBlock(static_cast<int64_t>(bw), packed_x, packed_y);
      result.matvecs += static_cast<int64_t>(bw);
      ++result.spmm_calls;
      for (size_t c = 0; c < bw; ++c) {
        Vector y(static_cast<size_t>(n));
        for (int64_t j = 0; j < n; ++j) {
          y[static_cast<size_t>(j)] =
              packed_y[static_cast<size_t>(j) * bw + c];
        }
        applied.push_back(std::move(y));
      }
      candidate.assign(applied.begin() + static_cast<int64_t>(base),
                       applied.end());
      OrthogonalizeBlockAgainst(deflate, candidate, pool, panels);
      OrthogonalizeBlockAgainst(locked, candidate, pool, panels);
      OrthogonalizeBlockAgainst(basis, candidate, pool, panels);
      OrthonormalizeBlock(candidate, /*drop_tol=*/1e-10, pool, panels);
      // Re-clean at unit scale. Near convergence the remainder above is
      // tiny, so normalizing it amplifies the projections' rounding —
      // including the deflated kernel direction, which is the operator's
      // *largest* eigenvalue on shift*I - L and would otherwise leak back
      // in and get "found". A second pass over everything at unit norm
      // pins the pollution back to machine epsilon; columns that lose half
      // their mass here were junk and are dropped.
      OrthogonalizeBlockAgainst(deflate, candidate, pool, panels);
      OrthogonalizeBlockAgainst(locked, candidate, pool, panels);
      OrthogonalizeBlockAgainst(basis, candidate, pool, panels);
      OrthonormalizeBlock(candidate, /*drop_tol=*/0.5, pool, panels);
      if (candidate.empty()) exhausted = true;
    }
    const int64_t m = static_cast<int64_t>(basis.size());
    SPECTRAL_CHECK_GT(m, 0);

    // --- Rayleigh-Ritz on the projected dense matrix H = V^T A V. Row i's
    // task writes only At(i, j) and its mirror At(j, i) for j >= i — every
    // cell is written by exactly one task, so rows parallelize race-free
    // and each Dot runs serially: bit-identical for any pool size.
    DenseMatrix h(m, m);
    const auto fill_row = [&](int64_t i) {
      for (int64_t j = i; j < m; ++j) {
        const double hij = (Dot(basis[static_cast<size_t>(i)],
                                applied[static_cast<size_t>(j)]) +
                            Dot(basis[static_cast<size_t>(j)],
                                applied[static_cast<size_t>(i)])) /
                           2.0;
        h.At(i, j) = hij;
        h.At(j, i) = hij;
      }
    };
    if (pool != nullptr && pool->num_threads() >= 2 && m >= 2) {
      pool->ParallelFor(0, m, 1, fill_row);
    } else {
      for (int64_t i = 0; i < m; ++i) fill_row(i);
    }
    auto eig = JacobiEigenSolve(h);
    if (!eig.ok()) return eig.status();

    // Assemble the top Ritz pairs (descending), enough for the restart
    // block; A z comes free from the stored applied columns.
    const int64_t assemble = std::min<int64_t>(m, width);
    ritz.assign(static_cast<size_t>(assemble), RitzPair{});
    for (int64_t k = 0; k < assemble; ++k) {
      RitzPair& pair = ritz[static_cast<size_t>(k)];
      const int64_t col = m - 1 - k;
      pair.theta = eig->eigenvalues[static_cast<size_t>(col)];
      pair.z.assign(static_cast<size_t>(n), 0.0);
      Vector az(static_cast<size_t>(n), 0.0);
      for (int64_t i = 0; i < m; ++i) {
        const double u = eig->eigenvectors.At(i, col);
        Axpy(u, basis[static_cast<size_t>(i)], pair.z);
        Axpy(u, applied[static_cast<size_t>(i)], az);
      }
      const double norm = Normalize(pair.z);
      if (norm > 0.0) Scale(1.0 / norm, az);
      Axpy(-pair.theta, pair.z, az);
      pair.residual = Norm2(az);
    }

    // --- Lock the converged prefix, in descending order only, so the
    // accepted pairs are guaranteed to be the extremal ones in sequence.
    int64_t newly_locked = 0;
    while (newly_locked < remaining && newly_locked < assemble) {
      RitzPair& pair = ritz[static_cast<size_t>(newly_locked)];
      const double scale = std::max(std::fabs(pair.theta), 1.0);
      // On Krylov exhaustion span(V) is invariant under A (up to drop_tol),
      // so the Ritz pairs are exact on the reachable subspace: accept them,
      // mirroring the scalar solver's breakdown path.
      if (pair.residual > options.tol * scale && !exhausted) break;
      locked_vals.push_back(pair.theta);
      locked_res.push_back(pair.residual);
      locked.push_back(std::move(pair.z));
      ++newly_locked;
    }
    if (static_cast<int64_t>(locked.size()) >= want) {
      result.converged = true;
      break;
    }

    // --- Restart from the best unconverged Ritz vectors (thick restart:
    // the dense Rayleigh-Ritz above accepts any starting subspace).
    x_block.clear();
    double worst_residual = 0.0;
    double wanted_theta_min = 0.0;
    const int64_t still_wanted = want - static_cast<int64_t>(locked.size());
    for (int64_t k = newly_locked; k < assemble; ++k) {
      RitzPair& pair = ritz[static_cast<size_t>(k)];
      if (k - newly_locked < still_wanted) {
        worst_residual = std::max(worst_residual, pair.residual);
        wanted_theta_min = pair.theta;
      }
      // Copied, not moved: `ritz` doubles as the best-effort answer when
      // max_restarts runs out below.
      x_block.push_back(pair.z);
    }

    // --- Chebyshev acceleration: when the residual is still far from tol,
    // damp the unwanted interval [lo, cut] on the restart block. The cut is
    // the best available estimate of the first unwanted eigenvalue: the
    // largest Ritz value below the restart set.
    const int64_t cut_col = m - 1 - assemble;
    if (options.cheb_degree_max > 0 && cut_col >= 0 && !x_block.empty()) {
      const double lo = options.op_lower_bound;
      const double cut = eig->eigenvalues[static_cast<size_t>(cut_col)];
      const double scale = std::max(std::fabs(wanted_theta_min), 1.0);
      if (cut > lo && wanted_theta_min > cut &&
          worst_residual > options.tol * scale) {
        const double t_wanted = (2.0 * wanted_theta_min - cut - lo) /
                                (cut - lo);
        if (t_wanted > 1.0 + 1e-12) {
          // Degree that closes the remaining residual/tol gap (aiming one
          // decade below tol), capped by the option.
          const double gain = std::clamp(
              worst_residual / (0.1 * options.tol * scale), 1.0, 1e14);
          const int degree = static_cast<int>(std::ceil(
              std::acosh(gain) / std::acosh(t_wanted)));
          if (degree >= 2) {
            const int64_t before = result.matvecs;
            ChebyshevFilterBlock(op, lo, cut,
                                 std::min(degree, options.cheb_degree_max),
                                 x_block, result.matvecs,
                                 result.spmm_calls);
            result.cheb_matvecs += result.matvecs - before;
          }
        }
      }
    }

    OrthogonalizeBlockAgainst(deflate, x_block, pool, panels);
    OrthogonalizeBlockAgainst(locked, x_block, pool, panels);
    OrthonormalizeBlock(x_block, /*drop_tol=*/1e-10, pool, panels);
    if (!PadBlockRandom(n, width, deflate, locked, x_block, rng)) {
      if (locked.empty()) {
        return InternalError("block Lanczos lost the search subspace");
      }
      break;  // complement exhausted: report what is locked
    }
  }

  // Best effort: top up with the freshest (unconverged) Ritz pairs so the
  // caller still sees `want` pairs with honest residuals.
  if (!result.converged) {
    for (RitzPair& pair : ritz) {
      if (static_cast<int64_t>(locked.size()) >= want) break;
      if (pair.z.empty()) continue;
      locked_vals.push_back(pair.theta);
      locked_res.push_back(pair.residual);
      locked.push_back(std::move(pair.z));
    }
  }
  result.eigenvalues = std::move(locked_vals);
  result.eigenvectors = std::move(locked);
  result.residuals = std::move(locked_res);
  return result;
}

}  // namespace spectral
