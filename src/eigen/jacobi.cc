#include "eigen/jacobi.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace spectral {

namespace {

// Frobenius norm of the strictly off-diagonal part.
double OffDiagonalNorm(const DenseMatrix& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      if (i != j) acc += a.At(i, j) * a.At(i, j);
    }
  }
  return std::sqrt(acc);
}

double FrobeniusNorm(const DenseMatrix& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) acc += a.At(i, j) * a.At(i, j);
  }
  return std::sqrt(acc);
}

}  // namespace

StatusOr<DenseEigenResult> JacobiEigenSolve(const DenseMatrix& input,
                                            const JacobiOptions& options) {
  if (input.rows() != input.cols()) {
    return InvalidArgumentError("Jacobi requires a square matrix");
  }
  const int64_t n = input.rows();
  if (n == 0) {
    return InvalidArgumentError("Jacobi requires a non-empty matrix");
  }
  if (input.SymmetryError() > 1e-10) {
    return InvalidArgumentError("Jacobi requires a symmetric matrix");
  }

  DenseMatrix a = input;  // working copy, mutated towards diagonal form
  DenseMatrix v = DenseMatrix::Identity(n);
  const double norm = FrobeniusNorm(a);
  const double threshold = options.tol * std::max(norm, 1e-300);

  int sweep = 0;
  for (; sweep < options.max_sweeps; ++sweep) {
    if (OffDiagonalNorm(a) <= threshold) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // A <- J^T A J with the rotation in the (p, q) plane.
        for (int64_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        // Accumulate V <- V J.
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (OffDiagonalNorm(a) > threshold) {
    return InternalError("Jacobi did not converge within max_sweeps");
  }

  // Sort eigenpairs ascending.
  std::vector<int64_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](int64_t x, int64_t y) {
    return a.At(x, x) < a.At(y, y);
  });

  DenseEigenResult result;
  result.sweeps = sweep;
  result.eigenvalues.resize(static_cast<size_t>(n));
  result.eigenvectors = DenseMatrix(n, n);
  for (int64_t k = 0; k < n; ++k) {
    result.eigenvalues[static_cast<size_t>(k)] = a.At(perm[static_cast<size_t>(k)], perm[static_cast<size_t>(k)]);
    for (int64_t i = 0; i < n; ++i) {
      result.eigenvectors.At(i, k) = v.At(i, perm[static_cast<size_t>(k)]);
    }
  }
  return result;
}

}  // namespace spectral
