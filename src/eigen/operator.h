// Abstract matrix-free linear operator. The Lanczos solver only needs
// y = A x, which lets it run on the Laplacian itself or on spectral
// transformations of it without materializing new matrices.

#ifndef SPECTRAL_LPM_EIGEN_OPERATOR_H_
#define SPECTRAL_LPM_EIGEN_OPERATOR_H_

#include <cstdint>
#include <span>

#include "linalg/sparse_matrix.h"

namespace spectral {

class ThreadPool;

/// Below this many rows a matvec is not worth partitioning; shared with
/// core/spectral_lpm.cc's "is a pool worth spawning" gate so the two sites
/// cannot drift apart.
inline constexpr int64_t kDefaultMinParallelRows = 2048;

/// Square linear operator interface.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Dimension n of the operator (n x n).
  virtual int64_t Dim() const = 0;

  /// y = A x; x and y have size Dim() and must not alias.
  virtual void Apply(std::span<const double> x, std::span<double> y) const = 0;

  /// Multi-vector apply on packed row-major blocks of `width` columns
  /// (x[j * width + c] is column c of row j): y_c = A x_c for every c.
  /// The default unpacks and calls Apply() per column; subclasses override
  /// with a fused kernel. Results must be bit-identical to `width`
  /// independent Apply() calls — the block eigensolver's byte-identity
  /// contract across parallelism levels depends on it.
  virtual void ApplyBlock(int64_t width, std::span<const double> x,
                          std::span<double> y) const;

  /// Strided multi-vector apply on packed panels with arbitrary leading
  /// dimensions (x[j * x_ld + c] is column c of row j, c < width <= x_ld):
  /// consumes a panel of a larger packed basis (linalg/packed_basis.h) in
  /// place. The default packs into a dense block, calls ApplyBlock, and
  /// unpacks; subclasses override with a truly strided kernel. The same
  /// bit-identity contract as ApplyBlock applies.
  virtual void ApplyPanel(int64_t width, const double* x, int64_t x_ld,
                          double* y, int64_t y_ld) const;

  /// Deterministic flop count of one Apply() (2 flops per stored nonzero
  /// plus any transformation overhead); 0 when unknown. Feeds the kernel
  /// profiler's machine-independent flop counters, never the arithmetic.
  virtual int64_t FlopsPerApply() const { return 0; }
};

/// Wraps a CSR matrix; requires a square matrix. With a thread pool the
/// matvec is row-partitioned across the pool's workers; each output entry
/// is accumulated by exactly one thread in the same order as the serial
/// code, so parallel and serial results are bit-identical.
class SparseOperator : public LinearOperator {
 public:
  /// Does not take ownership; `matrix` (and `pool`, when non-null) must
  /// outlive the operator. A null pool or a matrix smaller than
  /// `min_parallel_rows` keeps the serial path.
  explicit SparseOperator(const SparseMatrix* matrix,
                          ThreadPool* pool = nullptr,
                          int64_t min_parallel_rows = kDefaultMinParallelRows);

  int64_t Dim() const override;
  void Apply(std::span<const double> x, std::span<double> y) const override;
  /// One pass over the CSR structure serves all `width` columns
  /// (MatVecRowsBlock), row-partitioned over the pool like Apply.
  void ApplyBlock(int64_t width, std::span<const double> x,
                  std::span<double> y) const override;
  /// Strided SpMM (MatVecRowsPanel), row-partitioned over the pool like
  /// Apply/ApplyBlock.
  void ApplyPanel(int64_t width, const double* x, int64_t x_ld, double* y,
                  int64_t y_ld) const override;
  int64_t FlopsPerApply() const override;

 private:
  const SparseMatrix* matrix_;
  ThreadPool* pool_;
  int64_t min_parallel_rows_;
};

/// y = shift * x - A x. With shift >= lambda_max(A) this maps the smallest
/// eigenvalues of a symmetric A to the largest eigenvalues of the operator,
/// which is how the Fiedler pair is made extremal for Lanczos.
class ShiftNegateOperator : public LinearOperator {
 public:
  /// Does not take ownership; `inner` must outlive the operator.
  ShiftNegateOperator(const LinearOperator* inner, double shift);

  int64_t Dim() const override;
  void Apply(std::span<const double> x, std::span<double> y) const override;
  void ApplyBlock(int64_t width, std::span<const double> x,
                  std::span<double> y) const override;
  void ApplyPanel(int64_t width, const double* x, int64_t x_ld, double* y,
                  int64_t y_ld) const override;
  int64_t FlopsPerApply() const override;

  double shift() const { return shift_; }

 private:
  const LinearOperator* inner_;
  double shift_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_EIGEN_OPERATOR_H_
