#include "eigen/warm_start.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "eigen/block_lanczos.h"
#include "eigen/jacobi.h"
#include "eigen/operator.h"
#include "linalg/dense_matrix.h"
#include "util/check.h"

namespace spectral {

namespace {

Vector OnesKernel(int64_t n) {
  return Vector(static_cast<size_t>(n),
                1.0 / std::sqrt(static_cast<double>(n)));
}

// `steps` sweeps of weighted Jacobi on the eigen-residual L x - rho(x) x:
// the classic multigrid smoother, damping exactly the high-frequency error
// that piecewise-constant prolongation introduces.
void JacobiSmoothBlock(const SparseMatrix& lap, int steps, double omega,
                       VectorBlock& block, int64_t& matvecs) {
  const int64_t n = lap.rows();
  const Vector diag = lap.Diagonal();
  Vector inv_diag(static_cast<size_t>(n), 0.0);
  for (size_t i = 0; i < inv_diag.size(); ++i) {
    if (diag[i] > 0.0) inv_diag[i] = 1.0 / diag[i];
  }
  Vector y(static_cast<size_t>(n));
  for (int step = 0; step < steps; ++step) {
    for (Vector& x : block) {
      lap.MatVec(x, y);
      ++matvecs;
      const double norm2 = Dot(x, x);
      if (norm2 <= 0.0) continue;
      const double rho = Dot(x, y) / norm2;
      for (size_t i = 0; i < x.size(); ++i) {
        x[i] -= omega * inv_diag[i] * (y[i] - rho * x[i]);
      }
    }
  }
}

// Loose-tolerance polish of `block` against this level's Laplacian. Best
// effort by design: a non-converged (or failed) polish leaves the smoothed
// block in place — the warm start must never be able to sink the solve.
void PolishBlock(const SparseMatrix& lap, const WarmStartOptions& options,
                 VectorBlock& block, int64_t& matvecs) {
  const int64_t n = lap.rows();
  const double shift = lap.GershgorinBound() * 1.0001 + 1e-12;
  SparseOperator lap_op(&lap);
  const ShiftNegateOperator op(&lap_op, shift);
  std::vector<Vector> deflate;
  deflate.push_back(OnesKernel(n));

  BlockLanczosOptions lopt;
  lopt.num_pairs = static_cast<int>(block.size());
  lopt.block_size = static_cast<int>(block.size()) + 2;
  lopt.max_basis = options.level_max_basis;
  lopt.max_restarts = options.level_max_restarts;
  lopt.tol = options.level_tol;
  lopt.seed = options.seed;
  lopt.cheb_degree_max = options.cheb_degree_max;
  lopt.start = block;
  auto polished = LargestEigenpairsBlock(op, deflate, lopt);
  if (!polished.ok()) return;
  matvecs += polished->matvecs;
  if (polished->eigenvectors.empty()) return;
  // Largest theta of shift*I - L first == ascending Laplacian eigenvalues.
  block = std::move(polished->eigenvectors);
}

}  // namespace

StatusOr<WarmStartResult> MultilevelFiedlerWarmStart(
    std::span<const WarmStartLevel> levels, const WarmStartOptions& options) {
  if (levels.empty()) {
    return InvalidArgumentError("warm start needs at least one level");
  }
  SPECTRAL_CHECK_GE(options.num_vectors, 1);
  for (size_t k = 0; k + 1 < levels.size(); ++k) {
    SPECTRAL_CHECK_EQ(static_cast<int64_t>(levels[k].fine_to_coarse.size()),
                      levels[k].laplacian.rows())
        << "level " << k << " fine_to_coarse does not match its Laplacian";
  }

  WarmStartResult result;
  result.levels = static_cast<int>(levels.size());

  // --- Coarsest solve.
  const SparseMatrix& coarsest = levels.back().laplacian;
  const int64_t cn = coarsest.rows();
  if (cn < 2) {
    return InvalidArgumentError("coarsest level has fewer than 2 vertices");
  }
  const int64_t vectors = std::min<int64_t>(options.num_vectors, cn - 1);
  VectorBlock block;
  if (cn <= options.dense_limit) {
    auto eig = JacobiEigenSolve(DenseMatrix::FromSparse(coarsest));
    if (!eig.ok()) return eig.status();
    const double zero_tol = 1e-8 * std::max(1.0, coarsest.GershgorinBound());
    if (eig->eigenvalues[0] >= zero_tol) {
      return InternalError(
          "coarsest Laplacian has no zero eigenvalue; not a Laplacian?");
    }
    if (cn > 1 && eig->eigenvalues[1] < zero_tol) {
      return FailedPreconditionError(
          "Laplacian has multiple zero eigenvalues: graph is disconnected");
    }
    for (int64_t k = 0; k < vectors; ++k) {
      Vector v(static_cast<size_t>(cn));
      for (int64_t i = 0; i < cn; ++i) {
        v[static_cast<size_t>(i)] = eig->eigenvectors.At(i, 1 + k);
      }
      block.push_back(std::move(v));
    }
  } else {
    // Matching stalled before reaching dense size: cold loose block solve.
    const double shift = coarsest.GershgorinBound() * 1.0001 + 1e-12;
    SparseOperator lap_op(&coarsest);
    const ShiftNegateOperator op(&lap_op, shift);
    std::vector<Vector> deflate;
    deflate.push_back(OnesKernel(cn));
    BlockLanczosOptions lopt;
    lopt.num_pairs = static_cast<int>(vectors);
    lopt.max_basis = options.level_max_basis;
    // This is the only solve the coarsest level gets, so it needs a real
    // restart budget even when the per-level polish is disabled
    // (level_max_restarts == 0, the default).
    lopt.max_restarts = std::max(options.level_max_restarts, 4);
    lopt.tol = options.level_tol;
    lopt.seed = options.seed;
    lopt.cheb_degree_max = options.cheb_degree_max;
    auto coarse = LargestEigenpairsBlock(op, deflate, lopt);
    if (!coarse.ok()) return coarse.status();
    result.matvecs += coarse->matvecs;
    block = std::move(coarse->eigenvectors);
    const double zero_tol = 1e-8 * std::max(1.0, coarsest.GershgorinBound());
    if (!coarse->eigenvalues.empty() &&
        shift - coarse->eigenvalues[0] < zero_tol) {
      return FailedPreconditionError(
          "Laplacian has multiple zero eigenvalues: graph is disconnected");
    }
  }

  // --- Ascend: prolong, smooth, loosely polish every intermediate level.
  for (size_t k = levels.size() - 1; k-- > 0;) {
    const SparseMatrix& lap = levels[k].laplacian;
    const std::vector<int64_t>& map = levels[k].fine_to_coarse;
    const int64_t n = lap.rows();
    for (Vector& column : block) {
      Vector fine(static_cast<size_t>(n));
      for (int64_t v = 0; v < n; ++v) {
        fine[static_cast<size_t>(v)] =
            column[static_cast<size_t>(map[static_cast<size_t>(v)])];
      }
      column = std::move(fine);
    }
    JacobiSmoothBlock(lap, options.smooth_steps, options.jacobi_omega, block,
                      result.matvecs);
    std::vector<Vector> kernel;
    kernel.push_back(OnesKernel(n));
    OrthogonalizeBlockAgainst(kernel, block);
    OrthonormalizeBlock(block);
    if (block.empty()) break;  // degenerate smoothing collapse: cold start
    if (k > 0 && options.level_max_restarts > 0 && options.level_tol > 0) {
      PolishBlock(lap, options, block, result.matvecs);
    }
  }

  result.block = std::move(block);
  return result;
}

}  // namespace spectral
