// Multilevel warm start for the block Fiedler solver: dense-solve the
// coarsest Laplacian of a Galerkin (heavy-edge-matching) hierarchy, then
// prolong the smallest non-trivial eigenvector block level by level —
// piecewise-constant interpolation, weighted-Jacobi smoothing, and a small
// *loose-tolerance* block-Lanczos polish per intermediate level (adaptive
// tolerance: every level below the finest is only a warm start for the
// next one, so it never pays for full accuracy; only the caller's finest
// solve does). Coarse Laplacian spectra transfer well to the fine graph
// (Druskin et al., distance-preserving model order reduction of
// graph-Laplacians), which is why the finest solve then merely polishes.
//
// This unit is deliberately graph-agnostic: it consumes per-level
// Laplacians plus fine-to-coarse index maps. core/ assembles those from
// graph/coarsening.h's BuildCoarseningHierarchy so the multilevel engine
// and the exact solver share one hierarchy build.

#ifndef SPECTRAL_LPM_EIGEN_WARM_START_H_
#define SPECTRAL_LPM_EIGEN_WARM_START_H_

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/block_ops.h"
#include "linalg/sparse_matrix.h"
#include "util/status.h"

namespace spectral {

/// One level of the hierarchy, finest first.
struct WarmStartLevel {
  /// The Laplacian of this level's graph.
  SparseMatrix laplacian;
  /// Maps this level's vertices into the next (coarser) level; empty at
  /// the coarsest level. Size must equal laplacian.rows() when non-empty.
  std::vector<int64_t> fine_to_coarse;
};

/// Tuning knobs for MultilevelFiedlerWarmStart.
struct WarmStartOptions {
  /// Eigenvector block width to carry up the hierarchy (the caller's
  /// num_pairs: enough columns to span a degenerate lambda2 eigenspace).
  int num_vectors = 3;
  /// Weighted-Jacobi smoothing steps applied after each prolongation.
  int smooth_steps = 2;
  double jacobi_omega = 2.0 / 3.0;
  /// Loose residual tolerance for the optional per-level polish solves
  /// (adaptive tolerance: intermediate levels never pay for accuracy the
  /// next prolongation would destroy anyway). The finest level is never
  /// polished here — that is the caller's full-accuracy solve.
  double level_tol = 1e-4;
  int level_max_basis = 24;
  /// Restart budget per level polish; 0 (the default) skips the polish and
  /// ascends on smoothing alone — below ~10^5 vertices the smoothed block
  /// is already good enough that polish matvecs do not buy restarts.
  int level_max_restarts = 0;
  /// Chebyshev budget handed to the per-level polish solves.
  int cheb_degree_max = 120;
  uint64_t seed = 0x3a9b7c0ffeeull;
  /// Largest coarsest-level size still solved with the dense reference;
  /// beyond it (heavy-edge matching stalled very early) the coarsest level
  /// falls back to a cold loose block solve.
  int64_t dense_limit = 512;
};

/// Output of MultilevelFiedlerWarmStart.
struct WarmStartResult {
  /// num_vectors orthonormal columns at the finest level, orthogonal to
  /// the all-ones kernel: an approximation of the smallest non-trivial
  /// eigenvector block, ready for BlockLanczosOptions::start.
  VectorBlock block;
  /// Laplacian matvecs spent across all levels (smoothing + polish).
  int64_t matvecs = 0;
  /// Number of hierarchy levels walked (1 = no coarsening happened).
  int levels = 0;
};

/// Runs the coarsen-solve-prolong-smooth cascade over `levels` (finest
/// first; levels[k].fine_to_coarse maps into levels[k+1]). Returns
/// FailedPrecondition when the coarsest solve reveals a disconnected graph
/// (a second near-zero eigenvalue): the hierarchy preserves
/// connectivity, so the input graph is disconnected too.
StatusOr<WarmStartResult> MultilevelFiedlerWarmStart(
    std::span<const WarmStartLevel> levels,
    const WarmStartOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_EIGEN_WARM_START_H_
