#include "eigen/operator.h"

#include "util/check.h"

namespace spectral {

SparseOperator::SparseOperator(const SparseMatrix* matrix) : matrix_(matrix) {
  SPECTRAL_CHECK(matrix != nullptr);
  SPECTRAL_CHECK_EQ(matrix->rows(), matrix->cols());
}

int64_t SparseOperator::Dim() const { return matrix_->rows(); }

void SparseOperator::Apply(std::span<const double> x,
                           std::span<double> y) const {
  matrix_->MatVec(x, y);
}

ShiftNegateOperator::ShiftNegateOperator(const LinearOperator* inner,
                                         double shift)
    : inner_(inner), shift_(shift) {
  SPECTRAL_CHECK(inner != nullptr);
}

int64_t ShiftNegateOperator::Dim() const { return inner_->Dim(); }

void ShiftNegateOperator::Apply(std::span<const double> x,
                                std::span<double> y) const {
  inner_->Apply(x, y);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = shift_ * x[i] - y[i];
  }
}

}  // namespace spectral
