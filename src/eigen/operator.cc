#include "eigen/operator.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace spectral {

SparseOperator::SparseOperator(const SparseMatrix* matrix, ThreadPool* pool,
                               int64_t min_parallel_rows)
    : matrix_(matrix), pool_(pool), min_parallel_rows_(min_parallel_rows) {
  SPECTRAL_CHECK(matrix != nullptr);
  SPECTRAL_CHECK_EQ(matrix->rows(), matrix->cols());
}

int64_t SparseOperator::Dim() const { return matrix_->rows(); }

void SparseOperator::Apply(std::span<const double> x,
                           std::span<double> y) const {
  const int64_t rows = matrix_->rows();
  if (pool_ == nullptr || pool_->num_threads() < 2 ||
      rows < min_parallel_rows_) {
    matrix_->MatVec(x, y);
    return;
  }
  // One chunk per worker plus the caller; each chunk covers a disjoint row
  // range, so the partition only decides who computes which rows.
  const int64_t num_chunks = pool_->num_threads() + 1;
  const int64_t chunk_rows = (rows + num_chunks - 1) / num_chunks;
  pool_->ParallelFor(0, num_chunks, 1, [&](int64_t chunk) {
    const int64_t first = chunk * chunk_rows;
    const int64_t last = std::min(rows, first + chunk_rows);
    if (first < last) matrix_->MatVecRows(first, last, x, y);
  });
}

ShiftNegateOperator::ShiftNegateOperator(const LinearOperator* inner,
                                         double shift)
    : inner_(inner), shift_(shift) {
  SPECTRAL_CHECK(inner != nullptr);
}

int64_t ShiftNegateOperator::Dim() const { return inner_->Dim(); }

void ShiftNegateOperator::Apply(std::span<const double> x,
                                std::span<double> y) const {
  inner_->Apply(x, y);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = shift_ * x[i] - y[i];
  }
}

}  // namespace spectral
