#include "eigen/operator.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace spectral {

void LinearOperator::ApplyBlock(int64_t width, std::span<const double> x,
                                std::span<double> y) const {
  const int64_t n = Dim();
  SPECTRAL_CHECK_GE(width, 1);
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(x.size()), n * width);
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(y.size()), n * width);
  std::vector<double> xc(static_cast<size_t>(n));
  std::vector<double> yc(static_cast<size_t>(n));
  for (int64_t c = 0; c < width; ++c) {
    for (int64_t j = 0; j < n; ++j) {
      xc[static_cast<size_t>(j)] = x[static_cast<size_t>(j * width + c)];
    }
    Apply(xc, yc);
    for (int64_t j = 0; j < n; ++j) {
      y[static_cast<size_t>(j * width + c)] = yc[static_cast<size_t>(j)];
    }
  }
}

void LinearOperator::ApplyPanel(int64_t width, const double* x, int64_t x_ld,
                                double* y, int64_t y_ld) const {
  const int64_t n = Dim();
  SPECTRAL_CHECK_GE(width, 1);
  SPECTRAL_CHECK_GE(x_ld, width);
  SPECTRAL_CHECK_GE(y_ld, width);
  std::vector<double> xb(static_cast<size_t>(n * width));
  std::vector<double> yb(static_cast<size_t>(n * width));
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t c = 0; c < width; ++c) {
      xb[static_cast<size_t>(j * width + c)] = x[j * x_ld + c];
    }
  }
  ApplyBlock(width, xb, yb);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t c = 0; c < width; ++c) {
      y[j * y_ld + c] = yb[static_cast<size_t>(j * width + c)];
    }
  }
}

SparseOperator::SparseOperator(const SparseMatrix* matrix, ThreadPool* pool,
                               int64_t min_parallel_rows)
    : matrix_(matrix), pool_(pool), min_parallel_rows_(min_parallel_rows) {
  SPECTRAL_CHECK(matrix != nullptr);
  SPECTRAL_CHECK_EQ(matrix->rows(), matrix->cols());
}

int64_t SparseOperator::Dim() const { return matrix_->rows(); }

void SparseOperator::Apply(std::span<const double> x,
                           std::span<double> y) const {
  const int64_t rows = matrix_->rows();
  if (pool_ == nullptr || pool_->num_threads() < 2 ||
      rows < min_parallel_rows_) {
    matrix_->MatVec(x, y);
    return;
  }
  // One chunk per worker plus the caller; each chunk covers a disjoint row
  // range, so the partition only decides who computes which rows.
  const int64_t num_chunks = pool_->num_threads() + 1;
  const int64_t chunk_rows = (rows + num_chunks - 1) / num_chunks;
  pool_->ParallelFor(0, num_chunks, 1, [&](int64_t chunk) {
    const int64_t first = chunk * chunk_rows;
    const int64_t last = std::min(rows, first + chunk_rows);
    if (first < last) matrix_->MatVecRows(first, last, x, y);
  });
}

void SparseOperator::ApplyBlock(int64_t width, std::span<const double> x,
                                std::span<double> y) const {
  const int64_t rows = matrix_->rows();
  if (pool_ == nullptr || pool_->num_threads() < 2 ||
      rows < min_parallel_rows_) {
    matrix_->MatVecRowsBlock(0, rows, width, x, y);
    return;
  }
  // Same row partition as Apply: each output row is accumulated by exactly
  // one thread in the serial order, so the result is bit-identical to the
  // serial SpMM (and hence to per-column MatVec) for any pool size.
  const int64_t num_chunks = pool_->num_threads() + 1;
  const int64_t chunk_rows = (rows + num_chunks - 1) / num_chunks;
  pool_->ParallelFor(0, num_chunks, 1, [&](int64_t chunk) {
    const int64_t first = chunk * chunk_rows;
    const int64_t last = std::min(rows, first + chunk_rows);
    if (first < last) matrix_->MatVecRowsBlock(first, last, width, x, y);
  });
}

void SparseOperator::ApplyPanel(int64_t width, const double* x, int64_t x_ld,
                                double* y, int64_t y_ld) const {
  const int64_t rows = matrix_->rows();
  if (pool_ == nullptr || pool_->num_threads() < 2 ||
      rows < min_parallel_rows_) {
    matrix_->MatVecRowsPanel(0, rows, width, x, x_ld, y, y_ld);
    return;
  }
  // Same row partition as Apply/ApplyBlock: each output row is accumulated
  // by exactly one thread in the serial order, so the result is
  // bit-identical to the serial strided SpMM for any pool size.
  const int64_t num_chunks = pool_->num_threads() + 1;
  const int64_t chunk_rows = (rows + num_chunks - 1) / num_chunks;
  pool_->ParallelFor(0, num_chunks, 1, [&](int64_t chunk) {
    const int64_t first = chunk * chunk_rows;
    const int64_t last = std::min(rows, first + chunk_rows);
    if (first < last) {
      matrix_->MatVecRowsPanel(first, last, width, x, x_ld, y, y_ld);
    }
  });
}

int64_t SparseOperator::FlopsPerApply() const { return 2 * matrix_->nnz(); }

ShiftNegateOperator::ShiftNegateOperator(const LinearOperator* inner,
                                         double shift)
    : inner_(inner), shift_(shift) {
  SPECTRAL_CHECK(inner != nullptr);
}

int64_t ShiftNegateOperator::Dim() const { return inner_->Dim(); }

void ShiftNegateOperator::Apply(std::span<const double> x,
                                std::span<double> y) const {
  inner_->Apply(x, y);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = shift_ * x[i] - y[i];
  }
}

void ShiftNegateOperator::ApplyBlock(int64_t width, std::span<const double> x,
                                     std::span<double> y) const {
  inner_->ApplyBlock(width, x, y);
  const double shift = shift_;
  const double* __restrict xr = x.data();
  double* __restrict yw = y.data();
  const size_t total = y.size();
  for (size_t i = 0; i < total; ++i) {
    yw[i] = shift * xr[i] - yw[i];
  }
}

void ShiftNegateOperator::ApplyPanel(int64_t width, const double* x,
                                     int64_t x_ld, double* y,
                                     int64_t y_ld) const {
  inner_->ApplyPanel(width, x, x_ld, y, y_ld);
  const double shift = shift_;
  const int64_t n = inner_->Dim();
  // Element-wise, so the row/column walk order is irrelevant to the
  // result; matches ApplyBlock's flat loop value for value.
  for (int64_t j = 0; j < n; ++j) {
    const double* xr = x + j * x_ld;
    double* yw = y + j * y_ld;
    for (int64_t c = 0; c < width; ++c) {
      yw[c] = shift * xr[c] - yw[c];
    }
  }
}

int64_t ShiftNegateOperator::FlopsPerApply() const {
  return inner_->FlopsPerApply() + 2 * inner_->Dim();
}

}  // namespace spectral
