#include "storage/page_map.h"

#include <algorithm>

#include "util/check.h"

namespace spectral {

PageMap::PageMap(int64_t page_size) : page_size_(page_size) {
  SPECTRAL_CHECK_GE(page_size, 1);
}

int64_t PageMap::PageOfRank(int64_t rank) const {
  SPECTRAL_DCHECK_GE(rank, 0);
  return rank / page_size_;
}

int64_t PageMap::NumPages(int64_t num_records) const {
  SPECTRAL_CHECK_GE(num_records, 0);
  return (num_records + page_size_ - 1) / page_size_;
}

PageFootprint ComputePageFootprint(std::span<const int64_t> ranks,
                                   const PageMap& pages) {
  PageFootprint fp;
  if (ranks.empty()) return fp;
  std::vector<int64_t> page_ids;
  page_ids.reserve(ranks.size());
  for (int64_t r : ranks) page_ids.push_back(pages.PageOfRank(r));
  std::sort(page_ids.begin(), page_ids.end());
  page_ids.erase(std::unique(page_ids.begin(), page_ids.end()),
                 page_ids.end());
  fp.distinct_pages = static_cast<int64_t>(page_ids.size());
  fp.page_runs = 1;
  for (size_t i = 1; i < page_ids.size(); ++i) {
    if (page_ids[i] != page_ids[i - 1] + 1) fp.page_runs += 1;
  }
  return fp;
}

}  // namespace spectral
