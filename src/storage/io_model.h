// A simple disk cost model: a seek per sequential segment plus a transfer
// per page. Turns the footprint metrics into an I/O time estimate so
// benches can report a single cost number per mapping.

#ifndef SPECTRAL_LPM_STORAGE_IO_MODEL_H_
#define SPECTRAL_LPM_STORAGE_IO_MODEL_H_

#include "storage/page_map.h"

namespace spectral {

/// Relative device costs (defaults roughly model a 2000s-era disk where one
/// seek buys ~40 sequential page transfers).
///
/// Determinism contract: IoCost is pure arithmetic on footprint counters —
/// identical inputs give bit-identical costs on any machine, so modeled
/// costs (unlike wall-clock) are safe to commit as bench baselines.
struct IoCostModel {
  double seek_cost = 40.0;
  double transfer_cost = 1.0;
};

/// Cost of reading a query's pages: page_runs seeks + distinct_pages
/// transfers.
double IoCost(const PageFootprint& footprint, const IoCostModel& model = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_STORAGE_IO_MODEL_H_
