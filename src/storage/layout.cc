#include "storage/layout.h"

#include <algorithm>

#include "util/check.h"

namespace spectral {

StorageLayout::StorageLayout(const LinearOrder& order, int64_t page_size)
    : page_size_(page_size) {
  SPECTRAL_CHECK_GE(page_size, 1);
  const int64_t n = order.size();
  point_of_rank_.resize(static_cast<size_t>(n));
  rank_of_point_.resize(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    const int64_t p = order.PointAtRank(r);
    point_of_rank_[static_cast<size_t>(r)] = p;
    rank_of_point_[static_cast<size_t>(p)] = r;
  }
}

int64_t StorageLayout::num_pages() const {
  return (num_records() + page_size_ - 1) / page_size_;
}

std::span<const int64_t> StorageLayout::PointsOnPage(int64_t page) const {
  SPECTRAL_CHECK_GE(page, 0);
  SPECTRAL_CHECK_LT(page, num_pages());
  const int64_t begin = page * page_size_;
  const int64_t end = std::min<int64_t>(begin + page_size_, num_records());
  return std::span<const int64_t>(point_of_rank_.data() + begin,
                                  static_cast<size_t>(end - begin));
}

int64_t StorageLayout::PageOfRank(int64_t rank) const {
  SPECTRAL_CHECK_GE(rank, 0);
  SPECTRAL_CHECK_LT(rank, num_records());
  return rank / page_size_;
}

int64_t StorageLayout::PageOfPoint(int64_t point) const {
  return RankOfPoint(point) / page_size_;
}

int64_t StorageLayout::RankOfPoint(int64_t point) const {
  SPECTRAL_CHECK_GE(point, 0);
  SPECTRAL_CHECK_LT(point, num_records());
  return rank_of_point_[static_cast<size_t>(point)];
}

int64_t StorageLayout::PointOfRank(int64_t rank) const {
  SPECTRAL_CHECK_GE(rank, 0);
  SPECTRAL_CHECK_LT(rank, num_records());
  return point_of_rank_[static_cast<size_t>(rank)];
}

}  // namespace spectral
