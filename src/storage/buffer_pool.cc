#include "storage/buffer_pool.h"

#include "util/check.h"

namespace spectral {

LruBufferPool::LruBufferPool(int64_t capacity) : capacity_(capacity) {
  SPECTRAL_CHECK_GE(capacity, 1);
}

bool LruBufferPool::Access(int64_t page_id) {
  auto it = where_.find(page_id);
  if (it != where_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_ += 1;
    return true;
  }
  misses_ += 1;
  if (static_cast<int64_t>(lru_.size()) == capacity_) {
    where_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page_id);
  where_[page_id] = lru_.begin();
  return false;
}

double LruBufferPool::HitRate() const {
  const int64_t total = accesses();
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                   : 0.0;
}

void LruBufferPool::Reset() {
  hits_ = 0;
  misses_ = 0;
  lru_.clear();
  where_.clear();
}

}  // namespace spectral
