// LRU buffer-pool simulator: measures how a mapping's locality translates
// into cache hit rates under a spatially local access stream. The data-page
// cache of the end-to-end query path (query/executor.h): QueryExecutor
// routes every data-page touch through one of these, so hit rates compare
// layouts built from different OrderingRequest engines on equal footing.

#ifndef SPECTRAL_LPM_STORAGE_BUFFER_POOL_H_
#define SPECTRAL_LPM_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace spectral {

/// Fixed-capacity LRU page cache with hit/miss accounting.
///
/// Counter determinism contract: hits/misses are a pure function of the
/// access sequence and the capacity — strict LRU with no randomness,
/// clocks, or address-dependent tie-breaks — so a replayed page stream
/// reproduces every counter byte-for-byte on any machine. Benches commit
/// hit rates as CI-gated baselines on the strength of this.
class LruBufferPool {
 public:
  /// capacity = number of resident pages, >= 1.
  explicit LruBufferPool(int64_t capacity);

  /// Touches `page_id`; returns true on hit. Misses evict the LRU page.
  bool Access(int64_t page_id);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t accesses() const { return hits_ + misses_; }
  double HitRate() const;

  /// Drops all cached pages and statistics.
  void Reset();

 private:
  int64_t capacity_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  std::list<int64_t> lru_;  // front = most recent
  std::unordered_map<int64_t, std::list<int64_t>::iterator> where_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_STORAGE_BUFFER_POOL_H_
