// Physical layout: the rank order materialized into fixed-size pages.
// Records (point indices) are stored in rank order, page r/B holds ranks
// [r*B, (r+1)*B) — the placement the paper's mapping is for. The order
// comes from any OrderingEngine registry engine (an OrderingRequest run
// through MappingService or directly); BuildQueryPath (query/executor.h)
// assembles a layout plus both indexes from one request in one call.

#ifndef SPECTRAL_LPM_STORAGE_LAYOUT_H_
#define SPECTRAL_LPM_STORAGE_LAYOUT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/linear_order.h"

namespace spectral {

/// Immutable page layout of a mapped dataset.
///
/// Determinism contract: every accessor is a pure function of the order
/// and page_size captured at construction — page ids, page contents, and
/// rank lookups are plain permutation arithmetic, so page-I/O counters
/// derived from a layout are byte-identical across runs and machines.
class StorageLayout {
 public:
  /// Lays out `order` into pages of `page_size` records.
  StorageLayout(const LinearOrder& order, int64_t page_size);

  int64_t page_size() const { return page_size_; }
  int64_t num_records() const {
    return static_cast<int64_t>(point_of_rank_.size());
  }
  int64_t num_pages() const;

  /// Point indices stored on `page`, in rank order.
  std::span<const int64_t> PointsOnPage(int64_t page) const;

  int64_t PageOfRank(int64_t rank) const;
  int64_t PageOfPoint(int64_t point) const;

  /// The stored permutation (copies of the LinearOrder used at build time,
  /// so the layout is self-contained).
  int64_t RankOfPoint(int64_t point) const;
  int64_t PointOfRank(int64_t rank) const;

 private:
  int64_t page_size_;
  std::vector<int64_t> point_of_rank_;  // rank -> point index
  std::vector<int64_t> rank_of_point_;  // point index -> rank
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_STORAGE_LAYOUT_H_
