// Rank -> disk-page layout. The whole point of a locality-preserving
// mapping is that consecutive ranks share pages; these helpers quantify the
// page-level behaviour of a LinearOrder (distinct pages touched, sequential
// runs — the clustering metric of Moon et al., the paper's reference [4]).

#ifndef SPECTRAL_LPM_STORAGE_PAGE_MAP_H_
#define SPECTRAL_LPM_STORAGE_PAGE_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

namespace spectral {

/// Fixed-capacity page layout: rank r lives on page r / page_size.
///
/// Determinism contract: page ids and footprints are pure arithmetic on
/// ranks — no state, no randomness — so any footprint computed here is
/// reproducible byte-for-byte from the order alone. StorageLayout is the
/// record-bearing counterpart used by the query path (storage/layout.h).
class PageMap {
 public:
  /// page_size = records per page, >= 1.
  explicit PageMap(int64_t page_size);

  int64_t page_size() const { return page_size_; }
  int64_t PageOfRank(int64_t rank) const;
  int64_t NumPages(int64_t num_records) const;

 private:
  int64_t page_size_;
};

/// Page-level footprint of one query result (any order of `ranks`).
struct PageFootprint {
  /// Distinct pages the result touches (random-read count with a cold
  /// cache).
  int64_t distinct_pages = 0;
  /// Maximal runs of consecutive page ids (sequential-I/O segments; the
  /// "clusters" of Moon et al.).
  int64_t page_runs = 0;
};

/// Computes the footprint of a result set given as ranks.
PageFootprint ComputePageFootprint(std::span<const int64_t> ranks,
                                   const PageMap& pages);

}  // namespace spectral

#endif  // SPECTRAL_LPM_STORAGE_PAGE_MAP_H_
