#include "storage/io_model.h"

#include "util/check.h"

namespace spectral {

double IoCost(const PageFootprint& footprint, const IoCostModel& model) {
  SPECTRAL_CHECK_GE(footprint.distinct_pages, 0);
  SPECTRAL_CHECK_GE(footprint.page_runs, 0);
  return model.seek_cost * static_cast<double>(footprint.page_runs) +
         model.transfer_cost * static_cast<double>(footprint.distinct_pages);
}

}  // namespace spectral
