#include "space/point_set.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace spectral {

PointSet::PointSet(int dims) : dims_(dims) {
  SPECTRAL_CHECK_GE(dims, 1);
}

PointSet PointSet::FullGrid(const GridSpec& grid) {
  PointSet set(grid.dims());
  set.coords_.reserve(static_cast<size_t>(grid.NumCells() * grid.dims()));
  std::vector<Coord> p(static_cast<size_t>(grid.dims()), 0);
  for (int64_t cell = 0; cell < grid.NumCells(); ++cell) {
    grid.Unflatten(cell, p);
    set.Add(p);
  }
  return set;
}

int64_t PointSet::Add(std::span<const Coord> p) {
  SPECTRAL_CHECK_EQ(static_cast<int>(p.size()), dims_);
  const int64_t index = size();
  coords_.insert(coords_.end(), p.begin(), p.end());
  sorted_.clear();  // invalidate lookup index
  return index;
}

std::span<const Coord> PointSet::operator[](int64_t i) const {
  SPECTRAL_DCHECK_GE(i, 0);
  SPECTRAL_DCHECK_LT(i, size());
  return std::span<const Coord>(coords_.data() + i * dims_,
                                static_cast<size_t>(dims_));
}

Coord PointSet::At(int64_t i, int axis) const {
  SPECTRAL_DCHECK_GE(axis, 0);
  SPECTRAL_DCHECK_LT(axis, dims_);
  return (*this)[i][static_cast<size_t>(axis)];
}

bool PointSet::LexLess(int64_t a, int64_t b) const {
  const auto pa = (*this)[a];
  const auto pb = (*this)[b];
  for (int k = 0; k < dims_; ++k) {
    if (pa[static_cast<size_t>(k)] != pb[static_cast<size_t>(k)]) {
      return pa[static_cast<size_t>(k)] < pb[static_cast<size_t>(k)];
    }
  }
  return a < b;  // stable: duplicates keep insertion order
}

bool PointSet::LexLessThanPoint(int64_t a, std::span<const Coord> p) const {
  const auto pa = (*this)[a];
  for (int k = 0; k < dims_; ++k) {
    if (pa[static_cast<size_t>(k)] != p[static_cast<size_t>(k)]) {
      return pa[static_cast<size_t>(k)] < p[static_cast<size_t>(k)];
    }
  }
  return false;
}

void PointSet::BuildIndex() {
  sorted_.resize(static_cast<size_t>(size()));
  std::iota(sorted_.begin(), sorted_.end(), 0);
  std::sort(sorted_.begin(), sorted_.end(),
            [this](int64_t a, int64_t b) { return LexLess(a, b); });
}

int64_t PointSet::Find(std::span<const Coord> p) const {
  SPECTRAL_CHECK(has_index()) << "call BuildIndex() before Find()";
  SPECTRAL_CHECK_EQ(static_cast<int>(p.size()), dims_);
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), p,
      [this](int64_t a, std::span<const Coord> q) {
        return LexLessThanPoint(a, q);
      });
  if (it == sorted_.end()) return -1;
  const auto candidate = (*this)[*it];
  for (int k = 0; k < dims_; ++k) {
    if (candidate[static_cast<size_t>(k)] != p[static_cast<size_t>(k)]) {
      return -1;
    }
  }
  return *it;
}

void PointSet::Bounds(std::vector<Coord>* lo, std::vector<Coord>* hi) const {
  SPECTRAL_CHECK(!empty());
  SPECTRAL_CHECK(lo != nullptr);
  SPECTRAL_CHECK(hi != nullptr);
  lo->assign((*this)[0].begin(), (*this)[0].end());
  hi->assign((*this)[0].begin(), (*this)[0].end());
  for (int64_t i = 1; i < size(); ++i) {
    const auto p = (*this)[i];
    for (int k = 0; k < dims_; ++k) {
      (*lo)[static_cast<size_t>(k)] =
          std::min((*lo)[static_cast<size_t>(k)], p[static_cast<size_t>(k)]);
      (*hi)[static_cast<size_t>(k)] =
          std::max((*hi)[static_cast<size_t>(k)], p[static_cast<size_t>(k)]);
    }
  }
}

int64_t PointSet::Distance(int64_t i, int64_t j) const {
  return ManhattanDistance((*this)[i], (*this)[j]);
}

std::vector<std::vector<double>> PointSet::CenteredAxisFunctions() const {
  std::vector<std::vector<double>> axes(
      static_cast<size_t>(dims_),
      std::vector<double>(static_cast<size_t>(size()), 0.0));
  for (int a = 0; a < dims_; ++a) {
    double mean = 0.0;
    for (int64_t i = 0; i < size(); ++i) mean += At(i, a);
    mean /= static_cast<double>(size());
    for (int64_t i = 0; i < size(); ++i) {
      axes[static_cast<size_t>(a)][static_cast<size_t>(i)] = At(i, a) - mean;
    }
  }
  return axes;
}

}  // namespace spectral
