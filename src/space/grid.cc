#include "space/grid.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/check.h"

namespace spectral {

GridSpec::GridSpec(std::vector<Coord> sides) : sides_(std::move(sides)) {
  SPECTRAL_CHECK(!sides_.empty()) << "grid needs at least one axis";
  num_cells_ = 1;
  for (Coord s : sides_) {
    SPECTRAL_CHECK_GE(s, 1);
    SPECTRAL_CHECK_LE(num_cells_,
                      std::numeric_limits<int64_t>::max() / s)
        << "grid cell count overflows int64";
    num_cells_ *= s;
  }
}

GridSpec GridSpec::Uniform(int dims, Coord side) {
  SPECTRAL_CHECK_GE(dims, 1);
  return GridSpec(std::vector<Coord>(static_cast<size_t>(dims), side));
}

Coord GridSpec::side(int axis) const {
  SPECTRAL_CHECK_GE(axis, 0);
  SPECTRAL_CHECK_LT(axis, dims());
  return sides_[static_cast<size_t>(axis)];
}

int64_t GridSpec::MaxManhattanDistance() const {
  int64_t total = 0;
  for (Coord s : sides_) total += s - 1;
  return total;
}

bool GridSpec::Contains(std::span<const Coord> p) const {
  SPECTRAL_CHECK_EQ(static_cast<int>(p.size()), dims());
  for (int a = 0; a < dims(); ++a) {
    if (p[static_cast<size_t>(a)] < 0 ||
        p[static_cast<size_t>(a)] >= sides_[static_cast<size_t>(a)]) {
      return false;
    }
  }
  return true;
}

int64_t GridSpec::Flatten(std::span<const Coord> p) const {
  SPECTRAL_DCHECK(Contains(p));
  int64_t cell = 0;
  for (int a = 0; a < dims(); ++a) {
    cell = cell * sides_[static_cast<size_t>(a)] + p[static_cast<size_t>(a)];
  }
  return cell;
}

void GridSpec::Unflatten(int64_t cell, std::span<Coord> out) const {
  SPECTRAL_CHECK_EQ(static_cast<int>(out.size()), dims());
  SPECTRAL_DCHECK_GE(cell, 0);
  SPECTRAL_DCHECK_LT(cell, num_cells_);
  for (int a = dims() - 1; a >= 0; --a) {
    const Coord side = sides_[static_cast<size_t>(a)];
    out[static_cast<size_t>(a)] = static_cast<Coord>(cell % side);
    cell /= side;
  }
}

int64_t ManhattanDistance(std::span<const Coord> a, std::span<const Coord> b) {
  SPECTRAL_DCHECK_EQ(a.size(), b.size());
  int64_t d = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d += std::abs(static_cast<int64_t>(a[i]) - b[i]);
  }
  return d;
}

int64_t ChebyshevDistance(std::span<const Coord> a, std::span<const Coord> b) {
  SPECTRAL_DCHECK_EQ(a.size(), b.size());
  int64_t d = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(static_cast<int64_t>(a[i]) - b[i]));
  }
  return d;
}

}  // namespace spectral
