// A flat, cache-friendly collection of d-dimensional integer points — the
// "set of multi-dimensional points P" of the paper's algorithm input.

#ifndef SPECTRAL_LPM_SPACE_POINT_SET_H_
#define SPECTRAL_LPM_SPACE_POINT_SET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "space/grid.h"

namespace spectral {

/// Stores points contiguously (dims coordinates per point). Points keep
/// their insertion index; duplicates are allowed at insertion and can be
/// detected via BuildIndex + Find.
class PointSet {
 public:
  explicit PointSet(int dims);

  /// Every cell of `grid`, enumerated in row-major (Flatten) order, so the
  /// point with insertion index i is exactly the cell with Flatten id i.
  static PointSet FullGrid(const GridSpec& grid);

  int dims() const { return dims_; }
  int64_t size() const {
    return static_cast<int64_t>(coords_.size()) / dims_;
  }
  bool empty() const { return coords_.empty(); }

  /// Appends a point; returns its index.
  int64_t Add(std::span<const Coord> p);

  /// Coordinates of point `i`.
  std::span<const Coord> operator[](int64_t i) const;

  /// Coordinate of point `i` along `axis`.
  Coord At(int64_t i, int axis) const;

  /// Builds the lookup index used by Find (O(n log n)). Call once after the
  /// set is fully populated; Add invalidates it.
  void BuildIndex();
  bool has_index() const { return !sorted_.empty() || size() == 0; }

  /// Index of the point equal to `p`, or -1 if absent. Requires BuildIndex.
  /// If duplicates exist, returns the lowest insertion index.
  int64_t Find(std::span<const Coord> p) const;

  /// Componentwise bounding box; requires a non-empty set.
  void Bounds(std::vector<Coord>* lo, std::vector<Coord>* hi) const;

  /// Manhattan distance between points i and j.
  int64_t Distance(int64_t i, int64_t j) const;

  /// Centered coordinate functions: vector a holds coordinate `axis` of
  /// every point, mean-subtracted. Used to canonicalize degenerate Fiedler
  /// eigenspaces.
  std::vector<std::vector<double>> CenteredAxisFunctions() const;

 private:
  bool LexLess(int64_t a, int64_t b) const;
  bool LexLessThanPoint(int64_t a, std::span<const Coord> p) const;

  int dims_;
  std::vector<Coord> coords_;
  std::vector<int64_t> sorted_;  // insertion indices in lexicographic order
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SPACE_POINT_SET_H_
