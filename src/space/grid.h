// Multi-dimensional grid geometry: axis extents, row-major linearization,
// and coordinate arithmetic shared by the graph builders, the space-filling
// curves, and the query harness.

#ifndef SPECTRAL_LPM_SPACE_GRID_H_
#define SPECTRAL_LPM_SPACE_GRID_H_

#include <cstdint>
#include <span>
#include <vector>

namespace spectral {

/// Integer coordinate type of every point in the library.
using Coord = int32_t;

/// A finite d-dimensional grid [0, side_0) x ... x [0, side_{d-1}).
///
/// Linearization is row-major with axis 0 slowest and axis d-1 fastest,
/// matching the enumeration order of PointSet::FullGrid and the Sweep curve.
class GridSpec {
 public:
  /// Requires at least one axis; every side >= 1.
  explicit GridSpec(std::vector<Coord> sides);

  /// d axes of equal side.
  static GridSpec Uniform(int dims, Coord side);

  int dims() const { return static_cast<int>(sides_.size()); }
  Coord side(int axis) const;
  const std::vector<Coord>& sides() const { return sides_; }

  /// Total number of cells (product of sides). Checked against overflow.
  int64_t NumCells() const { return num_cells_; }

  /// Max Manhattan distance between two cells: sum of (side - 1).
  int64_t MaxManhattanDistance() const;

  /// True if `p` lies inside the grid. `p` must have dims() entries.
  bool Contains(std::span<const Coord> p) const;

  /// Row-major cell id of `p`; requires Contains(p).
  int64_t Flatten(std::span<const Coord> p) const;

  /// Inverse of Flatten; writes dims() coordinates.
  void Unflatten(int64_t cell, std::span<Coord> out) const;

 private:
  std::vector<Coord> sides_;
  int64_t num_cells_ = 0;
};

/// Manhattan (L1) distance between two points of equal dimension.
int64_t ManhattanDistance(std::span<const Coord> a, std::span<const Coord> b);

/// Chebyshev (L-infinity) distance between two points of equal dimension.
int64_t ChebyshevDistance(std::span<const Coord> a, std::span<const Coord> b);

}  // namespace spectral

#endif  // SPECTRAL_LPM_SPACE_GRID_H_
