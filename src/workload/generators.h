// Synthetic point workloads. The paper evaluates on full grids; the extra
// generators (uniform samples, Gaussian clusters) exercise the mapper on
// the sparse, skewed data layouts real multi-dimensional databases hold.

#ifndef SPECTRAL_LPM_WORKLOAD_GENERATORS_H_
#define SPECTRAL_LPM_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "space/grid.h"
#include "space/point_set.h"
#include "util/random.h"

namespace spectral {

/// All cells of `grid` in row-major order (alias of PointSet::FullGrid for
/// discoverability next to the other generators).
PointSet MakeFullGrid(const GridSpec& grid);

/// `count` distinct cells drawn uniformly from `grid`. Requires
/// count <= grid.NumCells().
PointSet SampleUniformPoints(const GridSpec& grid, int64_t count, Rng& rng);

/// `count` distinct cells drawn from `num_clusters` Gaussian blobs with
/// stddev = stddev_fraction * side, centers uniform in the grid. Draws are
/// clamped to the grid; duplicates are re-drawn (requires
/// count <= grid.NumCells()).
PointSet SampleGaussianClusters(const GridSpec& grid, int num_clusters,
                                int64_t count, double stddev_fraction,
                                Rng& rng);

/// A random connected blob: BFS-style growth from a random seed cell,
/// expanding a uniformly random frontier cell each step. Produces irregular
/// but connected regions (the shapes GIS polygons rasterize to).
PointSet SampleConnectedBlob(const GridSpec& grid, int64_t count, Rng& rng);

}  // namespace spectral

#endif  // SPECTRAL_LPM_WORKLOAD_GENERATORS_H_
