// Access traces: sequences of point accesses used by the affinity-edge
// experiment (paper section 4's "whenever p is accessed, q follows soon
// after") and by the buffer-pool benchmark.

#ifndef SPECTRAL_LPM_WORKLOAD_TRACE_H_
#define SPECTRAL_LPM_WORKLOAD_TRACE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "space/grid.h"

namespace spectral {

/// Options for MakeCorrelatedTrace.
struct CorrelatedTraceOptions {
  int64_t length = 10000;
  /// Number of (p, q) hot pairs with correlated accesses.
  int num_hot_pairs = 16;
  /// Probability that an access to p is immediately followed by its partner
  /// q (the paper's "very high probability" scenario).
  double follow_probability = 0.9;
  /// Probability that a step targets some hot pair at all (the rest is
  /// uniform background noise).
  double hot_fraction = 0.7;
  uint64_t seed = 0x7ace5ull;
};

/// A trace over point indices plus the hot pairs that generated it.
struct CorrelatedTrace {
  std::vector<int64_t> accesses;
  std::vector<std::pair<int64_t, int64_t>> hot_pairs;
};

/// Builds a trace over `num_points` point indices with correlated hot
/// pairs. Pairs are sampled without overlap; requires
/// 2 * num_hot_pairs <= num_points.
CorrelatedTrace MakeCorrelatedTrace(int64_t num_points,
                                    const CorrelatedTraceOptions& options);

/// Options for MakeRandomWalkTrace.
struct RandomWalkOptions {
  int64_t length = 20000;
  /// Probability of teleporting to a fresh uniform cell instead of stepping
  /// to an orthogonal neighbor.
  double restart_probability = 0.01;
  uint64_t seed = 0x3a1bull;
};

/// Spatial random walk over the cells of `grid` (row-major cell ids):
/// models a query stream with spatial locality for the buffer-pool bench.
std::vector<int64_t> MakeRandomWalkTrace(const GridSpec& grid,
                                         const RandomWalkOptions& options);

}  // namespace spectral

#endif  // SPECTRAL_LPM_WORKLOAD_TRACE_H_
