// Access traces: sequences of point accesses used by the affinity-edge
// experiment (paper section 4's "whenever p is accessed, q follows soon
// after") and by the buffer-pool benchmark, plus the Zipfian ordering-
// request mix that drives the serving-tier load bench.

#ifndef SPECTRAL_LPM_WORKLOAD_TRACE_H_
#define SPECTRAL_LPM_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/ordering_request.h"
#include "space/grid.h"

namespace spectral {

/// Options for MakeCorrelatedTrace.
struct CorrelatedTraceOptions {
  int64_t length = 10000;
  /// Number of (p, q) hot pairs with correlated accesses.
  int num_hot_pairs = 16;
  /// Probability that an access to p is immediately followed by its partner
  /// q (the paper's "very high probability" scenario).
  double follow_probability = 0.9;
  /// Probability that a step targets some hot pair at all (the rest is
  /// uniform background noise).
  double hot_fraction = 0.7;
  uint64_t seed = 0x7ace5ull;
};

/// A trace over point indices plus the hot pairs that generated it.
struct CorrelatedTrace {
  std::vector<int64_t> accesses;
  std::vector<std::pair<int64_t, int64_t>> hot_pairs;
};

/// Builds a trace over `num_points` point indices with correlated hot
/// pairs. Pairs are sampled without overlap; requires
/// 2 * num_hot_pairs <= num_points.
CorrelatedTrace MakeCorrelatedTrace(int64_t num_points,
                                    const CorrelatedTraceOptions& options);

/// Options for MakeRandomWalkTrace.
struct RandomWalkOptions {
  int64_t length = 20000;
  /// Probability of teleporting to a fresh uniform cell instead of stepping
  /// to an orthogonal neighbor.
  double restart_probability = 0.01;
  uint64_t seed = 0x3a1bull;
};

/// Spatial random walk over the cells of `grid` (row-major cell ids):
/// models a query stream with spatial locality for the buffer-pool bench.
std::vector<int64_t> MakeRandomWalkTrace(const GridSpec& grid,
                                         const RandomWalkOptions& options);

/// Options for MakeZipfianRequestMix.
struct ZipfianRequestMixOptions {
  /// Length of the sampled request trace.
  int64_t num_requests = 2000;
  /// Number of distinct requests (engine x grid combinations) sampled from.
  int universe_size = 32;
  /// Zipf skew: popularity rank r is drawn with probability proportional to
  /// (r + 1)^-zipf_exponent; 0 is uniform, ~1 is the classic hot-set shape.
  double zipf_exponent = 0.99;
  /// Engine names cycled across the universe entries.
  std::vector<std::string> engines = {"spectral", "spectral-multilevel",
                                      "bisection"};
  /// 2-D grid sides are sampled uniformly from [min_side, max_side].
  Coord min_side = 8;
  Coord max_side = 24;
  uint64_t seed = 0x21f5ull;
};

/// A Zipfian mix of ordering requests: the serving-tier traffic model.
struct ZipfianRequestMix {
  /// Distinct owning requests (safe to serve after the mix goes away).
  std::vector<OrderingRequest> universe;
  /// `num_requests` indices into `universe`, Zipf-distributed. Popularity
  /// ranks are assigned to universe entries by a seeded shuffle, so the hot
  /// set is decorrelated from entry size and engine.
  std::vector<int> trace;
};

/// Builds `universe_size` fingerprint-distinct requests (full 2-D grids of
/// random sides, engines round-robined) and a Zipf-skewed access trace over
/// them. Deterministic for a fixed option set. Requires universe_size >= 1,
/// num_requests >= 1, non-empty engines, and enough distinct engine x grid
/// combinations to fill the universe.
ZipfianRequestMix MakeZipfianRequestMix(const ZipfianRequestMixOptions& options);

}  // namespace spectral

#endif  // SPECTRAL_LPM_WORKLOAD_TRACE_H_
