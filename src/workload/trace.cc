#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <set>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "space/point_set.h"
#include "util/check.h"
#include "util/random.h"

namespace spectral {

CorrelatedTrace MakeCorrelatedTrace(int64_t num_points,
                                    const CorrelatedTraceOptions& options) {
  SPECTRAL_CHECK_GE(num_points, 2);
  SPECTRAL_CHECK_GE(options.num_hot_pairs, 1);
  SPECTRAL_CHECK_LE(2 * options.num_hot_pairs, num_points);
  SPECTRAL_CHECK_GE(options.follow_probability, 0.0);
  SPECTRAL_CHECK_LE(options.follow_probability, 1.0);
  SPECTRAL_CHECK_GE(options.hot_fraction, 0.0);
  SPECTRAL_CHECK_LE(options.hot_fraction, 1.0);

  Rng rng(options.seed);
  CorrelatedTrace trace;

  // Disjoint hot pairs.
  std::unordered_set<int64_t> used;
  while (static_cast<int>(trace.hot_pairs.size()) < options.num_hot_pairs) {
    const int64_t p = rng.UniformInt(0, num_points - 1);
    const int64_t q = rng.UniformInt(0, num_points - 1);
    if (p == q || used.count(p) > 0 || used.count(q) > 0) continue;
    used.insert(p);
    used.insert(q);
    trace.hot_pairs.emplace_back(p, q);
  }

  trace.accesses.reserve(static_cast<size_t>(options.length));
  while (static_cast<int64_t>(trace.accesses.size()) < options.length) {
    if (rng.Bernoulli(options.hot_fraction)) {
      const auto& pair = trace.hot_pairs[static_cast<size_t>(
          rng.UniformInt(0, options.num_hot_pairs - 1))];
      trace.accesses.push_back(pair.first);
      if (rng.Bernoulli(options.follow_probability)) {
        trace.accesses.push_back(pair.second);
      }
    } else {
      trace.accesses.push_back(rng.UniformInt(0, num_points - 1));
    }
  }
  trace.accesses.resize(static_cast<size_t>(options.length));
  return trace;
}

std::vector<int64_t> MakeRandomWalkTrace(const GridSpec& grid,
                                         const RandomWalkOptions& options) {
  SPECTRAL_CHECK_GE(options.length, 1);
  SPECTRAL_CHECK_GE(options.restart_probability, 0.0);
  SPECTRAL_CHECK_LE(options.restart_probability, 1.0);

  Rng rng(options.seed);
  std::vector<int64_t> trace;
  trace.reserve(static_cast<size_t>(options.length));

  std::vector<Coord> p(static_cast<size_t>(grid.dims()));
  grid.Unflatten(rng.UniformInt(0, grid.NumCells() - 1), p);
  for (int64_t step = 0; step < options.length; ++step) {
    if (rng.Bernoulli(options.restart_probability)) {
      grid.Unflatten(rng.UniformInt(0, grid.NumCells() - 1), p);
    } else {
      // Try random orthogonal steps until one stays inside the grid.
      while (true) {
        const int axis = static_cast<int>(rng.UniformInt(0, grid.dims() - 1));
        const int dir = rng.Bernoulli(0.5) ? 1 : -1;
        const int64_t next = p[static_cast<size_t>(axis)] + dir;
        if (next >= 0 && next < grid.side(axis)) {
          p[static_cast<size_t>(axis)] = static_cast<Coord>(next);
          break;
        }
      }
    }
    trace.push_back(grid.Flatten(p));
  }
  return trace;
}

ZipfianRequestMix MakeZipfianRequestMix(
    const ZipfianRequestMixOptions& options) {
  SPECTRAL_CHECK_GE(options.num_requests, 1);
  SPECTRAL_CHECK_GE(options.universe_size, 1);
  SPECTRAL_CHECK_GE(options.zipf_exponent, 0.0);
  SPECTRAL_CHECK_GE(static_cast<int64_t>(options.engines.size()), 1);
  SPECTRAL_CHECK_GE(options.min_side, 1);
  SPECTRAL_CHECK_LE(options.min_side, options.max_side);
  const int64_t num_sides =
      static_cast<int64_t>(options.max_side - options.min_side) + 1;
  SPECTRAL_CHECK_LE(
      options.universe_size,
      num_sides * num_sides * static_cast<int64_t>(options.engines.size()));

  Rng rng(options.seed);
  ZipfianRequestMix mix;

  // Distinct universe entries: engines round-robined, grid shapes sampled
  // without repeating an (engine, shape) combination.
  std::set<std::tuple<size_t, Coord, Coord>> used;
  mix.universe.reserve(static_cast<size_t>(options.universe_size));
  while (static_cast<int>(mix.universe.size()) < options.universe_size) {
    const size_t engine = mix.universe.size() % options.engines.size();
    const Coord s0 = static_cast<Coord>(
        rng.UniformInt(options.min_side, options.max_side));
    const Coord s1 = static_cast<Coord>(
        rng.UniformInt(options.min_side, options.max_side));
    if (!used.emplace(engine, s0, s1).second) continue;
    mix.universe.push_back(OrderingRequest::ForPoints(
        std::make_shared<const PointSet>(
            PointSet::FullGrid(GridSpec({s0, s1}))),
        options.engines[engine]));
  }

  // Popularity rank -> universe index, shuffled so the hot set is not
  // correlated with entry size or engine.
  std::vector<int> rank_to_entry(static_cast<size_t>(options.universe_size));
  std::iota(rank_to_entry.begin(), rank_to_entry.end(), 0);
  rng.Shuffle(rank_to_entry);

  // Zipf CDF over ranks; inverse-transform sampling.
  std::vector<double> cdf(rank_to_entry.size());
  double total = 0.0;
  for (size_t r = 0; r < cdf.size(); ++r) {
    total += std::pow(static_cast<double>(r + 1), -options.zipf_exponent);
    cdf[r] = total;
  }
  mix.trace.reserve(static_cast<size_t>(options.num_requests));
  for (int64_t i = 0; i < options.num_requests; ++i) {
    const double u = rng.UniformDouble() * total;
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    mix.trace.push_back(rank_to_entry[std::min(rank, cdf.size() - 1)]);
  }
  return mix;
}

}  // namespace spectral
