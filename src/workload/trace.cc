#include "workload/trace.h"

#include <unordered_set>

#include "util/check.h"
#include "util/random.h"

namespace spectral {

CorrelatedTrace MakeCorrelatedTrace(int64_t num_points,
                                    const CorrelatedTraceOptions& options) {
  SPECTRAL_CHECK_GE(num_points, 2);
  SPECTRAL_CHECK_GE(options.num_hot_pairs, 1);
  SPECTRAL_CHECK_LE(2 * options.num_hot_pairs, num_points);
  SPECTRAL_CHECK_GE(options.follow_probability, 0.0);
  SPECTRAL_CHECK_LE(options.follow_probability, 1.0);
  SPECTRAL_CHECK_GE(options.hot_fraction, 0.0);
  SPECTRAL_CHECK_LE(options.hot_fraction, 1.0);

  Rng rng(options.seed);
  CorrelatedTrace trace;

  // Disjoint hot pairs.
  std::unordered_set<int64_t> used;
  while (static_cast<int>(trace.hot_pairs.size()) < options.num_hot_pairs) {
    const int64_t p = rng.UniformInt(0, num_points - 1);
    const int64_t q = rng.UniformInt(0, num_points - 1);
    if (p == q || used.count(p) > 0 || used.count(q) > 0) continue;
    used.insert(p);
    used.insert(q);
    trace.hot_pairs.emplace_back(p, q);
  }

  trace.accesses.reserve(static_cast<size_t>(options.length));
  while (static_cast<int64_t>(trace.accesses.size()) < options.length) {
    if (rng.Bernoulli(options.hot_fraction)) {
      const auto& pair = trace.hot_pairs[static_cast<size_t>(
          rng.UniformInt(0, options.num_hot_pairs - 1))];
      trace.accesses.push_back(pair.first);
      if (rng.Bernoulli(options.follow_probability)) {
        trace.accesses.push_back(pair.second);
      }
    } else {
      trace.accesses.push_back(rng.UniformInt(0, num_points - 1));
    }
  }
  trace.accesses.resize(static_cast<size_t>(options.length));
  return trace;
}

std::vector<int64_t> MakeRandomWalkTrace(const GridSpec& grid,
                                         const RandomWalkOptions& options) {
  SPECTRAL_CHECK_GE(options.length, 1);
  SPECTRAL_CHECK_GE(options.restart_probability, 0.0);
  SPECTRAL_CHECK_LE(options.restart_probability, 1.0);

  Rng rng(options.seed);
  std::vector<int64_t> trace;
  trace.reserve(static_cast<size_t>(options.length));

  std::vector<Coord> p(static_cast<size_t>(grid.dims()));
  grid.Unflatten(rng.UniformInt(0, grid.NumCells() - 1), p);
  for (int64_t step = 0; step < options.length; ++step) {
    if (rng.Bernoulli(options.restart_probability)) {
      grid.Unflatten(rng.UniformInt(0, grid.NumCells() - 1), p);
    } else {
      // Try random orthogonal steps until one stays inside the grid.
      while (true) {
        const int axis = static_cast<int>(rng.UniformInt(0, grid.dims() - 1));
        const int dir = rng.Bernoulli(0.5) ? 1 : -1;
        const int64_t next = p[static_cast<size_t>(axis)] + dir;
        if (next >= 0 && next < grid.side(axis)) {
          p[static_cast<size_t>(axis)] = static_cast<Coord>(next);
          break;
        }
      }
    }
    trace.push_back(grid.Flatten(p));
  }
  return trace;
}

}  // namespace spectral
