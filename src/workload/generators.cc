#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace spectral {

PointSet MakeFullGrid(const GridSpec& grid) { return PointSet::FullGrid(grid); }

PointSet SampleUniformPoints(const GridSpec& grid, int64_t count, Rng& rng) {
  SPECTRAL_CHECK_GE(count, 0);
  SPECTRAL_CHECK_LE(count, grid.NumCells());
  std::unordered_set<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(count) * 2);
  PointSet points(grid.dims());
  std::vector<Coord> p(static_cast<size_t>(grid.dims()));
  while (static_cast<int64_t>(chosen.size()) < count) {
    const int64_t cell = rng.UniformInt(0, grid.NumCells() - 1);
    if (!chosen.insert(cell).second) continue;
    grid.Unflatten(cell, p);
    points.Add(p);
  }
  return points;
}

PointSet SampleGaussianClusters(const GridSpec& grid, int num_clusters,
                                int64_t count, double stddev_fraction,
                                Rng& rng) {
  SPECTRAL_CHECK_GE(num_clusters, 1);
  SPECTRAL_CHECK_GE(count, 0);
  SPECTRAL_CHECK_LE(count, grid.NumCells());
  SPECTRAL_CHECK_GT(stddev_fraction, 0.0);

  std::vector<std::vector<double>> centers(
      static_cast<size_t>(num_clusters),
      std::vector<double>(static_cast<size_t>(grid.dims()), 0.0));
  for (auto& center : centers) {
    for (int a = 0; a < grid.dims(); ++a) {
      center[static_cast<size_t>(a)] =
          rng.UniformDouble(0.0, static_cast<double>(grid.side(a)));
    }
  }

  std::unordered_set<int64_t> chosen;
  PointSet points(grid.dims());
  std::vector<Coord> p(static_cast<size_t>(grid.dims()));
  while (static_cast<int64_t>(chosen.size()) < count) {
    const auto& center =
        centers[static_cast<size_t>(rng.UniformInt(0, num_clusters - 1))];
    for (int a = 0; a < grid.dims(); ++a) {
      const double stddev = stddev_fraction * grid.side(a);
      const double x = rng.Gaussian(center[static_cast<size_t>(a)], stddev);
      p[static_cast<size_t>(a)] = static_cast<Coord>(std::clamp<int64_t>(
          static_cast<int64_t>(std::llround(x)), 0, grid.side(a) - 1));
    }
    const int64_t cell = grid.Flatten(p);
    if (!chosen.insert(cell).second) continue;
    points.Add(p);
  }
  return points;
}

PointSet SampleConnectedBlob(const GridSpec& grid, int64_t count, Rng& rng) {
  SPECTRAL_CHECK_GE(count, 1);
  SPECTRAL_CHECK_LE(count, grid.NumCells());

  std::unordered_set<int64_t> in_blob;
  std::vector<int64_t> frontier;
  std::vector<Coord> p(static_cast<size_t>(grid.dims()));
  std::vector<Coord> q(static_cast<size_t>(grid.dims()));

  const int64_t seed_cell = rng.UniformInt(0, grid.NumCells() - 1);
  in_blob.insert(seed_cell);
  frontier.push_back(seed_cell);

  auto push_neighbors = [&](int64_t cell) {
    grid.Unflatten(cell, p);
    for (int a = 0; a < grid.dims(); ++a) {
      for (int step = -1; step <= 1; step += 2) {
        q = p;
        q[static_cast<size_t>(a)] =
            static_cast<Coord>(q[static_cast<size_t>(a)] + step);
        if (q[static_cast<size_t>(a)] < 0 ||
            q[static_cast<size_t>(a)] >= grid.side(a)) {
          continue;
        }
        const int64_t nb = grid.Flatten(q);
        if (in_blob.find(nb) == in_blob.end()) frontier.push_back(nb);
      }
    }
  };
  push_neighbors(seed_cell);

  while (static_cast<int64_t>(in_blob.size()) < count && !frontier.empty()) {
    const size_t pick =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(frontier.size()) - 1));
    const int64_t cell = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    if (!in_blob.insert(cell).second) continue;
    push_neighbors(cell);
  }

  PointSet points(grid.dims());
  std::vector<int64_t> cells(in_blob.begin(), in_blob.end());
  std::sort(cells.begin(), cells.end());  // deterministic insertion order
  for (int64_t cell : cells) {
    grid.Unflatten(cell, p);
    points.Add(p);
  }
  return points;
}

}  // namespace spectral
