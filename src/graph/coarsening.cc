#include "graph/coarsening.h"

#include <algorithm>

#include "util/check.h"

namespace spectral {

Coarsening CoarsenByHeavyEdgeMatching(const Graph& graph) {
  const int64_t n = graph.num_vertices();
  Coarsening result;
  result.fine_to_coarse.assign(static_cast<size_t>(n), -1);

  // Greedy matching: each vertex (in id order) pairs with its heaviest
  // unmatched neighbor.
  std::vector<int64_t> mate(static_cast<size_t>(n), -1);
  for (int64_t u = 0; u < n; ++u) {
    if (mate[static_cast<size_t>(u)] >= 0) continue;
    const auto nbrs = graph.Neighbors(u);
    const auto ws = graph.Weights(u);
    int64_t best = -1;
    double best_weight = 0.0;
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const int64_t v = nbrs[k];
      if (v == u || mate[static_cast<size_t>(v)] >= 0) continue;
      if (best < 0 || ws[k] > best_weight ||
          (ws[k] == best_weight && v < best)) {
        best = v;
        best_weight = ws[k];
      }
    }
    if (best >= 0) {
      mate[static_cast<size_t>(u)] = best;
      mate[static_cast<size_t>(best)] = u;
    }
  }

  // Assign coarse ids (matched pairs share one id; pairs are discovered in
  // ascending order of their lower endpoint).
  int64_t next = 0;
  for (int64_t u = 0; u < n; ++u) {
    if (result.fine_to_coarse[static_cast<size_t>(u)] >= 0) continue;
    result.fine_to_coarse[static_cast<size_t>(u)] = next;
    const int64_t m = mate[static_cast<size_t>(u)];
    if (m >= 0) result.fine_to_coarse[static_cast<size_t>(m)] = next;
    ++next;
  }
  result.num_coarse = next;

  // Coarse edges: project fine edges, dropping those that become loops.
  std::vector<GraphEdge> edges;
  graph.ForEachEdge([&](int64_t u, int64_t v, double w) {
    const int64_t cu = result.fine_to_coarse[static_cast<size_t>(u)];
    const int64_t cv = result.fine_to_coarse[static_cast<size_t>(v)];
    if (cu != cv) edges.push_back({cu, cv, w});
  });
  result.coarse = Graph::FromEdges(next, edges);
  return result;
}

CoarseningHierarchy BuildCoarseningHierarchy(const Graph& graph,
                                             const CoarseningOptions& options) {
  SPECTRAL_CHECK_GE(options.coarsest_size, 2);
  CoarseningHierarchy hierarchy;
  const Graph* current = &graph;
  while (static_cast<int>(hierarchy.steps.size()) < options.max_levels &&
         current->num_vertices() > options.coarsest_size) {
    Coarsening step = CoarsenByHeavyEdgeMatching(*current);
    if (static_cast<double>(step.num_coarse) >
        options.min_shrink_factor *
            static_cast<double>(current->num_vertices())) {
      break;  // matching stalled; this is as coarse as it gets
    }
    hierarchy.steps.push_back(std::move(step));
    current = &hierarchy.steps.back().coarse;
  }
  return hierarchy;
}

std::vector<double> ProlongVector(const Coarsening& coarsening,
                                  const std::vector<double>& coarse_values) {
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(coarse_values.size()),
                    coarsening.num_coarse);
  std::vector<double> fine(coarsening.fine_to_coarse.size());
  for (size_t v = 0; v < fine.size(); ++v) {
    fine[v] = coarse_values[static_cast<size_t>(
        coarsening.fine_to_coarse[v])];
  }
  return fine;
}

}  // namespace spectral
