// Undirected weighted graph in CSR form — "G(V,E)" of the paper's step 1.
// Vertices are point indices; edge weights encode mapping priority (paper
// section 4's weighted extension; weight 1 for the plain algorithm).

#ifndef SPECTRAL_LPM_GRAPH_GRAPH_H_
#define SPECTRAL_LPM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace spectral {

/// One undirected edge (u, v) with positive weight.
struct GraphEdge {
  int64_t u = 0;
  int64_t v = 0;
  double weight = 1.0;
};

/// Immutable undirected graph. Build via FromEdges; parallel edges are
/// merged by summing weights, self loops are rejected.
class Graph {
 public:
  Graph() = default;

  /// Assembles the graph. Edge endpoints must be in [0, num_vertices);
  /// weights must be > 0; u == v (self loop) is a programmer error.
  static Graph FromEdges(int64_t num_vertices,
                         std::span<const GraphEdge> edges);

  int64_t num_vertices() const { return num_vertices_; }
  /// Number of undirected edges after merging duplicates.
  int64_t num_edges() const { return static_cast<int64_t>(adj_.size()) / 2; }

  /// Neighbor vertex ids of `v`, ascending.
  std::span<const int64_t> Neighbors(int64_t v) const;
  /// Weights aligned with Neighbors(v).
  std::span<const double> Weights(int64_t v) const;

  /// Number of incident edges.
  int64_t Degree(int64_t v) const;
  /// Sum of incident edge weights (the diagonal of D in L = D - W).
  double WeightedDegree(int64_t v) const;

  int64_t MaxDegree() const;
  double MaxWeightedDegree() const;
  double TotalEdgeWeight() const;

  /// Calls fn(u, v, w) once per undirected edge with u < v.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (int64_t u = 0; u < num_vertices_; ++u) {
      const auto nbrs = Neighbors(u);
      const auto ws = Weights(u);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        if (nbrs[k] > u) fn(u, nbrs[k], ws[k]);
      }
    }
  }

 private:
  int64_t num_vertices_ = 0;
  std::vector<int64_t> offsets_ = {0};
  std::vector<int64_t> adj_;
  std::vector<double> weights_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_GRAPH_GRAPH_H_
