#include "graph/grid_graph.h"

#include <vector>

#include "util/check.h"

namespace spectral {

Graph BuildGridGraph(const GridSpec& grid, const GridGraphOptions& options) {
  SPECTRAL_CHECK_GT(options.orthogonal_weight, 0.0);
  const int dims = grid.dims();
  const int64_t n = grid.NumCells();

  std::vector<GraphEdge> edges;
  std::vector<Coord> p(static_cast<size_t>(dims));
  std::vector<Coord> q(static_cast<size_t>(dims));

  if (options.connectivity == GridConnectivity::kOrthogonal) {
    edges.reserve(static_cast<size_t>(n) * dims);
    for (int64_t cell = 0; cell < n; ++cell) {
      grid.Unflatten(cell, p);
      // Only +1 along each axis: each undirected edge is emitted once.
      for (int a = 0; a < dims; ++a) {
        if (p[static_cast<size_t>(a)] + 1 < grid.side(a)) {
          q = p;
          q[static_cast<size_t>(a)] += 1;
          edges.push_back({cell, grid.Flatten(q), options.orthogonal_weight});
        } else if (options.periodic && grid.side(a) > 2) {
          q = p;
          q[static_cast<size_t>(a)] = 0;  // wrap-around edge of the torus
          edges.push_back({cell, grid.Flatten(q), options.orthogonal_weight});
        }
      }
    }
    return Graph::FromEdges(n, edges);
  }
  SPECTRAL_CHECK(!options.periodic)
      << "periodic grids are only supported with orthogonal connectivity";

  // Moore: enumerate offset vectors in {-1,0,1}^d that are lexicographically
  // positive, so each undirected edge is emitted exactly once.
  SPECTRAL_CHECK_GT(options.diagonal_weight, 0.0);
  std::vector<std::vector<Coord>> offsets;
  std::vector<Coord> off(static_cast<size_t>(dims), -1);
  while (true) {
    bool positive = false;
    for (int a = 0; a < dims; ++a) {
      if (off[static_cast<size_t>(a)] != 0) {
        positive = off[static_cast<size_t>(a)] > 0;
        break;
      }
    }
    if (positive) offsets.push_back(off);
    // Next offset in {-1,0,1}^d.
    int a = dims - 1;
    while (a >= 0 && off[static_cast<size_t>(a)] == 1) {
      off[static_cast<size_t>(a)] = -1;
      --a;
    }
    if (a < 0) break;
    off[static_cast<size_t>(a)] += 1;
  }

  for (int64_t cell = 0; cell < n; ++cell) {
    grid.Unflatten(cell, p);
    for (const auto& o : offsets) {
      bool inside = true;
      int64_t manhattan = 0;
      for (int a = 0; a < dims; ++a) {
        q[static_cast<size_t>(a)] = p[static_cast<size_t>(a)] + o[static_cast<size_t>(a)];
        manhattan += std::abs(static_cast<int>(o[static_cast<size_t>(a)]));
        if (q[static_cast<size_t>(a)] < 0 || q[static_cast<size_t>(a)] >= grid.side(a)) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      const double w = manhattan == 1 ? options.orthogonal_weight
                                      : options.diagonal_weight;
      edges.push_back({cell, grid.Flatten(q), w});
    }
  }
  return Graph::FromEdges(n, edges);
}

}  // namespace spectral
