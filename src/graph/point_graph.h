// Graph construction for arbitrary point sets: step 1 of the paper's
// algorithm ("there is an edge (vi, vj) iff ManhattanDist(pi, pj) = 1"),
// generalized to a configurable Manhattan radius and to Moore neighborhoods.

#ifndef SPECTRAL_LPM_GRAPH_POINT_GRAPH_H_
#define SPECTRAL_LPM_GRAPH_POINT_GRAPH_H_

#include "graph/graph.h"
#include "graph/grid_graph.h"
#include "space/point_set.h"
#include "util/status.h"

namespace spectral {

/// How an edge's weight depends on the Manhattan distance d of its
/// endpoints — the section-4 weighted generalization.
enum class WeightKernel {
  /// weight (independent of d).
  kUniform,
  /// weight / d: the paper's footnote-1 variant.
  kInverseDistance,
  /// weight * exp(-(d/sigma)^2): a Gaussian affinity kernel.
  kGaussian,
};

/// Options for BuildPointGraph.
struct PointGraphOptions {
  GridConnectivity connectivity = GridConnectivity::kOrthogonal;
  /// Points at Manhattan distance in [1, radius] are connected
  /// (kOrthogonal). Under kMoore the radius applies to Chebyshev distance.
  int radius = 1;
  /// Base edge weight.
  double weight = 1.0;
  WeightKernel kernel = WeightKernel::kUniform;
  /// Length scale of the Gaussian kernel.
  double gaussian_sigma = 1.0;
};

/// Connects points of `points` per `options`. Vertex ids are point indices.
/// Duplicate points in the set are invalid (they would form self loops);
/// returns InvalidArgument in that case. The neighborhood template grows
/// like (2r+1)^d, so (2*radius+1)^dims is capped at 10^6.
StatusOr<Graph> BuildPointGraph(const PointSet& points,
                                const PointGraphOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_GRAPH_POINT_GRAPH_H_
