#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace spectral {

Graph Graph::FromEdges(int64_t num_vertices,
                       std::span<const GraphEdge> edges) {
  SPECTRAL_CHECK_GE(num_vertices, 0);

  // Directed copies (u->v and v->u), sorted, duplicates merged.
  std::vector<GraphEdge> directed;
  directed.reserve(edges.size() * 2);
  for (const GraphEdge& e : edges) {
    SPECTRAL_CHECK_GE(e.u, 0);
    SPECTRAL_CHECK_LT(e.u, num_vertices);
    SPECTRAL_CHECK_GE(e.v, 0);
    SPECTRAL_CHECK_LT(e.v, num_vertices);
    SPECTRAL_CHECK_NE(e.u, e.v) << "self loops are not allowed";
    SPECTRAL_CHECK_GT(e.weight, 0.0) << "edge weights must be positive";
    directed.push_back({e.u, e.v, e.weight});
    directed.push_back({e.v, e.u, e.weight});
  }
  std::sort(directed.begin(), directed.end(),
            [](const GraphEdge& a, const GraphEdge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });

  Graph g;
  g.num_vertices_ = num_vertices;
  g.offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  g.adj_.reserve(directed.size());
  g.weights_.reserve(directed.size());

  size_t i = 0;
  while (i < directed.size()) {
    const int64_t u = directed[i].u;
    const int64_t v = directed[i].v;
    double w = 0.0;
    while (i < directed.size() && directed[i].u == u && directed[i].v == v) {
      w += directed[i].weight;
      ++i;
    }
    g.adj_.push_back(v);
    g.weights_.push_back(w);
    g.offsets_[static_cast<size_t>(u) + 1] += 1;
  }
  for (size_t u = 0; u < static_cast<size_t>(num_vertices); ++u) {
    g.offsets_[u + 1] += g.offsets_[u];
  }
  return g;
}

std::span<const int64_t> Graph::Neighbors(int64_t v) const {
  SPECTRAL_DCHECK_GE(v, 0);
  SPECTRAL_DCHECK_LT(v, num_vertices_);
  const size_t begin = static_cast<size_t>(offsets_[static_cast<size_t>(v)]);
  const size_t end = static_cast<size_t>(offsets_[static_cast<size_t>(v) + 1]);
  return std::span<const int64_t>(adj_.data() + begin, end - begin);
}

std::span<const double> Graph::Weights(int64_t v) const {
  SPECTRAL_DCHECK_GE(v, 0);
  SPECTRAL_DCHECK_LT(v, num_vertices_);
  const size_t begin = static_cast<size_t>(offsets_[static_cast<size_t>(v)]);
  const size_t end = static_cast<size_t>(offsets_[static_cast<size_t>(v) + 1]);
  return std::span<const double>(weights_.data() + begin, end - begin);
}

int64_t Graph::Degree(int64_t v) const {
  return static_cast<int64_t>(Neighbors(v).size());
}

double Graph::WeightedDegree(int64_t v) const {
  double acc = 0.0;
  for (double w : Weights(v)) acc += w;
  return acc;
}

int64_t Graph::MaxDegree() const {
  int64_t best = 0;
  for (int64_t v = 0; v < num_vertices_; ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

double Graph::MaxWeightedDegree() const {
  double best = 0.0;
  for (int64_t v = 0; v < num_vertices_; ++v) {
    best = std::max(best, WeightedDegree(v));
  }
  return best;
}

double Graph::TotalEdgeWeight() const {
  double acc = 0.0;
  for (double w : weights_) acc += w;
  return acc / 2.0;
}

}  // namespace spectral
