#include "graph/subgraph.h"

#include "util/check.h"

namespace spectral {

InducedSubgraph BuildInducedSubgraph(const Graph& graph,
                                     std::span<const int64_t> vertices) {
  InducedSubgraph sub;
  sub.local_to_global.assign(vertices.begin(), vertices.end());

  std::vector<int64_t> global_to_local(
      static_cast<size_t>(graph.num_vertices()), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    const int64_t v = vertices[i];
    SPECTRAL_CHECK_GE(v, 0);
    SPECTRAL_CHECK_LT(v, graph.num_vertices());
    SPECTRAL_CHECK_EQ(global_to_local[static_cast<size_t>(v)], -1)
        << "duplicate vertex in subgraph selection";
    global_to_local[static_cast<size_t>(v)] = static_cast<int64_t>(i);
  }

  std::vector<GraphEdge> edges;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const int64_t u = vertices[i];
    const auto nbrs = graph.Neighbors(u);
    const auto ws = graph.Weights(u);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const int64_t v = nbrs[k];
      if (v <= u) continue;  // visit each undirected edge once
      const int64_t lv = global_to_local[static_cast<size_t>(v)];
      if (lv < 0) continue;
      edges.push_back({static_cast<int64_t>(i), lv, ws[k]});
    }
  }
  sub.graph = Graph::FromEdges(static_cast<int64_t>(vertices.size()), edges);
  return sub;
}

}  // namespace spectral
