#include "graph/traversal.h"

#include <deque>

#include "util/check.h"

namespace spectral {

std::vector<int64_t> ConnectedComponents(const Graph& g,
                                         int64_t* num_components) {
  const int64_t n = g.num_vertices();
  std::vector<int64_t> comp(static_cast<size_t>(n), -1);
  int64_t next_id = 0;
  std::deque<int64_t> queue;
  for (int64_t s = 0; s < n; ++s) {
    if (comp[static_cast<size_t>(s)] >= 0) continue;
    comp[static_cast<size_t>(s)] = next_id;
    queue.push_back(s);
    while (!queue.empty()) {
      const int64_t u = queue.front();
      queue.pop_front();
      for (int64_t v : g.Neighbors(u)) {
        if (comp[static_cast<size_t>(v)] < 0) {
          comp[static_cast<size_t>(v)] = next_id;
          queue.push_back(v);
        }
      }
    }
    ++next_id;
  }
  if (num_components != nullptr) *num_components = next_id;
  return comp;
}

bool IsConnected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  int64_t count = 0;
  ConnectedComponents(g, &count);
  return count == 1;
}

std::vector<int64_t> BfsDistances(const Graph& g, int64_t source) {
  SPECTRAL_CHECK_GE(source, 0);
  SPECTRAL_CHECK_LT(source, g.num_vertices());
  std::vector<int64_t> dist(static_cast<size_t>(g.num_vertices()), -1);
  std::deque<int64_t> queue;
  dist[static_cast<size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const int64_t u = queue.front();
    queue.pop_front();
    for (int64_t v : g.Neighbors(u)) {
      if (dist[static_cast<size_t>(v)] < 0) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace spectral
