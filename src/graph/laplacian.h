// Graph Laplacian assembly: step 2 of the paper's algorithm,
// L(G) = D(G) - W(G) with D the (weighted) degree diagonal.

#ifndef SPECTRAL_LPM_GRAPH_LAPLACIAN_H_
#define SPECTRAL_LPM_GRAPH_LAPLACIAN_H_

#include "graph/graph.h"
#include "linalg/sparse_matrix.h"

namespace spectral {

/// Builds the (weighted) Laplacian of `g` in CSR form. Symmetric positive
/// semidefinite; row sums are zero; the all-ones vector is in the kernel.
SparseMatrix BuildLaplacian(const Graph& g);

/// The paper's objective for a candidate embedding x (Theorem 1, footnote 1
/// for the weighted case): sum over edges of w_uv * (x_u - x_v)^2. Equal to
/// x^T L x; evaluated directly from the graph for clarity in tests.
double DirichletEnergy(const Graph& g, std::span<const double> x);

}  // namespace spectral

#endif  // SPECTRAL_LPM_GRAPH_LAPLACIAN_H_
