// Connectivity utilities. The Fiedler vector is defined per connected
// component; core/spectral_lpm splits on these results before solving.

#ifndef SPECTRAL_LPM_GRAPH_TRAVERSAL_H_
#define SPECTRAL_LPM_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace spectral {

/// Labels every vertex with a component id in [0, num_components); ids are
/// assigned in order of the lowest vertex id in each component.
std::vector<int64_t> ConnectedComponents(const Graph& g,
                                         int64_t* num_components);

/// True iff the graph is connected (the empty graph counts as connected).
bool IsConnected(const Graph& g);

/// BFS distances from `source` (-1 for unreachable vertices).
std::vector<int64_t> BfsDistances(const Graph& g, int64_t source);

}  // namespace spectral

#endif  // SPECTRAL_LPM_GRAPH_TRAVERSAL_H_
