#include "graph/point_graph.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "util/check.h"

namespace spectral {

namespace {

// All nonzero offsets o in {-r..r}^d with the chosen norm <= r and o
// lexicographically positive (first nonzero component > 0), so each
// unordered pair of points is visited exactly once.
std::vector<std::vector<Coord>> NeighborOffsets(int dims, int radius,
                                                GridConnectivity connectivity) {
  std::vector<std::vector<Coord>> offsets;
  std::vector<Coord> off(static_cast<size_t>(dims),
                         static_cast<Coord>(-radius));
  while (true) {
    int64_t manhattan = 0;
    int64_t chebyshev = 0;
    bool positive = false;
    bool decided = false;
    for (int a = 0; a < dims; ++a) {
      const int64_t v = off[static_cast<size_t>(a)];
      manhattan += std::abs(v);
      chebyshev = std::max<int64_t>(chebyshev, std::abs(v));
      if (!decided && v != 0) {
        positive = v > 0;
        decided = true;
      }
    }
    const int64_t norm =
        connectivity == GridConnectivity::kOrthogonal ? manhattan : chebyshev;
    if (positive && norm >= 1 && norm <= radius) offsets.push_back(off);

    int a = dims - 1;
    while (a >= 0 && off[static_cast<size_t>(a)] == radius) {
      off[static_cast<size_t>(a)] = static_cast<Coord>(-radius);
      --a;
    }
    if (a < 0) break;
    off[static_cast<size_t>(a)] += 1;
  }
  return offsets;
}

}  // namespace

StatusOr<Graph> BuildPointGraph(const PointSet& points,
                                const PointGraphOptions& options) {
  if (options.radius < 1) {
    return InvalidArgumentError("radius must be >= 1");
  }
  if (options.weight <= 0.0) {
    return InvalidArgumentError("weight must be positive");
  }
  const int dims = points.dims();
  const double template_size =
      std::pow(2.0 * options.radius + 1.0, static_cast<double>(dims));
  if (template_size > 1e6) {
    return InvalidArgumentError(
        "neighborhood template too large: (2r+1)^d > 1e6");
  }

  // Local lexicographic index over the points.
  const int64_t n = points.size();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  auto lex_less = [&](int64_t a, int64_t b) {
    const auto pa = points[a];
    const auto pb = points[b];
    for (int k = 0; k < dims; ++k) {
      if (pa[static_cast<size_t>(k)] != pb[static_cast<size_t>(k)]) {
        return pa[static_cast<size_t>(k)] < pb[static_cast<size_t>(k)];
      }
    }
    return false;
  };
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return lex_less(a, b) || (!lex_less(b, a) && a < b);
  });
  for (int64_t i = 0; i + 1 < n; ++i) {
    if (!lex_less(order[static_cast<size_t>(i)], order[static_cast<size_t>(i + 1)]) &&
        !lex_less(order[static_cast<size_t>(i + 1)], order[static_cast<size_t>(i)])) {
      return InvalidArgumentError("duplicate points in the set");
    }
  }
  std::vector<Coord> probe(static_cast<size_t>(dims));
  auto find = [&](std::span<const Coord> p) -> int64_t {
    auto it = std::lower_bound(order.begin(), order.end(), p,
                               [&](int64_t a, std::span<const Coord> q) {
                                 const auto pa = points[a];
                                 for (int k = 0; k < dims; ++k) {
                                   if (pa[static_cast<size_t>(k)] !=
                                       q[static_cast<size_t>(k)]) {
                                     return pa[static_cast<size_t>(k)] <
                                            q[static_cast<size_t>(k)];
                                   }
                                 }
                                 return false;
                               });
    if (it == order.end()) return -1;
    const auto cand = points[*it];
    for (int k = 0; k < dims; ++k) {
      if (cand[static_cast<size_t>(k)] != p[static_cast<size_t>(k)]) return -1;
    }
    return *it;
  };

  const auto offsets =
      NeighborOffsets(dims, options.radius, options.connectivity);

  std::vector<GraphEdge> edges;
  for (int64_t i = 0; i < n; ++i) {
    const auto p = points[i];
    for (const auto& off : offsets) {
      int64_t dist = 0;
      for (int a = 0; a < dims; ++a) {
        probe[static_cast<size_t>(a)] =
            p[static_cast<size_t>(a)] + off[static_cast<size_t>(a)];
        dist += std::abs(static_cast<int>(off[static_cast<size_t>(a)]));
      }
      const int64_t j = find(probe);
      if (j < 0) continue;
      double w = options.weight;
      switch (options.kernel) {
        case WeightKernel::kUniform:
          break;
        case WeightKernel::kInverseDistance:
          w /= static_cast<double>(dist);
          break;
        case WeightKernel::kGaussian: {
          const double r = static_cast<double>(dist) / options.gaussian_sigma;
          w *= std::exp(-r * r);
          break;
        }
      }
      edges.push_back({i, j, w});
    }
  }
  return Graph::FromEdges(n, edges);
}

}  // namespace spectral
