// Grid graph builders: the paper's default model (edge iff Manhattan
// distance 1, i.e. 2d-connectivity) and the 8-connectivity (Moore) variant
// of its Figure 4.

#ifndef SPECTRAL_LPM_GRAPH_GRID_GRAPH_H_
#define SPECTRAL_LPM_GRAPH_GRID_GRAPH_H_

#include "graph/graph.h"
#include "space/grid.h"

namespace spectral {

/// Neighborhood structure of a grid graph.
enum class GridConnectivity {
  /// Orthogonal neighbors only (Manhattan distance 1): 4-connectivity in
  /// 2-d, 2d-connectivity in d dimensions. The paper's default (step 1).
  kOrthogonal,
  /// All Chebyshev-distance-1 neighbors: 8-connectivity in 2-d (Figure 4c).
  kMoore,
};

/// Options for BuildGridGraph.
struct GridGraphOptions {
  GridConnectivity connectivity = GridConnectivity::kOrthogonal;
  /// Weight of orthogonal (Manhattan distance 1) edges.
  double orthogonal_weight = 1.0;
  /// Weight of the extra diagonal edges under kMoore.
  double diagonal_weight = 1.0;
  /// Wrap every axis (torus topology). Axes of side <= 2 do not wrap (the
  /// wrap edge would duplicate an existing one). Only supported for
  /// kOrthogonal connectivity.
  bool periodic = false;
};

/// Builds the graph over all cells of `grid`; vertex ids are row-major cell
/// ids (GridSpec::Flatten).
Graph BuildGridGraph(const GridSpec& grid, const GridGraphOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_GRAPH_GRID_GRAPH_H_
