// Induced subgraphs: used by the component splitter in core/spectral_lpm
// and by recursive spectral bisection, which repeatedly restricts the graph
// to one side of the median cut.

#ifndef SPECTRAL_LPM_GRAPH_SUBGRAPH_H_
#define SPECTRAL_LPM_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace spectral {

/// The subgraph induced by `vertices` plus the local->global vertex map.
struct InducedSubgraph {
  Graph graph;
  /// local_to_global[i] is the original id of local vertex i.
  std::vector<int64_t> local_to_global;
};

/// Builds the subgraph induced by `vertices` (must be distinct, in range).
/// Edges with both endpoints inside are kept with their weights; vertex i of
/// the result corresponds to vertices[i].
InducedSubgraph BuildInducedSubgraph(const Graph& graph,
                                     std::span<const int64_t> vertices);

}  // namespace spectral

#endif  // SPECTRAL_LPM_GRAPH_SUBGRAPH_H_
