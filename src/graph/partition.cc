#include "graph/partition.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "graph/coarsening.h"
#include "util/check.h"

namespace spectral {

CoarseningChain CoarsenToTarget(const Graph& graph, int64_t target,
                                int max_levels) {
  // One cascade implementation for the whole codebase: delegate to
  // BuildCoarseningHierarchy (shared with the multilevel Fiedler engine
  // and the warm start) and compose its per-step maps. The hierarchy
  // builder requires coarsest_size >= 2, so the target is clamped there
  // (a 1-vertex quotient is useless to the sharded cut anyway); its stall
  // rule fires when a round shrinks by less than ~10%.
  CoarseningOptions options;
  options.coarsest_size = std::max<int64_t>(target, 2);
  options.max_levels = max_levels;
  CoarseningHierarchy hierarchy = BuildCoarseningHierarchy(graph, options);

  CoarseningChain chain;
  chain.fine_to_coarse.assign(static_cast<size_t>(graph.num_vertices()), 0);
  std::iota(chain.fine_to_coarse.begin(), chain.fine_to_coarse.end(), 0);
  for (const Coarsening& step : hierarchy.steps) {
    for (int64_t& c : chain.fine_to_coarse) {
      c = step.fine_to_coarse[static_cast<size_t>(c)];
    }
  }
  chain.levels = static_cast<int>(hierarchy.steps.size());
  chain.coarse = hierarchy.steps.empty()
                     ? graph
                     : std::move(hierarchy.steps.back().coarse);
  return chain;
}

GraphContraction ContractByParts(const Graph& graph,
                                 std::span<const int64_t> part_of,
                                 int64_t num_parts) {
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(part_of.size()),
                    graph.num_vertices());
  SPECTRAL_CHECK_GE(num_parts, 1);
  GraphContraction result;
  std::vector<GraphEdge> edges;
  graph.ForEachEdge([&](int64_t u, int64_t v, double w) {
    const int64_t pu = part_of[static_cast<size_t>(u)];
    const int64_t pv = part_of[static_cast<size_t>(v)];
    SPECTRAL_DCHECK_GE(pu, 0);
    SPECTRAL_DCHECK_LT(pu, num_parts);
    SPECTRAL_DCHECK_GE(pv, 0);
    SPECTRAL_DCHECK_LT(pv, num_parts);
    if (pu == pv) return;
    edges.push_back({pu, pv, w});
    result.cut_edges += 1;
    result.cut_weight += w;
  });
  result.quotient = Graph::FromEdges(num_parts, edges);
  return result;
}

}  // namespace spectral
