#include "graph/partition.h"

#include <numeric>
#include <utility>

#include "graph/coarsening.h"
#include "util/check.h"

namespace spectral {

CoarseningChain CoarsenToTarget(const Graph& graph, int64_t target,
                                int max_levels) {
  if (target < 1) target = 1;
  CoarseningChain chain;
  chain.fine_to_coarse.assign(static_cast<size_t>(graph.num_vertices()), 0);
  std::iota(chain.fine_to_coarse.begin(), chain.fine_to_coarse.end(), 0);

  const Graph* current = &graph;
  Graph held;  // owns the latest coarse graph once a level has run
  while (current->num_vertices() > target && chain.levels < max_levels) {
    Coarsening level = CoarsenByHeavyEdgeMatching(*current);
    // A matching that barely shrinks the graph (isolated vertices, stars)
    // would loop without converging on the target; stop instead.
    if (level.num_coarse > (current->num_vertices() * 19) / 20) break;
    for (int64_t& c : chain.fine_to_coarse) {
      c = level.fine_to_coarse[static_cast<size_t>(c)];
    }
    held = std::move(level.coarse);
    current = &held;
    ++chain.levels;
  }
  chain.coarse = chain.levels == 0 ? graph : std::move(held);
  return chain;
}

GraphContraction ContractByParts(const Graph& graph,
                                 std::span<const int64_t> part_of,
                                 int64_t num_parts) {
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(part_of.size()),
                    graph.num_vertices());
  SPECTRAL_CHECK_GE(num_parts, 1);
  GraphContraction result;
  std::vector<GraphEdge> edges;
  graph.ForEachEdge([&](int64_t u, int64_t v, double w) {
    const int64_t pu = part_of[static_cast<size_t>(u)];
    const int64_t pv = part_of[static_cast<size_t>(v)];
    SPECTRAL_DCHECK_GE(pu, 0);
    SPECTRAL_DCHECK_LT(pu, num_parts);
    SPECTRAL_DCHECK_GE(pv, 0);
    SPECTRAL_DCHECK_LT(pv, num_parts);
    if (pu == pv) return;
    edges.push_back({pu, pv, w});
    result.cut_edges += 1;
    result.cut_weight += w;
  });
  result.quotient = Graph::FromEdges(num_parts, edges);
  return result;
}

}  // namespace spectral
