// Graph-side building blocks of the sharded ordering path: repeated
// heavy-edge coarsening down to a target size (so a cheap spectral solve on
// the coarse graph can drive the top-level cut) and part-wise contraction
// into a quotient graph (one vertex per shard, edge weights summing the cut
// weight — the "shard-contraction graph" whose spectral order stitches the
// shard orders back together).

#ifndef SPECTRAL_LPM_GRAPH_PARTITION_H_
#define SPECTRAL_LPM_GRAPH_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace spectral {

/// Result of CoarsenToTarget: the coarsest graph plus the composite
/// fine-to-coarse map over every level.
struct CoarseningChain {
  Graph coarse;
  /// fine_to_coarse[v] is the coarsest vertex containing original vertex v
  /// (identity when no level was applied).
  std::vector<int64_t> fine_to_coarse;
  /// Coarsening levels actually applied.
  int levels = 0;
};

/// Coarsens `graph` by heavy-edge matching until it has at most `target`
/// vertices, up to `max_levels` rounds. A thin composition wrapper over
/// graph/coarsening.h's BuildCoarseningHierarchy — the ONE cascade shared
/// with the multilevel Fiedler engine and the warm start — so its
/// stopping rules apply: a round that fails to shrink the graph by at
/// least ~10% stalls the cascade (matchings on star-like graphs), and the
/// target is clamped to >= 2. Deterministic.
CoarseningChain CoarsenToTarget(const Graph& graph, int64_t target,
                                int max_levels);

/// Result of ContractByParts.
struct GraphContraction {
  /// num_parts vertices; the weight of edge (i, j) is the summed weight of
  /// the fine edges crossing parts i and j.
  Graph quotient;
  /// Fine edges whose endpoints lie in different parts.
  int64_t cut_edges = 0;
  /// Summed weight of those edges.
  double cut_weight = 0.0;
};

/// Contracts each part to one vertex. `part_of` assigns every fine vertex a
/// part id in [0, num_parts); intra-part edges disappear, inter-part edges
/// merge by summing weights.
GraphContraction ContractByParts(const Graph& graph,
                                 std::span<const int64_t> part_of,
                                 int64_t num_parts);

}  // namespace spectral

#endif  // SPECTRAL_LPM_GRAPH_PARTITION_H_
