#include "graph/laplacian.h"

#include "util/check.h"

namespace spectral {

SparseMatrix BuildLaplacian(const Graph& g) {
  const int64_t n = g.num_vertices();
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(n + 4 * g.num_edges()));
  for (int64_t v = 0; v < n; ++v) {
    triplets.push_back({v, v, g.WeightedDegree(v)});
  }
  g.ForEachEdge([&](int64_t u, int64_t v, double w) {
    triplets.push_back({u, v, -w});
    triplets.push_back({v, u, -w});
  });
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

double DirichletEnergy(const Graph& g, std::span<const double> x) {
  SPECTRAL_CHECK_EQ(static_cast<int64_t>(x.size()), g.num_vertices());
  double acc = 0.0;
  g.ForEachEdge([&](int64_t u, int64_t v, double w) {
    const double diff = x[static_cast<size_t>(u)] - x[static_cast<size_t>(v)];
    acc += w * diff * diff;
  });
  return acc;
}

}  // namespace spectral
