// Graph coarsening by heavy-edge matching: the contraction step of
// multilevel spectral methods. Matched vertex pairs merge into one coarse
// vertex; parallel coarse edges sum their weights, so the coarse Laplacian
// is the Galerkin projection of the fine one under piecewise-constant
// interpolation.

#ifndef SPECTRAL_LPM_GRAPH_COARSENING_H_
#define SPECTRAL_LPM_GRAPH_COARSENING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace spectral {

/// One coarsening step.
struct Coarsening {
  Graph coarse;
  /// fine_to_coarse[v] is the coarse vertex containing fine vertex v.
  std::vector<int64_t> fine_to_coarse;
  int64_t num_coarse = 0;
};

/// Contracts a maximal matching chosen greedily by descending edge weight
/// (deterministic: vertices are visited in id order; ties prefer the lowest
/// neighbor id). Unmatched vertices are copied. The coarse graph has
/// between half and all of the fine vertex count.
Coarsening CoarsenByHeavyEdgeMatching(const Graph& graph);

/// Prolongs a coarse-vertex vector to the fine graph (piecewise constant:
/// fine vertex v gets coarse[fine_to_coarse[v]]).
std::vector<double> ProlongVector(const Coarsening& coarsening,
                                  const std::vector<double>& coarse_values);

/// Stopping shape for BuildCoarseningHierarchy.
struct CoarseningOptions {
  /// Stop once a level has at most this many vertices.
  int64_t coarsest_size = 96;
  /// Also stop if a level shrinks by less than this factor (matching
  /// stalls on star-like graphs).
  double min_shrink_factor = 0.9;
  /// Hard cap on the number of levels.
  int max_levels = 40;
};

/// The full heavy-edge-matching cascade, finest to coarsest. This is the
/// one hierarchy build shared by the multilevel Fiedler engine and the
/// exact solver's multilevel warm start (core/multilevel.h,
/// core/spectral_lpm.h).
struct CoarseningHierarchy {
  /// steps[k] contracts level k (steps[0]'s fine graph is the input) into
  /// level k + 1 (= steps[k].coarse). Empty when the input is already at or
  /// below coarsest_size.
  std::vector<Coarsening> steps;

  /// Vertex count of the coarsest level (the input size when no step was
  /// taken and `input_vertices` was passed through).
  int64_t coarsest_size(int64_t input_vertices) const {
    return steps.empty() ? input_vertices : steps.back().num_coarse;
  }
};

/// Repeats CoarsenByHeavyEdgeMatching until one of the stopping rules in
/// `options` fires. Deterministic.
CoarseningHierarchy BuildCoarseningHierarchy(
    const Graph& graph, const CoarseningOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_GRAPH_COARSENING_H_
