// Graph coarsening by heavy-edge matching: the contraction step of
// multilevel spectral methods. Matched vertex pairs merge into one coarse
// vertex; parallel coarse edges sum their weights, so the coarse Laplacian
// is the Galerkin projection of the fine one under piecewise-constant
// interpolation.

#ifndef SPECTRAL_LPM_GRAPH_COARSENING_H_
#define SPECTRAL_LPM_GRAPH_COARSENING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace spectral {

/// One coarsening step.
struct Coarsening {
  Graph coarse;
  /// fine_to_coarse[v] is the coarse vertex containing fine vertex v.
  std::vector<int64_t> fine_to_coarse;
  int64_t num_coarse = 0;
};

/// Contracts a maximal matching chosen greedily by descending edge weight
/// (deterministic: vertices are visited in id order; ties prefer the lowest
/// neighbor id). Unmatched vertices are copied. The coarse graph has
/// between half and all of the fine vertex count.
Coarsening CoarsenByHeavyEdgeMatching(const Graph& graph);

/// Prolongs a coarse-vertex vector to the fine graph (piecewise constant:
/// fine vertex v gets coarse[fine_to_coarse[v]]).
std::vector<double> ProlongVector(const Coarsening& coarsening,
                                  const std::vector<double>& coarse_values);

}  // namespace spectral

#endif  // SPECTRAL_LPM_GRAPH_COARSENING_H_
