// OrderingRequest: the one value type every consumer uses to ask for a
// linear order. A request names the engine (an OrderingEngine registry
// name), carries a tagged input source — a point set, a caller-built graph,
// or points plus affinity edges — and embeds the full per-request option
// set. Requests are self-describing: Fingerprint() is a stable content hash
// of the input and the effective options, which is what MappingService keys
// its order cache on and what batch deduplication compares.
//
// Input payloads are held by shared_ptr<const T> so a request is a value:
// copyable, storable in batches, and safe to hand across threads. The
// borrowing factories (taking const T&) wrap the caller's object without
// copying — the caller must keep it alive until every Order/OrderBatch call
// using the request has returned. The owning factories (taking shared_ptr)
// tie the payload's lifetime to the request.

#ifndef SPECTRAL_LPM_CORE_ORDERING_REQUEST_H_
#define SPECTRAL_LPM_CORE_ORDERING_REQUEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/recursive_bisection.h"
#include "core/spectral_lpm.h"
#include "graph/graph.h"
#include "space/point_set.h"
#include "util/hash.h"
#include "util/status.h"

namespace spectral {

class MappingService;

/// Shard shape for the "sharded-spectral" engine: the request's graph is
/// coarsened, cut into num_shards mass-balanced chunks of the coarse
/// spectral order, each shard is solved as its own "spectral" sub-request,
/// and the shard orders are stitched via the spectral order of the
/// shard-contraction graph (see core/sharded_engine.h).
struct ShardedEngineOptions {
  /// Number of shards K. 1 (the default) delegates to the monolithic
  /// "spectral" engine byte-for-byte; values above the vertex count clamp.
  int num_shards = 1;
  /// The partitioner coarsens the graph to at most this many vertices
  /// before its one cheap spectral solve (the cut must stay far below the
  /// monolithic eigensolve cost for sharding to win).
  int64_t coarsen_target = 1024;
  /// Safety cap on coarsening rounds.
  int max_coarsen_levels = 30;
};

/// Per-request configuration shared by every engine family.
struct OrderingEngineOptions {
  /// Graph build + eigensolver configuration for the spectral family (also
  /// the `base` of bisection). `parallelism` and `pool` live here.
  SpectralLpmOptions spectral;
  /// multilevel_threshold used by "spectral-multilevel" when
  /// spectral.multilevel_threshold is 0 (the flat engine's default).
  int64_t multilevel_default_threshold = 256;
  /// Recursion shape for "bisection"; its `base` member is ignored in favor
  /// of `spectral` above.
  RecursiveBisectionOptions bisection;
  /// Shard shape for "sharded-spectral".
  ShardedEngineOptions sharded;
  /// Runtime-only sub-request routing handle (never fingerprinted, not
  /// owned): when set, composite engines — today "sharded-spectral" —
  /// submit the sub-requests they spawn back through this service, so the
  /// LRU order cache deduplicates repeated shards and the coarse/quotient
  /// solves across requests. MappingService sets it on every request it
  /// executes; leave it null for standalone engine calls (engines then
  /// solve sub-requests directly, with byte-identical results).
  MappingService* service = nullptr;
};

/// Which input payload a request carries.
enum class OrderingInputKind {
  /// A point set; the engine builds its own neighborhood graph (or grid).
  kPoints,
  /// A point set plus extra affinity edges by point index (paper section 4:
  /// "treat p and q as if they were at distance 1"). Spectral family only.
  kPointsWithAffinity,
  /// A caller-built graph whose weights encode mapping priority; `points`
  /// is optional and only canonicalizes degenerate eigenspaces. Spectral
  /// family only.
  kGraph,
};

/// A single ordering request: engine name + tagged input + options.
struct OrderingRequest {
  /// OrderingEngine registry name (see AllOrderingEngineNames()). Engines
  /// reject requests addressed to a different engine, which keeps cache
  /// keys and batch routing honest.
  std::string engine = "spectral";

  OrderingInputKind input = OrderingInputKind::kPoints;
  /// kPoints / kPointsWithAffinity payload; optional canonicalization hint
  /// under kGraph.
  std::shared_ptr<const PointSet> points;
  /// kGraph payload.
  std::shared_ptr<const Graph> graph;
  /// kPointsWithAffinity payload, appended to options.spectral's edges.
  std::vector<GraphEdge> affinity_edges;

  /// Full per-request configuration (no hidden engine state).
  OrderingEngineOptions options;

  // Borrowing factories: the payload is referenced, not copied; the caller
  // keeps it alive until the request is no longer used.
  static OrderingRequest ForPoints(const PointSet& points,
                                   std::string_view engine = "spectral");
  static OrderingRequest ForPointsWithAffinity(
      const PointSet& points, std::vector<GraphEdge> affinity_edges,
      std::string_view engine = "spectral");
  static OrderingRequest ForGraph(const Graph& graph,
                                  const PointSet* canonical_points = nullptr,
                                  std::string_view engine = "spectral");

  // Owning factories: the request shares ownership of the payload.
  static OrderingRequest ForPoints(std::shared_ptr<const PointSet> points,
                                   std::string_view engine = "spectral");
  static OrderingRequest ForGraph(std::shared_ptr<const Graph> graph,
                                  std::shared_ptr<const PointSet>
                                      canonical_points = nullptr,
                                  std::string_view engine = "spectral");

  /// Structural validity: a non-empty engine name and a payload matching
  /// `input` (points for the point kinds, graph for kGraph, affinity edges
  /// only under kPointsWithAffinity). Engines call this before ordering;
  /// MappingService rejects invalid requests without consulting the cache.
  Status Validate() const;

  /// Stable content hash of the request: engine name, input kind, the
  /// *contents* of the point set / graph / affinity edges, and the
  /// effective options — the option fields the named engine actually reads
  /// (curve engines read none; `bisection.base` is always overwritten by
  /// the engine and never hashed; unknown engine names conservatively hash
  /// everything). Two requests with equal fingerprints produce
  /// byte-identical OrderingResults, so the fingerprint is a sound cache
  /// key, and requests differing only in ignored fields share one cache
  /// entry. Runtime-only fields are excluded: `spectral.parallelism`,
  /// `spectral.pool`, `spectral.faults`, and the fiedler `matvec_pool`
  /// pointers never change the computed order of a fault-free solve
  /// (solves are byte-identical across thread counts) and would otherwise
  /// defeat caching across differently-parallel runs.
  Fingerprint128 Fingerprint() const;

  /// Number of input vertices (points or graph vertices); 0 when the
  /// payload is missing. MappingService schedules batches largest-first.
  int64_t InputSize() const;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_ORDERING_REQUEST_H_
