// OrderingEngine: one request-based interface over every linear-order
// producer in the library — the spectral mapper (the paper's contribution),
// recursive spectral bisection, and all fractal/sweep curve baselines.
//
// The single entry point is Order(const OrderingRequest&): the request
// names the engine, carries a tagged input (point set | caller-built graph
// | points + affinity edges), and embeds the full option set, so engines
// are stateless adapters and there is exactly one way to ask for an order.
// Requests also expose a stable Fingerprint() (content hash of input +
// options), which core/mapping_service.h uses to batch, deduplicate, and
// cache orders across heterogeneous traffic.
//
// Consumers construct engines by name through MakeOrderingEngine — or, for
// batching and caching, go through the MappingService facade — so adding a
// backend (a sharded solver, a cached order store, a learned mapping) is
// one registry entry that is instantly reachable from the CLI, the benches,
// and the examples. The registry mirrors sfc/curve_registry.h one level up.

#ifndef SPECTRAL_LPM_CORE_ORDERING_ENGINE_H_
#define SPECTRAL_LPM_CORE_ORDERING_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/linear_order.h"
#include "core/ordering_request.h"
#include "eigen/kernel_profile.h"
#include "linalg/vector_ops.h"
#include "space/grid.h"
#include "util/status.h"

namespace spectral {

/// A linear order plus the diagnostics of whichever method produced it.
/// Fields a method does not populate keep their zero defaults.
struct OrderingResult {
  LinearOrder order;

  /// Which concrete solver/curve produced the order ("lanczos",
  /// "dense-jacobi", "median-cut", a curve name, ...).
  std::string method;

  // Spectral family (spectral, spectral-multilevel, bisection).
  double lambda2 = 0.0;
  int64_t num_components = 0;
  int64_t matvecs = 0;
  /// Eigensolver restart cycles summed over components (Krylov paths).
  int64_t restarts = 0;
  /// Fused block-operator (SpMM) applications (block Lanczos paths).
  int64_t spmm_calls = 0;
  /// Reorthogonalization panel-kernel applications (block Lanczos paths).
  int64_t reorth_panels = 0;
  /// Per-kernel wall time + deterministic flop estimates (block Lanczos
  /// paths; see eigen/kernel_profile.h). Only the flop counters appear in
  /// `detail` — the `*_ms` fields are machine-dependent and detail strings
  /// are compared byte-for-byte by caching/sharding layers.
  KernelProfile profile;
  /// The 1-d embedding the order was sorted from (the concatenated
  /// per-component Fiedler vectors); empty for non-spectral engines.
  Vector embedding;

  // Recursive bisection.
  int64_t num_solves = 0;
  int depth = 0;

  // Curve family: the axis-0 side and total cell count of the enclosing
  // grid the curve was instantiated on (power-of-2 / power-of-3 rounding
  // means the grid can be larger than the data's bounding box; sweep,
  // snake, spiral, and the rectangular peano composition keep it tight).
  Coord grid_side = 0;
  int64_t grid_cells = 0;

  /// One-line, method-specific summary ("engine=lanczos", "grid_side=64",
  /// ...) for CLIs and bench logs. MappingService appends a " | cache=..."
  /// suffix recording how it served the request.
  std::string detail;

  /// False when a spectral solve exhausted its restart budget and the order
  /// is a best-effort estimate (mirrored as a "converged=0/1" token in
  /// `detail` for the spectral family). Curve engines and bisection always
  /// converge. MappingService never caches or snapshots a result with
  /// converged == false and runs its retry/degrade ladder instead.
  bool converged = true;
};

/// Abstract producer of linear orders. Stateless: everything a solve needs
/// travels in the request.
class OrderingEngine {
 public:
  virtual ~OrderingEngine() = default;

  /// The registry name this engine was constructed under.
  virtual std::string_view name() const = 0;

  /// True when kGraph requests are implemented: the spectral family accepts
  /// a caller-built graph (section-4 custom weights); curve baselines are
  /// geometry-only and return Unimplemented.
  virtual bool supports_graph_input() const { return false; }

  /// Runs the request. Returns InvalidArgument when the request fails
  /// Validate() or names a different engine, and Unimplemented when this
  /// engine cannot consume the request's input kind.
  virtual StatusOr<OrderingResult> Order(
      const OrderingRequest& request) const = 0;
};

/// Every registry name, in presentation order: the spectral family first,
/// then the curve families (the concrete list lives in the registry; CLIs
/// and error messages must derive their listings from this function).
std::vector<std::string> AllOrderingEngineNames();

/// Constructs the engine registered under `name`; NotFound for unknown
/// names (the message lists the registry).
StatusOr<std::unique_ptr<OrderingEngine>> MakeOrderingEngine(
    std::string_view name);

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_ORDERING_ENGINE_H_
