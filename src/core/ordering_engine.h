// OrderingEngine: one interface over every linear-order producer in the
// library — the spectral mapper (the paper's contribution), recursive
// spectral bisection, and all fractal/sweep curve baselines. Benches, the
// CLI, and examples construct engines by name through MakeOrderingEngine
// instead of switching on method enums, so adding a backend (a sharded
// solver, a cached order store, a learned mapping) is one registry entry.
//
// The registry mirrors sfc/curve_registry.h one level up: curve names map
// to CurveKind adapters, and the spectral family adds "spectral",
// "spectral-multilevel", and "bisection".

#ifndef SPECTRAL_LPM_CORE_ORDERING_ENGINE_H_
#define SPECTRAL_LPM_CORE_ORDERING_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/linear_order.h"
#include "core/recursive_bisection.h"
#include "core/spectral_lpm.h"
#include "graph/graph.h"
#include "sfc/curve_registry.h"
#include "space/point_set.h"
#include "util/status.h"

namespace spectral {

/// A linear order plus the diagnostics of whichever method produced it.
/// Fields a method does not populate keep their zero defaults.
struct OrderingResult {
  LinearOrder order;

  /// Which concrete solver/curve produced the order ("lanczos",
  /// "dense-jacobi", "median-cut", a curve name, ...).
  std::string method;

  // Spectral family (spectral, spectral-multilevel, bisection).
  double lambda2 = 0.0;
  int64_t num_components = 0;
  int64_t matvecs = 0;
  /// The 1-d embedding the order was sorted from (the concatenated
  /// per-component Fiedler vectors); empty for non-spectral engines.
  Vector embedding;

  // Recursive bisection.
  int64_t num_solves = 0;
  int depth = 0;

  // Curve family: the per-axis side and cell count of the padded enclosing
  // grid the curve was instantiated on (power of 2 / power of 3 rounding
  // means the grid can be much larger than the data's bounding box).
  Coord grid_side = 0;
  int64_t grid_cells = 0;

  /// One-line, method-specific summary ("engine=lanczos", "grid_side=64",
  /// ...) for CLIs and bench logs.
  std::string detail;
};

/// Abstract producer of linear orders over point sets.
class OrderingEngine {
 public:
  virtual ~OrderingEngine() = default;

  /// The registry name this engine was constructed under.
  virtual std::string_view name() const = 0;

  /// True when OrderGraph is implemented: the spectral family accepts a
  /// caller-built graph (section-4 custom weights); curve baselines are
  /// geometry-only and return Unimplemented.
  virtual bool supports_graph_input() const { return false; }

  /// Orders `points`; the engine's geometry/graph pipeline is applied per
  /// its construction-time options.
  virtual StatusOr<OrderingResult> Order(const PointSet& points) const = 0;

  /// Orders the vertices of `graph` (weights encode mapping priority).
  /// `points` is optional and only used for degenerate-eigenspace
  /// canonicalization. Default: Unimplemented.
  virtual StatusOr<OrderingResult> OrderGraph(const Graph& graph,
                                              const PointSet* points) const;
};

/// Construction-time configuration shared by the registry.
struct OrderingEngineOptions {
  /// Graph build + eigensolver configuration for the spectral family (also
  /// the `base` of bisection). `parallelism` lives here.
  SpectralLpmOptions spectral;
  /// multilevel_threshold used by "spectral-multilevel" when
  /// spectral.multilevel_threshold is 0 (the flat engine's default).
  int64_t multilevel_default_threshold = 256;
  /// Recursion shape for "bisection"; its `base` member is ignored in favor
  /// of `spectral` above.
  RecursiveBisectionOptions bisection;
};

/// Every registry name, in presentation order: "spectral",
/// "spectral-multilevel", "bisection", then the curve families
/// ("sweep", "snake", "zorder", "gray", "hilbert", "peano", "spiral").
std::vector<std::string> AllOrderingEngineNames();

/// Constructs the engine registered under `name`; NotFound for unknown
/// names (the message lists the registry).
StatusOr<std::unique_ptr<OrderingEngine>> MakeOrderingEngine(
    std::string_view name, const OrderingEngineOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_ORDERING_ENGINE_H_
