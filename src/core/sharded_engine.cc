#include "core/sharded_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/mapping_service.h"
#include "core/ordering_request.h"
#include "graph/partition.h"
#include "graph/point_graph.h"
#include "graph/subgraph.h"
#include "util/check.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace spectral {

namespace {

// Mirrors the spectral engine's effective-option resolution: the request's
// affinity edges are appended to any configured ones.
SpectralLpmOptions EffectiveSpectralOptions(const OrderingRequest& request) {
  SpectralLpmOptions spectral = request.options.spectral;
  spectral.affinity_edges.insert(spectral.affinity_edges.end(),
                                 request.affinity_edges.begin(),
                                 request.affinity_edges.end());
  return spectral;
}

// The spectral configuration every sub-request carries: affinity edges are
// already merged into the working graph and the pool is a runtime field the
// executor (service or local loop) provides. Keeping sub-options canonical
// maximizes fingerprint sharing between sub-requests and direct traffic.
SpectralLpmOptions SubRequestSpectralOptions(const SpectralLpmOptions& base) {
  SpectralLpmOptions sub = base;
  sub.affinity_edges.clear();
  sub.pool = nullptr;
  return sub;
}

// Options for the two small "cut"/"stitch" solves (coarse order, quotient
// order). These must pick the same *direction* the monolithic solve would:
// coarsening perturbs a degenerate spectrum — a square grid's two-fold
// lambda2 splits by a few percent under heavy-edge matching — so with the
// default tolerance the coarse solve would follow an arbitrary perturbed
// eigenvector while the monolithic solve canonicalizes toward the data's
// axes, and the shards would band perpendicular to the monolithic order.
// Widening the near-degeneracy window (and extracting enough pairs to span
// it) re-aligns the cut with the monolithic canonicalization; genuinely
// anisotropic spectra have gaps far above 25% and are unaffected.
SpectralLpmOptions CutSolveSpectralOptions(const SpectralLpmOptions& base,
                                           const PointSet* points) {
  SpectralLpmOptions cut = SubRequestSpectralOptions(base);
  if (points != nullptr && base.canonicalize_with_axes) {
    cut.fiedler.num_pairs =
        std::max(cut.fiedler.num_pairs, points->dims() + 1);
    cut.fiedler.degeneracy_rel_tol =
        std::max(cut.fiedler.degeneracy_rel_tol, 0.25);
  }
  return cut;
}

// Builds the graph a kPoints/kPointsWithAffinity request resolves to —
// neighborhood edges merged with affinity edges — replicating the
// monolithic mapper's construction (and its validation errors) so shard
// solves see exactly the same weights.
StatusOr<Graph> BuildWorkingGraph(const PointSet& points,
                                  const SpectralLpmOptions& options) {
  auto graph = BuildPointGraph(points, options.graph);
  if (!graph.ok()) return graph.status();
  if (options.affinity_edges.empty()) return graph;

  std::vector<GraphEdge> edges;
  edges.reserve(static_cast<size_t>(graph->num_edges()) +
                options.affinity_edges.size());
  graph->ForEachEdge([&](int64_t u, int64_t v, double w) {
    edges.push_back({u, v, w});
  });
  for (const GraphEdge& e : options.affinity_edges) {
    if (e.u < 0 || e.u >= points.size() || e.v < 0 || e.v >= points.size()) {
      return InvalidArgumentError("affinity edge endpoint out of range");
    }
    if (e.u == e.v) {
      return InvalidArgumentError("affinity edge endpoints must differ");
    }
    if (e.weight <= 0.0) {
      return InvalidArgumentError("affinity edge weight must be positive");
    }
    edges.push_back(e);
  }
  return Graph::FromEdges(points.size(), edges);
}

// Rounded centroid of each vertex group — canonicalization hints for the
// coarse and quotient solves, keeping their (possibly degenerate) Fiedler
// orientation aligned with the data's axes exactly like the monolithic
// solve's.
std::shared_ptr<const PointSet> GroupCentroids(
    const PointSet& points, std::span<const int64_t> group_of,
    int64_t num_groups) {
  std::vector<std::vector<double>> sums(
      static_cast<size_t>(num_groups),
      std::vector<double>(static_cast<size_t>(points.dims()), 0.0));
  std::vector<int64_t> counts(static_cast<size_t>(num_groups), 0);
  for (int64_t v = 0; v < points.size(); ++v) {
    const int64_t g = group_of[static_cast<size_t>(v)];
    ++counts[static_cast<size_t>(g)];
    const auto p = points[v];
    for (int a = 0; a < points.dims(); ++a) {
      sums[static_cast<size_t>(g)][static_cast<size_t>(a)] +=
          static_cast<double>(p[static_cast<size_t>(a)]);
    }
  }
  auto centroids = std::make_shared<PointSet>(points.dims());
  std::vector<Coord> c(static_cast<size_t>(points.dims()));
  for (int64_t g = 0; g < num_groups; ++g) {
    SPECTRAL_CHECK_GT(counts[static_cast<size_t>(g)], 0);
    for (int a = 0; a < points.dims(); ++a) {
      c[static_cast<size_t>(a)] = static_cast<Coord>(
          std::llround(sums[static_cast<size_t>(g)][static_cast<size_t>(a)] /
                       static_cast<double>(counts[static_cast<size_t>(g)])));
    }
    centroids->Add(c);
  }
  return centroids;
}

// Executes `requests` — through the routing service when present (cache
// dedup, shared pool), otherwise locally with shard-level ParallelFor on
// `pool`. The two paths produce byte-identical results: pool and service
// are runtime-only fields that never change a solve's output.
std::vector<StatusOr<OrderingResult>> SolveSubRequests(
    std::span<const OrderingRequest> requests, MappingService* service,
    ThreadPool* pool) {
  if (service != nullptr) return service->OrderBatch(requests);

  std::vector<StatusOr<OrderingResult>> results(
      requests.size(),
      StatusOr<OrderingResult>(Status(StatusCode::kInternal, "unsolved")));
  auto solve = [&](int64_t i) {
    auto engine = MakeOrderingEngine(requests[static_cast<size_t>(i)].engine);
    if (!engine.ok()) {
      results[static_cast<size_t>(i)] = engine.status();
      return;
    }
    if (pool != nullptr) {
      OrderingRequest shared = requests[static_cast<size_t>(i)];
      shared.options.spectral.pool = pool;
      results[static_cast<size_t>(i)] = (*engine)->Order(shared);
    } else {
      results[static_cast<size_t>(i)] =
          (*engine)->Order(requests[static_cast<size_t>(i)]);
    }
  };
  if (pool != nullptr && requests.size() > 1) {
    pool->ParallelFor(0, static_cast<int64_t>(requests.size()), 1, solve);
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(requests.size()); ++i) {
      solve(i);
    }
  }
  return results;
}

class ShardedSpectralEngine : public OrderingEngine {
 public:
  std::string_view name() const override {
    return kShardedSpectralEngineName;
  }
  bool supports_graph_input() const override { return true; }

  StatusOr<OrderingResult> Order(
      const OrderingRequest& request) const override {
    if (Status s = request.Validate(); !s.ok()) return s;
    if (request.engine != kShardedSpectralEngineName) {
      return InvalidArgumentError(
          "request addressed to engine '" + request.engine +
          "' given to engine '" + std::string(kShardedSpectralEngineName) +
          "'");
    }
    const ShardedEngineOptions& sharded = request.options.sharded;
    if (sharded.num_shards < 1) {
      return InvalidArgumentError("sharded-spectral: num_shards must be >= 1");
    }

    const SpectralLpmOptions spectral = EffectiveSpectralOptions(request);
    const PointSet* points = request.points.get();

    // Resolve the working graph the shards cut up. kGraph requests use the
    // caller's graph as-is (the monolithic engine ignores affinity options
    // there too); point requests build the neighborhood graph and merge
    // affinity edges, exactly like the monolithic mapper.
    Graph built;
    const Graph* graph = nullptr;
    if (request.input == OrderingInputKind::kGraph) {
      graph = request.graph.get();
    } else {
      if (points->empty()) {
        return InvalidArgumentError("cannot map an empty point set");
      }
      auto working = BuildWorkingGraph(*points, spectral);
      if (!working.ok()) return working.status();
      built = *std::move(working);
      graph = &built;
    }

    const int64_t n = graph->num_vertices();
    if (n == 0) return InvalidArgumentError("cannot map an empty graph");
    const int64_t requested_shards =
        std::min<int64_t>(sharded.num_shards, n);
    if (requested_shards <= 1) return MonolithicDelegate(request);

    MappingService* service = request.options.service;
    std::unique_ptr<ThreadPool> owned_pool;
    ThreadPool* pool = spectral.pool;
    if (service == nullptr && pool == nullptr) {
      int threads = spectral.parallelism;
      if (threads <= 0) threads = ThreadPool::DefaultThreads();
      if (threads > 1) {
        owned_pool = std::make_unique<ThreadPool>(threads);
        pool = owned_pool.get();
      }
    }

    // --- Partition: coarse spectral order, cut into mass-balanced chunks.
    CoarseningChain chain =
        CoarsenToTarget(*graph, std::max(sharded.coarsen_target,
                                         requested_shards),
                        sharded.max_coarsen_levels);
    const int64_t coarse_n = chain.coarse.num_vertices();
    std::vector<int64_t> coarse_mass(static_cast<size_t>(coarse_n), 0);
    for (int64_t v = 0; v < n; ++v) {
      ++coarse_mass[static_cast<size_t>(
          chain.fine_to_coarse[static_cast<size_t>(v)])];
    }

    auto coarse_graph = std::make_shared<const Graph>(std::move(chain.coarse));
    std::shared_ptr<const PointSet> coarse_points;
    if (points != nullptr && spectral.canonicalize_with_axes) {
      coarse_points = GroupCentroids(*points, chain.fine_to_coarse, coarse_n);
    }
    OrderingRequest coarse_request = OrderingRequest::ForGraph(
        coarse_graph, coarse_points, "spectral");
    coarse_request.options.spectral = CutSolveSpectralOptions(spectral, points);
    auto coarse_results = SolveSubRequests(
        std::span<const OrderingRequest>(&coarse_request, 1), service, pool);
    if (!coarse_results.front().ok()) return coarse_results.front().status();
    const OrderingResult& coarse = *coarse_results.front();

    // Chunk the coarse order: shard id grows with the fine-vertex mass
    // already placed, so chunks are contiguous in the coarse order and
    // balanced to ~n/K fine vertices. Oversized coarse vertices can skip
    // ids; compact to the shards actually used.
    std::vector<int64_t> coarse_by_rank(static_cast<size_t>(coarse_n), -1);
    for (int64_t c = 0; c < coarse_n; ++c) {
      coarse_by_rank[static_cast<size_t>(coarse.order.RankOf(c))] = c;
    }
    std::vector<int64_t> shard_of_coarse(static_cast<size_t>(coarse_n), -1);
    int64_t prefix_mass = 0;
    int64_t last_raw = -1;
    int64_t num_shards = -1;
    for (int64_t r = 0; r < coarse_n; ++r) {
      const int64_t c = coarse_by_rank[static_cast<size_t>(r)];
      const int64_t raw = std::min<int64_t>(
          requested_shards - 1, prefix_mass * requested_shards / n);
      if (raw != last_raw) {
        ++num_shards;
        last_raw = raw;
      }
      shard_of_coarse[static_cast<size_t>(c)] = num_shards;
      prefix_mass += coarse_mass[static_cast<size_t>(c)];
    }
    ++num_shards;
    if (num_shards <= 1) return MonolithicDelegate(request);

    std::vector<int64_t> part_of(static_cast<size_t>(n), -1);
    for (int64_t v = 0; v < n; ++v) {
      part_of[static_cast<size_t>(v)] = shard_of_coarse[static_cast<size_t>(
          chain.fine_to_coarse[static_cast<size_t>(v)])];
    }

    // --- Shard sub-requests over induced subgraphs.
    std::vector<std::vector<int64_t>> members(
        static_cast<size_t>(num_shards));
    for (int64_t v = 0; v < n; ++v) {
      members[static_cast<size_t>(part_of[static_cast<size_t>(v)])]
          .push_back(v);
    }
    // Relabel shards by their lowest fine member. Every spectral solve in
    // this library fixes its sign at the lowest-id vertex with a
    // significant component, so giving the shard that contains fine vertex
    // 0 quotient id 0 anchors the quotient solve's orientation at the same
    // vertex as the monolithic solve's — the stitched order then runs the
    // same way instead of coming out globally mirrored.
    std::sort(members.begin(), members.end(),
              [](const std::vector<int64_t>& a,
                 const std::vector<int64_t>& b) {
                return a.front() < b.front();
              });
    for (int64_t s = 0; s < num_shards; ++s) {
      for (int64_t v : members[static_cast<size_t>(s)]) {
        part_of[static_cast<size_t>(v)] = s;
      }
    }
    std::vector<OrderingRequest> shard_requests;
    shard_requests.reserve(static_cast<size_t>(num_shards));
    for (int64_t s = 0; s < num_shards; ++s) {
      InducedSubgraph sub = BuildInducedSubgraph(*graph, members[
          static_cast<size_t>(s)]);
      std::shared_ptr<const PointSet> sub_points;
      if (points != nullptr) {
        // Translate to the shard's own origin: canonicalization uses
        // *centered* axis functions, so the solve is translation-invariant
        // and geometrically identical shards share one fingerprint (the
        // cache dedups repeated islands).
        std::vector<Coord> lo((static_cast<size_t>(points->dims())),
                              std::numeric_limits<Coord>::max());
        for (int64_t v : members[static_cast<size_t>(s)]) {
          const auto p = (*points)[v];
          for (int a = 0; a < points->dims(); ++a) {
            lo[static_cast<size_t>(a)] =
                std::min(lo[static_cast<size_t>(a)], p[static_cast<size_t>(a)]);
          }
        }
        auto sp = std::make_shared<PointSet>(points->dims());
        std::vector<Coord> q(static_cast<size_t>(points->dims()));
        for (int64_t v : members[static_cast<size_t>(s)]) {
          const auto p = (*points)[v];
          for (int a = 0; a < points->dims(); ++a) {
            q[static_cast<size_t>(a)] = static_cast<Coord>(
                p[static_cast<size_t>(a)] - lo[static_cast<size_t>(a)]);
          }
          sp->Add(q);
        }
        sub_points = std::move(sp);
      }
      OrderingRequest shard_request = OrderingRequest::ForGraph(
          std::make_shared<const Graph>(std::move(sub.graph)), sub_points,
          "spectral");
      shard_request.options.spectral = SubRequestSpectralOptions(spectral);
      shard_requests.push_back(std::move(shard_request));
    }
    auto shard_results = SolveSubRequests(shard_requests, service, pool);
    for (int64_t s = 0; s < num_shards; ++s) {
      if (!shard_results[static_cast<size_t>(s)].ok()) {
        return shard_results[static_cast<size_t>(s)].status();
      }
    }

    // --- Stitch: order the shards by the spectral order of the
    // shard-contraction graph.
    GraphContraction contraction =
        ContractByParts(*graph, part_of, num_shards);
    std::shared_ptr<const PointSet> shard_centroids;
    if (points != nullptr && spectral.canonicalize_with_axes) {
      shard_centroids = GroupCentroids(*points, part_of, num_shards);
    }
    OrderingRequest quotient_request = OrderingRequest::ForGraph(
        std::make_shared<const Graph>(std::move(contraction.quotient)),
        shard_centroids, "spectral");
    quotient_request.options.spectral =
        CutSolveSpectralOptions(spectral, points);
    auto quotient_results = SolveSubRequests(
        std::span<const OrderingRequest>(&quotient_request, 1), service,
        pool);
    if (!quotient_results.front().ok()) {
      return quotient_results.front().status();
    }
    const OrderingResult& quotient = *quotient_results.front();

    // Shard offsets in global rank space, by quotient order position.
    std::vector<int64_t> shard_by_rank(static_cast<size_t>(num_shards), -1);
    for (int64_t s = 0; s < num_shards; ++s) {
      shard_by_rank[static_cast<size_t>(quotient.order.RankOf(s))] = s;
    }
    std::vector<int64_t> offset(static_cast<size_t>(num_shards), 0);
    std::vector<int64_t> shard_rank(static_cast<size_t>(num_shards), 0);
    {
      int64_t acc = 0;
      for (int64_t r = 0; r < num_shards; ++r) {
        const int64_t s = shard_by_rank[static_cast<size_t>(r)];
        shard_rank[static_cast<size_t>(s)] = r;
        offset[static_cast<size_t>(s)] = acc;
        acc += static_cast<int64_t>(members[static_cast<size_t>(s)].size());
      }
    }

    // Local rank of each fine vertex within its shard.
    std::vector<int64_t> local_rank(static_cast<size_t>(n), -1);
    for (int64_t s = 0; s < num_shards; ++s) {
      const auto& verts = members[static_cast<size_t>(s)];
      const LinearOrder& order =
          shard_results[static_cast<size_t>(s)]->order;
      for (size_t k = 0; k < verts.size(); ++k) {
        local_rank[static_cast<size_t>(verts[k])] =
            order.RankOf(static_cast<int64_t>(k));
      }
    }

    // Orientation: every cut edge spans from its earlier shard to its later
    // shard (offsets dominate local positions, so the sign is fixed), which
    // makes the total |rank span| separable per shard — flipping shard s
    // only changes the terms where s participates. Choose, independently
    // and in closed form, the orientation minimizing
    //   sum_in w * pos_s(v) - sum_out w * pos_s(u),
    // where "in" edges arrive from earlier shards and "out" edges leave to
    // later ones; ties keep the canonicalized forward order.
    std::vector<double> g_forward(static_cast<size_t>(num_shards), 0.0);
    std::vector<double> w_in(static_cast<size_t>(num_shards), 0.0);
    std::vector<double> w_out(static_cast<size_t>(num_shards), 0.0);
    graph->ForEachEdge([&](int64_t u, int64_t v, double w) {
      const int64_t su = part_of[static_cast<size_t>(u)];
      const int64_t sv = part_of[static_cast<size_t>(v)];
      if (su == sv) return;
      const bool u_earlier = shard_rank[static_cast<size_t>(su)] <
                             shard_rank[static_cast<size_t>(sv)];
      const int64_t earlier_shard = u_earlier ? su : sv;
      const int64_t later_shard = u_earlier ? sv : su;
      const int64_t earlier_vertex = u_earlier ? u : v;
      const int64_t later_vertex = u_earlier ? v : u;
      g_forward[static_cast<size_t>(later_shard)] +=
          w * static_cast<double>(
                  local_rank[static_cast<size_t>(later_vertex)]);
      w_in[static_cast<size_t>(later_shard)] += w;
      g_forward[static_cast<size_t>(earlier_shard)] -=
          w * static_cast<double>(
                  local_rank[static_cast<size_t>(earlier_vertex)]);
      w_out[static_cast<size_t>(earlier_shard)] += w;
    });
    int64_t flips = 0;
    std::vector<bool> flip(static_cast<size_t>(num_shards), false);
    for (int64_t s = 0; s < num_shards; ++s) {
      const double m_minus_1 = static_cast<double>(
          members[static_cast<size_t>(s)].size() - 1);
      const double g_flip =
          (w_in[static_cast<size_t>(s)] - w_out[static_cast<size_t>(s)]) *
              m_minus_1 -
          g_forward[static_cast<size_t>(s)];
      if (g_flip < g_forward[static_cast<size_t>(s)]) {
        flip[static_cast<size_t>(s)] = true;
        ++flips;
      }
    }

    // --- Concatenate into the global order and assemble the result.
    std::vector<int64_t> ranks(static_cast<size_t>(n), -1);
    for (int64_t v = 0; v < n; ++v) {
      const int64_t s = part_of[static_cast<size_t>(v)];
      const int64_t m =
          static_cast<int64_t>(members[static_cast<size_t>(s)].size());
      const int64_t local = flip[static_cast<size_t>(s)]
                                ? m - 1 - local_rank[static_cast<size_t>(v)]
                                : local_rank[static_cast<size_t>(v)];
      ranks[static_cast<size_t>(v)] = offset[static_cast<size_t>(s)] + local;
    }
    auto order = LinearOrder::FromRanks(std::move(ranks));
    if (!order.ok()) return order.status();

    OrderingResult out;
    out.order = *std::move(order);
    out.method = std::string(kShardedSpectralEngineName);
    out.num_solves = num_shards + 2;  // shards + coarse cut + quotient
    out.matvecs = coarse.matvecs + quotient.matvecs;
    out.restarts = coarse.restarts + quotient.restarts;
    out.converged = coarse.converged && quotient.converged;
    out.embedding.assign(static_cast<size_t>(n), 0.0);
    int64_t largest_shard = 0;
    for (int64_t s = 0; s < num_shards; ++s) {
      const OrderingResult& shard = *shard_results[static_cast<size_t>(s)];
      out.matvecs += shard.matvecs;
      out.restarts += shard.restarts;
      out.converged = out.converged && shard.converged;
      const auto& verts = members[static_cast<size_t>(s)];
      if (verts.size() >
          members[static_cast<size_t>(largest_shard)].size()) {
        largest_shard = s;
      }
      // A flipped shard's order descends in its local embedding; negating
      // the stored values keeps the documented contract (the order is the
      // ascending sort of the embedding, shard by shard — a Fiedler
      // vector's sign is arbitrary, so negation stays a valid embedding).
      const double sign = flip[static_cast<size_t>(s)] ? -1.0 : 1.0;
      for (size_t k = 0; k < verts.size(); ++k) {
        out.embedding[static_cast<size_t>(verts[k])] =
            k < shard.embedding.size() ? sign * shard.embedding[k] : 0.0;
      }
    }
    out.lambda2 =
        shard_results[static_cast<size_t>(largest_shard)]->lambda2;
    out.detail = "shards=" + FormatInt(num_shards) +
                 " coarse_n=" + FormatInt(coarse_n) +
                 " cut_edges=" + FormatInt(contraction.cut_edges) +
                 " cut_weight=" + FormatDouble(contraction.cut_weight) +
                 " flips=" + FormatInt(flips);
    return out;
  }

 private:
  // K = 1 (or a single-vertex input): the request is exactly a monolithic
  // spectral solve; delegate so the output is byte-identical to the
  // "spectral" engine's, diagnostics included.
  StatusOr<OrderingResult> MonolithicDelegate(
      const OrderingRequest& request) const {
    OrderingRequest mono = request;
    mono.engine = "spectral";
    auto engine = MakeOrderingEngine("spectral");
    if (!engine.ok()) return engine.status();
    return (*engine)->Order(mono);
  }
};

}  // namespace

std::unique_ptr<OrderingEngine> MakeShardedSpectralEngine() {
  return std::make_unique<ShardedSpectralEngine>();
}

}  // namespace spectral
